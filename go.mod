module yafim

go 1.22
