// Enginecompare races every mining engine in the repository on the same
// dataset: the two parallel algorithms from the paper's world (YAFIM on the
// Spark-substitute, MRApriori on the Hadoop-substitute), the one-phase SON,
// Dist-Eclat and RDD-Eclat distributed algorithms, and the sequential
// family (Apriori, DHP, Partition, Toivonen, Eclat, FP-Growth). All must
// return identical itemsets; the interesting part is how differently they
// get there.
package main

import (
	"fmt"
	"log"

	"yafim"
)

func main() {
	db, err := yafim.GenMushroom(0.5, 17)
	if err != nil {
		log.Fatal(err)
	}
	st := db.ComputeStats()
	fmt.Printf("dataset: %d transactions, %d items (MushRoom-shaped), Sup = 35%%\n\n",
		st.NumTransactions, st.NumItems)

	engines := []yafim.Engine{
		yafim.EngineYAFIM, yafim.EngineDistEclat, yafim.EngineRDDEclat,
		yafim.EngineMapReduce, yafim.EngineSON,
		yafim.EngineSequential, yafim.EngineDHP, yafim.EngineAprioriTid,
		yafim.EnginePartition, yafim.EngineToivonen, yafim.EngineEclat, yafim.EngineFPGrowth,
	}
	fmt.Printf("%-12s %10s %9s %8s  %s\n", "engine", "time", "frequent", "maxk", "notes")
	var reference *yafim.Result
	for _, e := range engines {
		trace, err := yafim.Mine(db, 0.35, yafim.Options{Engine: e})
		if err != nil {
			log.Fatalf("%v: %v", e, err)
		}
		if reference == nil {
			reference = trace.Result
		} else if !trace.Result.Equal(reference) {
			log.Fatalf("%v disagrees with %v — impossible", e, engines[0])
		}
		notes := ""
		switch e {
		case yafim.EngineYAFIM, yafim.EngineMapReduce, yafim.EngineSON,
			yafim.EngineDistEclat, yafim.EngineRDDEclat:
			notes = "simulated 12-node cluster time"
		default:
			notes = "real single-core time"
		}
		fmt.Printf("%-12s %10v %9d %8d  %s\n", e,
			trace.TotalDuration().Round(1e6), trace.Result.NumFrequent(),
			trace.Result.MaxK(), notes)
	}
	fmt.Printf("\nall %d engines returned identical frequent itemsets.\n", len(engines))
}
