// Medical: the paper's §V-D healthcare application. Patient cases are
// transactions whose items are medical entities (diagnoses, drugs,
// symptoms); mining them at 3% support surfaces co-occurring entity
// clusters, and association rules answer questions like "what tends to
// accompany this diagnosis?".
package main

import (
	"fmt"
	"log"

	"yafim"
)

func main() {
	// A quarter of the full case volume keeps the demo quick.
	db, err := yafim.GenMedical(0.25, 99)
	if err != nil {
		log.Fatal(err)
	}
	st := db.ComputeStats()
	fmt.Printf("medical cases: %d patients, %d entities, avg %.1f entities/case\n",
		st.NumTransactions, st.NumItems, st.AvgLength)

	const support = 0.03 // the paper's Sup = 3%

	trace, err := yafim.Mine(db, support, yafim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d frequent entity combinations at 3%% support (deepest: %d entities)\n",
		trace.Result.NumFrequent(), trace.Result.MaxK())
	fmt.Println("per-pass simulated cluster time (note the shrink as candidates thin out):")
	for _, p := range trace.Passes {
		fmt.Printf("  pass %d: %4d candidates -> %4d frequent in %v\n",
			p.K, p.Candidates, p.Frequent, p.Duration.Round(1e6))
	}

	// The largest comorbidity cluster.
	top := trace.Result.Frequent(trace.Result.MaxK())
	if len(top) > 0 {
		fmt.Printf("\nlargest co-occurring cluster: %v (seen in %d cases)\n",
			top[0].Set, top[0].Count)
	}

	// Rules: what else do we expect when entity 0 (the anchor of the chronic
	// comorbidity cluster) is on a chart?
	rules, err := yafim.GenerateRules(trace.Result, 0.8, db.Len())
	if err != nil {
		log.Fatal(err)
	}
	anchor := yafim.Item(0)
	fmt.Printf("\nhigh-confidence implications involving entity %d:\n", anchor)
	shown := 0
	for _, r := range rules {
		if !r.Antecedent.Contains(anchor) || len(r.Antecedent) > 2 {
			continue
		}
		fmt.Println(" ", r)
		if shown++; shown >= 8 {
			break
		}
	}

	// The paper's claim for this workload: ~25x over MapReduce.
	hadoop, err := yafim.Mine(db, support, yafim.Options{Engine: yafim.EngineMapReduce})
	if err != nil {
		log.Fatal(err)
	}
	if !trace.Result.Equal(hadoop.Result) {
		log.Fatal("engines disagree — this should be impossible")
	}
	fmt.Printf("\nYAFIM %v vs MapReduce %v: %.1fx speedup\n",
		trace.TotalDuration().Round(1e7), hadoop.TotalDuration().Round(1e7),
		float64(hadoop.TotalDuration())/float64(trace.TotalDuration()))
}
