// Clustersim: a capacity-planning study using the deterministic cluster
// model. The same workload is mined across cluster sizes and both runtime
// profiles, answering "how many nodes do I need?" and "what does staying on
// MapReduce cost me?" without touching a real cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"yafim"
)

func main() {
	db, err := yafim.GenPumsbStar(0.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Replicate to a heavier census-scale workload.
	db = db.Replicate(4)
	st := db.ComputeStats()
	fmt.Printf("workload: %d transactions, %d items, avg length %.1f\n\n",
		st.NumTransactions, st.NumItems, st.AvgLength)

	const support = 0.65

	fmt.Printf("%-7s %-7s %14s %14s %9s\n", "nodes", "cores", "YAFIM", "MapReduce", "ratio")
	var prevY time.Duration
	for _, nodes := range []int{2, 4, 8, 12, 16, 24} {
		sparkCfg := yafim.ClusterSpark().WithNodes(nodes)
		hadoopCfg := yafim.ClusterHadoop().WithNodes(nodes)

		y, err := yafim.Mine(db, support, yafim.Options{Cluster: &sparkCfg})
		if err != nil {
			log.Fatal(err)
		}
		m, err := yafim.Mine(db, support, yafim.Options{
			Engine: yafim.EngineMapReduce, Cluster: &hadoopCfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !y.Result.Equal(m.Result) {
			log.Fatal("engines disagree — this should be impossible")
		}
		note := ""
		if prevY > 0 {
			note = fmt.Sprintf("  (YAFIM %.2fx vs previous row)", float64(prevY)/float64(y.TotalDuration()))
		}
		fmt.Printf("%-7d %-7d %14v %14v %8.1fx%s\n",
			nodes, sparkCfg.TotalCores(),
			y.TotalDuration().Round(10*time.Millisecond),
			m.TotalDuration().Round(10*time.Millisecond),
			float64(m.TotalDuration())/float64(y.TotalDuration()), note)
		prevY = y.TotalDuration()
	}

	fmt.Println("\nreading the table: YAFIM keeps scaling with nodes because its time is")
	fmt.Println("compute-bound on the cached RDD; MapReduce stays pinned near its per-job")
	fmt.Println("startup floor times the number of passes, whatever the cluster size.")
}
