// Marketbasket: the paper's motivating sales-purchase scenario at realistic
// scale. Generates an IBM Quest-style synthetic retail dataset (the same
// generator behind the paper's T10I4D100K benchmark), mines it with YAFIM
// and with the MapReduce comparator, verifies the results agree exactly,
// and derives the strongest purchase rules.
package main

import (
	"fmt"
	"log"

	"yafim"
)

func main() {
	// A tenth of T10I4D100K keeps the demo quick; pass 1.0 for paper scale.
	db, err := yafim.GenT10I4D100K(0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := db.ComputeStats()
	fmt.Printf("retail dataset: %d baskets, %d products, avg %.1f items/basket\n",
		st.NumTransactions, st.NumItems, st.AvgLength)

	const support = 0.005 // items bought together in >= 0.5% of baskets

	spark, err := yafim.Mine(db, support, yafim.Options{Engine: yafim.EngineYAFIM})
	if err != nil {
		log.Fatal(err)
	}
	hadoop, err := yafim.Mine(db, support, yafim.Options{Engine: yafim.EngineMapReduce})
	if err != nil {
		log.Fatal(err)
	}
	if !spark.Result.Equal(hadoop.Result) {
		log.Fatal("engines disagree — this should be impossible")
	}

	fmt.Printf("\n%d frequent itemsets at %.1f%% support; per-pass timing:\n",
		spark.Result.NumFrequent(), support*100)
	fmt.Printf("%-6s %12s %12s\n", "pass", "YAFIM", "MapReduce")
	for i, p := range spark.Passes {
		m := "-"
		if i < len(hadoop.Passes) {
			m = hadoop.Passes[i].Duration.Round(1e7).String()
		}
		fmt.Printf("%-6d %12v %12s\n", p.K, p.Duration.Round(1e7), m)
	}
	fmt.Printf("%-6s %12v %12v  => %.1fx speedup\n", "total",
		spark.TotalDuration().Round(1e7), hadoop.TotalDuration().Round(1e7),
		float64(hadoop.TotalDuration())/float64(spark.TotalDuration()))

	rules, err := yafim.GenerateRules(spark.Result, 0.6, db.Len())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop cross-sell rules (confidence >= 60%%):\n")
	for i, r := range rules {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(rules)-i)
			break
		}
		fmt.Println(" ", r)
	}
}
