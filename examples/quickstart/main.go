// Quickstart: mine a small in-memory market-basket database with YAFIM and
// derive association rules — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"yafim"
)

func main() {
	// Nine shopping baskets over five products (the textbook example).
	db := yafim.NewDB("baskets", [][]yafim.Item{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	})

	// Mine all itemsets bought together in at least 2 of 9 baskets, on a
	// small simulated cluster.
	local := yafim.ClusterLocal()
	trace, err := yafim.Mine(db, 2.0/9.0, yafim.Options{Cluster: &local})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d frequent itemsets (largest has %d items):\n",
		trace.Result.NumFrequent(), trace.Result.MaxK())
	for k := 1; k <= trace.Result.MaxK(); k++ {
		for _, sc := range trace.Result.Frequent(k) {
			fmt.Printf("  %v appears in %d baskets\n", sc.Set, sc.Count)
		}
	}

	// Turn the itemsets into "people who buy X also buy Y" rules.
	rules, err := yafim.GenerateRules(trace.Result, 0.7, db.Len())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrules with confidence >= 70%%:\n")
	for _, r := range rules {
		fmt.Println(" ", r)
	}

	fmt.Printf("\nsimulated cluster time: %v across %d passes\n",
		trace.TotalDuration().Round(1e6), len(trace.Passes))
}
