package yafim

import (
	"fmt"
	"math/rand"
	"testing"

	"yafim/internal/apriori"
	"yafim/internal/eclat"
	"yafim/internal/fpgrowth"
	"yafim/internal/itemset"
)

// reference: brute-force enumeration of all frequent itemsets.
func refMine(db *itemset.DB, minSupport float64) map[string]int {
	minCount := db.MinSupportCount(minSupport)
	// enumerate all itemsets over items present via DFS with support counting
	out := map[string]int{}
	numItems := db.NumItems()
	support := func(s itemset.Itemset) int {
		c := 0
		for _, tr := range db.Transactions {
			if tr.Items.ContainsAll(s) {
				c++
			}
		}
		return c
	}
	var dfs func(prefix itemset.Itemset, from int)
	dfs = func(prefix itemset.Itemset, from int) {
		for it := from; it < numItems; it++ {
			cand := append(append(itemset.Itemset{}, prefix...), itemset.Item(it))
			c := support(cand)
			if c >= minCount {
				out[cand.Key()] = c
				dfs(cand, it+1)
			}
		}
	}
	dfs(nil, 0)
	return out
}

func cmpRes(t *testing.T, name string, ref map[string]int, res *apriori.Result, seed int64, sup float64) {
	t.Helper()
	got := res.All()
	if len(got) != len(ref) {
		t.Errorf("seed=%d sup=%v %s: got %d frequent, ref %d", seed, sup, name, len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			s, _ := itemset.FromKey(k)
			t.Errorf("seed=%d sup=%v %s: set %v got count %d want %d", seed, sup, name, s, got[k], v)
			return
		}
	}
	// check Levels alignment
	for i, l := range res.Levels {
		if l.K != i+1 {
			t.Errorf("seed=%d sup=%v %s: Levels[%d].K = %d", seed, sup, name, i, l.K)
		}
		for _, sc := range l.Sets {
			if sc.Set.Len() != i+1 {
				t.Errorf("seed=%d sup=%v %s: Levels[%d] holds %v", seed, sup, name, i, sc.Set)
			}
		}
	}
}

func TestFuzzCompare(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nTx := 1 + rng.Intn(40)
		nItems := 1 + rng.Intn(12)
		rows := make([][]itemset.Item, nTx)
		for i := range rows {
			l := rng.Intn(nItems + 1)
			for j := 0; j < l; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(nItems)))
			}
		}
		db := itemset.NewDB(fmt.Sprintf("fuzz%d", seed), rows)
		for _, sup := range []float64{0.05, 0.2, 0.5, 0.9} {
			ref := refMine(db, sup)
			for _, strat := range []apriori.CountingStrategy{apriori.HashTreeCounting, apriori.BruteForceCounting, apriori.BitmapCounting, apriori.TrieCounting} {
				res, err := apriori.Mine(db, sup, apriori.Options{Counting: strat})
				if err != nil {
					t.Fatalf("seed=%d: %v", seed, err)
				}
				cmpRes(t, fmt.Sprintf("apriori-strat%d", strat), ref, res, seed, sup)
			}
			if res, err := apriori.MineAprioriTid(db, sup); err != nil {
				t.Fatalf("seed=%d tid: %v", seed, err)
			} else {
				cmpRes(t, "aprioritid", ref, res, seed, sup)
			}
			if res, err := apriori.MineDHP(db, sup, 64); err != nil {
				t.Fatalf("seed=%d dhp: %v", seed, err)
			} else {
				cmpRes(t, "dhp", ref, res, seed, sup)
			}
			for _, p := range []int{1, 3, 7} {
				if res, err := apriori.MinePartition(db, sup, p); err != nil {
					t.Fatalf("seed=%d partition: %v", seed, err)
				} else {
					cmpRes(t, fmt.Sprintf("partition%d", p), ref, res, seed, sup)
				}
			}
			for s2 := int64(0); s2 < 3; s2++ {
				if res, err := apriori.MineToivonen(db, sup, apriori.ToivonenOptions{Seed: s2, SampleFraction: 0.3}); err != nil {
					t.Fatalf("seed=%d toivonen: %v", seed, err)
				} else {
					cmpRes(t, fmt.Sprintf("toivonen%d", s2), ref, res, seed, sup)
				}
			}
			if res, err := eclat.Mine(db, sup); err != nil {
				t.Fatalf("seed=%d eclat: %v", seed, err)
			} else {
				cmpRes(t, "eclat", ref, res, seed, sup)
			}
			if res, err := fpgrowth.Mine(db, sup); err != nil {
				t.Fatalf("seed=%d fpgrowth: %v", seed, err)
			} else {
				cmpRes(t, "fpgrowth", ref, res, seed, sup)
			}
		}
	}
}
