package yafim

// Benchmark harness regenerating the paper's evaluation. One benchmark per
// table/figure; each runs the corresponding experiment on scaled-down
// datasets (the cmd/experiments binary runs them at paper scale) and
// reports the simulated cluster time and speedups as custom metrics:
//
//	virt-sec      simulated cluster seconds for the run
//	speedup-x     MRApriori total time over YAFIM total time
//	benefit-x     ablation: feature-off time over feature-on time
//
// Absolute wall-clock ns/op measures the simulator itself, not the paper's
// testbed; the custom metrics carry the reproduced results.

import (
	"context"
	"io"
	"testing"

	"yafim/internal/apriori"
	"yafim/internal/experiments"
	"yafim/internal/hashtree"
	"yafim/internal/itemset"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/rddeclat"
	"yafim/internal/trie"
	"yafim/internal/yafim"
)

// benchEnv shrinks datasets so a full -bench=. sweep stays in the minutes
// range while preserving every reported shape.
func benchEnv() experiments.Env {
	env := experiments.DefaultEnv()
	env.Scale = 0.1
	return env
}

func benchmarkNames() []string {
	return []string{"MushRoom", "T10I4D100K", "Chess", "Pumsb_star"}
}

func mustBenchmark(b *testing.B, name string) experiments.Benchmark {
	b.Helper()
	bm, err := experiments.FindBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	return bm
}

// BenchmarkTable1DatasetProperties regenerates Table I.
func BenchmarkTable1DatasetProperties(b *testing.B) {
	env := benchEnv()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3PerIteration regenerates Fig. 3: per-pass execution time of
// YAFIM vs MRApriori on each benchmark dataset.
func BenchmarkFig3PerIteration(b *testing.B) {
	env := benchEnv()
	for _, name := range benchmarkNames() {
		bm := mustBenchmark(b, name)
		b.Run(name, func(b *testing.B) {
			var lastSpeedup float64
			var virtSecs float64
			for i := 0; i < b.N; i++ {
				c, err := experiments.RunComparison(context.Background(), bm, env)
				if err != nil {
					b.Fatal(err)
				}
				lastSpeedup = c.Speedup()
				virtSecs = c.YAFIM.TotalDuration().Seconds()
			}
			b.ReportMetric(lastSpeedup, "speedup-x")
			b.ReportMetric(virtSecs, "yafim-virt-sec")
		})
	}
}

// BenchmarkFig4Sizeup regenerates Fig. 4: total time at 1x..6x replication
// on 48 cores.
func BenchmarkFig4Sizeup(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	for _, name := range benchmarkNames() {
		bm := mustBenchmark(b, name)
		b.Run(name, func(b *testing.B) {
			var yGrow, mGrow float64
			for i := 0; i < b.N; i++ {
				s, err := experiments.RunSizeup(context.Background(), bm, env, []int{1, 3, 6})
				if err != nil {
					b.Fatal(err)
				}
				yGrow = float64(s.YAFIM[2]) / float64(s.YAFIM[0])
				mGrow = float64(s.MRApriori[2]) / float64(s.MRApriori[0])
			}
			b.ReportMetric(yGrow, "yafim-growth-x")
			b.ReportMetric(mGrow, "mr-growth-x")
		})
	}
}

// BenchmarkFig5Speedup regenerates Fig. 5: YAFIM total time at 4..12 nodes.
func BenchmarkFig5Speedup(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	for _, name := range benchmarkNames() {
		bm := mustBenchmark(b, name)
		b.Run(name, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				s, err := experiments.RunSpeedup(context.Background(), bm, env, []int{4, 8, 12}, 6)
				if err != nil {
					b.Fatal(err)
				}
				r := s.Relative()
				rel = r[len(r)-1]
			}
			b.ReportMetric(rel, "scaleup-4to12-x")
		})
	}
}

// BenchmarkFig6Medical regenerates Fig. 6: the medical application
// comparison at Sup = 3%.
func BenchmarkFig6Medical(b *testing.B) {
	env := benchEnv()
	var speedup float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(context.Background(), experiments.MedicalBenchmark(), env)
		if err != nil {
			b.Fatal(err)
		}
		speedup = c.Speedup()
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkSummaryAverageSpeedup regenerates the abstract's headline claim
// (about 18x on average across the four benchmarks).
func BenchmarkSummaryAverageSpeedup(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	var avg float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSummary(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		avg = s.AverageSpeedup()
	}
	b.ReportMetric(avg, "avg-speedup-x")
}

// ---------------------------------------------------------------------------
// Pass-2 counting-kernel benchmarks.
//
// These are the perf-gated benchmarks behind `make bench-json`: run with
// -benchmem, their B/op plus the mining runs' virt-sec metrics form the
// committed BENCH_*.json trajectory that CI refuses to regress by more than
// 20%. They isolate the Phase-II hot path the paper's Fig. 3 speedups live
// on: candidate store construction + subset enumeration + support counting.
// ---------------------------------------------------------------------------

// pass2Fixture generates the candidate-heavy kernel workload: scaled
// T10-style transactions plus the pass-2 candidates YAFIM would derive from
// the frequent items.
func pass2Fixture(tb testing.TB) ([]itemset.Transaction, []itemset.Itemset) {
	tb.Helper()
	bm, err := experiments.FindBenchmark("T10I4D100K")
	if err != nil {
		tb.Fatal(err)
	}
	db, err := bm.Gen(0.05, benchEnv().Seed)
	if err != nil {
		tb.Fatal(err)
	}
	l1, err := apriori.Mine(db, bm.Support, apriori.Options{MaxK: 1})
	if err != nil {
		tb.Fatal(err)
	}
	var items []itemset.Itemset
	for _, sc := range l1.Levels[0].Sets {
		items = append(items, sc.Set)
	}
	cands, err := apriori.Gen(items)
	if err != nil {
		tb.Fatal(err)
	}
	if len(cands) == 0 {
		tb.Fatal("fixture generated no pass-2 candidates")
	}
	return db.Transactions, cands
}

// TestRegistryAddsNoAllocsToPass2Kernel pins the metering promise of the
// metrics registry on the pass-2 hot path: with its series materialized, the
// per-task registry feed (a duration observation plus a task count) adds
// exactly zero allocations per operation on top of the counting kernel.
func TestRegistryAddsNoAllocsToPass2Kernel(t *testing.T) {
	txs, cands := pass2Fixture(t)
	tree := hashtree.Build(cands)
	rec := NewRecorder()
	reg := rec.Metrics()
	h := reg.Histogram("yafim_task_duration_seconds",
		"Virtual duration of each scheduled task attempt interval.",
		obs.DurationBuckets, "engine", "rdd")
	c := reg.Counter("yafim_tasks_total", "Tasks scheduled, by engine.",
		"engine", "rdd")
	h.Observe(0.001) // materialize the series before measuring
	c.Add(1)

	kernel := func() {
		counts, _ := tree.CountSupports(txs)
		_ = counts
	}
	bare := testing.AllocsPerRun(5, kernel)
	observed := testing.AllocsPerRun(5, func() {
		kernel()
		h.Observe(0.004)
		c.Add(1)
	})
	if observed != bare {
		t.Fatalf("registry added %.1f allocs/op to the pass-2 kernel (bare %.1f, observed %.1f)",
			observed-bare, bare, observed)
	}
}

// BenchmarkPass2KernelHashTree measures the flat hash-tree counting kernel:
// dense per-scan count array, pooled matcher scratch, bitset containment.
func BenchmarkPass2KernelHashTree(b *testing.B) {
	txs, cands := pass2Fixture(b)
	tree := hashtree.Build(cands)
	b.ReportAllocs()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		counts, _ := tree.CountSupports(txs)
		matched = 0
		for _, c := range counts {
			if c != 0 {
				matched++
			}
		}
	}
	b.ReportMetric(float64(len(cands)), "cands")
	b.ReportMetric(float64(matched), "matched")
}

// BenchmarkPass2KernelTrie measures the flat prefix-trie counting kernel on
// the same workload.
func BenchmarkPass2KernelTrie(b *testing.B) {
	txs, cands := pass2Fixture(b)
	t := trie.Build(cands)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, _ := t.CountSupports(txs)
		_ = counts
	}
}

// BenchmarkPass2KernelBuild measures candidate-store construction (the
// per-pass broadcast payload): pointer insert + flat compaction + remap.
func BenchmarkPass2KernelBuild(b *testing.B) {
	_, cands := pass2Fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := hashtree.Build(cands)
		_ = tree
	}
}

// BenchmarkPass2YAFIM runs the full YAFIM pipeline on the candidate-heavy
// dataset — the dense count-flush kernel plus the combiner shuffle — and
// reports the simulated cluster seconds next to the real allocation rate.
func BenchmarkPass2YAFIM(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "T10I4D100K")
	db, err := bm.Gen(0.05, env.Seed)
	if err != nil {
		b.Fatal(err)
	}
	tasks := 2 * env.Spark.TotalCores()
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		trace, _, err := experiments.RunYAFIM(context.Background(), db, bm.Support,
			env.Spark, tasks, yafim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		virt = trace.TotalDuration().Seconds()
	}
	b.ReportMetric(virt, "virt-sec")
}

// BenchmarkShuffleResident measures the shuffle lifecycle manager on the
// full mining run: peak resident map-output bytes (with the facade's
// pass-boundary frees this is roughly one pass's shuffle volume, not the
// whole run's) and the bytes still resident after mining (must be ~0 once
// Close runs). Both metrics are deterministic virtual quantities and are
// perf-gated like virt-sec.
func BenchmarkShuffleResident(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "T10I4D100K")
	db, err := bm.Gen(0.05, env.Seed)
	if err != nil {
		b.Fatal(err)
	}
	tasks := 2 * env.Spark.TotalCores()
	b.ReportAllocs()
	b.ResetTimer()
	var peak, final float64
	for i := 0; i < b.N; i++ {
		_, ctx, err := experiments.RunYAFIM(context.Background(), db, bm.Support,
			env.Spark, tasks, yafim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ctx.Close(); err != nil {
			b.Fatal(err)
		}
		peak = float64(ctx.ShufflePeakBytes())
		final = float64(ctx.ShuffleResidentBytes())
	}
	b.ReportMetric(peak, "peak-resident-bytes")
	b.ReportMetric(final, "final-resident-bytes")
}

// BenchmarkDiagnosis measures the diagnosis layer end to end on the
// candidate-heavy workload: an instrumented mining run, the critical-path and
// skew analysis, and every export surface (human report, JSONL journal,
// Prometheus text). virt-sec is the instrumented run's total — metering
// neutrality demands it match BenchmarkPass2YAFIM's virt-sec exactly — and
// the allocation rate is the perf-gated cost of observing a run.
func BenchmarkDiagnosis(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "T10I4D100K")
	db, err := bm.Gen(0.05, env.Seed)
	if err != nil {
		b.Fatal(err)
	}
	tasks := 2 * env.Spark.TotalCores()
	b.ReportAllocs()
	b.ResetTimer()
	var virt, steps, stragglers float64
	for i := 0; i < b.N; i++ {
		rec := NewRecorder()
		trace, _, err := experiments.RunYAFIM(context.Background(), db, bm.Support,
			env.Spark, tasks, yafim.Config{}, rdd.WithRecorder(rec))
		if err != nil {
			b.Fatal(err)
		}
		cfg := env.Spark
		d := Diagnose(rec, &cfg)
		if err := d.Validate(); err != nil {
			b.Fatal(err)
		}
		if err := WriteDiagnosis(io.Discard, d); err != nil {
			b.Fatal(err)
		}
		if err := WriteJournal(io.Discard, rec); err != nil {
			b.Fatal(err)
		}
		if err := WritePrometheus(io.Discard, rec); err != nil {
			b.Fatal(err)
		}
		virt = trace.TotalDuration().Seconds()
		steps = float64(len(d.CriticalPath))
		stragglers = 0
		for _, st := range d.Stages {
			stragglers += float64(len(st.Stragglers))
		}
	}
	b.ReportMetric(virt, "virt-sec")
	b.ReportMetric(steps, "critical-steps")
	b.ReportMetric(stragglers, "stragglers")
}

// BenchmarkPass2MRApriori runs the MapReduce comparator's counting passes
// with the in-mapper combining kernel.
func BenchmarkPass2MRApriori(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "T10I4D100K")
	db, err := bm.Gen(0.05, env.Seed)
	if err != nil {
		b.Fatal(err)
	}
	tasks := 2 * env.Hadoop.TotalCores()
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		trace, _, err := experiments.RunMRApriori(context.Background(), db, bm.Support,
			env.Hadoop, tasks, mrapriori.Config{}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		virt = trace.TotalDuration().Seconds()
	}
	b.ReportMetric(virt, "virt-sec")
}

// BenchmarkPass2KernelEclatBitset measures the vertical counting kernel on
// the same candidate-heavy workload: one transaction bitset per frequent
// item (dense ItemIndex ids), pass-2 support by fused word-at-a-time
// AND+popcount over every item pair — the representation RDD-Eclat swaps in
// for the hash tree's subset enumeration.
func BenchmarkPass2KernelEclatBitset(b *testing.B) {
	bm := mustBenchmark(b, "T10I4D100K")
	db, err := bm.Gen(0.05, benchEnv().Seed)
	if err != nil {
		b.Fatal(err)
	}
	l1, err := apriori.Mine(db, bm.Support, apriori.Options{MaxK: 1})
	if err != nil {
		b.Fatal(err)
	}
	var items []itemset.Itemset
	for _, sc := range l1.Levels[0].Sets {
		items = append(items, sc.Set)
	}
	ix := itemset.NewItemIndex(items)
	m := ix.Len()
	bits := make([]*itemset.Bitset, m)
	for d := range bits {
		bits[d] = itemset.NewBitset(db.Len())
	}
	for ti, tr := range db.Transactions {
		for _, it := range tr.Items {
			if d := ix.DenseOf(it); d >= 0 {
				bits[d].Set(ti)
			}
		}
	}
	minCount := db.MinSupportCount(bm.Support)
	b.ReportAllocs()
	b.ResetTimer()
	var frequent int
	for i := 0; i < b.N; i++ {
		frequent = 0
		for x := 0; x < m; x++ {
			for y := x + 1; y < m; y++ {
				if bits[x].AndCount(bits[y]) >= minCount {
					frequent++
				}
			}
		}
	}
	b.ReportMetric(float64(m*(m-1)/2), "cands")
	b.ReportMetric(float64(frequent), "frequent")
}

// BenchmarkPass2RDDEclat runs the full RDD-Eclat pipeline on the
// candidate-heavy dataset — vertical shuffle, broadcast bitsets,
// equivalence-class intersection — and reports simulated cluster seconds
// next to the real allocation rate, the vertical row of the engine matrix
// beside BenchmarkPass2YAFIM and BenchmarkPass2MRApriori.
func BenchmarkPass2RDDEclat(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "T10I4D100K")
	db, err := bm.Gen(0.05, env.Seed)
	if err != nil {
		b.Fatal(err)
	}
	tasks := 2 * env.Spark.TotalCores()
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		trace, _, err := experiments.RunRDDEclat(context.Background(), db, bm.Support,
			env.Spark, tasks, rddeclat.Config{})
		if err != nil {
			b.Fatal(err)
		}
		virt = trace.TotalDuration().Seconds()
	}
	b.ReportMetric(virt, "virt-sec")
}

// BenchmarkAblationBroadcast measures §IV-C: broadcast variables vs naive
// per-task shipping.
func BenchmarkAblationBroadcast(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "MushRoom")
	var benefit float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunBroadcastAblation(context.Background(), bm, env)
		if err != nil {
			b.Fatal(err)
		}
		benefit = a.Benefit()
	}
	b.ReportMetric(benefit, "benefit-x")
}

// BenchmarkAblationCache measures §IV-B: the cached transactions RDD vs
// re-reading input every pass.
func BenchmarkAblationCache(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "MushRoom")
	var benefit float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunCacheAblation(context.Background(), bm, env)
		if err != nil {
			b.Fatal(err)
		}
		benefit = a.Benefit()
	}
	b.ReportMetric(benefit, "benefit-x")
}

// BenchmarkAblationHashTree measures §IV-A: hash-tree candidate matching vs
// a brute-force candidate scan, on the candidate-heavy synthetic dataset.
func BenchmarkAblationHashTree(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	bm := mustBenchmark(b, "T10I4D100K")
	var benefit float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunHashTreeAblation(context.Background(), bm, env)
		if err != nil {
			b.Fatal(err)
		}
		benefit = a.Benefit()
	}
	b.ReportMetric(benefit, "benefit-x")
}
