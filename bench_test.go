package yafim

// Benchmark harness regenerating the paper's evaluation. One benchmark per
// table/figure; each runs the corresponding experiment on scaled-down
// datasets (the cmd/experiments binary runs them at paper scale) and
// reports the simulated cluster time and speedups as custom metrics:
//
//	virt-sec      simulated cluster seconds for the run
//	speedup-x     MRApriori total time over YAFIM total time
//	benefit-x     ablation: feature-off time over feature-on time
//
// Absolute wall-clock ns/op measures the simulator itself, not the paper's
// testbed; the custom metrics carry the reproduced results.

import (
	"context"
	"testing"

	"yafim/internal/experiments"
)

// benchEnv shrinks datasets so a full -bench=. sweep stays in the minutes
// range while preserving every reported shape.
func benchEnv() experiments.Env {
	env := experiments.DefaultEnv()
	env.Scale = 0.1
	return env
}

func benchmarkNames() []string {
	return []string{"MushRoom", "T10I4D100K", "Chess", "Pumsb_star"}
}

func mustBenchmark(b *testing.B, name string) experiments.Benchmark {
	b.Helper()
	bm, err := experiments.FindBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	return bm
}

// BenchmarkTable1DatasetProperties regenerates Table I.
func BenchmarkTable1DatasetProperties(b *testing.B) {
	env := benchEnv()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig3PerIteration regenerates Fig. 3: per-pass execution time of
// YAFIM vs MRApriori on each benchmark dataset.
func BenchmarkFig3PerIteration(b *testing.B) {
	env := benchEnv()
	for _, name := range benchmarkNames() {
		bm := mustBenchmark(b, name)
		b.Run(name, func(b *testing.B) {
			var lastSpeedup float64
			var virtSecs float64
			for i := 0; i < b.N; i++ {
				c, err := experiments.RunComparison(context.Background(), bm, env)
				if err != nil {
					b.Fatal(err)
				}
				lastSpeedup = c.Speedup()
				virtSecs = c.YAFIM.TotalDuration().Seconds()
			}
			b.ReportMetric(lastSpeedup, "speedup-x")
			b.ReportMetric(virtSecs, "yafim-virt-sec")
		})
	}
}

// BenchmarkFig4Sizeup regenerates Fig. 4: total time at 1x..6x replication
// on 48 cores.
func BenchmarkFig4Sizeup(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	for _, name := range benchmarkNames() {
		bm := mustBenchmark(b, name)
		b.Run(name, func(b *testing.B) {
			var yGrow, mGrow float64
			for i := 0; i < b.N; i++ {
				s, err := experiments.RunSizeup(context.Background(), bm, env, []int{1, 3, 6})
				if err != nil {
					b.Fatal(err)
				}
				yGrow = float64(s.YAFIM[2]) / float64(s.YAFIM[0])
				mGrow = float64(s.MRApriori[2]) / float64(s.MRApriori[0])
			}
			b.ReportMetric(yGrow, "yafim-growth-x")
			b.ReportMetric(mGrow, "mr-growth-x")
		})
	}
}

// BenchmarkFig5Speedup regenerates Fig. 5: YAFIM total time at 4..12 nodes.
func BenchmarkFig5Speedup(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	for _, name := range benchmarkNames() {
		bm := mustBenchmark(b, name)
		b.Run(name, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				s, err := experiments.RunSpeedup(context.Background(), bm, env, []int{4, 8, 12}, 6)
				if err != nil {
					b.Fatal(err)
				}
				r := s.Relative()
				rel = r[len(r)-1]
			}
			b.ReportMetric(rel, "scaleup-4to12-x")
		})
	}
}

// BenchmarkFig6Medical regenerates Fig. 6: the medical application
// comparison at Sup = 3%.
func BenchmarkFig6Medical(b *testing.B) {
	env := benchEnv()
	var speedup float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunComparison(context.Background(), experiments.MedicalBenchmark(), env)
		if err != nil {
			b.Fatal(err)
		}
		speedup = c.Speedup()
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkSummaryAverageSpeedup regenerates the abstract's headline claim
// (about 18x on average across the four benchmarks).
func BenchmarkSummaryAverageSpeedup(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	var avg float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSummary(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
		avg = s.AverageSpeedup()
	}
	b.ReportMetric(avg, "avg-speedup-x")
}

// BenchmarkAblationBroadcast measures §IV-C: broadcast variables vs naive
// per-task shipping.
func BenchmarkAblationBroadcast(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "MushRoom")
	var benefit float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunBroadcastAblation(context.Background(), bm, env)
		if err != nil {
			b.Fatal(err)
		}
		benefit = a.Benefit()
	}
	b.ReportMetric(benefit, "benefit-x")
}

// BenchmarkAblationCache measures §IV-B: the cached transactions RDD vs
// re-reading input every pass.
func BenchmarkAblationCache(b *testing.B) {
	env := benchEnv()
	bm := mustBenchmark(b, "MushRoom")
	var benefit float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunCacheAblation(context.Background(), bm, env)
		if err != nil {
			b.Fatal(err)
		}
		benefit = a.Benefit()
	}
	b.ReportMetric(benefit, "benefit-x")
}

// BenchmarkAblationHashTree measures §IV-A: hash-tree candidate matching vs
// a brute-force candidate scan, on the candidate-heavy synthetic dataset.
func BenchmarkAblationHashTree(b *testing.B) {
	env := benchEnv()
	env.Scale = 0.05
	bm := mustBenchmark(b, "T10I4D100K")
	var benefit float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunHashTreeAblation(context.Background(), bm, env)
		if err != nil {
			b.Fatal(err)
		}
		benefit = a.Benefit()
	}
	b.ReportMetric(benefit, "benefit-x")
}
