GO ?= go

.PHONY: build fmt test race vet vuln check chaos diag fuzz-smoke bench bench-json clean

build:
	$(GO) build ./...

# fmt fails when any file deviates from gofmt, listing the offenders.
fmt:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

# vuln scans dependencies and stdlib usage when govulncheck is on PATH.
# The tool is not vendored, so offline checkouts skip with a note; CI
# installs it and runs the scan for real.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (CI runs it)"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# check is the CI gate: everything must build, be gofmt-clean, vet clean,
# scan clean, and pass the full suite under the race detector in shuffled
# order (the engines are genuinely concurrent and order-independent).
check: build fmt vet race vuln

# chaos runs the fault-injection invariant suite under the race detector:
# every Chaos* test plus the FuzzChaosInvariant seed corpora, which assert
# that seeded faults never change results and that recovery is deterministic.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/sim/ ./internal/dfs/
	$(GO) test -race -run 'Chaos' ./internal/rdd/ ./internal/mapreduce/ \
		./internal/experiments/

# diag runs the diagnosis layer end to end on a small fixed-seed dataset
# with an injected 4x straggler node: both engines mine, the analyzer builds
# the critical path and attributes the stragglers, and the run fails on any
# malformed output (critical path not summing to the makespan, analyzed
# makespan disagreeing with the engine clock, or engines disagreeing).
diag:
	$(GO) run ./cmd/experiments -exp diag -dataset T10I4D100K -scale 0.05 -diagchaos

# fuzz-smoke gives each fuzz target a short budget of fresh inputs on top of
# its seed corpus — enough to catch regressions in the determinism and
# exactness invariants without turning CI into a fuzzing farm.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzChaosInvariant' -fuzztime $(FUZZTIME) ./internal/rdd/
	$(GO) test -run '^$$' -fuzz 'FuzzShuffleLifecycle' -fuzztime $(FUZZTIME) ./internal/rdd/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosInvariant' -fuzztime $(FUZZTIME) ./internal/mapreduce/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosMiningInvariant' -fuzztime $(FUZZTIME) ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json runs the perf-gated benchmarks — the pass-2 counting kernels,
# the shuffle residency kernel, and the diagnosis layer — and renders them as
# a JSON trajectory point. CI regenerates this into a scratch file and gates
# it against the committed baseline:
#
#   make bench-json BENCH_JSON=bench-current.json
#   $(GO) run ./cmd/benchjson -check BENCH_6.json bench-current.json
#
# To refresh the committed baseline after an intentional perf change, run
# plain `make bench-json` and commit the updated BENCH_6.json.
BENCH_JSON ?= BENCH_6.json
bench-json:
	$(GO) test -run '^$$' -bench 'Pass2|ShuffleResident|Diagnosis' -benchmem -benchtime 3x -count 1 . \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)

clean:
	$(GO) clean ./...
