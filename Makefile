GO ?= go

.PHONY: build fmt test race vet vuln staticcheck check chaos diag dist-smoke dist-chaos fuzz-smoke bench bench-json clean

build:
	$(GO) build ./...

# fmt fails when any file deviates from gofmt, listing the offenders.
fmt:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

# vuln scans dependencies and stdlib usage when govulncheck is on PATH.
# The tool is not vendored, so offline checkouts skip with a note; CI
# installs it and runs the scan for real.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (CI runs it)"; fi

# staticcheck lints beyond vet when the tool is on PATH. Like vuln, it is
# not vendored, so offline checkouts skip with a note; CI installs a pinned
# version and runs it for real.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI runs it)"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# check is the CI gate: everything must build, be gofmt-clean, vet clean,
# lint clean, scan clean, and pass the full suite under the race detector in
# shuffled order (the engines are genuinely concurrent and order-independent).
check: build fmt vet staticcheck race vuln

# chaos runs the fault-injection invariant suite under the race detector:
# every Chaos* test plus the FuzzChaosInvariant seed corpora, which assert
# that seeded faults never change results and that recovery is deterministic.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/sim/ ./internal/dfs/
	$(GO) test -race -run 'Chaos' ./internal/rdd/ ./internal/mapreduce/ \
		./internal/experiments/

# diag runs the diagnosis layer end to end on a small fixed-seed dataset
# with an injected 4x straggler node: both engines mine, the analyzer builds
# the critical path and attributes the stragglers, and the run fails on any
# malformed output (critical path not summing to the makespan, analyzed
# makespan disagreeing with the engine clock, or engines disagreeing).
diag:
	$(GO) run ./cmd/experiments -exp diag -dataset T10I4D100K -scale 0.05 -diagchaos

# dist-smoke proves the distributed runtime's crash story end to end, twice,
# both under the race detector with hard timeouts: first the Go-level suite —
# the kill test (two real worker processes, one SIGKILLed mid-pass,
# byte-identical itemsets vs the in-memory sim oracle), the graceful SIGTERM
# drain, and the block-cache invariants (a second job over the same input
# reads the disk zero times; a restarted worker's cold cache re-reads with
# identical results) — then the CLI smoke mode, which forks its own workers,
# performs the same kill-and-verify through cmd/yafim, and counter-asserts
# from /metrics that the input was read from disk at most once per worker per
# split. Worker logs, the master's live protocol journal and the
# cache-metrics.prom counter dump land under artifacts/dist-smoke for CI to
# upload on failure.
DIST_SMOKE_DIR ?= artifacts/dist-smoke
dist-smoke:
	@mkdir -p $(DIST_SMOKE_DIR)
	@$(GO) test -race -count=1 -v -timeout 300s \
		-run 'TestKillWorkerMidMiningParity|TestWorkerDrainsOnSIGTERM|TestSecondJobServedFromCache|TestCacheRebuildAfterWorkerRestartParity' \
		./internal/dist/ > $(DIST_SMOKE_DIR)/kill-test.log 2>&1; \
		s=$$?; cat $(DIST_SMOKE_DIR)/kill-test.log; [ $$s -eq 0 ]
	$(GO) build -race -o $(DIST_SMOKE_DIR)/yafim ./cmd/yafim
	$(DIST_SMOKE_DIR)/yafim -dist smoke -dist-workers 2 \
		-dist-logs $(DIST_SMOKE_DIR) -timeout 120s

# dist-chaos proves the runtime has no single point of failure left: first
# the Go-level suite under the race detector — SIGKILL the MASTER mid-pass
# and resume it from the write-ahead journal (TestMasterKillResumeParity),
# mine to byte-identical results through a seeded fault-injecting transport
# (TestChaosMiningParityWordCount), the ChaosTransport determinism and fault
# unit tests, and the fetch-budget bound — then the CLI smoke mode with a
# chaos seed on every worker link, which additionally SIGKILLs a worker
# mid-run. Logs plus the master's WAL land under artifacts/dist-chaos for CI
# to upload on failure.
DIST_CHAOS_DIR ?= artifacts/dist-chaos
DIST_CHAOS_SEED ?= 42
dist-chaos:
	@mkdir -p $(DIST_CHAOS_DIR)
	@$(GO) test -race -count=1 -v -timeout 300s \
		-run 'TestMasterKillResumeParity|TestChaosMiningParityWordCount|TestChaosTransport|TestReduceFetchBudget|TestReduceDrainBeatsBudget' \
		./internal/dist/ > $(DIST_CHAOS_DIR)/chaos-test.log 2>&1; \
		s=$$?; cat $(DIST_CHAOS_DIR)/chaos-test.log; [ $$s -eq 0 ]
	$(GO) build -race -o $(DIST_CHAOS_DIR)/yafim ./cmd/yafim
	$(DIST_CHAOS_DIR)/yafim -dist smoke -dist-workers 2 \
		-dist-chaos $(DIST_CHAOS_SEED) -dist-logs $(DIST_CHAOS_DIR) -timeout 120s

# fuzz-smoke gives each fuzz target a short budget of fresh inputs on top of
# its seed corpus — enough to catch regressions in the determinism and
# exactness invariants without turning CI into a fuzzing farm.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzChaosInvariant' -fuzztime $(FUZZTIME) ./internal/rdd/
	$(GO) test -run '^$$' -fuzz 'FuzzShuffleLifecycle' -fuzztime $(FUZZTIME) ./internal/rdd/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosInvariant' -fuzztime $(FUZZTIME) ./internal/mapreduce/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosMiningInvariant' -fuzztime $(FUZZTIME) ./internal/experiments/
	$(GO) test -run '^$$' -fuzz 'FuzzRDDEclatParity' -fuzztime $(FUZZTIME) ./internal/rddeclat/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json runs the perf-gated benchmarks — the pass-2 counting kernels,
# the shuffle residency kernel, and the diagnosis layer — and renders them as
# a JSON trajectory point. CI regenerates this into a scratch file and gates
# it against the committed baseline:
#
#   make bench-json BENCH_JSON=bench-current.json
#   $(GO) run ./cmd/benchjson -check BENCH_9.json bench-current.json
#
# To refresh the committed baseline after an intentional perf change, run
# plain `make bench-json` and commit the updated BENCH_9.json.
BENCH_JSON ?= BENCH_9.json
bench-json:
	$(GO) test -run '^$$' -bench 'Pass2|ShuffleResident|Diagnosis' -benchmem -benchtime 3x -count 1 . \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)

clean:
	$(GO) clean ./...
