GO ?= go

.PHONY: build test race vet check chaos fuzz-smoke bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must build, vet clean, and pass the full
# suite under the race detector (the engines are genuinely concurrent).
check: build vet race

# chaos runs the fault-injection invariant suite under the race detector:
# every Chaos* test plus the FuzzChaosInvariant seed corpora, which assert
# that seeded faults never change results and that recovery is deterministic.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/sim/ ./internal/dfs/
	$(GO) test -race -run 'Chaos' ./internal/rdd/ ./internal/mapreduce/ \
		./internal/experiments/

# fuzz-smoke gives each fuzz target a short budget of fresh inputs on top of
# its seed corpus — enough to catch regressions in the determinism and
# exactness invariants without turning CI into a fuzzing farm.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzChaosInvariant' -fuzztime $(FUZZTIME) ./internal/rdd/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosInvariant' -fuzztime $(FUZZTIME) ./internal/mapreduce/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosMiningInvariant' -fuzztime $(FUZZTIME) ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
