GO ?= go

.PHONY: build test race vet check bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must build, vet clean, and pass the full
# suite under the race detector (the engines are genuinely concurrent).
check: build vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
