// Package trie implements a prefix trie over candidate k-itemsets — the
// other classic candidate store in Apriori implementations, and the
// design-space alternative to the paper's hash tree (internal/hashtree).
// Both expose the same Subset enumeration contract, so they are directly
// interchangeable and benchmarked against each other.
//
// A trie stores each candidate as a root-to-leaf path of items in sorted
// order. Subset enumeration walks transaction items against trie edges,
// never touching candidates outside the transaction's prefix space; unlike
// the hash tree it needs no final verification step because every reached
// leaf is an exact match.
package trie

import (
	"fmt"

	"yafim/internal/itemset"
)

// Trie is a prefix trie over candidate itemsets of one fixed length k.
type Trie struct {
	k    int
	root *node
	sets []itemset.Itemset
}

type node struct {
	children map[itemset.Item]*node
	entry    int // candidate index at depth k; -1 otherwise
}

func newNode() *node {
	return &node{children: make(map[itemset.Item]*node), entry: -1}
}

// Build constructs a trie over the given candidate k-itemsets. All
// candidates must share length k >= 1 and be canonical; Build panics
// otherwise, mirroring hashtree.Build.
func Build(candidates []itemset.Itemset) *Trie {
	if len(candidates) == 0 {
		panic("trie: Build with no candidates")
	}
	t := &Trie{k: candidates[0].Len(), root: newNode(), sets: candidates}
	if t.k < 1 {
		panic("trie: candidates must have at least one item")
	}
	for i, c := range candidates {
		if c.Len() != t.k {
			panic(fmt.Sprintf("trie: candidate %d has length %d, want %d", i, c.Len(), t.k))
		}
		cur := t.root
		for _, it := range c {
			next, ok := cur.children[it]
			if !ok {
				next = newNode()
				cur.children[it] = next
			}
			cur = next
		}
		cur.entry = i
	}
	return t
}

// K returns the candidate itemset length.
func (t *Trie) K() int { return t.k }

// Len returns the number of candidates stored.
func (t *Trie) Len() int { return len(t.sets) }

// Candidate returns the candidate with the given index.
func (t *Trie) Candidate(i int) itemset.Itemset { return t.sets[i] }

// Subset calls visit(i) for every candidate i contained in the transaction
// items (which must be canonical), returning the number of elementary
// operations performed (edges followed), for the performance model.
func (t *Trie) Subset(items itemset.Itemset, visit func(i int)) int64 {
	if items.Len() < t.k {
		return 1
	}
	return t.subset(t.root, items, 0, t.k, visit)
}

// subset explores extensions of the current node with transaction items at
// positions >= from. remaining is how many more items the path needs; the
// walk prunes branches that cannot be completed with the items left.
func (t *Trie) subset(n *node, items itemset.Itemset, from, remaining int, visit func(i int)) int64 {
	if remaining == 0 {
		if n.entry >= 0 {
			visit(n.entry)
		}
		return 1
	}
	ops := int64(1)
	// Not enough transaction items left to fill the path: prune.
	for i := from; i <= items.Len()-remaining; i++ {
		child, ok := n.children[items[i]]
		ops++
		if !ok {
			continue
		}
		ops += t.subset(child, items, i+1, remaining-1, visit)
	}
	return ops
}

// CountSupports scans the transactions and returns every candidate's
// support count plus the operations performed, matching the hashtree API.
func (t *Trie) CountSupports(transactions []itemset.Transaction) (counts []int, ops int64) {
	counts = make([]int, t.Len())
	for _, tr := range transactions {
		ops += t.Subset(tr.Items, func(i int) { counts[i]++ })
	}
	return counts, ops
}
