// Package trie implements a prefix trie over candidate k-itemsets — the
// other classic candidate store in Apriori implementations, and the
// design-space alternative to the paper's hash tree (internal/hashtree).
// Both expose the same Subset enumeration contract, so they are directly
// interchangeable and benchmarked against each other.
//
// A trie stores each candidate as a root-to-leaf path of items in sorted
// order. Subset enumeration walks transaction items against trie edges,
// never touching candidates outside the transaction's prefix space; unlike
// the hash tree it needs no final verification step because every reached
// leaf is an exact match.
//
// Build compacts the trie into a flat array layout: nodes live in one
// slice and each node's edges are a contiguous, item-sorted window of two
// parallel arrays. The walk merge-scans a node's sorted edges against the
// transaction's sorted items, so enumeration allocates nothing and follows
// no pointers.
package trie

import (
	"fmt"

	"yafim/internal/itemset"
)

// Trie is a prefix trie over candidate itemsets of one fixed length k.
type Trie struct {
	k    int
	sets []itemset.Itemset

	nodes    []tnode
	edgeItem []itemset.Item // sorted within each node's window
	edgeNode []int32
}

// tnode is one flattened trie node: its edge window and the candidate
// index stored at depth k (-1 otherwise).
type tnode struct {
	edgeLo int32
	edgeHi int32
	entry  int32
}

// buildNode is the temporary pointer node used only during Build.
type buildNode struct {
	children map[itemset.Item]*buildNode
	entry    int32
}

func newBuildNode() *buildNode {
	return &buildNode{children: make(map[itemset.Item]*buildNode), entry: -1}
}

// Build constructs a trie over the given candidate k-itemsets. All
// candidates must share length k >= 1 and be canonical; Build panics
// otherwise, mirroring hashtree.Build.
func Build(candidates []itemset.Itemset) *Trie {
	if len(candidates) == 0 {
		panic("trie: Build with no candidates")
	}
	t := &Trie{k: candidates[0].Len(), sets: candidates}
	if t.k < 1 {
		panic("trie: candidates must have at least one item")
	}
	root := newBuildNode()
	edges := 0
	for i, c := range candidates {
		if c.Len() != t.k {
			panic(fmt.Sprintf("trie: candidate %d has length %d, want %d", i, c.Len(), t.k))
		}
		cur := root
		for _, it := range c {
			next, ok := cur.children[it]
			if !ok {
				next = newBuildNode()
				cur.children[it] = next
				edges++
			}
			cur = next
		}
		cur.entry = int32(i)
	}
	t.nodes = make([]tnode, 0, edges+1)
	t.edgeItem = make([]itemset.Item, 0, edges)
	t.edgeNode = make([]int32, 0, edges)
	t.flatten(root)
	return t
}

// flatten appends n and its subtree to the flat arrays, edges sorted by
// item so the walk can merge-scan them against sorted transactions.
func (t *Trie) flatten(n *buildNode) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, tnode{entry: n.entry})
	items := make(itemset.Itemset, 0, len(n.children))
	for it := range n.children {
		items = append(items, it)
	}
	items = itemset.Canonical(items)
	lo := int32(len(t.edgeItem))
	t.edgeItem = append(t.edgeItem, items...)
	t.edgeNode = append(t.edgeNode, make([]int32, len(items))...)
	t.nodes[id].edgeLo, t.nodes[id].edgeHi = lo, int32(len(t.edgeItem))
	for i, it := range items {
		t.edgeNode[int(lo)+i] = t.flatten(n.children[it])
	}
	return id
}

// K returns the candidate itemset length.
func (t *Trie) K() int { return t.k }

// Len returns the number of candidates stored.
func (t *Trie) Len() int { return len(t.sets) }

// Candidate returns the candidate with the given index.
func (t *Trie) Candidate(i int) itemset.Itemset { return t.sets[i] }

// Subset calls visit(i) for every candidate i contained in the transaction
// items (which must be canonical), returning the number of elementary
// operations performed (edges followed), for the performance model.
func (t *Trie) Subset(items itemset.Itemset, visit func(i int)) int64 {
	if items.Len() < t.k {
		return 1
	}
	return t.subset(0, items, 0, t.k, visit)
}

// subset explores extensions of node n with transaction items at positions
// >= from. remaining is how many more items the path needs; the walk prunes
// branches that cannot be completed with the items left, and stops early
// once the node's sorted edges are exhausted.
func (t *Trie) subset(n int32, items itemset.Itemset, from, remaining int, visit func(i int)) int64 {
	nd := &t.nodes[n]
	if remaining == 0 {
		if nd.entry >= 0 {
			visit(int(nd.entry))
		}
		return 1
	}
	ops := int64(1)
	e, hi := int(nd.edgeLo), int(nd.edgeHi)
	for i := from; i <= items.Len()-remaining && e < hi; i++ {
		ops++
		for e < hi && t.edgeItem[e] < items[i] {
			e++
		}
		if e < hi && t.edgeItem[e] == items[i] {
			ops += t.subset(t.edgeNode[e], items, i+1, remaining-1, visit)
		}
	}
	return ops
}

// CountSupports scans the transactions and returns every candidate's
// support count plus the operations performed, matching the hashtree API.
func (t *Trie) CountSupports(transactions []itemset.Transaction) (counts []int, ops int64) {
	counts = make([]int, t.Len())
	for _, tr := range transactions {
		ops += t.Subset(tr.Items, func(i int) { counts[i]++ })
	}
	return counts, ops
}
