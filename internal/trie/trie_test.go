package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/hashtree"
	"yafim/internal/itemset"
)

func sets(raw ...[]itemset.Item) []itemset.Itemset {
	out := make([]itemset.Itemset, len(raw))
	for i, r := range raw {
		out[i] = itemset.New(r...)
	}
	return out
}

func TestSubsetBasic(t *testing.T) {
	tr := Build(sets(
		[]itemset.Item{1, 2}, []itemset.Item{1, 3}, []itemset.Item{2, 3},
		[]itemset.Item{2, 4}, []itemset.Item{3, 5},
	))
	if tr.K() != 2 || tr.Len() != 5 {
		t.Fatalf("trie shape k=%d len=%d", tr.K(), tr.Len())
	}
	var got []itemset.Itemset
	tr.Subset(itemset.New(1, 2, 3), func(i int) { got = append(got, tr.Candidate(i)) })
	itemset.SortSets(got)
	want := sets([]itemset.Item{1, 2}, []itemset.Item{1, 3}, []itemset.Item{2, 3})
	if len(got) != len(want) {
		t.Fatalf("matches = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("matches = %v, want %v", got, want)
		}
	}
}

func TestSubsetShortTransaction(t *testing.T) {
	tr := Build(sets([]itemset.Item{1, 2, 3}))
	count := 0
	tr.Subset(itemset.New(1, 2), func(int) { count++ })
	if count != 0 {
		t.Fatal("short transaction matched")
	}
}

func TestBuildPanics(t *testing.T) {
	cases := map[string]func(){
		"empty":         func() { Build(nil) },
		"mixed lengths": func() { Build(sets([]itemset.Item{1}, []itemset.Item{1, 2})) },
		"zero length":   func() { Build([]itemset.Itemset{{}}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCountSupports(t *testing.T) {
	tr := Build(sets([]itemset.Item{1, 2}, []itemset.Item{2, 3}))
	txs := []itemset.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3)},
		{TID: 1, Items: itemset.New(1, 2)},
		{TID: 2, Items: itemset.New(2, 3)},
	}
	counts, ops := tr.CountSupports(txs)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if ops <= 0 {
		t.Fatalf("ops = %d", ops)
	}
}

// Property: the trie and the hash tree enumerate exactly the same matches
// on random candidates and transactions — the two candidate stores are
// interchangeable.
func TestSubsetMatchesHashTreeProperty(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8%4) + 1
		universe := 18
		n := rng.Intn(30) + 1
		// Clamp to the number of distinct k-subsets available.
		maxC := 1
		for i := 0; i < k; i++ {
			maxC = maxC * (universe - i) / (i + 1)
		}
		if n > maxC {
			n = maxC
		}
		seen := map[string]bool{}
		var cands []itemset.Itemset
		for len(cands) < n {
			picks := rng.Perm(universe)[:k]
			items := make([]itemset.Item, k)
			for i, p := range picks {
				items[i] = itemset.Item(p)
			}
			s := itemset.New(items...)
			if !seen[s.Key()] {
				seen[s.Key()] = true
				cands = append(cands, s)
			}
		}
		tr := Build(cands)
		ht := hashtree.Build(cands)
		for trial := 0; trial < 5; trial++ {
			tlen := rng.Intn(universe)
			picks := rng.Perm(universe)[:tlen]
			items := make([]itemset.Item, tlen)
			for i, p := range picks {
				items[i] = itemset.Item(p)
			}
			tx := itemset.New(items...)
			gotTrie := map[string]bool{}
			tr.Subset(tx, func(i int) { gotTrie[tr.Candidate(i).Key()] = true })
			gotTree := map[string]bool{}
			ht.Subset(tx, func(i int) { gotTree[ht.Candidate(i).Key()] = true })
			if len(gotTrie) != len(gotTree) {
				return false
			}
			for key := range gotTree {
				if !gotTrie[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieSubset(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var cands []itemset.Itemset
	seen := map[string]bool{}
	for len(cands) < 10000 {
		picks := rng.Perm(200)[:3]
		s := itemset.New(itemset.Item(picks[0]), itemset.Item(picks[1]), itemset.Item(picks[2]))
		if !seen[s.Key()] {
			seen[s.Key()] = true
			cands = append(cands, s)
		}
	}
	tr := Build(cands)
	txs := make([]itemset.Itemset, 256)
	for i := range txs {
		picks := rng.Perm(200)[:20]
		items := make([]itemset.Item, 20)
		for j, p := range picks {
			items[j] = itemset.Item(p)
		}
		txs[i] = itemset.New(items...)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		tr.Subset(txs[i%len(txs)], func(int) { n++ })
	}
}
