// Package dfs implements a simulated distributed file system modelled on
// HDFS: a single namespace of immutable files, each split into fixed-size
// blocks placed on worker nodes with a configurable replication factor.
//
// File contents live in memory (the simulation runs on one machine), but
// every read and write is metered through a sim.Ledger so the performance
// model can charge disk and network time exactly where a real HDFS would:
// writes stream through a replication pipeline (disk write per replica plus
// network hops between replicas), reads stream from the nearest replica.
package dfs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"yafim/internal/chaos"
	"yafim/internal/exec"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// DefaultBlockSize mirrors the 64 MB block size of Hadoop 1.x.
const DefaultBlockSize = 64 << 20

// FileSystem is a simulated HDFS instance. It is safe for concurrent use.
type FileSystem struct {
	mu          sync.RWMutex
	nodes       int
	blockSize   int64
	replication int
	files       map[string]*file
	nextNode    int           // round-robin placement cursor
	rec         *obs.Recorder // counts I/O volume; nil-safe
	dead        []bool        // nodes lost to a crash; receive no new replicas
	plan        *chaos.Plan   // injected block-read failures; nil-safe
}

type file struct {
	blocks []block
	size   int64
}

type block struct {
	data     []byte
	replicas []int // node ids holding a copy
}

// Option configures a FileSystem.
type Option func(*FileSystem)

// WithBlockSize overrides the default 64 MB block size.
func WithBlockSize(n int64) Option {
	return func(fs *FileSystem) { fs.blockSize = n }
}

// WithReplication overrides the default replication factor of 3.
func WithReplication(r int) Option {
	return func(fs *FileSystem) { fs.replication = r }
}

// New creates a file system spanning the given number of data nodes.
func New(nodes int, opts ...Option) *FileSystem {
	if nodes <= 0 {
		panic(fmt.Sprintf("dfs: need at least one node, got %d", nodes))
	}
	fs := &FileSystem{
		nodes:       nodes,
		blockSize:   DefaultBlockSize,
		replication: 3,
		files:       make(map[string]*file),
		dead:        make([]bool, nodes),
	}
	for _, o := range opts {
		o(fs)
	}
	if fs.blockSize <= 0 {
		panic("dfs: block size must be positive")
	}
	if fs.replication <= 0 {
		fs.replication = 1
	}
	if fs.replication > nodes {
		fs.replication = nodes
	}
	return fs
}

// SetRecorder attaches a telemetry recorder that counts the file system's
// read and write volume (including replication). A nil recorder disables
// counting.
func (fs *FileSystem) SetRecorder(rec *obs.Recorder) {
	fs.mu.Lock()
	fs.rec = rec
	fs.mu.Unlock()
}

// recorder fetches the attached recorder under the lock, so counting on the
// read paths does not race with SetRecorder.
func (fs *FileSystem) recorder() *obs.Recorder {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.rec
}

// Nodes returns the number of data nodes.
func (fs *FileSystem) Nodes() int { return fs.nodes }

// BlockSize returns the configured block size in bytes.
func (fs *FileSystem) BlockSize() int64 { return fs.blockSize }

// WriteFile stores data at path, replacing any existing file. The ledger is
// charged for the replication pipeline: every replica's disk write plus the
// network transfer to each non-local replica.
func (fs *FileSystem) WriteFile(path string, data []byte, led *sim.Ledger) error {
	if path == "" {
		return fmt.Errorf("dfs: empty path")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &file{size: int64(len(data))}
	for off := int64(0); off < int64(len(data)) || (off == 0 && len(data) == 0); off += fs.blockSize {
		end := off + fs.blockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		b := block{data: data[off:end], replicas: fs.placeReplicasLocked()}
		f.blocks = append(f.blocks, b)
		if len(data) == 0 {
			break
		}
	}
	fs.files[path] = f
	if led != nil {
		led.AddDiskWrite(int64(len(data)) * int64(fs.replication))
		led.AddNet(int64(len(data)) * int64(fs.replication-1))
	}
	fs.rec.AddDFSWrite(int64(len(data)) * int64(fs.replication))
	return nil
}

func (fs *FileSystem) placeReplicasLocked() []int {
	alive := 0
	for n := 0; n < fs.nodes; n++ {
		if !fs.dead[n] {
			alive++
		}
	}
	want := fs.replication
	if alive > 0 && want > alive {
		want = alive
	}
	replicas := make([]int, 0, want)
	for len(replicas) < want {
		n := fs.nextNode
		fs.nextNode = (fs.nextNode + 1) % fs.nodes
		if fs.dead[n] && alive > 0 {
			continue
		}
		replicas = append(replicas, n)
	}
	return replicas
}

// ReadFile returns the full contents of path, charging the ledger one disk
// read of the file size.
func (fs *FileSystem) ReadFile(path string, led *sim.Ledger) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	out := make([]byte, 0, f.size)
	for _, b := range f.blocks {
		out = append(out, b.data...)
	}
	if led != nil {
		led.AddDiskRead(f.size)
	}
	fs.recorder().AddDFSRead(f.size)
	return out, nil
}

// ReadFileContext is ReadFile with cooperative cancellation: a canceled or
// expired context fails the read up front, before any bytes are charged to
// the ledger, with an error matching exec.ErrCanceled or
// exec.ErrDeadlineExceeded.
func (fs *FileSystem) ReadFileContext(ctx context.Context, path string, led *sim.Ledger) ([]byte, error) {
	if err := exec.ContextErr(ctx); err != nil {
		return nil, fmt.Errorf("dfs: read %s: %w", path, err)
	}
	return fs.ReadFile(path, led)
}

// ReadRange returns length bytes of path starting at off. Short ranges at
// end of file are truncated rather than erroring, matching HDFS semantics
// for readers that probe past EOF. The ledger is charged for the bytes
// actually returned.
func (fs *FileSystem) ReadRange(path string, off, length int64, led *sim.Ledger) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("dfs: %s: negative range (%d,%d)", path, off, length)
	}
	fs.mu.RLock()
	f, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	if off >= f.size {
		return nil, nil
	}
	end := off + length
	if end > f.size {
		end = f.size
	}
	out := make([]byte, 0, end-off)
	pos := int64(0)
	for _, b := range f.blocks {
		blockEnd := pos + int64(len(b.data))
		if blockEnd > off && pos < end {
			lo, hi := int64(0), int64(len(b.data))
			if off > pos {
				lo = off - pos
			}
			if end < blockEnd {
				hi = end - pos
			}
			out = append(out, b.data[lo:hi]...)
		}
		pos = blockEnd
	}
	if led != nil {
		led.AddDiskRead(int64(len(out)))
	}
	fs.recorder().AddDFSRead(int64(len(out)))
	// An injected block-read failure never loses data — replication always
	// has another copy — it just re-fetches the range from a remote replica,
	// paying network time on top of the disk read.
	if len(out) > 0 && fs.chaosPlan().ReadFails(path, off) {
		if led != nil {
			led.AddNet(int64(len(out)))
		}
		fs.recorder().AddBlockReadRetry()
	}
	return out, nil
}

// ReadRangeContext is ReadRange with cooperative cancellation, mirroring
// ReadFileContext.
func (fs *FileSystem) ReadRangeContext(ctx context.Context, path string, off, length int64, led *sim.Ledger) ([]byte, error) {
	if err := exec.ContextErr(ctx); err != nil {
		return nil, fmt.Errorf("dfs: read %s: %w", path, err)
	}
	return fs.ReadRange(path, off, length, led)
}

// Stat returns the size of path and the number of blocks it occupies.
func (fs *FileSystem) Stat(path string) (size int64, blocks int, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, 0, fmt.Errorf("dfs: %s: no such file", path)
	}
	return f.size, len(f.blocks), nil
}

// Exists reports whether path names a file.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Delete removes path. Deleting a missing file is an error, as in HDFS.
func (fs *FileSystem) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("dfs: %s: no such file", path)
	}
	delete(fs.files, path)
	return nil
}

// List returns the paths with the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// NodeUsage returns the bytes stored (including replicas) on each node,
// which tests use to verify balanced block placement.
func (fs *FileSystem) NodeUsage() []int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	usage := make([]int64, fs.nodes)
	for _, f := range fs.files {
		for _, b := range f.blocks {
			for _, n := range b.replicas {
				usage[n] += int64(len(b.data))
			}
		}
	}
	return usage
}

// Split describes a byte range of a file assigned to one map task, plus the
// node ids that hold a local replica of its first block (for locality-aware
// scheduling).
type Split struct {
	Path      string
	Offset    int64
	Length    int64
	Locations []int
}

// SplitsN divides path into at least minSplits input splits (subject to the
// file being large enough), the way Hadoop's FileInputFormat honours a
// requested map-task count by cutting blocks into smaller ranges. Record
// boundaries are reconciled by the record reader, not here. minSplits <= 1
// falls back to one split per block.
func (fs *FileSystem) SplitsN(path string, minSplits int) ([]Split, error) {
	blockSplits, err := fs.Splits(path)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, s := range blockSplits {
		size += s.Length
	}
	if minSplits <= len(blockSplits) || size == 0 {
		return blockSplits, nil
	}
	if int64(minSplits) > size {
		minSplits = int(size)
	}
	target := (size + int64(minSplits) - 1) / int64(minSplits)
	var out []Split
	for _, bs := range blockSplits {
		for off := bs.Offset; off < bs.Offset+bs.Length; off += target {
			length := target
			if off+length > bs.Offset+bs.Length {
				length = bs.Offset + bs.Length - off
			}
			out = append(out, Split{
				Path:      path,
				Offset:    off,
				Length:    length,
				Locations: append([]int(nil), bs.Locations...),
			})
		}
	}
	return out, nil
}

// Splits divides path into block-aligned input splits, one per block, the
// way Hadoop's FileInputFormat does. Record boundaries are reconciled by the
// record reader, not here.
func (fs *FileSystem) Splits(path string) ([]Split, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %s: no such file", path)
	}
	splits := make([]Split, 0, len(f.blocks))
	off := int64(0)
	for _, b := range f.blocks {
		if len(b.data) == 0 && f.size > 0 {
			continue
		}
		splits = append(splits, Split{
			Path:      path,
			Offset:    off,
			Length:    int64(len(b.data)),
			Locations: append([]int(nil), b.replicas...),
		})
		off += int64(len(b.data))
	}
	return splits, nil
}
