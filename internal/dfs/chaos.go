package dfs

import (
	"sort"

	"yafim/internal/chaos"
)

// SetChaos attaches a chaos plan whose BlockReadFailProb injects block-read
// failures into ReadRange (the read is retried from a remote replica and
// pays for the network hop). A nil plan disables injection.
func (fs *FileSystem) SetChaos(plan *chaos.Plan) {
	fs.mu.Lock()
	fs.plan = plan
	fs.mu.Unlock()
}

// chaosPlan fetches the attached plan under the lock, mirroring recorder().
func (fs *FileSystem) chaosPlan() *chaos.Plan {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.plan
}

// IsDead reports whether the node has been lost to a crash.
func (fs *FileSystem) IsDead(node int) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return node >= 0 && node < len(fs.dead) && fs.dead[node]
}

// KillNode simulates the permanent loss of one data node: every replica it
// held disappears and the node receives no further placements. When
// rereplicate is true the name node immediately restores the replication
// factor of every under-replicated block by copying it to a healthy node
// (HDFS's re-replication on DataNode death), deterministically — files are
// repaired in sorted path order using the same round-robin cursor as initial
// placement. It returns the number of blocks that lost a replica and the
// bytes of block data re-replicated; the caller charges the corresponding
// network/disk time to its virtual timeline. Killing an unknown or already
// dead node is a no-op.
//
// Block data is never actually discarded even if a block drops to zero live
// replicas: the simulation must keep results exact. Replication factor 3
// makes that case unreachable for single-node crashes anyway.
func (fs *FileSystem) KillNode(node int, rereplicate bool) (lostBlocks int, reReplicatedBytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if node < 0 || node >= fs.nodes || fs.dead[node] {
		return 0, 0
	}
	fs.dead[node] = true

	// Deterministic repair order: map iteration is randomised, so walk the
	// namespace sorted by path.
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	repaired := int64(0)
	for _, p := range paths {
		f := fs.files[p]
		for i := range f.blocks {
			b := &f.blocks[i]
			kept := b.replicas[:0]
			lost := false
			for _, r := range b.replicas {
				if r == node {
					lost = true
					continue
				}
				kept = append(kept, r)
			}
			b.replicas = kept
			if !lost {
				continue
			}
			lostBlocks++
			if !rereplicate {
				continue
			}
			if t := fs.reReplicaTargetLocked(b.replicas); t >= 0 {
				b.replicas = append(b.replicas, t)
				repaired++
				reReplicatedBytes += int64(len(b.data))
			}
		}
	}
	if repaired > 0 {
		fs.rec.AddReReplicatedBlocks(repaired)
		fs.rec.AddDFSWrite(reReplicatedBytes)
	}
	return lostBlocks, reReplicatedBytes
}

// reReplicaTargetLocked picks the next healthy node that does not already
// hold a replica, advancing the shared round-robin cursor; -1 if no such
// node exists.
func (fs *FileSystem) reReplicaTargetLocked(existing []int) int {
	for tries := 0; tries < fs.nodes; tries++ {
		n := fs.nextNode
		fs.nextNode = (fs.nextNode + 1) % fs.nodes
		if fs.dead[n] || containsNode(existing, n) {
			continue
		}
		return n
	}
	return -1
}

func containsNode(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
