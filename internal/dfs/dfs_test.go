package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"yafim/internal/sim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(3, WithBlockSize(8), WithReplication(2))
	data := []byte("hello distributed world")
	var led sim.Ledger
	if err := fs.WriteFile("/data/x", data, &led); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/data/x", &led)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
	c := led.Total()
	if c.DiskWrite != int64(len(data))*2 {
		t.Errorf("DiskWrite = %d, want %d", c.DiskWrite, len(data)*2)
	}
	if c.Net != int64(len(data)) {
		t.Errorf("Net = %d, want %d (one pipeline hop)", c.Net, len(data))
	}
	if c.DiskRead != int64(len(data)) {
		t.Errorf("DiskRead = %d, want %d", c.DiskRead, len(data))
	}
}

func TestWriteOverwrites(t *testing.T) {
	fs := New(2)
	if err := fs.WriteFile("/f", []byte("old"), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("newer"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f", nil)
	if err != nil || string(got) != "newer" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := New(2)
	if err := fs.WriteFile("/empty", nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty", nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %q, %v", got, err)
	}
	size, blocks, err := fs.Stat("/empty")
	if err != nil || size != 0 || blocks != 1 {
		t.Fatalf("stat = %d,%d,%v", size, blocks, err)
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs := New(1)
	if _, err := fs.ReadFile("/nope", nil); err == nil {
		t.Error("ReadFile on missing file succeeded")
	}
	if _, err := fs.ReadRange("/nope", 0, 1, nil); err == nil {
		t.Error("ReadRange on missing file succeeded")
	}
	if _, _, err := fs.Stat("/nope"); err == nil {
		t.Error("Stat on missing file succeeded")
	}
	if err := fs.Delete("/nope"); err == nil {
		t.Error("Delete on missing file succeeded")
	}
	if _, err := fs.Splits("/nope"); err == nil {
		t.Error("Splits on missing file succeeded")
	}
	if err := fs.WriteFile("", []byte("x"), nil); err == nil {
		t.Error("WriteFile with empty path succeeded")
	}
}

func TestReadRange(t *testing.T) {
	fs := New(2, WithBlockSize(4))
	data := []byte("0123456789")
	if err := fs.WriteFile("/r", data, nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off, n int64
		want   string
	}{
		{0, 10, "0123456789"},
		{0, 3, "012"},
		{3, 4, "3456"}, // crosses a block boundary
		{8, 10, "89"},  // truncated at EOF
		{10, 5, ""},    // past EOF
		{9, 0, ""},
	}
	for _, c := range cases {
		got, err := fs.ReadRange("/r", c.off, c.n, nil)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", c.off, c.n, err)
		}
		if string(got) != c.want {
			t.Errorf("ReadRange(%d,%d) = %q, want %q", c.off, c.n, got, c.want)
		}
	}
	if _, err := fs.ReadRange("/r", -1, 2, nil); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := New(2)
	for _, p := range []string{"/a/1", "/a/2", "/b/1"} {
		if err := fs.WriteFile(p, []byte(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List("/a/"); len(got) != 2 || got[0] != "/a/1" || got[1] != "/a/2" {
		t.Fatalf("List = %v", got)
	}
	if err := fs.Delete("/a/1"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/1") || !fs.Exists("/a/2") {
		t.Fatal("Exists wrong after delete")
	}
}

func TestBlockPlacementBalanced(t *testing.T) {
	fs := New(4, WithBlockSize(10), WithReplication(1))
	if err := fs.WriteFile("/big", make([]byte, 400), nil); err != nil {
		t.Fatal(err)
	}
	usage := fs.NodeUsage()
	for n, u := range usage {
		if u != 100 {
			t.Errorf("node %d usage = %d, want 100 (round robin)", n, u)
		}
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := New(2, WithReplication(5))
	var led sim.Ledger
	if err := fs.WriteFile("/f", []byte("abcd"), &led); err != nil {
		t.Fatal(err)
	}
	if c := led.Total(); c.DiskWrite != 8 {
		t.Fatalf("DiskWrite = %d, want 8 (replication capped at 2)", c.DiskWrite)
	}
}

func TestSplitsCoverFile(t *testing.T) {
	fs := New(3, WithBlockSize(7))
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	if err := fs.WriteFile("/s", data, nil); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits("/s")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("got %d splits", len(splits))
	}
	var total int64
	next := int64(0)
	for _, s := range splits {
		if s.Offset != next {
			t.Fatalf("split offset %d, want %d", s.Offset, next)
		}
		if len(s.Locations) == 0 {
			t.Fatal("split has no locations")
		}
		next += s.Length
		total += s.Length
	}
	if total != int64(len(data)) {
		t.Fatalf("splits cover %d bytes, want %d", total, len(data))
	}
}

func TestReadLinesSimple(t *testing.T) {
	fs := New(2, WithBlockSize(1024))
	content := "alpha\nbeta\ngamma\n"
	if err := fs.WriteFile("/t", []byte(content), nil); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits("/t")
	if err != nil {
		t.Fatal(err)
	}
	lines, err := fs.ReadLines(splits[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Line{{0, "alpha"}, {6, "beta"}, {11, "gamma"}}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %+v, want %+v", i, lines[i], want[i])
		}
	}
}

// splitLines runs ReadLines over every split of the file and concatenates.
func splitLines(t *testing.T, fs *FileSystem, path string) []string {
	t.Helper()
	splits, err := fs.Splits(path)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, s := range splits {
		lines, err := fs.ReadLines(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			all = append(all, l.Text)
		}
	}
	return all
}

func TestReadLinesAcrossBlockBoundaries(t *testing.T) {
	// Tiny blocks force records to straddle splits in every possible way.
	for bs := int64(1); bs <= 12; bs++ {
		fs := New(3, WithBlockSize(bs))
		content := "a\nbb\nccc\ndddd\n\neeeee"
		if err := fs.WriteFile("/t", []byte(content), nil); err != nil {
			t.Fatal(err)
		}
		got := splitLines(t, fs, "/t")
		want := []string{"a", "bb", "ccc", "dddd", "", "eeeee"}
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("blockSize=%d: got %v, want %v", bs, got, want)
		}
	}
}

// Property: for random content and block sizes, the union of per-split
// ReadLines equals the file's lines, each exactly once and in order.
func TestReadLinesExactlyOnceProperty(t *testing.T) {
	f := func(seed int64, bs8 uint8, nLines8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := int64(bs8%32) + 1
		nLines := int(nLines8 % 40)
		var sb strings.Builder
		var want []string
		for i := 0; i < nLines; i++ {
			line := strings.Repeat("x", rng.Intn(10))
			line = fmt.Sprintf("%d%s", i, line)
			want = append(want, line)
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		if nLines > 0 && rng.Intn(2) == 0 {
			// Sometimes drop the trailing newline.
			s := sb.String()
			sb.Reset()
			sb.WriteString(s[:len(s)-1])
		}
		fs := New(3, WithBlockSize(bs))
		if err := fs.WriteFile("/p", []byte(sb.String()), nil); err != nil {
			return false
		}
		splits, err := fs.Splits("/p")
		if err != nil {
			return false
		}
		var got []string
		for _, s := range splits {
			lines, err := fs.ReadLines(s, nil)
			if err != nil {
				return false
			}
			for _, l := range lines {
				got = append(got, l.Text)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	fs := New(4, WithBlockSize(64))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			path := fmt.Sprintf("/c/%d", g)
			payload := bytes.Repeat([]byte{byte('a' + g)}, 300)
			for i := 0; i < 50; i++ {
				if err := fs.WriteFile(path, payload, nil); err != nil {
					done <- err
					return
				}
				got, err := fs.ReadFile(path, nil)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, payload) {
					done <- fmt.Errorf("goroutine %d: corrupted read", g)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplitsNSubdivides(t *testing.T) {
	fs := New(3, WithBlockSize(100))
	data := make([]byte, 250) // 3 blocks: 100, 100, 50
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	if err := fs.WriteFile("/s", data, nil); err != nil {
		t.Fatal(err)
	}
	// Fewer than block count: fall back to per-block splits.
	few, err := fs.SplitsN("/s", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 3 {
		t.Fatalf("SplitsN(2) = %d splits", len(few))
	}
	// More than block count: blocks are cut into ranges covering the file.
	many, err := fs.SplitsN("/s", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) < 10 {
		t.Fatalf("SplitsN(10) = %d splits", len(many))
	}
	var total int64
	for _, s := range many {
		if s.Length <= 0 {
			t.Fatalf("empty split %+v", s)
		}
		if len(s.Locations) == 0 {
			t.Fatal("split lost block locations")
		}
		total += s.Length
	}
	if total != 250 {
		t.Fatalf("splits cover %d bytes", total)
	}
	// Requesting more splits than bytes clamps to the byte count.
	tiny := New(2, WithBlockSize(4))
	if err := tiny.WriteFile("/t", []byte("ab"), nil); err != nil {
		t.Fatal(err)
	}
	ts, err := tiny.SplitsN("/t", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tiny SplitsN = %d", len(ts))
	}
	if _, err := fs.SplitsN("/missing", 4); err == nil {
		t.Error("SplitsN on missing file succeeded")
	}
}

func TestSplitsNLinesExactlyOnce(t *testing.T) {
	fs := New(3, WithBlockSize(64))
	var content strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&content, "line-%03d\n", i)
	}
	if err := fs.WriteFile("/l", []byte(content.String()), nil); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.SplitsN("/l", 37) // awkward split count
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range splits {
		lines, err := fs.ReadLines(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			got = append(got, l.Text)
		}
	}
	if len(got) != 100 {
		t.Fatalf("read %d lines, want 100", len(got))
	}
	for i, l := range got {
		if l != fmt.Sprintf("line-%03d", i) {
			t.Fatalf("line %d = %q", i, l)
		}
	}
}
