package dfs

import (
	"bytes"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

func TestKillNodeReReplicates(t *testing.T) {
	rec := obs.New()
	fs := New(4, WithBlockSize(10), WithReplication(3))
	fs.SetRecorder(rec)
	data := bytes.Repeat([]byte("x"), 35) // 4 blocks
	if err := fs.WriteFile("/a", data, nil); err != nil {
		t.Fatal(err)
	}

	before := fs.NodeUsage()
	if before[1] == 0 {
		t.Fatal("test setup: node 1 holds no replicas")
	}

	lost, repairedBytes := fs.KillNode(1, true)
	if lost == 0 {
		t.Fatal("KillNode reported no lost blocks")
	}
	if repairedBytes == 0 {
		t.Fatal("KillNode re-replicated no bytes")
	}

	// Every block must be back at full replication, with no replica on the
	// dead node.
	splits, err := fs.Splits("/a")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range splits {
		if len(s.Locations) != 3 {
			t.Fatalf("block at %d has %d replicas after repair, want 3", s.Offset, len(s.Locations))
		}
		for _, n := range s.Locations {
			if n == 1 {
				t.Fatalf("block at %d still has a replica on the dead node", s.Offset)
			}
		}
	}
	if got := fs.NodeUsage()[1]; got != 0 {
		t.Fatalf("dead node still charged with %d bytes", got)
	}
	if c := rec.Counters(); c.ReReplicatedBlocks != int64(lost) {
		t.Fatalf("ReReplicatedBlocks = %d, want %d", c.ReReplicatedBlocks, lost)
	}

	// Contents are intact.
	got, err := fs.ReadFile("/a", nil)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("file corrupted after node loss: err=%v", err)
	}
}

func TestKillNodeWithoutReReplication(t *testing.T) {
	fs := New(3, WithBlockSize(8), WithReplication(2))
	if err := fs.WriteFile("/a", bytes.Repeat([]byte("y"), 20), nil); err != nil {
		t.Fatal(err)
	}
	lost, repaired := fs.KillNode(0, false)
	if lost == 0 {
		t.Fatal("no blocks lost a replica")
	}
	if repaired != 0 {
		t.Fatalf("re-replicated %d bytes with rereplicate=false", repaired)
	}
	splits, _ := fs.Splits("/a")
	under := 0
	for _, s := range splits {
		if len(s.Locations) < 2 {
			under++
		}
	}
	if under != lost {
		t.Fatalf("under-replicated blocks %d, want %d", under, lost)
	}
	// Data still readable from surviving replicas.
	if _, err := fs.ReadFile("/a", nil); err != nil {
		t.Fatalf("read after unrepaired node loss: %v", err)
	}
}

func TestKillNodeIdempotentAndDeterministic(t *testing.T) {
	build := func() *FileSystem {
		fs := New(5, WithBlockSize(7), WithReplication(3))
		fs.WriteFile("/b", bytes.Repeat([]byte("b"), 30), nil)
		fs.WriteFile("/a", bytes.Repeat([]byte("a"), 30), nil)
		return fs
	}
	fs1, fs2 := build(), build()
	fs1.KillNode(2, true)
	fs2.KillNode(2, true)
	if lost, rb := fs1.KillNode(2, true); lost != 0 || rb != 0 {
		t.Fatalf("second kill of the same node did work: %d blocks, %d bytes", lost, rb)
	}
	for _, p := range []string{"/a", "/b"} {
		s1, _ := fs1.Splits(p)
		s2, _ := fs2.Splits(p)
		for i := range s1 {
			if len(s1[i].Locations) != len(s2[i].Locations) {
				t.Fatalf("%s block %d: replica counts differ", p, i)
			}
			for j := range s1[i].Locations {
				if s1[i].Locations[j] != s2[i].Locations[j] {
					t.Fatalf("%s block %d: replica placement not deterministic", p, i)
				}
			}
		}
	}
	if !fs1.IsDead(2) || fs1.IsDead(0) {
		t.Fatal("IsDead wrong after kill")
	}
}

func TestWritesAvoidDeadNodes(t *testing.T) {
	fs := New(3, WithBlockSize(16), WithReplication(3))
	fs.KillNode(1, true)
	if err := fs.WriteFile("/new", bytes.Repeat([]byte("z"), 40), nil); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/new")
	for _, s := range splits {
		// Replication clamps to the 2 surviving nodes.
		if len(s.Locations) != 2 {
			t.Fatalf("new block has %d replicas, want 2 (survivors)", len(s.Locations))
		}
		for _, n := range s.Locations {
			if n == 1 {
				t.Fatal("new block placed on a dead node")
			}
		}
	}
}

func TestBlockReadFailureChargesRetry(t *testing.T) {
	rec := obs.New()
	fs := New(3, WithBlockSize(64), WithReplication(2))
	fs.SetRecorder(rec)
	data := bytes.Repeat([]byte("r"), 256)
	fs.WriteFile("/a", data, nil)

	// Probability 1: every read's first replica fails and is retried
	// remotely, charging the range's bytes to the network on top of disk.
	fs.SetChaos(&chaos.Plan{Seed: 1, BlockReadFailProb: 1})
	led := new(sim.Ledger)
	got, err := fs.ReadRange("/a", 0, 100, led)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:100]) {
		t.Fatal("injected read failure corrupted data")
	}
	c := led.Total()
	if c.DiskRead != 100 || c.Net != 100 {
		t.Fatalf("cost = %+v, want 100 disk + 100 net", c)
	}
	if rec.Counters().BlockReadRetries != 1 {
		t.Fatalf("BlockReadRetries = %d, want 1", rec.Counters().BlockReadRetries)
	}

	// Disabled plan: no net charge.
	fs.SetChaos(nil)
	led2 := new(sim.Ledger)
	fs.ReadRange("/a", 0, 100, led2)
	if c2 := led2.Total(); c2.Net != 0 {
		t.Fatalf("nil plan still charged net: %+v", c2)
	}
}
