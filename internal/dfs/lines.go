package dfs

import (
	"bytes"
	"context"

	"yafim/internal/sim"
)

// Line is one text record produced by a line record reader: the byte offset
// of the line start within the file (the conventional MapReduce key) and the
// line's text without its trailing newline.
type Line struct {
	Offset int64
	Text   string
}

// readAhead is how far past a split's end the reader extends, chunk by
// chunk, to complete a record that crosses the boundary.
const readAhead = 4096

// ReadLines reads the text records belonging to a split using Hadoop's
// LineRecordReader convention: a split that does not start at offset zero
// discards its first line (whether partial or whole — it belongs to the
// previous split), and every split keeps reading records whose first byte
// lies at or before the split's end, extending past the boundary as needed.
// Together the splits of a file yield every line exactly once.
func (fs *FileSystem) ReadLines(split Split, led *sim.Ledger) ([]Line, error) {
	return fs.ReadLinesContext(context.Background(), split, led)
}

// ReadLinesContext is ReadLines with cooperative cancellation: the context is
// checked before the split's main range read and again before every
// read-ahead chunk, so a canceled task stops within one chunk of extra I/O
// even on records that span many blocks.
func (fs *FileSystem) ReadLinesContext(ctx context.Context, split Split, led *sim.Ledger) ([]Line, error) {
	size, _, err := fs.Stat(split.Path)
	if err != nil {
		return nil, err
	}
	start := split.Offset
	end := split.Offset + split.Length
	if end > size {
		end = size
	}
	if start >= size || start >= end {
		return nil, nil
	}
	buf, err := fs.ReadRangeContext(ctx, split.Path, start, end-start, led)
	if err != nil {
		return nil, err
	}
	bufStart := start // absolute file offset of buf[0]
	pos := 0          // index of first unconsumed byte in buf

	if start > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			// The split lies entirely inside one long line that started in an
			// earlier split; it contributes no records of its own.
			return nil, nil
		}
		pos = nl + 1
	}

	var lines []Line
	for {
		lineStart := bufStart + int64(pos)
		if lineStart > end || lineStart >= size {
			// Records starting strictly past the boundary belong to the next
			// split (which will discard its leading line to compensate).
			break
		}
		nl := bytes.IndexByte(buf[pos:], '\n')
		for nl < 0 && bufStart+int64(len(buf)) < size {
			chunk, err := fs.ReadRangeContext(ctx, split.Path, bufStart+int64(len(buf)), readAhead, led)
			if err != nil {
				return nil, err
			}
			if len(chunk) == 0 {
				break
			}
			buf = append(buf, chunk...)
			nl = bytes.IndexByte(buf[pos:], '\n')
		}
		if nl < 0 {
			// Final record, unterminated at EOF.
			lines = append(lines, Line{Offset: lineStart, Text: string(buf[pos:])})
			break
		}
		lines = append(lines, Line{Offset: lineStart, Text: string(buf[pos : pos+nl])})
		pos += nl + 1
	}
	return lines, nil
}
