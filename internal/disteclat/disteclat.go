// Package disteclat implements Dist-Eclat (Moens, Aksehirli & Goethals,
// reference [24] of the paper) on the RDD engine: the vertical-layout
// counterpart to YAFIM's level-wise mining. The tidlist database is built
// with one shuffle, broadcast to the cluster, and the prefix subtrees of
// the search space are then mined depth-first in parallel, one task batch
// per group of frequent-item prefixes.
//
// Where YAFIM runs one synchronised job per itemset length, Dist-Eclat
// needs a fixed number of jobs regardless of lattice depth — the speed-
// oriented trade-off its authors describe — at the cost of broadcasting the
// vertical database to every worker.
package disteclat

import (
	"fmt"
	"sort"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/rdd"
	"yafim/internal/sim"
)

// Config parameterises a mining run.
type Config struct {
	// MinSupport is the relative minimum support threshold in (0,1].
	MinSupport float64
	// NumPartitions sets task granularity (0 = cluster core count).
	NumPartitions int
}

// tidlist is a sorted list of transaction ids.
type tidlist []int32

// SizeBytes reports the tidlist's serialized size to the shuffle cost
// model (rdd.Sizer).
func (t tidlist) SizeBytes() int64 { return int64(4*len(t)) + 4 }

// vertical is the broadcast payload: per frequent item, its tidlist.
type vertical struct {
	items []itemset.Item // frequent items, ascending
	tids  map[itemset.Item]tidlist
}

// Mine runs Dist-Eclat over the transaction file at path.
func Mine(ctx *rdd.Context, fs *dfs.FileSystem, path string, cfg Config) (*apriori.Trace, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("disteclat: MinSupport %v out of (0,1]", cfg.MinSupport)
	}
	parts := cfg.NumPartitions
	if parts <= 0 {
		parts = ctx.Config().TotalCores()
	}

	lines, err := rdd.TextFile(ctx, fs, path, parts)
	if err != nil {
		return nil, fmt.Errorf("disteclat: %w", err)
	}
	trans := rdd.MapPartitions(lines, "transactions",
		func(_ int, rows []string, led *sim.Ledger) ([]itemset.Itemset, error) {
			out := make([]itemset.Itemset, 0, len(rows))
			bytes := 0
			for _, row := range rows {
				t, err := parseTransaction(row)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
				bytes += len(row)
			}
			led.AddCPU(float64(bytes))
			return out, nil
		}).Cache()

	// Assign global transaction ids: per-partition counts, then offsets.
	counts, err := rdd.Collect(rdd.MapPartitions(trans, "partitionSizes",
		func(_ int, rows []itemset.Itemset, _ *sim.Ledger) ([]int, error) {
			return []int{len(rows)}, nil
		}))
	if err != nil {
		return nil, fmt.Errorf("disteclat: sizing partitions: %w", err)
	}
	offsets := make([]int32, len(counts)+1)
	for i, c := range counts {
		offsets[i+1] = offsets[i] + int32(c)
	}
	n := int64(offsets[len(counts)])
	if n == 0 {
		return nil, fmt.Errorf("disteclat: %s holds no transactions", path)
	}
	minCount := minSupportCount(cfg.MinSupport, n)

	// One shuffle builds the vertical layout: (item, [tid]) pairs combined
	// into full tidlists, pruned to frequent items.
	pairs := rdd.MapPartitions(trans, "itemTids",
		func(p int, rows []itemset.Itemset, led *sim.Ledger) ([]rdd.Pair[int32, tidlist], error) {
			var out []rdd.Pair[int32, tidlist]
			for i, t := range rows {
				tid := offsets[p] + int32(i)
				for _, it := range t {
					out = append(out, rdd.Pair[int32, tidlist]{Key: int32(it), Value: tidlist{tid}})
				}
			}
			led.AddCPU(float64(len(out)))
			return out, nil
		})
	lists := rdd.ReduceByKey(pairs, "tidlists", mergeTids, parts)
	frequent := rdd.Filter(lists, "frequentTidlists", func(kv rdd.Pair[int32, tidlist]) bool {
		return len(kv.Value) >= minCount
	})
	collected, err := rdd.Collect(frequent)
	if err != nil {
		return nil, fmt.Errorf("disteclat: building tidlists: %w", err)
	}

	res := &apriori.Result{MinSupport: minCount}
	trace := &apriori.Trace{Result: res}
	buildDone := jobsDuration(ctx, 0)
	trace.Passes = append(trace.Passes, apriori.PassStat{
		K: 1, Candidates: int(n), Frequent: len(collected), Duration: buildDone,
	})
	if len(collected) == 0 {
		return trace, nil
	}

	v := &vertical{tids: make(map[itemset.Item]tidlist, len(collected))}
	var l1 []apriori.SetCount
	var payload int64
	for _, kv := range collected {
		it := itemset.Item(kv.Key)
		v.items = append(v.items, it)
		v.tids[it] = kv.Value
		l1 = append(l1, apriori.SetCount{Set: itemset.New(it), Count: len(kv.Value)})
		payload += int64(4*len(kv.Value) + 8)
	}
	// Reduce partitions interleave hash ranges, so restore the global item
	// order the prefix walk relies on.
	sort.Slice(v.items, func(i, j int) bool { return v.items[i] < v.items[j] })
	res.Levels = append(res.Levels, apriori.NewLevel(1, l1))
	bc := rdd.NewBroadcast(ctx, v, payload)

	// Mine the prefix subtrees in parallel: prefix i explores itemsets
	// {items[i], items[j>i], ...} by tidlist intersection.
	prefixes := rdd.Parallelize(ctx, "prefixes", seq(len(v.items)), parts)
	mined := rdd.MapPartitions(prefixes, "mineSubtrees",
		func(_ int, idxs []int, led *sim.Ledger) ([]apriori.SetCount, error) {
			shared := bc.Acquire(led)
			var out []apriori.SetCount
			for _, i := range idxs {
				mineSubtree(shared, i, minCount, led, &out)
			}
			return out, nil
		})
	deep, err := rdd.Collect(mined)
	if err != nil {
		return nil, fmt.Errorf("disteclat: mining subtrees: %w", err)
	}
	byLevel := map[int][]apriori.SetCount{}
	for _, sc := range deep {
		byLevel[sc.Set.Len()] = append(byLevel[sc.Set.Len()], sc)
	}
	for k := 2; ; k++ {
		sets, ok := byLevel[k]
		if !ok {
			break
		}
		res.Levels = append(res.Levels, apriori.NewLevel(k, sets))
	}

	trace.Passes = append(trace.Passes, apriori.PassStat{
		K: res.MaxK(), Candidates: len(v.items), Frequent: res.NumFrequent(),
		Duration: jobsDuration(ctx, 0) - buildDone,
	})
	return trace, nil
}

// mineSubtree explores all frequent extensions of prefix items[i] by
// depth-first tidlist intersection, charging one op per tid touched.
func mineSubtree(v *vertical, i, minCount int, led *sim.Ledger, out *[]apriori.SetCount) {
	var dfs func(prefix itemset.Itemset, prefixTids tidlist, from int)
	dfs = func(prefix itemset.Itemset, prefixTids tidlist, from int) {
		for j := from; j < len(v.items); j++ {
			other := v.items[j]
			shared := intersect(prefixTids, v.tids[other])
			led.AddCPU(float64(len(prefixTids) + len(v.tids[other])))
			if len(shared) < minCount {
				continue
			}
			set := prefix.Extend(other)
			*out = append(*out, apriori.SetCount{Set: set, Count: len(shared)})
			dfs(set, shared, j+1)
		}
	}
	root := v.items[i]
	dfs(itemset.New(root), v.tids[root], i+1)
}

func mergeTids(a, b tidlist) tidlist {
	out := make(tidlist, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func intersect(a, b tidlist) tidlist {
	out := make(tidlist, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func parseTransaction(line string) (itemset.Itemset, error) {
	var items []itemset.Item
	v, inNum := 0, false
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] >= '0' && line[i] <= '9' {
			v = v*10 + int(line[i]-'0')
			inNum = true
			continue
		}
		if i < len(line) && line[i] != ' ' && line[i] != '\t' {
			return nil, fmt.Errorf("disteclat: bad transaction line %q", line)
		}
		if inNum {
			items = append(items, itemset.Item(v))
			v, inNum = 0, false
		}
	}
	return itemset.New(items...), nil
}

func minSupportCount(rel float64, n int64) int {
	c := int(rel * float64(n))
	if float64(c) < rel*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// jobsDuration sums job durations from the mark-th report onward.
func jobsDuration(ctx *rdd.Context, mark int) time.Duration {
	var d time.Duration
	for _, r := range ctx.Reports()[mark:] {
		d += r.Duration()
	}
	return d
}
