package disteclat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/rdd"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func stage(t *testing.T, db *itemset.DB) (*rdd.Context, *dfs.FileSystem, string) {
	t.Helper()
	fs := dfs.New(4, dfs.WithBlockSize(32), dfs.WithReplication(2))
	path := "/data/" + db.Name + ".dat"
	if _, err := dataset.Stage(fs, path, db); err != nil {
		t.Fatal(err)
	}
	ctx, err := rdd.NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	return ctx, fs, path
}

func TestMineMatchesSequentialOracle(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want) {
		t.Fatalf("Dist-Eclat disagrees with oracle:\n got %v\nwant %v",
			got.Result.All(), want.All())
	}
	if len(got.Passes) != 2 {
		t.Fatalf("trace passes = %d, want 2 (build + mine)", len(got.Passes))
	}
	for i, p := range got.Passes {
		if p.Duration <= 0 {
			t.Errorf("pass %d duration %v", i, p.Duration)
		}
	}
}

func TestMineInvalidInputs(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	if _, err := Mine(ctx, fs, path, Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := Mine(ctx, fs, "/missing", Config{MinSupport: 0.5}); err == nil {
		t.Error("missing input accepted")
	}
	bad := dfs.New(2)
	if err := bad.WriteFile("/bad.dat", []byte("1 zap\n"), nil); err != nil {
		t.Fatal(err)
	}
	badCtx, err := rdd.NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(badCtx, bad, "/bad.dat", Config{MinSupport: 0.5}); err == nil {
		t.Error("malformed transaction accepted")
	}
}

func TestMineNothingFrequent(t *testing.T) {
	db := itemset.NewDB("sparse", [][]itemset.Item{{1}, {2}, {3}, {4}})
	ctx, fs, path := stage(t, db)
	got, err := Mine(ctx, fs, path, Config{MinSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.NumFrequent() != 0 {
		t.Fatalf("frequent = %d", got.Result.NumFrequent())
	}
}

func TestMergeAndIntersect(t *testing.T) {
	a, b := tidlist{1, 3, 5}, tidlist{2, 3, 6}
	m := mergeTids(a, b)
	if len(m) != 5 || m[0] != 1 || m[4] != 6 {
		t.Fatalf("merge = %v", m)
	}
	i := intersect(a, b)
	if len(i) != 1 || i[0] != 3 {
		t.Fatalf("intersect = %v", i)
	}
}

// Property: Dist-Eclat equals the sequential oracle on random databases.
func TestMineMatchesOracleProperty(t *testing.T) {
	f := func(seed int64, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.15 + float64(sup8%7)/10.0
		rows := make([][]itemset.Item, rng.Intn(20)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(8)))
			}
		}
		db := itemset.NewDB("rand", rows)
		fs := dfs.New(3, dfs.WithBlockSize(16))
		if _, err := dataset.Stage(fs, "/r.dat", db); err != nil {
			return false
		}
		ctx, err := rdd.NewContext(cluster.Local())
		if err != nil {
			return false
		}
		got, err := Mine(ctx, fs, "/r.dat", Config{MinSupport: sup})
		if err != nil {
			return false
		}
		want, err := apriori.Mine(db, sup, apriori.Options{})
		if err != nil {
			return false
		}
		return got.Result.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
