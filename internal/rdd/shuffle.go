package rdd

import (
	"fmt"
	"sync"

	"yafim/internal/sim"
)

// shufflePhase is the lifecycle state of one shuffle's map-side output.
// The legal transitions form the state machine documented in DESIGN.md:
//
//	pending ──map stage ok──▶ mapped ──Unpersist/FreeShuffles/Close──▶ freed
//	   ▲                        │ ▲
//	   │                        │ └──KillNode drops slices; recovery refills──┘
//	   └──────map stage failed──┴──────────────────────────▶ invalidated
//
// freed and invalidated both re-run the map stage on the next action; they
// are distinct states only so telemetry can tell reclamation (deliberate,
// free) from failure (an error the lineage recovers from).
type shufflePhase int

const (
	shufflePending     shufflePhase = iota // map stage has never run
	shuffleMapped                          // map output resident (possibly with node-loss holes)
	shuffleFreed                           // output reclaimed; next action re-runs the map stage
	shuffleInvalidated                     // map stage failed or was canceled; next action retries
)

// shuffleMissingError is a reduce-side fetch failure: a task went to read
// shuffle map output and found it gone (a node loss between the map stage
// and the read, or a read before any map stage ran). Like Spark's
// FetchFailedException it is not retried at the task level — retrying the
// fetch cannot regenerate the data — instead the driver re-prepares the
// lineage (recovering exactly the missing map partitions) and resubmits the
// stage.
type shuffleMissingError struct {
	name string
}

func (e *shuffleMissingError) Error() string {
	return fmt.Sprintf("rdd: %s: shuffle map output missing at read", e.name)
}

// maxStageResubmits bounds how many times an action re-prepares and
// resubmits after reduce-side fetch failures, mirroring Spark's stage
// attempt limit. One planned node crash needs one resubmission; the bound
// only stops a pathological loop.
const maxStageResubmits = 4

// shuffleCore is the non-generic lifecycle bookkeeping shared by every
// shuffle operator (CombineByKey, Repartition). The generic operator owns
// the typed buckets; the core owns the phase, the per-map-task residency and
// spill accounting, and the Context registration that makes error
// invalidation, node-loss recovery and reclamation work.
//
// Map task p's output is considered resident on virtual node p mod nodes,
// the same placement convention cacheState uses, so KillNode destroys
// exactly the slices a real executor loss would.
type shuffleCore struct {
	ctx  *Context
	name string

	mu       sync.Mutex
	phase    shufflePhase
	present  []bool  // map task output resident
	mapBytes []int64 // per-map-task resident spill bytes

	// dropData releases the typed buckets of one map task; dropAll releases
	// them all. Both run with mu held and must not call back into the core.
	dropData func(mapTask int)
	dropAll  func()
}

// newShuffleCore creates the lifecycle state for one shuffle with the given
// map-side task count and registers it with the context, which drives node
// loss (KillNode), reclamation (FreeShuffles, Close) and accounting.
func newShuffleCore(ctx *Context, name string, mapTasks int,
	dropData func(mapTask int), dropAll func()) *shuffleCore {
	st := &shuffleCore{
		ctx:      ctx,
		name:     name,
		present:  make([]bool, mapTasks),
		mapBytes: make([]int64, mapTasks),
		dropData: dropData,
		dropAll:  dropAll,
	}
	ctx.registerShuffle(st)
	return st
}

// plan decides what the next prepare must execute: the full map stage
// (first run, after an error, or after reclamation) or a recovery run of
// just the map tasks whose output a node loss destroyed. An empty missing
// list with runAll false means the shuffle is ready as is.
func (st *shuffleCore) plan() (missing []int, runAll bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.phase != shuffleMapped {
		return nil, true
	}
	for p, ok := range st.present {
		if !ok {
			missing = append(missing, p)
		}
	}
	return missing, false
}

// ready reports whether every map task's output is resident, i.e. a reduce
// task may fetch. prepare establishes this before any compute runs.
func (st *shuffleCore) ready() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.phase != shuffleMapped {
		return false
	}
	for _, ok := range st.present {
		if !ok {
			return false
		}
	}
	return true
}

// commit records map tasks whose output just became resident, with their
// spill bytes, moving the shuffle to mapped and charging the context's
// per-node residency. parts is nil to commit every map task (a full run).
func (st *shuffleCore) commit(parts []int, bytes []int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.phase = shuffleMapped
	if parts == nil {
		for p := range st.present {
			st.commitLocked(p, bytes[p])
		}
		return
	}
	for i, p := range parts {
		st.commitLocked(p, bytes[i])
	}
}

func (st *shuffleCore) commitLocked(p int, n int64) {
	if st.present[p] {
		st.ctx.shuffleAccount(p, -st.mapBytes[p])
	}
	st.present[p] = true
	st.mapBytes[p] = n
	st.ctx.shuffleAccount(p, n)
}

// invalidate resets the shuffle after a failed or canceled map stage: any
// partial output is dropped and the next action re-runs the stage instead
// of replaying the stale error. This is the write-once-bug fix.
func (st *shuffleCore) invalidate() {
	st.releaseAll(shuffleInvalidated)
}

// free reclaims the shuffle's resident map output (Unpersist, the facade's
// pass-boundary hook, Close). The lineage stays valid: a later action
// re-runs the map stage.
func (st *shuffleCore) free() {
	st.releaseAll(shuffleFreed)
}

func (st *shuffleCore) releaseAll(to shufflePhase) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.phase == shufflePending {
		// Nothing ever ran: keep pending as pending so a never-run shuffle
		// does not pretend it was freed or failed.
		return
	}
	var freed, freedBytes int64
	for p, ok := range st.present {
		if !ok {
			continue
		}
		st.ctx.shuffleAccount(p, -st.mapBytes[p])
		freed++
		freedBytes += st.mapBytes[p]
		st.present[p] = false
		st.mapBytes[p] = 0
	}
	st.dropAll()
	st.phase = to
	if to == shuffleFreed && freed > 0 {
		st.ctx.rec.AddShuffleFrees(freed)
		st.ctx.rec.AddEvent("shuffle_free", st.name, freed, freedBytes)
	}
}

// dropNode destroys the map-output slices resident on a lost node. The
// shuffle stays mapped; the next action's prepare detects the holes and
// re-runs exactly the missing map tasks from lineage.
func (st *shuffleCore) dropNode(node, nodes int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.phase != shuffleMapped {
		return
	}
	var dropped, droppedBytes int64
	for p, ok := range st.present {
		if !ok || p%nodes != node {
			continue
		}
		st.ctx.shuffleAccount(p, -st.mapBytes[p])
		dropped++
		droppedBytes += st.mapBytes[p]
		st.present[p] = false
		st.mapBytes[p] = 0
		st.dropData(p)
	}
	if dropped > 0 {
		st.ctx.rec.AddShuffleFrees(dropped)
		st.ctx.rec.AddEvent("shuffle_drop", st.name, dropped, droppedBytes)
	}
}

// recover runs the lineage-driven re-execution of the missing map tasks:
// a sub-stage over just those partitions, charged like the chaos
// fetch-failure path (the reduce's fetch found the output gone, so the
// parent partitions are rematerialised — cache hits when cached — and the
// map-side combine and spill are paid again).
func (st *shuffleCore) recover(missing []int, prefs [][]int, lineage []string,
	runMap func(p int, led *sim.Ledger) error, partBytes func(p int) int64) error {
	ctx := st.ctx
	for range missing {
		ctx.rec.AddFetchFailure()
	}
	ctx.rec.AddStageRerun()
	var sub [][]int
	if prefs != nil {
		sub = make([][]int, len(missing))
		for i, p := range missing {
			if p < len(prefs) {
				sub[i] = prefs[p]
			}
		}
	}
	err := ctx.runTasks(st.name+":map-recover", lineage, len(missing), sub,
		func(i int, led *sim.Ledger) error { return runMap(missing[i], led) })
	if err != nil {
		st.invalidate()
		return err
	}
	bytes := make([]int64, len(missing))
	for i, p := range missing {
		bytes[i] = partBytes(p)
	}
	st.commit(missing, bytes)
	ctx.rec.AddMapReruns(int64(len(missing)))
	return nil
}
