package rdd

import (
	"reflect"
	"testing"

	"yafim/internal/cluster"
)

// CombineByKey with a slice combiner is groupByKey: values sharing a key
// collect into one slice, built map-side so the shuffle carries one
// combiner per distinct key per map task.
func TestCombineByKeyGroups(t *testing.T) {
	ctx, err := NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair[string, int]{
		{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5}, {"a", 6},
	}
	r := Parallelize(ctx, "p", pairs, 3)
	grouped := CombineByKey(r, "group",
		func(v int) []int { return []int{v} },
		func(c []int, v int) []int { return append(c, v) },
		func(a, b []int) []int { return append(a, b...) },
		2)
	out, err := Collect(grouped)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range out {
		sum := 0
		for _, v := range kv.Value {
			sum += v
		}
		got[kv.Key] = sum
	}
	want := map[string]int{"a": 10, "b": 7, "c": 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grouped sums = %v, want %v", got, want)
	}
}

// ReduceByKey is CombineByKey with the identity combiner; both must produce
// the same partitions, in the same order, at the same metered cost.
func TestCombineByKeyMatchesReduceByKey(t *testing.T) {
	mk := func() (*Context, *RDD[Pair[int, int]]) {
		ctx, err := NewContext(cluster.Local())
		if err != nil {
			t.Fatal(err)
		}
		pairs := make([]Pair[int, int], 1000)
		for i := range pairs {
			pairs[i] = Pair[int, int]{i % 37, 1}
		}
		return ctx, Parallelize(ctx, "p", pairs, 8)
	}

	ctxR, r := mk()
	red, err := Collect(ReduceByKey(r, "sum", func(a, b int) int { return a + b }, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctxC, c := mk()
	com, err := Collect(CombineByKey(c, "sum",
		func(v int) int { return v },
		func(acc, v int) int { return acc + v },
		func(a, b int) int { return a + b },
		4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(red, com) {
		t.Fatalf("ReduceByKey = %v\nCombineByKey = %v", red, com)
	}

	// The cost model must not distinguish the two formulations.
	rr, cr := ctxR.Reports(), ctxC.Reports()
	if len(rr) != len(cr) {
		t.Fatalf("job counts differ: %d vs %d", len(rr), len(cr))
	}
	for i := range rr {
		if rr[i].Duration() != cr[i].Duration() {
			t.Fatalf("job %d duration %v vs %v", i, rr[i].Duration(), cr[i].Duration())
		}
	}
}

// Map-side combining must shrink what a shuffle moves: many duplicate keys
// per partition spill one combined record each.
func TestCombineByKeyCombinesMapSide(t *testing.T) {
	ctx, err := NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair[int, int], 4096)
	for i := range pairs {
		pairs[i] = Pair[int, int]{i % 4, 1} // 4 distinct keys
	}
	r := Parallelize(ctx, "p", pairs, 4)
	summed := ReduceByKey(r, "sum", func(a, b int) int { return a + b }, 2)
	if _, err := Collect(summed); err != nil {
		t.Fatal(err)
	}
	// 4 map tasks x at most 4 keys x 16 bytes/pair bounds the shuffle far
	// below the unaggregated 4096 records.
	var shuffled int64
	for _, rep := range ctx.Reports() {
		for _, st := range rep.Stages {
			if st.Name == "sum" {
				shuffled = st.Total.Net
			}
		}
	}
	if shuffled == 0 || shuffled > 4*4*16 {
		t.Fatalf("shuffle moved %d bytes; map-side combining missing", shuffled)
	}
}
