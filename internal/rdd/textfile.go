package rdd

import (
	"yafim/internal/dfs"
	"yafim/internal/sim"
)

// TextFile creates an RDD of the lines of a DFS file, one partition per
// input split, mirroring SparkContext.textFile(path, minSplits) over HDFS:
// one split per block by default, finer ranges when minSplits asks for more
// parallelism. Reading a partition charges the split's disk traffic plus one
// CPU op per line; cache the result to pay that only once across iterations.
func TextFile(ctx *Context, fs *dfs.FileSystem, path string, minSplits int) (*RDD[string], error) {
	ctx.registerFS(fs)
	splits, err := fs.SplitsN(path, minSplits)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		splits = []dfs.Split{{Path: path}}
	}
	out := newRDD(ctx, "textFile("+path+")", len(splits), nil,
		func(p int, led *sim.Ledger) ([]string, error) {
			lines, err := fs.ReadLinesContext(ctx.Ctx(), splits[p], led)
			if err != nil {
				return nil, err
			}
			out := make([]string, len(lines))
			for i, l := range lines {
				out[i] = l.Text
			}
			led.AddCPU(float64(len(lines)))
			return out, nil
		})
	// Each partition prefers the nodes holding its split's block replicas
	// (valid because the engines size the DFS to the cluster's node count).
	out.prefs = make([][]int, len(splits))
	for i, s := range splits {
		out.prefs[i] = s.Locations
	}
	return out, nil
}
