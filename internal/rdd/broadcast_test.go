package rdd

import (
	"testing"

	"yafim/internal/cluster"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// collectWithBroadcast runs one job whose tasks Acquire the broadcast value
// and returns the job's report.
func collectWithBroadcast(t *testing.T, ctx *Context, bc *Broadcast[int]) sim.JobReport {
	t.Helper()
	r := MapPartitions(Parallelize(ctx, "nums", ints(8), 4), "use-bc",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			v := bc.Acquire(led)
			out := make([]int, len(rows))
			for i, x := range rows {
				out[i] = x + v
			}
			return out, nil
		})
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	reports := ctx.Reports()
	return reports[len(reports)-1]
}

// TestBroadcastChargesDistributionOnce verifies the §IV-C model: creating a
// broadcast charges one tree-structured distribution to the next job's
// overhead, tasks acquire it for free, and the recorder sees the payload as
// broadcast (not naive-shipped) bytes.
func TestBroadcastChargesDistributionOnce(t *testing.T) {
	cfg := cluster.Local()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))

	// Warm up so the application's one-time JobStartup is out of the way,
	// then measure a baseline job with a zero-byte broadcast: same stages,
	// no payload.
	collectWithBroadcast(t, ctx, NewBroadcast(ctx, 1, 0))
	base := collectWithBroadcast(t, ctx, NewBroadcast(ctx, 1, 0))

	const bytes = int64(1 << 20)
	bc := NewBroadcast(ctx, 2, bytes)
	if bc.Value() != 2 || bc.Bytes() != bytes {
		t.Fatalf("broadcast accessors: value=%d bytes=%d", bc.Value(), bc.Bytes())
	}
	rep := collectWithBroadcast(t, ctx, bc)

	want := broadcastTime(cfg, bytes)
	if got := rep.Overhead - base.Overhead; got != want {
		t.Errorf("broadcast overhead = %v, want %v", got, want)
	}
	c := rec.Counters()
	if c.BroadcastBytes != bytes {
		t.Errorf("BroadcastBytes = %d, want %d", c.BroadcastBytes, bytes)
	}
	if c.NaiveShipBytes != 0 {
		t.Errorf("NaiveShipBytes = %d, want 0 with broadcasting on", c.NaiveShipBytes)
	}
}

// TestBroadcastNaiveShipping verifies the WithoutBroadcast ablation: creation
// is free, every Acquire charges the task's ledger for the payload, and the
// job pays the driver's serialized uplink for the total shipped volume.
func TestBroadcastNaiveShipping(t *testing.T) {
	cfg := cluster.Local()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec), WithoutBroadcast())

	collectWithBroadcast(t, ctx, NewBroadcast(ctx, 1, 0)) // pay JobStartup
	base := collectWithBroadcast(t, ctx, NewBroadcast(ctx, 1, 0))

	const bytes = int64(1 << 20)
	bc := NewBroadcast(ctx, 3, bytes)
	rep := collectWithBroadcast(t, ctx, bc)

	// 4 partitions acquired the value, so 4x the payload went through the
	// driver's single uplink, charged serially at job level.
	want := transferTime(cfg, 4*bytes)
	if got := rep.Overhead - base.Overhead; got != want {
		t.Errorf("naive ship overhead = %v, want %v", got, want)
	}
	c := rec.Counters()
	if c.NaiveShipBytes != 4*bytes {
		t.Errorf("NaiveShipBytes = %d, want %d", c.NaiveShipBytes, 4*bytes)
	}
	if c.BroadcastBytes != 0 {
		t.Errorf("BroadcastBytes = %d, want 0 under naive shipping", c.BroadcastBytes)
	}
}

// TestBroadcastAcquireChargesLedger checks the per-task side of naive
// shipping: Acquire bills the payload to the ledger it is given, and a nil
// ledger (driver-side access) is tolerated.
func TestBroadcastAcquireChargesLedger(t *testing.T) {
	ctx := newTestContext(t, WithoutBroadcast())
	const bytes = int64(4096)
	bc := NewBroadcast(ctx, 9, bytes)

	led := &sim.Ledger{}
	if got := bc.Acquire(led); got != 9 {
		t.Fatalf("Acquire = %d, want 9", got)
	}
	if led.Total().Net != bytes {
		t.Errorf("ledger net bytes = %d, want %d", led.Total().Net, bytes)
	}
	bc.Acquire(nil) // must not panic

	on := newTestContext(t)
	free := NewBroadcast(on, 9, bytes)
	led2 := &sim.Ledger{}
	free.Acquire(led2)
	if led2.Total().Net != 0 {
		t.Errorf("broadcast-mode Acquire charged %d bytes, want 0", led2.Total().Net)
	}
}

// TestBroadcastTimeModel pins the binary-tree distribution model and the
// negative-size clamp.
func TestBroadcastTimeModel(t *testing.T) {
	cfg := cluster.Local()
	if got := broadcastTime(cfg, 0); got != 0 {
		t.Errorf("broadcastTime(0) = %v, want 0", got)
	}
	one := broadcastTime(cfg, 1<<20)
	two := broadcastTime(cfg, 2<<20)
	if one <= 0 || two != 2*one {
		t.Errorf("broadcastTime not linear in bytes: 1MiB=%v 2MiB=%v", one, two)
	}
	big := cfg
	big.Nodes = 12 // ceil(log2(13)) = 4 rounds vs Local's ceil(log2(3)) = 2
	if a, b := broadcastTime(cfg, 1<<20), broadcastTime(big, 1<<20); b != 2*a {
		t.Errorf("rounds scaling: 2 nodes %v, 12 nodes %v, want exactly 2x", a, b)
	}
	if bc := NewBroadcast(newTestContext(t), 0, -5); bc.Bytes() != 0 {
		t.Errorf("negative size not clamped: %d", bc.Bytes())
	}
}
