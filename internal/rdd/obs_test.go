package rdd

import (
	"errors"
	"testing"

	"yafim/internal/obs"
	"yafim/internal/sim"
)

func TestRecorderCacheCounters(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	base := Parallelize(ctx, "nums", ints(40), 4).Cache()
	for i := 0; i < 2; i++ {
		if _, err := Collect(base); err != nil {
			t.Fatal(err)
		}
	}
	c := rec.Counters()
	if c.CacheMisses != 4 || c.CacheHits != 4 {
		t.Fatalf("after warm run: misses = %d hits = %d, want 4 and 4", c.CacheMisses, c.CacheHits)
	}
	if c.LineageRecomputes != 0 || c.CacheEvictions != 0 {
		t.Fatalf("warm run recorded recomputes/evictions: %+v", c)
	}

	ctx.DropAllCaches()
	if got := rec.Counters().CacheEvictions; got != 4 {
		t.Fatalf("evictions after DropAllCaches = %d, want 4", got)
	}
	if _, err := Collect(base); err != nil {
		t.Fatal(err)
	}
	c = rec.Counters()
	if c.LineageRecomputes != 4 {
		t.Fatalf("recomputes after cache drop = %d, want 4", c.LineageRecomputes)
	}
	if c.CacheMisses != 8 {
		t.Fatalf("misses after cache drop = %d, want 8", c.CacheMisses)
	}
}

func TestRecorderKillNodeCounters(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	base := Parallelize(ctx, "nums", ints(40), 4).Cache()
	if _, err := Collect(base); err != nil {
		t.Fatal(err)
	}
	// Partitions 0 and 2 are resident on node 0 of the 2-node local cluster.
	ctx.KillNode(0)
	if got := rec.Counters().CacheEvictions; got != 2 {
		t.Fatalf("evictions after node kill = %d, want 2", got)
	}
	if _, err := Collect(base); err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c.LineageRecomputes != 2 {
		t.Fatalf("recomputes after node kill = %d, want 2", c.LineageRecomputes)
	}
	if c.CacheHits != 2 {
		t.Fatalf("surviving-partition hits = %d, want 2", c.CacheHits)
	}
}

// TestRecorderRetryCounters checks that a failed attempt surfaces everywhere
// the telemetry promises: the retry counter, the wasted cost, the task
// span's attempt count, and the scheduled task cost (the retried task holds
// its core for the failed attempt plus the successful one).
func TestRecorderRetryCounters(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	failed := false // touched only by partition 1's worker, attempts run serially
	r := newRDD(ctx, "flaky", 2, nil, func(p int, led *sim.Ledger) ([]int, error) {
		led.AddCPU(100)
		if p == 1 && !failed {
			failed = true
			return nil, errors.New("injected")
		}
		return []int{p}, nil
	})
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c.TaskRetries != 1 {
		t.Fatalf("retries = %d, want 1", c.TaskRetries)
	}
	if c.WastedCost.CPUOps != 100 {
		t.Fatalf("wasted cost = %+v, want 100 cpu ops", c.WastedCost)
	}
	jobs := rec.Jobs()
	if len(jobs) != 1 || len(jobs[0].Stages) != 1 {
		t.Fatalf("spans = %+v", jobs)
	}
	task := jobs[0].Stages[0].Tasks[1]
	if task.Attempts != 2 {
		t.Fatalf("task attempts = %d, want 2", task.Attempts)
	}
	if task.Cost.CPUOps != 200 {
		t.Fatalf("scheduled task cost = %+v, want wasted + successful = 200", task.Cost)
	}
	if jobs[0].Stages[0].Tasks[0].Attempts != 1 {
		t.Fatal("clean task reported extra attempts")
	}
}

func TestRecorderBroadcastCounters(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	r := Parallelize(ctx, "n", ints(8), 4)
	bc := NewBroadcast(ctx, "payload", 1<<20)
	use := MapPartitions(r, "use", func(p int, rows []int, led *sim.Ledger) ([]int, error) {
		_ = bc.Acquire(led)
		return rows, nil
	})
	if _, err := Collect(use); err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c.BroadcastBytes != 1<<20 || c.NaiveShipBytes != 0 {
		t.Fatalf("broadcast mode: broadcast = %d naive = %d", c.BroadcastBytes, c.NaiveShipBytes)
	}

	recN := obs.New()
	ctxN := newTestContext(t, WithRecorder(recN), WithoutBroadcast())
	rN := Parallelize(ctxN, "n", ints(8), 4)
	bcN := NewBroadcast(ctxN, "payload", 1<<20)
	useN := MapPartitions(rN, "use", func(p int, rows []int, led *sim.Ledger) ([]int, error) {
		_ = bcN.Acquire(led)
		return rows, nil
	})
	if _, err := Collect(useN); err != nil {
		t.Fatal(err)
	}
	cN := recN.Counters()
	if cN.NaiveShipBytes != 4<<20 || cN.BroadcastBytes != 0 {
		t.Fatalf("naive mode: broadcast = %d naive = %d", cN.BroadcastBytes, cN.NaiveShipBytes)
	}
}

func TestRecorderShuffleBytes(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	pairs := Parallelize(ctx, "pairs", []Pair[string, int]{
		{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5},
	}, 3)
	sum := ReduceByKey(pairs, "sum", func(a, b int) int { return a + b }, 2)
	if _, err := Collect(sum); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counters().ShuffleBytes; got <= 0 {
		t.Fatalf("shuffle bytes = %d, want > 0", got)
	}
}

func TestRecorderLocalityCounters(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	r := Parallelize(ctx, "n", ints(16), 4)
	// Pin every partition's input to node 0 so the schedule must make a
	// local-versus-remote call for each task.
	r.prefs = [][]int{{0}, {0}, {0}, {0}}
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c.LocalityLocal+c.LocalityRemote != 4 {
		t.Fatalf("locality outcomes = %d local + %d remote, want 4 total",
			c.LocalityLocal, c.LocalityRemote)
	}
}

// TestRecorderSpansMatchReports checks that the recorded span tree mirrors
// the engine's job reports: same jobs, same stages, tasks on real cores.
func TestRecorderSpansMatchReports(t *testing.T) {
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	r := Parallelize(ctx, "nums", ints(30), 5)
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(r); err != nil {
		t.Fatal(err)
	}
	jobs := rec.Jobs()
	reps := ctx.Reports()
	if len(jobs) != len(reps) {
		t.Fatalf("spans = %d jobs, reports = %d", len(jobs), len(reps))
	}
	cfg := ctx.Config()
	for i, job := range jobs {
		if job.Engine != "rdd" || job.Name != reps[i].Name {
			t.Fatalf("job %d = %+v, report %+v", i, job, reps[i])
		}
		if job.Duration() != reps[i].Duration() {
			t.Fatalf("job %d span duration %v != report %v", i, job.Duration(), reps[i].Duration())
		}
		if len(job.Stages) != len(reps[i].Stages) {
			t.Fatalf("job %d stages = %d, report %d", i, len(job.Stages), len(reps[i].Stages))
		}
		for s, st := range job.Stages {
			if st.Makespan != reps[i].Stages[s].Makespan || len(st.Tasks) != reps[i].Stages[s].Tasks {
				t.Fatalf("stage %d/%d span %+v vs report %+v", i, s, st, reps[i].Stages[s])
			}
			for _, task := range st.Tasks {
				if task.Node < 0 || task.Node >= cfg.Nodes ||
					task.Core < 0 || task.Core >= cfg.CoresPerNode {
					t.Fatalf("task off the cluster: %+v", task)
				}
				if task.End < task.Start || task.Start < 0 {
					t.Fatalf("task interval invalid: %+v", task)
				}
			}
		}
	}
}
