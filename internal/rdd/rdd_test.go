package rdd

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/sim"
)

func newTestContext(t *testing.T, opts ...Option) *Context {
	t.Helper()
	ctx, err := NewContext(cluster.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollect(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "nums", ints(100), 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("parts = %d", r.NumPartitions())
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestParallelizeEdgeCases(t *testing.T) {
	ctx := newTestContext(t)
	empty := Parallelize(ctx, "empty", []int(nil), 4)
	if got, err := Collect(empty); err != nil || len(got) != 0 {
		t.Fatalf("empty collect: %v, %v", got, err)
	}
	// More partitions than elements must not create phantom elements.
	tiny := Parallelize(ctx, "tiny", []int{1, 2}, 64)
	if got, err := Collect(tiny); err != nil || len(got) != 2 {
		t.Fatalf("tiny collect: %v, %v", got, err)
	}
	// parts <= 0 defaults to cluster core count.
	def := Parallelize(ctx, "def", ints(1000), 0)
	if def.NumPartitions() != ctx.Config().TotalCores() {
		t.Fatalf("default parts = %d", def.NumPartitions())
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "nums", ints(10), 3)
	doubled := Map(r, "double", func(v int) int { return 2 * v })
	evens := Filter(doubled, "mod4", func(v int) bool { return v%4 == 0 })
	expanded := FlatMap(evens, "dup", func(v int) []int { return []int{v, v} })
	got, err := Collect(expanded)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 4, 4, 8, 8, 12, 12, 16, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCountAndReduce(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "nums", ints(101), 8)
	n, err := Count(r)
	if err != nil || n != 101 {
		t.Fatalf("count = %d, %v", n, err)
	}
	sum, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil || sum != 5050 {
		t.Fatalf("sum = %d, %v", sum, err)
	}
	_, err = Reduce(Parallelize(ctx, "empty", []int(nil), 1), func(a, b int) int { return a + b })
	if err == nil {
		t.Fatal("reduce of empty RDD succeeded")
	}
}

func TestMapPartitionsLedger(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "nums", ints(20), 4)
	mp := MapPartitions(r, "sumParts", func(p int, rows []int, led *sim.Ledger) ([]int, error) {
		led.AddCPU(1000) // domain-specific cost
		s := 0
		for _, v := range rows {
			s += v
		}
		return []int{s}, nil
	})
	got, err := Collect(mp)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 190 {
		t.Fatalf("partition sums add to %d", total)
	}
	reps := ctx.Reports()
	last := reps[len(reps)-1]
	if last.TotalCost().CPUOps < 4000 {
		t.Fatalf("ledger cost not propagated: %+v", last.TotalCost())
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := newTestContext(t)
	words := strings.Fields("a b a c b a d c a b")
	r := Parallelize(ctx, "words", words, 3)
	pairs := Map(r, "pairs", func(w string) Pair[string, int] { return Pair[string, int]{w, 1} })
	counts := ReduceByKey(pairs, "counts", func(a, b int) int { return a + b }, 2)
	got, err := Collect(counts)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]int{}
	for _, kv := range got {
		if _, dup := m[kv.Key]; dup {
			t.Fatalf("duplicate key %q across reduce partitions", kv.Key)
		}
		m[kv.Key] = kv.Value
	}
	want := map[string]int{"a": 4, "b": 3, "c": 2, "d": 1}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("count[%q] = %d, want %d (all: %v)", k, m[k], v, m)
		}
	}
}

func TestReduceByKeyStagesReported(t *testing.T) {
	ctx := newTestContext(t)
	pairs := Map(Parallelize(ctx, "n", ints(50), 5), "kv",
		func(v int) Pair[int, int] { return Pair[int, int]{v % 3, v} })
	red := ReduceByKey(pairs, "sum", func(a, b int) int { return a + b }, 2)
	if _, err := Collect(red); err != nil {
		t.Fatal(err)
	}
	reps := ctx.Reports()
	job := reps[len(reps)-1]
	if len(job.Stages) != 2 {
		t.Fatalf("expected map+reduce stages, got %d: %+v", len(job.Stages), job)
	}
	mapStage, redStage := job.Stages[0], job.Stages[1]
	if mapStage.Tasks != 5 || redStage.Tasks != 2 {
		t.Fatalf("stage task counts: %d, %d", mapStage.Tasks, redStage.Tasks)
	}
	if mapStage.Total.DiskWrite == 0 {
		t.Fatal("shuffle write not charged")
	}
	if redStage.Total.Net == 0 || redStage.Total.DiskRead == 0 {
		t.Fatal("shuffle fetch not charged")
	}
	// Re-collecting must reuse the shuffle output: only the reduce stage runs.
	if _, err := Collect(red); err != nil {
		t.Fatal(err)
	}
	reps = ctx.Reports()
	again := reps[len(reps)-1]
	if len(again.Stages) != 1 {
		t.Fatalf("shuffle not reused: %d stages", len(again.Stages))
	}
}

func TestReduceByKeyOutputSorted(t *testing.T) {
	ctx := newTestContext(t)
	pairs := Map(Parallelize(ctx, "n", ints(100), 4), "kv",
		func(v int) Pair[int, int] { return Pair[int, int]{99 - v, 1} })
	red := ReduceByKey(pairs, "c", func(a, b int) int { return a + b }, 1)
	got, err := Collect(red)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Fatal("reduce output not key-sorted within partition")
	}
}

func TestCountByKey(t *testing.T) {
	ctx := newTestContext(t)
	pairs := Map(Parallelize(ctx, "n", ints(30), 3), "kv",
		func(v int) Pair[string, int] { return Pair[string, int]{string(rune('a' + v%2)), v} })
	got, err := CountByKey(pairs, "cbk")
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 15 || got["b"] != 15 {
		t.Fatalf("CountByKey = %v", got)
	}
}

func TestKeysValues(t *testing.T) {
	ctx := newTestContext(t)
	pairs := Parallelize(ctx, "p", []Pair[string, int]{{"x", 1}, {"y", 2}}, 1)
	ks, err := Collect(Keys(pairs, "k"))
	if err != nil || len(ks) != 2 || ks[0] != "x" {
		t.Fatalf("keys = %v, %v", ks, err)
	}
	vs, err := Collect(Values(pairs, "v"))
	if err != nil || len(vs) != 2 || vs[1] != 2 {
		t.Fatalf("values = %v, %v", vs, err)
	}
}

func TestUnion(t *testing.T) {
	ctx := newTestContext(t)
	a := Parallelize(ctx, "a", []int{1, 2}, 2)
	b := Parallelize(ctx, "b", []int{3}, 1)
	got, err := Collect(Union(a, b, "ab"))
	if err != nil || len(got) != 3 {
		t.Fatalf("union = %v, %v", got, err)
	}
}

func TestCacheAvoidsRecomputation(t *testing.T) {
	ctx := newTestContext(t)
	computes := make([]int, 4) // one slot per partition; tasks touch only their own
	base := newRDD(ctx, "counted", 4, nil, func(p int, led *sim.Ledger) ([]int, error) {
		computes[p]++
		led.AddCPU(10)
		return []int{p}, nil
	})
	base.Cache()
	for i := 0; i < 3; i++ {
		if _, err := Collect(base); err != nil {
			t.Fatal(err)
		}
	}
	for p, n := range computes {
		if n != 1 {
			t.Fatalf("partition %d computed %d times, want 1", p, n)
		}
	}
}

func TestTaskRetryOnInjectedFailure(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "nums", ints(10), 2)
	ctx.FailTaskOnce(r.ID(), 1, 2) // fail twice, succeed on third attempt
	got, err := Collect(r)
	if err != nil || len(got) != 10 {
		t.Fatalf("collect after injected failures: %v, %v", got, err)
	}
}

func TestTaskFailsAfterMaxAttempts(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "nums", ints(10), 2)
	ctx.FailTaskOnce(r.ID(), 0, maxTaskAttempts) // exhaust every attempt
	_, err := Collect(r)
	if err == nil {
		t.Fatal("job succeeded despite permanent task failure")
	}
	var fe *FlakyError
	if !errors.As(err, &fe) {
		t.Fatalf("error does not wrap FlakyError: %v", err)
	}
}

func TestKillNodeRecomputesFromLineage(t *testing.T) {
	ctx := newTestContext(t)
	computes := make([]int, 4)
	base := newRDD(ctx, "counted", 4, nil, func(p int, led *sim.Ledger) ([]int, error) {
		computes[p]++
		return []int{p * 10}, nil
	})
	base.Cache()
	if _, err := Collect(base); err != nil {
		t.Fatal(err)
	}
	ctx.KillNode(0) // partitions 0 and 2 live on node 0 of the 2-node cluster
	got, err := Collect(base)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if got[0] != 0 || got[3] != 30 {
		t.Fatalf("data lost after node kill: %v", got)
	}
	if computes[0] != 2 || computes[2] != 2 {
		t.Fatalf("lost partitions not recomputed: %v", computes)
	}
	if computes[1] != 1 || computes[3] != 1 {
		t.Fatalf("surviving partitions recomputed needlessly: %v", computes)
	}
}

func TestDropAllCaches(t *testing.T) {
	ctx := newTestContext(t)
	computes := 0
	base := newRDD(ctx, "counted", 1, nil, func(p int, led *sim.Ledger) ([]int, error) {
		computes++
		return []int{1}, nil
	})
	base.Cache()
	for i := 0; i < 2; i++ {
		if _, err := Collect(base); err != nil {
			t.Fatal(err)
		}
	}
	ctx.DropAllCaches()
	if _, err := Collect(base); err != nil {
		t.Fatal(err)
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
}

func TestFirstJobPaysStartup(t *testing.T) {
	cfg := cluster.Local()
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := Parallelize(ctx, "n", ints(4), 2)
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	reps := ctx.Reports()
	if reps[0].Overhead < cfg.JobStartup {
		t.Fatalf("first job overhead %v < startup %v", reps[0].Overhead, cfg.JobStartup)
	}
	if reps[1].Overhead >= cfg.JobStartup {
		t.Fatalf("second job re-paid startup: %v", reps[1].Overhead)
	}
}

func TestBroadcastCosts(t *testing.T) {
	// Broadcast mode: one-time overhead on the next job, free task access.
	ctx := newTestContext(t)
	r := Parallelize(ctx, "n", ints(8), 4)
	bc := NewBroadcast(ctx, "payload", 1<<20)
	use := MapPartitions(r, "use", func(p int, rows []int, led *sim.Ledger) ([]int, error) {
		_ = bc.Acquire(led)
		return rows, nil
	})
	if _, err := Collect(use); err != nil {
		t.Fatal(err)
	}
	reps := ctx.Reports()
	job := reps[len(reps)-1]
	if job.TotalCost().Net != 0 {
		t.Fatalf("broadcast mode charged per-task net: %+v", job.TotalCost())
	}
	if job.Overhead <= ctx.Config().JobStartup {
		t.Fatal("broadcast distribution time missing from job overhead")
	}

	// Naive mode: no distribution overhead, every task pays the shipment.
	ctxN := newTestContext(t, WithoutBroadcast())
	rN := Parallelize(ctxN, "n", ints(8), 4)
	bcN := NewBroadcast(ctxN, "payload", 1<<20)
	useN := MapPartitions(rN, "use", func(p int, rows []int, led *sim.Ledger) ([]int, error) {
		_ = bcN.Acquire(led)
		return rows, nil
	})
	if _, err := Collect(useN); err != nil {
		t.Fatal(err)
	}
	repsN := ctxN.Reports()
	jobN := repsN[len(repsN)-1]
	if got := jobN.TotalCost().Net; got != 4<<20 {
		t.Fatalf("naive mode net = %d, want %d", got, 4<<20)
	}
}

func TestTextFile(t *testing.T) {
	fs := dfs.New(2, dfs.WithBlockSize(16))
	content := "first line\nsecond\nthird one here\n"
	if err := fs.WriteFile("/in.txt", []byte(content), nil); err != nil {
		t.Fatal(err)
	}
	ctx := newTestContext(t)
	r, err := TextFile(ctx, fs, "/in.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first line", "second", "third one here"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("TextFile lines = %v", got)
	}
	reps := ctx.Reports()
	if reps[len(reps)-1].TotalCost().DiskRead == 0 {
		t.Fatal("TextFile read charged no disk I/O")
	}
	if _, err := TextFile(ctx, fs, "/missing", 0); err == nil {
		t.Fatal("TextFile on missing path succeeded")
	}
}

func TestPairSizeBytes(t *testing.T) {
	if got := (Pair[string, int]{"abc", 1}).SizeBytes(); got != 3+4+8 {
		t.Fatalf("SizeBytes = %d", got)
	}
	if got := (Pair[int, int32]{1, 2}).SizeBytes(); got != 12 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

// Property: ReduceByKey over integer addition agrees with a sequential
// map-based aggregation for arbitrary inputs and partition counts.
func TestReduceByKeyAgreesWithSequentialProperty(t *testing.T) {
	f := func(keys []uint8, parts8, red8 uint8) bool {
		parts := int(parts8%5) + 1
		reduceParts := int(red8%4) + 1
		ctx, err := NewContext(cluster.Local())
		if err != nil {
			return false
		}
		pairs := make([]Pair[int, int], len(keys))
		want := map[int]int{}
		for i, k := range keys {
			pairs[i] = Pair[int, int]{int(k % 16), 1}
			want[int(k%16)]++
		}
		r := Parallelize(ctx, "p", pairs, parts)
		red := ReduceByKey(r, "sum", func(a, b int) int { return a + b }, reduceParts)
		got, err := Collect(red)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for _, kv := range got {
			if want[kv.Key] != kv.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual makespans are identical across repeated runs of the
// same driver program (full determinism of the time model).
func TestJobTimingDeterministicProperty(t *testing.T) {
	run := func() []sim.JobReport {
		ctx, _ := NewContext(cluster.PaperSpark())
		r := Parallelize(ctx, "n", ints(5000), 32).Cache()
		pairs := Map(r, "kv", func(v int) Pair[int, int] { return Pair[int, int]{v % 7, v} })
		red := ReduceByKey(pairs, "sum", func(a, b int) int { return a + b }, 8)
		if _, err := Collect(red); err != nil {
			t.Fatal(err)
		}
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
		return ctx.Reports()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("report counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Duration() != b[i].Duration() {
			t.Fatalf("job %d duration %v vs %v", i, a[i].Duration(), b[i].Duration())
		}
	}
}
