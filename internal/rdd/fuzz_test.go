package rdd

import (
	"context"
	"fmt"
	"math"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
)

// fuzzProb folds an arbitrary float into a valid probability in [0, 1).
func fuzzProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0
	}
	return math.Abs(math.Mod(p, 1))
}

// fuzzPipeline runs the cache-count-shuffle pipeline on a fuzz-chosen
// dataset and returns the collected pairs plus the context.
func fuzzPipeline(t *testing.T, rows, keys int, opts ...Option) ([]Pair[string, int64], *Context) {
	t.Helper()
	ctx, err := NewContext(cluster.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var data []Pair[string, int64]
	for i := 0; i < rows; i++ {
		data = append(data, Pair[string, int64]{Key: fmt.Sprintf("k%d", i%keys), Value: 1})
	}
	pairs := Parallelize(ctx, "pairs", data, 16).Cache()
	if _, err := Count(pairs); err != nil {
		t.Fatal(err)
	}
	counted := ReduceByKey(pairs, "counted", func(a, b int64) int64 { return a + b }, 8)
	out, err := Collect(counted)
	if err != nil {
		t.Fatal(err)
	}
	return out, ctx
}

// FuzzChaosInvariant checks the engine's exactness guarantee over random
// seeds, datasets and fault plans: whatever faults the plan injects —
// transient task failures, stragglers, fetch and block-read failures, a
// mid-run node crash — the chaotic run must produce exactly the fault-free
// results, and a second chaotic run with the same seed must reproduce the
// same makespan.
func FuzzChaosInvariant(f *testing.F) {
	f.Add(int64(7), 0.05, 0.02, 0.01, uint8(4), uint16(400), uint8(37), true)
	f.Add(int64(99), 0.5, 0.9, 0.3, uint8(1), uint16(64), uint8(3), false)
	f.Add(int64(-3), 1.0, 0.0, 1.0, uint8(16), uint16(900), uint8(61), true)
	f.Fuzz(func(t *testing.T, seed int64, taskP, fetchP, readP float64,
		factor uint8, rows uint16, keys uint8, crash bool) {
		nRows := 50 + int(rows)%800
		nKeys := 1 + int(keys)%64
		want, refCtx := fuzzPipeline(t, nRows, nKeys)

		plan := &chaos.Plan{
			Seed:              seed,
			TaskFailProb:      fuzzProb(taskP),
			FetchFailProb:     fuzzProb(fetchP),
			BlockReadFailProb: fuzzProb(readP),
			Stragglers:        []chaos.Straggler{{Node: 0, Factor: 1 + float64(factor%8)}},
		}
		if crash {
			plan.Crash = &chaos.NodeCrash{
				Node: 1,
				At:   refCtx.TotalDuration() / 3,
			}
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("fuzz built an invalid plan: %v", err)
		}

		got, ctx1 := fuzzPipeline(t, nRows, nKeys, WithChaos(plan))
		if len(got) != len(want) {
			t.Fatalf("chaos changed result size: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chaos changed pair %d: %+v vs %+v", i, got[i], want[i])
			}
		}

		got2, ctx2 := fuzzPipeline(t, nRows, nKeys, WithChaos(plan))
		for i := range got2 {
			if got2[i] != want[i] {
				t.Fatalf("second chaotic run changed pair %d: %+v vs %+v", i, got2[i], want[i])
			}
		}
		if d1, d2 := ctx1.TotalDuration(), ctx2.TotalDuration(); d1 != d2 {
			t.Fatalf("same seed diverged: %v vs %v", d1, d2)
		}
	})
}

// FuzzShuffleLifecycle drives the shuffle lifecycle manager through an
// arbitrary interleaving of actions, cancellations, node kills, unpersists,
// exhausted-retry failures and reclamations, then checks the two lifecycle
// invariants: after Close the shuffle residency accounting is exactly zero,
// and a final clean action still produces the fault-free reference result.
func FuzzShuffleLifecycle(f *testing.F) {
	f.Add([]byte{0, 2, 0, 3, 0}, uint16(200), uint8(7))
	f.Add([]byte{1, 0, 4, 0, 2, 2, 5, 0}, uint16(97), uint8(3))
	f.Add([]byte{4, 1, 3, 2, 0}, uint16(513), uint8(31))
	f.Fuzz(func(t *testing.T, ops []byte, rows uint16, keys uint8) {
		nRows := 20 + int(rows)%800
		nKeys := 1 + int(keys)%64
		want, _ := fuzzPipeline(t, nRows, nKeys)

		ctx, err := NewContext(cluster.Local())
		if err != nil {
			t.Fatal(err)
		}
		var data []Pair[string, int64]
		for i := 0; i < nRows; i++ {
			data = append(data, Pair[string, int64]{Key: fmt.Sprintf("k%d", i%nKeys), Value: 1})
		}
		pairs := Parallelize(ctx, "pairs", data, 16).Cache()
		counted := ReduceByKey(pairs, "counted", func(a, b int64) int64 { return a + b }, 8)

		run := func() ([]Pair[string, int64], error) { return Collect(counted) }
		if len(ops) > 24 {
			ops = ops[:24]
		}
		for i, op := range ops {
			switch op % 6 {
			case 0: // clean action
				if out, err := run(); err != nil {
					t.Fatalf("op %d: clean run failed: %v", i, err)
				} else if len(out) != len(want) {
					t.Fatalf("op %d: clean run returned %d keys, want %d", i, len(out), len(want))
				}
			case 1: // cancel before the action, then restore
				canceled, cancel := context.WithCancel(context.Background())
				cancel()
				ctx.SetContext(canceled)
				if _, err := run(); err == nil {
					t.Fatalf("op %d: canceled run succeeded", i)
				}
				ctx.SetContext(context.Background())
			case 2: // node loss
				ctx.KillNode(int(op) % 2)
			case 3: // reclaim one RDD's shuffle
				counted.Unpersist()
			case 4: // exhaust the retry budget in the map stage
				// Unpersist first: with the shuffle output resident the map
				// stage would not re-run and the injection would never fire.
				counted.Unpersist()
				ctx.FailTaskOnce(pairs.ID(), i%16, maxTaskAttempts)
				if _, err := run(); err == nil {
					t.Fatalf("op %d: run with exhausted retries succeeded", i)
				}
			case 5: // reclaim everything
				ctx.FreeShuffles()
			}
		}

		got, err := run()
		if err != nil {
			t.Fatalf("final clean run failed: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("final run returned %d keys, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("final pair %d: %+v vs fault-free %+v", i, got[i], want[i])
			}
		}
		if err := ctx.Close(); err != nil {
			t.Fatal(err)
		}
		if n := ctx.ShuffleResidentBytes(); n != 0 {
			t.Fatalf("shuffle_resident_bytes = %d after Close, want 0", n)
		}
		for node := 0; node < 2; node++ {
			if n := ctx.shuffleNodeBytes(node); n != 0 {
				t.Fatalf("node %d retains %d shuffle bytes after Close", node, n)
			}
		}
	})
}
