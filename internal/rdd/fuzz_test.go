package rdd

import (
	"fmt"
	"math"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
)

// fuzzProb folds an arbitrary float into a valid probability in [0, 1).
func fuzzProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0
	}
	return math.Abs(math.Mod(p, 1))
}

// fuzzPipeline runs the cache-count-shuffle pipeline on a fuzz-chosen
// dataset and returns the collected pairs plus the context.
func fuzzPipeline(t *testing.T, rows, keys int, opts ...Option) ([]Pair[string, int64], *Context) {
	t.Helper()
	ctx, err := NewContext(cluster.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var data []Pair[string, int64]
	for i := 0; i < rows; i++ {
		data = append(data, Pair[string, int64]{Key: fmt.Sprintf("k%d", i%keys), Value: 1})
	}
	pairs := Parallelize(ctx, "pairs", data, 16).Cache()
	if _, err := Count(pairs); err != nil {
		t.Fatal(err)
	}
	counted := ReduceByKey(pairs, "counted", func(a, b int64) int64 { return a + b }, 8)
	out, err := Collect(counted)
	if err != nil {
		t.Fatal(err)
	}
	return out, ctx
}

// FuzzChaosInvariant checks the engine's exactness guarantee over random
// seeds, datasets and fault plans: whatever faults the plan injects —
// transient task failures, stragglers, fetch and block-read failures, a
// mid-run node crash — the chaotic run must produce exactly the fault-free
// results, and a second chaotic run with the same seed must reproduce the
// same makespan.
func FuzzChaosInvariant(f *testing.F) {
	f.Add(int64(7), 0.05, 0.02, 0.01, uint8(4), uint16(400), uint8(37), true)
	f.Add(int64(99), 0.5, 0.9, 0.3, uint8(1), uint16(64), uint8(3), false)
	f.Add(int64(-3), 1.0, 0.0, 1.0, uint8(16), uint16(900), uint8(61), true)
	f.Fuzz(func(t *testing.T, seed int64, taskP, fetchP, readP float64,
		factor uint8, rows uint16, keys uint8, crash bool) {
		nRows := 50 + int(rows)%800
		nKeys := 1 + int(keys)%64
		want, refCtx := fuzzPipeline(t, nRows, nKeys)

		plan := &chaos.Plan{
			Seed:              seed,
			TaskFailProb:      fuzzProb(taskP),
			FetchFailProb:     fuzzProb(fetchP),
			BlockReadFailProb: fuzzProb(readP),
			Stragglers:        []chaos.Straggler{{Node: 0, Factor: 1 + float64(factor%8)}},
		}
		if crash {
			plan.Crash = &chaos.NodeCrash{
				Node: 1,
				At:   refCtx.TotalDuration() / 3,
			}
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("fuzz built an invalid plan: %v", err)
		}

		got, ctx1 := fuzzPipeline(t, nRows, nKeys, WithChaos(plan))
		if len(got) != len(want) {
			t.Fatalf("chaos changed result size: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chaos changed pair %d: %+v vs %+v", i, got[i], want[i])
			}
		}

		got2, ctx2 := fuzzPipeline(t, nRows, nKeys, WithChaos(plan))
		for i := range got2 {
			if got2[i] != want[i] {
				t.Fatalf("second chaotic run changed pair %d: %+v vs %+v", i, got2[i], want[i])
			}
		}
		if d1, d2 := ctx1.TotalDuration(), ctx2.TotalDuration(); d1 != d2 {
			t.Fatalf("same seed diverged: %v vs %v", d1, d2)
		}
	})
}
