package rdd

import (
	"sync"
)

// cacheManager enforces the per-node executor memory budget across all
// cached RDDs of a context, the "held in the memory as much as possible"
// behaviour of §IV-B: partitions are admitted until a node's budget is
// exhausted, then the least recently used resident partitions are evicted
// to make room. Evicted partitions are recomputed from lineage on next
// access, never failed.
type cacheManager struct {
	mu           sync.Mutex
	perNodeLimit int64 // 0 = unlimited
	nodes        int
	used         []int64
	clock        int64
	entries      map[entryKey]*cacheEntry
}

type entryKey struct {
	owner partEvictor
	part  int
}

type cacheEntry struct {
	bytes    int64
	lastUsed int64
}

// partEvictor is the callback a cache store exposes so the manager can drop
// one of its partitions.
type partEvictor interface {
	evictPart(p int)
}

func newCacheManager(nodes int, perNodeLimit int64) *cacheManager {
	return &cacheManager{
		perNodeLimit: perNodeLimit,
		nodes:        nodes,
		used:         make([]int64, nodes),
		entries:      make(map[entryKey]*cacheEntry),
	}
}

func (m *cacheManager) node(part int) int { return part % m.nodes }

// admit decides whether a partition of the given size may be cached,
// evicting LRU residents of the same node as needed. It returns false when
// the partition alone exceeds the node budget (Spark's MEMORY_ONLY simply
// does not store such blocks).
func (m *cacheManager) admit(owner partEvictor, part int, bytes int64) bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.perNodeLimit > 0 && bytes > m.perNodeLimit {
		return false
	}
	node := m.node(part)
	for m.perNodeLimit > 0 && m.used[node]+bytes > m.perNodeLimit {
		victim, ok := m.oldestOnNodeLocked(node)
		if !ok {
			return false
		}
		m.dropLocked(victim)
		// The store's evictPart must not call back into the manager.
		victim.owner.evictPart(victim.part)
	}
	m.clock++
	m.entries[entryKey{owner, part}] = &cacheEntry{bytes: bytes, lastUsed: m.clock}
	m.used[node] += bytes
	return true
}

// touch refreshes a partition's LRU position on cache hit.
func (m *cacheManager) touch(owner partEvictor, part int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[entryKey{owner, part}]; ok {
		m.clock++
		e.lastUsed = m.clock
	}
}

// release removes accounting for a partition the store dropped itself
// (node kill, DropAllCaches).
func (m *cacheManager) release(owner partEvictor, part int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropLocked(entryKey{owner, part})
}

func (m *cacheManager) dropLocked(k entryKey) {
	if e, ok := m.entries[k]; ok {
		m.used[m.node(k.part)] -= e.bytes
		delete(m.entries, k)
	}
}

func (m *cacheManager) oldestOnNodeLocked(node int) (entryKey, bool) {
	var best entryKey
	var bestClock int64 = 1<<63 - 1
	found := false
	for k, e := range m.entries {
		if m.node(k.part) == node && e.lastUsed < bestClock {
			best, bestClock, found = k, e.lastUsed, true
		}
	}
	return best, found
}

// usedBytes reports the resident cache volume on one node (for tests).
func (m *cacheManager) usedBytes(node int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used[node]
}
