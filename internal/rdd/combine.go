package rdd

import (
	"cmp"
	"sort"

	"yafim/internal/sim"
)

// combineState holds one shuffle's map-side output: for every map task a
// bucket per reduce partition, with the bucket's estimated serialized size.
// Its lifecycle — when the buckets exist, when an error forces a re-run,
// when a node loss punches holes, when the memory is reclaimed — lives in
// the embedded shuffleCore, registered with the Context.
type combineState[K cmp.Ordered, C any] struct {
	core    *shuffleCore
	buckets [][]map[K]C // [mapTask][reducePart]
	bytes   [][]int64   // [mapTask][reducePart]
}

// CombineByKey is the engine's map-side pre-aggregation primitive, with
// Spark's combiner semantics: per map partition, each key's values are
// folded into a combiner of type C (createCombiner for the first value,
// mergeValue for the rest) before anything is spilled, so shuffle volume is
// one combiner per distinct key per map task rather than one record per
// value. The reduce side merges map outputs with mergeCombiners, which must
// be associative and commutative. parts sets the output partition count (0
// means inherit the parent's). Output partitions are sorted by key for
// determinism.
//
// Like Spark's, the implementation hash partitions by key, writes shuffle
// output to (virtual) local disk, and fetches it over the (virtual) network
// on the reduce side; every step is ledger-metered. The spilled output is
// tracked by the context's shuffle lifecycle manager: a failed or canceled
// map stage invalidates it (the next action re-runs instead of replaying
// the error), KillNode destroys the dead node's slices (re-run of just the
// missing map tasks), and Unpersist or Context.FreeShuffles reclaims it.
func CombineByKey[K cmp.Ordered, V, C any](r *RDD[Pair[K, V]], name string,
	createCombiner func(V) C, mergeValue func(C, V) C, mergeCombiners func(C, C) C,
	parts int) *RDD[Pair[K, C]] {
	if parts <= 0 {
		parts = r.parts
	}
	st := &combineState[K, C]{}
	st.core = newShuffleCore(r.ctx, name, r.parts,
		func(p int) { st.buckets[p], st.bytes[p] = nil, nil },
		func() { st.buckets, st.bytes = nil, nil })
	out := newRDD[Pair[K, C]](r.ctx, name, parts, []preparable{r}, nil)
	out.shuffle = st.core

	// runMap executes the map side for one parent partition: hash-partition
	// into buckets, combine per key, spill to (virtual) local disk.
	runMap := func(p int, led *sim.Ledger) error {
		rows, err := r.materialize(p, led)
		if err != nil {
			return err
		}
		buckets := make([]map[K]C, parts)
		for i := range buckets {
			buckets[i] = make(map[K]C)
		}
		for _, kv := range rows {
			b := buckets[int(hashKey(kv.Key))%parts]
			if old, ok := b[kv.Key]; ok {
				b[kv.Key] = mergeValue(old, kv.Value)
			} else {
				b[kv.Key] = createCombiner(kv.Value)
			}
		}
		sizes := make([]int64, parts)
		var spill int64
		for i, b := range buckets {
			for k, v := range b {
				sizes[i] += Pair[K, C]{k, v}.SizeBytes()
			}
			spill += sizes[i]
		}
		// Map-side cost: touch each row twice (hash + combine), then
		// spill the combined shuffle output to local disk.
		led.AddCPU(2 * float64(len(rows)))
		led.AddDiskWrite(spill)
		st.buckets[p] = buckets
		st.bytes[p] = sizes
		return nil
	}
	taskBytes := func(p int) int64 {
		var n int64
		for _, sz := range st.bytes[p] {
			n += sz
		}
		return n
	}

	out.prepare = func() error {
		missing, runAll := st.core.plan()
		if runAll {
			st.buckets = make([][]map[K]C, r.parts)
			st.bytes = make([][]int64, r.parts)
			err := r.ctx.runTasks(name+":map", r.lineageNames(), r.parts, r.prefs, runMap)
			if err != nil {
				st.core.invalidate()
				return err
			}
			bytes := make([]int64, r.parts)
			for p := range bytes {
				bytes[p] = taskBytes(p)
			}
			st.core.commit(nil, bytes)
			// Per-partition output shape for the skew analysis, observed
			// driver-side after the stage committed so retried attempts are
			// never double-counted and no task ledger is touched.
			if rec := r.ctx.rec; rec.Enabled() {
				for p := range st.buckets {
					rows := 0
					for _, b := range st.buckets[p] {
						rows += len(b)
					}
					rec.ObservePartitionOutput("rdd", name+":map", rows, bytes[p])
				}
			}
			return nil
		}
		if len(missing) == 0 {
			return nil
		}
		return st.core.recover(missing, r.prefs, r.lineageNames(), runMap, taskBytes)
	}
	out.compute = func(p int, led *sim.Ledger) ([]Pair[K, C], error) {
		if !st.core.ready() {
			return nil, &shuffleMissingError{name: name}
		}
		// Chaos: a failed shuffle fetch means one map task's output is gone.
		// The RDD recovery story is lineage: recompute just that parent
		// partition (a cache hit when the parent is cached — near free) and
		// rebuild its map-side output. The resident buckets are reused as the
		// recomputation's byte-identical result; only the cost is charged.
		if plan := r.ctx.chaosPlan; plan.FetchFails(name, p) {
			victim := plan.FetchVictim(name, p, r.parts)
			r.ctx.rec.AddFetchFailure()
			r.ctx.rec.AddStageRerun()
			led.AddNet(st.bytes[victim][p]) // the fetch that found nothing
			rows, err := r.materialize(victim, led)
			if err != nil {
				return nil, err
			}
			var spill int64
			for _, sz := range st.bytes[victim] {
				spill += sz
			}
			led.AddCPU(2 * float64(len(rows)))
			led.AddDiskWrite(spill)
		}
		merged := make(map[K]C)
		var fetched int64
		for m := range st.buckets {
			led.AddNet(st.bytes[m][p])
			led.AddDiskRead(st.bytes[m][p])
			fetched += st.bytes[m][p]
			for k, v := range st.buckets[m][p] {
				if old, ok := merged[k]; ok {
					merged[k] = mergeCombiners(old, v)
				} else {
					merged[k] = v
				}
				led.AddCPU(1)
			}
		}
		out := make([]Pair[K, C], 0, len(merged))
		for k, v := range merged {
			out = append(out, Pair[K, C]{k, v})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		led.AddCPU(float64(len(out)))
		r.ctx.rec.AddShuffleBytes(fetched)
		return out, nil
	}
	return out
}
