package rdd

import (
	"bytes"
	"fmt"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/obs"
)

// chaosWorkload runs a small two-job pipeline — cache, count, shuffle — and
// returns the shuffled pairs plus the context, so tests can compare chaotic
// runs against fault-free ones.
func chaosWorkload(t *testing.T, opts ...Option) ([]Pair[string, int64], *Context) {
	t.Helper()
	ctx, err := NewContext(cluster.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var data []Pair[string, int64]
	for i := 0; i < 400; i++ {
		data = append(data, Pair[string, int64]{Key: fmt.Sprintf("k%d", i%37), Value: 1})
	}
	pairs := Parallelize(ctx, "pairs", data, 16).Cache()
	if _, err := Count(pairs); err != nil {
		t.Fatal(err)
	}
	counted := ReduceByKey(pairs, "counted", func(a, b int64) int64 { return a + b }, 8)
	out, err := Collect(counted)
	if err != nil {
		t.Fatal(err)
	}
	return out, ctx
}

func pairsEqual(a, b []Pair[string, int64]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChaosTaskFailuresPreserveResults(t *testing.T) {
	want, _ := chaosWorkload(t)
	rec := obs.New()
	got, _ := chaosWorkload(t,
		WithChaos(&chaos.Plan{Seed: 11, TaskFailProb: 0.3}),
		WithRecorder(rec))
	if !pairsEqual(got, want) {
		t.Fatal("results under injected task failures differ from fault-free run")
	}
	c := rec.Counters()
	if c.TaskRetries == 0 {
		t.Fatal("30% failure probability produced no retries")
	}
	if c.WastedCost.IsZero() {
		t.Fatal("injected failures wasted no cost")
	}
}

func TestChaosFetchFailureRecoversViaLineage(t *testing.T) {
	want, _ := chaosWorkload(t)
	rec := obs.New()
	got, _ := chaosWorkload(t,
		WithChaos(&chaos.Plan{Seed: 5, FetchFailProb: 1}),
		WithRecorder(rec))
	if !pairsEqual(got, want) {
		t.Fatal("results under fetch failures differ from fault-free run")
	}
	c := rec.Counters()
	if c.FetchFailures == 0 || c.StagesRerun == 0 {
		t.Fatalf("fetch failures not recorded: %+v", c)
	}
	// The parent is cached, so recovery should mostly hit the cache.
	if c.CacheHits == 0 {
		t.Fatal("lineage recovery never hit the parent cache")
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	plan := &chaos.Plan{
		Seed:          99,
		TaskFailProb:  0.2,
		FetchFailProb: 0.3,
		Stragglers:    []chaos.Straggler{{Node: 0, Factor: 3}},
	}
	rec1, rec2 := obs.New(), obs.New()
	out1, ctx1 := chaosWorkload(t, WithChaos(plan), WithRecorder(rec1))
	out2, ctx2 := chaosWorkload(t, WithChaos(plan), WithRecorder(rec2))
	if !pairsEqual(out1, out2) {
		t.Fatal("identical seeds produced different results")
	}
	if d1, d2 := ctx1.TotalDuration(), ctx2.TotalDuration(); d1 != d2 {
		t.Fatalf("identical seeds produced different makespans: %v vs %v", d1, d2)
	}
	if c1, c2 := rec1.Counters(), rec2.Counters(); c1 != c2 {
		t.Fatalf("identical seeds produced different counters:\n%+v\n%+v", c1, c2)
	}
	var t1, t2 bytes.Buffer
	if err := obs.WriteChromeTrace(&t1, rec1); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&t2, rec2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("identical seeds produced different Chrome traces")
	}
}

func TestChaosStragglerSpeculation(t *testing.T) {
	plan := &chaos.Plan{Seed: 1, Stragglers: []chaos.Straggler{{Node: 1, Factor: 10}}}
	rec := obs.New()
	_, specCtx := chaosWorkload(t, WithChaos(plan), WithRecorder(rec))
	_, plainCtx := chaosWorkload(t, WithChaos(plan), WithResilience(chaos.Resilience{}))
	c := rec.Counters()
	if c.SpeculativeLaunches == 0 || c.SpeculativeWins == 0 {
		t.Fatalf("no speculation against a 10x straggler: %+v", c)
	}
	if specCtx.TotalDuration() >= plainCtx.TotalDuration() {
		t.Fatalf("speculation did not help: %v (spec) vs %v (none)",
			specCtx.TotalDuration(), plainCtx.TotalDuration())
	}
}

func TestChaosBlacklisting(t *testing.T) {
	rec := obs.New()
	want, _ := chaosWorkload(t)
	got, _ := chaosWorkload(t,
		WithChaos(&chaos.Plan{Seed: 4, TaskFailProb: 0.8}),
		WithRecorder(rec))
	if !pairsEqual(got, want) {
		t.Fatal("results under heavy failures differ from fault-free run")
	}
	if rec.Counters().NodesBlacklisted == 0 {
		t.Fatal("80% failure probability never blacklisted a node")
	}
}

// TestChaosCrashMidJobRecomputesFromLineage is the mid-job KillNode
// coverage: the planned crash fires between two stages of the run, evicting
// the dead node's cached partitions, and the next stage transparently
// recomputes them from lineage — visible as evictions, cache misses and
// lineage recomputes, with byte-identical results.
func TestChaosCrashMidJobRecomputesFromLineage(t *testing.T) {
	// Fault-free reference run, also used to pick a crash time that lands
	// after the first job (which populates the cache) but before the end.
	want, refCtx := chaosWorkload(t)
	reports := refCtx.Reports()
	if len(reports) < 2 {
		t.Fatalf("workload ran %d jobs, want >= 2", len(reports))
	}
	// Exactly the first job's duration: the crash fires inside the second
	// job, at the boundary before its shuffle-map stage — which is the stage
	// that re-reads the cached partitions and must recompute the lost ones.
	crashAt := reports[0].Duration()

	rec := obs.New()
	got, ctx := chaosWorkload(t,
		WithChaos(&chaos.Plan{Seed: 2, Crash: &chaos.NodeCrash{Node: 1, At: crashAt}}),
		WithRecorder(rec))
	if !pairsEqual(got, want) {
		t.Fatal("results after mid-job node crash differ from fault-free run")
	}
	c := rec.Counters()
	if c.CacheEvictions == 0 {
		t.Fatal("node crash evicted no cached partitions")
	}
	if c.LineageRecomputes == 0 {
		t.Fatal("lost cached partitions were not recomputed from lineage")
	}
	if c.CacheMisses == 0 {
		t.Fatal("recomputation did not register cache misses")
	}
	// The crash makes the run slower, never wrong.
	if ctx.TotalDuration() <= refCtx.TotalDuration() {
		t.Fatalf("crashed run not slower: %v vs fault-free %v",
			ctx.TotalDuration(), refCtx.TotalDuration())
	}
}

func TestChaosCrashKillsDFSReplicas(t *testing.T) {
	run := func(opts ...Option) (int64, *Context, *dfs.FileSystem) {
		// Three nodes with 2x replication so a healthy node that does not
		// already hold a lost block exists as a re-replication target.
		ctx, err := NewContext(cluster.Local().WithNodes(3), opts...)
		if err != nil {
			t.Fatal(err)
		}
		fs := dfs.New(ctx.Config().Nodes, dfs.WithBlockSize(64), dfs.WithReplication(2))
		var buf bytes.Buffer
		for i := 0; i < 200; i++ {
			fmt.Fprintf(&buf, "line-%d\n", i)
		}
		if err := fs.WriteFile("/input", buf.Bytes(), nil); err != nil {
			t.Fatal(err)
		}
		fs.SetRecorder(ctx.Recorder())
		lines, err := TextFile(ctx, fs, "/input", 8)
		if err != nil {
			t.Fatal(err)
		}
		lines = lines.Cache()
		n1, err := Count(lines)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := Count(lines)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 || n1 != 200 {
			t.Fatalf("counts diverged: %d vs %d", n1, n2)
		}
		return n1, ctx, fs
	}

	_, refCtx, _ := run()
	// Half the first job: guaranteed to have passed by the time the second
	// job's stage boundary checks the clock, even if mitigation shortens the
	// chaotic run's first job.
	crashAt := refCtx.Reports()[0].Duration() / 2

	rec := obs.New()
	_, _, fs := run(
		WithChaos(&chaos.Plan{Seed: 3, Crash: &chaos.NodeCrash{Node: 1, At: crashAt}}),
		WithRecorder(rec))
	if !fs.IsDead(1) {
		t.Fatal("crash did not propagate to the registered filesystem")
	}
	if rec.Counters().ReReplicatedBlocks == 0 {
		t.Fatal("no blocks re-replicated after the crash")
	}
}

func TestChaosBlockReadFailures(t *testing.T) {
	ctx, err := NewContext(cluster.Local(),
		WithChaos(&chaos.Plan{Seed: 8, BlockReadFailProb: 1}))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	ctx.rec = rec
	fs := dfs.New(ctx.Config().Nodes, dfs.WithBlockSize(64), dfs.WithReplication(2))
	fs.SetRecorder(rec)
	var buf bytes.Buffer
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&buf, "row-%d\n", i)
	}
	fs.WriteFile("/in", buf.Bytes(), nil)
	lines, err := TextFile(ctx, fs, "/in", 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(lines)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
	if rec.Counters().BlockReadRetries == 0 {
		t.Fatal("certain block-read failure never triggered a retry")
	}
}

func TestFailTaskOncePanicsOnNegativeIndices(t *testing.T) {
	ctx, err := NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name       string
		part, fail int
	}{
		{"negative partition", -1, 1},
		{"negative count", 0, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("FailTaskOnce(%d, %d) did not panic", tc.part, tc.fail)
				}
			}()
			ctx.FailTaskOnce(1, tc.part, tc.fail)
		})
	}
}

func TestNewContextRejectsInvalidPlan(t *testing.T) {
	_, err := NewContext(cluster.Local(), WithChaos(&chaos.Plan{TaskFailProb: 2}))
	if err == nil {
		t.Fatal("invalid chaos plan accepted")
	}
}

func TestChaosNeverFailsJobs(t *testing.T) {
	// Even at extreme probabilities, injection leaves the last permitted
	// attempt clean, so jobs always complete.
	plan := &chaos.Plan{Seed: 13, TaskFailProb: 1, FetchFailProb: 1, BlockReadFailProb: 1}
	want, _ := chaosWorkload(t)
	got, _ := chaosWorkload(t, WithChaos(plan))
	if !pairsEqual(got, want) {
		t.Fatal("maximum chaos changed the results")
	}
}
