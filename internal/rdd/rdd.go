package rdd

import (
	"errors"
	"fmt"
	"sync"

	"yafim/internal/obs"
	"yafim/internal/sim"
)

// RDD is an immutable, partitioned, lazily evaluated dataset. Building an
// RDD records lineage only; work happens when an action (Collect, Count,
// Reduce, ...) runs. RDDs are created from a Context via Parallelize or
// TextFile and derived with the package-level transformation functions
// (methods cannot introduce new type parameters in Go).
type RDD[T any] struct {
	ctx   *Context
	id    int
	name  string
	parts int
	// compute produces partition p, charging led for the work performed.
	compute func(p int, led *sim.Ledger) ([]T, error)
	// deps are the upstream datasets whose shuffle stages must run before
	// this RDD's partitions can be computed.
	deps []preparable
	// prepare runs this RDD's own pre-stage (shuffle map side), if any.
	prepare func() error
	// prefs optionally lists, per partition, the nodes holding its input
	// data (locality preferences). Narrow transformations inherit them.
	prefs [][]int

	cache *cacheState[T]
	// shuffle is the lifecycle state of this RDD's own shuffle (set by wide
	// transformations such as CombineByKey and Repartition); nil for narrow
	// RDDs. Unpersist frees it.
	shuffle *shuffleCore
}

type preparable interface {
	prepareAll() error
	lineageNames() []string
}

// cacheState holds materialised partitions for a cached RDD. Partition p is
// considered resident on virtual node p mod nodes, which is what KillNode
// uses to decide which partitions a node failure destroys and how the cache
// manager accounts per-node memory.
type cacheState[T any] struct {
	mgr   *cacheManager
	rec   *obs.Recorder // counts evictions; nil-safe
	mu    sync.Mutex
	parts []*[]T // nil entry: not cached
}

func (cs *cacheState[T]) get(p int) ([]T, bool) {
	cs.mu.Lock()
	rows := cs.parts[p]
	cs.mu.Unlock()
	if rows != nil {
		cs.mgr.touch(cs, p)
		return *rows, true
	}
	return nil, false
}

// put stores a computed partition if the executor memory budget admits it.
// Admission runs before taking cs.mu so manager-driven eviction of this
// store's own partitions cannot deadlock.
func (cs *cacheState[T]) put(p int, rows []T) {
	var bytes int64
	for _, v := range rows {
		bytes += recordBytes(v)
	}
	if !cs.mgr.admit(cs, p, bytes) {
		return
	}
	cs.mu.Lock()
	cs.parts[p] = &rows
	cs.mu.Unlock()
}

// evictPart implements partEvictor for manager-initiated LRU eviction; the
// manager has already dropped its accounting.
func (cs *cacheState[T]) evictPart(p int) {
	cs.mu.Lock()
	cs.parts[p] = nil
	cs.mu.Unlock()
	cs.rec.AddEvictions(1)
}

// evictNode and evictAll drop partitions under cs.mu but release manager
// accounting afterwards: taking mgr.mu while holding cs.mu would invert the
// admit -> evictPart lock order and deadlock.
func (cs *cacheState[T]) evictNode(node, nodes int) {
	cs.mu.Lock()
	var dropped []int
	for p := range cs.parts {
		if p%nodes == node && cs.parts[p] != nil {
			cs.parts[p] = nil
			dropped = append(dropped, p)
		}
	}
	cs.mu.Unlock()
	for _, p := range dropped {
		cs.mgr.release(cs, p)
	}
	cs.rec.AddEvictions(int64(len(dropped)))
}

func (cs *cacheState[T]) evictAll() {
	cs.mu.Lock()
	var dropped []int
	for p := range cs.parts {
		if cs.parts[p] != nil {
			cs.parts[p] = nil
			dropped = append(dropped, p)
		}
	}
	cs.mu.Unlock()
	for _, p := range dropped {
		cs.mgr.release(cs, p)
	}
	cs.rec.AddEvictions(int64(len(dropped)))
}

func newRDD[T any](ctx *Context, name string, parts int, deps []preparable,
	compute func(p int, led *sim.Ledger) ([]T, error)) *RDD[T] {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: %s: partition count %d must be positive", name, parts))
	}
	return &RDD[T]{ctx: ctx, id: ctx.allocID(), name: name, parts: parts, deps: deps, compute: compute}
}

// ID returns the RDD's unique identifier within its context (used by fault
// injection).
func (r *RDD[T]) ID() int { return r.id }

// Name returns the RDD's human-readable name.
func (r *RDD[T]) Name() string { return r.name }

// NumPartitions returns the number of partitions.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// PreferredNodes returns the locality preference of partition p (nil when
// the partition can run anywhere at no penalty).
func (r *RDD[T]) PreferredNodes(p int) []int {
	if p < 0 || p >= len(r.prefs) {
		return nil
	}
	return r.prefs[p]
}

// Cache marks the RDD so its partitions are kept in executor memory after
// first computation; later jobs reuse them without recomputation or input
// re-reads. It returns r for chaining.
func (r *RDD[T]) Cache() *RDD[T] {
	if r.cache == nil {
		r.cache = &cacheState[T]{mgr: r.ctx.cacheMgr, rec: r.ctx.rec, parts: make([]*[]T, r.parts)}
		r.ctx.registerCache(r.cache)
	}
	return r
}

// Unpersist releases the RDD's materialised state: cached partitions and,
// for wide transformations, the resident shuffle map output. The lineage
// stays intact — a later action recomputes (and re-shuffles) from scratch —
// so this is Spark's unpersist: a memory release, never a correctness
// hazard. It returns r for chaining.
func (r *RDD[T]) Unpersist() *RDD[T] {
	if r.cache != nil {
		r.cache.evictAll()
	}
	if r.shuffle != nil {
		r.shuffle.free()
	}
	return r
}

// materialize produces partition p, consulting the cache and injecting any
// scheduled task failures.
func (r *RDD[T]) materialize(p int, led *sim.Ledger) ([]T, error) {
	if p < 0 || p >= r.parts {
		return nil, fmt.Errorf("rdd: %s: partition %d out of range [0,%d)", r.name, p, r.parts)
	}
	if r.ctx.shouldFail(r.id, p) {
		return nil, &FlakyError{RDD: r.id, Part: p}
	}
	if r.cache != nil {
		if rows, ok := r.cache.get(p); ok {
			r.ctx.rec.AddCacheHit()
			return rows, nil
		}
		r.ctx.rec.AddCacheMiss()
	}
	rows, err := r.compute(p, led)
	if err != nil {
		return nil, err
	}
	r.ctx.noteCompute(r.id, p)
	if r.cache != nil {
		r.cache.put(p, rows)
	}
	return rows, nil
}

// lineageNames returns the dataset dependency chain feeding this RDD,
// nearest first: the RDD's own name followed by its ancestors'. It
// annotates StageErrors the way a Spark driver names a failed stage's RDD
// chain.
func (r *RDD[T]) lineageNames() []string {
	names := []string{r.name}
	for _, d := range r.deps {
		names = append(names, d.lineageNames()...)
	}
	return names
}

// prepareAll runs, in lineage order, every pending pre-stage (shuffle map
// side) that this RDD transitively depends on, then its own.
func (r *RDD[T]) prepareAll() error {
	for _, d := range r.deps {
		if err := d.prepareAll(); err != nil {
			return err
		}
	}
	if r.prepare != nil {
		return r.prepare()
	}
	return nil
}

// Parallelize distributes an in-memory slice across parts partitions in
// contiguous chunks, mirroring SparkContext.parallelize.
func Parallelize[T any](ctx *Context, name string, data []T, parts int) *RDD[T] {
	if parts <= 0 {
		parts = ctx.cfg.TotalCores()
	}
	if parts > len(data) && len(data) > 0 {
		parts = len(data)
	}
	if len(data) == 0 {
		parts = 1
	}
	n := len(data)
	return newRDD(ctx, name, parts, nil, func(p int, led *sim.Ledger) ([]T, error) {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		led.AddCPU(float64(hi - lo))
		return data[lo:hi], nil
	})
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], name string, f func(T) U) *RDD[U] {
	return inherit(r, newRDD(r.ctx, name, r.parts, []preparable{r}, func(p int, led *sim.Ledger) ([]U, error) {
		rows, err := r.materialize(p, led)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(rows))
		for i, v := range rows {
			out[i] = f(v)
		}
		led.AddCPU(float64(len(rows)))
		return out, nil
	}))
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], name string, f func(T) []U) *RDD[U] {
	return inherit(r, newRDD(r.ctx, name, r.parts, []preparable{r}, func(p int, led *sim.Ledger) ([]U, error) {
		rows, err := r.materialize(p, led)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range rows {
			out = append(out, f(v)...)
		}
		led.AddCPU(float64(len(rows) + len(out)))
		return out, nil
	}))
}

// Filter keeps the elements for which pred returns true.
func Filter[T any](r *RDD[T], name string, pred func(T) bool) *RDD[T] {
	return inherit(r, newRDD(r.ctx, name, r.parts, []preparable{r}, func(p int, led *sim.Ledger) ([]T, error) {
		rows, err := r.materialize(p, led)
		if err != nil {
			return nil, err
		}
		out := make([]T, 0, len(rows))
		for _, v := range rows {
			if pred(v) {
				out = append(out, v)
			}
		}
		led.AddCPU(float64(len(rows)))
		return out, nil
	}))
}

// MapPartitions transforms each partition wholesale. The callback receives
// the partition index, its rows, and the task's ledger so domain code can
// charge work beyond the engine's default per-element accounting (e.g. one
// op per candidate-itemset check).
func MapPartitions[T, U any](r *RDD[T], name string,
	f func(p int, rows []T, led *sim.Ledger) ([]U, error)) *RDD[U] {
	return inherit(r, newRDD(r.ctx, name, r.parts, []preparable{r}, func(p int, led *sim.Ledger) ([]U, error) {
		rows, err := r.materialize(p, led)
		if err != nil {
			return nil, err
		}
		return f(p, rows, led)
	}))
}

// inherit copies the parent's per-partition locality preferences to a
// narrow child (same partitioning, same underlying data placement).
func inherit[T, U any](parent *RDD[T], child *RDD[U]) *RDD[U] {
	child.prefs = parent.prefs
	return child
}

// Union concatenates two RDDs partition-wise (their partition lists are
// appended, as in Spark).
func Union[T any](a, b *RDD[T], name string) *RDD[T] {
	if a.ctx != b.ctx {
		panic("rdd: Union across contexts")
	}
	out := newRDD(a.ctx, name, a.parts+b.parts, []preparable{a, b}, func(p int, led *sim.Ledger) ([]T, error) {
		if p < a.parts {
			return a.materialize(p, led)
		}
		return b.materialize(p-a.parts, led)
	})
	if a.prefs != nil || b.prefs != nil {
		prefs := make([][]int, a.parts+b.parts)
		copy(prefs, a.prefs)
		for i := 0; i < b.parts && i < len(b.prefs); i++ {
			prefs[a.parts+i] = b.prefs[i]
		}
		out.prefs = prefs
	}
	return out
}

// runFinal executes the action's final stage over r's partitions and
// returns the materialised partitions. A reduce-side fetch failure (shuffle
// map output destroyed by a node loss after its map stage ran) aborts the
// stage, re-prepares the lineage — which re-runs exactly the missing map
// partitions — and resubmits, the Spark driver's FetchFailed protocol.
func runFinal[T any](r *RDD[T], action string) ([][]T, error) {
	r.ctx.beginJob(fmt.Sprintf("%s(%s)", action, r.name))
	defer r.ctx.endJob()
	for resubmit := 0; ; resubmit++ {
		err := r.prepareAll()
		if err == nil {
			results := make([][]T, r.parts)
			err = r.ctx.runTasks(r.name, r.lineageNames(), r.parts, r.prefs, func(p int, led *sim.Ledger) error {
				rows, err := r.materialize(p, led)
				if err != nil {
					return err
				}
				results[p] = rows
				return nil
			})
			if err == nil {
				return results, nil
			}
		}
		var miss *shuffleMissingError
		if !errors.As(err, &miss) || resubmit >= maxStageResubmits {
			return nil, err
		}
	}
}

// Collect materialises the RDD and returns all elements in partition order,
// charging the network cost of returning them to the driver.
func Collect[T any](r *RDD[T]) ([]T, error) {
	parts, err := runFinal(r, "collect")
	if err != nil {
		return nil, err
	}
	// One sizing walk up front so the output is allocated exactly once
	// instead of growing append-by-append across partitions.
	var total int
	var bytes int64
	for _, rows := range parts {
		total += len(rows)
		for _, v := range rows {
			bytes += recordBytes(v)
		}
	}
	var out []T
	if total > 0 {
		out = make([]T, 0, total)
		for _, rows := range parts {
			out = append(out, rows...)
		}
	}
	r.ctx.addPendingOverhead(transferTime(r.ctx.cfg, bytes))
	return out, nil
}

// Count returns the number of elements.
func Count[T any](r *RDD[T]) (int64, error) {
	parts, err := runFinal(r, "count")
	if err != nil {
		return 0, err
	}
	var n int64
	for _, rows := range parts {
		n += int64(len(rows))
	}
	return n, nil
}

// Reduce folds all elements with the associative, commutative function f.
// It returns an error if the RDD is empty.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	var zero T
	parts, err := runFinal(r, "reduce")
	if err != nil {
		return zero, err
	}
	acc := zero
	seen := false
	for _, rows := range parts {
		for _, v := range rows {
			if !seen {
				acc, seen = v, true
			} else {
				acc = f(acc, v)
			}
		}
	}
	if !seen {
		return zero, fmt.Errorf("rdd: reduce of empty RDD %s", r.name)
	}
	return acc, nil
}
