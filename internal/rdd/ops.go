package rdd

import (
	"cmp"
	"fmt"
	"math/rand"
	"sort"

	"yafim/internal/sim"
)

// Distinct removes duplicate elements via a shuffle, like Spark's
// distinct(): elements are hash-partitioned so equal values meet in one
// reduce task. The output is sorted within each partition.
func Distinct[T cmp.Ordered](r *RDD[T], name string, parts int) *RDD[T] {
	pairs := Map(r, name+":pairs", func(v T) Pair[T, struct{}] {
		return Pair[T, struct{}]{Key: v}
	})
	deduped := ReduceByKey(pairs, name, func(a, _ struct{}) struct{} { return a }, parts)
	return Keys(deduped, name+":keys")
}

// GroupByKey gathers all values sharing a key into one slice, via the same
// shuffle machinery as ReduceByKey but without map-side combining (there is
// nothing to combine), matching Spark's groupByKey semantics and its higher
// shuffle volume.
func GroupByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string, parts int) *RDD[Pair[K, []V]] {
	listed := Map(r, name+":lift", func(kv Pair[K, V]) Pair[K, []V] {
		return Pair[K, []V]{Key: kv.Key, Value: []V{kv.Value}}
	})
	return ReduceByKey(listed, name, func(a, b []V) []V { return append(a, b...) }, parts)
}

// Join performs an inner equi-join of two pair RDDs: for every key present
// in both, every (V, W) value combination is emitted, as in Spark's join.
// Both sides are shuffled to the same partitioning.
func Join[K cmp.Ordered, V, W any](left *RDD[Pair[K, V]], right *RDD[Pair[K, W]],
	name string, parts int) *RDD[Pair[K, JoinedPair[V, W]]] {
	if left.ctx != right.ctx {
		panic("rdd: Join across contexts")
	}
	if parts <= 0 {
		parts = left.parts
	}
	lg := GroupByKey(left, name+":left", parts)
	rg := GroupByKey(right, name+":right", parts)
	out := newRDD[Pair[K, JoinedPair[V, W]]](left.ctx, name, parts,
		[]preparable{lg, rg}, nil)
	out.compute = func(p int, led *sim.Ledger) ([]Pair[K, JoinedPair[V, W]], error) {
		lrows, err := lg.materialize(p, led)
		if err != nil {
			return nil, err
		}
		rrows, err := rg.materialize(p, led)
		if err != nil {
			return nil, err
		}
		rightByKey := make(map[K][]W, len(rrows))
		for _, kv := range rrows {
			rightByKey[kv.Key] = kv.Value
		}
		var joined []Pair[K, JoinedPair[V, W]]
		for _, kv := range lrows {
			ws, ok := rightByKey[kv.Key]
			if !ok {
				continue
			}
			for _, v := range kv.Value {
				for _, w := range ws {
					joined = append(joined, Pair[K, JoinedPair[V, W]]{
						Key: kv.Key, Value: JoinedPair[V, W]{Left: v, Right: w},
					})
				}
			}
		}
		led.AddCPU(float64(len(lrows) + len(rrows) + len(joined)))
		return joined, nil
	}
	return out
}

// JoinedPair is one matched value combination produced by Join.
type JoinedPair[V, W any] struct {
	Left  V
	Right W
}

// SizeBytes implements Sizer for shuffle cost estimation.
func (j JoinedPair[V, W]) SizeBytes() int64 {
	return valueBytes(j.Left) + valueBytes(j.Right)
}

// Sample returns a deterministic Bernoulli sample of r: each element is
// kept independently with the given fraction, seeded per partition so
// repeated runs (and lineage recomputation) yield identical samples.
func Sample[T any](r *RDD[T], name string, fraction float64, seed int64) *RDD[T] {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("rdd: %s: sample fraction %v out of [0,1]", name, fraction))
	}
	return newRDD(r.ctx, name, r.parts, []preparable{r}, func(p int, led *sim.Ledger) ([]T, error) {
		rows, err := r.materialize(p, led)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(p)))
		out := make([]T, 0, int(float64(len(rows))*fraction)+1)
		for _, v := range rows {
			if rng.Float64() < fraction {
				out = append(out, v)
			}
		}
		led.AddCPU(float64(len(rows)))
		return out, nil
	})
}

// Repartition redistributes r's elements evenly across parts partitions via
// a round-robin shuffle, used to fix skew or change parallelism. Like
// CombineByKey, its map output is owned by the context's shuffle lifecycle
// manager: failures invalidate it, KillNode drops the dead node's slices,
// and Unpersist/FreeShuffles reclaim it.
func Repartition[T any](r *RDD[T], name string, parts int) *RDD[T] {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: %s: repartition to %d partitions", name, parts))
	}
	st := &struct {
		core  *shuffleCore
		rows  [][]T     // [mapTask*parts + target]
		bytes [][]int64 // [mapTask][target]
	}{}
	st.core = newShuffleCore(r.ctx, name, r.parts,
		func(p int) {
			for t := 0; t < parts; t++ {
				st.rows[p*parts+t] = nil
			}
			st.bytes[p] = nil
		},
		func() { st.rows, st.bytes = nil, nil })
	out := newRDD[T](r.ctx, name, parts, []preparable{r}, nil)
	out.shuffle = st.core

	runMap := func(p int, led *sim.Ledger) error {
		rows, err := r.materialize(p, led)
		if err != nil {
			return err
		}
		for t := 0; t < parts; t++ {
			st.rows[p*parts+t] = nil
		}
		bbytes := make([]int64, parts)
		var spill int64
		for i, v := range rows {
			t := i % parts
			st.rows[p*parts+t] = append(st.rows[p*parts+t], v)
			n := recordBytes(v)
			bbytes[t] += n
			spill += n
		}
		led.AddCPU(float64(len(rows)))
		led.AddDiskWrite(spill)
		st.bytes[p] = bbytes
		return nil
	}
	taskBytes := func(p int) int64 {
		var n int64
		for _, sz := range st.bytes[p] {
			n += sz
		}
		return n
	}

	out.prepare = func() error {
		missing, runAll := st.core.plan()
		if runAll {
			st.rows = make([][]T, r.parts*parts)
			st.bytes = make([][]int64, r.parts)
			err := r.ctx.runTasks(name+":map", r.lineageNames(), r.parts, r.prefs, runMap)
			if err != nil {
				st.core.invalidate()
				return err
			}
			bytes := make([]int64, r.parts)
			for p := range bytes {
				bytes[p] = taskBytes(p)
			}
			st.core.commit(nil, bytes)
			return nil
		}
		if len(missing) == 0 {
			return nil
		}
		return st.core.recover(missing, r.prefs, r.lineageNames(), runMap, taskBytes)
	}
	out.compute = func(t int, led *sim.Ledger) ([]T, error) {
		if !st.core.ready() {
			return nil, &shuffleMissingError{name: name}
		}
		var outRows []T
		var fetched int64
		for p := 0; p < r.parts; p++ {
			outRows = append(outRows, st.rows[p*parts+t]...)
			led.AddNet(st.bytes[p][t])
			led.AddDiskRead(st.bytes[p][t])
			fetched += st.bytes[p][t]
		}
		led.AddCPU(float64(len(outRows)))
		r.ctx.rec.AddShuffleBytes(fetched)
		return outRows, nil
	}
	return out
}

// Take returns up to n elements from the front partitions (an action).
func Take[T any](r *RDD[T], n int) ([]T, error) {
	all, err := Collect(r)
	if err != nil {
		return nil, err
	}
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

// SortBy materialises the RDD and returns all elements ordered by the key
// function (an action; the paper-era Spark sortByKey also gathered range
// bounds at the driver).
func SortBy[T any, K cmp.Ordered](r *RDD[T], key func(T) K) ([]T, error) {
	all, err := Collect(r)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(all, func(i, j int) bool { return key(all[i]) < key(all[j]) })
	return all, nil
}
