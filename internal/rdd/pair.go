package rdd

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"yafim/internal/sim"
)

// Pair is a key/value record, the currency of shuffle operations.
type Pair[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// Sizer lets record types report their serialized size to the shuffle and
// collect cost models.
type Sizer interface {
	SizeBytes() int64
}

// SizeBytes estimates the pair's serialized size from its components.
func (p Pair[K, V]) SizeBytes() int64 {
	return valueBytes(p.Key) + valueBytes(p.Value)
}

// valueBytes estimates the wire size of a single value.
func valueBytes(v any) int64 {
	switch x := v.(type) {
	case Sizer:
		return x.SizeBytes()
	case string:
		return int64(len(x)) + 4
	case []byte:
		return int64(len(x)) + 4
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// recordBytes estimates the serialized size of any record.
func recordBytes[T any](v T) int64 {
	if s, ok := any(v).(Sizer); ok {
		return s.SizeBytes()
	}
	return valueBytes(v)
}

// hashKey deterministically hashes a key for partitioning; the result is
// stable across runs and platforms.
func hashKey[K cmp.Ordered](k K) uint32 {
	h := fnv.New32a()
	switch x := any(k).(type) {
	case string:
		h.Write([]byte(x))
	default:
		fmt.Fprintf(h, "%v", x)
	}
	return h.Sum32()
}

// shuffleState memoizes one shuffle's map-side output: for every map task a
// bucket per reduce partition, with the bucket's estimated serialized size.
type shuffleState[K cmp.Ordered, V any] struct {
	once    sync.Once
	err     error
	buckets [][]map[K]V // [mapTask][reducePart]
	bytes   [][]int64   // [mapTask][reducePart]
}

// ReduceByKey combines all values sharing a key with the associative,
// commutative function combine, producing an RDD with parts partitions (0
// means inherit the parent's). Like Spark's, the implementation performs
// map-side combining, hash partitions by key, writes shuffle output to
// (virtual) local disk, and fetches it over the (virtual) network on the
// reduce side. Output partitions are sorted by key for determinism.
func ReduceByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string,
	combine func(V, V) V, parts int) *RDD[Pair[K, V]] {
	if parts <= 0 {
		parts = r.parts
	}
	st := &shuffleState[K, V]{}
	out := newRDD[Pair[K, V]](r.ctx, name, parts, []preparable{r}, nil)
	out.prepare = func() error {
		st.once.Do(func() {
			st.buckets = make([][]map[K]V, r.parts)
			st.bytes = make([][]int64, r.parts)
			st.err = r.ctx.runTasks(name+":map", r.lineageNames(), r.parts, r.prefs, func(p int, led *sim.Ledger) error {
				rows, err := r.materialize(p, led)
				if err != nil {
					return err
				}
				buckets := make([]map[K]V, parts)
				for i := range buckets {
					buckets[i] = make(map[K]V)
				}
				for _, kv := range rows {
					b := buckets[int(hashKey(kv.Key))%parts]
					if old, ok := b[kv.Key]; ok {
						b[kv.Key] = combine(old, kv.Value)
					} else {
						b[kv.Key] = kv.Value
					}
				}
				sizes := make([]int64, parts)
				var spill int64
				for i, b := range buckets {
					for k, v := range b {
						sizes[i] += Pair[K, V]{k, v}.SizeBytes()
					}
					spill += sizes[i]
				}
				// Map-side cost: touch each row twice (hash + combine), then
				// spill the combined shuffle output to local disk.
				led.AddCPU(2 * float64(len(rows)))
				led.AddDiskWrite(spill)
				st.buckets[p] = buckets
				st.bytes[p] = sizes
				return nil
			})
		})
		return st.err
	}
	out.compute = func(p int, led *sim.Ledger) ([]Pair[K, V], error) {
		if st.buckets == nil {
			return nil, fmt.Errorf("rdd: %s: shuffle read before map stage ran", name)
		}
		// Chaos: a failed shuffle fetch means one map task's output is gone.
		// The RDD recovery story is lineage: recompute just that parent
		// partition (a cache hit when the parent is cached — near free) and
		// rebuild its map-side output. The memoized buckets are reused as the
		// recomputation's byte-identical result; only the cost is charged.
		if plan := r.ctx.chaosPlan; plan.FetchFails(name, p) {
			victim := plan.FetchVictim(name, p, r.parts)
			r.ctx.rec.AddFetchFailure()
			r.ctx.rec.AddStageRerun()
			led.AddNet(st.bytes[victim][p]) // the fetch that found nothing
			rows, err := r.materialize(victim, led)
			if err != nil {
				return nil, err
			}
			var spill int64
			for _, sz := range st.bytes[victim] {
				spill += sz
			}
			led.AddCPU(2 * float64(len(rows)))
			led.AddDiskWrite(spill)
		}
		merged := make(map[K]V)
		var fetched int64
		for m := range st.buckets {
			led.AddNet(st.bytes[m][p])
			led.AddDiskRead(st.bytes[m][p])
			fetched += st.bytes[m][p]
			for k, v := range st.buckets[m][p] {
				if old, ok := merged[k]; ok {
					merged[k] = combine(old, v)
				} else {
					merged[k] = v
				}
				led.AddCPU(1)
			}
		}
		out := make([]Pair[K, V], 0, len(merged))
		for k, v := range merged {
			out = append(out, Pair[K, V]{k, v})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		led.AddCPU(float64(len(out)))
		r.ctx.rec.AddShuffleBytes(fetched)
		return out, nil
	}
	return out
}

// CountByKey counts occurrences of each key via a shuffle and returns the
// result as a map on the driver.
func CountByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) (map[K]int64, error) {
	ones := Map(r, name+":ones", func(kv Pair[K, V]) Pair[K, int64] {
		return Pair[K, int64]{kv.Key, 1}
	})
	counted := ReduceByKey(ones, name, func(a, b int64) int64 { return a + b }, 0)
	pairs, err := Collect(counted)
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64, len(pairs))
	for _, kv := range pairs {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// Keys projects the keys of a pair RDD.
func Keys[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) *RDD[K] {
	return Map(r, name, func(kv Pair[K, V]) K { return kv.Key })
}

// Values projects the values of a pair RDD.
func Values[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) *RDD[V] {
	return Map(r, name, func(kv Pair[K, V]) V { return kv.Value })
}
