package rdd

import (
	"cmp"
	"fmt"
	"hash/fnv"
)

// Pair is a key/value record, the currency of shuffle operations.
type Pair[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// Sizer lets record types report their serialized size to the shuffle and
// collect cost models.
type Sizer interface {
	SizeBytes() int64
}

// SizeBytes estimates the pair's serialized size from its components.
func (p Pair[K, V]) SizeBytes() int64 {
	return valueBytes(p.Key) + valueBytes(p.Value)
}

// valueBytes estimates the wire size of a single value.
func valueBytes(v any) int64 {
	switch x := v.(type) {
	case Sizer:
		return x.SizeBytes()
	case string:
		return int64(len(x)) + 4
	case []byte:
		return int64(len(x)) + 4
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// recordBytes estimates the serialized size of any record.
func recordBytes[T any](v T) int64 {
	if s, ok := any(v).(Sizer); ok {
		return s.SizeBytes()
	}
	return valueBytes(v)
}

// hashKey deterministically hashes a key for partitioning; the result is
// stable across runs and platforms.
func hashKey[K cmp.Ordered](k K) uint32 {
	h := fnv.New32a()
	switch x := any(k).(type) {
	case string:
		h.Write([]byte(x))
	default:
		fmt.Fprintf(h, "%v", x)
	}
	return h.Sum32()
}

// ReduceByKey combines all values sharing a key with the associative,
// commutative function combine, producing an RDD with parts partitions (0
// means inherit the parent's). It is CombineByKey with the identity
// combiner: map-side combining, hash partitioning by key, shuffle output
// written to (virtual) local disk and fetched over the (virtual) network on
// the reduce side. Output partitions are sorted by key for determinism.
func ReduceByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string,
	combine func(V, V) V, parts int) *RDD[Pair[K, V]] {
	return CombineByKey(r, name, func(v V) V { return v }, combine, combine, parts)
}

// CountByKey counts occurrences of each key via a shuffle and returns the
// result as a map on the driver.
func CountByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) (map[K]int64, error) {
	ones := Map(r, name+":ones", func(kv Pair[K, V]) Pair[K, int64] {
		return Pair[K, int64]{kv.Key, 1}
	})
	counted := ReduceByKey(ones, name, func(a, b int64) int64 { return a + b }, 0)
	pairs, err := Collect(counted)
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64, len(pairs))
	for _, kv := range pairs {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// Keys projects the keys of a pair RDD.
func Keys[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) *RDD[K] {
	return Map(r, name, func(kv Pair[K, V]) K { return kv.Key })
}

// Values projects the values of a pair RDD.
func Values[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) *RDD[V] {
	return Map(r, name, func(kv Pair[K, V]) V { return kv.Value })
}
