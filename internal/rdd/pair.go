package rdd

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"strconv"
)

// Pair is a key/value record, the currency of shuffle operations.
type Pair[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// Sizer lets record types report their serialized size to the shuffle and
// collect cost models.
type Sizer interface {
	SizeBytes() int64
}

// SizeBytes estimates the pair's serialized size from its components.
func (p Pair[K, V]) SizeBytes() int64 {
	return valueBytes(p.Key) + valueBytes(p.Value)
}

// valueBytes estimates the wire size of a single value.
func valueBytes(v any) int64 {
	switch x := v.(type) {
	case Sizer:
		return x.SizeBytes()
	case string:
		return int64(len(x)) + 4
	case []byte:
		return int64(len(x)) + 4
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// recordBytes estimates the serialized size of any record.
func recordBytes[T any](v T) int64 {
	if s, ok := any(v).(Sizer); ok {
		return s.SizeBytes()
	}
	return valueBytes(v)
}

// FNV-1a 32-bit parameters (hash/fnv), inlined so the hot path can hash
// stack bytes without a hash.Hash allocation.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv1a(h uint32, b []byte) uint32 {
	for _, c := range b {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return h
}

// hashKey deterministically hashes a key for partitioning; the result is
// stable across runs and platforms.
//
// The built-in kinds are formatted with strconv into a stack buffer and fed
// to an inlined FNV-1a — byte-identical input to the historical
// fmt.Fprintf(h, "%v", x) path (decimal for integers, shortest 'g' form for
// floats), so partition assignment and therefore virtual time are unchanged,
// without fmt's reflection or the hash.Hash allocation. Named types (e.g.
// itemset.Item) have a different dynamic type and keep the fmt fallback,
// whose %v output for an integer kind is the same decimal text.
func hashKey[K cmp.Ordered](k K) uint32 {
	var buf [32]byte
	switch x := any(k).(type) {
	case string:
		return fnv1a(fnvOffset32, []byte(x))
	case int:
		return fnv1a(fnvOffset32, strconv.AppendInt(buf[:0], int64(x), 10))
	case int8:
		return fnv1a(fnvOffset32, strconv.AppendInt(buf[:0], int64(x), 10))
	case int16:
		return fnv1a(fnvOffset32, strconv.AppendInt(buf[:0], int64(x), 10))
	case int32:
		return fnv1a(fnvOffset32, strconv.AppendInt(buf[:0], int64(x), 10))
	case int64:
		return fnv1a(fnvOffset32, strconv.AppendInt(buf[:0], x, 10))
	case uint:
		return fnv1a(fnvOffset32, strconv.AppendUint(buf[:0], uint64(x), 10))
	case uint8:
		return fnv1a(fnvOffset32, strconv.AppendUint(buf[:0], uint64(x), 10))
	case uint16:
		return fnv1a(fnvOffset32, strconv.AppendUint(buf[:0], uint64(x), 10))
	case uint32:
		return fnv1a(fnvOffset32, strconv.AppendUint(buf[:0], uint64(x), 10))
	case uint64:
		return fnv1a(fnvOffset32, strconv.AppendUint(buf[:0], x, 10))
	case uintptr:
		return fnv1a(fnvOffset32, strconv.AppendUint(buf[:0], uint64(x), 10))
	case float32:
		return fnv1a(fnvOffset32, strconv.AppendFloat(buf[:0], float64(x), 'g', -1, 32))
	case float64:
		return fnv1a(fnvOffset32, strconv.AppendFloat(buf[:0], x, 'g', -1, 64))
	default:
		h := fnv.New32a()
		fmt.Fprintf(h, "%v", x)
		return h.Sum32()
	}
}

// ReduceByKey combines all values sharing a key with the associative,
// commutative function combine, producing an RDD with parts partitions (0
// means inherit the parent's). It is CombineByKey with the identity
// combiner: map-side combining, hash partitioning by key, shuffle output
// written to (virtual) local disk and fetched over the (virtual) network on
// the reduce side. Output partitions are sorted by key for determinism.
func ReduceByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string,
	combine func(V, V) V, parts int) *RDD[Pair[K, V]] {
	return CombineByKey(r, name, func(v V) V { return v }, combine, combine, parts)
}

// CountByKey counts occurrences of each key via a shuffle and returns the
// result as a map on the driver.
func CountByKey[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) (map[K]int64, error) {
	ones := Map(r, name+":ones", func(kv Pair[K, V]) Pair[K, int64] {
		return Pair[K, int64]{kv.Key, 1}
	})
	counted := ReduceByKey(ones, name, func(a, b int64) int64 { return a + b }, 0)
	pairs, err := Collect(counted)
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64, len(pairs))
	for _, kv := range pairs {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// Keys projects the keys of a pair RDD.
func Keys[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) *RDD[K] {
	return Map(r, name, func(kv Pair[K, V]) K { return kv.Key })
}

// Values projects the values of a pair RDD.
func Values[K cmp.Ordered, V any](r *RDD[Pair[K, V]], name string) *RDD[V] {
	return Map(r, name, func(kv Pair[K, V]) V { return kv.Value })
}
