package rdd

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"yafim/internal/exec"
	"yafim/internal/leaktest"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// TestPreCanceledContext verifies a canceled context stops an action before
// any task runs, with the cancellation counted and no goroutines left.
func TestPreCanceledContext(t *testing.T) {
	defer leaktest.Check(t)()
	goCtx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := obs.New()
	ctx := newTestContext(t, WithContext(goCtx), WithRecorder(rec))

	var ran int64
	r := MapPartitions(Parallelize(ctx, "nums", ints(8), 4), "work",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			atomic.AddInt64(&ran, 1)
			return rows, nil
		})
	_, err := Collect(r)
	if !errors.Is(err, exec.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	var se *exec.StageError
	if !errors.As(err, &se) || se.Engine != "rdd" {
		t.Fatalf("err = %v, want *exec.StageError from the rdd engine", err)
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Errorf("%d tasks ran after cancellation", ran)
	}
	if got := rec.Counters().Cancellations; got == 0 {
		t.Error("cancellation not counted")
	}
}

// TestCancelMidStage cancels from inside a task closure: the observing task
// stops without retries, sibling tasks abort at their next attempt boundary,
// and the stage dies with a lineage-annotated cancellation StageError.
func TestCancelMidStage(t *testing.T) {
	defer leaktest.Check(t)()
	goCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.New()
	ctx := newTestContext(t, WithContext(goCtx), WithRecorder(rec))

	r := MapPartitions(Parallelize(ctx, "nums", ints(32), 16), "poison",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			if p == 0 {
				cancel()
				return nil, exec.ContextErr(goCtx)
			}
			return rows, nil
		})
	_, err := Collect(r)
	if !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var se *exec.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *exec.StageError", err)
	}
	if se.Attempts != 0 {
		t.Errorf("cancellation reported %d attempts; cancellations must not retry", se.Attempts)
	}
	if len(se.Lineage) == 0 || se.Lineage[0] != "poison" {
		t.Errorf("lineage = %v, want to start at the failing stage", se.Lineage)
	}
	if rec.Counters().TaskRetries != 0 {
		t.Error("cancellation was retried")
	}
}

// TestDeterministicPanicFailsStage verifies a closure that always panics
// surfaces as a typed *exec.TaskError naming stage, partition and attempt —
// after the standard retry budget — instead of crashing the process.
func TestDeterministicPanicFailsStage(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))

	r := MapPartitions(Parallelize(ctx, "nums", ints(8), 4), "boom",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			if p == 1 {
				panic("kaboom")
			}
			return rows, nil
		})
	_, err := Collect(r)
	if err == nil {
		t.Fatal("panicking stage succeeded")
	}
	var te *exec.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a wrapped *exec.TaskError", err)
	}
	if !te.Panicked() || te.PanicValue != "kaboom" {
		t.Errorf("panic value = %v, want \"kaboom\"", te.PanicValue)
	}
	if te.Engine != "rdd" || te.Stage != "boom" || te.Part != 1 {
		t.Errorf("task identity = %s/%s/part %d, want rdd/boom/part 1", te.Engine, te.Stage, te.Part)
	}
	if te.Attempt != maxTaskAttempts {
		t.Errorf("surfaced attempt = %d, want the last (%d)", te.Attempt, maxTaskAttempts)
	}
	if len(te.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	var se *exec.StageError
	if !errors.As(err, &se) || se.Attempts != maxTaskAttempts {
		t.Errorf("stage error = %v, want Attempts = %d", err, maxTaskAttempts)
	}
	if got := rec.Counters().TaskPanics; got != maxTaskAttempts {
		t.Errorf("TaskPanics = %d, want one per attempt (%d)", got, maxTaskAttempts)
	}
}

// TestTransientPanicRetried verifies a panic on the first attempt only is
// absorbed by the retry machinery exactly like an injected transient fault.
func TestTransientPanicRetried(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))

	var calls int64
	r := MapPartitions(Parallelize(ctx, "nums", ints(8), 4), "flaky",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			if p == 2 && atomic.AddInt64(&calls, 1) == 1 {
				panic("transient glitch")
			}
			return rows, nil
		})
	out, err := Collect(r)
	if err != nil {
		t.Fatalf("transient panic not recovered: %v", err)
	}
	if len(out) != 8 {
		t.Fatalf("collected %d rows, want 8", len(out))
	}
	c := rec.Counters()
	if c.TaskPanics != 1 {
		t.Errorf("TaskPanics = %d, want 1", c.TaskPanics)
	}
	if c.TaskRetries == 0 {
		t.Error("retry after transient panic not counted")
	}
}

// TestDeadlineExceeded verifies an expired deadline surfaces as
// ErrDeadlineExceeded (and not as a plain cancellation).
func TestDeadlineExceeded(t *testing.T) {
	defer leaktest.Check(t)()
	goCtx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	ctx := newTestContext(t, WithContext(goCtx))

	_, err := Collect(Parallelize(ctx, "nums", ints(8), 4))
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
	if errors.Is(err, exec.ErrCanceled) {
		t.Error("deadline expiry also matched ErrCanceled")
	}
}

// TestCancellationPartialTelemetry verifies a canceled run leaves the
// recorder in a writable state: whatever stages completed before the abort
// still render as a valid Chrome trace.
func TestCancellationPartialTelemetry(t *testing.T) {
	defer leaktest.Check(t)()
	goCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.New()
	ctx := newTestContext(t, WithContext(goCtx), WithRecorder(rec))

	base := Parallelize(ctx, "nums", ints(8), 4).Cache()
	if _, err := Collect(base); err != nil { // one full job before the abort
		t.Fatal(err)
	}
	second := MapPartitions(base, "canceled",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			cancel()
			return nil, exec.ContextErr(goCtx)
		})
	if _, err := Collect(second); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	var sb writableBuffer
	if err := obs.WriteChromeTrace(&sb, rec); err != nil {
		t.Fatalf("partial trace not writable: %v", err)
	}
	if sb.n == 0 {
		t.Error("partial trace empty")
	}
}

// writableBuffer counts bytes written; the trace content itself is covered
// by the obs package's own tests.
type writableBuffer struct{ n int }

func (w *writableBuffer) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
