package rdd

import (
	"testing"

	"yafim/internal/cluster"
)

func BenchmarkMapCollect(b *testing.B) {
	ctx, err := NewContext(cluster.Local())
	if err != nil {
		b.Fatal(err)
	}
	data := ints(100000)
	r := Parallelize(ctx, "n", data, 16).Cache()
	if _, err := Collect(r); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Map(r, "inc", func(v int) int { return v + 1 })
		if _, err := Collect(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceByKey(b *testing.B) {
	ctx, err := NewContext(cluster.Local())
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]Pair[int, int], 100000)
	for i := range pairs {
		pairs[i] = Pair[int, int]{i % 512, 1}
	}
	r := Parallelize(ctx, "p", pairs, 16).Cache()
	if _, err := Collect(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := ReduceByKey(r, "sum", func(a, c int) int { return a + c }, 8)
		if _, err := Collect(red); err != nil {
			b.Fatal(err)
		}
	}
}
