package rdd

import (
	"time"

	"yafim/internal/chaos"
	"yafim/internal/dfs"
	"yafim/internal/sim"
)

// WithChaos attaches a seed-driven fault plan to the context: task attempts
// fail with the plan's probability, shuffle fetches lose map outputs,
// straggler nodes run slow, and the planned node crash fires at its virtual
// time. Mitigation defaults to chaos.Defaults() — speculative execution,
// failure-count blacklisting and DFS re-replication — override it with
// WithResilience. The plan is validated by NewContext.
func WithChaos(plan *chaos.Plan) Option {
	return func(c *Context) {
		c.chaosPlan = plan
		if !c.resilSet {
			c.resil = chaos.Defaults()
		}
	}
}

// WithResilience overrides the mitigation configuration used when a chaos
// plan is attached. The zero Resilience disables speculation, blacklisting
// and re-replication while keeping fault injection active.
func WithResilience(r chaos.Resilience) Option {
	return func(c *Context) {
		c.resil = r
		c.resilSet = true
	}
}

// ChaosPlan returns the attached fault plan (nil when chaos is disabled).
func (c *Context) ChaosPlan() *chaos.Plan { return c.chaosPlan }

// registerFS ties a DFS instance to the context so a planned node crash
// also destroys that node's block replicas, and so the plan's block-read
// failures reach the filesystem. TextFile registers its source
// automatically.
func (c *Context) registerFS(fs *dfs.FileSystem) {
	c.mu.Lock()
	for _, f := range c.fss {
		if f == fs {
			c.mu.Unlock()
			return
		}
	}
	c.fss = append(c.fss, fs)
	plan := c.chaosPlan
	c.mu.Unlock()
	if plan != nil {
		fs.SetChaos(plan)
	}
}

// virtualNow returns the driver's position on the virtual timeline: every
// finished job plus the open job's overhead and completed stages. It is
// stable for the duration of one stage (stages are appended only after all
// their tasks finish), which keeps crash and blacklist decisions
// deterministic under concurrent task execution.
func (c *Context) virtualNow() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d time.Duration
	for _, r := range c.reports {
		d += r.Duration()
	}
	if c.current != nil {
		d += c.current.Overhead
		for _, s := range c.current.Stages {
			d += s.Makespan
		}
	}
	return d
}

// maybeCrash fires the plan's node crash once the virtual clock passes its
// time: the node's cached partitions are lost (to be recomputed from
// lineage), its DFS replicas disappear (re-replicated when mitigation says
// so, with the repair traffic charged to the current job), and the node is
// permanently excluded from scheduling. Called at each stage boundary; the
// driver runs stages sequentially so no locking is needed for crashDone.
func (c *Context) maybeCrash() {
	plan := c.chaosPlan
	if plan == nil || plan.Crash == nil || c.crashDone {
		return
	}
	node := plan.Crash.Node
	if node >= c.cfg.Nodes || c.virtualNow() < plan.Crash.At {
		return
	}
	c.crashDone = true
	c.KillNode(node)
	c.health.MarkDead(node)
	c.mu.Lock()
	fss := append([]*dfs.FileSystem(nil), c.fss...)
	c.mu.Unlock()
	var repaired int64
	for _, fs := range fss {
		_, bytes := fs.KillNode(node, c.resil.ReReplicate)
		repaired += bytes
	}
	if repaired > 0 {
		c.addCurrentOverhead(transferTime(c.cfg, repaired))
	}
}

// addCurrentOverhead charges driver-side virtual time to the open job, or
// to the next job when none is open.
func (c *Context) addCurrentOverhead(d time.Duration) {
	c.mu.Lock()
	if c.current != nil {
		c.current.Overhead += d
	} else {
		c.pendingOverhead += d
	}
	c.mu.Unlock()
}

// noteFailures attributes a stage's failed task attempts to nodes for
// blacklisting, in deterministic (task, attempt) order after all tasks have
// finished. Failed attempts of any cause count — injected or manual — since
// a real scheduler cannot tell them apart either.
func (c *Context) noteFailures(stage string, attempts []int) {
	if c.health == nil {
		return
	}
	now := c.virtualNow()
	var listings int64
	for p, a := range attempts {
		for attempt := 1; attempt < a; attempt++ {
			node := c.chaosPlan.FailureNode(stage, p, attempt, c.cfg.Nodes)
			if c.health.RecordFailure(node, now) {
				listings++
			}
		}
	}
	c.rec.AddBlacklistings(listings)
}

// stageOpts assembles the resilience options for the next stage's schedule:
// the plan's straggler factors, the currently blacklisted or dead nodes, and
// the speculation policy.
func (c *Context) stageOpts() sim.StageOpts {
	if c.chaosPlan == nil {
		return sim.StageOpts{}
	}
	opts := sim.StageOpts{
		NodeFactor: c.chaosPlan.NodeFactors(c.cfg.Nodes),
		Exclude:    c.health.Excluded(c.virtualNow()),
	}
	if c.resil.SpecThreshold > 0 {
		opts.Spec = &sim.SpecPolicy{
			Threshold: c.resil.SpecThreshold,
			MinTasks:  c.resil.SpecMinTasks,
		}
	}
	return opts
}
