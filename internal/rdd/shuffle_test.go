package rdd

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"yafim/internal/exec"
	"yafim/internal/leaktest"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// sumByKey runs the canonical shuffle workload: parts partitions of n ints,
// keyed mod keys, summed by key.
func sumByKey(ctx *Context, n, parts, keys int) (*RDD[Pair[int, int]], *RDD[Pair[int, int]]) {
	pairs := Map(Parallelize(ctx, "nums", ints(n), parts), "pairs", func(v int) Pair[int, int] {
		return Pair[int, int]{Key: v % keys, Value: v}
	})
	return pairs, ReduceByKey(pairs, "sums", func(a, b int) int { return a + b }, parts)
}

// TestCanceledShuffleRerunsCleanly is the regression test for the poisoned
// shuffle bug: a cancellation mid map stage used to be memoized in the
// shuffle's sync.Once and replayed by every later action on the same
// lineage. Now the failed map stage invalidates the shuffle state, so the
// same RDD graph re-runs successfully once a fresh Go context is attached.
func TestCanceledShuffleRerunsCleanly(t *testing.T) {
	defer leaktest.Check(t)()
	goCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := newTestContext(t, WithContext(goCtx))

	var fired atomic.Bool
	poisoned := MapPartitions(Parallelize(ctx, "nums", ints(64), 8), "poison",
		func(p int, rows []int, led *sim.Ledger) ([]int, error) {
			if p == 0 && fired.CompareAndSwap(false, true) {
				cancel()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return rows, nil
		})
	pairs := Map(poisoned, "pairs", func(v int) Pair[int, int] {
		return Pair[int, int]{Key: v % 4, Value: v}
	})
	sums := ReduceByKey(pairs, "sums", func(a, b int) int { return a + b }, 4)

	if _, err := Collect(sums); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("first run: err = %v, want ErrCanceled", err)
	}
	// The same action on the same lineage, with a fresh driver context.
	ctx.SetContext(context.Background())
	got, err := Collect(sums)
	if err != nil {
		t.Fatalf("re-run after cancellation: %v", err)
	}
	assertSums(t, got, 64, 4)
}

// TestExhaustedShuffleRerunsCleanly exhausts the task attempt limit inside
// the shuffle's map stage and asserts the next action re-runs instead of
// replaying the memoized stage error.
func TestExhaustedShuffleRerunsCleanly(t *testing.T) {
	defer leaktest.Check(t)()
	ctx := newTestContext(t)
	pairs, sums := sumByKey(ctx, 64, 8, 4)
	ctx.FailTaskOnce(pairs.ID(), 3, maxTaskAttempts)

	_, err := Collect(sums)
	var fe *FlakyError
	if !errors.As(err, &fe) {
		t.Fatalf("first run: err = %v, want the injected FlakyError after exhausted retries", err)
	}
	got, err := Collect(sums)
	if err != nil {
		t.Fatalf("re-run after exhausted retries: %v", err)
	}
	assertSums(t, got, 64, 4)
}

func assertSums(t *testing.T, got []Pair[int, int], n, keys int) {
	t.Helper()
	want := make(map[int]int)
	for v := 0; v < n; v++ {
		want[v%keys] += v
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for _, kv := range got {
		if want[kv.Key] != kv.Value {
			t.Fatalf("key %d: sum %d, want %d", kv.Key, kv.Value, want[kv.Key])
		}
	}
}

// TestKillNodeRerunsLostMapPartitions kills one node after a shuffle ran and
// asserts (a) exactly that node's map-output slices are dropped from the
// residency accounting, and (b) the next action re-runs exactly the missing
// map partitions, refilling the accounting to its old level and producing
// the same result.
func TestKillNodeRerunsLostMapPartitions(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec)) // cluster.Local(): 2 nodes
	_, sums := sumByKey(ctx, 64, 4, 4)

	want, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	resident := ctx.ShuffleResidentBytes()
	if resident <= 0 {
		t.Fatal("no shuffle bytes resident after the action")
	}
	node0 := ctx.shuffleNodeBytes(0)
	node1 := ctx.shuffleNodeBytes(1)
	if node0 <= 0 || node1 <= 0 {
		t.Fatalf("per-node residency = %d, %d; want both positive", node0, node1)
	}

	ctx.KillNode(0) // map tasks 0 and 2 of 4 live on node 0
	if got := ctx.shuffleNodeBytes(0); got != 0 {
		t.Fatalf("node 0 still holds %d shuffle bytes after KillNode", got)
	}
	if got := ctx.shuffleNodeBytes(1); got != node1 {
		t.Fatalf("node 1 residency changed to %d (was %d)", got, node1)
	}
	if got := ctx.ShuffleResidentBytes(); got != node1 {
		t.Fatalf("total residency = %d after KillNode, want %d", got, node1)
	}

	got, err := Collect(sums)
	if err != nil {
		t.Fatalf("re-run after KillNode: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("re-run result diverged:\n got %v\nwant %v", got, want)
	}
	c := rec.Counters()
	if c.MapReruns != 2 {
		t.Fatalf("MapReruns = %d, want exactly the 2 lost map partitions", c.MapReruns)
	}
	if c.FetchFailures < 2 {
		t.Fatalf("FetchFailures = %d, want >= 2", c.FetchFailures)
	}
	if got := ctx.ShuffleResidentBytes(); got != resident {
		t.Fatalf("residency after recovery = %d, want the original %d", got, resident)
	}
}

// TestKillNodeMidActionResubmitsStage kills a node between the map stage and
// the reduce read (simulated by dropping the slices directly once the map
// output exists) and asserts the action still completes via the driver's
// fetch-failure resubmission.
func TestKillNodeMidActionResubmitsStage(t *testing.T) {
	defer leaktest.Check(t)()
	ctx := newTestContext(t)
	_, sums := sumByKey(ctx, 64, 4, 4)
	if _, err := Collect(sums); err != nil {
		t.Fatal(err)
	}
	// Drop node 0's slices without re-preparing: the next action's final
	// stage starts from a prepare that sees holes and must recover.
	ctx.KillNode(0)
	got, err := Collect(sums)
	if err != nil {
		t.Fatalf("action after mid-lifecycle node loss: %v", err)
	}
	assertSums(t, got, 64, 4)
}

// TestUnpersistReleasesShuffle frees one RDD's shuffle output and asserts
// the accounting returns to zero, the free is counted, and a later action
// transparently re-runs the map stage.
func TestUnpersistReleasesShuffle(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	_, sums := sumByKey(ctx, 64, 4, 4)
	want, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.ShuffleResidentBytes() <= 0 {
		t.Fatal("no shuffle bytes resident after the action")
	}
	sums.Unpersist()
	if got := ctx.ShuffleResidentBytes(); got != 0 {
		t.Fatalf("resident = %d after Unpersist, want 0", got)
	}
	if rec.Counters().ShuffleFrees != 4 {
		t.Fatalf("ShuffleFrees = %d, want 4 map-task slices", rec.Counters().ShuffleFrees)
	}
	got, err := Collect(sums)
	if err != nil {
		t.Fatalf("re-run after Unpersist: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("re-run result diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCloseReleasesEverything runs shuffles and caches, closes the context,
// and asserts all shuffle residency is gone (globally and per node) while
// the context stays usable. Close is idempotent.
func TestCloseReleasesEverything(t *testing.T) {
	defer leaktest.Check(t)()
	ctx := newTestContext(t)
	pairs, sums := sumByKey(ctx, 64, 4, 4)
	pairs.Cache()
	want, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	repart := Repartition(Parallelize(ctx, "more", ints(32), 4), "repart", 2)
	if _, err := Collect(repart); err != nil {
		t.Fatal(err)
	}
	if ctx.ShuffleResidentBytes() <= 0 {
		t.Fatal("no shuffle bytes resident before Close")
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.ShuffleResidentBytes(); got != 0 {
		t.Fatalf("resident = %d after Close, want 0", got)
	}
	for node := 0; node < 2; node++ {
		if got := ctx.shuffleNodeBytes(node); got != 0 {
			t.Fatalf("node %d holds %d bytes after Close", node, got)
		}
	}
	if err := ctx.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	got, err := Collect(sums)
	if err != nil {
		t.Fatalf("action after Close: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-Close result diverged:\n got %v\nwant %v", got, want)
	}
}

// TestRepartitionLifecycle exercises the same invalidation and node-loss
// semantics on Repartition's shuffle.
func TestRepartitionLifecycle(t *testing.T) {
	defer leaktest.Check(t)()
	ctx := newTestContext(t)
	nums := Parallelize(ctx, "nums", ints(48), 4)
	repart := Repartition(nums, "repart", 3)
	ctx.FailTaskOnce(nums.ID(), 1, maxTaskAttempts)
	if _, err := Collect(repart); err == nil {
		t.Fatal("first run should fail from exhausted retries")
	}
	want, err := Collect(repart)
	if err != nil {
		t.Fatalf("re-run after exhausted retries: %v", err)
	}
	if len(want) != 48 {
		t.Fatalf("repartition lost rows: %d", len(want))
	}
	ctx.KillNode(1)
	got, err := Collect(repart)
	if err != nil {
		t.Fatalf("re-run after KillNode: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("repartition output changed after node-loss recovery")
	}
	ctx.FreeShuffles()
	if n := ctx.ShuffleResidentBytes(); n != 0 {
		t.Fatalf("resident = %d after FreeShuffles, want 0", n)
	}
}

// TestShuffleResidentGaugeMatchesCounters cross-checks the context's
// accounting against the telemetry gauge across commits, node losses and
// frees.
func TestShuffleResidentGaugeMatchesCounters(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	ctx := newTestContext(t, WithRecorder(rec))
	_, sums := sumByKey(ctx, 64, 4, 4)
	if _, err := Collect(sums); err != nil {
		t.Fatal(err)
	}
	check := func(when string) {
		t.Helper()
		if gauge, acct := rec.Counters().ShuffleResidentBytes, ctx.ShuffleResidentBytes(); gauge != acct {
			t.Fatalf("%s: telemetry gauge %d != context accounting %d", when, gauge, acct)
		}
	}
	check("after action")
	ctx.KillNode(0)
	check("after KillNode")
	if _, err := Collect(sums); err != nil {
		t.Fatal(err)
	}
	check("after recovery")
	ctx.Close()
	check("after Close")
	if peak, spilled := ctx.ShufflePeakBytes(), ctx.ShuffleSpilledBytes(); peak <= 0 || spilled < peak {
		t.Fatalf("peak %d / spilled %d: want 0 < peak <= spilled", peak, spilled)
	}
}

// refHashKey is the pre-optimisation hashKey: FNV-1a over fmt's %v
// rendering. The fast path must be byte-identical to it for every key kind,
// or partition assignment (and therefore virtual time) would change.
func refHashKey(v any) uint32 {
	h := fnv.New32a()
	switch x := v.(type) {
	case string:
		h.Write([]byte(x))
	default:
		fmt.Fprintf(h, "%v", x)
	}
	return h.Sum32()
}

func TestHashKeyParity(t *testing.T) {
	if got, want := hashKey("hello"), refHashKey("hello"); got != want {
		t.Fatalf("string: %d != %d", got, want)
	}
	for _, v := range []int64{0, 1, -1, 42, -37, math.MaxInt64, math.MinInt64} {
		if hashKey(int(v)) != refHashKey(int(v)) {
			t.Fatalf("int %d diverges", v)
		}
		if hashKey(v) != refHashKey(v) {
			t.Fatalf("int64 %d diverges", v)
		}
		if hashKey(int8(v)) != refHashKey(int8(v)) {
			t.Fatalf("int8 %d diverges", int8(v))
		}
		if hashKey(int16(v)) != refHashKey(int16(v)) {
			t.Fatalf("int16 %d diverges", int16(v))
		}
		if hashKey(int32(v)) != refHashKey(int32(v)) {
			t.Fatalf("int32 %d diverges", int32(v))
		}
	}
	for _, v := range []uint64{0, 1, 255, 1 << 40, math.MaxUint64} {
		if hashKey(uint(v)) != refHashKey(uint(v)) {
			t.Fatalf("uint %d diverges", v)
		}
		if hashKey(v) != refHashKey(v) {
			t.Fatalf("uint64 %d diverges", v)
		}
		if hashKey(uint8(v)) != refHashKey(uint8(v)) {
			t.Fatalf("uint8 %d diverges", uint8(v))
		}
		if hashKey(uint16(v)) != refHashKey(uint16(v)) {
			t.Fatalf("uint16 %d diverges", uint16(v))
		}
		if hashKey(uint32(v)) != refHashKey(uint32(v)) {
			t.Fatalf("uint32 %d diverges", uint32(v))
		}
		if hashKey(uintptr(v)) != refHashKey(uintptr(v)) {
			t.Fatalf("uintptr %d diverges", uintptr(v))
		}
	}
	for _, v := range []float64{0, 1, -1, 0.5, 1e300, -1e-300, 3.14159265358979,
		math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN()} {
		if hashKey(v) != refHashKey(v) {
			t.Fatalf("float64 %v diverges", v)
		}
		if hashKey(float32(v)) != refHashKey(float32(v)) {
			t.Fatalf("float32 %v diverges", float32(v))
		}
	}
	// Named types take the fmt fallback in both implementations.
	type myKey int32
	if hashKey(myKey(7)) != refHashKey(myKey(7)) {
		t.Fatal("named type diverges")
	}

	cases := []any{
		func(x int) bool { return hashKey(x) == refHashKey(x) },
		func(x int64) bool { return hashKey(x) == refHashKey(x) },
		func(x uint64) bool { return hashKey(x) == refHashKey(x) },
		func(x float64) bool { return hashKey(x) == refHashKey(x) },
		func(x string) bool { return hashKey(x) == refHashKey(x) },
	}
	for _, fn := range cases {
		if err := quick.Check(fn, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkHashKeyInt(b *testing.B) {
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += hashKey(i)
	}
	_ = sink
}

func BenchmarkHashKeyString(b *testing.B) {
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += hashKey("transaction-key")
	}
	_ = sink
}
