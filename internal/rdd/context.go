// Package rdd implements a Spark-like in-memory parallel execution engine:
// resilient distributed datasets with lazy, lineage-tracked transformations,
// stage-based job execution on a goroutine worker pool, partition caching,
// broadcast variables and lineage-based recovery from injected task and node
// failures.
//
// Results are computed for real and exactly; time is virtual. Every task
// meters its work into a sim.Ledger and the context converts each stage's
// task costs into a deterministic makespan for the configured cluster, so a
// driver program can be "run on 12 nodes" reproducibly on any machine.
package rdd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/exec"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// Context owns the cluster configuration, the worker pool, fault-injection
// state and the virtual-time job reports of one driver program. Drivers run
// actions sequentially, as a Spark driver thread does; a Context must not
// run two actions concurrently.
type Context struct {
	cfg         cluster.Config
	parallelism int

	// goCtx carries the driver's cancellation signal (context cancel,
	// deadline, SIGINT). Workers check it cooperatively at task boundaries;
	// the default Background context never cancels.
	goCtx context.Context

	mu              sync.Mutex
	nextID          int
	started         bool // first job pays application startup
	pendingOverhead time.Duration
	current         *sim.JobReport
	reports         []sim.JobReport
	failures        map[failureKey]int
	caches          []evictor
	naiveShipping   bool  // disable broadcast variables (ablation)
	jobShipBytes    int64 // naive-mode bytes serialized through the driver

	cacheMgr *cacheManager // per-node executor memory accounting

	// Shuffle lifecycle: every shuffle operator registers its state here so
	// the context can invalidate it on error, drop a dead node's slices, and
	// reclaim it at pass boundaries. shuffleUsed tracks resident map-output
	// spill per node next to the cache manager's budget; shuffleSpilled and
	// shufflePeak record the run's cumulative and high-water spill volume.
	shuffles       []*shuffleCore
	shuffleUsed    []int64
	shuffleTotal   int64
	shufflePeak    int64
	shuffleSpilled int64

	// Chaos engineering: the seed-driven fault plan, the mitigation
	// configuration, per-node failure bookkeeping, whether the planned crash
	// has fired, and the filesystems that crash along with a node.
	chaosPlan *chaos.Plan
	resil     chaos.Resilience
	resilSet  bool
	health    *chaos.NodeHealth
	crashDone bool
	fss       []*dfs.FileSystem

	// rec receives telemetry spans and counters; nil disables recording.
	// computed tracks which (rdd, partition) pairs have been materialised
	// before, so repeated computations surface as lineage recomputes; it is
	// only maintained while a recorder is attached.
	rec      *obs.Recorder
	computed map[failureKey]bool
}

type failureKey struct {
	rdd  int
	part int
}

type evictor interface {
	evictNode(node, nodes int)
	evictAll()
}

// Option configures a Context.
type Option func(*Context)

// WithParallelism caps the number of OS-level worker goroutines used to
// execute tasks. It affects real execution speed only, never virtual time.
func WithParallelism(n int) Option {
	return func(c *Context) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// WithoutBroadcast disables the broadcast-variable optimisation: shared data
// is shipped with every task, the naive default behaviour the paper's §IV-C
// argues against. Used by the broadcast ablation experiment.
func WithoutBroadcast() Option {
	return func(c *Context) { c.naiveShipping = true }
}

// WithContext attaches a Go context to the driver: its cancellation or
// deadline aborts job execution cooperatively at the next task boundary,
// returning an error matching exec.ErrCanceled or exec.ErrDeadlineExceeded.
// Partitions already computed stay computed; no goroutines outlive the
// aborted action. The default is context.Background(), which never cancels.
func WithContext(ctx context.Context) Option {
	return func(c *Context) {
		if ctx != nil {
			c.goCtx = ctx
		}
	}
}

// WithRecorder attaches a telemetry recorder: every job, stage and task the
// context runs is recorded as a span on the virtual timeline, and the
// engine's cache, broadcast, shuffle and retry activity is counted. A nil
// recorder (the default) disables telemetry at zero overhead.
func WithRecorder(rec *obs.Recorder) Option {
	return func(c *Context) { c.rec = rec }
}

// WithExecutorMemory caps the cache memory available per node (the paper's
// testbed has 24 GB per node). Cached partitions beyond the budget evict
// the least recently used residents of their node; evicted partitions are
// transparently recomputed from lineage. Zero (the default) is unlimited.
func WithExecutorMemory(bytesPerNode int64) Option {
	return func(c *Context) {
		if bytesPerNode > 0 {
			c.cacheMgr = newCacheManager(c.cfg.Nodes, bytesPerNode)
		}
	}
}

// NewContext creates a driver context for the given simulated cluster.
func NewContext(cfg cluster.Config, opts ...Option) (*Context, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Context{
		cfg:         cfg,
		parallelism: runtime.GOMAXPROCS(0),
		goCtx:       context.Background(),
		failures:    make(map[failureKey]int),
		shuffleUsed: make([]int64, cfg.Nodes),
	}
	for _, o := range opts {
		o(c)
	}
	if c.chaosPlan != nil {
		if err := c.chaosPlan.Validate(); err != nil {
			return nil, err
		}
		c.health = chaos.NewNodeHealth(cfg.Nodes, c.resil)
	}
	return c, nil
}

// Config returns the simulated cluster configuration.
func (c *Context) Config() cluster.Config { return c.cfg }

// Recorder returns the attached telemetry recorder (nil when disabled).
func (c *Context) Recorder() *obs.Recorder { return c.rec }

// Ctx returns the driver's Go context (never nil).
func (c *Context) Ctx() context.Context { return c.goCtx }

// Err reports the driver's cancellation state: nil while the run may
// continue, otherwise a sentinel-wrapped cancellation or deadline error.
// Long partition computations call it periodically so a runaway pass (e.g.
// an Apriori candidate explosion) stops within one task boundary.
func (c *Context) Err() error { return exec.ContextErr(c.goCtx) }

// noteCompute marks one partition computation and reports whether it
// repeats work already done earlier in the run — a lineage recomputation
// caused by a missing, never-enabled or evicted cache entry. Tracking only
// runs with a recorder attached.
func (c *Context) noteCompute(rddID, part int) {
	if c.rec == nil {
		return
	}
	k := failureKey{rddID, part}
	c.mu.Lock()
	if c.computed == nil {
		c.computed = make(map[failureKey]bool)
	}
	again := c.computed[k]
	c.computed[k] = true
	c.mu.Unlock()
	if again {
		c.rec.AddRecomputes(1)
	}
}

// Reports returns the job reports of every action run so far, in order.
func (c *Context) Reports() []sim.JobReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sim.JobReport, len(c.reports))
	copy(out, c.reports)
	return out
}

// TotalDuration sums the virtual durations of all jobs run so far.
func (c *Context) TotalDuration() time.Duration {
	var d time.Duration
	for _, r := range c.Reports() {
		d += r.Duration()
	}
	return d
}

func (c *Context) allocID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// addPendingOverhead schedules driver-side virtual time (e.g. broadcast
// distribution) to be charged to the next job.
func (c *Context) addPendingOverhead(d time.Duration) {
	c.mu.Lock()
	c.pendingOverhead += d
	c.mu.Unlock()
}

func (c *Context) registerCache(e evictor) {
	c.mu.Lock()
	c.caches = append(c.caches, e)
	c.mu.Unlock()
}

func (c *Context) registerShuffle(st *shuffleCore) {
	c.mu.Lock()
	c.shuffles = append(c.shuffles, st)
	c.mu.Unlock()
}

// shuffleAccount charges (or, with negative n, releases) resident shuffle
// spill produced by the given map task against its node, maintaining the
// total, cumulative and peak volumes and mirroring the delta into the
// telemetry gauge. Called by shuffleCore with its own lock held; the core
// never calls back while c.mu is held, so the order is always core -> ctx.
func (c *Context) shuffleAccount(mapTask int, n int64) {
	c.mu.Lock()
	c.shuffleUsed[mapTask%len(c.shuffleUsed)] += n
	c.shuffleTotal += n
	if n > 0 {
		c.shuffleSpilled += n
	}
	if c.shuffleTotal > c.shufflePeak {
		c.shufflePeak = c.shuffleTotal
	}
	c.mu.Unlock()
	c.rec.AddShuffleResident(n)
}

// ShuffleResidentBytes reports the map-output spill currently retained
// across all nodes. After Close it is always zero.
func (c *Context) ShuffleResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shuffleTotal
}

// ShufflePeakBytes reports the high-water mark of resident shuffle spill —
// with pass-boundary reclamation this is roughly one pass's shuffle volume,
// without it the sum of every pass's.
func (c *Context) ShufflePeakBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shufflePeak
}

// ShuffleSpilledBytes reports the cumulative shuffle spill written over the
// context's lifetime, reclaimed or not. Peak versus cumulative is the
// measure of how much the lifecycle manager's reclamation saves.
func (c *Context) ShuffleSpilledBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shuffleSpilled
}

// shuffleNodeBytes reports one node's resident shuffle spill (for tests).
func (c *Context) shuffleNodeBytes(node int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shuffleUsed[node]
}

// SetContext replaces the driver's Go context for subsequent actions. A
// long-running driver — one Context serving many queries — attaches each
// request's cancellation or deadline here; after a canceled or timed-out
// action, attach a fresh context and re-run the lineage: invalidated
// shuffle state re-executes instead of replaying the stale error. Must not
// be called while an action is running (actions are sequential anyway).
func (c *Context) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.goCtx = ctx
}

// FreeShuffles reclaims every registered shuffle's resident map output.
// The YAFIM driver calls it at each pass boundary so pass k's shuffle
// spill is released before pass k+1 starts; lineage stays valid, so an RDD
// whose shuffle was freed simply re-runs its map stage on the next action.
func (c *Context) FreeShuffles() {
	c.mu.Lock()
	shuffles := append([]*shuffleCore(nil), c.shuffles...)
	c.mu.Unlock()
	for _, st := range shuffles {
		st.free()
	}
}

// Close releases everything the context retains on behalf of the cluster:
// every shuffle's resident map output and every cached partition. Reports
// and telemetry stay readable; the context itself remains usable (a later
// action recomputes from lineage), so Close is idempotent and safe to
// defer. It always returns nil and exists to satisfy io.Closer.
func (c *Context) Close() error {
	c.FreeShuffles()
	c.DropAllCaches()
	return nil
}

// FailTaskOnce injects n transient failures into the given partition of the
// given RDD: its next n materialisations return an error, exercising the
// scheduler's task retry path. Negative partition indices or failure counts
// are injector bugs — the failures would silently never fire — so they
// panic.
func (c *Context) FailTaskOnce(rddID, part, n int) {
	if part < 0 {
		panic(fmt.Sprintf("rdd: FailTaskOnce: negative partition index %d", part))
	}
	if n < 0 {
		panic(fmt.Sprintf("rdd: FailTaskOnce: negative failure count %d", n))
	}
	c.mu.Lock()
	c.failures[failureKey{rddID, part}] += n
	c.mu.Unlock()
}

func (c *Context) shouldFail(rddID, part int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := failureKey{rddID, part}
	if c.failures[k] > 0 {
		c.failures[k]--
		return true
	}
	return false
}

// KillNode simulates losing worker node n: every cached partition and every
// shuffle map-output slice resident on that node is dropped, matching
// dfs.KillNode's loss of the node's block replicas. Subsequent actions
// transparently recompute the lost cache partitions from lineage, and the
// next action over an affected shuffle re-runs exactly the missing map
// partitions, which is the RDD fault-tolerance story.
func (c *Context) KillNode(n int) {
	c.mu.Lock()
	caches := append([]evictor(nil), c.caches...)
	shuffles := append([]*shuffleCore(nil), c.shuffles...)
	nodes := c.cfg.Nodes
	c.mu.Unlock()
	for _, e := range caches {
		e.evictNode(n, nodes)
	}
	for _, st := range shuffles {
		st.dropNode(n, nodes)
	}
	c.health.MarkDead(n)
}

// DropAllCaches evicts every cached partition, as if all executors were
// restarted. Used by the cache ablation to force recomputation.
func (c *Context) DropAllCaches() {
	c.mu.Lock()
	caches := append([]evictor(nil), c.caches...)
	c.mu.Unlock()
	for _, e := range caches {
		e.evictAll()
	}
}

// FlakyError is the failure injected by FailTaskOnce. The stage scheduler
// retries tasks that fail with any error; tests use this type to assert the
// retry happened for the injected reason.
type FlakyError struct {
	RDD  int
	Part int
}

func (e *FlakyError) Error() string {
	return fmt.Sprintf("rdd: injected failure in rdd %d partition %d", e.RDD, e.Part)
}

// maxTaskAttempts mirrors Hadoop/Spark's default of four attempts per task.
const maxTaskAttempts = 4

// beginJob opens a job report. The first job of the application additionally
// pays the cluster's job (application) startup cost.
func (c *Context) beginJob(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current != nil {
		panic("rdd: nested or concurrent actions on one Context")
	}
	overhead := c.pendingOverhead
	c.pendingOverhead = 0
	if !c.started {
		c.started = true
		overhead += c.cfg.JobStartup
	}
	c.current = &sim.JobReport{Name: name, Overhead: overhead}
	c.rec.BeginJob("rdd", name)
}

func (c *Context) endJob() sim.JobReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Without broadcast variables, every task's shared data is serialized
	// through the driver's single uplink — the master-bandwidth bottleneck
	// §IV-C describes — so the shipped volume is charged serially.
	c.current.Overhead += transferTime(c.cfg, c.jobShipBytes)
	c.jobShipBytes = 0
	rep := *c.current
	c.current = nil
	c.reports = append(c.reports, rep)
	c.rec.EndJob(rep.Overhead)
	return rep
}

// addShipBytes records naive-mode data shipped with a task of the current
// job.
func (c *Context) addShipBytes(n int64) {
	c.mu.Lock()
	c.jobShipBytes += n
	c.mu.Unlock()
}

func (c *Context) addStage(rep sim.StageReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		panic("rdd: stage executed outside any job")
	}
	c.current.Stages = append(c.current.Stages, rep)
}

// runTasks executes one stage: numTasks tasks on the worker pool, with
// per-task cost metering, failure retry, panic isolation, cooperative
// cancellation, and a deterministic makespan. The work callback is invoked
// with the task index and that task's ledger; prefs (optional, per task)
// lists the nodes holding the task's input for locality-aware scheduling.
// lineage names the dataset chain feeding the stage (nearest first) and
// annotates any StageError the stage dies with.
//
// A panic in the work closure is recovered into a typed *exec.TaskError and
// retried like any transient fault; a deterministic panic exhausts the
// attempt limit and fails the stage. A canceled context aborts each task at
// its next attempt boundary without retrying.
func (c *Context) runTasks(name string, lineage []string, numTasks int, prefs [][]int, work func(p int, led *sim.Ledger) error) error {
	if err := c.Err(); err != nil {
		c.rec.AddCancellations(1)
		return &exec.StageError{Engine: "rdd", Stage: name, Lineage: lineage, Err: err}
	}
	c.maybeCrash()

	costs := make([]sim.Cost, numTasks)
	wasted := make([]sim.Cost, numTasks) // cost burned by failed attempts
	attempts := make([]int, numTasks)
	errs := make([]error, numTasks)
	var panics int64

	sem := make(chan struct{}, c.parallelism)
	var wg sync.WaitGroup
	for p := 0; p < numTasks; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			var lastErr error
			for attempt := 1; attempt <= maxTaskAttempts; attempt++ {
				if err := c.Err(); err != nil {
					errs[p] = err
					return
				}
				led := &sim.Ledger{}
				lastErr = exec.Guard("rdd", name, p, attempt, func() error { return work(p, led) })
				attempts[p] = attempt
				var te *exec.TaskError
				if errors.As(lastErr, &te) && te.Panicked() {
					atomic.AddInt64(&panics, 1)
				}
				// A chaos-injected failure strikes after the work ran — the
				// executor dies before reporting success — so the attempt's
				// full cost is wasted. Never injected on the last permitted
				// attempt: the plan degrades jobs, it cannot fail them.
				if lastErr == nil && attempt < maxTaskAttempts &&
					c.chaosPlan.TaskFails(name, p, attempt) {
					lastErr = &chaos.InjectedError{Stage: name, Task: p, Attempt: attempt}
				}
				if lastErr == nil {
					costs[p] = led.Total()
					return
				}
				if exec.IsCancellation(lastErr) {
					// The closure observed the cancellation itself; stop
					// without retrying — retries only delay the shutdown.
					errs[p] = lastErr
					return
				}
				var miss *shuffleMissingError
				if errors.As(lastErr, &miss) {
					// A fetch failure: the map output this task needs is gone
					// and no retry can regenerate it. Fail the stage fast so
					// the driver can recover the missing map partitions from
					// lineage and resubmit.
					errs[p] = lastErr
					return
				}
				// A failed attempt still occupied its core: its partial work
				// is charged to the task so injected failures are visible in
				// virtual time, and surfaced as wasted cost.
				wasted[p] = wasted[p].Add(led.Total())
			}
			errs[p] = fmt.Errorf("task %d failed after %d attempts: %w",
				p, maxTaskAttempts, lastErr)
		}(p)
	}
	wg.Wait()

	c.rec.AddTaskPanics(panics)
	if err := errors.Join(errs...); err != nil {
		// One representative cancellation instead of the join: every aborted
		// task carries the same context error, and Join would print it once
		// per task.
		if cause := exec.CollapseCancellation(errs); cause != nil {
			c.rec.AddCancellations(1)
			return &exec.StageError{Engine: "rdd", Stage: name, Lineage: lineage, Err: cause}
		}
		return &exec.StageError{Engine: "rdd", Stage: name, Attempts: maxTaskAttempts,
			Lineage: lineage, Err: err}
	}
	c.noteFailures(name, attempts)
	placed := make([]sim.Placed, numTasks)
	for i, cost := range costs {
		// Retried tasks run their attempts back to back on one core, so the
		// scheduled cost is the successful attempt plus everything wasted,
		// and each retry re-dispatches the task (cheap on resident Spark
		// executors, expensive on per-task MapReduce JVMs).
		placed[i] = sim.Placed{Cost: cost.Add(wasted[i]), Relaunches: attempts[i] - 1}
		if i < len(prefs) {
			placed[i].Pref = prefs[i]
		}
	}
	rep, placements, spec := sim.RunStageResilient(c.cfg, name, placed, c.stageOpts())
	c.addStage(rep)
	c.recordStage(rep, placed, placements, wasted, attempts)
	c.rec.AddSpeculation(spec.Launched, spec.Won)
	return nil
}

// recordStage converts one executed stage's schedule into telemetry: a
// stage span with per-task spans, retry/wasted-cost counters and
// locality-placement counters.
func (c *Context) recordStage(rep sim.StageReport, placed []sim.Placed,
	placements []sim.TaskPlacement, wasted []sim.Cost, attempts []int) {
	if c.rec == nil {
		return
	}
	costs := make([]sim.Cost, len(placed))
	for i := range placed {
		costs[i] = placed[i].Cost
	}
	span := obs.SpanFromSchedule(rep, c.cfg.StageOverhead, placements, costs, attempts)
	var retries, local, remote int64
	var totalWasted sim.Cost
	for i := range placements {
		if attempts[i] > 1 {
			retries += int64(attempts[i] - 1)
			totalWasted = totalWasted.Add(wasted[i])
		}
		if len(placed[i].Pref) > 0 {
			if placements[i].Remote {
				remote++
			} else {
				local++
			}
		}
	}
	c.rec.AddStage(span)
	if retries > 0 {
		c.rec.AddRetries(retries, totalWasted)
	}
	if local > 0 || remote > 0 {
		c.rec.AddLocality(local, remote)
	}
}
