package rdd

import (
	"math"
	"time"

	"yafim/internal/cluster"
	"yafim/internal/sim"
)

// Broadcast is a read-only variable distributed to every worker node once,
// rather than shipped with every task — the optimisation §IV-C of the paper
// relies on to stop the master's bandwidth capping task launch rate.
//
// With broadcasting enabled (the default), creation charges a one-time
// tree-structured distribution to the next job's overhead and tasks acquire
// the value for free. Under WithoutBroadcast, creation is free but every
// task that acquires the value pays to ship it, modelling Spark's naive
// closure-capture default.
type Broadcast[T any] struct {
	ctx   *Context
	value T
	bytes int64
}

// NewBroadcast registers v, whose serialized size is bytes, for distribution
// to the cluster.
func NewBroadcast[T any](ctx *Context, v T, bytes int64) *Broadcast[T] {
	if bytes < 0 {
		bytes = 0
	}
	b := &Broadcast[T]{ctx: ctx, value: v, bytes: bytes}
	if !ctx.naiveShipping {
		ctx.addPendingOverhead(broadcastTime(ctx.cfg, bytes))
		ctx.rec.AddBroadcastBytes(bytes)
	}
	return b
}

// Value returns the broadcast value without charging anything; use Acquire
// inside tasks so the cost model sees the access.
func (b *Broadcast[T]) Value() T { return b.value }

// Bytes returns the registered serialized size.
func (b *Broadcast[T]) Bytes() int64 { return b.bytes }

// Acquire returns the value from within a task. Under naive shipping the
// task's ledger is charged for receiving the payload and the driver's
// serialized uplink (the master-bandwidth bottleneck of §IV-C) is charged
// at job level; under broadcasting the access is free.
func (b *Broadcast[T]) Acquire(led *sim.Ledger) T {
	if b.ctx.naiveShipping {
		if led != nil {
			led.AddNet(b.bytes)
		}
		b.ctx.addShipBytes(b.bytes)
		b.ctx.rec.AddNaiveShipBytes(b.bytes)
	}
	return b.value
}

// broadcastTime models a binary-tree distribution: each doubling round
// forwards the payload once, so all n nodes hold it after ceil(log2(n+1))
// sequential transfers.
func broadcastTime(cfg cluster.Config, bytes int64) time.Duration {
	if bytes == 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(cfg.Nodes) + 1))
	secs := float64(bytes) / cfg.NetBWPerSec * rounds
	return time.Duration(secs * float64(time.Second))
}

// transferTime is the time to move bytes across one network link.
func transferTime(cfg cluster.Config, bytes int64) time.Duration {
	secs := float64(bytes) / cfg.NetBWPerSec
	return time.Duration(secs * float64(time.Second))
}
