package rdd

import (
	"sort"
	"testing"
	"testing/quick"

	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/sim"
)

// dfsNewForLocality stages a small multi-block file.
func dfsNewForLocality(t *testing.T) *dfs.FileSystem {
	t.Helper()
	fs := dfs.New(2, dfs.WithBlockSize(16), dfs.WithReplication(1))
	if err := fs.WriteFile("/loc.txt", []byte("alpha\nbeta\ngamma\ndelta\nepsilon\n"), nil); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestDistinct(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "dups", []int{3, 1, 3, 2, 1, 1, 2}, 3)
	got, err := Collect(Distinct(r, "d", 2))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Distinct = %v", got)
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := newTestContext(t)
	pairs := []Pair[string, int]{{"a", 1}, {"b", 2}, {"a", 3}, {"a", 5}, {"b", 4}}
	r := Parallelize(ctx, "p", pairs, 2)
	got, err := Collect(GroupByKey(r, "g", 2))
	if err != nil {
		t.Fatal(err)
	}
	m := map[string][]int{}
	for _, kv := range got {
		m[kv.Key] = kv.Value
	}
	sort.Ints(m["a"])
	sort.Ints(m["b"])
	if len(m["a"]) != 3 || m["a"][0] != 1 || m["a"][2] != 5 {
		t.Fatalf("group a = %v", m["a"])
	}
	if len(m["b"]) != 2 {
		t.Fatalf("group b = %v", m["b"])
	}
}

func TestJoin(t *testing.T) {
	ctx := newTestContext(t)
	users := Parallelize(ctx, "users", []Pair[int, string]{
		{1, "ann"}, {2, "bob"}, {3, "cat"},
	}, 2)
	orders := Parallelize(ctx, "orders", []Pair[int, int]{
		{1, 100}, {1, 200}, {3, 300}, {4, 999},
	}, 2)
	got, err := Collect(Join(users, orders, "j", 2))
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		user  string
		total int
	}
	var rows []row
	for _, kv := range got {
		rows = append(rows, row{kv.Value.Left, kv.Value.Right})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total < rows[j].total })
	want := []row{{"ann", 100}, {"ann", 200}, {"cat", 300}}
	if len(rows) != len(want) {
		t.Fatalf("join = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("join = %v, want %v", rows, want)
		}
	}
}

func TestSampleDeterministicAndBounded(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "n", ints(10000), 8)
	s := Sample(r, "s", 0.25, 42)
	a, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(Sample(r, "s2", 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	frac := float64(len(a)) / 10000
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("sample fraction = %.3f, want ~0.25", frac)
	}
	if got, _ := Collect(Sample(r, "zero", 0, 1)); len(got) != 0 {
		t.Fatalf("fraction 0 kept %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("fraction > 1 accepted")
		}
	}()
	Sample(r, "bad", 1.5, 1)
}

func TestRepartition(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "n", ints(100), 10)
	rp := Repartition(r, "rp", 4)
	if rp.NumPartitions() != 4 {
		t.Fatalf("parts = %d", rp.NumPartitions())
	}
	got, err := Collect(rp)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("repartition lost data: %d elements", len(got))
	}
	// Shuffle costs must be charged.
	reps := ctx.Reports()
	job := reps[len(reps)-1]
	cost := job.TotalCost()
	if cost.Net == 0 || cost.DiskWrite == 0 {
		t.Fatalf("repartition shuffle not metered: %+v", cost)
	}
}

func TestTakeAndSortBy(t *testing.T) {
	ctx := newTestContext(t)
	r := Parallelize(ctx, "n", []int{5, 3, 9, 1}, 2)
	got, err := Take(r, 2)
	if err != nil || len(got) != 2 {
		t.Fatalf("take = %v, %v", got, err)
	}
	all, err := Take(r, 100)
	if err != nil || len(all) != 4 {
		t.Fatalf("take 100 = %v", all)
	}
	sorted, err := SortBy(r, func(v int) int { return v })
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(sorted) {
		t.Fatalf("sortBy = %v", sorted)
	}
}

// Property: Distinct output matches a map-based dedup for random input.
func TestDistinctProperty(t *testing.T) {
	f := func(vals []uint8, parts8 uint8) bool {
		parts := int(parts8%4) + 1
		ctx, err := NewContext(cluster.Local())
		if err != nil {
			return false
		}
		data := make([]int, len(vals))
		want := map[int]bool{}
		for i, v := range vals {
			data[i] = int(v % 32)
			want[int(v%32)] = true
		}
		r := Parallelize(ctx, "v", data, parts)
		got, err := Collect(Distinct(r, "d", parts))
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheMemoryLimitEvictsAndRecomputes(t *testing.T) {
	// Budget fits roughly half the partitions per node; everything must
	// still compute correctly, with recomputation covering evictions.
	cfg := cluster.Local() // 2 nodes
	ctx, err := NewContext(cfg, WithExecutorMemory(64))
	if err != nil {
		t.Fatal(err)
	}
	computes := make([]int, 8)
	base := newRDD(ctx, "counted", 8, nil, func(p int, led *sim.Ledger) ([]int, error) {
		computes[p]++
		out := make([]int, 4) // 4 ints * 8 bytes = 32 bytes per partition
		for i := range out {
			out[i] = p*10 + i
		}
		return out, nil
	})
	base.Cache()
	for round := 0; round < 3; round++ {
		got, err := Collect(base)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 32 {
			t.Fatalf("round %d: %d elements", round, len(got))
		}
	}
	total := 0
	for _, n := range computes {
		total += n
	}
	if total <= 8 {
		t.Fatal("no recomputation despite a tight memory budget")
	}
	// Node budgets must never be exceeded.
	for node := 0; node < cfg.Nodes; node++ {
		if used := ctx.cacheMgr.usedBytes(node); used > 64 {
			t.Fatalf("node %d cache usage %d exceeds budget", node, used)
		}
	}
}

func TestCacheMemoryLimitRejectsOversizedPartition(t *testing.T) {
	ctx, err := NewContext(cluster.Local(), WithExecutorMemory(16))
	if err != nil {
		t.Fatal(err)
	}
	computes := 0
	base := newRDD(ctx, "big", 1, nil, func(p int, led *sim.Ledger) ([]int, error) {
		computes++
		return make([]int, 100), nil // 800 bytes, over any budget
	})
	base.Cache()
	for i := 0; i < 2; i++ {
		if _, err := Collect(base); err != nil {
			t.Fatal(err)
		}
	}
	if computes != 2 {
		t.Fatalf("oversized partition cached anyway (computes=%d)", computes)
	}
}

func TestCacheUnlimitedByDefault(t *testing.T) {
	ctx := newTestContext(t)
	computes := 0
	base := newRDD(ctx, "c", 2, nil, func(p int, led *sim.Ledger) ([]int, error) {
		computes++
		return make([]int, 1000), nil
	})
	base.Cache()
	for i := 0; i < 3; i++ {
		if _, err := Collect(base); err != nil {
			t.Fatal(err)
		}
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
}

func TestCacheLRUPrefersHotPartitions(t *testing.T) {
	// One node, budget for exactly two partitions. Partition 0 is touched
	// between inserts of 1 and 2, so the LRU victim must be partition 1.
	cfg := cluster.Local()
	cfg.Nodes, cfg.CoresPerNode = 1, 4
	ctx, err := NewContext(cfg, WithExecutorMemory(70))
	if err != nil {
		t.Fatal(err)
	}
	mgr := ctx.cacheMgr
	cs := &cacheState[int]{mgr: mgr, parts: make([]*[]int, 3)}
	rows := []int{1, 2, 3, 4} // 32 bytes
	cs.put(0, rows)
	cs.put(1, rows)
	if _, ok := cs.get(0); !ok {
		t.Fatal("partition 0 missing")
	}
	cs.put(2, rows) // must evict partition 1 (least recently used)
	if _, ok := cs.get(1); ok {
		t.Fatal("LRU victim not evicted")
	}
	if _, ok := cs.get(0); !ok {
		t.Fatal("recently used partition evicted")
	}
	if _, ok := cs.get(2); !ok {
		t.Fatal("new partition not cached")
	}
}

func TestTextFilePartitionsCarryLocality(t *testing.T) {
	fs := dfsNewForLocality(t)
	ctx := newTestContext(t)
	r, err := TextFile(ctx, fs, "/loc.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for p := 0; p < r.NumPartitions(); p++ {
		if len(r.PreferredNodes(p)) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no partition carries block locations")
	}
	// Narrow transformations inherit the preferences; shuffles drop them.
	m := Map(r, "m", func(s string) string { return s })
	if len(m.PreferredNodes(0)) == 0 {
		t.Fatal("Map lost locality preferences")
	}
	pairs := Map(r, "kv", func(s string) Pair[string, int] { return Pair[string, int]{s, 1} })
	red := ReduceByKey(pairs, "c", func(a, b int) int { return a + b }, 2)
	if len(red.PreferredNodes(0)) != 0 {
		t.Fatal("shuffle output unexpectedly has locality preferences")
	}
	if _, err := Collect(red); err != nil {
		t.Fatal(err)
	}
}
