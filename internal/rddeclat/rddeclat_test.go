package rddeclat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/datagen"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/eclat"
	"yafim/internal/itemset"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func stage(t *testing.T, db *itemset.DB, opts ...rdd.Option) (*rdd.Context, *dfs.FileSystem, string) {
	t.Helper()
	fs := dfs.New(4, dfs.WithBlockSize(32), dfs.WithReplication(2))
	path := "/data/" + db.Name + ".dat"
	if _, err := dataset.Stage(fs, path, db); err != nil {
		t.Fatal(err)
	}
	ctx, err := rdd.NewContext(cluster.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetRecorder(ctx.Recorder())
	return ctx, fs, path
}

func TestMineMatchesSequentialOracles(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want) {
		t.Fatalf("RDD-Eclat disagrees with Apriori oracle:\n got %v\nwant %v",
			got.Result.All(), want.All())
	}
	seq, err := eclat.Mine(classicDB(), 2.0/9.0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(seq) {
		t.Fatalf("RDD-Eclat disagrees with sequential Eclat:\n got %v\nwant %v",
			got.Result.All(), seq.All())
	}
	if len(got.Passes) != 3 {
		t.Fatalf("trace passes = %d, want 3 (L1 + pairs + deep)", len(got.Passes))
	}
	for i, p := range got.Passes {
		if p.Duration <= 0 {
			t.Errorf("pass %d duration %v", i, p.Duration)
		}
	}
	if got.Passes[1].K != 2 || got.Passes[1].Candidates == 0 {
		t.Errorf("pass 2 stat = %+v", got.Passes[1])
	}
}

func TestMineInvalidInputs(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	if _, err := Mine(ctx, fs, path, Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := Mine(ctx, fs, "/missing", Config{MinSupport: 0.5}); err == nil {
		t.Error("missing input accepted")
	}
	bad := dfs.New(2)
	if err := bad.WriteFile("/bad.dat", []byte("1 zap\n"), nil); err != nil {
		t.Fatal(err)
	}
	badCtx, err := rdd.NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(badCtx, bad, "/bad.dat", Config{MinSupport: 0.5}); err == nil {
		t.Error("malformed transaction accepted")
	}
}

func TestMineNothingFrequent(t *testing.T) {
	db := itemset.NewDB("sparse", [][]itemset.Item{{1}, {2}, {3}, {4}})
	ctx, fs, path := stage(t, db)
	got, err := Mine(ctx, fs, path, Config{MinSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.NumFrequent() != 0 {
		t.Fatalf("frequent = %d", got.Result.NumFrequent())
	}
}

// MaxK must truncate the level sequence without disturbing the surviving
// levels — each bounded run is a prefix of the unbounded one.
func TestMineMaxK(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	full, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	if full.Result.MaxK() < 3 {
		t.Fatalf("classic db only reaches k=%d, fixture too shallow", full.Result.MaxK())
	}
	for maxK := 1; maxK <= full.Result.MaxK(); maxK++ {
		ctx, fs, path := stage(t, classicDB())
		got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0, MaxK: maxK})
		if err != nil {
			t.Fatal(err)
		}
		if got.Result.MaxK() != maxK {
			t.Fatalf("MaxK=%d mined to k=%d", maxK, got.Result.MaxK())
		}
		want := &apriori.Result{
			MinSupport: full.Result.MinSupport,
			Levels:     full.Result.Levels[:maxK],
		}
		if !got.Result.Equal(want) {
			t.Fatalf("MaxK=%d is not a prefix of the unbounded run", maxK)
		}
	}
}

// TestSeedSweepParity is the engine-matrix lock: across ≥5 generator seeds of
// the paper's T10I4D100K distribution, RDD-Eclat, sequential Eclat and YAFIM
// produce byte-identical frequent itemsets.
func TestSeedSweepParity(t *testing.T) {
	const support = 0.005
	for _, seed := range []int64{1, 2, 3, 4, 5, 2014} {
		db, err := datagen.T10I4D100K(0.01, seed)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := eclat.Mine(db, support)
		if err != nil {
			t.Fatal(err)
		}
		ctx, fs, path := stage(t, db)
		got, err := Mine(ctx, fs, path, Config{MinSupport: support})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.Result.Equal(seq) {
			t.Fatalf("seed %d: RDD-Eclat diverges from sequential Eclat", seed)
		}
		yCtx, yFs, yPath := stage(t, db)
		yTrace, err := yafim.Mine(yCtx, yFs, yPath, yafim.Config{MinSupport: support})
		if err != nil {
			t.Fatalf("seed %d: yafim: %v", seed, err)
		}
		if !got.Result.Equal(yTrace.Result) {
			t.Fatalf("seed %d: RDD-Eclat diverges from YAFIM", seed)
		}
	}
}

// TestChaosNodeKillMidIntersection kills a worker while the vertical
// intersection phase is in flight: the dead node's cached transaction
// partitions are recomputed from lineage, its intersection tasks are
// reassigned, and the mined itemsets stay byte-identical to the fault-free
// run — only the virtual timeline stretches.
func TestChaosNodeKillMidIntersection(t *testing.T) {
	db, err := datagen.T10I4D100K(0.01, 2014)
	if err != nil {
		t.Fatal(err)
	}
	refCtx, refFs, refPath := stage(t, db)
	want, err := Mine(refCtx, refFs, refPath, Config{MinSupport: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	reports := refCtx.Reports()
	if len(reports) < 4 {
		t.Fatalf("run scheduled %d jobs, want >= 4", len(reports))
	}
	// Crash once the counting jobs are done: the clock passes this mark at
	// the boundary entering the vertical-build shuffle, so the intersection
	// phase starts with a dead node, evicted cache partitions, and lineage
	// recomputes in its critical path.
	crashAt := reports[0].Duration() + reports[1].Duration()

	rec := obs.New()
	ctx, fs, path := stage(t, db,
		rdd.WithChaos(&chaos.Plan{Seed: 7, Crash: &chaos.NodeCrash{Node: 1, At: crashAt}}),
		rdd.WithRecorder(rec))
	got, err := Mine(ctx, fs, path, Config{MinSupport: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want.Result) {
		t.Fatal("node kill changed the mined itemsets")
	}
	c := rec.Counters()
	if c.CacheEvictions == 0 {
		t.Fatal("node crash evicted no cached partitions")
	}
	if c.LineageRecomputes == 0 {
		t.Fatal("lost cached partitions were not recomputed from lineage")
	}
	if ctx.TotalDuration() <= refCtx.TotalDuration() {
		t.Fatalf("crashed run not slower: %v vs fault-free %v",
			ctx.TotalDuration(), refCtx.TotalDuration())
	}
}

func TestMergeTids(t *testing.T) {
	a, b := tidlist{1, 3, 5}, tidlist{2, 3, 6}
	m := mergeTids(a, b)
	if len(m) != 5 || m[0] != 1 || m[4] != 6 {
		t.Fatalf("merge = %v", m)
	}
	if got := mergeTids(nil, tidlist{7}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("merge with empty = %v", got)
	}
}

// Property: RDD-Eclat equals the sequential Eclat oracle on random databases
// and partitionings.
func TestMineMatchesOracleProperty(t *testing.T) {
	f := func(seed int64, sup8, parts8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.15 + float64(sup8%7)/10.0
		rows := make([][]itemset.Item, rng.Intn(20)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(8)))
			}
		}
		db := itemset.NewDB("rand", rows)
		fs := dfs.New(3, dfs.WithBlockSize(16))
		if _, err := dataset.Stage(fs, "/r.dat", db); err != nil {
			return false
		}
		ctx, err := rdd.NewContext(cluster.Local())
		if err != nil {
			return false
		}
		got, err := Mine(ctx, fs, "/r.dat", Config{MinSupport: sup, NumPartitions: 1 + int(parts8%4)})
		if err != nil {
			return false
		}
		want, err := eclat.Mine(db, sup)
		if err != nil {
			return false
		}
		return got.Result.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
