package rddeclat

import (
	"math/rand"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/eclat"
	"yafim/internal/itemset"
	"yafim/internal/rdd"
)

// FuzzRDDEclatParity locks RDD-Eclat to the sequential Eclat oracle on
// arbitrary databases, supports, partitionings and chaos plans: the
// distributed bitset walk must reproduce the tidlist walk's output exactly,
// faults included.
func FuzzRDDEclatParity(f *testing.F) {
	f.Add(int64(7), uint8(3), uint8(2), int64(0), false)
	f.Add(int64(2014), uint8(0), uint8(1), int64(3), true)
	f.Add(int64(-1), uint8(6), uint8(4), int64(9), false)
	f.Fuzz(func(t *testing.T, dbSeed int64, sup8, parts8 uint8, chaosSeed int64, crash bool) {
		rng := rand.New(rand.NewSource(dbSeed))
		sup := 0.1 + float64(sup8%8)/10.0
		rows := make([][]itemset.Item, rng.Intn(30)+5)
		for i := range rows {
			n := rng.Intn(6) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(10)))
			}
		}
		db := itemset.NewDB("fuzz", rows)
		want, err := eclat.Mine(db, sup)
		if err != nil {
			t.Fatal(err)
		}

		run := func(opts ...rdd.Option) *rdd.Context {
			fs := dfs.New(4, dfs.WithBlockSize(16), dfs.WithReplication(2))
			if _, err := dataset.Stage(fs, "/f.dat", db); err != nil {
				t.Fatal(err)
			}
			ctx, err := rdd.NewContext(cluster.Local(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			fs.SetRecorder(ctx.Recorder())
			got, err := Mine(ctx, fs, "/f.dat", Config{MinSupport: sup, NumPartitions: 1 + int(parts8%4)})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Result.Equal(want) {
				t.Fatalf("RDD-Eclat diverges from sequential Eclat (sup=%v)", sup)
			}
			return ctx
		}

		ref := run()
		plan := &chaos.Plan{
			Seed:          chaosSeed,
			TaskFailProb:  chaos.Unit(chaosSeed, "fuzz-task") * 0.5,
			FetchFailProb: chaos.Unit(chaosSeed, "fuzz-fetch") * 0.5,
		}
		if crash && len(ref.Reports()) > 1 {
			plan.Crash = &chaos.NodeCrash{Node: 1, At: ref.Reports()[0].Duration()}
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("fuzz built an invalid plan: %v", err)
		}
		run(rdd.WithChaos(plan))
	})
}
