// Package rddeclat implements RDD-Eclat (Singh, Garg & Mishra, arXiv
// 1912.06415) as a first-class metered engine: Zaki's Eclat — frequent
// itemset mining over a vertical tidset layout — parallelized on the
// Spark-substitute RDD engine with equivalence-class partitioning and dense
// word-at-a-time bitset kernels.
//
// The run is a fixed number of RDD jobs regardless of lattice depth:
//
//   - Pass 1 loads the transactions into a cached RDD, assigns global
//     transaction ids from per-partition offsets, and computes the frequent
//     1-itemsets with the same flatMap → map → reduceByKey pipeline YAFIM
//     uses (their counts must be byte-identical, which the parity suite
//     locks).
//   - The vertical build shuffles (dense item id, tidlist-fragment) pairs —
//     map-side combined so each partition emits one fragment per occurring
//     item — merges them into full tidlists, and converts the collected
//     lists into one transaction bitset per frequent item, keyed by the
//     itemset.ItemIndex dense id and broadcast to the cluster.
//   - Pass 2 partitions the k=1 prefix equivalence classes across tasks and
//     intersects every item pair with a fused AND+popcount word loop,
//     yielding the frequent 2-itemsets.
//   - The deep pass partitions the k=2 prefix equivalence classes (one per
//     frequent 2-itemset, the granularity the RDD-Eclat variants found to
//     balance best) across tasks; each class is mined depth-first locally,
//     carrying intersected bitsets down the recursion exactly like the
//     sequential internal/eclat oracle carries tidlists — so the two
//     engines agree set for set and count for count.
//
// Every intersection charges the task ledger one op per 64-bit word
// touched, so the virtual timeline prices the vertical kernel the same way
// the hash-tree scan prices subset enumeration. Fault tolerance is
// inherited from the RDD engine: lost cached partitions and shuffle map
// outputs are recomputed from lineage, and a node crash mid-intersection
// only re-runs the class tasks the dead node held.
package rddeclat

import (
	"fmt"
	"sort"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/rdd"
	"yafim/internal/sim"
)

// Config parameterises a mining run.
type Config struct {
	// MinSupport is the relative minimum support threshold in (0,1].
	MinSupport float64
	// NumPartitions sets task granularity (0 = cluster core count).
	NumPartitions int
	// MaxK stops after frequent itemsets of this size (0 = unbounded).
	MaxK int
}

// tidlist is a sorted list of global transaction ids — the shuffle currency
// of the vertical build. Fragments from distinct input partitions cover
// disjoint tid ranges, so merging stays a linear sorted merge.
type tidlist []int32

// SizeBytes reports the tidlist's serialized size to the shuffle cost model.
func (t tidlist) SizeBytes() int64 { return int64(4*len(t)) + 4 }

// vertical is the broadcast payload of the mining passes: per frequent
// item (by dense id), the bitset of transactions containing it.
type vertical struct {
	ix    *itemset.ItemIndex
	bits  []*itemset.Bitset
	words int // words per bitset, the cost unit of one intersection
}

// pair2 is one frequent 2-itemset by dense ids (I < J) with its exact
// support — the output of pass 2 and the class descriptor of the deep pass.
type pair2 struct {
	I, J  int32
	Count int32
}

// SizeBytes implements rdd.Sizer for collect cost estimation.
func (pair2) SizeBytes() int64 { return 12 }

// classIndex is the deep pass's second broadcast: for every dense id i, the
// sorted dense ids j > i with {i,j} frequent. The siblings of equivalence
// class (i,j) are exactly the partners of i beyond j.
type classIndex struct {
	partners [][]int32
}

// cancelCheckRows is how many rows/classes a partition closure processes
// between cooperative cancellation checks (same contract as the YAFIM
// driver: frequent enough to stop a runaway pass promptly, rare enough to
// cost nothing).
const cancelCheckRows = 512

// Mine runs RDD-Eclat over the transaction file at path in the DFS.
func Mine(ctx *rdd.Context, fs *dfs.FileSystem, path string, cfg Config) (*apriori.Trace, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("rddeclat: MinSupport %v out of (0,1]", cfg.MinSupport)
	}
	parts := cfg.NumPartitions
	if parts <= 0 {
		parts = ctx.Config().TotalCores()
	}

	lines, err := rdd.TextFile(ctx, fs, path, parts)
	if err != nil {
		return nil, fmt.Errorf("rddeclat: %w", err)
	}
	trans := rdd.MapPartitions(lines, "transactions",
		func(_ int, rows []string, led *sim.Ledger) ([]itemset.Itemset, error) {
			out := make([]itemset.Itemset, 0, len(rows))
			parsedBytes := 0
			for i, row := range rows {
				if i%cancelCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				t, err := parseTransaction(row)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
				parsedBytes += len(row)
			}
			led.AddCPU(float64(parsedBytes))
			return out, nil
		}).Cache()

	rec := ctx.Recorder()
	rec.SetPass(1)
	passStart := markJobs(ctx)
	passMark := rec.Counters()

	// Global transaction ids: per-partition counts, then prefix offsets.
	// The same job doubles as the transaction count, so pass 1 needs no
	// separate Count action.
	counts, err := rdd.Collect(rdd.MapPartitions(trans, "partitionSizes",
		func(_ int, rows []itemset.Itemset, _ *sim.Ledger) ([]int, error) {
			return []int{len(rows)}, nil
		}))
	if err != nil {
		return nil, fmt.Errorf("rddeclat: sizing partitions: %w", err)
	}
	offsets := make([]int32, len(counts)+1)
	for i, c := range counts {
		offsets[i+1] = offsets[i] + int32(c)
	}
	n := int64(offsets[len(counts)])
	if n == 0 {
		return nil, fmt.Errorf("rddeclat: %s holds no transactions", path)
	}
	minCount := minSupportCount(cfg.MinSupport, n)
	rec.ObservePass("rdd", 1, int(n))

	// Pass 1 counting: flatMap items, map to pairs, reduceByKey, prune —
	// structurally identical to YAFIM's Phase I so the two engines' L1 is
	// trivially byte-identical.
	items := rdd.FlatMap(trans, "items", func(t itemset.Itemset) []itemset.Item { return t })
	pairs := rdd.Map(items, "itemPairs", func(it itemset.Item) rdd.Pair[int32, int] {
		return rdd.Pair[int32, int]{Key: int32(it), Value: 1}
	})
	itemCounts := rdd.ReduceByKey(pairs, "itemCounts", func(a, b int) int { return a + b }, parts)
	frequentItems := rdd.Filter(itemCounts, "frequentItems", func(kv rdd.Pair[int32, int]) bool {
		return kv.Value >= minCount
	})
	l1Pairs, err := rdd.Collect(frequentItems)
	if err != nil {
		return nil, fmt.Errorf("rddeclat: pass 1: %w", err)
	}
	l1 := make([]apriori.SetCount, len(l1Pairs))
	l1Sets := make([]itemset.Itemset, len(l1Pairs))
	for i, kv := range l1Pairs {
		l1[i] = apriori.SetCount{Set: itemset.New(itemset.Item(kv.Key)), Count: kv.Value}
		l1Sets[i] = l1[i].Set
	}

	res := &apriori.Result{MinSupport: minCount}
	trace := &apriori.Trace{Result: res}
	endPass := func(k, candidates, frequent int) {
		// Pass boundary: free the pass's shuffle output before the next
		// pass starts, then snapshot the counter delta (the same
		// iteration-scoped unpersist discipline as the YAFIM driver).
		ctx.FreeShuffles()
		trace.Passes = append(trace.Passes, apriori.PassStat{
			K: k, Candidates: candidates, Frequent: frequent,
			Duration: jobsSince(ctx, passStart),
			Counters: rec.Counters().Sub(passMark),
		})
	}
	endPass(1, int(n), len(l1))
	if len(l1) == 0 {
		return trace, nil
	}
	res.Levels = append(res.Levels, apriori.NewLevel(1, l1))
	if cfg.MaxK == 1 {
		return trace, nil
	}

	// Vertical build: dense ids for the frequent items, then one shuffle
	// turning the horizontal layout into per-item tidlists. Each input
	// partition emits at most one tidlist fragment per frequent item
	// (map-side combining: shuffle volume is bounded by items × partitions,
	// not by item occurrences).
	ix := itemset.NewItemIndex(l1Sets)
	m := ix.Len()
	rec.SetPass(2)
	passStart = markJobs(ctx)
	passMark = rec.Counters()
	rec.ObservePass("rdd", 2, m*(m-1)/2)
	tidPairs := rdd.MapPartitions(trans, "itemTids",
		func(p int, rows []itemset.Itemset, led *sim.Ledger) ([]rdd.Pair[int32, tidlist], error) {
			lists := make([]tidlist, m)
			occurrences := 0
			for i, t := range rows {
				if i%cancelCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				tid := offsets[p] + int32(i)
				for _, it := range t {
					if d := ix.DenseOf(it); d >= 0 {
						lists[d] = append(lists[d], tid)
						occurrences++
					}
				}
			}
			led.AddCPU(float64(occurrences))
			out := make([]rdd.Pair[int32, tidlist], 0, m)
			for d, l := range lists {
				if len(l) > 0 {
					out = append(out, rdd.Pair[int32, tidlist]{Key: int32(d), Value: l})
				}
			}
			return out, nil
		})
	tidlists := rdd.ReduceByKey(tidPairs, "tidlists", mergeTids, parts)
	collected, err := rdd.Collect(tidlists)
	if err != nil {
		return nil, fmt.Errorf("rddeclat: building tidlists: %w", err)
	}

	// Driver-side conversion to the dense bitset layout, broadcast once and
	// reused by pass 2 and the deep pass.
	v := &vertical{ix: ix, bits: make([]*itemset.Bitset, m), words: (int(n) + 63) / 64}
	var payload int64
	for _, kv := range collected {
		b := itemset.NewBitset(int(n))
		for _, tid := range kv.Value {
			b.Set(int(tid))
		}
		v.bits[kv.Key] = b
		payload += int64(8*v.words) + 4
	}
	bcVert := rdd.NewBroadcast(ctx, v, payload)

	// Pass 2: the k=1 prefix equivalence classes, partitioned across tasks.
	// Class i intersects item i against every item j > i with one fused
	// AND+popcount pass over the words.
	classes1 := rdd.Parallelize(ctx, "prefixClasses", seq(m), parts)
	f2 := rdd.MapPartitions(classes1, "intersectC2",
		func(_ int, idxs []int, led *sim.Ledger) ([]pair2, error) {
			vt := bcVert.Acquire(led)
			var out []pair2
			var ops int64
			for _, i := range idxs {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				bi := vt.bits[i]
				for j := i + 1; j < m; j++ {
					ops += int64(vt.words)
					if cnt := bi.AndCount(vt.bits[j]); cnt >= minCount {
						out = append(out, pair2{I: int32(i), J: int32(j), Count: int32(cnt)})
					}
				}
				led.AddCPU(float64(ops))
				ops = 0
			}
			return out, nil
		})
	l2Pairs, err := rdd.Collect(f2)
	if err != nil {
		return nil, fmt.Errorf("rddeclat: pass 2: %w", err)
	}
	// Collect interleaves partition outputs by task order; restore the
	// global (I, J) order the equivalence-class walk relies on.
	sort.Slice(l2Pairs, func(a, b int) bool {
		if l2Pairs[a].I != l2Pairs[b].I {
			return l2Pairs[a].I < l2Pairs[b].I
		}
		return l2Pairs[a].J < l2Pairs[b].J
	})
	l2 := make([]apriori.SetCount, len(l2Pairs))
	for i, p := range l2Pairs {
		l2[i] = apriori.SetCount{
			Set:   itemset.New(ix.Item(p.I), ix.Item(p.J)),
			Count: int(p.Count),
		}
	}
	endPass(2, m*(m-1)/2, len(l2))
	if len(l2) == 0 {
		return trace, nil
	}
	res.Levels = append(res.Levels, apriori.NewLevel(2, l2))
	if cfg.MaxK == 2 {
		return trace, nil
	}

	// Deep pass: one equivalence class per frequent 2-itemset (i,j),
	// partitioned across tasks; the class's extension candidates are the
	// partners of i beyond j, and each class is mined depth-first locally.
	rec.SetPass(3)
	passStart = markJobs(ctx)
	passMark = rec.Counters()
	rec.ObservePass("rdd", 3, len(l2Pairs))
	ci := &classIndex{partners: make([][]int32, m)}
	for _, p := range l2Pairs {
		ci.partners[p.I] = append(ci.partners[p.I], p.J)
	}
	bcClasses := rdd.NewBroadcast(ctx, ci, int64(4*len(l2Pairs)))
	classes2 := rdd.Parallelize(ctx, "eqClasses", l2Pairs, parts)
	deepSets := rdd.MapPartitions(classes2, "mineClasses",
		func(_ int, cls []pair2, led *sim.Ledger) ([]apriori.SetCount, error) {
			vt := bcVert.Acquire(led)
			idx := bcClasses.Acquire(led)
			var out []apriori.SetCount
			pool := &bitPool{n: int(n)}
			for _, c := range cls {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				mineClass(vt, idx, c, minCount, cfg.MaxK, pool, led, &out)
			}
			return out, nil
		})
	deep, err := rdd.Collect(deepSets)
	if err != nil {
		return nil, fmt.Errorf("rddeclat: mining classes: %w", err)
	}
	byLevel := map[int][]apriori.SetCount{}
	for _, sc := range deep {
		byLevel[sc.Set.Len()] = append(byLevel[sc.Set.Len()], sc)
	}
	for k := 3; ; k++ {
		sets, ok := byLevel[k]
		if !ok {
			break
		}
		res.Levels = append(res.Levels, apriori.NewLevel(k, sets))
	}
	endPass(res.MaxK(), len(l2Pairs), len(deep))
	return trace, nil
}

// cell is one live node of the depth-first walk: a candidate extension item
// (dense id) with its materialised transaction bitset and exact support.
type cell struct {
	item  int32
	bits  *itemset.Bitset
	count int
}

// bitPool recycles bitsets across the depth-first walk so each class task
// allocates only as many as its deepest recursion holds live at once.
type bitPool struct {
	free []*itemset.Bitset
	n    int
}

func (p *bitPool) take() *itemset.Bitset {
	if l := len(p.free); l > 0 {
		b := p.free[l-1]
		p.free = p.free[:l-1]
		return b
	}
	return itemset.NewBitset(p.n)
}

func (p *bitPool) put(b *itemset.Bitset) { p.free = append(p.free, b) }

// mineClass mines one k=2 equivalence class (i,j): rebuild the class's
// prefix bitset, materialise the frequent sibling extensions, and walk the
// subtree depth-first. Every word touched by an intersection charges the
// ledger one op — the dense word-at-a-time kernel is the engine's unit of
// CPU cost, mirroring how the hash-tree engines charge per candidate probe.
func mineClass(v *vertical, ci *classIndex, c pair2, minCount, maxK int,
	pool *bitPool, led *sim.Ledger, out *[]apriori.SetCount) {

	partners := ci.partners[c.I]
	// Siblings of class (i,j): partners of i strictly beyond j.
	k := sort.Search(len(partners), func(x int) bool { return partners[x] > c.J })
	siblings := partners[k:]
	if len(siblings) == 0 {
		return
	}

	var ops int64
	base := pool.take()
	base.AndCountInto(v.bits[c.I], v.bits[c.J])
	ops += int64(v.words)

	var dfs func(prefix itemset.Itemset, ext []cell)
	dfs = func(prefix itemset.Itemset, ext []cell) {
		for idx, e := range ext {
			set := prefix.Extend(v.ix.Item(e.item))
			*out = append(*out, apriori.SetCount{Set: set, Count: e.count})
			if maxK != 0 && set.Len() >= maxK {
				continue
			}
			var next []cell
			for _, d := range ext[idx+1:] {
				tmp := pool.take()
				cnt := tmp.AndCountInto(e.bits, d.bits)
				ops += int64(v.words)
				if cnt >= minCount {
					next = append(next, cell{item: d.item, bits: tmp, count: cnt})
				} else {
					pool.put(tmp)
				}
			}
			if len(next) > 0 {
				dfs(set, next)
			}
			for _, nc := range next {
				pool.put(nc.bits)
			}
		}
	}

	prefix := itemset.New(v.ix.Item(c.I), v.ix.Item(c.J))
	if maxK == 0 || prefix.Len() < maxK {
		ext := make([]cell, 0, len(siblings))
		for _, s := range siblings {
			tmp := pool.take()
			cnt := tmp.AndCountInto(base, v.bits[s])
			ops += int64(v.words)
			if cnt >= minCount {
				ext = append(ext, cell{item: s, bits: tmp, count: cnt})
			} else {
				pool.put(tmp)
			}
		}
		dfs(prefix, ext)
		for _, e := range ext {
			pool.put(e.bits)
		}
	}
	pool.put(base)
	led.AddCPU(float64(ops))
}

// mergeTids merges two sorted tidlists (fragments from distinct input
// partitions are disjoint, but the merge tolerates arbitrary overlap).
func mergeTids(a, b tidlist) tidlist {
	out := make(tidlist, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func parseTransaction(line string) (itemset.Itemset, error) {
	var items []itemset.Item
	v, inNum := 0, false
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] >= '0' && line[i] <= '9' {
			v = v*10 + int(line[i]-'0')
			inNum = true
			continue
		}
		if i < len(line) && line[i] != ' ' && line[i] != '\t' {
			return nil, fmt.Errorf("rddeclat: bad transaction line %q", line)
		}
		if inNum {
			items = append(items, itemset.Item(v))
			v, inNum = 0, false
		}
	}
	return itemset.New(items...), nil
}

// minSupportCount converts a relative support into an absolute count over n
// transactions, rounding up (same contract as itemset.DB.MinSupportCount).
func minSupportCount(rel float64, n int64) int {
	c := int(rel * float64(n))
	if float64(c) < rel*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// markJobs and jobsSince bracket a pass to attribute job durations to it.
func markJobs(ctx *rdd.Context) int { return len(ctx.Reports()) }

func jobsSince(ctx *rdd.Context, mark int) time.Duration {
	var d time.Duration
	for _, r := range ctx.Reports()[mark:] {
		d += r.Duration()
	}
	return d
}
