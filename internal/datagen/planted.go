package datagen

import (
	"fmt"
	"math/rand"

	"yafim/internal/itemset"
)

// Block is one planted high-support itemset: Size consecutive items that
// appear together (all of them) in a Prob fraction of transactions. Blocks
// are what give the categorical benchmark datasets their deep frequent
// itemset lattices at the paper's support thresholds.
type Block struct {
	Size int
	Prob float64
}

// PlantedConfig parameterises the planted-block generator. Blocks are laid
// out over disjoint item ranges starting at item 0; the rest of the item
// universe supplies per-transaction noise items that pad each transaction
// to AvgLen.
type PlantedConfig struct {
	Name         string
	Items        int
	Transactions int
	AvgLen       int
	Blocks       []Block
	Seed         int64
}

// Validate reports a descriptive error for unusable parameters.
func (c PlantedConfig) Validate() error {
	if c.Items <= 0 || c.Transactions <= 0 || c.AvgLen <= 0 {
		return fmt.Errorf("datagen: planted %q: need positive Items, Transactions, AvgLen", c.Name)
	}
	total := 0
	expected := 0.0
	for i, b := range c.Blocks {
		if b.Size <= 0 || b.Prob <= 0 || b.Prob > 1 {
			return fmt.Errorf("datagen: planted %q: block %d invalid (%+v)", c.Name, i, b)
		}
		total += b.Size
		expected += float64(b.Size) * b.Prob
	}
	if total >= c.Items {
		return fmt.Errorf("datagen: planted %q: blocks cover %d of %d items, leaving no noise pool",
			c.Name, total, c.Items)
	}
	if expected > float64(c.AvgLen) {
		return fmt.Errorf("datagen: planted %q: expected block items %.1f exceed AvgLen %d",
			c.Name, expected, c.AvgLen)
	}
	return nil
}

// BlockItems returns the item range [start, start+size) of block i, which
// tests and experiments use to check that planted itemsets surface as
// frequent.
func (c PlantedConfig) BlockItems(i int) itemset.Itemset {
	start := 0
	for j := 0; j < i; j++ {
		start += c.Blocks[j].Size
	}
	items := make([]itemset.Item, c.Blocks[i].Size)
	for k := range items {
		items[k] = itemset.Item(start + k)
	}
	return itemset.New(items...)
}

// Planted generates the dataset: each transaction independently includes
// each block with its probability (all items of the block at once), then is
// padded with uniformly random noise items drawn from the remaining
// universe up to the target length.
func Planted(cfg PlantedConfig) (*itemset.DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	blockStart := make([]int, len(cfg.Blocks))
	noiseStart := 0
	for i, b := range cfg.Blocks {
		blockStart[i] = noiseStart
		noiseStart += b.Size
	}
	noisePool := cfg.Items - noiseStart

	rows := make([][]itemset.Item, cfg.Transactions)
	for t := range rows {
		row := make([]itemset.Item, 0, cfg.AvgLen)
		for i, b := range cfg.Blocks {
			if rng.Float64() < b.Prob {
				for k := 0; k < b.Size; k++ {
					row = append(row, itemset.Item(blockStart[i]+k))
				}
			}
		}
		// Pad with distinct noise items; target length jitters by ±2 to
		// avoid a perfectly constant row length.
		target := cfg.AvgLen + rng.Intn(5) - 2
		if target < len(row) {
			target = len(row)
		}
		if want := target - len(row); want > 0 {
			if want > noisePool {
				want = noisePool
			}
			seen := make(map[int]struct{}, want)
			for len(seen) < want {
				n := rng.Intn(noisePool)
				if _, dup := seen[n]; !dup {
					seen[n] = struct{}{}
					row = append(row, itemset.Item(noiseStart+n))
				}
			}
		}
		rows[t] = row
	}
	return itemset.NewDB(cfg.Name, rows), nil
}

// scaleCount scales a transaction count, keeping a usable floor.
func scaleCount(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	s := int(float64(n) * scale)
	if s < 50 {
		s = 50
	}
	return s
}

// MushroomLike generates a dataset with the shape of UCI MushRoom
// (Table I: 119 items, 8124 transactions, 23 items per transaction).
// At the paper's 35% support it yields a lattice eight levels deep.
func MushroomLike(scale float64, seed int64) (*itemset.DB, error) {
	return Planted(PlantedConfig{
		Name:         "MushRoom",
		Items:        119,
		Transactions: scaleCount(8124, scale),
		AvgLen:       23,
		Blocks: []Block{
			{Size: 8, Prob: 0.55},
			{Size: 6, Prob: 0.45},
			{Size: 4, Prob: 0.40},
		},
		Seed: seed,
	})
}

// ChessLike generates a dataset with the shape of UCI Chess (Table I: 75
// items, 3196 transactions, 37 items per transaction) — very dense, mined
// at 85% support.
func ChessLike(scale float64, seed int64) (*itemset.DB, error) {
	return Planted(PlantedConfig{
		Name:         "Chess",
		Items:        75,
		Transactions: scaleCount(3196, scale),
		AvgLen:       37,
		Blocks: []Block{
			{Size: 10, Prob: 0.90},
			{Size: 8, Prob: 0.88},
			{Size: 6, Prob: 0.87},
		},
		Seed: seed,
	})
}

// PumsbStarLike generates a dataset with the shape of Pumsb_star (Table I:
// 2113 items, 49046 transactions, ~50 items per transaction), mined at 65%
// support.
func PumsbStarLike(scale float64, seed int64) (*itemset.DB, error) {
	return Planted(PlantedConfig{
		Name:         "Pumsb_star",
		Items:        2113,
		Transactions: scaleCount(49046, scale),
		AvgLen:       50,
		Blocks: []Block{
			{Size: 8, Prob: 0.72},
			{Size: 5, Prob: 0.68},
			{Size: 4, Prob: 0.66},
		},
		Seed: seed,
	})
}

// T10I4D100K generates the paper's IBM synthetic dataset equivalent via the
// Quest generator: 870 items, 100000 transactions, average length 10,
// average pattern length 4; mined at 0.25% support.
func T10I4D100K(scale float64, seed int64) (*itemset.DB, error) {
	return Quest(QuestConfig{
		Name:          "T10I4D100K",
		Items:         870,
		Transactions:  scaleCount(100000, scale),
		AvgTransLen:   10,
		AvgPatternLen: 4,
		NumPatterns:   200,
		Corruption:    0.25,
		Seed:          seed,
	})
}

// MedicalCases generates the §V-D medical application dataset: patient
// cases whose items are medical entities (diagnoses, drugs, symptoms) with
// planted comorbidity clusters, mined at 3% support.
func MedicalCases(scale float64, seed int64) (*itemset.DB, error) {
	return Planted(PlantedConfig{
		Name:         "MedicalCases",
		Items:        1200,
		Transactions: scaleCount(40000, scale),
		AvgLen:       14,
		Blocks: []Block{
			{Size: 7, Prob: 0.045}, // chronic comorbidity cluster
			{Size: 5, Prob: 0.06},  // common treatment bundle
			{Size: 4, Prob: 0.09},  // seasonal infection cluster
			{Size: 3, Prob: 0.15},  // routine diagnostics
		},
		Seed: seed,
	})
}
