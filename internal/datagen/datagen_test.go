package datagen

import (
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

func TestPlantedValidation(t *testing.T) {
	bad := []PlantedConfig{
		{Name: "a"},
		{Name: "b", Items: 10, Transactions: 10, AvgLen: 5, Blocks: []Block{{Size: 0, Prob: 0.5}}},
		{Name: "c", Items: 10, Transactions: 10, AvgLen: 5, Blocks: []Block{{Size: 2, Prob: 1.5}}},
		{Name: "d", Items: 10, Transactions: 10, AvgLen: 9, Blocks: []Block{{Size: 10, Prob: 0.5}}},
		{Name: "e", Items: 20, Transactions: 10, AvgLen: 4, Blocks: []Block{{Size: 6, Prob: 0.9}}},
	}
	for _, cfg := range bad {
		if _, err := Planted(cfg); err == nil {
			t.Errorf("config %q accepted: %+v", cfg.Name, cfg)
		}
	}
}

func TestPlantedDeterministic(t *testing.T) {
	cfg := PlantedConfig{
		Name: "det", Items: 50, Transactions: 200, AvgLen: 10,
		Blocks: []Block{{Size: 4, Prob: 0.5}}, Seed: 42,
	}
	a, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ across runs")
	}
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(b.Transactions[i].Items) {
			t.Fatalf("transaction %d differs across identical seeds", i)
		}
	}
	c, err := Planted(PlantedConfig{
		Name: "det", Items: 50, Transactions: 200, AvgLen: 10,
		Blocks: []Block{{Size: 4, Prob: 0.5}}, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(c.Transactions[i].Items) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPlantedBlockSupportNearProb(t *testing.T) {
	cfg := PlantedConfig{
		Name: "blocks", Items: 100, Transactions: 5000, AvgLen: 15,
		Blocks: []Block{{Size: 5, Prob: 0.6}, {Size: 3, Prob: 0.3}},
		Seed:   7,
	}
	db, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range cfg.Blocks {
		block := cfg.BlockItems(i)
		if block.Len() != b.Size {
			t.Fatalf("block %d items = %v", i, block)
		}
		count := 0
		for _, tr := range db.Transactions {
			if tr.Items.ContainsAll(block) {
				count++
			}
		}
		got := float64(count) / float64(db.Len())
		if got < b.Prob-0.05 || got > b.Prob+0.05 {
			t.Errorf("block %d support = %.3f, want ~%.2f", i, got, b.Prob)
		}
	}
}

func TestPlantedAvgLength(t *testing.T) {
	db, err := Planted(PlantedConfig{
		Name: "len", Items: 200, Transactions: 2000, AvgLen: 20,
		Blocks: []Block{{Size: 5, Prob: 0.5}}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := db.ComputeStats()
	if st.AvgLength < 17 || st.AvgLength > 23 {
		t.Fatalf("AvgLength = %.2f, want ~20", st.AvgLength)
	}
}

func TestBenchmarkShapesMatchTableI(t *testing.T) {
	cases := []struct {
		gen    func(float64, int64) (*itemset.DB, error)
		name   string
		items  int // universe size from Table I
		txFull int
	}{
		{MushroomLike, "MushRoom", 119, 8124},
		{ChessLike, "Chess", 75, 3196},
		{PumsbStarLike, "Pumsb_star", 2113, 49046},
	}
	for _, c := range cases {
		db, err := c.gen(1.0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if db.Name != c.name {
			t.Errorf("name = %q", db.Name)
		}
		if db.Len() != c.txFull {
			t.Errorf("%s: transactions = %d, want %d", c.name, db.Len(), c.txFull)
		}
		st := db.ComputeStats()
		if st.NumItems > c.items {
			t.Errorf("%s: %d distinct items exceeds universe %d", c.name, st.NumItems, c.items)
		}
		if st.NumItems < c.items/2 {
			t.Errorf("%s: only %d of %d items ever occur", c.name, st.NumItems, c.items)
		}
	}
}

func TestScaledDatasetsShrink(t *testing.T) {
	small, err := MushroomLike(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Len() >= 8124 || small.Len() < 50 {
		t.Fatalf("scaled size = %d", small.Len())
	}
}

// TestPlantedLatticeDepth mines a scaled-down benchmark and checks the
// planted blocks drive the frequent-itemset lattice to the expected depth
// at the paper's support threshold.
func TestPlantedLatticeDepth(t *testing.T) {
	cases := []struct {
		gen     func(float64, int64) (*itemset.DB, error)
		support float64
		depth   int // size of the largest planted block above threshold
	}{
		{MushroomLike, 0.35, 8},
		{ChessLike, 0.85, 10},
		{PumsbStarLike, 0.65, 8},
		{MedicalCases, 0.03, 7},
	}
	for _, c := range cases {
		db, err := c.gen(0.1, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := apriori.Mine(db, c.support, apriori.Options{})
		if err != nil {
			t.Fatalf("%s: %v", db.Name, err)
		}
		if res.MaxK() != c.depth {
			t.Errorf("%s: lattice depth = %d, want %d", db.Name, res.MaxK(), c.depth)
		}
	}
}

func TestQuestValidation(t *testing.T) {
	bad := []QuestConfig{
		{},
		{Items: 10, Transactions: 10},
		{Items: 10, Transactions: 10, AvgTransLen: 3, AvgPatternLen: 2},
		{Items: 10, Transactions: 10, AvgTransLen: 3, AvgPatternLen: 2, NumPatterns: 2, Corruption: 1.0},
	}
	for i, cfg := range bad {
		if _, err := Quest(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestQuestShape(t *testing.T) {
	db, err := Quest(QuestConfig{
		Items: 200, Transactions: 3000, AvgTransLen: 10,
		AvgPatternLen: 4, NumPatterns: 50, Corruption: 0.25, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := db.ComputeStats()
	if st.NumTransactions != 3000 {
		t.Fatalf("transactions = %d", st.NumTransactions)
	}
	if st.AvgLength < 7 || st.AvgLength > 13 {
		t.Fatalf("AvgLength = %.2f, want ~10", st.AvgLength)
	}
	// Pattern structure must produce multi-item frequent sets at a support
	// that plain noise could not reach.
	res, err := apriori.Mine(db, 0.01, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxK() < 2 {
		t.Fatalf("quest data has no frequent 2-itemsets at 1%%: %d levels", res.MaxK())
	}
}

func TestQuestDeterministic(t *testing.T) {
	cfg := QuestConfig{
		Items: 100, Transactions: 500, AvgTransLen: 8,
		AvgPatternLen: 3, NumPatterns: 20, Corruption: 0.2, Seed: 9,
	}
	a, _ := Quest(cfg)
	b, _ := Quest(cfg)
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(b.Transactions[i].Items) {
			t.Fatalf("transaction %d differs across identical seeds", i)
		}
	}
}

// Property: planted generation never exceeds the item universe and never
// produces an empty transaction.
func TestPlantedInvariantsProperty(t *testing.T) {
	f := func(seed int64, items8, len8 uint8) bool {
		items := int(items8%100) + 20
		avgLen := int(len8%10) + 4
		cfg := PlantedConfig{
			Name: "p", Items: items, Transactions: 60, AvgLen: avgLen,
			Blocks: []Block{{Size: 3, Prob: 0.4}}, Seed: seed,
		}
		db, err := Planted(cfg)
		if err != nil {
			return false
		}
		for _, tr := range db.Transactions {
			if tr.Items.Len() == 0 {
				return false
			}
			for _, it := range tr.Items {
				if int(it) >= items || it < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfValidation(t *testing.T) {
	bad := []ZipfConfig{
		{},
		{Name: "a", Items: 1, Transactions: 10, AvgLen: 1, S: 1.5},
		{Name: "b", Items: 10, Transactions: 10, AvgLen: 10, S: 1.5},
		{Name: "c", Items: 10, Transactions: 10, AvgLen: 3, S: 1.0},
	}
	for _, cfg := range bad {
		if _, err := Zipf(cfg); err == nil {
			t.Errorf("config %q accepted: %+v", cfg.Name, cfg)
		}
	}
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	cfg := ZipfConfig{Name: "z", Items: 500, Transactions: 3000, AvgLen: 8, S: 1.6, Seed: 4}
	a, err := Zipf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Zipf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(b.Transactions[i].Items) {
			t.Fatalf("transaction %d differs across identical seeds", i)
		}
	}
	// Head item must dwarf a tail item: that is the point of the skew.
	counts := make([]int, 500)
	for _, tr := range a.Transactions {
		for _, it := range tr.Items {
			counts[it]++
		}
	}
	if counts[0] < 20*max(counts[400], 1) {
		t.Fatalf("no Zipf skew: head=%d tail=%d", counts[0], counts[400])
	}
	st := a.ComputeStats()
	if st.AvgLength < 4 || st.AvgLength > 10 {
		t.Fatalf("AvgLength = %.1f, want near 8", st.AvgLength)
	}
}

func TestZipfShapedBenchmarks(t *testing.T) {
	k, err := KosarakLike(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "Kosarak" || k.Len() != 9900 {
		t.Fatalf("kosarak: %s, %d tx", k.Name, k.Len())
	}
	r, err := RetailLike(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "Retail" || r.Len() == 0 {
		t.Fatalf("retail: %s, %d tx", r.Name, r.Len())
	}
	// Skewed data must still mine cleanly end to end.
	res, err := apriori.Mine(r, 0.05, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxK() < 1 {
		t.Fatal("retail-like data has no frequent items at 5%")
	}
}
