package datagen

import "testing"

func BenchmarkQuest(b *testing.B) {
	cfg := QuestConfig{
		Items: 870, Transactions: 10000, AvgTransLen: 10,
		AvgPatternLen: 4, NumPatterns: 200, Corruption: 0.25, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quest(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanted(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MushroomLike(0.25, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
