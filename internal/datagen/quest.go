// Package datagen synthesises the evaluation datasets. The repository is
// offline, so the paper's benchmark inputs are replaced with seeded
// generators that match their published shape:
//
//   - Quest implements the IBM Quest synthetic market-basket generator of
//     Agrawal & Srikant (reference [20] of the paper), used to produce the
//     T10I4D100K-equivalent dataset.
//   - Planted produces categorical datasets with embedded high-support item
//     blocks, matching the item/transaction counts and density of the UCI
//     MushRoom and Chess datasets and of Pumsb_star (Table I), and a
//     medical-case dataset for §V-D.
//
// All generators are deterministic given their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"yafim/internal/itemset"
)

// QuestConfig parameterises the Quest generator. The conventional dataset
// name TxIyDz means AvgTransLen=x, AvgPatternLen=y, Transactions=z.
type QuestConfig struct {
	Name          string
	Items         int     // size of the item universe (N)
	Transactions  int     // number of transactions (D)
	AvgTransLen   int     // average transaction length (T)
	AvgPatternLen int     // average length of maximal potential patterns (I)
	NumPatterns   int     // number of maximal potential patterns (L)
	Corruption    float64 // mean corruption level (patterns partially inserted)
	Seed          int64
}

// Validate reports a descriptive error for unusable parameters.
func (c QuestConfig) Validate() error {
	switch {
	case c.Items <= 0 || c.Transactions <= 0:
		return fmt.Errorf("datagen: quest %q: need positive Items and Transactions", c.Name)
	case c.AvgTransLen <= 0 || c.AvgPatternLen <= 0:
		return fmt.Errorf("datagen: quest %q: need positive average lengths", c.Name)
	case c.NumPatterns <= 0:
		return fmt.Errorf("datagen: quest %q: need positive NumPatterns", c.Name)
	case c.Corruption < 0 || c.Corruption >= 1:
		return fmt.Errorf("datagen: quest %q: corruption %v out of [0,1)", c.Name, c.Corruption)
	}
	return nil
}

// Quest generates a market-basket database following the IBM Quest
// procedure: a pool of maximal potential patterns is drawn (sizes Poisson
// around AvgPatternLen, items partially inherited from the previous pattern,
// weights exponential); each transaction draws a Poisson length and is
// filled by sampling patterns by weight, inserting each only partially when
// corrupted.
func Quest(cfg QuestConfig) (*itemset.DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Item popularity for noise/pattern selection: exponential weights.
	patterns := make([][]itemset.Item, cfg.NumPatterns)
	weights := make([]float64, cfg.NumPatterns)
	corrupt := make([]float64, cfg.NumPatterns)
	var totalWeight float64
	for p := range patterns {
		size := poisson(rng, float64(cfg.AvgPatternLen))
		if size < 1 {
			size = 1
		}
		if size > cfg.Items {
			size = cfg.Items
		}
		picked := make(map[itemset.Item]struct{}, size)
		// Inherit a fraction of items from the previous pattern to create
		// cross-pattern correlation, as the original generator does.
		if p > 0 {
			frac := rng.Float64() * 0.5
			for _, it := range patterns[p-1] {
				if len(picked) >= size {
					break
				}
				if rng.Float64() < frac {
					picked[it] = struct{}{}
				}
			}
		}
		for len(picked) < size {
			picked[itemset.Item(rng.Intn(cfg.Items))] = struct{}{}
		}
		pat := make([]itemset.Item, 0, size)
		for it := range picked {
			pat = append(pat, it)
		}
		patterns[p] = itemset.Canonical(pat)
		weights[p] = rng.ExpFloat64()
		totalWeight += weights[p]
		// Corruption level per pattern, clamped into [0, 1).
		c := cfg.Corruption + 0.1*rng.NormFloat64()
		corrupt[p] = math.Max(0, math.Min(0.9, c))
	}
	cum := make([]float64, cfg.NumPatterns)
	acc := 0.0
	for p, w := range weights {
		acc += w / totalWeight
		cum[p] = acc
	}

	rows := make([][]itemset.Item, cfg.Transactions)
	for t := range rows {
		target := poisson(rng, float64(cfg.AvgTransLen))
		if target < 1 {
			target = 1
		}
		var row []itemset.Item
		have := map[itemset.Item]struct{}{}
		for len(row) < target {
			pat := patterns[pickWeighted(rng, cum)]
			added := false
			for _, it := range pat {
				if rng.Float64() < corrupt[pickIdx(cum, rng)] {
					continue // corrupted away
				}
				if _, dup := have[it]; dup {
					continue
				}
				have[it] = struct{}{}
				row = append(row, it)
				added = true
				if len(row) >= target+len(pat)/2 {
					break
				}
			}
			if !added {
				// Degenerate draw; add one random item to guarantee progress.
				it := itemset.Item(rng.Intn(cfg.Items))
				if _, dup := have[it]; !dup {
					have[it] = struct{}{}
					row = append(row, it)
				}
			}
		}
		rows[t] = row
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("T%dI%dD%dK", cfg.AvgTransLen, cfg.AvgPatternLen, cfg.Transactions/1000)
	}
	return itemset.NewDB(name, rows), nil
}

func pickWeighted(rng *rand.Rand, cum []float64) int {
	return pickIdx(cum, rng)
}

func pickIdx(cum []float64, rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method (means here are small).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
