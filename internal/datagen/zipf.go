package datagen

import (
	"fmt"
	"math/rand"

	"yafim/internal/itemset"
)

// ZipfConfig parameterises the skewed-popularity generator used for
// click-stream and retail-style datasets: item popularity follows a Zipf
// distribution, producing the long-tailed supports typical of web logs and
// point-of-sale data (unlike the planted-block benchmarks, no structure is
// planted — the head items alone create frequent co-occurrences).
type ZipfConfig struct {
	Name         string
	Items        int
	Transactions int
	AvgLen       int
	// S is the Zipf exponent (> 1); larger means more skew. Typical
	// click-stream data sits near 1.5-2.
	S    float64
	Seed int64
}

// Validate reports a descriptive error for unusable parameters.
func (c ZipfConfig) Validate() error {
	switch {
	case c.Items <= 1 || c.Transactions <= 0 || c.AvgLen <= 0:
		return fmt.Errorf("datagen: zipf %q: need Items > 1 and positive Transactions, AvgLen", c.Name)
	case c.AvgLen >= c.Items:
		return fmt.Errorf("datagen: zipf %q: AvgLen %d must be below Items %d", c.Name, c.AvgLen, c.Items)
	case c.S <= 1:
		return fmt.Errorf("datagen: zipf %q: exponent S must exceed 1, got %v", c.Name, c.S)
	}
	return nil
}

// Zipf generates a database whose items are drawn per transaction from a
// Zipf distribution over the item universe (duplicates collapse, so very
// skewed draws yield slightly shorter transactions).
func Zipf(cfg ZipfConfig) (*itemset.DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(rng, cfg.S, 1, uint64(cfg.Items-1))
	rows := make([][]itemset.Item, cfg.Transactions)
	for t := range rows {
		target := cfg.AvgLen + rng.Intn(5) - 2
		if target < 1 {
			target = 1
		}
		have := make(map[itemset.Item]struct{}, target)
		row := make([]itemset.Item, 0, target)
		// Duplicate draws count against the attempt budget so heavy skew
		// cannot loop forever; transactions may come out short, as real
		// click-streams do.
		for attempts := 0; len(row) < target && attempts < 4*target; attempts++ {
			it := itemset.Item(z.Uint64())
			if _, dup := have[it]; dup {
				continue
			}
			have[it] = struct{}{}
			row = append(row, it)
		}
		rows[t] = row
	}
	return itemset.NewDB(cfg.Name, rows), nil
}

// KosarakLike generates a dataset with the shape of the kosarak
// click-stream benchmark (41270 items, 990002 transactions, ~8 items per
// click session, heavy Zipf skew). Not part of the paper's Table I; offered
// because it is the standard "huge and skewed" FIM stress test.
func KosarakLike(scale float64, seed int64) (*itemset.DB, error) {
	return Zipf(ZipfConfig{
		Name:         "Kosarak",
		Items:        41270,
		Transactions: scaleCount(990002, scale),
		AvgLen:       8,
		S:            1.6,
		Seed:         seed,
	})
}

// RetailLike generates a dataset with the shape of the retail market-basket
// benchmark (16470 items, 88162 transactions, ~10 items per basket).
func RetailLike(scale float64, seed int64) (*itemset.DB, error) {
	return Zipf(ZipfConfig{
		Name:         "Retail",
		Items:        16470,
		Transactions: scaleCount(88162, scale),
		AvgLen:       10,
		S:            1.4,
		Seed:         seed,
	})
}
