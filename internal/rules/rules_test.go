package rules

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func mustMine(t *testing.T) *apriori.Result {
	t.Helper()
	res, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateKnownRule(t *testing.T) {
	res := mustMine(t)
	rules, err := Generate(res, 0.9, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	// sup({1,5}) = sup({1,2,5}) = 2, so {1,5} => {2} has confidence 1.0.
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(itemset.New(1, 5)) && r.Consequent.Equal(itemset.New(2)) {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("confidence = %v", r.Confidence)
			}
			// lift = 1.0 / (7/9)
			if math.Abs(r.Lift-9.0/7.0) > 1e-12 {
				t.Errorf("lift = %v", r.Lift)
			}
			if r.Support != 2 {
				t.Errorf("support = %d", r.Support)
			}
		}
	}
	if !found {
		t.Fatalf("rule {1 5} => {2} missing from %v", rules)
	}
}

func TestGenerateSortedAndThresholded(t *testing.T) {
	res := mustMine(t)
	rules, err := Generate(res, 0.5, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules at 0.5 confidence")
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Confidence < rules[i].Confidence {
			t.Fatal("rules not sorted by descending confidence")
		}
	}
	for _, r := range rules {
		if r.Confidence < 0.5 {
			t.Fatalf("rule below threshold: %v", r)
		}
	}
	// Lower thresholds can only add rules.
	more, err := Generate(res, 0.1, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(more) < len(rules) {
		t.Fatalf("lowering threshold lost rules: %d -> %d", len(rules), len(more))
	}
}

func TestGenerateInvalid(t *testing.T) {
	res := mustMine(t)
	if _, err := Generate(res, -0.1, 9); err == nil {
		t.Error("negative confidence accepted")
	}
	if _, err := Generate(res, 1.1, 9); err == nil {
		t.Error("confidence > 1 accepted")
	}
	if _, err := Generate(res, 0.5, 0); err == nil {
		t.Error("zero transactions accepted")
	}
}

func TestFilter(t *testing.T) {
	res := mustMine(t)
	rules, err := Generate(res, 0.5, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Filter(rules, 2) {
		if !r.Consequent.Contains(2) {
			t.Fatalf("filtered rule lacks item: %v", r)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.New(1, 2), Consequent: itemset.New(3),
		Support: 5, Confidence: 0.832, Lift: 1.25,
	}
	if got := r.String(); got != "{1 2} => {3} (sup=5 conf=0.83 lift=1.25)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: on random databases, every generated rule's measures match
// direct counting, and rule support/confidence definitions hold exactly.
func TestGenerateMeasuresExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]itemset.Item, rng.Intn(20)+8)
		for i := range rows {
			n := rng.Intn(4) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(6)))
			}
		}
		db := itemset.NewDB("rand", rows)
		res, err := apriori.Mine(db, 0.2, apriori.Options{})
		if err != nil {
			return false
		}
		rls, err := Generate(res, 0.3, db.Len())
		if err != nil {
			return false
		}
		count := func(s itemset.Itemset) int {
			n := 0
			for _, tr := range db.Transactions {
				if tr.Items.ContainsAll(s) {
					n++
				}
			}
			return n
		}
		for _, r := range rls {
			union := itemset.New(append(r.Antecedent.Clone(), r.Consequent...)...)
			supU, supA, supC := count(union), count(r.Antecedent), count(r.Consequent)
			if r.Support != supU {
				return false
			}
			if math.Abs(r.Confidence-float64(supU)/float64(supA)) > 1e-12 {
				return false
			}
			wantLift := (float64(supU) / float64(supA)) / (float64(supC) / float64(db.Len()))
			if math.Abs(r.Lift-wantLift) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLeverageAndConviction(t *testing.T) {
	res := mustMine(t)
	rules, err := Generate(res, 0.5, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence == 1.0 && !math.IsInf(r.Conviction, 1) {
			t.Errorf("exact rule %v has finite conviction %v", r, r.Conviction)
		}
		if r.Confidence < 1.0 && (r.Conviction <= 0 || math.IsInf(r.Conviction, 0)) {
			t.Errorf("rule %v has conviction %v", r, r.Conviction)
		}
		// Leverage and lift must agree on the direction of correlation.
		if (r.Lift > 1) != (r.Leverage > 0) && r.Lift != 1 {
			t.Errorf("rule %v: lift %v vs leverage %v disagree", r, r.Lift, r.Leverage)
		}
	}
}

func TestTopK(t *testing.T) {
	res := mustMine(t)
	rules, err := Generate(res, 0.1, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	if got := TopK(rules, 3); len(got) != 3 {
		t.Fatalf("TopK(3) = %d rules", len(got))
	}
	if got := TopK(rules, 10000); len(got) != len(rules) {
		t.Fatal("TopK overflow mishandled")
	}
	if got := TopK(rules, -1); len(got) != 0 {
		t.Fatal("TopK(-1) non-empty")
	}
}

func TestFilterRedundant(t *testing.T) {
	res := mustMine(t)
	rules, err := Generate(res, 0.3, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	kept := FilterRedundant(rules)
	if len(kept) == 0 || len(kept) >= len(rules) {
		t.Fatalf("FilterRedundant kept %d of %d", len(kept), len(rules))
	}
	// No kept rule may be dominated by a simpler kept rule.
	for _, r := range kept {
		for _, other := range kept {
			if other.Consequent.Equal(r.Consequent) &&
				other.Antecedent.Len() < r.Antecedent.Len() &&
				r.Antecedent.ContainsAll(other.Antecedent) &&
				other.Confidence >= r.Confidence {
				t.Fatalf("kept rule %v dominated by %v", r, other)
			}
		}
	}
	// Example: {1,5}=>{2} (conf 1.0) is dominated by {5}=>{2} (conf 1.0).
	for _, r := range kept {
		if r.Antecedent.Equal(itemset.New(1, 5)) && r.Consequent.Equal(itemset.New(2)) {
			t.Error("{1 5} => {2} survived despite {5} => {2}")
		}
	}
}
