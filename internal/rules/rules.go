// Package rules derives association rules from mined frequent itemsets —
// the downstream analysis the paper motivates with its sales-purchase and
// medicine examples: which item combinations imply which others, and how
// strongly.
package rules

import (
	"fmt"
	"math"
	"sort"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

// Rule is an association rule Antecedent => Consequent with its standard
// quality measures.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is the absolute support count of Antecedent ∪ Consequent.
	Support int
	// Confidence is sup(A ∪ C) / sup(A).
	Confidence float64
	// Lift is confidence / (sup(C)/N): how much more often A and C co-occur
	// than if independent. Lift > 1 indicates positive correlation.
	Lift float64
	// Leverage is P(A∪C) - P(A)P(C): the absolute co-occurrence surplus
	// over independence.
	Leverage float64
	// Conviction is (1 - P(C)) / (1 - confidence): how much more often the
	// rule would be wrong if A and C were independent. +Inf for exact rules.
	Conviction float64
}

// String renders the rule as "{1 2} => {3} (sup=5 conf=0.83 lift=1.25)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d conf=%.2f lift=%.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// maxRuleItems bounds the itemset sizes we enumerate subsets of; 2^k
// antecedent candidates make larger sets impractical and meaningless.
const maxRuleItems = 24

// Generate derives every association rule with confidence >= minConfidence
// from the frequent itemsets in res, mined over numTransactions records.
// Rules are returned sorted by descending confidence, then descending
// support, then antecedent order, so output is deterministic.
func Generate(res *apriori.Result, minConfidence float64, numTransactions int) ([]Rule, error) {
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("rules: minConfidence %v out of [0,1]", minConfidence)
	}
	if numTransactions <= 0 {
		return nil, fmt.Errorf("rules: numTransactions must be positive, got %d", numTransactions)
	}
	var out []Rule
	for k := 2; k <= res.MaxK(); k++ {
		for _, sc := range res.Frequent(k) {
			rules, err := FromItemset(res, sc, minConfidence, numTransactions)
			if err != nil {
				return nil, err
			}
			out = append(out, rules...)
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders rules by descending confidence, then descending support, then
// antecedent and consequent order — the deterministic order Generate uses.
func Sort(out []Rule) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if c := out[i].Antecedent.Compare(out[j].Antecedent); c != 0 {
			return c < 0
		}
		return out[i].Consequent.Compare(out[j].Consequent) < 0
	})
}

// FromItemset enumerates the non-empty proper subsets of sc.Set as
// antecedents and returns the rules meeting minConfidence. Every subset of
// a frequent itemset is frequent, so its support is always available in
// res; a miss means res is inconsistent. It is the per-itemset unit of work
// that both the sequential Generate and YAFIM's ParallelRules share.
func FromItemset(res *apriori.Result, sc apriori.SetCount, minConfidence float64,
	n int) ([]Rule, error) {
	k := sc.Set.Len()
	if k > maxRuleItems {
		return nil, fmt.Errorf("rules: %d-itemset exceeds the %d-item rule limit", k, maxRuleItems)
	}
	var out []Rule
	for mask := 1; mask < (1<<k)-1; mask++ {
		ante := make(itemset.Itemset, 0, k)
		cons := make(itemset.Itemset, 0, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				ante = append(ante, sc.Set[i])
			} else {
				cons = append(cons, sc.Set[i])
			}
		}
		anteSup, ok := res.Support(ante)
		if !ok {
			return nil, fmt.Errorf("rules: result lacks subset %v of frequent %v", ante, sc.Set)
		}
		conf := float64(sc.Count) / float64(anteSup)
		if conf < minConfidence {
			continue
		}
		consSup, ok := res.Support(cons)
		if !ok {
			return nil, fmt.Errorf("rules: result lacks subset %v of frequent %v", cons, sc.Set)
		}
		pC := float64(consSup) / float64(n)
		conviction := math.Inf(1)
		if conf < 1 {
			conviction = (1 - pC) / (1 - conf)
		}
		out = append(out, Rule{
			Antecedent: ante,
			Consequent: cons,
			Support:    sc.Count,
			Confidence: conf,
			Lift:       conf / pC,
			Leverage:   float64(sc.Count)/float64(n) - (float64(anteSup)/float64(n))*pC,
			Conviction: conviction,
		})
	}
	return out, nil
}

// Filter returns the rules whose consequent contains the given item —
// convenient for questions like "what implies this diagnosis?".
func Filter(rules []Rule, item itemset.Item) []Rule {
	var out []Rule
	for _, r := range rules {
		if r.Consequent.Contains(item) {
			out = append(out, r)
		}
	}
	return out
}

// TopK returns the first k rules of an already sorted rule list (Generate
// sorts by confidence, then support).
func TopK(rules []Rule, k int) []Rule {
	if k < 0 {
		k = 0
	}
	if k > len(rules) {
		k = len(rules)
	}
	return rules[:k]
}

// FilterRedundant removes rules dominated by a simpler rule: A => C is
// redundant when some A' ⊂ A yields A' => C with at least the same
// confidence — the larger antecedent adds conditions without adding
// predictive power. Input order is preserved for the survivors.
func FilterRedundant(rules []Rule) []Rule {
	// Index rules by consequent for subset scans.
	byCons := map[string][]Rule{}
	for _, r := range rules {
		key := r.Consequent.Key()
		byCons[key] = append(byCons[key], r)
	}
	var out []Rule
	for _, r := range rules {
		redundant := false
		for _, other := range byCons[r.Consequent.Key()] {
			if other.Antecedent.Len() < r.Antecedent.Len() &&
				r.Antecedent.ContainsAll(other.Antecedent) &&
				other.Confidence >= r.Confidence {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, r)
		}
	}
	return out
}
