package mrapriori

import (
	"context"
	"fmt"
	"sort"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/exec"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/obs"
)

// passRunner executes the mining loop's two job shapes somewhere: on the
// in-memory virtual-time engine (simPasses) or on a dist.Executor — the
// real multi-process runtime or its in-memory oracle (distPasses). The
// driver loop above it is shared verbatim, so the candidate generation,
// threshold arithmetic and pruning decisions of a distributed run are the
// same code the simulator runs — parity by construction, with only task
// execution and shuffling left to differ.
type passRunner interface {
	// runPass1 counts single items over the input.
	runPass1(ctx context.Context, reducers, mapTasks int) (*passOutput, error)
	// runCountPass counts the candidate batch starting at length k,
	// pruning below minCount reduce-side.
	runCountPass(ctx context.Context, k int, batch [][]itemset.Itemset,
		minCount, reducers, mapTasks int) (*passOutput, error)
	// defaultReducers is the reduce parallelism when the config leaves it 0.
	defaultReducers() int
}

// passOutput is one counting job's result in engine-neutral form.
type passOutput struct {
	kvs          []mapreduce.KV
	inputRecords int64
	duration     time.Duration
}

// mineLoop is the k-phase MRApriori driver shared by every execution mode.
// rec may be nil (the real runtime measures rather than meters); inputPath
// only labels errors.
func mineLoop(ctx context.Context, pr passRunner, rec *obs.Recorder, cfg Config,
	inputPath string) (*apriori.Trace, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("mrapriori: MinSupport %v out of (0,1]", cfg.MinSupport)
	}
	reducers := cfg.NumReducers
	if reducers <= 0 {
		reducers = pr.defaultReducers()
	}
	fpcPasses := cfg.FPCPasses
	if fpcPasses <= 0 {
		fpcPasses = 3
	}
	budget := cfg.DPCBudget
	if budget <= 0 {
		budget = 50000
	}

	// Phase 1: one job counting single items. The reducer cannot know the
	// relative threshold's absolute value before the input size is known, so
	// it emits every count and the driver prunes using the job's input
	// record counter, exactly as one-pass Hadoop implementations do.
	rec.SetPass(1)
	passMark := rec.Counters()
	po, err := pr.runPass1(ctx, reducers, cfg.NumMapTasks)
	if err != nil {
		return nil, fmt.Errorf("mrapriori: pass 1: %w", err)
	}
	n := po.inputRecords
	if n == 0 {
		return nil, fmt.Errorf("mrapriori: %s holds no transactions", inputPath)
	}
	minCount := minSupportCount(cfg.MinSupport, n)
	rec.ObservePass("mapreduce", 1, int(n))

	var l1 []apriori.SetCount
	for _, kv := range po.kvs {
		count, set, err := parseCountedSet(kv)
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass 1 output: %w", err)
		}
		if count >= minCount {
			l1 = append(l1, apriori.SetCount{Set: set, Count: count})
		}
	}

	res := &apriori.Result{MinSupport: minCount}
	trace := &apriori.Trace{Result: res}
	trace.Passes = append(trace.Passes, apriori.PassStat{
		K: 1, Candidates: int(n), Frequent: len(l1), Duration: po.duration,
		Counters: rec.Counters().Sub(passMark),
	})
	if len(l1) == 0 {
		return trace, nil
	}
	res.Levels = append(res.Levels, apriori.NewLevel(1, l1))

	// Phases 2..k: one job per candidate batch.
	prev := sets(l1)
	k := 2
	for cfg.MaxK == 0 || k <= cfg.MaxK {
		if err := exec.ContextErr(ctx); err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}
		batch, err := generateBatch(prev, cfg.Variant, fpcPasses, budget, cfg.MaxK, k)
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}
		if len(batch) == 0 {
			break
		}
		rec.SetPass(k)
		passMark = rec.Counters()
		for i, cands := range batch {
			rec.ObservePass("mapreduce", k+i, len(cands))
		}
		po, err := pr.runCountPass(ctx, k, batch, minCount, reducers, cfg.NumMapTasks)
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}
		levels, err := splitLevels(po.kvs, k, len(batch))
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}

		// Attribute the job's full duration (and counter activity) to the
		// first level of the batch; levels sharing the job report zero
		// incremental time.
		stop := false
		for i, cands := range batch {
			lk := levels[i]
			stat := apriori.PassStat{K: k + i, Candidates: len(cands), Frequent: len(lk)}
			if i == 0 {
				stat.Duration = po.duration
				stat.Counters = rec.Counters().Sub(passMark)
			}
			trace.Passes = append(trace.Passes, stat)
			if len(lk) == 0 {
				stop = true
				break
			}
			res.Levels = append(res.Levels, apriori.NewLevel(k+i, lk))
			prev = sets(lk)
		}
		if stop {
			break
		}
		k += len(batch)
	}
	return trace, nil
}

// splitLevels parses a counting job's output and splits the surviving
// itemsets back into their candidate levels (a batch job counts several
// lengths at once under FPC/DPC), each sorted canonically.
func splitLevels(kvs []mapreduce.KV, k, batchLen int) ([][]apriori.SetCount, error) {
	levels := make([][]apriori.SetCount, batchLen)
	for _, kv := range kvs {
		count, set, err := parseCountedSet(kv)
		if err != nil {
			return nil, err
		}
		idx := set.Len() - k
		if idx < 0 || idx >= batchLen {
			return nil, fmt.Errorf("unexpected %d-itemset in pass %d output", set.Len(), k)
		}
		levels[idx] = append(levels[idx], apriori.SetCount{Set: set, Count: count})
	}
	// A speculative level may be frequent only through itemsets whose true
	// k-subsets turned out infrequent; exact counting makes them valid
	// frequent itemsets regardless, so no re-pruning is needed.
	for i := range levels {
		sort.Slice(levels[i], func(a, b int) bool {
			return levels[i][a].Set.Compare(levels[i][b].Set) < 0
		})
	}
	return levels, nil
}
