// Package mrapriori implements the paper's comparator: a k-phase parallel
// Apriori on Hadoop-style MapReduce (the PApriori algorithm of Li et al.,
// reference [16], which the paper calls MRApriori). Each pass over the
// candidate lattice is a complete MapReduce job that re-reads the
// transaction dataset from the DFS, distributes the current candidate set
// through the distributed cache, counts supports in mappers with the same
// hash tree YAFIM uses, and commits the frequent itemsets back to the DFS —
// paying job startup and input I/O on every iteration.
//
// The package also implements the SPC/FPC/DPC family of Lin et al.
// (reference [17]): SPC is the plain one-job-per-pass algorithm; FPC
// merges a fixed number of speculative candidate levels into each job; DPC
// merges levels dynamically under a candidate budget.
package mrapriori

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"yafim/internal/apriori"
	"yafim/internal/dfs"
	"yafim/internal/exec"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/sim"
)

// Variant selects the pass-combining strategy.
type Variant int

const (
	// SPC runs one MapReduce job per candidate length (PApriori/MRApriori).
	SPC Variant = iota
	// FPC combines a fixed number of speculative candidate levels per job.
	FPC
	// DPC combines candidate levels dynamically under a candidate budget.
	DPC
)

func (v Variant) String() string {
	switch v {
	case SPC:
		return "SPC"
	case FPC:
		return "FPC"
	case DPC:
		return "DPC"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterises a mining run.
type Config struct {
	// MinSupport is the relative minimum support threshold in (0,1].
	MinSupport float64
	// NumReducers sets reduce-side parallelism (0 = cluster core count).
	NumReducers int
	// MaxK stops after frequent itemsets of this size (0 = unbounded).
	MaxK int
	// Variant selects SPC (default), FPC or DPC.
	Variant Variant
	// FPCPasses is the number of candidate levels per job under FPC
	// (default 3, the value Lin et al. study).
	FPCPasses int
	// DPCBudget caps the combined candidate count per job under DPC
	// (default 50000).
	DPCBudget int
	// NumMapTasks is a minimum map-task count hint per job (0 = one task
	// per input block).
	NumMapTasks int
}

// Mine runs the k-phase MapReduce Apriori over the transaction file at
// inputPath, staging intermediate files under workDir in the DFS.
func Mine(runner *mapreduce.Runner, fs *dfs.FileSystem, inputPath, workDir string,
	cfg Config) (*apriori.Trace, error) {
	return MineContext(context.Background(), runner, fs, inputPath, workDir, cfg)
}

// MineContext is Mine with cooperative cancellation: the context is checked
// between passes and inside every MapReduce job, so a cancel or deadline
// stops the k-phase iteration within one task boundary with an error
// matching exec.ErrCanceled or exec.ErrDeadlineExceeded.
func MineContext(ctx context.Context, runner *mapreduce.Runner, fs *dfs.FileSystem,
	inputPath, workDir string, cfg Config) (*apriori.Trace, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("mrapriori: MinSupport %v out of (0,1]", cfg.MinSupport)
	}
	reducers := cfg.NumReducers
	if reducers <= 0 {
		reducers = runner.Config().TotalCores()
	}
	fpcPasses := cfg.FPCPasses
	if fpcPasses <= 0 {
		fpcPasses = 3
	}
	budget := cfg.DPCBudget
	if budget <= 0 {
		budget = 50000
	}

	// Phase 1: one job counting single items. The reducer cannot know the
	// relative threshold's absolute value before the input size is known, so
	// it emits every count and the driver prunes using the job's input
	// record counter, exactly as one-pass Hadoop implementations do.
	out1 := workDir + "/L1"
	mapreduce.CleanOutput(fs, out1)
	rec := runner.Recorder()
	rec.SetPass(1)
	passMark := rec.Counters()
	rep, counters, err := runner.RunContext(ctx, mapreduce.Job{
		Name:        "apriori-pass1",
		Input:       []string{inputPath},
		OutputDir:   out1,
		NewMapper:   func() mapreduce.Mapper { return &itemMapper{} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		NewReducer:  func() mapreduce.Reducer { return sumReducer{} },
		NumReducers: reducers,
		MapTasks:    cfg.NumMapTasks,
	})
	if err != nil {
		return nil, fmt.Errorf("mrapriori: pass 1: %w", err)
	}
	n := counters.MapInputRecords
	if n == 0 {
		return nil, fmt.Errorf("mrapriori: %s holds no transactions", inputPath)
	}
	minCount := minSupportCount(cfg.MinSupport, n)
	rec.ObservePass("mapreduce", 1, int(n))

	kvs, err := mapreduce.ReadOutput(fs, out1, nil)
	if err != nil {
		return nil, fmt.Errorf("mrapriori: pass 1 output: %w", err)
	}
	var l1 []apriori.SetCount
	for _, kv := range kvs {
		count, set, err := parseCountedSet(kv)
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass 1 output: %w", err)
		}
		if count >= minCount {
			l1 = append(l1, apriori.SetCount{Set: set, Count: count})
		}
	}

	res := &apriori.Result{MinSupport: minCount}
	trace := &apriori.Trace{Result: res}
	trace.Passes = append(trace.Passes, apriori.PassStat{
		K: 1, Candidates: int(n), Frequent: len(l1), Duration: rep.Duration(),
		Counters: rec.Counters().Sub(passMark),
	})
	if len(l1) == 0 {
		return trace, nil
	}
	res.Levels = append(res.Levels, apriori.NewLevel(1, l1))

	// Phases 2..k: one job per candidate batch.
	prev := sets(l1)
	k := 2
	for cfg.MaxK == 0 || k <= cfg.MaxK {
		if err := exec.ContextErr(ctx); err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}
		batch, err := generateBatch(prev, cfg.Variant, fpcPasses, budget, cfg.MaxK, k)
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}
		if len(batch) == 0 {
			break
		}
		rec.SetPass(k)
		passMark = rec.Counters()
		for i, cands := range batch {
			rec.ObservePass("mapreduce", k+i, len(cands))
		}
		levels, rep, err := runCountJob(ctx, runner, fs, inputPath, workDir, k, batch, minCount, reducers, cfg.NumMapTasks)
		if err != nil {
			return nil, fmt.Errorf("mrapriori: pass %d: %w", k, err)
		}

		// Attribute the job's full duration (and counter activity) to the
		// first level of the batch; levels sharing the job report zero
		// incremental time.
		stop := false
		for i, cands := range batch {
			lk := levels[i]
			stat := apriori.PassStat{K: k + i, Candidates: len(cands), Frequent: len(lk)}
			if i == 0 {
				stat.Duration = rep.Duration()
				stat.Counters = rec.Counters().Sub(passMark)
			}
			trace.Passes = append(trace.Passes, stat)
			if len(lk) == 0 {
				stop = true
				break
			}
			res.Levels = append(res.Levels, apriori.NewLevel(k+i, lk))
			prev = sets(lk)
		}
		if stop {
			break
		}
		k += len(batch)
	}
	return trace, nil
}

// generateBatch produces the candidate levels for the next job, starting at
// length k: one level for SPC, a fixed count for FPC, and as many as fit the
// candidate budget for DPC. Speculative levels are generated by treating the
// previous candidates as if frequent, which preserves completeness because
// Gen is monotone in its input family.
func generateBatch(prev []itemset.Itemset, v Variant, fpcPasses, budget, maxK, k int) ([][]itemset.Itemset, error) {
	levels := 1
	switch v {
	case SPC:
	case FPC:
		levels = fpcPasses
	case DPC:
		levels = 1 << 30 // bounded by the budget below
	default:
		return nil, fmt.Errorf("unknown variant %v", v)
	}
	var batch [][]itemset.Itemset
	total := 0
	for i := 0; i < levels; i++ {
		if maxK != 0 && k+i > maxK {
			break
		}
		cands, err := apriori.Gen(prev)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			break
		}
		if v == DPC && len(batch) > 0 && total+len(cands) > budget {
			break
		}
		batch = append(batch, cands)
		total += len(cands)
		prev = cands
	}
	return batch, nil
}

// runCountJob writes the candidate batch to the distributed cache, runs the
// counting job, and splits the surviving itemsets back into their levels.
func runCountJob(ctx context.Context, runner *mapreduce.Runner, fs *dfs.FileSystem, inputPath, workDir string,
	k int, batch [][]itemset.Itemset, minCount, reducers, mapTasks int) ([][]apriori.SetCount, *sim.JobReport, error) {

	cachePath := fmt.Sprintf("%s/C%d", workDir, k)
	if err := fs.WriteFile(cachePath, encodeCandidates(batch), nil); err != nil {
		return nil, nil, err
	}
	outDir := fmt.Sprintf("%s/L%d", workDir, k)
	mapreduce.CleanOutput(fs, outDir)

	rep, _, err := runner.RunContext(ctx, mapreduce.Job{
		Name:        fmt.Sprintf("apriori-pass%d", k),
		Input:       []string{inputPath},
		OutputDir:   outDir,
		NewMapper:   func() mapreduce.Mapper { return &countMapper{cachePath: cachePath} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		NewReducer:  func() mapreduce.Reducer { return prunedSumReducer{minCount: minCount} },
		NumReducers: reducers,
		MapTasks:    mapTasks,
		CacheFiles:  []string{cachePath},
	})
	if err != nil {
		return nil, nil, err
	}

	kvs, err := mapreduce.ReadOutput(fs, outDir, nil)
	if err != nil {
		return nil, nil, err
	}
	levels := make([][]apriori.SetCount, len(batch))
	for _, kv := range kvs {
		count, set, err := parseCountedSet(kv)
		if err != nil {
			return nil, nil, err
		}
		idx := set.Len() - k
		if idx < 0 || idx >= len(batch) {
			return nil, nil, fmt.Errorf("unexpected %d-itemset in pass %d output", set.Len(), k)
		}
		levels[idx] = append(levels[idx], apriori.SetCount{Set: set, Count: count})
	}
	// A speculative level may be frequent only through itemsets whose true
	// k-subsets turned out infrequent; exact counting makes them valid
	// frequent itemsets regardless, so no re-pruning is needed.
	for i := range levels {
		sort.Slice(levels[i], func(a, b int) bool {
			return levels[i][a].Set.Compare(levels[i][b].Set) < 0
		})
	}
	return levels, rep, nil
}

func encodeCandidates(batch [][]itemset.Itemset) []byte {
	var sb strings.Builder
	for _, cands := range batch {
		for _, c := range cands {
			sb.WriteString(setKey(c))
			sb.WriteByte('\n')
		}
	}
	return []byte(sb.String())
}

// setKey renders an itemset as its canonical text key: space-separated
// decimal items. This is both the cache-file line format and the MapReduce
// key emitted for each candidate occurrence.
func setKey(s itemset.Itemset) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(int(it)))
	}
	return sb.String()
}

func parseSet(text string) (itemset.Itemset, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty itemset text")
	}
	items := make([]itemset.Item, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad item %q", f)
		}
		items[i] = itemset.Item(v)
	}
	return itemset.New(items...), nil
}

func parseCountedSet(kv mapreduce.KV) (int, itemset.Itemset, error) {
	count, err := strconv.Atoi(kv.Value)
	if err != nil {
		return 0, nil, fmt.Errorf("bad count %q for key %q", kv.Value, kv.Key)
	}
	set, err := parseSet(kv.Key)
	if err != nil {
		return 0, nil, err
	}
	return count, set, nil
}

func sets(scs []apriori.SetCount) []itemset.Itemset {
	out := make([]itemset.Itemset, len(scs))
	for i, sc := range scs {
		out[i] = sc.Set
	}
	return out
}

func minSupportCount(rel float64, n int64) int {
	c := int(rel * float64(n))
	if float64(c) < rel*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}
