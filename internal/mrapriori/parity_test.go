package mrapriori

import (
	"math/rand"
	"reflect"
	"testing"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

// randomParityDB builds a deterministic random database dense enough for
// several counting passes.
func randomParityDB(seed int64) *itemset.DB {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]itemset.Item, rng.Intn(50)+30)
	universe := rng.Intn(12) + 8
	for i := range rows {
		row := make([]itemset.Item, rng.Intn(6)+2)
		for j := range row {
			row[j] = itemset.Item(rng.Intn(universe) + 1)
		}
		rows[i] = row
	}
	return itemset.NewDB("parity", rows)
}

// TestCountMapperParityAcrossSeeds locks the in-mapper-combining rewrite
// of countMapper to the sequential oracle across seeds and all pass
// scheduling variants: emitting one <candidate, local-count> record per
// split at cleanup must yield byte-identical frequent levels to counting
// every match individually, because the reducers just sum either way.
func TestCountMapperParityAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db := randomParityDB(seed)
		support := 0.15
		oracle, err := apriori.Mine(db, support, apriori.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var results []*apriori.Result
		for _, v := range []Variant{SPC, FPC, DPC} {
			runner, fs, path := stage(t, db)
			got, err := Mine(runner, fs, path, "/work", Config{MinSupport: support, Variant: v})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, v, err)
			}
			if !got.Result.Equal(oracle) {
				t.Fatalf("seed %d %v: MRApriori disagrees with oracle:\n got %v\nwant %v",
					seed, v, got.Result.All(), oracle.All())
			}
			results = append(results, got.Result)
		}
		// The three variants batch candidates differently but must mine the
		// exact same levels.
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0].Levels, results[i].Levels) {
				t.Fatalf("seed %d: variant results diverge", seed)
			}
		}
	}
}
