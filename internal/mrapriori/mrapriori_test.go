package mrapriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func stage(t *testing.T, db *itemset.DB) (*mapreduce.Runner, *dfs.FileSystem, string) {
	t.Helper()
	fs := dfs.New(4, dfs.WithBlockSize(32), dfs.WithReplication(2))
	path := "/data/" + db.Name + ".dat"
	if _, err := dataset.Stage(fs, path, db); err != nil {
		t.Fatal(err)
	}
	runner, err := mapreduce.NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	return runner, fs, path
}

func TestMineMatchesSequentialOracle(t *testing.T) {
	for _, v := range []Variant{SPC, FPC, DPC} {
		t.Run(v.String(), func(t *testing.T) {
			runner, fs, path := stage(t, classicDB())
			got, err := Mine(runner, fs, path, "/work", Config{
				MinSupport: 2.0 / 9.0, Variant: v,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Result.Equal(want) {
				t.Fatalf("%v disagrees with oracle:\n got %v\nwant %v",
					v, got.Result.All(), want.All())
			}
		})
	}
}

func TestSPCRunsOneJobPerPass(t *testing.T) {
	runner, fs, path := stage(t, classicDB())
	got, err := Mine(runner, fs, path, "/work", Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	// The classic example has 3 frequent levels; with SPC the driver needs
	// one job per counted level plus the final pass that comes back empty.
	jobs := len(runner.Reports())
	if jobs != len(got.Passes) {
		t.Fatalf("jobs = %d, passes = %d", jobs, len(got.Passes))
	}
	for i, p := range got.Passes {
		if p.K != i+1 {
			t.Errorf("pass %d has K=%d", i, p.K)
		}
		if p.Duration < runner.Config().JobStartup {
			t.Errorf("pass %d duration %v below per-job startup", i, p.Duration)
		}
	}
}

func TestFPCUsesFewerJobs(t *testing.T) {
	runnerSPC, fsS, pathS := stage(t, classicDB())
	if _, err := Mine(runnerSPC, fsS, pathS, "/work", Config{MinSupport: 2.0 / 9.0, Variant: SPC}); err != nil {
		t.Fatal(err)
	}
	runnerFPC, fsF, pathF := stage(t, classicDB())
	if _, err := Mine(runnerFPC, fsF, pathF, "/work", Config{MinSupport: 2.0 / 9.0, Variant: FPC, FPCPasses: 3}); err != nil {
		t.Fatal(err)
	}
	if len(runnerFPC.Reports()) >= len(runnerSPC.Reports()) {
		t.Fatalf("FPC jobs = %d, SPC jobs = %d", len(runnerFPC.Reports()), len(runnerSPC.Reports()))
	}
}

func TestDPCBudgetForcesSplit(t *testing.T) {
	// A budget of 1 candidate degenerates DPC to SPC-like batching.
	runner, fs, path := stage(t, classicDB())
	got, err := Mine(runner, fs, path, "/work", Config{
		MinSupport: 2.0 / 9.0, Variant: DPC, DPCBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if !got.Result.Equal(want) {
		t.Fatal("DPC with tiny budget lost results")
	}
}

func TestMineInvalidInputs(t *testing.T) {
	runner, fs, path := stage(t, classicDB())
	if _, err := Mine(runner, fs, path, "/work", Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := Mine(runner, fs, "/missing", "/work", Config{MinSupport: 0.5}); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := Mine(runner, fs, path, "/work", Config{MinSupport: 0.5, Variant: Variant(9)}); err == nil {
		t.Error("unknown variant accepted")
	}
	bad := dfs.New(2)
	if err := bad.WriteFile("/bad.dat", []byte("1 oops\n"), nil); err != nil {
		t.Fatal(err)
	}
	badRunner, err := mapreduce.NewRunner(bad, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(badRunner, bad, "/bad.dat", "/work", Config{MinSupport: 0.5}); err == nil {
		t.Error("malformed transaction accepted")
	}
}

func TestMineMaxK(t *testing.T) {
	runner, fs, path := stage(t, classicDB())
	got, err := Mine(runner, fs, path, "/work", Config{MinSupport: 2.0 / 9.0, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.MaxK() != 2 {
		t.Fatalf("MaxK = %d", got.Result.MaxK())
	}
}

func TestSetKeyRoundTrip(t *testing.T) {
	for _, s := range []itemset.Itemset{itemset.New(1), itemset.New(3, 1, 4), itemset.New(100, 2000)} {
		back, err := parseSet(setKey(s))
		if err != nil {
			t.Fatalf("parseSet(%q): %v", setKey(s), err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip %v -> %v", s, back)
		}
	}
	if _, err := parseSet(""); err == nil {
		t.Error("empty set text accepted")
	}
	if _, err := parseSet("1 x"); err == nil {
		t.Error("bad item accepted")
	}
}

// Property: every variant agrees with the sequential oracle on random
// inputs — and therefore all variants agree with each other.
func TestVariantsMatchOracleProperty(t *testing.T) {
	f := func(seed int64, sup8, v8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.15 + float64(sup8%7)/10.0
		variant := Variant(v8 % 3)
		rows := make([][]itemset.Item, rng.Intn(15)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(8)))
			}
		}
		db := itemset.NewDB("rand", rows)
		fs := dfs.New(3, dfs.WithBlockSize(16))
		if _, err := dataset.Stage(fs, "/r.dat", db); err != nil {
			return false
		}
		runner, err := mapreduce.NewRunner(fs, cluster.Local())
		if err != nil {
			return false
		}
		got, err := Mine(runner, fs, "/r.dat", "/work", Config{
			MinSupport: sup, Variant: variant, FPCPasses: 2, DPCBudget: 10,
		})
		if err != nil {
			return false
		}
		want, err := apriori.Mine(db, sup, apriori.Options{})
		if err != nil {
			return false
		}
		return got.Result.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
