package mrapriori

import (
	"context"
	"encoding/json"
	"fmt"

	"yafim/internal/apriori"
	"yafim/internal/dfs"
	"yafim/internal/dist"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
)

// simPasses runs the mining jobs on the in-memory virtual-time MapReduce
// engine — the original execution mode, byte-for-byte.
type simPasses struct {
	runner    *mapreduce.Runner
	fs        *dfs.FileSystem
	inputPath string
	workDir   string
}

func (s *simPasses) defaultReducers() int { return s.runner.Config().TotalCores() }

func (s *simPasses) runPass1(ctx context.Context, reducers, mapTasks int) (*passOutput, error) {
	out1 := s.workDir + "/L1"
	mapreduce.CleanOutput(s.fs, out1)
	rep, counters, err := s.runner.RunContext(ctx, mapreduce.Job{
		Name:        "apriori-pass1",
		Input:       []string{s.inputPath},
		OutputDir:   out1,
		NewMapper:   func() mapreduce.Mapper { return &itemMapper{} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		NewReducer:  func() mapreduce.Reducer { return sumReducer{} },
		NumReducers: reducers,
		MapTasks:    mapTasks,
	})
	if err != nil {
		return nil, err
	}
	kvs, err := mapreduce.ReadOutput(s.fs, out1, nil)
	if err != nil {
		return nil, fmt.Errorf("output: %w", err)
	}
	return &passOutput{kvs: kvs, inputRecords: counters.MapInputRecords, duration: rep.Duration()}, nil
}

func (s *simPasses) runCountPass(ctx context.Context, k int, batch [][]itemset.Itemset,
	minCount, reducers, mapTasks int) (*passOutput, error) {
	cachePath := fmt.Sprintf("%s/C%d", s.workDir, k)
	if err := s.fs.WriteFile(cachePath, encodeCandidates(batch), nil); err != nil {
		return nil, err
	}
	outDir := fmt.Sprintf("%s/L%d", s.workDir, k)
	mapreduce.CleanOutput(s.fs, outDir)
	rep, _, err := s.runner.RunContext(ctx, mapreduce.Job{
		Name:        fmt.Sprintf("apriori-pass%d", k),
		Input:       []string{s.inputPath},
		OutputDir:   outDir,
		NewMapper:   func() mapreduce.Mapper { return &countMapper{cachePath: cachePath} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{} },
		NewReducer:  func() mapreduce.Reducer { return prunedSumReducer{minCount: minCount} },
		NumReducers: reducers,
		MapTasks:    mapTasks,
		CacheFiles:  []string{cachePath},
	})
	if err != nil {
		return nil, err
	}
	kvs, err := mapreduce.ReadOutput(s.fs, outDir, nil)
	if err != nil {
		return nil, err
	}
	return &passOutput{kvs: kvs, duration: rep.Duration()}, nil
}

// Registered job-type names for the dist runtime. Both the driver and the
// worker processes link this package, so the same closures resolve on both
// sides of the wire.
const (
	// JobTypeItems is the pass-1 single-item counting job.
	JobTypeItems = "apriori-items"
	// JobTypeCount is the candidate-batch counting job of passes k >= 2.
	JobTypeCount = "apriori-count"
)

// countParams is JobTypeCount's wire parameter blob.
type countParams struct {
	// CachePath is the distributed-cache name holding the candidate batch.
	CachePath string `json:"cache_path"`
	// MinCount is the absolute support threshold for reduce-side pruning.
	MinCount int `json:"min_count"`
}

func decodeCountParams(p []byte) (countParams, error) {
	var cp countParams
	if err := json.Unmarshal(p, &cp); err != nil {
		return cp, fmt.Errorf("mrapriori: count params: %w", err)
	}
	if cp.CachePath == "" {
		return cp, fmt.Errorf("mrapriori: count params: empty cache path")
	}
	return cp, nil
}

func init() {
	dist.RegisterJobType(JobTypeItems, dist.JobType{
		NewMapper:   func([]byte) (mapreduce.Mapper, error) { return &itemMapper{}, nil },
		NewCombiner: func([]byte) (mapreduce.Reducer, error) { return sumReducer{}, nil },
		NewReducer:  func([]byte) (mapreduce.Reducer, error) { return sumReducer{}, nil },
	})
	dist.RegisterJobType(JobTypeCount, dist.JobType{
		NewMapper: func(p []byte) (mapreduce.Mapper, error) {
			cp, err := decodeCountParams(p)
			if err != nil {
				return nil, err
			}
			return &countMapper{cachePath: cp.CachePath}, nil
		},
		NewCombiner: func([]byte) (mapreduce.Reducer, error) { return sumReducer{}, nil },
		NewReducer: func(p []byte) (mapreduce.Reducer, error) {
			cp, err := decodeCountParams(p)
			if err != nil {
				return nil, err
			}
			return prunedSumReducer{minCount: cp.MinCount}, nil
		},
	})
}

// distPasses runs the mining jobs through a dist.Executor: the real
// multi-process runtime (dist.Master) or its in-memory oracle (dist.Local).
type distPasses struct {
	ex        dist.Executor
	inputPath string
}

// distDefaultReducers stands in for cluster core count when mining through
// an Executor with no reducer count configured, and distDefaultMapTasks for
// the sim's one-task-per-block default, which a real file has no analogue
// of. Without it a zero map-task hint would collapse every job to a single
// split, serialising the map stage no matter how many workers registered.
const (
	distDefaultReducers = 4
	distDefaultMapTasks = 4
)

func (d *distPasses) defaultReducers() int { return distDefaultReducers }

func (d *distPasses) runPass1(ctx context.Context, reducers, mapTasks int) (*passOutput, error) {
	if mapTasks <= 0 {
		mapTasks = distDefaultMapTasks
	}
	out, err := d.ex.ExecJob(ctx, &dist.JobSpec{
		Name:        "apriori-pass1",
		Type:        JobTypeItems,
		InputPath:   d.inputPath,
		NumMaps:     mapTasks,
		NumReducers: reducers,
	})
	if err != nil {
		return nil, err
	}
	return &passOutput{kvs: out.KVs, inputRecords: out.MapInputRecords, duration: out.Duration}, nil
}

func (d *distPasses) runCountPass(ctx context.Context, k int, batch [][]itemset.Itemset,
	minCount, reducers, mapTasks int) (*passOutput, error) {
	if mapTasks <= 0 {
		mapTasks = distDefaultMapTasks
	}
	cachePath := fmt.Sprintf("/cache/C%d", k)
	params, err := json.Marshal(countParams{CachePath: cachePath, MinCount: minCount})
	if err != nil {
		return nil, err
	}
	out, err := d.ex.ExecJob(ctx, &dist.JobSpec{
		Name:        fmt.Sprintf("apriori-pass%d", k),
		Type:        JobTypeCount,
		Params:      params,
		InputPath:   d.inputPath,
		NumMaps:     mapTasks,
		NumReducers: reducers,
		Cache:       map[string][]byte{cachePath: encodeCandidates(batch)},
	})
	if err != nil {
		return nil, err
	}
	return &passOutput{kvs: out.KVs, duration: out.Duration}, nil
}

// MineDistributed runs the k-phase MRApriori through a dist.Executor over a
// real input file. With a dist.Master executor the mining runs across real
// worker processes; with dist.Local it runs on the in-memory oracle — the
// parity tests hold the two to byte-identical frequent itemsets.
func MineDistributed(ctx context.Context, ex dist.Executor, inputPath string,
	cfg Config) (*apriori.Trace, error) {
	return mineLoop(ctx, &distPasses{ex: ex, inputPath: inputPath}, nil, cfg, inputPath)
}
