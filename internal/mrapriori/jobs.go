package mrapriori

import (
	"fmt"
	"strconv"
	"strings"

	"yafim/internal/hashtree"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/sim"
)

// itemMapper implements pass 1 (Algorithm 2 of the paper, in MapReduce
// form): emit <item, 1> for every item of every transaction.
type itemMapper struct{}

func (m *itemMapper) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }

func (m *itemMapper) Cleanup(mapreduce.Emit, *sim.Ledger) error { return nil }

func (m *itemMapper) Map(_ int64, line string, emit mapreduce.Emit, led *sim.Ledger) error {
	fields := strings.Fields(line)
	for _, f := range fields {
		if _, err := strconv.ParseUint(f, 10, 31); err != nil {
			return fmt.Errorf("mrapriori: bad transaction item %q", f)
		}
		emit(f, "1")
	}
	led.AddCPU(float64(len(line)))
	return nil
}

// countMapper implements passes k >= 2 (Algorithm 3 in MapReduce form): load
// the candidate batch from the distributed cache into hash trees, then count
// candidate occurrences across the task's whole input split into dense
// per-tree arrays (in-mapper combining) and emit one <candidate, count>
// record per locally occurring candidate at cleanup — instead of one
// <candidate, 1> record per match, which is what the combiner would
// otherwise have to crunch back down.
type countMapper struct {
	cachePath string
	trees     []*hashtree.Tree
	keys      [][]string // per tree: candidate index -> emitted key text
	matchers  []*hashtree.Matcher
	counts    [][]int // per tree: dense candidate counts for this split
	ops       float64 // batched subset-op CPU charges, flushed periodically
	rows      int
}

func (m *countMapper) Setup(cache mapreduce.CacheFiles, led *sim.Ledger) error {
	data, ok := cache[m.cachePath]
	if !ok {
		return fmt.Errorf("mrapriori: candidate cache file %s not localised", m.cachePath)
	}
	byLen := map[int][]itemset.Itemset{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		set, err := parseSet(line)
		if err != nil {
			return fmt.Errorf("mrapriori: candidate file: %w", err)
		}
		byLen[set.Len()] = append(byLen[set.Len()], set)
	}
	if len(byLen) == 0 {
		return fmt.Errorf("mrapriori: candidate file %s is empty", m.cachePath)
	}
	lengths := make([]int, 0, len(byLen))
	for k := range byLen {
		lengths = append(lengths, k)
	}
	// Deterministic tree order (ascending candidate length).
	for i := 0; i < len(lengths); i++ {
		for j := i + 1; j < len(lengths); j++ {
			if lengths[j] < lengths[i] {
				lengths[i], lengths[j] = lengths[j], lengths[i]
			}
		}
	}
	for _, k := range lengths {
		cands := byLen[k]
		tree := hashtree.Build(cands)
		keys := make([]string, len(cands))
		for i, c := range cands {
			keys[i] = setKey(c)
		}
		m.trees = append(m.trees, tree)
		m.keys = append(m.keys, keys)
		m.matchers = append(m.matchers, tree.NewMatcher())
		m.counts = append(m.counts, make([]int, len(cands)))
		led.AddCPU(float64(len(cands) * k)) // tree construction
	}
	return nil
}

// opsFlushRows is how many rows of subset-enumeration charges a count
// mapper batches locally before flushing them to the task ledger.
const opsFlushRows = 512

func (m *countMapper) Cleanup(emit mapreduce.Emit, led *sim.Ledger) error {
	led.AddCPU(m.ops)
	m.ops = 0
	for ti, counts := range m.counts {
		for i, c := range counts {
			if c != 0 {
				emit(m.keys[ti][i], strconv.Itoa(c))
			}
		}
	}
	return nil
}

func (m *countMapper) Map(_ int64, line string, emit mapreduce.Emit, led *sim.Ledger) error {
	set, err := parseSet(line)
	if err != nil {
		return fmt.Errorf("mrapriori: transaction: %w", err)
	}
	led.AddCPU(float64(len(line)))
	for ti, matcher := range m.matchers {
		counts := m.counts[ti]
		m.ops += float64(matcher.Subset(set, func(i int) { counts[i]++ }))
	}
	if m.rows++; m.rows%opsFlushRows == 0 {
		led.AddCPU(m.ops)
		m.ops = 0
	}
	return nil
}

// sumReducer sums the integer values of a key; it serves as the combiner of
// every pass and as the (unpruned) reducer of pass 1.
type sumReducer struct{}

func (sumReducer) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }

func (sumReducer) Reduce(key string, values []string, emit mapreduce.Emit, _ *sim.Ledger) error {
	total, err := sumValues(key, values)
	if err != nil {
		return err
	}
	emit(key, strconv.Itoa(total))
	return nil
}

// prunedSumReducer sums and keeps only keys meeting the minimum support —
// lines 11-18 of Algorithm 3.
type prunedSumReducer struct{ minCount int }

func (prunedSumReducer) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }

func (r prunedSumReducer) Reduce(key string, values []string, emit mapreduce.Emit, _ *sim.Ledger) error {
	total, err := sumValues(key, values)
	if err != nil {
		return err
	}
	if total >= r.minCount {
		emit(key, strconv.Itoa(total))
	}
	return nil
}

func sumValues(key string, values []string) (int, error) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("mrapriori: bad partial count %q for key %q", v, key)
		}
		total += n
	}
	return total, nil
}
