package fpgrowth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func TestMineMatchesApriori(t *testing.T) {
	want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(classicDB(), 2.0/9.0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("fp-growth disagrees with apriori:\n got %v\nwant %v", got.All(), want.All())
	}
}

func TestMineSingleItemTransactions(t *testing.T) {
	db := itemset.NewDB("singles", [][]itemset.Item{{1}, {1}, {2}, {1}})
	res, err := Mine(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxK() != 1 {
		t.Fatalf("MaxK = %d", res.MaxK())
	}
	if c, ok := res.Support(itemset.New(1)); !ok || c != 3 {
		t.Fatalf("support(1) = %d, %v", c, ok)
	}
	if _, ok := res.Support(itemset.New(2)); ok {
		t.Fatal("item 2 reported frequent at 50%")
	}
}

func TestMineIdenticalTransactions(t *testing.T) {
	// A single shared path stresses the count/childSum bookkeeping.
	db := itemset.NewDB("same", [][]itemset.Item{
		{1, 2, 3}, {1, 2, 3}, {1, 2, 3},
	})
	res, err := Mine(db, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 7 { // every non-empty subset of {1,2,3}
		t.Fatalf("frequent = %d: %v", res.NumFrequent(), res.All())
	}
	if c, _ := res.Support(itemset.New(1, 2, 3)); c != 3 {
		t.Fatalf("support({1 2 3}) = %d", c)
	}
}

func TestMineEmptyDB(t *testing.T) {
	if _, err := Mine(itemset.NewDB("e", nil), 0.5); err == nil {
		t.Fatal("empty DB accepted")
	}
}

func TestCollectPathsRoundTrip(t *testing.T) {
	tr := newTree()
	tr.insert([]itemset.Item{1, 2, 3}, 2)
	tr.insert([]itemset.Item{1, 2}, 1)
	tr.insert([]itemset.Item{4}, 5)
	paths := collectPaths(tr)
	rebuilt := newTree()
	for _, p := range paths {
		rebuilt.insert(p.items, p.count)
	}
	for it, c := range tr.counts {
		if rebuilt.counts[it] != c {
			t.Fatalf("count[%d] = %d after round trip, want %d", it, rebuilt.counts[it], c)
		}
	}
}

// Property: FP-Growth agrees exactly with sequential Apriori on random
// databases across support thresholds — a candidate-free algorithm agreeing
// with a candidate-based one on every count.
func TestMineAgreesWithAprioriProperty(t *testing.T) {
	f := func(seed int64, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.1 + float64(sup8%8)/10.0
		rows := make([][]itemset.Item, rng.Intn(25)+5)
		for i := range rows {
			n := rng.Intn(6) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(9)))
			}
		}
		db := itemset.NewDB("rand", rows)
		want, err := apriori.Mine(db, sup, apriori.Options{})
		if err != nil {
			return false
		}
		got, err := Mine(db, sup)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
