// Package fpgrowth implements Han, Pei & Yin's FP-Growth: frequent itemset
// mining without candidate generation, via a compressed FP-tree and
// recursive conditional-tree projection.
//
// Like the Eclat package, it doubles as a related-work baseline (reference
// [9] of the paper) and as an independent correctness oracle for the Apriori
// family.
package fpgrowth

import (
	"fmt"
	"sort"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

type node struct {
	item     itemset.Item
	count    int
	parent   *node
	children map[itemset.Item]*node
	next     *node // header-table chain
}

type tree struct {
	root    *node
	headers map[itemset.Item]*node // head of each item's node chain
	counts  map[itemset.Item]int   // total count per item in this tree
}

func newTree() *tree {
	return &tree{
		root:    &node{children: map[itemset.Item]*node{}},
		headers: map[itemset.Item]*node{},
		counts:  map[itemset.Item]int{},
	}
}

// insert adds one (ordered) item path with the given count.
func (t *tree) insert(items []itemset.Item, count int) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &node{item: it, parent: cur, children: map[itemset.Item]*node{}}
			child.next = t.headers[it]
			t.headers[it] = child
			cur.children[it] = child
		}
		child.count += count
		t.counts[it] += count
		cur = child
	}
}

// Mine runs FP-Growth over db at the given relative minimum support.
func Mine(db *itemset.DB, minSupport float64) (*apriori.Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("fpgrowth: empty database %q", db.Name)
	}
	minCount := db.MinSupportCount(minSupport)

	// First pass: global item frequencies.
	freq := make(map[itemset.Item]int)
	for _, tr := range db.Transactions {
		for _, it := range tr.Items {
			freq[it]++
		}
	}
	// Global ordering: descending frequency, item id as tiebreak. A single
	// fixed order keeps all conditional trees consistent.
	rank := makeRank(freq, minCount)

	// Second pass: insert frequency-ordered, infrequent-pruned transactions.
	t := newTree()
	for _, tr := range db.Transactions {
		path := project(tr.Items, rank)
		if len(path) > 0 {
			t.insert(path, 1)
		}
	}

	byLevel := map[int][]apriori.SetCount{}
	emit := func(set itemset.Itemset, count int) {
		byLevel[set.Len()] = append(byLevel[set.Len()], apriori.SetCount{Set: set, Count: count})
	}
	growth(t, nil, minCount, emit)

	res := &apriori.Result{MinSupport: minCount}
	for k := 1; ; k++ {
		sets, ok := byLevel[k]
		if !ok {
			break
		}
		res.Levels = append(res.Levels, apriori.NewLevel(k, sets))
	}
	return res, nil
}

// makeRank assigns each frequent item its position in the global descending
// frequency order; infrequent items are absent.
func makeRank(freq map[itemset.Item]int, minCount int) map[itemset.Item]int {
	var items []itemset.Item
	for it, c := range freq {
		if c >= minCount {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if freq[items[i]] != freq[items[j]] {
			return freq[items[i]] > freq[items[j]]
		}
		return items[i] < items[j]
	})
	rank := make(map[itemset.Item]int, len(items))
	for i, it := range items {
		rank[it] = i
	}
	return rank
}

// project filters a transaction to frequent items and orders it by rank.
func project(items itemset.Itemset, rank map[itemset.Item]int) []itemset.Item {
	out := make([]itemset.Item, 0, len(items))
	for _, it := range items {
		if _, ok := rank[it]; ok {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return rank[out[i]] < rank[out[j]] })
	return out
}

// growth recursively mines t, emitting every frequent itemset that extends
// suffix.
func growth(t *tree, suffix itemset.Itemset, minCount int, emit func(itemset.Itemset, int)) {
	// Process header items; order does not affect the result because each
	// extension is independent.
	items := make([]itemset.Item, 0, len(t.headers))
	for it := range t.headers {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	for _, it := range items {
		total := t.counts[it]
		if total < minCount {
			continue
		}
		set := itemset.New(append(suffix.Clone(), it)...)
		emit(set, total)

		// Build the conditional tree from it's prefix paths.
		cond := newTree()
		for n := t.headers[it]; n != nil; n = n.next {
			var path []itemset.Item
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			// path is leaf-to-root; reverse to root-to-leaf insertion order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			if len(path) > 0 {
				cond.insert(path, n.count)
			}
		}
		// Prune items that fell below support in the conditional tree.
		prune(cond, minCount)
		if len(cond.headers) > 0 {
			growth(cond, set, minCount, emit)
		}
	}
}

// prune removes infrequent items from a conditional tree by rebuilding it
// without them, which keeps the node invariants simple.
func prune(t *tree, minCount int) {
	infrequent := false
	for _, c := range t.counts {
		if c < minCount {
			infrequent = true
			break
		}
	}
	if !infrequent {
		return
	}
	counts := t.counts // snapshot before the rebuild replaces *t
	keep := func(it itemset.Item) bool { return counts[it] >= minCount }
	paths := collectPaths(t)
	*t = *newTree()
	for _, p := range paths {
		var filtered []itemset.Item
		for _, it := range p.items {
			if keep(it) {
				filtered = append(filtered, it)
			}
		}
		if len(filtered) > 0 {
			t.insert(filtered, p.count)
		}
	}
}

type path struct {
	items []itemset.Item
	count int
}

// collectPaths flattens a tree back into weighted root-to-leaf paths using
// the standard inclusion-exclusion on node counts.
func collectPaths(t *tree) []path {
	var out []path
	var walk func(n *node, prefix []itemset.Item)
	walk = func(n *node, prefix []itemset.Item) {
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
		}
		if n.parent != nil && n.count > childSum {
			items := append(append([]itemset.Item(nil), prefix...), n.item)
			out = append(out, path{items: items, count: n.count - childSum})
		}
		for _, c := range sortedChildren(n) {
			var next []itemset.Item
			if n.parent != nil {
				next = append(append([]itemset.Item(nil), prefix...), n.item)
			}
			walk(c, next)
		}
	}
	walk(t.root, nil)
	return out
}

func sortedChildren(n *node) []*node {
	out := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].item < out[j].item })
	return out
}
