// Package leaktest asserts that a test leaves no goroutines behind. The
// execution hardening work guarantees every exit path — success, failure,
// panic recovery, cancellation, deadline — joins all of its worker
// goroutines; these checks are how the test suite enforces that guarantee.
package leaktest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and returns a function that
// asserts the count has returned to (at most) the snapshot. Deferred at the
// top of a test:
//
//	defer leaktest.Check(t)()
//
// The returned func polls briefly before failing, since goroutines that have
// finished their work may still be mid-exit when the test body returns. On
// failure it dumps all goroutine stacks, filtered of runtime internals, so
// the leaked worker is identifiable.
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, stacks())
		}
	}
}

// stacks renders every goroutine's stack, dropping the testing harness's own
// goroutines to keep the dump readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var keep []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "testing.(*T).Run") ||
			strings.Contains(g, "testing.Main") ||
			strings.Contains(g, "runtime.goexit") && strings.Count(g, "\n") <= 2 {
			continue
		}
		keep = append(keep, g)
	}
	return strings.Join(keep, "\n\n")
}
