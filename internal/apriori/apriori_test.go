package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/itemset"
)

func TestGenJoinAndPrune(t *testing.T) {
	l2 := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 3), itemset.New(1, 4),
		itemset.New(2, 3), itemset.New(2, 4),
	}
	got, err := Gen(l2)
	if err != nil {
		t.Fatal(err)
	}
	// Join yields {1,2,3},{1,2,4},{1,3,4},{2,3,4}; prune drops {1,3,4} and
	// {2,3,4} because {3,4} is not frequent.
	want := []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(1, 2, 4)}
	if len(got) != len(want) {
		t.Fatalf("Gen = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("Gen = %v, want %v", got, want)
		}
	}
}

func TestGenFromSingletons(t *testing.T) {
	l1 := []itemset.Itemset{itemset.New(3), itemset.New(1), itemset.New(2)}
	got, err := Gen(l1)
	if err != nil {
		t.Fatal(err)
	}
	want := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 3), itemset.New(2, 3),
	}
	if len(got) != len(want) {
		t.Fatalf("Gen = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("Gen = %v, want %v", got, want)
		}
	}
}

func TestGenEdgeCases(t *testing.T) {
	if got, err := Gen(nil); err != nil || got != nil {
		t.Fatalf("Gen(nil) = %v, %v", got, err)
	}
	if _, err := Gen([]itemset.Itemset{itemset.New(1), itemset.New(1, 2)}); err == nil {
		t.Fatal("mixed lengths accepted")
	}
	if _, err := Gen([]itemset.Itemset{{}}); err == nil {
		t.Fatal("zero-length itemsets accepted")
	}
	// A single itemset joins with nothing.
	if got, err := Gen([]itemset.Itemset{itemset.New(1, 2)}); err != nil || len(got) != 0 {
		t.Fatalf("Gen single = %v, %v", got, err)
	}
}

// Property: every generated candidate has all k-subsets frequent, and every
// (k+1)-itemset whose k-subsets are all frequent is generated.
func TestGenCompleteAndSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := 8
		// Random family of 2-itemsets.
		var l2 []itemset.Itemset
		seen := map[string]bool{}
		for i := 0; i < rng.Intn(12)+1; i++ {
			a := itemset.Item(rng.Intn(universe))
			b := itemset.Item(rng.Intn(universe))
			if a == b {
				continue
			}
			s := itemset.New(a, b)
			if !seen[s.Key()] {
				seen[s.Key()] = true
				l2 = append(l2, s)
			}
		}
		got, err := Gen(l2)
		if err != nil {
			return false
		}
		gotKeys := map[string]bool{}
		for _, c := range got {
			gotKeys[c.Key()] = true
		}
		// Brute-force expectation over all 3-subsets of the universe.
		for a := 0; a < universe; a++ {
			for b := a + 1; b < universe; b++ {
				for c := b + 1; c < universe; c++ {
					cand := itemset.New(itemset.Item(a), itemset.Item(b), itemset.Item(c))
					allSubsFreq := seen[itemset.New(itemset.Item(a), itemset.Item(b)).Key()] &&
						seen[itemset.New(itemset.Item(a), itemset.Item(c)).Key()] &&
						seen[itemset.New(itemset.Item(b), itemset.Item(c)).Key()]
					if allSubsFreq != gotKeys[cand.Key()] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// classicDB is the textbook example database (Han & Kamber).
func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	})
}

func TestMineClassicExample(t *testing.T) {
	res, err := Mine(classicDB(), 2.0/9.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSupport != 2 {
		t.Fatalf("MinSupport = %d", res.MinSupport)
	}
	if res.MaxK() != 3 {
		t.Fatalf("MaxK = %d", res.MaxK())
	}
	wantCounts := map[string]int{
		itemset.New(1).Key():       6,
		itemset.New(2).Key():       7,
		itemset.New(3).Key():       6,
		itemset.New(4).Key():       2,
		itemset.New(5).Key():       2,
		itemset.New(1, 2).Key():    4,
		itemset.New(1, 3).Key():    4,
		itemset.New(1, 5).Key():    2,
		itemset.New(2, 3).Key():    4,
		itemset.New(2, 4).Key():    2,
		itemset.New(2, 5).Key():    2,
		itemset.New(1, 2, 3).Key(): 2,
		itemset.New(1, 2, 5).Key(): 2,
	}
	got := res.All()
	if len(got) != len(wantCounts) {
		t.Fatalf("got %d frequent itemsets, want %d: %v", len(got), len(wantCounts), got)
	}
	for k, v := range wantCounts {
		if got[k] != v {
			s, _ := itemset.FromKey(k)
			t.Errorf("support(%v) = %d, want %d", s, got[k], v)
		}
	}
}

func TestMineBruteForceAgrees(t *testing.T) {
	ht, err := Mine(classicDB(), 2.0/9.0, Options{Counting: HashTreeCounting})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Mine(classicDB(), 2.0/9.0, Options{Counting: BruteForceCounting})
	if err != nil {
		t.Fatal(err)
	}
	if !ht.Equal(bf) {
		t.Fatal("hash-tree and brute-force counting disagree")
	}
}

func TestMineMaxK(t *testing.T) {
	res, err := Mine(classicDB(), 2.0/9.0, Options{MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxK() != 1 {
		t.Fatalf("MaxK = %d", res.MaxK())
	}
}

func TestMineHighSupportNothingFrequent(t *testing.T) {
	db := itemset.NewDB("sparse", [][]itemset.Item{{1}, {2}, {3}, {4}})
	res, err := Mine(db, 0.9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Fatalf("frequent = %d", res.NumFrequent())
	}
}

func TestMineEmptyDB(t *testing.T) {
	if _, err := Mine(itemset.NewDB("e", nil), 0.5, Options{}); err == nil {
		t.Fatal("empty DB accepted")
	}
}

func TestMineBadStrategy(t *testing.T) {
	if _, err := Mine(classicDB(), 0.2, Options{Counting: CountingStrategy(42)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := Mine(classicDB(), 2.0/9.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := res.Support(itemset.New(1, 2)); !ok || c != 4 {
		t.Fatalf("Support({1 2}) = %d, %v", c, ok)
	}
	if _, ok := res.Support(itemset.New(4, 5)); ok {
		t.Fatal("infrequent itemset reported frequent")
	}
	if _, ok := res.Support(itemset.New(1, 2, 3, 4, 5)); ok {
		t.Fatal("oversized itemset reported frequent")
	}
	if got := res.Frequent(0); got != nil {
		t.Fatal("Frequent(0) non-nil")
	}
	if got := res.Frequent(2); len(got) != 6 {
		t.Fatalf("Frequent(2) has %d sets", len(got))
	}
}

func TestResultEqual(t *testing.T) {
	a, _ := Mine(classicDB(), 2.0/9.0, Options{})
	b, _ := Mine(classicDB(), 2.0/9.0, Options{})
	if !a.Equal(b) {
		t.Fatal("identical runs not equal")
	}
	c, _ := Mine(classicDB(), 3.0/9.0, Options{})
	if a.Equal(c) {
		t.Fatal("different supports compare equal")
	}
}

// Property: monotonicity — every subset of a frequent itemset is frequent
// with at least the same support (checked on random small databases).
func TestMineDownwardClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]itemset.Item, rng.Intn(30)+5)
		for i := range rows {
			n := rng.Intn(6) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(10)))
			}
		}
		db := itemset.NewDB("rand", rows)
		res, err := Mine(db, 0.2, Options{})
		if err != nil {
			return false
		}
		for _, level := range res.Levels {
			for _, sc := range level.Sets {
				for i := 0; i < sc.Set.Len(); i++ {
					if sc.Set.Len() == 1 {
						continue
					}
					sub := sc.Set.Without(i)
					c, ok := res.Support(sub)
					if !ok || c < sc.Count {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: support counts reported by Mine equal exact subset counts.
func TestMineSupportsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]itemset.Item, rng.Intn(20)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(8)))
			}
		}
		db := itemset.NewDB("rand", rows)
		res, err := Mine(db, 0.25, Options{})
		if err != nil {
			return false
		}
		for _, level := range res.Levels {
			for _, sc := range level.Sets {
				exact := 0
				for _, tr := range db.Transactions {
					if tr.Items.ContainsAll(sc.Set) {
						exact++
					}
				}
				if exact != sc.Count || exact < res.MinSupport {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMineBitmapAgrees(t *testing.T) {
	ht, err := Mine(classicDB(), 2.0/9.0, Options{Counting: HashTreeCounting})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := Mine(classicDB(), 2.0/9.0, Options{Counting: BitmapCounting})
	if err != nil {
		t.Fatal(err)
	}
	if !bm.Equal(ht) {
		t.Fatal("bitmap counting disagrees with hash tree")
	}
}

func TestMineTrieAgrees(t *testing.T) {
	ht, err := Mine(classicDB(), 2.0/9.0, Options{Counting: HashTreeCounting})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Mine(classicDB(), 2.0/9.0, Options{Counting: TrieCounting})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(ht) {
		t.Fatal("trie counting disagrees with hash tree")
	}
}
