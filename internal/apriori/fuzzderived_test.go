package apriori

import (
	"math/rand"
	"testing"

	"yafim/internal/itemset"
)

func TestFuzzMaximalClosed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nTx := 1 + rng.Intn(25)
		nItems := 1 + rng.Intn(8)
		rows := make([][]itemset.Item, nTx)
		for i := range rows {
			l := rng.Intn(nItems + 1)
			for j := 0; j < l; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(nItems)))
			}
		}
		db := itemset.NewDB("f", rows)
		for _, sup := range []float64{0.1, 0.4} {
			res, err := Mine(db, sup, Options{})
			if err != nil {
				t.Fatal(err)
			}
			all := res.All()
			// brute reference over all frequent sets
			isFrequent := func(s itemset.Itemset) (int, bool) {
				c, ok := all[s.Key()]
				return c, ok
			}
			wantMax := map[string]bool{}
			wantClosed := map[string]bool{}
			for key, cnt := range all {
				s, _ := itemset.FromKey(key)
				maximal, closed := true, true
				// check all supersets by one item
				for it := 0; it < db.NumItems(); it++ {
					if s.Contains(itemset.Item(it)) {
						continue
					}
					sup := itemset.New(append(s.Clone(), itemset.Item(it))...)
					if c, ok := isFrequent(sup); ok {
						maximal = false
						if c == cnt {
							closed = false
						}
					}
				}
				if maximal {
					wantMax[key] = true
				}
				if closed {
					wantClosed[key] = true
				}
			}
			gotMax := res.Maximal()
			if len(gotMax) != len(wantMax) {
				t.Fatalf("seed=%d sup=%v: maximal count got %d want %d", seed, sup, len(gotMax), len(wantMax))
			}
			for _, sc := range gotMax {
				if !wantMax[sc.Set.Key()] {
					t.Fatalf("seed=%d sup=%v: %v wrongly maximal", seed, sup, sc.Set)
				}
			}
			gotClosed := res.Closed()
			if len(gotClosed) != len(wantClosed) {
				t.Fatalf("seed=%d sup=%v: closed count got %d want %d", seed, sup, len(gotClosed), len(wantClosed))
			}
			for _, sc := range gotClosed {
				if !wantClosed[sc.Set.Key()] {
					t.Fatalf("seed=%d sup=%v: %v wrongly closed", seed, sup, sc.Set)
				}
			}
		}
	}
}
