package apriori

import (
	"testing"

	"yafim/internal/datagen"
	"yafim/internal/itemset"
)

func benchDB(b *testing.B) *itemset.DB {
	b.Helper()
	db, err := datagen.MushroomLike(0.25, 1)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkGen(b *testing.B) {
	// A realistically sized L2 drives the join+prune loop.
	var l2 []itemset.Itemset
	for a := itemset.Item(0); a < 60; a++ {
		for c := a + 1; c < 60; c += 3 {
			l2 = append(l2, itemset.New(a, c))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Gen(l2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineHashTree(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, 0.35, Options{Counting: HashTreeCounting}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineBruteForce(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, 0.35, Options{Counting: BruteForceCounting}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineBitmap(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, 0.35, Options{Counting: BitmapCounting}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineTrie(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, 0.35, Options{Counting: TrieCounting}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineDHP(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineDHP(db, 0.35, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinePartition(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinePartition(db, 0.35, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineToivonen(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineToivonen(db, 0.35, ToivonenOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
