package apriori

import (
	"fmt"
	"math/rand"

	"yafim/internal/hashtree"
	"yafim/internal/itemset"
)

// ToivonenOptions parameterises the sampling miner.
type ToivonenOptions struct {
	// SampleFraction of transactions mined in memory (default 0.25).
	SampleFraction float64
	// SupportSlack lowers the support threshold on the sample to make
	// misses unlikely (default 0.8: sample mined at 80% of the support).
	SupportSlack float64
	// Seed drives the sample; identical seeds give identical runs.
	Seed int64
	// MaxRetries bounds how many enlarged samples are attempted before
	// falling back to an exact full mine (default 3).
	MaxRetries int
}

// MineToivonen runs Toivonen's sampling algorithm: mine a random sample at
// a slightly lowered threshold, then verify the sample's frequent itemsets
// plus their negative border against the full database in a single scan.
// If no border itemset turns out globally frequent, the sample provably
// found every frequent itemset and the (exactly counted) result is
// returned. Otherwise the sample missed something; the algorithm retries
// with a larger sample and finally falls back to an exact full mine, so the
// returned result is always exact.
func MineToivonen(db *itemset.DB, minSupport float64, opts ToivonenOptions) (*Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("apriori: empty database %q", db.Name)
	}
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("apriori: MinSupport %v out of (0,1]", minSupport)
	}
	fraction := opts.SampleFraction
	if fraction <= 0 || fraction > 1 {
		fraction = 0.25
	}
	slack := opts.SupportSlack
	if slack <= 0 || slack > 1 {
		slack = 0.8
	}
	retries := opts.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	minCount := db.MinSupportCount(minSupport)

	for attempt := 0; attempt <= retries; attempt++ {
		if fraction >= 1 {
			break // sample is the database; just mine exactly
		}
		sample := sampleDB(db, fraction, opts.Seed+int64(attempt))
		if sample.Len() == 0 {
			fraction *= 2
			continue
		}
		sampleRes, err := Mine(sample, minSupport*slack, Options{})
		if err != nil {
			return nil, err
		}
		res, borderHit, err := verifyWithBorder(db, sampleRes, minCount)
		if err != nil {
			return nil, err
		}
		if !borderHit {
			return res, nil
		}
		// A border itemset was globally frequent: supersets may be missing.
		// Enlarge the sample and try again.
		fraction *= 2
	}
	return Mine(db, minSupport, Options{})
}

// sampleDB draws a deterministic Bernoulli sample of the transactions.
func sampleDB(db *itemset.DB, fraction float64, seed int64) *itemset.DB {
	rng := rand.New(rand.NewSource(seed))
	var rows [][]itemset.Item
	for _, tr := range db.Transactions {
		if rng.Float64() < fraction {
			rows = append(rows, tr.Items)
		}
	}
	return itemset.NewDB(db.Name+"(sample)", rows)
}

// verifyWithBorder counts the sample-frequent itemsets and their negative
// border exactly over db. It returns the exact frequent itemsets among
// them, and whether any border itemset reached the global threshold.
func verifyWithBorder(db *itemset.DB, sampleRes *Result, minCount int) (*Result, bool, error) {
	frequentKeys := make(map[string]bool, sampleRes.NumFrequent())
	for _, level := range sampleRes.Levels {
		for _, sc := range level.Sets {
			frequentKeys[sc.Set.Key()] = true
		}
	}

	// Candidates per length: the sample-frequent itemsets plus the negative
	// border — minimal itemsets not sample-frequent whose subsets all are.
	byLen := map[int][]itemset.Itemset{}
	border := map[string]bool{}
	// Border at length 1: every item that is not sample-frequent.
	for it := 0; it < db.NumItems(); it++ {
		s := itemset.New(itemset.Item(it))
		byLen[1] = append(byLen[1], s)
		if !frequentKeys[s.Key()] {
			border[s.Key()] = true
		}
	}
	maxLen := 1
	for k := 2; k <= sampleRes.MaxK()+1; k++ {
		prev := sampleRes.Frequent(k - 1)
		if len(prev) == 0 {
			break
		}
		cands, err := Gen(setsOf(prev))
		if err != nil {
			return nil, false, err
		}
		for _, c := range cands {
			byLen[k] = append(byLen[k], c)
			if !frequentKeys[c.Key()] {
				border[c.Key()] = true
			}
		}
		if len(byLen[k]) > 0 {
			maxLen = k
		}
	}

	res := &Result{MinSupport: minCount}
	borderHit := false
	for k := 1; k <= maxLen; k++ {
		cands := byLen[k]
		if len(cands) == 0 {
			continue
		}
		counts, _ := hashtree.Build(cands).CountSupports(db.Transactions)
		var lk []SetCount
		for i, c := range counts {
			if c < minCount {
				continue
			}
			lk = append(lk, SetCount{Set: cands[i], Count: c})
			if border[cands[i].Key()] {
				borderHit = true
			}
		}
		if len(lk) > 0 {
			res.Levels = append(res.Levels, NewLevel(k, lk))
		}
	}
	return res, borderHit, nil
}
