// Package apriori provides the level-wise machinery shared by every Apriori
// implementation in this repository — candidate generation (the classic
// join + prune ap_gen of Algorithm 3, line 2) — plus a sequential reference
// miner used as the correctness oracle and the single-core baseline for
// speedup measurements.
package apriori

import (
	"fmt"
	"sort"

	"yafim/internal/itemset"
)

// Gen generates the candidate (k+1)-itemsets C_{k+1} from the frequent
// k-itemsets L_k, using the Apriori join and prune steps:
//
//   - join: two itemsets of L_k sharing their first k-1 items combine into a
//     (k+1)-candidate;
//   - prune: a candidate survives only if every k-subset is in L_k (the
//     downward-closure property).
//
// The input need not be sorted; the output is lexicographically sorted and
// duplicate-free. Gen returns an error if the inputs are not all the same
// length.
func Gen(lk []itemset.Itemset) ([]itemset.Itemset, error) {
	if len(lk) == 0 {
		return nil, nil
	}
	k := lk[0].Len()
	if k < 1 {
		return nil, fmt.Errorf("apriori: Gen over zero-length itemsets")
	}
	sorted := make([]itemset.Itemset, len(lk))
	copy(sorted, lk)
	itemset.SortSets(sorted)

	known := make(map[string]struct{}, len(sorted))
	for _, s := range sorted {
		if s.Len() != k {
			return nil, fmt.Errorf("apriori: Gen with mixed lengths %d and %d", k, s.Len())
		}
		known[s.Key()] = struct{}{}
	}

	var out []itemset.Itemset
	for i := 0; i < len(sorted); i++ {
		// After sorting, itemsets sharing the (k-1)-prefix are adjacent.
		for j := i + 1; j < len(sorted); j++ {
			if !samePrefix(sorted[i], sorted[j], k-1) {
				break
			}
			cand := sorted[i].Extend(sorted[j][k-1])
			if pruned(cand, known) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out, nil
}

func samePrefix(a, b itemset.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pruned reports whether some k-subset of cand is missing from the known
// frequent k-itemsets. The two subsets produced by the join itself (dropping
// either of the last two items) are frequent by construction, but checking
// them costs little next to map lookups for the rest.
func pruned(cand itemset.Itemset, known map[string]struct{}) bool {
	for i := 0; i < cand.Len(); i++ {
		if _, ok := known[cand.Without(i).Key()]; !ok {
			return true
		}
	}
	return false
}

// SetCount pairs an itemset with its support count.
type SetCount struct {
	Set   itemset.Itemset
	Count int
}

// Level holds the frequent itemsets of one size, sorted lexicographically.
type Level struct {
	K    int
	Sets []SetCount
}

// Result is the complete output of a frequent itemset mining run: the
// frequent itemsets of every size, level by level, plus the absolute
// minimum support count used.
type Result struct {
	MinSupport int
	Levels     []Level // Levels[i] holds the (i+1)-itemsets
}

// NumFrequent returns the total number of frequent itemsets across levels.
func (r *Result) NumFrequent() int {
	n := 0
	for _, l := range r.Levels {
		n += len(l.Sets)
	}
	return n
}

// MaxK returns the size of the largest frequent itemset (0 if none).
func (r *Result) MaxK() int { return len(r.Levels) }

// Frequent returns the itemsets of size k (1-based), or nil.
func (r *Result) Frequent(k int) []SetCount {
	if k < 1 || k > len(r.Levels) {
		return nil
	}
	return r.Levels[k-1].Sets
}

// Support returns the support count of s and whether s is frequent.
func (r *Result) Support(s itemset.Itemset) (int, bool) {
	sets := r.Frequent(s.Len())
	i := sort.Search(len(sets), func(i int) bool { return sets[i].Set.Compare(s) >= 0 })
	if i < len(sets) && sets[i].Set.Equal(s) {
		return sets[i].Count, true
	}
	return 0, false
}

// All flattens the result into a key -> count map, the form used to compare
// two mining runs for exact equality.
func (r *Result) All() map[string]int {
	out := make(map[string]int, r.NumFrequent())
	for _, l := range r.Levels {
		for _, sc := range l.Sets {
			out[sc.Set.Key()] = sc.Count
		}
	}
	return out
}

// Equal reports whether two results contain exactly the same itemsets with
// the same counts — the property the paper verifies between YAFIM and the
// MapReduce implementation ("the experimental results of YAFIM are exactly
// same as MRApriori").
func (r *Result) Equal(o *Result) bool {
	if r.NumFrequent() != o.NumFrequent() {
		return false
	}
	theirs := o.All()
	for key, count := range r.All() {
		if theirs[key] != count {
			return false
		}
	}
	return true
}

// sortLevel orders a level's itemsets lexicographically in place.
func sortLevel(sets []SetCount) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Set.Compare(sets[j].Set) < 0 })
}

// NewLevel builds a sorted Level from unsorted set/count pairs.
func NewLevel(k int, sets []SetCount) Level {
	sortLevel(sets)
	return Level{K: k, Sets: sets}
}
