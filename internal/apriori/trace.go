package apriori

import (
	"time"

	"yafim/internal/obs"
)

// PassStat records one pass (one candidate length k) of a level-wise mining
// run: candidate and frequent itemset counts plus the virtual time the
// pass's jobs took. The per-pass duration series is what the paper plots in
// Fig. 3 and Fig. 6. When the run carries a telemetry recorder, Counters
// holds the pass's counter delta (cache hits, shuffle bytes, ...); it is
// zero otherwise.
type PassStat struct {
	K          int
	Candidates int
	Frequent   int
	Duration   time.Duration
	Counters   obs.Counters
}

// Trace is the complete output of an instrumented mining run: the exact
// frequent itemsets plus per-pass timing. Both parallel engines (YAFIM on
// RDDs, MRApriori on MapReduce) produce a Trace, which is what makes their
// results and timings directly comparable.
type Trace struct {
	Result *Result
	Passes []PassStat
}

// TotalDuration sums the virtual time across all passes.
func (t *Trace) TotalDuration() time.Duration {
	var d time.Duration
	for _, p := range t.Passes {
		d += p.Duration
	}
	return d
}
