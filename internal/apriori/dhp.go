package apriori

import (
	"fmt"

	"yafim/internal/hashtree"
	"yafim/internal/itemset"
)

// MineDHP runs Apriori with Park, Chen & Yu's Direct Hashing and Pruning
// refinement for the candidate-heavy second pass: while counting items in
// pass 1, every 2-subset of every transaction is hashed into a bucket
// counter; a candidate 2-itemset can only be frequent if its bucket count
// reaches the minimum support (bucket counts over-approximate supports, so
// the filter is lossless). On sparse datasets with large L1 this discards
// most of C2 before any counting happens.
//
// Passes three and beyond proceed as plain Apriori — hashing all k-subsets
// of long transactions grows combinatorially, so, as in the original paper,
// DHP's table is most valuable exactly once.
func MineDHP(db *itemset.DB, minSupport float64, buckets int) (*Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("apriori: empty database %q", db.Name)
	}
	if buckets <= 0 {
		buckets = 1 << 16
	}
	minCount := db.MinSupportCount(minSupport)
	res := &Result{MinSupport: minCount}

	// Pass 1: item counts plus the DHP bucket table for pairs.
	itemCounts := make([]int, db.NumItems())
	table := make([]int32, buckets)
	for _, tr := range db.Transactions {
		items := tr.Items
		for i, a := range items {
			itemCounts[a]++
			for _, b := range items[i+1:] {
				table[pairBucket(a, b, buckets)]++
			}
		}
	}
	var l1 []SetCount
	for it, c := range itemCounts {
		if c >= minCount {
			l1 = append(l1, SetCount{Set: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	if len(l1) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, NewLevel(1, l1))

	// Pass 2: generate C2 and discard candidates whose bucket cannot reach
	// the threshold.
	c2, err := Gen(setsOf(l1))
	if err != nil {
		return nil, err
	}
	pruned := c2[:0]
	for _, c := range c2 {
		if int(table[pairBucket(c[0], c[1], buckets)]) >= minCount {
			pruned = append(pruned, c)
		}
	}
	prev := setsOf(l1)
	for k := 2; ; k++ {
		var cands []itemset.Itemset
		if k == 2 {
			cands = pruned
		} else {
			cands, err = Gen(prev)
			if err != nil {
				return nil, err
			}
		}
		if len(cands) == 0 {
			break
		}
		counts, _ := hashtree.Build(cands).CountSupports(db.Transactions)
		var lk []SetCount
		for i, c := range counts {
			if c >= minCount {
				lk = append(lk, SetCount{Set: cands[i], Count: c})
			}
		}
		if len(lk) == 0 {
			break
		}
		res.Levels = append(res.Levels, NewLevel(k, lk))
		prev = setsOf(lk)
	}
	return res, nil
}

// pairBucket hashes an ordered item pair into the DHP table.
func pairBucket(a, b itemset.Item, buckets int) int {
	h := uint64(a)*2654435761 ^ uint64(b)*40503
	return int(h % uint64(buckets))
}
