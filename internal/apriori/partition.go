package apriori

import (
	"fmt"

	"yafim/internal/hashtree"
	"yafim/internal/itemset"
)

// MinePartition runs Savasere, Omiecinski & Navathe's Partition algorithm,
// the two-scan ancestor of the distributed SON algorithm (internal/son):
//
//  1. Scan one: the database is cut into numPartitions chunks, each mined
//     independently at the same relative support. Any globally frequent
//     itemset is locally frequent in at least one chunk (pigeonhole over
//     supports), so the union of local results is a complete candidate set.
//  2. Scan two: the candidates' supports are counted exactly over the full
//     database, and those reaching the global threshold are returned.
//
// The result is exact and identical to plain Apriori's.
func MinePartition(db *itemset.DB, minSupport float64, numPartitions int) (*Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("apriori: empty database %q", db.Name)
	}
	if numPartitions <= 0 {
		numPartitions = 4
	}
	if numPartitions > db.Len() {
		numPartitions = db.Len()
	}
	minCount := db.MinSupportCount(minSupport)

	// Scan one: local mining per chunk.
	candidates := make(map[string]itemset.Itemset)
	n := db.Len()
	for p := 0; p < numPartitions; p++ {
		lo := p * n / numPartitions
		hi := (p + 1) * n / numPartitions
		if lo == hi {
			continue
		}
		chunk := &itemset.DB{Name: fmt.Sprintf("%s[%d]", db.Name, p), Transactions: db.Transactions[lo:hi]}
		// Rebuild via NewDB to recompute NumItems for the chunk.
		rows := make([][]itemset.Item, hi-lo)
		for i, tr := range db.Transactions[lo:hi] {
			rows[i] = tr.Items
		}
		chunk = itemset.NewDB(chunk.Name, rows)
		local, err := Mine(chunk, minSupport, Options{})
		if err != nil {
			return nil, fmt.Errorf("apriori: partition %d: %w", p, err)
		}
		for _, level := range local.Levels {
			for _, sc := range level.Sets {
				candidates[sc.Set.Key()] = sc.Set
			}
		}
	}

	res := &Result{MinSupport: minCount}
	if len(candidates) == 0 {
		return res, nil
	}

	// Scan two: exact counting of all candidates, grouped by length.
	byLen := map[int][]itemset.Itemset{}
	maxLen := 0
	for _, s := range candidates {
		byLen[s.Len()] = append(byLen[s.Len()], s)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	for k := 1; k <= maxLen; k++ {
		cands := byLen[k]
		if len(cands) == 0 {
			continue
		}
		counts, _ := hashtree.Build(cands).CountSupports(db.Transactions)
		var lk []SetCount
		for i, c := range counts {
			if c >= minCount {
				lk = append(lk, SetCount{Set: cands[i], Count: c})
			}
		}
		if len(lk) > 0 {
			res.Levels = append(res.Levels, NewLevel(k, lk))
		}
	}
	// Downward closure guarantees no gaps: a frequent k-itemset implies
	// frequent subsets at every smaller length, so Levels is dense.
	return res, nil
}
