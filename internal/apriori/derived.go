package apriori

// Derived itemset families. Both are standard condensed representations of
// a mining result:
//
//   - a frequent itemset is MAXIMAL if no proper superset is frequent;
//   - a frequent itemset is CLOSED if no proper superset has the same
//     support (equivalently, it is the intersection of all transactions
//     containing it).
//
// Maximal sets determine which itemsets are frequent; closed sets determine
// the exact support of every frequent itemset. Both follow from the levels
// of a Result by checking direct supersets only: support never increases
// when an itemset grows, so a superset with equal support at any distance
// implies a chain of direct supersets with equal support.

// Maximal returns the maximal frequent itemsets, sorted level-wise then
// lexicographically.
func (r *Result) Maximal() []SetCount {
	return r.filterByDirectSupersets(func(SetCount, SetCount) bool {
		// Any frequent direct superset disqualifies.
		return true
	})
}

// Closed returns the closed frequent itemsets, sorted level-wise then
// lexicographically.
func (r *Result) Closed() []SetCount {
	return r.filterByDirectSupersets(func(sub, super SetCount) bool {
		return sub.Count == super.Count
	})
}

// filterByDirectSupersets keeps itemsets for which no frequent direct
// superset satisfies disqualifies(sub, super).
func (r *Result) filterByDirectSupersets(disqualifies func(sub, super SetCount) bool) []SetCount {
	var out []SetCount
	for k := 1; k <= r.MaxK(); k++ {
		level := r.Frequent(k)
		if len(level) == 0 {
			continue
		}
		excluded := make(map[string]bool)
		for _, super := range r.Frequent(k + 1) {
			for i := 0; i < super.Set.Len(); i++ {
				sub := super.Set.Without(i)
				if excluded[sub.Key()] {
					continue
				}
				if c, ok := r.Support(sub); ok && disqualifies(SetCount{Set: sub, Count: c}, super) {
					excluded[sub.Key()] = true
				}
			}
		}
		for _, sc := range level {
			if !excluded[sc.Set.Key()] {
				out = append(out, sc)
			}
		}
	}
	return out
}
