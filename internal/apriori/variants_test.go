package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/itemset"
)

func randomDB(rng *rand.Rand) *itemset.DB {
	rows := make([][]itemset.Item, rng.Intn(40)+10)
	for i := range rows {
		n := rng.Intn(6) + 1
		for j := 0; j < n; j++ {
			rows[i] = append(rows[i], itemset.Item(rng.Intn(10)))
		}
	}
	return itemset.NewDB("rand", rows)
}

func TestMineDHPClassic(t *testing.T) {
	want, err := Mine(classicDB(), 2.0/9.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineDHP(classicDB(), 2.0/9.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("DHP disagrees:\n got %v\nwant %v", got.All(), want.All())
	}
}

func TestMineDHPTinyTableStillExact(t *testing.T) {
	// With very few buckets almost nothing is pruned, but collisions only
	// ever over-count, so results must stay exact.
	want, _ := Mine(classicDB(), 2.0/9.0, Options{})
	got, err := MineDHP(classicDB(), 2.0/9.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("DHP with 2 buckets lost results")
	}
}

func TestMineDHPEmptyDB(t *testing.T) {
	if _, err := MineDHP(itemset.NewDB("e", nil), 0.5, 0); err == nil {
		t.Fatal("empty DB accepted")
	}
}

// Property: DHP is exact on random databases across bucket counts.
func TestMineDHPExactProperty(t *testing.T) {
	f := func(seed int64, buckets16 uint16, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.1 + float64(sup8%8)/10.0
		db := randomDB(rng)
		want, err := Mine(db, sup, Options{})
		if err != nil {
			return false
		}
		got, err := MineDHP(db, sup, int(buckets16%512)+1)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMinePartitionClassic(t *testing.T) {
	want, _ := Mine(classicDB(), 2.0/9.0, Options{})
	for _, parts := range []int{1, 2, 3, 9, 100} {
		got, err := MinePartition(classicDB(), 2.0/9.0, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !got.Equal(want) {
			t.Fatalf("parts=%d: Partition disagrees", parts)
		}
	}
}

func TestMinePartitionEmptyDB(t *testing.T) {
	if _, err := MinePartition(itemset.NewDB("e", nil), 0.5, 2); err == nil {
		t.Fatal("empty DB accepted")
	}
}

// Property: Partition is exact for any partition count.
func TestMinePartitionExactProperty(t *testing.T) {
	f := func(seed int64, parts8, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.1 + float64(sup8%8)/10.0
		parts := int(parts8%8) + 1
		db := randomDB(rng)
		want, err := Mine(db, sup, Options{})
		if err != nil {
			return false
		}
		got, err := MinePartition(db, sup, parts)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMineToivonenClassic(t *testing.T) {
	want, _ := Mine(classicDB(), 2.0/9.0, Options{})
	got, err := MineToivonen(classicDB(), 2.0/9.0, ToivonenOptions{
		SampleFraction: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("Toivonen disagrees:\n got %v\nwant %v", got.All(), want.All())
	}
}

func TestMineToivonenInvalid(t *testing.T) {
	if _, err := MineToivonen(itemset.NewDB("e", nil), 0.5, ToivonenOptions{}); err == nil {
		t.Fatal("empty DB accepted")
	}
	if _, err := MineToivonen(classicDB(), 0, ToivonenOptions{}); err == nil {
		t.Fatal("zero support accepted")
	}
}

// Property: Toivonen is exact regardless of seed, fraction and slack —
// whether via a clean sample verification or the full-mine fallback.
func TestMineToivonenExactProperty(t *testing.T) {
	f := func(seed int64, frac8, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.15 + float64(sup8%7)/10.0
		frac := 0.1 + float64(frac8%8)/10.0
		db := randomDB(rng)
		want, err := Mine(db, sup, Options{})
		if err != nil {
			return false
		}
		got, err := MineToivonen(db, sup, ToivonenOptions{
			SampleFraction: frac, Seed: seed,
		})
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMineAprioriTidClassic(t *testing.T) {
	want, _ := Mine(classicDB(), 2.0/9.0, Options{})
	got, err := MineAprioriTid(classicDB(), 2.0/9.0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("AprioriTid disagrees:\n got %v\nwant %v", got.All(), want.All())
	}
}

func TestMineAprioriTidEmptyDB(t *testing.T) {
	if _, err := MineAprioriTid(itemset.NewDB("e", nil), 0.5); err == nil {
		t.Fatal("empty DB accepted")
	}
}

func TestMineAprioriTidNothingFrequent(t *testing.T) {
	db := itemset.NewDB("sparse", [][]itemset.Item{{1}, {2}, {3}})
	got, err := MineAprioriTid(db, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFrequent() != 0 {
		t.Fatalf("frequent = %d", got.NumFrequent())
	}
}

// Property: AprioriTid is exact on random databases.
func TestMineAprioriTidExactProperty(t *testing.T) {
	f := func(seed int64, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.1 + float64(sup8%8)/10.0
		db := randomDB(rng)
		want, err := Mine(db, sup, Options{})
		if err != nil {
			return false
		}
		got, err := MineAprioriTid(db, sup)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
