package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/itemset"
)

func TestMaximalClassicExample(t *testing.T) {
	res, err := Mine(classicDB(), 2.0/9.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maximal := res.Maximal()
	// Frequent sets: 13 total; maximal are {1,2,3}, {1,2,5}, {2,4}.
	want := map[string]bool{
		itemset.New(1, 2, 3).Key(): true,
		itemset.New(1, 2, 5).Key(): true,
		itemset.New(2, 4).Key():    true,
	}
	if len(maximal) != len(want) {
		t.Fatalf("maximal = %v", maximal)
	}
	for _, sc := range maximal {
		if !want[sc.Set.Key()] {
			t.Errorf("unexpected maximal itemset %v", sc.Set)
		}
	}
}

func TestClosedClassicExample(t *testing.T) {
	res, err := Mine(classicDB(), 2.0/9.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	closed := res.Closed()
	closedKeys := map[string]int{}
	for _, sc := range closed {
		closedKeys[sc.Set.Key()] = sc.Count
	}
	// {5} has support 2, equal to its superset {1,5}... and ultimately
	// {1,2,5}; so {5} is frequent but not closed.
	if _, ok := closedKeys[itemset.New(5).Key()]; ok {
		t.Error("{5} reported closed despite {1 2 5} sharing its support")
	}
	// {2} (support 7) has no superset with support 7: closed.
	if c, ok := closedKeys[itemset.New(2).Key()]; !ok || c != 7 {
		t.Errorf("{2} missing from closed sets (%v)", closedKeys)
	}
	// Every maximal itemset is closed.
	for _, m := range res.Maximal() {
		if _, ok := closedKeys[m.Set.Key()]; !ok {
			t.Errorf("maximal %v not closed", m.Set)
		}
	}
}

func TestDerivedEmptyResult(t *testing.T) {
	r := &Result{}
	if len(r.Maximal()) != 0 || len(r.Closed()) != 0 {
		t.Fatal("empty result produced derived itemsets")
	}
}

// Property: Maximal and Closed agree with their brute-force definitions on
// random databases, and maximal ⊆ closed ⊆ frequent.
func TestDerivedDefinitionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]itemset.Item, rng.Intn(20)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(7)))
			}
		}
		db := itemset.NewDB("rand", rows)
		res, err := Mine(db, 0.25, Options{})
		if err != nil {
			return false
		}
		all := res.All()
		isFrequent := func(key string) bool { _, ok := all[key]; return ok }

		// Brute-force maximal/closed over all frequent sets.
		bruteMaximal := map[string]bool{}
		bruteClosed := map[string]bool{}
		for key, count := range all {
			set, err := itemset.FromKey(key)
			if err != nil {
				return false
			}
			maximal, closed := true, true
			for otherKey, otherCount := range all {
				other, err := itemset.FromKey(otherKey)
				if err != nil {
					return false
				}
				if other.Len() <= set.Len() || !other.ContainsAll(set) {
					continue
				}
				maximal = false
				if otherCount == count {
					closed = false
				}
			}
			if maximal {
				bruteMaximal[key] = true
			}
			if closed {
				bruteClosed[key] = true
			}
		}

		gotMaximal := map[string]bool{}
		for _, sc := range res.Maximal() {
			gotMaximal[sc.Set.Key()] = true
		}
		gotClosed := map[string]bool{}
		for _, sc := range res.Closed() {
			gotClosed[sc.Set.Key()] = true
		}
		if len(gotMaximal) != len(bruteMaximal) || len(gotClosed) != len(bruteClosed) {
			return false
		}
		for k := range bruteMaximal {
			if !gotMaximal[k] {
				return false
			}
		}
		for k := range bruteClosed {
			if !gotClosed[k] || !isFrequent(k) {
				return false
			}
		}
		// maximal ⊆ closed.
		for k := range gotMaximal {
			if !gotClosed[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
