package apriori

import (
	"fmt"

	"yafim/internal/hashtree"
	"yafim/internal/itemset"
	"yafim/internal/trie"
)

// CountingStrategy selects how the sequential miner counts candidate
// supports during each pass.
type CountingStrategy int

const (
	// HashTreeCounting stores candidates in a hash tree and enumerates the
	// candidates contained in each transaction (the paper's structure).
	HashTreeCounting CountingStrategy = iota
	// BruteForceCounting tests every candidate against every transaction;
	// the ablation baseline for the hash tree.
	BruteForceCounting
	// BitmapCounting intersects vertical item bitmaps per candidate — the
	// fastest strategy for dense datasets such as Chess.
	BitmapCounting
	// TrieCounting stores candidates in a prefix trie instead of the hash
	// tree — the design-space alternative benchmarked in the ablations.
	TrieCounting
)

// Options configure the sequential miner.
type Options struct {
	Counting CountingStrategy
	// MaxK stops mining after frequent itemsets of this size (0 = unbounded).
	MaxK int
	// Interrupt, when non-nil, is called before every pass; a non-nil return
	// aborts mining with that error. The facade uses it to honour context
	// cancellation and deadlines on the single-machine engine, which has no
	// task boundaries of its own.
	Interrupt func() error
}

// Mine runs the classic sequential Apriori algorithm (Algorithm 1 of the
// paper) over db at the given relative minimum support and returns every
// frequent itemset with its support count. It is the correctness oracle for
// the parallel implementations and the single-core baseline for speedup
// numbers.
func Mine(db *itemset.DB, minSupport float64, opts Options) (*Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("apriori: empty database %q", db.Name)
	}
	minCount := db.MinSupportCount(minSupport)
	res := &Result{MinSupport: minCount}
	if opts.Interrupt != nil {
		if err := opts.Interrupt(); err != nil {
			return nil, fmt.Errorf("apriori: %w", err)
		}
	}

	var vertical *itemset.VerticalBitmap
	if opts.Counting == BitmapCounting {
		vertical = db.Vertical()
	}

	l1 := frequentItems(db, minCount)
	if len(l1) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, NewLevel(1, l1))

	prev := setsOf(l1)
	for k := 2; opts.MaxK == 0 || k <= opts.MaxK; k++ {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				return nil, fmt.Errorf("apriori: pass %d: %w", k, err)
			}
		}
		cands, err := Gen(prev)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			break
		}
		var counts []int
		switch opts.Counting {
		case HashTreeCounting:
			counts, _ = hashtree.Build(cands).CountSupports(db.Transactions)
		case BruteForceCounting:
			counts = bruteForceCount(cands, db.Transactions)
		case BitmapCounting:
			counts = make([]int, len(cands))
			for i, c := range cands {
				counts[i] = vertical.Support(c)
			}
		case TrieCounting:
			counts, _ = trie.Build(cands).CountSupports(db.Transactions)
		default:
			return nil, fmt.Errorf("apriori: unknown counting strategy %d", opts.Counting)
		}
		var lk []SetCount
		for i, c := range counts {
			if c >= minCount {
				lk = append(lk, SetCount{Set: cands[i], Count: c})
			}
		}
		if len(lk) == 0 {
			break
		}
		res.Levels = append(res.Levels, NewLevel(k, lk))
		prev = setsOf(lk)
	}
	return res, nil
}

// frequentItems computes L_1 with a dense counting array.
func frequentItems(db *itemset.DB, minCount int) []SetCount {
	counts := make([]int, db.NumItems())
	for _, tr := range db.Transactions {
		for _, it := range tr.Items {
			counts[it]++
		}
	}
	var out []SetCount
	for it, c := range counts {
		if c >= minCount {
			out = append(out, SetCount{Set: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	return out
}

func setsOf(scs []SetCount) []itemset.Itemset {
	out := make([]itemset.Itemset, len(scs))
	for i, sc := range scs {
		out[i] = sc.Set
	}
	return out
}

// bruteForceCount is the no-hash-tree counting baseline.
func bruteForceCount(cands []itemset.Itemset, txs []itemset.Transaction) []int {
	counts := make([]int, len(cands))
	for _, tr := range txs {
		for i, c := range cands {
			if tr.Items.ContainsAll(c) {
				counts[i]++
			}
		}
	}
	return counts
}
