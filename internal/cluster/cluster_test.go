package cluster

import (
	"testing"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{PaperHadoop(), PaperSpark(), Local()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPaperClusterShape(t *testing.T) {
	h := PaperHadoop()
	if h.Nodes != 12 || h.CoresPerNode != 8 || h.TotalCores() != 96 {
		t.Fatalf("paper cluster shape wrong: %+v", h)
	}
	s := PaperSpark()
	if s.Nodes != 12 || s.TotalCores() != 96 {
		t.Fatalf("spark cluster shape wrong: %+v", s)
	}
	if s.JobStartup >= h.JobStartup {
		t.Fatalf("Spark job startup (%v) should be far below Hadoop's (%v)", s.JobStartup, h.JobStartup)
	}
	if h.JobStartup < 10*time.Second {
		t.Fatalf("Hadoop job startup %v implausibly small for the era", h.JobStartup)
	}
}

func TestWithNodes(t *testing.T) {
	c := PaperSpark().WithNodes(4)
	if c.Nodes != 4 || c.TotalCores() != 32 {
		t.Fatalf("WithNodes: %+v", c)
	}
	if PaperSpark().Nodes != 12 {
		t.Fatal("WithNodes mutated the preset")
	}
}

func TestWithTotalCores(t *testing.T) {
	c := PaperSpark().WithTotalCores(48)
	if c.Nodes != 6 || c.TotalCores() != 48 {
		t.Fatalf("WithTotalCores: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for indivisible core count")
		}
	}()
	PaperSpark().WithTotalCores(50)
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1},
		{Nodes: 1, CoresPerNode: 1},
		{Nodes: 1, CoresPerNode: 1, CPUOpsPerSec: 1},
		{Nodes: 1, CoresPerNode: 1, CPUOpsPerSec: 1, DiskBWPerSec: 1},
		{Nodes: 1, CoresPerNode: 1, CPUOpsPerSec: 1, DiskBWPerSec: 1, NetBWPerSec: 1, TaskLaunch: -1},
		{Nodes: -2, CoresPerNode: 1, CPUOpsPerSec: 1, DiskBWPerSec: 1, NetBWPerSec: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, cfg)
		}
	}
}
