// Package cluster describes the simulated hardware and runtime profiles on
// which the execution engines are timed. A Config captures node count,
// per-node cores, per-core compute rate, per-node disk and network
// bandwidth, and the fixed overheads of launching tasks, stages and jobs.
//
// The presets reproduce the paper's evaluation environment: a 12-node
// cluster of dual quad-core 2.4 GHz Xeons (8 cores and 24 GB per node),
// running either a Hadoop-1.x-style MapReduce runtime (heavy per-job JVM and
// JobTracker startup, per-task JVM launch) or a Spark-0.7-style runtime
// (one-off application startup, lightweight per-stage scheduling).
package cluster

import (
	"fmt"
	"time"
)

// Config is a complete description of a simulated cluster plus the runtime
// profile (overheads) of the framework running on it.
type Config struct {
	Name string

	// Hardware.
	Nodes        int     // worker nodes
	CoresPerNode int     // usable cores per node
	CPUOpsPerSec float64 // abstract compute ops per second per core
	DiskBWPerSec float64 // bytes/second of disk bandwidth per node
	NetBWPerSec  float64 // bytes/second of network bandwidth per node

	// Runtime profile.
	TaskLaunch    time.Duration // fixed cost to launch one task
	StageOverhead time.Duration // fixed cost to schedule one stage
	JobStartup    time.Duration // fixed cost to start one job
}

// Validate reports a descriptive error if the configuration is unusable.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %q: Nodes must be positive, got %d", c.Name, c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster %q: CoresPerNode must be positive, got %d", c.Name, c.CoresPerNode)
	case c.CPUOpsPerSec <= 0:
		return fmt.Errorf("cluster %q: CPUOpsPerSec must be positive, got %g", c.Name, c.CPUOpsPerSec)
	case c.DiskBWPerSec <= 0:
		return fmt.Errorf("cluster %q: DiskBWPerSec must be positive, got %g", c.Name, c.DiskBWPerSec)
	case c.NetBWPerSec <= 0:
		return fmt.Errorf("cluster %q: NetBWPerSec must be positive, got %g", c.Name, c.NetBWPerSec)
	case c.TaskLaunch < 0 || c.StageOverhead < 0 || c.JobStartup < 0:
		return fmt.Errorf("cluster %q: overheads must be non-negative", c.Name)
	}
	return nil
}

// TotalCores returns the number of virtual cores across the cluster.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

// WithNodes returns a copy of c resized to n nodes, used by the Fig. 5
// node-scalability sweep.
func (c Config) WithNodes(n int) Config {
	out := c
	out.Nodes = n
	out.Name = fmt.Sprintf("%s/%dn", c.Name, n)
	return out
}

// WithTotalCores returns a copy of c resized so that the cluster exposes
// exactly total cores, keeping CoresPerNode fixed. total must be a multiple
// of CoresPerNode.
func (c Config) WithTotalCores(total int) Config {
	if c.CoresPerNode <= 0 || total%c.CoresPerNode != 0 {
		panic(fmt.Sprintf("cluster: %d cores not divisible into %d-core nodes", total, c.CoresPerNode))
	}
	return c.WithNodes(total / c.CoresPerNode)
}

// Hardware constants for the paper's testbed. The compute rates are an
// abstract calibration: one "op" corresponds to roughly one item touched or
// candidate-tree edge followed. The two runtimes execute the same logical
// ops at very different speeds — Spark walks compact in-memory structures
// (~4µs per op including JVM and scheduling overheads) while Hadoop
// streaming re-parses text records, serialises Writables and spills through
// local disk on every touch (~40µs per op). These per-op costs, together
// with the per-job startup gap, land total mining times in the ranges the
// paper reports and reproduce the shapes of its Figures 3-6.
const (
	sparkCPUOpsPerSec  = 250e3
	hadoopCPUOpsPerSec = 25e3
	paperDiskBW        = 80e6  // ~80 MB/s per-node spinning disk, 2012 era
	paperNetBW         = 110e6 // ~gigabit ethernet per node
)

// PaperHadoop returns the paper's 12-node cluster running a Hadoop-1.0.4
// style MapReduce runtime: every job pays JobTracker setup plus JVM spawns,
// and every task launches its own JVM.
func PaperHadoop() Config {
	return Config{
		Name:          "hadoop-12n",
		Nodes:         12,
		CoresPerNode:  8,
		CPUOpsPerSec:  hadoopCPUOpsPerSec,
		DiskBWPerSec:  paperDiskBW,
		NetBWPerSec:   paperNetBW,
		TaskLaunch:    300 * time.Millisecond,
		StageOverhead: 1 * time.Second,
		JobStartup:    15 * time.Second,
	}
}

// PaperSpark returns the same hardware running a Spark-0.7.3 style runtime:
// the application's executors are already resident, so a job is only a DAG
// of cheaply scheduled stages with millisecond task dispatch.
func PaperSpark() Config {
	return Config{
		Name:          "spark-12n",
		Nodes:         12,
		CoresPerNode:  8,
		CPUOpsPerSec:  sparkCPUOpsPerSec,
		DiskBWPerSec:  paperDiskBW,
		NetBWPerSec:   paperNetBW,
		TaskLaunch:    4 * time.Millisecond,
		StageOverhead: 300 * time.Millisecond,
		JobStartup:    300 * time.Millisecond,
	}
}

// Local returns a small configuration convenient for unit tests and the
// quickstart example: 2 nodes x 2 cores with negligible overheads.
func Local() Config {
	return Config{
		Name:          "local-2n",
		Nodes:         2,
		CoresPerNode:  2,
		CPUOpsPerSec:  sparkCPUOpsPerSec,
		DiskBWPerSec:  paperDiskBW,
		NetBWPerSec:   paperNetBW,
		TaskLaunch:    time.Millisecond,
		StageOverhead: 2 * time.Millisecond,
		JobStartup:    5 * time.Millisecond,
	}
}
