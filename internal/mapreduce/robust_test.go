package mapreduce

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"yafim/internal/cluster"
	"yafim/internal/exec"
	"yafim/internal/leaktest"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// panicMapper panics while mapping: always when limit == 0, otherwise only
// for the first `limit` calls (transient mode).
type panicMapper struct {
	limit *int64 // nil = always panic
}

func (m *panicMapper) Setup(CacheFiles, *sim.Ledger) error { return nil }
func (m *panicMapper) Cleanup(Emit, *sim.Ledger) error     { return nil }

func (m *panicMapper) Map(_ int64, line string, emit Emit, _ *sim.Ledger) error {
	if m.limit == nil || atomic.AddInt64(m.limit, -1) >= 0 {
		panic("mapper exploded")
	}
	for _, w := range strings.Fields(line) {
		emit(w, "1")
	}
	return nil
}

func newRobustRunner(t *testing.T, rec *obs.Recorder) *Runner {
	t.Helper()
	fs := setupFS(t, 32, corpus)
	runner, err := NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	runner.SetRecorder(rec)
	return runner
}

// TestRunContextPreCanceled verifies a canceled context rejects the job
// before any stage runs.
func TestRunContextPreCanceled(t *testing.T) {
	defer leaktest.Check(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := obs.New()
	runner := newRobustRunner(t, rec)

	_, _, err := runner.RunContext(ctx, wordCountJob(false))
	if !errors.Is(err, exec.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if rec.Counters().Cancellations == 0 {
		t.Error("cancellation not counted")
	}
}

// TestRunContextCancelMidJob cancels from inside a map task: the job dies
// with a cancellation StageError naming the mapreduce engine, untried.
func TestRunContextCancelMidJob(t *testing.T) {
	defer leaktest.Check(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.New()
	runner := newRobustRunner(t, rec)

	job := wordCountJob(false)
	job.NewMapper = func() Mapper {
		return &cancelingMapper{cancel: cancel, ctx: ctx}
	}
	_, _, err := runner.RunContext(ctx, job)
	if !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var se *exec.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *exec.StageError", err)
	}
	if se.Engine != "mapreduce" || se.Attempts != 0 {
		t.Errorf("stage error engine=%s attempts=%d, want mapreduce/0", se.Engine, se.Attempts)
	}
	if rec.Counters().TaskRetries != 0 {
		t.Error("cancellation was retried")
	}
}

// cancelingMapper cancels the shared context on its first record and
// returns the cancellation error, as a cooperative closure should.
type cancelingMapper struct {
	cancel context.CancelFunc
	ctx    context.Context
}

func (m *cancelingMapper) Setup(CacheFiles, *sim.Ledger) error { return nil }
func (m *cancelingMapper) Cleanup(Emit, *sim.Ledger) error     { return nil }

func (m *cancelingMapper) Map(_ int64, _ string, _ Emit, _ *sim.Ledger) error {
	m.cancel()
	return exec.ContextErr(m.ctx)
}

// TestMapperPanicIsolated verifies a deterministic mapper panic becomes a
// typed *exec.TaskError after the retry budget instead of crashing.
func TestMapperPanicIsolated(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	runner := newRobustRunner(t, rec)

	job := wordCountJob(false)
	job.NewMapper = func() Mapper { return &panicMapper{} }
	_, _, err := runner.Run(job)
	if err == nil {
		t.Fatal("panicking job succeeded")
	}
	var te *exec.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a wrapped *exec.TaskError", err)
	}
	if !te.Panicked() || te.PanicValue != "mapper exploded" {
		t.Errorf("panic value = %v, want \"mapper exploded\"", te.PanicValue)
	}
	if te.Engine != "mapreduce" || te.Attempt != maxTaskAttempts {
		t.Errorf("task identity = %s attempt %d, want mapreduce attempt %d",
			te.Engine, te.Attempt, maxTaskAttempts)
	}
	if rec.Counters().TaskPanics == 0 {
		t.Error("panics not counted")
	}
}

// TestMapperTransientPanicRetried verifies a single panic is retried away
// like any transient fault and the job still produces correct output.
func TestMapperTransientPanicRetried(t *testing.T) {
	defer leaktest.Check(t)()
	rec := obs.New()
	runner := newRobustRunner(t, rec)

	var budget int64 = 1
	job := wordCountJob(false)
	job.NewMapper = func() Mapper { return &panicMapper{limit: &budget} }
	_, _, err := runner.Run(job)
	if err != nil {
		t.Fatalf("transient panic not recovered: %v", err)
	}
	c := rec.Counters()
	if c.TaskPanics != 1 {
		t.Errorf("TaskPanics = %d, want 1", c.TaskPanics)
	}
	if c.TaskRetries == 0 {
		t.Error("retry after transient panic not counted")
	}
}
