package mapreduce

import (
	"fmt"
	"strings"

	"yafim/internal/dfs"
	"yafim/internal/sim"
)

// KV is one parsed output record of a job.
type KV struct {
	Key   string
	Value string
}

// ReadOutput reads and parses every part file a job committed under dir,
// in part order. The ledger (may be nil) is charged for the DFS reads; the
// driver of an iterative algorithm passes one to account for re-reading
// results between jobs.
func ReadOutput(fs *dfs.FileSystem, dir string, led *sim.Ledger) ([]KV, error) {
	parts := fs.List(dir + "/part-r-")
	if len(parts) == 0 {
		return nil, fmt.Errorf("mapreduce: no output parts under %s", dir)
	}
	var out []KV
	for _, p := range parts {
		data, err := fs.ReadFile(p, led)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			k, v, ok := strings.Cut(line, "\t")
			if !ok {
				return nil, fmt.Errorf("mapreduce: %s: malformed record %q", p, line)
			}
			out = append(out, KV{Key: k, Value: v})
		}
	}
	return out, nil
}

// CleanOutput deletes a previous run's part files under dir, mirroring the
// manual cleanup Hadoop requires before reusing an output directory.
func CleanOutput(fs *dfs.FileSystem, dir string) {
	for _, p := range fs.List(dir + "/part-r-") {
		// Deleting a concurrently removed file is harmless here.
		_ = fs.Delete(p)
	}
}
