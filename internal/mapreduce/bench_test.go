package mapreduce

import (
	"strings"
	"testing"

	"yafim/internal/cluster"
	"yafim/internal/dfs"
)

func BenchmarkWordCountJob(b *testing.B) {
	fs := dfs.New(4, dfs.WithBlockSize(1<<14), dfs.WithReplication(2))
	if err := fs.WriteFile("/in/data.txt", []byte(strings.Repeat(corpus, 200)), nil); err != nil {
		b.Fatal(err)
	}
	r, err := NewRunner(fs, cluster.Local())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CleanOutput(fs, "/out/wc")
		if _, _, err := r.Run(wordCountJob(true)); err != nil {
			b.Fatal(err)
		}
	}
}
