package mapreduce

import (
	"time"

	"yafim/internal/chaos"
	"yafim/internal/sim"
)

// SetChaos attaches a seed-driven fault plan to the runner: task attempts
// fail with the plan's probability, reducers lose shuffle fetches (forcing
// full map-task re-execution — MapReduce has no lineage cache), straggler
// nodes run slow, block reads fail on the backing DFS, and the planned node
// crash fires at its virtual time, destroying the node's map output and DFS
// replicas. Mitigation defaults to chaos.Defaults() — speculative execution,
// failure-count blacklisting and DFS re-replication — override it with
// SetResilience. Attach before running jobs.
func (r *Runner) SetChaos(plan *chaos.Plan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	r.plan = plan
	if !r.resilSet {
		r.resil = chaos.Defaults()
	}
	r.health = chaos.NewNodeHealth(r.cfg.Nodes, r.resil)
	if plan != nil {
		r.fs.SetChaos(plan)
	}
	return nil
}

// SetResilience overrides the mitigation configuration used when a chaos
// plan is attached. The zero Resilience disables speculation, blacklisting
// and re-replication while keeping fault injection active. Attach before
// SetChaos.
func (r *Runner) SetResilience(res chaos.Resilience) {
	r.resil = res
	r.resilSet = true
	if r.health != nil {
		r.health = chaos.NewNodeHealth(r.cfg.Nodes, res)
	}
}

// ChaosPlan returns the attached fault plan (nil when chaos is disabled).
func (r *Runner) ChaosPlan() *chaos.Plan { return r.plan }

// virtualNow returns the runner's position on the virtual timeline: every
// finished job plus the open job's overhead and completed stages. It is
// stable for the duration of one stage, which keeps crash and blacklist
// decisions deterministic under concurrent task execution.
func (r *Runner) virtualNow() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d time.Duration
	for _, rep := range r.reports {
		d += rep.Duration()
	}
	if r.current != nil {
		d += r.current.Overhead
		for _, s := range r.current.Stages {
			d += s.Makespan
		}
	}
	return d
}

// maybeCrash fires the plan's node crash once the virtual clock passes its
// time: the node is permanently excluded from scheduling and its DFS block
// replicas disappear (re-replicated when mitigation says so, with the repair
// traffic charged to the open job's overhead). Returns the dead node when
// the crash fired at this boundary, so Run can re-execute the map tasks
// whose output died with it. Called at stage boundaries from the Run
// goroutine only.
func (r *Runner) maybeCrash(report *sim.JobReport) (int, bool) {
	plan := r.plan
	if plan == nil || plan.Crash == nil || r.crashDone {
		return -1, false
	}
	node := plan.Crash.Node
	if node < 0 || node >= r.cfg.Nodes || r.virtualNow() < plan.Crash.At {
		return -1, false
	}
	r.crashDone = true
	r.health.MarkDead(node)
	_, repaired := r.fs.KillNode(node, r.resil.ReReplicate)
	if repaired > 0 {
		secs := float64(repaired) / r.cfg.NetBWPerSec
		report.Overhead += time.Duration(secs * float64(time.Second))
	}
	return node, true
}

// rerunLostMaps builds the recovery stage for a node crash between the map
// and reduce stages: every map task the schedule had placed on the dead node
// re-runs elsewhere, each paying its full recorded cost plus a fresh task
// launch (the JVM respawn that makes this so much more expensive for
// MapReduce than Spark's lineage recompute). The in-memory outputs are
// reused byte-identically; mapper closures are NOT re-executed, so record
// counters stay exact.
func (r *Runner) rerunLostMaps(job Job, node int, costs []sim.Cost,
	placements []sim.TaskPlacement) (sim.StageReport, bool) {
	var placed []sim.Placed
	for i, pl := range placements {
		if pl.Node == node {
			placed = append(placed, sim.Placed{Cost: costs[i], Relaunches: 1})
		}
	}
	if len(placed) == 0 {
		return sim.StageReport{}, false
	}
	rep, pls, spec := sim.RunStageResilient(r.cfg, job.Name+":map-recovery", placed, r.stageOpts())
	attempts := make([]int, len(placed))
	for i := range attempts {
		attempts[i] = 1
	}
	r.recordStage(rep, placed, pls, attempts, nil)
	r.rec.AddSpeculation(spec.Launched, spec.Won)
	r.rec.AddStageRerun()
	return rep, true
}

// noteFailures attributes a stage's failed task attempts to nodes for
// blacklisting, in deterministic (task, attempt) order after all tasks have
// finished. Failed attempts of any cause count — injected or manual — since
// a real scheduler cannot tell them apart either.
func (r *Runner) noteFailures(stage string, attempts []int) {
	if r.health == nil {
		return
	}
	now := r.virtualNow()
	var listings int64
	for t, a := range attempts {
		for attempt := 1; attempt < a; attempt++ {
			node := r.plan.FailureNode(stage, t, attempt, r.cfg.Nodes)
			if r.health.RecordFailure(node, now) {
				listings++
			}
		}
	}
	r.rec.AddBlacklistings(listings)
}

// stageOpts assembles the resilience options for the next stage's schedule:
// the plan's straggler factors, the currently blacklisted or dead nodes, and
// the speculation policy.
func (r *Runner) stageOpts() sim.StageOpts {
	if r.plan == nil {
		return sim.StageOpts{}
	}
	opts := sim.StageOpts{
		NodeFactor: r.plan.NodeFactors(r.cfg.Nodes),
		Exclude:    r.health.Excluded(r.virtualNow()),
	}
	if r.resil.SpecThreshold > 0 {
		opts.Spec = &sim.SpecPolicy{
			Threshold: r.resil.SpecThreshold,
			MinTasks:  r.resil.SpecMinTasks,
		}
	}
	return opts
}
