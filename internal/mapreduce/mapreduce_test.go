package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/sim"
)

// wordCountMapper is the canonical example job used by the engine tests.
type wordCountMapper struct{ failOn string }

func (m *wordCountMapper) Setup(CacheFiles, *sim.Ledger) error { return nil }
func (m *wordCountMapper) Cleanup(Emit, *sim.Ledger) error     { return nil }

func (m *wordCountMapper) Map(_ int64, line string, emit Emit, _ *sim.Ledger) error {
	for _, w := range strings.Fields(line) {
		if w == m.failOn {
			return fmt.Errorf("poisoned word %q", w)
		}
		emit(w, "1")
	}
	return nil
}

type sumReducer struct{}

func (sumReducer) Setup(CacheFiles, *sim.Ledger) error { return nil }

func (sumReducer) Reduce(key string, values []string, emit Emit, _ *sim.Ledger) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
}

func setupFS(t *testing.T, blockSize int64, content string) *dfs.FileSystem {
	t.Helper()
	fs := dfs.New(4, dfs.WithBlockSize(blockSize), dfs.WithReplication(2))
	if err := fs.WriteFile("/in/data.txt", []byte(content), nil); err != nil {
		t.Fatal(err)
	}
	return fs
}

func wordCountJob(combiner bool) Job {
	j := Job{
		Name:        "wordcount",
		Input:       []string{"/in/data.txt"},
		OutputDir:   "/out/wc",
		NewMapper:   func() Mapper { return &wordCountMapper{} },
		NewReducer:  func() Reducer { return sumReducer{} },
		NumReducers: 3,
	}
	if combiner {
		j.NewCombiner = func() Reducer { return sumReducer{} }
	}
	return j
}

const corpus = "the quick brown fox\njumps over the lazy dog\nthe fox again\n"

func wantCounts() map[string]string {
	return map[string]string{
		"the": "3", "fox": "2", "quick": "1", "brown": "1", "jumps": "1",
		"over": "1", "lazy": "1", "dog": "1", "again": "1",
	}
}

func TestWordCount(t *testing.T) {
	for _, combiner := range []bool{false, true} {
		t.Run(fmt.Sprintf("combiner=%v", combiner), func(t *testing.T) {
			fs := setupFS(t, 16, corpus) // tiny blocks: several map tasks
			r, err := NewRunner(fs, cluster.Local())
			if err != nil {
				t.Fatal(err)
			}
			rep, counters, err := r.Run(wordCountJob(combiner))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReadOutput(fs, "/out/wc", nil)
			if err != nil {
				t.Fatal(err)
			}
			gm := map[string]string{}
			for _, kv := range got {
				if _, dup := gm[kv.Key]; dup {
					t.Fatalf("key %q appears in two parts", kv.Key)
				}
				gm[kv.Key] = kv.Value
			}
			want := wantCounts()
			if len(gm) != len(want) {
				t.Fatalf("got %v", gm)
			}
			for k, v := range want {
				if gm[k] != v {
					t.Errorf("count[%q] = %q, want %q", k, gm[k], v)
				}
			}
			if counters.MapInputRecords != 3 {
				t.Errorf("MapInputRecords = %d", counters.MapInputRecords)
			}
			if counters.MapOutputRecords != 12 {
				t.Errorf("MapOutputRecords = %d", counters.MapOutputRecords)
			}
			if counters.ReduceInputGroups != 9 || counters.ReduceOutputRecords != 9 {
				t.Errorf("reduce counters = %+v", counters)
			}
			if combiner && counters.CombineOutputRecs > counters.MapOutputRecords {
				// With 16-byte splits each task sees distinct words, so the
				// combiner may not shrink anything, but must never grow it.
				t.Errorf("combiner grew output: %+v", counters)
			}
			if len(rep.Stages) != 2 {
				t.Fatalf("stages = %d", len(rep.Stages))
			}
			if rep.Overhead < r.Config().JobStartup {
				t.Errorf("job overhead %v below startup", rep.Overhead)
			}
		})
	}
}

func TestCombinerReducesShuffleBytes(t *testing.T) {
	run := func(combiner bool) sim.Cost {
		fs := setupFS(t, 1024, strings.Repeat(corpus, 20))
		r, err := NewRunner(fs, cluster.Local())
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := r.Run(wordCountJob(combiner))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stages[1].Total // reduce stage: shuffle fetch costs
	}
	plain := run(false)
	combined := run(true)
	if combined.Net >= plain.Net {
		t.Fatalf("combiner did not cut shuffle traffic: %d vs %d", combined.Net, plain.Net)
	}
}

func TestJobChargesInputAndOutputIO(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	r, err := NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := r.Run(wordCountJob(false))
	if err != nil {
		t.Fatal(err)
	}
	mapCost := rep.Stages[0].Total
	if mapCost.DiskRead < int64(len(corpus)) {
		t.Errorf("map stage read %d bytes, want >= %d", mapCost.DiskRead, len(corpus))
	}
	if mapCost.DiskWrite == 0 {
		t.Error("map spill not charged")
	}
	redCost := rep.Stages[1].Total
	// Output commit pays replication: 2x disk write plus 1x network.
	if redCost.DiskWrite == 0 || redCost.Net == 0 {
		t.Errorf("reduce commit costs missing: %+v", redCost)
	}
}

func TestDistributedCache(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	payload := strings.Repeat("z", 1000)
	if err := fs.WriteFile("/cache/side", []byte(payload), nil); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	var sawCache string
	job := wordCountJob(false)
	job.CacheFiles = []string{"/cache/side"}
	job.NewMapper = func() Mapper { return &cacheCheckMapper{saw: &sawCache} }
	rep, _, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if sawCache != payload {
		t.Fatalf("mapper saw %d cache bytes", len(sawCache))
	}
	plain, _, err := NewRunnerMust(t, cluster.Local(), fs).Run(wordCountJob(false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead <= plain.Overhead {
		t.Fatalf("cache localisation time missing: %v vs %v", rep.Overhead, plain.Overhead)
	}
}

type cacheCheckMapper struct{ saw *string }

func (m *cacheCheckMapper) Setup(c CacheFiles, _ *sim.Ledger) error {
	*m.saw = string(c["/cache/side"])
	return nil
}

func (m *cacheCheckMapper) Cleanup(Emit, *sim.Ledger) error { return nil }

func (m *cacheCheckMapper) Map(_ int64, line string, emit Emit, _ *sim.Ledger) error {
	for _, w := range strings.Fields(line) {
		emit(w, "1")
	}
	return nil
}

func NewRunnerMust(t *testing.T, cfg cluster.Config, fs *dfs.FileSystem) *Runner {
	t.Helper()
	r, err := NewRunner(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMapperErrorFailsJob(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	r := NewRunnerMust(t, cluster.Local(), fs)
	job := wordCountJob(false)
	job.NewMapper = func() Mapper { return &wordCountMapper{failOn: "lazy"} }
	if _, _, err := r.Run(job); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("err = %v", err)
	}
}

type badReducer struct{}

func (badReducer) Setup(CacheFiles, *sim.Ledger) error { return nil }
func (badReducer) Reduce(key string, _ []string, _ Emit, _ *sim.Ledger) error {
	if key == "fox" {
		return errors.New("fox rejected")
	}
	return nil
}

func TestReducerErrorFailsJob(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	r := NewRunnerMust(t, cluster.Local(), fs)
	job := wordCountJob(false)
	job.NewReducer = func() Reducer { return badReducer{} }
	if _, _, err := r.Run(job); err == nil || !strings.Contains(err.Error(), "fox rejected") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateJob(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	r := NewRunnerMust(t, cluster.Local(), fs)
	base := wordCountJob(false)

	for name, mutate := range map[string]func(*Job){
		"no name":     func(j *Job) { j.Name = "" },
		"no input":    func(j *Job) { j.Input = nil },
		"no output":   func(j *Job) { j.OutputDir = "" },
		"no mapper":   func(j *Job) { j.NewMapper = nil },
		"no reducer":  func(j *Job) { j.NewReducer = nil },
		"no reducers": func(j *Job) { j.NumReducers = 0 },
	} {
		j := base
		mutate(&j)
		if _, _, err := r.Run(j); err == nil {
			t.Errorf("%s: job ran", name)
		}
	}
	j := base
	j.Input = []string{"/does/not/exist"}
	if _, _, err := r.Run(j); err == nil {
		t.Error("missing input: job ran")
	}
}

func TestReduceKeysProcessedInSortedOrder(t *testing.T) {
	fs := setupFS(t, 1024, "c a b\n")
	r := NewRunnerMust(t, cluster.Local(), fs)
	var order []string
	job := wordCountJob(false)
	job.NumReducers = 1
	job.NewReducer = func() Reducer { return &orderRecorder{order: &order} }
	if _, _, err := r.Run(job); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("reduce order = %v", order)
	}
}

type orderRecorder struct{ order *[]string }

func (r *orderRecorder) Setup(CacheFiles, *sim.Ledger) error { return nil }
func (r *orderRecorder) Reduce(key string, _ []string, emit Emit, _ *sim.Ledger) error {
	*r.order = append(*r.order, key)
	emit(key, "ok")
	return nil
}

func TestEveryJobPaysStartup(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	r := NewRunnerMust(t, cluster.PaperHadoop(), fs)
	for i := 0; i < 3; i++ {
		CleanOutput(fs, "/out/wc")
		if _, _, err := r.Run(wordCountJob(false)); err != nil {
			t.Fatal(err)
		}
	}
	reps := r.Reports()
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	for i, rep := range reps {
		if rep.Overhead < cluster.PaperHadoop().JobStartup {
			t.Errorf("job %d overhead %v below startup — the iterative penalty is the point", i, rep.Overhead)
		}
	}
	if r.TotalDuration() < 3*cluster.PaperHadoop().JobStartup {
		t.Errorf("total duration %v too small", r.TotalDuration())
	}
}

func TestJobTimingDeterministic(t *testing.T) {
	run := func() string {
		fs := setupFS(t, 16, strings.Repeat(corpus, 5))
		r := NewRunnerMust(t, cluster.PaperHadoop(), fs)
		rep, _, err := r.Run(wordCountJob(true))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Duration().String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("durations differ: %s vs %s", a, b)
	}
}

func TestReadOutputErrors(t *testing.T) {
	fs := dfs.New(2)
	if _, err := ReadOutput(fs, "/none", nil); err == nil {
		t.Error("ReadOutput with no parts succeeded")
	}
	if err := fs.WriteFile("/bad/part-r-00000", []byte("no-tab-here\n"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOutput(fs, "/bad", nil); err == nil {
		t.Error("malformed record accepted")
	}
}

func TestTaskRetryOnInjectedFailure(t *testing.T) {
	fs := setupFS(t, 16, corpus) // several map tasks
	r := NewRunnerMust(t, cluster.Local(), fs)
	r.FailTaskOnce("map", 0, 2)    // two transient failures, then success
	r.FailTaskOnce("reduce", 1, 1) // one reducer hiccup
	_, counters, err := r.Run(wordCountJob(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadOutput(fs, "/out/wc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantCounts()) {
		t.Fatalf("retries corrupted output: %v", got)
	}
	if counters.MapInputRecords != 3 {
		t.Fatalf("retries double-counted records: %+v", counters)
	}
}

func TestTaskFailsAfterMaxAttempts(t *testing.T) {
	fs := setupFS(t, 1024, corpus)
	r := NewRunnerMust(t, cluster.Local(), fs)
	r.FailTaskOnce("map", 0, maxTaskAttempts)
	_, _, err := r.Run(wordCountJob(false))
	if err == nil {
		t.Fatal("job succeeded despite exhausting all attempts")
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("error does not wrap TransientError: %v", err)
	}
}
