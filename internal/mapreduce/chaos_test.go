package mapreduce

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// runWordCount executes the canonical word-count job on a fresh DFS and
// returns the sorted output, counters, report and runner.
func runWordCount(t *testing.T, configure func(*Runner)) ([]KV, *Counters, *sim.JobReport, *Runner) {
	t.Helper()
	return runWordCountOn(t, corpus, configure)
}

// runWordCountOn is runWordCount with a custom input corpus, for tests that
// need more map tasks than the three-line default produces.
func runWordCountOn(t *testing.T, content string, configure func(*Runner)) ([]KV, *Counters, *sim.JobReport, *Runner) {
	t.Helper()
	fs := setupFS(t, 16, content)
	r := NewRunnerMust(t, cluster.Local(), fs)
	if configure != nil {
		configure(r)
	}
	fs.SetRecorder(r.Recorder())
	rep, counters, err := r.Run(wordCountJob(false))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadOutput(fs, "/out/wc", nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, counters, rep, r
}

func outputsEqual(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChaosTaskFailuresPreserveOutput(t *testing.T) {
	want, wantCtrs, _, _ := runWordCount(t, nil)
	rec := obs.New()
	got, gotCtrs, _, _ := runWordCount(t, func(r *Runner) {
		r.SetRecorder(rec)
		if err := r.SetChaos(&chaos.Plan{Seed: 7, TaskFailProb: 0.5}); err != nil {
			t.Fatal(err)
		}
	})
	if !outputsEqual(got, want) {
		t.Fatal("output under injected task failures differs from fault-free run")
	}
	if *gotCtrs != *wantCtrs {
		t.Fatalf("retries changed record counters:\nchaos: %+v\nclean: %+v", gotCtrs, wantCtrs)
	}
	c := rec.Counters()
	if c.TaskRetries == 0 {
		t.Fatal("50% failure probability produced no retries")
	}
	if c.WastedCost.IsZero() {
		t.Fatal("chaos failures strike after the work, so retries must waste cost")
	}
}

func TestChaosFetchFailureReexecutesMaps(t *testing.T) {
	want, _, refRep, _ := runWordCount(t, nil)
	rec := obs.New()
	got, _, rep, _ := runWordCount(t, func(r *Runner) {
		r.SetRecorder(rec)
		if err := r.SetChaos(&chaos.Plan{Seed: 5, FetchFailProb: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if !outputsEqual(got, want) {
		t.Fatal("output under fetch failures differs from fault-free run")
	}
	c := rec.Counters()
	if c.FetchFailures == 0 || c.StagesRerun == 0 {
		t.Fatalf("fetch failures not recorded: %+v", c)
	}
	// Recovery re-charges whole map tasks, so the job must get slower.
	if rep.Duration() <= refRep.Duration() {
		t.Fatalf("fetch-failure recovery was free: %v vs fault-free %v",
			rep.Duration(), refRep.Duration())
	}
}

// TestChaosNodeCrashRerunsLostMaps is the Runner node-loss path: a crash
// between the map and reduce stages kills a node that ran map tasks; the
// engine re-executes those tasks as a recovery stage (without re-running
// mapper closures) and the DFS re-replicates the node's blocks.
func TestChaosNodeCrashRerunsLostMaps(t *testing.T) {
	refRec := obs.New()
	want, wantCtrs, refRep, _ := runWordCount(t, func(r *Runner) { r.SetRecorder(refRec) })

	// Pick a node the fault-free schedule actually placed a map task on, and
	// a crash time strictly inside the map stage's makespan.
	mapStage := refRec.Jobs()[0].Stages[0]
	node := mapStage.Tasks[0].Node
	crashAt := refRep.Overhead + mapStage.Makespan/2

	rec := obs.New()
	got, gotCtrs, rep, r := runWordCount(t, func(r *Runner) {
		r.SetRecorder(rec)
		// Disable speculation so the chaotic map schedule matches the
		// fault-free one and the crash lands where we aimed it.
		r.SetResilience(chaos.Resilience{ReReplicate: true})
		if err := r.SetChaos(&chaos.Plan{Seed: 3,
			Crash: &chaos.NodeCrash{Node: node, At: crashAt}}); err != nil {
			t.Fatal(err)
		}
	})
	if !outputsEqual(got, want) {
		t.Fatal("output after node crash differs from fault-free run")
	}
	if *gotCtrs != *wantCtrs {
		t.Fatalf("recovery re-ran mapper closures:\nchaos: %+v\nclean: %+v", gotCtrs, wantCtrs)
	}
	var names []string
	for _, s := range rep.Stages {
		names = append(names, s.Name)
	}
	if len(rep.Stages) != 3 || rep.Stages[1].Name != "wordcount:map-recovery" {
		t.Fatalf("no map-recovery stage after mid-job crash: %v", names)
	}
	if rep.Duration() <= refRep.Duration() {
		t.Fatalf("crash recovery was free: %v vs fault-free %v",
			rep.Duration(), refRep.Duration())
	}
	c := rec.Counters()
	if c.StagesRerun == 0 {
		t.Fatalf("recovery stage not counted: %+v", c)
	}
	if c.ReReplicatedBlocks == 0 {
		t.Fatalf("dead node's blocks not re-replicated: %+v", c)
	}
	// The reduce stage must not schedule anything on the dead node.
	for _, task := range rec.Jobs()[0].Stages[len(rec.Jobs()[0].Stages)-1].Tasks {
		if task.Node == node {
			t.Fatalf("reduce task scheduled on dead node %d", node)
		}
	}
	if r.ChaosPlan() == nil {
		t.Fatal("ChaosPlan lost the attached plan")
	}
}

func TestChaosDeterministicAcrossRunners(t *testing.T) {
	plan := &chaos.Plan{
		Seed:          42,
		TaskFailProb:  0.3,
		FetchFailProb: 0.4,
		Stragglers:    []chaos.Straggler{{Node: 2, Factor: 3}},
	}
	rec1, rec2 := obs.New(), obs.New()
	out1, _, rep1, _ := runWordCount(t, func(r *Runner) {
		r.SetRecorder(rec1)
		if err := r.SetChaos(plan); err != nil {
			t.Fatal(err)
		}
	})
	out2, _, rep2, _ := runWordCount(t, func(r *Runner) {
		r.SetRecorder(rec2)
		if err := r.SetChaos(plan); err != nil {
			t.Fatal(err)
		}
	})
	if !outputsEqual(out1, out2) {
		t.Fatal("identical seeds produced different output")
	}
	if rep1.Duration() != rep2.Duration() {
		t.Fatalf("identical seeds produced different makespans: %v vs %v",
			rep1.Duration(), rep2.Duration())
	}
	if c1, c2 := rec1.Counters(), rec2.Counters(); c1 != c2 {
		t.Fatalf("identical seeds produced different counters:\n%+v\n%+v", c1, c2)
	}
	var t1, t2 bytes.Buffer
	if err := obs.WriteChromeTrace(&t1, rec1); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&t2, rec2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("identical seeds produced different Chrome traces")
	}
}

func TestChaosStragglerSpeculationMR(t *testing.T) {
	plan := &chaos.Plan{Seed: 1, Stragglers: []chaos.Straggler{{Node: 0, Factor: 10}}}
	// Enough map tasks that the straggler node runs only a minority of them,
	// keeping the stage's median task duration at full speed.
	big := strings.Repeat(corpus, 8)
	rec := obs.New()
	_, _, specRep, _ := runWordCountOn(t, big, func(r *Runner) {
		r.SetRecorder(rec)
		if err := r.SetChaos(plan); err != nil {
			t.Fatal(err)
		}
	})
	_, _, plainRep, _ := runWordCountOn(t, big, func(r *Runner) {
		r.SetResilience(chaos.Resilience{})
		if err := r.SetChaos(plan); err != nil {
			t.Fatal(err)
		}
	})
	c := rec.Counters()
	if c.SpeculativeLaunches == 0 || c.SpeculativeWins == 0 {
		t.Fatalf("no speculation against a 10x straggler: %+v", c)
	}
	if specRep.Duration() >= plainRep.Duration() {
		t.Fatalf("speculation did not help: %v (spec) vs %v (none)",
			specRep.Duration(), plainRep.Duration())
	}
}

func TestChaosBlacklistingMR(t *testing.T) {
	rec := obs.New()
	want, _, _, _ := runWordCount(t, nil)
	got, _, _, _ := runWordCount(t, func(r *Runner) {
		r.SetRecorder(rec)
		if err := r.SetChaos(&chaos.Plan{Seed: 6, TaskFailProb: 0.8}); err != nil {
			t.Fatal(err)
		}
	})
	if !outputsEqual(got, want) {
		t.Fatal("output under heavy failures differs from fault-free run")
	}
	if rec.Counters().NodesBlacklisted == 0 {
		t.Fatal("80% failure probability never blacklisted a node")
	}
}

func TestChaosNeverFailsJobsMR(t *testing.T) {
	want, _, _, _ := runWordCount(t, nil)
	got, _, _, _ := runWordCount(t, func(r *Runner) {
		if err := r.SetChaos(&chaos.Plan{Seed: 13,
			TaskFailProb: 1, FetchFailProb: 1, BlockReadFailProb: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if !outputsEqual(got, want) {
		t.Fatal("maximum chaos changed the output")
	}
}

func TestSetChaosRejectsInvalidPlan(t *testing.T) {
	fs := setupFS(t, 16, corpus)
	r := NewRunnerMust(t, cluster.Local(), fs)
	if err := r.SetChaos(&chaos.Plan{TaskFailProb: 2}); err == nil {
		t.Fatal("invalid chaos plan accepted")
	}
}

func TestFailTaskOncePanicsOnBadArguments(t *testing.T) {
	fs := setupFS(t, 16, corpus)
	r := NewRunnerMust(t, cluster.Local(), fs)
	for _, tc := range []struct {
		name    string
		stage   string
		task, n int
	}{
		{"unknown stage", "shuffle", 0, 1},
		{"empty stage", "", 0, 1},
		{"negative task", "map", -1, 1},
		{"negative count", "reduce", 0, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("FailTaskOnce(%q, %d, %d) did not panic", tc.stage, tc.task, tc.n)
				}
			}()
			r.FailTaskOnce(tc.stage, tc.task, tc.n)
		})
	}
}
