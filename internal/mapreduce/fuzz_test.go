package mapreduce

import (
	"math"
	"strings"
	"testing"

	"yafim/internal/chaos"
)

// fuzzProb folds an arbitrary float into a valid probability in [0, 1).
func fuzzProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0
	}
	return math.Abs(math.Mod(p, 1))
}

// FuzzChaosInvariant checks the runner's exactness guarantee over random
// seeds, input sizes and fault plans: whatever the plan injects — transient
// task failures, stragglers, shuffle-fetch and block-read failures, a
// mid-run node crash — the chaotic job must write exactly the fault-free
// output with the same record counters, and the same seed must reproduce the
// same makespan.
func FuzzChaosInvariant(f *testing.F) {
	f.Add(int64(7), 0.05, 0.02, 0.01, uint8(4), uint8(3), true)
	f.Add(int64(42), 0.5, 0.9, 0.3, uint8(1), uint8(1), false)
	f.Add(int64(-11), 1.0, 0.0, 1.0, uint8(16), uint8(6), true)
	f.Fuzz(func(t *testing.T, seed int64, taskP, fetchP, readP float64,
		factor, repeat uint8, crash bool) {
		content := strings.Repeat(corpus, 1+int(repeat)%8)
		want, wantCtrs, refRep, _ := runWordCountOn(t, content, nil)

		plan := &chaos.Plan{
			Seed:              seed,
			TaskFailProb:      fuzzProb(taskP),
			FetchFailProb:     fuzzProb(fetchP),
			BlockReadFailProb: fuzzProb(readP),
			Stragglers:        []chaos.Straggler{{Node: 0, Factor: 1 + float64(factor%8)}},
		}
		if crash {
			plan.Crash = &chaos.NodeCrash{Node: 1, At: refRep.Duration() / 3}
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("fuzz built an invalid plan: %v", err)
		}
		chaotic := func(r *Runner) {
			if err := r.SetChaos(plan); err != nil {
				t.Fatal(err)
			}
		}

		got, gotCtrs, rep1, _ := runWordCountOn(t, content, chaotic)
		if !outputsEqual(got, want) {
			t.Fatal("chaos changed the job output")
		}
		if *gotCtrs != *wantCtrs {
			t.Fatalf("chaos changed record counters:\nchaos: %+v\nclean: %+v", gotCtrs, wantCtrs)
		}

		got2, _, rep2, _ := runWordCountOn(t, content, chaotic)
		if !outputsEqual(got2, want) {
			t.Fatal("second chaotic run changed the job output")
		}
		if rep1.Duration() != rep2.Duration() {
			t.Fatalf("same seed diverged: %v vs %v", rep1.Duration(), rep2.Duration())
		}
	})
}
