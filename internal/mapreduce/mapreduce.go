// Package mapreduce implements a Hadoop-1.x-style MapReduce engine over the
// simulated DFS. Jobs are text-typed (string keys and values, like Hadoop
// streaming): map tasks consume line records from input splits, partition
// and locally combine their output, spill it to (virtual) local disk;
// reduce tasks fetch their partition from every map task over the (virtual)
// network, merge, process keys in sorted order and commit part files back to
// the DFS with replication.
//
// Faithful to the era, every job pays a heavy startup cost (JobTracker
// setup, JVM launches) and re-reads its input from the DFS — the overheads
// the paper blames for MapReduce's poor fit for iterative algorithms.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// Emit collects one key/value record from a mapper, combiner or reducer.
type Emit func(key, value string)

// CacheFiles holds the contents of the job's distributed-cache files,
// keyed by DFS path.
type CacheFiles map[string][]byte

// Mapper processes one input split. A fresh instance is created per map
// task, so implementations may keep per-task state without locking.
type Mapper interface {
	// Setup runs once per task before any Map call, with the distributed
	// cache contents.
	Setup(cache CacheFiles, led *sim.Ledger) error
	// Map processes one line record (key = byte offset, as in Hadoop).
	Map(offset int64, line string, emit Emit, led *sim.Ledger) error
	// Cleanup runs once per task after the last Map call; split-at-a-time
	// algorithms (e.g. SON's local mining) buffer in Map and emit here.
	Cleanup(emit Emit, led *sim.Ledger) error
}

// Reducer processes the values of one key. Also used for combiners.
type Reducer interface {
	Setup(cache CacheFiles, led *sim.Ledger) error
	Reduce(key string, values []string, emit Emit, led *sim.Ledger) error
}

// Job describes one MapReduce job.
type Job struct {
	Name        string
	Input       []string // DFS input paths
	OutputDir   string   // DFS directory for part-r-NNNNN files
	NewMapper   func() Mapper
	NewReducer  func() Reducer
	NewCombiner func() Reducer // optional map-side combiner
	NumReducers int
	// MapTasks is a minimum map-task count hint, honoured by cutting blocks
	// into finer splits (0 = one task per block).
	MapTasks   int
	CacheFiles []string // distributed cache: fetched once per node
}

// Counters reports record flow through a completed job, Hadoop-style.
type Counters struct {
	MapInputRecords     int64
	MapOutputRecords    int64
	CombineOutputRecs   int64
	ReduceInputGroups   int64
	ReduceOutputRecords int64
}

// Runner executes jobs against one DFS and cluster configuration.
type Runner struct {
	fs          *dfs.FileSystem
	cfg         cluster.Config
	parallelism int
	rec         *obs.Recorder // telemetry; nil disables recording

	mu       sync.Mutex
	reports  []sim.JobReport
	failures map[failureKey]int
}

// SetRecorder attaches a telemetry recorder: every job, stage and task the
// runner executes is recorded as a span on the virtual timeline, along with
// shuffle-byte and retry counters. A nil recorder (the default) disables
// telemetry. Attach before running jobs.
func (r *Runner) SetRecorder(rec *obs.Recorder) { r.rec = rec }

// Recorder returns the attached telemetry recorder (nil when disabled).
func (r *Runner) Recorder() *obs.Recorder { return r.rec }

type failureKey struct {
	stage string // "map" or "reduce"
	task  int
}

// maxTaskAttempts mirrors Hadoop's mapred.map.max.attempts default of 4.
const maxTaskAttempts = 4

// TransientError is the failure injected by FailTaskOnce; the task
// scheduler retries any failed attempt, and tests use this type to assert
// the retry happened for the injected reason.
type TransientError struct {
	Stage string
	Task  int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("mapreduce: injected failure in %s task %d", e.Stage, e.Task)
}

// FailTaskOnce schedules n transient failures for the given task index of
// the given stage ("map" or "reduce"): its next n attempts fail and are
// retried, exercising Hadoop-style task re-execution.
func (r *Runner) FailTaskOnce(stage string, task, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failures == nil {
		r.failures = make(map[failureKey]int)
	}
	r.failures[failureKey{stage, task}] += n
}

func (r *Runner) shouldFail(stage string, task int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := failureKey{stage, task}
	if r.failures[k] > 0 {
		r.failures[k]--
		return true
	}
	return false
}

// NewRunner creates a job runner for the given file system and cluster.
func NewRunner(fs *dfs.FileSystem, cfg cluster.Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{fs: fs, cfg: cfg, parallelism: runtime.GOMAXPROCS(0)}, nil
}

// Config returns the simulated cluster configuration.
func (r *Runner) Config() cluster.Config { return r.cfg }

// Reports returns the job reports of every job run so far, in order.
func (r *Runner) Reports() []sim.JobReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sim.JobReport, len(r.reports))
	copy(out, r.reports)
	return out
}

// TotalDuration sums the virtual durations of all jobs run so far.
func (r *Runner) TotalDuration() time.Duration {
	var d time.Duration
	for _, rep := range r.Reports() {
		d += rep.Duration()
	}
	return d
}

const recordOverheadBytes = 8 // per-record framing in spills and fetches

func pairBytes(k, v string) int64 { return int64(len(k)+len(v)) + recordOverheadBytes }

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// mapOutput is one map task's partitioned, optionally combined output.
type mapOutput struct {
	buckets []map[string][]string // [reducePartition] -> key -> values
	bytes   []int64               // serialized size per partition
}

// Run executes the job and returns its virtual-time report and counters.
func (r *Runner) Run(job Job) (*sim.JobReport, *Counters, error) {
	if err := validateJob(job); err != nil {
		return nil, nil, err
	}
	report := &sim.JobReport{Name: job.Name, Overhead: r.cfg.JobStartup}
	counters := &Counters{}
	r.rec.BeginJob("mapreduce", job.Name)

	cache, cacheTime, err := r.loadCache(job.CacheFiles)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: distributed cache: %w", job.Name, err)
	}
	report.Overhead += cacheTime

	splits, err := r.collectSplits(job.Input, job.MapTasks)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
	}

	outputs, mapStage, err := r.runMapStage(job, splits, cache, counters)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: map stage: %w", job.Name, err)
	}
	report.Stages = append(report.Stages, mapStage)

	reduceStage, err := r.runReduceStage(job, outputs, cache, counters)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: reduce stage: %w", job.Name, err)
	}
	report.Stages = append(report.Stages, reduceStage)

	r.mu.Lock()
	r.reports = append(r.reports, *report)
	r.mu.Unlock()
	r.rec.EndJob(report.Overhead)
	return report, counters, nil
}

func validateJob(job Job) error {
	switch {
	case job.Name == "":
		return errors.New("mapreduce: job needs a name")
	case len(job.Input) == 0:
		return fmt.Errorf("mapreduce: %s: no input paths", job.Name)
	case job.OutputDir == "":
		return fmt.Errorf("mapreduce: %s: no output directory", job.Name)
	case job.NewMapper == nil || job.NewReducer == nil:
		return fmt.Errorf("mapreduce: %s: mapper and reducer are required", job.Name)
	case job.NumReducers <= 0:
		return fmt.Errorf("mapreduce: %s: NumReducers must be positive, got %d", job.Name, job.NumReducers)
	}
	return nil
}

// loadCache reads the distributed-cache files and returns the virtual time
// to localise them: every node pulls each file from the DFS once (disk read
// at the source plus one network hop), all nodes in parallel.
func (r *Runner) loadCache(paths []string) (CacheFiles, time.Duration, error) {
	cache := make(CacheFiles, len(paths))
	var d time.Duration
	for _, p := range paths {
		data, err := r.fs.ReadFile(p, nil)
		if err != nil {
			return nil, 0, err
		}
		cache[p] = data
		secs := float64(len(data))/r.cfg.DiskBWPerSec + float64(len(data))/r.cfg.NetBWPerSec
		d += time.Duration(secs * float64(time.Second))
	}
	return cache, d, nil
}

func (r *Runner) collectSplits(inputs []string, mapTasks int) ([]dfs.Split, error) {
	var splits []dfs.Split
	perInput := (mapTasks + len(inputs) - 1) / len(inputs)
	for _, in := range inputs {
		s, err := r.fs.SplitsN(in, perInput)
		if err != nil {
			return nil, err
		}
		splits = append(splits, s...)
	}
	if len(splits) == 0 {
		return nil, errors.New("input has no splits")
	}
	return splits, nil
}

func (r *Runner) runMapStage(job Job, splits []dfs.Split, cache CacheFiles,
	counters *Counters) ([]*mapOutput, sim.StageReport, error) {
	outputs := make([]*mapOutput, len(splits))
	costs := make([]sim.Cost, len(splits))
	var mu sync.Mutex // guards counters

	attempts, err := r.forEach(len(splits), func(t int) error {
		if r.shouldFail("map", t) {
			return &TransientError{Stage: "map", Task: t}
		}
		led := &sim.Ledger{}
		mapper := job.NewMapper()
		if err := mapper.Setup(cache, led); err != nil {
			return fmt.Errorf("task %d setup: %w", t, err)
		}
		lines, err := r.fs.ReadLines(splits[t], led)
		if err != nil {
			return fmt.Errorf("task %d read: %w", t, err)
		}
		out := &mapOutput{
			buckets: make([]map[string][]string, job.NumReducers),
			bytes:   make([]int64, job.NumReducers),
		}
		for i := range out.buckets {
			out.buckets[i] = make(map[string][]string)
		}
		var emitted int64
		emit := func(k, v string) {
			b := out.buckets[int(hashString(k))%job.NumReducers]
			b[k] = append(b[k], v)
			emitted++
		}
		for _, line := range lines {
			if err := mapper.Map(line.Offset, line.Text, emit, led); err != nil {
				return fmt.Errorf("task %d map: %w", t, err)
			}
		}
		if err := mapper.Cleanup(emit, led); err != nil {
			return fmt.Errorf("task %d cleanup: %w", t, err)
		}
		led.AddCPU(float64(len(lines)) + float64(emitted))

		var combined int64
		if job.NewCombiner != nil {
			c := job.NewCombiner()
			if err := c.Setup(cache, led); err != nil {
				return fmt.Errorf("task %d combiner setup: %w", t, err)
			}
			for i, b := range out.buckets {
				nb := make(map[string][]string, len(b))
				cemit := func(k, v string) {
					nb[k] = append(nb[k], v)
					combined++
				}
				for k, vs := range b {
					if err := c.Reduce(k, vs, cemit, led); err != nil {
						return fmt.Errorf("task %d combine: %w", t, err)
					}
					led.AddCPU(float64(len(vs)))
				}
				out.buckets[i] = nb
			}
		}

		// Sort-and-spill: Hadoop sorts map output before writing it to local
		// disk; charge n log n comparisons plus the spill bytes.
		var records int64
		for i, b := range out.buckets {
			for k, vs := range b {
				for _, v := range vs {
					out.bytes[i] += pairBytes(k, v)
					records++
				}
			}
		}
		led.AddCPU(nLogN(records))
		for _, n := range out.bytes {
			led.AddDiskWrite(n)
		}

		outputs[t] = out
		costs[t] = led.Total()
		mu.Lock()
		counters.MapInputRecords += int64(len(lines))
		counters.MapOutputRecords += emitted
		counters.CombineOutputRecs += combined
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, sim.StageReport{}, err
	}
	placed := make([]sim.Placed, len(splits))
	for i, cost := range costs {
		placed[i] = sim.Placed{Cost: cost, Pref: splits[i].Locations}
	}
	rep, placements := sim.RunStageScheduled(r.cfg, job.Name+":map", placed)
	r.recordStage(rep, placed, placements, attempts)
	return outputs, rep, nil
}

func (r *Runner) runReduceStage(job Job, outputs []*mapOutput, cache CacheFiles,
	counters *Counters) (sim.StageReport, error) {
	costs := make([]sim.Cost, job.NumReducers)
	var mu sync.Mutex

	attempts, err := r.forEach(job.NumReducers, func(p int) error {
		if r.shouldFail("reduce", p) {
			return &TransientError{Stage: "reduce", Task: p}
		}
		led := &sim.Ledger{}
		reducer := job.NewReducer()
		if err := reducer.Setup(cache, led); err != nil {
			return fmt.Errorf("reducer %d setup: %w", p, err)
		}
		// Shuffle fetch: this reducer's bucket from every map task.
		merged := make(map[string][]string)
		var fetched, fetchedBytes int64
		for _, out := range outputs {
			led.AddDiskRead(out.bytes[p])
			led.AddNet(out.bytes[p])
			fetchedBytes += out.bytes[p]
			for k, vs := range out.buckets[p] {
				merged[k] = append(merged[k], vs...)
				fetched += int64(len(vs))
			}
		}
		r.rec.AddShuffleBytes(fetchedBytes)
		// Merge sort of fetched runs.
		led.AddCPU(nLogN(fetched))
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		var sb strings.Builder
		var outRecords int64
		emit := func(k, v string) {
			sb.WriteString(k)
			sb.WriteByte('\t')
			sb.WriteString(v)
			sb.WriteByte('\n')
			outRecords++
		}
		for _, k := range keys {
			if err := reducer.Reduce(k, merged[k], emit, led); err != nil {
				return fmt.Errorf("reducer %d key %q: %w", p, k, err)
			}
			led.AddCPU(float64(len(merged[k])))
		}
		path := fmt.Sprintf("%s/part-r-%05d", job.OutputDir, p)
		if err := r.fs.WriteFile(path, []byte(sb.String()), led); err != nil {
			return fmt.Errorf("reducer %d commit: %w", p, err)
		}
		costs[p] = led.Total()
		mu.Lock()
		counters.ReduceInputGroups += int64(len(keys))
		counters.ReduceOutputRecords += outRecords
		mu.Unlock()
		return nil
	})
	if err != nil {
		return sim.StageReport{}, err
	}
	placed := make([]sim.Placed, len(costs))
	for i, cost := range costs {
		placed[i] = sim.Placed{Cost: cost}
	}
	rep, placements := sim.RunStageScheduled(r.cfg, job.Name+":reduce", placed)
	r.recordStage(rep, placed, placements, attempts)
	return rep, nil
}

// recordStage converts one executed stage's schedule into telemetry: a stage
// span with per-task spans plus retry and locality-placement counters.
func (r *Runner) recordStage(rep sim.StageReport, placed []sim.Placed,
	placements []sim.TaskPlacement, attempts []int) {
	if r.rec == nil {
		return
	}
	costs := make([]sim.Cost, len(placed))
	for i := range placed {
		costs[i] = placed[i].Cost
	}
	r.rec.AddStage(obs.SpanFromSchedule(rep, r.cfg.StageOverhead, placements, costs, attempts))
	var retries, local, remote int64
	for i := range placements {
		if attempts[i] > 1 {
			retries += int64(attempts[i] - 1)
		}
		if len(placed[i].Pref) > 0 {
			if placements[i].Remote {
				remote++
			} else {
				local++
			}
		}
	}
	if retries > 0 {
		// Injected MapReduce failures abort at task start, so the wasted
		// virtual cost of a failed attempt is effectively zero.
		r.rec.AddRetries(retries, sim.Cost{})
	}
	if local > 0 || remote > 0 {
		r.rec.AddLocality(local, remote)
	}
}

// forEach runs fn(0..n-1) on the worker pool, retrying each task up to the
// Hadoop attempt limit. It returns the attempt count each task needed and
// the joined terminal errors.
func (r *Runner) forEach(n int, fn func(i int) error) ([]int, error) {
	attempts := make([]int, n)
	errs := make([]error, n)
	sem := make(chan struct{}, r.parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			var lastErr error
			for attempt := 1; attempt <= maxTaskAttempts; attempt++ {
				attempts[i] = attempt
				if lastErr = fn(i); lastErr == nil {
					return
				}
			}
			errs[i] = fmt.Errorf("mapreduce: task %d failed after %d attempts: %w",
				i, maxTaskAttempts, lastErr)
		}(i)
	}
	wg.Wait()
	return attempts, errors.Join(errs...)
}

func nLogN(n int64) float64 {
	if n <= 1 {
		return float64(n)
	}
	lg := 0.0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return float64(n) * lg
}
