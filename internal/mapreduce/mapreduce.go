// Package mapreduce implements a Hadoop-1.x-style MapReduce engine over the
// simulated DFS. Jobs are text-typed (string keys and values, like Hadoop
// streaming): map tasks consume line records from input splits, partition
// and locally combine their output, spill it to (virtual) local disk;
// reduce tasks fetch their partition from every map task over the (virtual)
// network, merge, process keys in sorted order and commit part files back to
// the DFS with replication.
//
// Faithful to the era, every job pays a heavy startup cost (JobTracker
// setup, JVM launches) and re-reads its input from the DFS — the overheads
// the paper blames for MapReduce's poor fit for iterative algorithms.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/exec"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// Emit collects one key/value record from a mapper, combiner or reducer.
type Emit func(key, value string)

// CacheFiles holds the contents of the job's distributed-cache files,
// keyed by DFS path.
type CacheFiles map[string][]byte

// Mapper processes one input split. A fresh instance is created per map
// task, so implementations may keep per-task state without locking.
type Mapper interface {
	// Setup runs once per task before any Map call, with the distributed
	// cache contents.
	Setup(cache CacheFiles, led *sim.Ledger) error
	// Map processes one line record (key = byte offset, as in Hadoop).
	Map(offset int64, line string, emit Emit, led *sim.Ledger) error
	// Cleanup runs once per task after the last Map call; split-at-a-time
	// algorithms (e.g. SON's local mining) buffer in Map and emit here.
	Cleanup(emit Emit, led *sim.Ledger) error
}

// Reducer processes the values of one key. Also used for combiners.
type Reducer interface {
	Setup(cache CacheFiles, led *sim.Ledger) error
	Reduce(key string, values []string, emit Emit, led *sim.Ledger) error
}

// Job describes one MapReduce job.
type Job struct {
	Name        string
	Input       []string // DFS input paths
	OutputDir   string   // DFS directory for part-r-NNNNN files
	NewMapper   func() Mapper
	NewReducer  func() Reducer
	NewCombiner func() Reducer // optional map-side combiner
	NumReducers int
	// MapTasks is a minimum map-task count hint, honoured by cutting blocks
	// into finer splits (0 = one task per block).
	MapTasks   int
	CacheFiles []string // distributed cache: fetched once per node
}

// Counters reports record flow through a completed job, Hadoop-style.
type Counters struct {
	MapInputRecords     int64
	MapOutputRecords    int64
	CombineOutputRecs   int64
	ReduceInputGroups   int64
	ReduceOutputRecords int64
}

// Runner executes jobs against one DFS and cluster configuration.
type Runner struct {
	fs          *dfs.FileSystem
	cfg         cluster.Config
	parallelism int
	rec         *obs.Recorder // telemetry; nil disables recording

	// Chaos engineering state; see chaos.go. plan/resil/health are set
	// before jobs run, crashDone and current only from the Run goroutine.
	plan      *chaos.Plan
	resil     chaos.Resilience
	resilSet  bool
	health    *chaos.NodeHealth
	crashDone bool

	mu       sync.Mutex
	reports  []sim.JobReport
	current  *sim.JobReport // open job, for the virtual clock
	failures map[failureKey]int
}

// SetRecorder attaches a telemetry recorder: every job, stage and task the
// runner executes is recorded as a span on the virtual timeline, along with
// shuffle-byte and retry counters. A nil recorder (the default) disables
// telemetry. Attach before running jobs.
func (r *Runner) SetRecorder(rec *obs.Recorder) { r.rec = rec }

// Recorder returns the attached telemetry recorder (nil when disabled).
func (r *Runner) Recorder() *obs.Recorder { return r.rec }

type failureKey struct {
	stage string // "map" or "reduce"
	task  int
}

// maxTaskAttempts mirrors Hadoop's mapred.map.max.attempts default of 4.
const maxTaskAttempts = 4

// TransientError is the failure injected by FailTaskOnce; the task
// scheduler retries any failed attempt, and tests use this type to assert
// the retry happened for the injected reason.
type TransientError struct {
	Stage string
	Task  int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("mapreduce: injected failure in %s task %d", e.Stage, e.Task)
}

// FailTaskOnce schedules n transient failures for the given task index of
// the given stage ("map" or "reduce"): its next n attempts fail and are
// retried, exercising Hadoop-style task re-execution. Any other stage name
// or a negative task index or count is a bug in the caller and panics: a
// misspelled stage would otherwise silently inject nothing.
func (r *Runner) FailTaskOnce(stage string, task, n int) {
	if stage != "map" && stage != "reduce" {
		panic(fmt.Sprintf("mapreduce: FailTaskOnce: unknown stage %q (want %q or %q)",
			stage, "map", "reduce"))
	}
	if task < 0 {
		panic(fmt.Sprintf("mapreduce: FailTaskOnce: negative task index %d", task))
	}
	if n < 0 {
		panic(fmt.Sprintf("mapreduce: FailTaskOnce: negative failure count %d", n))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failures == nil {
		r.failures = make(map[failureKey]int)
	}
	r.failures[failureKey{stage, task}] += n
}

func (r *Runner) shouldFail(stage string, task int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := failureKey{stage, task}
	if r.failures[k] > 0 {
		r.failures[k]--
		return true
	}
	return false
}

// NewRunner creates a job runner for the given file system and cluster.
func NewRunner(fs *dfs.FileSystem, cfg cluster.Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{fs: fs, cfg: cfg, parallelism: runtime.GOMAXPROCS(0)}, nil
}

// Config returns the simulated cluster configuration.
func (r *Runner) Config() cluster.Config { return r.cfg }

// Reports returns the job reports of every job run so far, in order.
func (r *Runner) Reports() []sim.JobReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sim.JobReport, len(r.reports))
	copy(out, r.reports)
	return out
}

// TotalDuration sums the virtual durations of all jobs run so far.
func (r *Runner) TotalDuration() time.Duration {
	var d time.Duration
	for _, rep := range r.Reports() {
		d += rep.Duration()
	}
	return d
}

const recordOverheadBytes = 8 // per-record framing in spills and fetches

func pairBytes(k, v string) int64 { return int64(len(k)+len(v)) + recordOverheadBytes }

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// PartitionOf returns the reduce partition the engine routes key to. The
// distributed runtime's workers use it so their shuffle partitioning is
// bit-identical to the in-memory engine's — a precondition for byte-equal
// job output between the two executors.
func PartitionOf(key string, numReducers int) int {
	return int(hashString(key)) % numReducers
}

// mapOutput is one map task's partitioned, optionally combined output.
type mapOutput struct {
	buckets []map[string][]string // [reducePartition] -> key -> values
	bytes   []int64               // serialized size per partition
}

// Run executes the job and returns its virtual-time report and counters.
func (r *Runner) Run(job Job) (*sim.JobReport, *Counters, error) {
	return r.RunContext(context.Background(), job)
}

// RunContext is Run with cooperative cancellation: a canceled or expired
// context aborts the job at the next task boundary, returning an error
// matching exec.ErrCanceled or exec.ErrDeadlineExceeded. As with a killed
// Hadoop job, committed output of completed stages stays in the DFS; no
// worker goroutines outlive the call.
func (r *Runner) RunContext(ctx context.Context, job Job) (*sim.JobReport, *Counters, error) {
	if err := validateJob(job); err != nil {
		return nil, nil, err
	}
	if err := exec.ContextErr(ctx); err != nil {
		r.rec.AddCancellations(1)
		return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
	}
	report := &sim.JobReport{Name: job.Name, Overhead: r.cfg.JobStartup}
	counters := &Counters{}
	r.rec.BeginJob("mapreduce", job.Name)
	r.mu.Lock()
	r.current = report
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.current = nil
		r.mu.Unlock()
	}()

	cache, cacheTime, err := r.loadCache(ctx, job.CacheFiles)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: distributed cache: %w", job.Name, err)
	}
	report.Overhead += cacheTime

	splits, err := r.collectSplits(job.Input, job.MapTasks)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
	}

	// A crash planned before this job's map stage only costs exclusion (and
	// any DFS repair); the map stage simply never schedules on the dead node.
	r.maybeCrash(report)

	outputs, mapCosts, mapPlacements, mapStage, err := r.runMapStage(ctx, job, splits, cache, counters)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: map stage: %w", job.Name, err)
	}
	report.Stages = append(report.Stages, mapStage)

	// A crash between the stages is MapReduce's worst case: the dead node's
	// map output is gone, and unlike Spark there is no lineage cache — the
	// JobTracker must re-run those map tasks from their DFS inputs before any
	// reducer can fetch.
	if node, fired := r.maybeCrash(report); fired {
		if rep, ok := r.rerunLostMaps(job, node, mapCosts, mapPlacements); ok {
			report.Stages = append(report.Stages, rep)
		}
	}

	reduceStage, err := r.runReduceStage(ctx, job, outputs, mapCosts, cache, counters)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: reduce stage: %w", job.Name, err)
	}
	report.Stages = append(report.Stages, reduceStage)

	r.mu.Lock()
	r.reports = append(r.reports, *report)
	r.mu.Unlock()
	r.rec.EndJob(report.Overhead)
	return report, counters, nil
}

func validateJob(job Job) error {
	switch {
	case job.Name == "":
		return errors.New("mapreduce: job needs a name")
	case len(job.Input) == 0:
		return fmt.Errorf("mapreduce: %s: no input paths", job.Name)
	case job.OutputDir == "":
		return fmt.Errorf("mapreduce: %s: no output directory", job.Name)
	case job.NewMapper == nil || job.NewReducer == nil:
		return fmt.Errorf("mapreduce: %s: mapper and reducer are required", job.Name)
	case job.NumReducers <= 0:
		return fmt.Errorf("mapreduce: %s: NumReducers must be positive, got %d", job.Name, job.NumReducers)
	}
	return nil
}

// loadCache reads the distributed-cache files and returns the virtual time
// to localise them: every node pulls each file from the DFS once (disk read
// at the source plus one network hop), all nodes in parallel.
func (r *Runner) loadCache(ctx context.Context, paths []string) (CacheFiles, time.Duration, error) {
	cache := make(CacheFiles, len(paths))
	var d time.Duration
	for _, p := range paths {
		data, err := r.fs.ReadFileContext(ctx, p, nil)
		if err != nil {
			return nil, 0, err
		}
		cache[p] = data
		secs := float64(len(data))/r.cfg.DiskBWPerSec + float64(len(data))/r.cfg.NetBWPerSec
		d += time.Duration(secs * float64(time.Second))
	}
	return cache, d, nil
}

func (r *Runner) collectSplits(inputs []string, mapTasks int) ([]dfs.Split, error) {
	var splits []dfs.Split
	perInput := (mapTasks + len(inputs) - 1) / len(inputs)
	for _, in := range inputs {
		s, err := r.fs.SplitsN(in, perInput)
		if err != nil {
			return nil, err
		}
		splits = append(splits, s...)
	}
	if len(splits) == 0 {
		return nil, errors.New("input has no splits")
	}
	return splits, nil
}

func (r *Runner) runMapStage(ctx context.Context, job Job, splits []dfs.Split, cache CacheFiles,
	counters *Counters) ([]*mapOutput, []sim.Cost, []sim.TaskPlacement, sim.StageReport, error) {
	outputs := make([]*mapOutput, len(splits))
	// Per-task counter snapshots, overwritten on retry and summed only after
	// the stage settles: a failed attempt — chaos strikes after the work is
	// done — must not double-count records (MapInputRecords feeds minimum
	// support thresholds downstream).
	inRecs := make([]int64, len(splits))
	emitRecs := make([]int64, len(splits))
	combRecs := make([]int64, len(splits))

	costs, wasted, attempts, err := r.forEach(ctx, "map", job.Name+":map", len(splits), func(t int, led *sim.Ledger) error {
		mapper := job.NewMapper()
		if err := mapper.Setup(cache, led); err != nil {
			return fmt.Errorf("task %d setup: %w", t, err)
		}
		lines, err := r.fs.ReadLinesContext(ctx, splits[t], led)
		if err != nil {
			return fmt.Errorf("task %d read: %w", t, err)
		}
		out := &mapOutput{
			buckets: make([]map[string][]string, job.NumReducers),
			bytes:   make([]int64, job.NumReducers),
		}
		for i := range out.buckets {
			out.buckets[i] = make(map[string][]string)
		}
		var emitted int64
		emit := func(k, v string) {
			b := out.buckets[PartitionOf(k, job.NumReducers)]
			b[k] = append(b[k], v)
			emitted++
		}
		for _, line := range lines {
			if err := mapper.Map(line.Offset, line.Text, emit, led); err != nil {
				return fmt.Errorf("task %d map: %w", t, err)
			}
		}
		if err := mapper.Cleanup(emit, led); err != nil {
			return fmt.Errorf("task %d cleanup: %w", t, err)
		}
		led.AddCPU(float64(len(lines)) + float64(emitted))

		var combined int64
		if job.NewCombiner != nil {
			c := job.NewCombiner()
			if err := c.Setup(cache, led); err != nil {
				return fmt.Errorf("task %d combiner setup: %w", t, err)
			}
			for i, b := range out.buckets {
				nb := make(map[string][]string, len(b))
				cemit := func(k, v string) {
					nb[k] = append(nb[k], v)
					combined++
				}
				for k, vs := range b {
					if err := c.Reduce(k, vs, cemit, led); err != nil {
						return fmt.Errorf("task %d combine: %w", t, err)
					}
					led.AddCPU(float64(len(vs)))
				}
				out.buckets[i] = nb
			}
		}

		// Sort-and-spill: Hadoop sorts map output before writing it to local
		// disk; charge n log n comparisons plus the spill bytes.
		var records int64
		for i, b := range out.buckets {
			for k, vs := range b {
				for _, v := range vs {
					out.bytes[i] += pairBytes(k, v)
					records++
				}
			}
		}
		led.AddCPU(nLogN(records))
		for _, n := range out.bytes {
			led.AddDiskWrite(n)
		}

		outputs[t] = out
		inRecs[t] = int64(len(lines))
		emitRecs[t] = emitted
		combRecs[t] = combined
		return nil
	})
	if err != nil {
		return nil, nil, nil, sim.StageReport{}, err
	}
	for t := range splits {
		counters.MapInputRecords += inRecs[t]
		counters.MapOutputRecords += emitRecs[t]
		counters.CombineOutputRecs += combRecs[t]
	}
	// Per-partition output shape for the skew analysis, observed driver-side
	// after the stage settled so retried attempts never double-count.
	if r.rec.Enabled() {
		for t := range splits {
			rows := emitRecs[t]
			if job.NewCombiner != nil {
				rows = combRecs[t]
			}
			var spill int64
			for _, n := range outputs[t].bytes {
				spill += n
			}
			r.rec.ObservePartitionOutput("mapreduce", job.Name+":map", int(rows), spill)
		}
	}
	placed := make([]sim.Placed, len(splits))
	for i, cost := range costs {
		placed[i] = sim.Placed{Cost: cost, Pref: splits[i].Locations, Relaunches: attempts[i] - 1}
	}
	r.noteFailures(job.Name+":map", attempts)
	rep, placements, spec := sim.RunStageResilient(r.cfg, job.Name+":map", placed, r.stageOpts())
	r.recordStage(rep, placed, placements, attempts, wasted)
	r.rec.AddSpeculation(spec.Launched, spec.Won)
	return outputs, costs, placements, rep, nil
}

func (r *Runner) runReduceStage(ctx context.Context, job Job, outputs []*mapOutput, mapCosts []sim.Cost,
	cache CacheFiles, counters *Counters) (sim.StageReport, error) {
	groups := make([]int64, job.NumReducers)
	outRecs := make([]int64, job.NumReducers)
	outBytes := make([]int64, job.NumReducers)
	shuffleBytes := make([]int64, job.NumReducers)

	costs, wasted, attempts, err := r.forEach(ctx, "reduce", job.Name+":reduce", job.NumReducers, func(p int, led *sim.Ledger) error {
		reducer := job.NewReducer()
		if err := reducer.Setup(cache, led); err != nil {
			return fmt.Errorf("reducer %d setup: %w", p, err)
		}
		// Chaos: a failed shuffle fetch means one map task's output is gone.
		// MapReduce has no lineage cache, so the JobTracker re-runs the whole
		// victim map task from its DFS input before this reducer can proceed:
		// the reducer pays the dead fetch plus the map task's full recorded
		// cost. The in-memory output is reused byte-identically — only the
		// virtual cost is charged, never the mapper closure re-run.
		if name := job.Name + ":reduce"; r.plan.FetchFails(name, p) {
			victim := r.plan.FetchVictim(name, p, len(outputs))
			r.rec.AddFetchFailure()
			r.rec.AddStageRerun()
			led.AddNet(outputs[victim].bytes[p]) // the fetch that found nothing
			led.Add(mapCosts[victim])
		}
		// Shuffle fetch: this reducer's bucket from every map task.
		merged := make(map[string][]string)
		var fetched, fetchedBytes int64
		for _, out := range outputs {
			led.AddDiskRead(out.bytes[p])
			led.AddNet(out.bytes[p])
			fetchedBytes += out.bytes[p]
			for k, vs := range out.buckets[p] {
				merged[k] = append(merged[k], vs...)
				fetched += int64(len(vs))
			}
		}
		shuffleBytes[p] = fetchedBytes
		// Merge sort of fetched runs.
		led.AddCPU(nLogN(fetched))
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		var sb strings.Builder
		var outRecords int64
		emit := func(k, v string) {
			sb.WriteString(k)
			sb.WriteByte('\t')
			sb.WriteString(v)
			sb.WriteByte('\n')
			outRecords++
		}
		for _, k := range keys {
			if err := reducer.Reduce(k, merged[k], emit, led); err != nil {
				return fmt.Errorf("reducer %d key %q: %w", p, k, err)
			}
			led.AddCPU(float64(len(merged[k])))
		}
		path := fmt.Sprintf("%s/part-r-%05d", job.OutputDir, p)
		if err := r.fs.WriteFile(path, []byte(sb.String()), led); err != nil {
			return fmt.Errorf("reducer %d commit: %w", p, err)
		}
		groups[p] = int64(len(keys))
		outRecs[p] = outRecords
		outBytes[p] = int64(sb.Len())
		return nil
	})
	if err != nil {
		return sim.StageReport{}, err
	}
	for p := 0; p < job.NumReducers; p++ {
		counters.ReduceInputGroups += groups[p]
		counters.ReduceOutputRecords += outRecs[p]
		r.rec.AddShuffleBytes(shuffleBytes[p])
	}
	if r.rec.Enabled() {
		for p := 0; p < job.NumReducers; p++ {
			r.rec.ObservePartitionOutput("mapreduce", job.Name+":reduce",
				int(outRecs[p]), outBytes[p])
		}
	}
	placed := make([]sim.Placed, len(costs))
	for i, cost := range costs {
		placed[i] = sim.Placed{Cost: cost, Relaunches: attempts[i] - 1}
	}
	r.noteFailures(job.Name+":reduce", attempts)
	rep, placements, spec := sim.RunStageResilient(r.cfg, job.Name+":reduce", placed, r.stageOpts())
	r.recordStage(rep, placed, placements, attempts, wasted)
	r.rec.AddSpeculation(spec.Launched, spec.Won)
	return rep, nil
}

// recordStage converts one executed stage's schedule into telemetry: a stage
// span with per-task spans plus retry and locality-placement counters.
func (r *Runner) recordStage(rep sim.StageReport, placed []sim.Placed,
	placements []sim.TaskPlacement, attempts []int, wasted []sim.Cost) {
	if r.rec == nil {
		return
	}
	costs := make([]sim.Cost, len(placed))
	for i := range placed {
		costs[i] = placed[i].Cost
	}
	r.rec.AddStage(obs.SpanFromSchedule(rep, r.cfg.StageOverhead, placements, costs, attempts))
	var retries, local, remote int64
	for i := range placements {
		if attempts[i] > 1 {
			retries += int64(attempts[i] - 1)
		}
		if len(placed[i].Pref) > 0 {
			if placements[i].Remote {
				remote++
			} else {
				local++
			}
		}
	}
	if retries > 0 {
		// FailTaskOnce aborts at task start (zero waste); chaos-injected
		// failures strike after the attempt's work, wasting its full cost.
		var waste sim.Cost
		for _, w := range wasted {
			waste = waste.Add(w)
		}
		r.rec.AddRetries(retries, waste)
	}
	if local > 0 || remote > 0 {
		r.rec.AddLocality(local, remote)
	}
}

// forEach runs fn(0..n-1) on the worker pool, retrying each task up to the
// Hadoop attempt limit. Each attempt gets a fresh ledger; the successful
// attempt's total becomes the task's cost, failed attempts accumulate into
// its wasted cost. After an attempt's work succeeds the chaos plan may still
// kill it — the executor dies before reporting — so the full attempt is
// wasted and retried; injection never touches the last permitted attempt,
// keeping jobs degradable but not failable. stage is the FailTaskOnce key
// ("map"/"reduce"), domain the job-qualified chaos decision domain.
//
// A panic in fn is recovered into a typed *exec.TaskError and retried like
// any transient fault; a canceled context aborts each task at its next
// attempt boundary without retrying. A stage that cannot complete returns an
// *exec.StageError wrapping every task's terminal failure.
func (r *Runner) forEach(ctx context.Context, stage, domain string, n int, fn func(i int, led *sim.Ledger) error) (costs, wasted []sim.Cost, attempts []int, err error) {
	costs = make([]sim.Cost, n)
	wasted = make([]sim.Cost, n)
	attempts = make([]int, n)
	errs := make([]error, n)
	var panics int64
	sem := make(chan struct{}, r.parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			var lastErr error
			for attempt := 1; attempt <= maxTaskAttempts; attempt++ {
				if cerr := exec.ContextErr(ctx); cerr != nil {
					errs[i] = cerr
					return
				}
				attempts[i] = attempt
				led := &sim.Ledger{}
				if r.shouldFail(stage, i) {
					lastErr = &TransientError{Stage: stage, Task: i}
				} else if lastErr = exec.Guard("mapreduce", domain, i, attempt,
					func() error { return fn(i, led) }); lastErr == nil &&
					attempt < maxTaskAttempts && r.plan.TaskFails(domain, i, attempt) {
					lastErr = &chaos.InjectedError{Stage: domain, Task: i, Attempt: attempt}
				}
				var te *exec.TaskError
				if errors.As(lastErr, &te) && te.Panicked() {
					atomic.AddInt64(&panics, 1)
				}
				if lastErr == nil {
					costs[i] = led.Total()
					return
				}
				if exec.IsCancellation(lastErr) {
					// The task observed the cancellation itself; stop without
					// retrying — retries only delay the shutdown.
					errs[i] = lastErr
					return
				}
				wasted[i] = wasted[i].Add(led.Total())
			}
			errs[i] = fmt.Errorf("task %d failed after %d attempts: %w",
				i, maxTaskAttempts, lastErr)
		}(i)
	}
	wg.Wait()
	r.rec.AddTaskPanics(panics)
	if join := errors.Join(errs...); join != nil {
		// One representative cancellation instead of the join: every aborted
		// task carries the same context error, and Join would print it once
		// per task.
		if cause := exec.CollapseCancellation(errs); cause != nil {
			r.rec.AddCancellations(1)
			return costs, wasted, attempts, &exec.StageError{Engine: "mapreduce", Stage: domain, Err: cause}
		}
		return costs, wasted, attempts, &exec.StageError{Engine: "mapreduce", Stage: domain,
			Attempts: maxTaskAttempts, Err: join}
	}
	return costs, wasted, attempts, nil
}

func nLogN(n int64) float64 {
	if n <= 1 {
		return float64(n)
	}
	lg := 0.0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return float64(n) * lg
}
