package mapreduce

import (
	"testing"

	"yafim/internal/cluster"
	"yafim/internal/obs"
)

// TestRecorderJobSpansAndCounters runs word count with a telemetry recorder
// on both the runner and the DFS and checks the recorded span tree and the
// engine-level counters.
func TestRecorderJobSpansAndCounters(t *testing.T) {
	fs := setupFS(t, 16, corpus) // tiny blocks: several map tasks
	rec := obs.New()
	fs.SetRecorder(rec)
	r := NewRunnerMust(t, cluster.Local(), fs)
	r.SetRecorder(rec)
	rep, _, err := r.Run(wordCountJob(false))
	if err != nil {
		t.Fatal(err)
	}

	jobs := rec.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("job spans = %d, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Engine != "mapreduce" || job.Name != "wordcount" {
		t.Fatalf("job span = %+v", job)
	}
	if job.Overhead != rep.Overhead || job.Duration() != rep.Duration() {
		t.Fatalf("span timing (%v, %v) != report (%v, %v)",
			job.Overhead, job.Duration(), rep.Overhead, rep.Duration())
	}
	if len(job.Stages) != 2 {
		t.Fatalf("stage spans = %d, want map + reduce", len(job.Stages))
	}
	for s, st := range job.Stages {
		if st.Makespan != rep.Stages[s].Makespan || len(st.Tasks) != rep.Stages[s].Tasks {
			t.Fatalf("stage %d span %+v vs report %+v", s, st, rep.Stages[s])
		}
		cfg := r.Config()
		for _, task := range st.Tasks {
			if task.Node < 0 || task.Node >= cfg.Nodes ||
				task.Core < 0 || task.Core >= cfg.CoresPerNode {
				t.Fatalf("task off the cluster: %+v", task)
			}
			if task.Attempts != 1 {
				t.Fatalf("clean run reported retries: %+v", task)
			}
		}
	}

	c := rec.Counters()
	if c.ShuffleBytes <= 0 {
		t.Fatalf("shuffle bytes = %d, want > 0", c.ShuffleBytes)
	}
	if c.DFSReadBytes <= 0 || c.DFSWriteBytes <= 0 {
		t.Fatalf("dfs bytes = read %d write %d, want both > 0", c.DFSReadBytes, c.DFSWriteBytes)
	}
	// Map splits carry block locations, so every map task has a locality
	// outcome recorded.
	if c.LocalityLocal+c.LocalityRemote != int64(rep.Stages[0].Tasks) {
		t.Fatalf("locality outcomes = %d + %d, want %d map tasks",
			c.LocalityLocal, c.LocalityRemote, rep.Stages[0].Tasks)
	}
	if c.TaskRetries != 0 {
		t.Fatalf("clean run counted retries: %+v", c)
	}
}

// TestRecorderCountsInjectedRetries checks the retry counter against the
// engine's task fault injection.
func TestRecorderCountsInjectedRetries(t *testing.T) {
	fs := setupFS(t, 16, corpus)
	rec := obs.New()
	r := NewRunnerMust(t, cluster.Local(), fs)
	r.SetRecorder(rec)
	r.FailTaskOnce("map", 1, 2) // fail task 1 twice, succeed third
	if _, _, err := r.Run(wordCountJob(false)); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counters().TaskRetries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	jobs := rec.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if got := jobs[0].Stages[0].Tasks[1].Attempts; got != 3 {
		t.Fatalf("task attempts = %d, want 3", got)
	}
}
