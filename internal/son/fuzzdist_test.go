package son

import (
	"fmt"
	"math/rand"
	"testing"

	"yafim/internal/apriori"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
)

func TestFuzzSONAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nTx := 1 + rng.Intn(30)
		nItems := 1 + rng.Intn(10)
		rows := make([][]itemset.Item, nTx)
		for i := range rows {
			l := 1 + rng.Intn(nItems)
			for j := 0; j < l; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(nItems)))
			}
		}
		db := itemset.NewDB(fmt.Sprintf("f%d", seed), rows)
		for _, sup := range []float64{0.1, 0.3, 0.6} {
			for _, blockSize := range []int64{8, 24, 1 << 16} {
				fs := dfs.New(4, dfs.WithBlockSize(blockSize), dfs.WithReplication(2))
				path := "/data/x.dat"
				if _, err := dataset.Stage(fs, path, db); err != nil {
					t.Fatal(err)
				}
				runner, err := mapreduce.NewRunner(fs, cluster.Local())
				if err != nil {
					t.Fatal(err)
				}
				got, err := Mine(runner, fs, path, "/work", Config{MinSupport: sup})
				if err != nil {
					t.Fatalf("seed=%d sup=%v bs=%d: %v", seed, sup, blockSize, err)
				}
				want, err := apriori.Mine(db, sup, apriori.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !got.Result.Equal(want) {
					t.Errorf("seed=%d sup=%v bs=%d: SON disagrees\n got %d sets\nwant %d sets", seed, sup, blockSize, got.Result.NumFrequent(), want.NumFrequent())
				}
			}
		}
	}
}
