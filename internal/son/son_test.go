package son

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func stage(t *testing.T, db *itemset.DB, blockSize int64) (*mapreduce.Runner, *dfs.FileSystem, string) {
	t.Helper()
	fs := dfs.New(4, dfs.WithBlockSize(blockSize), dfs.WithReplication(2))
	path := "/data/" + db.Name + ".dat"
	if _, err := dataset.Stage(fs, path, db); err != nil {
		t.Fatal(err)
	}
	runner, err := mapreduce.NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	return runner, fs, path
}

func TestMineMatchesSequentialOracle(t *testing.T) {
	// Small blocks force several local-mining splits, which is where SON's
	// completeness argument actually gets exercised.
	for _, blockSize := range []int64{16, 64, 1 << 20} {
		runner, fs, path := stage(t, classicDB(), blockSize)
		got, err := Mine(runner, fs, path, "/work", Config{MinSupport: 2.0 / 9.0})
		if err != nil {
			t.Fatal(err)
		}
		want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Result.Equal(want) {
			t.Fatalf("blockSize=%d: SON disagrees with oracle:\n got %v\nwant %v",
				blockSize, got.Result.All(), want.All())
		}
	}
}

func TestMineRunsExactlyTwoJobs(t *testing.T) {
	runner, fs, path := stage(t, classicDB(), 32)
	got, err := Mine(runner, fs, path, "/work", Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	if jobs := len(runner.Reports()); jobs != 2 {
		t.Fatalf("SON ran %d jobs, want 2", jobs)
	}
	if len(got.Passes) != 2 {
		t.Fatalf("trace has %d passes, want 2", len(got.Passes))
	}
}

func TestMineInvalidInputs(t *testing.T) {
	runner, fs, path := stage(t, classicDB(), 32)
	if _, err := Mine(runner, fs, path, "/work", Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := Mine(runner, fs, "/missing", "/work", Config{MinSupport: 0.5}); err == nil {
		t.Error("missing input accepted")
	}
	bad := dfs.New(2)
	if err := bad.WriteFile("/bad.dat", []byte("1 nope\n"), nil); err != nil {
		t.Fatal(err)
	}
	badRunner, err := mapreduce.NewRunner(bad, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(badRunner, bad, "/bad.dat", "/work", Config{MinSupport: 0.5}); err == nil {
		t.Error("malformed transaction accepted")
	}
}

func TestMineNothingFrequent(t *testing.T) {
	db := itemset.NewDB("sparse", [][]itemset.Item{{1}, {2}, {3}, {4}})
	runner, fs, path := stage(t, db, 1<<20)
	got, err := Mine(runner, fs, path, "/work", Config{MinSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.NumFrequent() != 0 {
		t.Fatalf("frequent = %d", got.Result.NumFrequent())
	}
}

// Property: SON agrees with sequential Apriori on random databases and
// split granularities — the pigeonhole completeness argument, fuzzed.
func TestMineMatchesOracleProperty(t *testing.T) {
	f := func(seed int64, sup8, bs8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.15 + float64(sup8%7)/10.0
		blockSize := int64(bs8%64) + 8
		rows := make([][]itemset.Item, rng.Intn(20)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(8)))
			}
		}
		db := itemset.NewDB("rand", rows)
		fs := dfs.New(3, dfs.WithBlockSize(blockSize))
		if _, err := dataset.Stage(fs, "/r.dat", db); err != nil {
			return false
		}
		runner, err := mapreduce.NewRunner(fs, cluster.Local())
		if err != nil {
			return false
		}
		got, err := Mine(runner, fs, "/r.dat", "/work", Config{MinSupport: sup})
		if err != nil {
			return false
		}
		want, err := apriori.Mine(db, sup, apriori.Options{})
		if err != nil {
			return false
		}
		return got.Result.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSetKeyRoundTrip(t *testing.T) {
	s := itemset.New(5, 1, 300)
	back, err := parseSet(setKey(s))
	if err != nil || !back.Equal(s) {
		t.Fatalf("round trip %v -> %v (%v)", s, back, err)
	}
}
