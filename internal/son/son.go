// Package son implements the SON algorithm (Savasere, Omiecinski &
// Navathe) on the MapReduce engine — the "one-phase" family the paper's
// related-work section (§III) contrasts with k-phase algorithms like
// MRApriori. SON needs exactly two MapReduce jobs regardless of the longest
// frequent itemset:
//
//  1. Candidate job: each map task mines its input split locally with
//     sequential Apriori at the same relative support and emits every
//     locally frequent itemset. Any globally frequent itemset is locally
//     frequent in at least one split (pigeonhole on supports), so the union
//     of local results is a complete candidate set.
//  2. Count job: candidate supports are counted exactly over the full
//     dataset with the usual hash-tree mappers, and the reducer keeps those
//     meeting the global minimum support, eliminating false positives.
//
// Trading k job startups for potentially huge intermediate candidate sets
// is exactly the trade-off §III describes ("may lead memory overflow and
// too much execution time for large data sets").
package son

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"yafim/internal/apriori"
	"yafim/internal/dfs"
	"yafim/internal/hashtree"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/sim"
)

// Config parameterises a SON run.
type Config struct {
	// MinSupport is the relative minimum support threshold in (0,1].
	MinSupport float64
	// NumReducers sets reduce-side parallelism (0 = cluster core count).
	NumReducers int
	// NumMapTasks is a minimum map-task count hint (0 = one per block).
	NumMapTasks int
	// MaxK bounds the local mining depth (0 = unbounded).
	MaxK int
}

// Mine runs SON over the transaction file at inputPath, staging files under
// workDir. The returned trace has one pass per job (candidate generation,
// then counting).
func Mine(runner *mapreduce.Runner, fs *dfs.FileSystem, inputPath, workDir string,
	cfg Config) (*apriori.Trace, error) {
	return MineContext(context.Background(), runner, fs, inputPath, workDir, cfg)
}

// MineContext is Mine with cooperative cancellation: both MapReduce jobs run
// under ctx, so a cancel or deadline stops the run within one task boundary.
func MineContext(ctx context.Context, runner *mapreduce.Runner, fs *dfs.FileSystem,
	inputPath, workDir string, cfg Config) (*apriori.Trace, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("son: MinSupport %v out of (0,1]", cfg.MinSupport)
	}
	reducers := cfg.NumReducers
	if reducers <= 0 {
		reducers = runner.Config().TotalCores()
	}

	// Job 1: local mining per split; the reducer is a dedup (first value).
	candDir := workDir + "/candidates"
	mapreduce.CleanOutput(fs, candDir)
	rep1, counters, err := runner.RunContext(ctx, mapreduce.Job{
		Name:      "son-candidates",
		Input:     []string{inputPath},
		OutputDir: candDir,
		NewMapper: func() mapreduce.Mapper {
			return &localMiner{support: cfg.MinSupport, maxK: cfg.MaxK}
		},
		NewReducer:  func() mapreduce.Reducer { return dedupReducer{} },
		NumReducers: reducers,
		MapTasks:    cfg.NumMapTasks,
	})
	if err != nil {
		return nil, fmt.Errorf("son: candidate job: %w", err)
	}
	n := counters.MapInputRecords
	if n == 0 {
		return nil, fmt.Errorf("son: %s holds no transactions", inputPath)
	}
	minCount := minSupportCount(cfg.MinSupport, n)

	kvs, err := mapreduce.ReadOutput(fs, candDir, nil)
	if err != nil {
		return nil, fmt.Errorf("son: candidate output: %w", err)
	}
	var candidates []itemset.Itemset
	for _, kv := range kvs {
		set, err := parseSet(kv.Key)
		if err != nil {
			return nil, fmt.Errorf("son: candidate output: %w", err)
		}
		candidates = append(candidates, set)
	}

	trace := &apriori.Trace{Result: &apriori.Result{MinSupport: minCount}}
	trace.Passes = append(trace.Passes, apriori.PassStat{
		K: 1, Candidates: int(n), Frequent: len(candidates), Duration: rep1.Duration(),
	})
	if len(candidates) == 0 {
		return trace, nil
	}

	// Job 2: exact global counting of every candidate.
	cachePath := workDir + "/candidate-set"
	if err := fs.WriteFile(cachePath, encodeSets(candidates), nil); err != nil {
		return nil, fmt.Errorf("son: staging candidates: %w", err)
	}
	outDir := workDir + "/frequent"
	mapreduce.CleanOutput(fs, outDir)
	rep2, _, err := runner.RunContext(ctx, mapreduce.Job{
		Name:        "son-count",
		Input:       []string{inputPath},
		OutputDir:   outDir,
		NewMapper:   func() mapreduce.Mapper { return &countMapper{cachePath: cachePath} },
		NewCombiner: func() mapreduce.Reducer { return sumReducer{threshold: 0} },
		NewReducer:  func() mapreduce.Reducer { return sumReducer{threshold: minCount} },
		NumReducers: reducers,
		MapTasks:    cfg.NumMapTasks,
		CacheFiles:  []string{cachePath},
	})
	if err != nil {
		return nil, fmt.Errorf("son: count job: %w", err)
	}

	kvs, err = mapreduce.ReadOutput(fs, outDir, nil)
	if err != nil {
		return nil, fmt.Errorf("son: count output: %w", err)
	}
	byLevel := map[int][]apriori.SetCount{}
	for _, kv := range kvs {
		set, err := parseSet(kv.Key)
		if err != nil {
			return nil, fmt.Errorf("son: count output: %w", err)
		}
		count, err := strconv.Atoi(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("son: bad count %q for %q", kv.Value, kv.Key)
		}
		byLevel[set.Len()] = append(byLevel[set.Len()], apriori.SetCount{Set: set, Count: count})
	}
	frequent := 0
	for k := 1; ; k++ {
		sets, ok := byLevel[k]
		if !ok {
			break
		}
		frequent += len(sets)
		trace.Result.Levels = append(trace.Result.Levels, apriori.NewLevel(k, sets))
	}
	trace.Passes = append(trace.Passes, apriori.PassStat{
		K: 2, Candidates: len(candidates), Frequent: frequent, Duration: rep2.Duration(),
	})
	return trace, nil
}

// localMiner buffers its split's transactions and mines them in Cleanup,
// emitting each locally frequent itemset once.
type localMiner struct {
	support float64
	maxK    int
	rows    [][]itemset.Item
}

func (m *localMiner) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }

func (m *localMiner) Map(_ int64, line string, _ mapreduce.Emit, led *sim.Ledger) error {
	set, err := parseSet(line)
	if err != nil {
		return fmt.Errorf("son: transaction: %w", err)
	}
	m.rows = append(m.rows, set)
	led.AddCPU(float64(len(line)))
	return nil
}

func (m *localMiner) Cleanup(emit mapreduce.Emit, led *sim.Ledger) error {
	if len(m.rows) == 0 {
		return nil
	}
	db := itemset.NewDB("split", m.rows)
	res, err := apriori.Mine(db, m.support, apriori.Options{MaxK: m.maxK})
	if err != nil {
		return fmt.Errorf("son: local mining: %w", err)
	}
	// Local mining cost: approximate with transactions scanned per level.
	led.AddCPU(float64(db.Len() * max(res.MaxK(), 1) * 4))
	for _, level := range res.Levels {
		for _, sc := range level.Sets {
			emit(setKey(sc.Set), "1")
		}
	}
	return nil
}

// dedupReducer keeps one record per candidate key.
type dedupReducer struct{}

func (dedupReducer) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }

func (dedupReducer) Reduce(key string, _ []string, emit mapreduce.Emit, _ *sim.Ledger) error {
	emit(key, "1")
	return nil
}

// countMapper matches mixed-length candidates (one hash tree per length)
// against each transaction, counting matches into dense per-tree arrays
// (in-mapper combining) and emitting one <candidate, count> record per
// locally occurring candidate at cleanup.
type countMapper struct {
	cachePath string
	trees     []*hashtree.Tree
	keys      [][]string
	matchers  []*hashtree.Matcher
	counts    [][]int
	ops       float64
	rows      int
}

func (m *countMapper) Setup(cache mapreduce.CacheFiles, led *sim.Ledger) error {
	data, ok := cache[m.cachePath]
	if !ok {
		return fmt.Errorf("son: candidate file %s not localised", m.cachePath)
	}
	byLen := map[int][]itemset.Itemset{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		set, err := parseSet(line)
		if err != nil {
			return fmt.Errorf("son: candidate file: %w", err)
		}
		byLen[set.Len()] = append(byLen[set.Len()], set)
	}
	lengths := make([]int, 0, len(byLen))
	for k := range byLen {
		lengths = append(lengths, k)
	}
	sort.Ints(lengths)
	for _, k := range lengths {
		cands := byLen[k]
		keys := make([]string, len(cands))
		for i, c := range cands {
			keys[i] = setKey(c)
		}
		tree := hashtree.Build(cands)
		m.trees = append(m.trees, tree)
		m.keys = append(m.keys, keys)
		m.matchers = append(m.matchers, tree.NewMatcher())
		m.counts = append(m.counts, make([]int, len(cands)))
		led.AddCPU(float64(len(cands) * k))
	}
	return nil
}

// opsFlushRows is how many rows of subset-enumeration charges the count
// mapper batches locally before flushing them to the task ledger.
const opsFlushRows = 512

func (m *countMapper) Cleanup(emit mapreduce.Emit, led *sim.Ledger) error {
	led.AddCPU(m.ops)
	m.ops = 0
	for ti, counts := range m.counts {
		for i, c := range counts {
			if c != 0 {
				emit(m.keys[ti][i], strconv.Itoa(c))
			}
		}
	}
	return nil
}

func (m *countMapper) Map(_ int64, line string, emit mapreduce.Emit, led *sim.Ledger) error {
	set, err := parseSet(line)
	if err != nil {
		return fmt.Errorf("son: transaction: %w", err)
	}
	led.AddCPU(float64(len(line)))
	for ti, matcher := range m.matchers {
		counts := m.counts[ti]
		m.ops += float64(matcher.Subset(set, func(i int) { counts[i]++ }))
	}
	if m.rows++; m.rows%opsFlushRows == 0 {
		led.AddCPU(m.ops)
		m.ops = 0
	}
	return nil
}

// sumReducer sums counts and keeps keys meeting the threshold (0 keeps all,
// for combiner use).
type sumReducer struct{ threshold int }

func (sumReducer) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }

func (r sumReducer) Reduce(key string, values []string, emit mapreduce.Emit, _ *sim.Ledger) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("son: bad partial count %q for %q", v, key)
		}
		total += n
	}
	if total >= r.threshold {
		emit(key, strconv.Itoa(total))
	}
	return nil
}

func setKey(s itemset.Itemset) string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(int(it)))
	}
	return sb.String()
}

func parseSet(text string) (itemset.Itemset, error) {
	fields := strings.Fields(text)
	items := make([]itemset.Item, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad item %q", f)
		}
		items[i] = itemset.Item(v)
	}
	return itemset.New(items...), nil
}

func encodeSets(sets []itemset.Itemset) []byte {
	var sb strings.Builder
	for _, s := range sets {
		sb.WriteString(setKey(s))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func minSupportCount(rel float64, n int64) int {
	c := int(rel * float64(n))
	if float64(c) < rel*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}
