package chaos

import (
	"time"

	"yafim/internal/exec"
)

// NodeHealth counts task failures per node and blacklists nodes that fail
// too often, with exponentially growing blacklist windows — the scheduler
// consults Excluded before placing a stage. All times are virtual. A nil
// *NodeHealth is inert: every method is a no-op and nothing is ever
// excluded.
type NodeHealth struct {
	res      Resilience
	strikes  []int           // total failures attributed to each node
	until    []time.Duration // blacklisted while virtual now < until[node]
	dead     []bool          // permanently lost (crashed) nodes
	listings int64           // times any node entered a blacklist window
}

// NewNodeHealth tracks the given number of nodes under the given mitigation
// configuration.
func NewNodeHealth(nodes int, res Resilience) *NodeHealth {
	return &NodeHealth{
		res:     res,
		strikes: make([]int, nodes),
		until:   make([]time.Duration, nodes),
		dead:    make([]bool, nodes),
	}
}

// RecordFailure attributes one task failure to node at the given virtual
// time and reports whether that strike pushed the node into a (new or
// extended) blacklist window. The first window lasts BlacklistBase; each
// further strike doubles the window (the shared exec.Backoff arithmetic,
// capped against overflow).
func (h *NodeHealth) RecordFailure(node int, now time.Duration) bool {
	if h == nil || node < 0 || node >= len(h.strikes) || h.res.BlacklistAfter <= 0 {
		return false
	}
	h.strikes[node]++
	over := h.strikes[node] - h.res.BlacklistAfter
	if over < 0 {
		return false
	}
	h.until[node] = now + exec.Backoff{Base: h.res.BlacklistBase}.Delay(over)
	h.listings++
	return true
}

// MarkDead permanently excludes a crashed node.
func (h *NodeHealth) MarkDead(node int) {
	if h == nil || node < 0 || node >= len(h.dead) {
		return
	}
	h.dead[node] = true
}

// Excluded returns the per-node exclusion mask at the given virtual time, or
// nil when no node is excluded. If exclusion would leave no schedulable
// node, blacklists are ignored (dead nodes stay dead) — a cluster must not
// deadlock itself.
func (h *NodeHealth) Excluded(now time.Duration) []bool {
	if h == nil {
		return nil
	}
	var out []bool
	alive, usable := 0, 0
	for i := range h.strikes {
		ex := h.dead[i] || now < h.until[i]
		if ex && out == nil {
			out = make([]bool, len(h.strikes))
		}
		if out != nil && ex {
			out[i] = true
		}
		if !h.dead[i] {
			alive++
			if now >= h.until[i] {
				usable++
			}
		}
	}
	if out == nil {
		return nil
	}
	if usable == 0 {
		if alive == len(h.dead) {
			return nil // nothing dead, everything blacklisted: ignore blacklists
		}
		out = make([]bool, len(h.dead))
		copy(out, h.dead)
	}
	return out
}

// Blacklistings returns how many blacklist windows have been opened so far.
func (h *NodeHealth) Blacklistings() int64 {
	if h == nil {
		return 0
	}
	return h.listings
}
