// Package chaos provides the deterministic, seed-driven fault model the
// execution engines consult while they run: transient task failures, whole
// node crashes at a chosen virtual time, straggler slowdowns, shuffle-fetch
// losses and DFS block-read failures — plus the mitigation configuration
// (speculative execution, node blacklisting with exponential backoff, DFS
// re-replication) and the per-node failure bookkeeping behind blacklisting.
//
// Every fault decision is a pure function of the plan seed and the decision's
// identity (stage name, task index, attempt number, ...), never of goroutine
// scheduling or call order. Two runs with the same seed therefore inject
// exactly the same faults in exactly the same places, which is what keeps
// mined itemsets, makespans and traces byte-identical across runs — the
// property the chaos invariant suite asserts.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"
)

// Straggler marks one node as running every task at a service-time
// multiplier, the way an overloaded or degraded machine would.
type Straggler struct {
	Node   int
	Factor float64 // >= 1; 4 means tasks on this node take 4x as long
}

// NodeCrash schedules the permanent loss of one worker node at a virtual
// time: its cached RDD partitions, in-flight map outputs and DFS replicas
// are gone; the engines must recover via lineage, task re-execution and
// re-replication.
type NodeCrash struct {
	Node int
	At   time.Duration // virtual time into the run
}

// Plan is a complete fault schedule for one run. The zero value (and a nil
// *Plan) injects nothing; every decision method is nil-safe.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// TaskFailProb is the per-attempt probability that a task attempt fails
	// transiently after doing its work (a lost heartbeat, a crashed executor
	// thread). The engines never consult it on a task's final permitted
	// attempt, so injected failures cannot fail a job.
	TaskFailProb float64
	// FetchFailProb is the per-(stage, reduce partition) probability that a
	// shuffle fetch fails because one map task's output is unavailable,
	// forcing parent re-execution.
	FetchFailProb float64
	// BlockReadFailProb is the per-(path, offset) probability that a DFS
	// block read fails on its first replica and is retried from another
	// replica over the network.
	BlockReadFailProb float64
	// Stragglers lists nodes running at a cost multiplier.
	Stragglers []Straggler
	// Crash, when non-nil, kills one node mid-run.
	Crash *NodeCrash
}

// Validate reports a descriptive error if the plan is unusable.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"TaskFailProb", p.TaskFailProb},
		{"FetchFailProb", p.FetchFailProb},
		{"BlockReadFailProb", p.BlockReadFailProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaos: %s %g out of [0,1]", pr.name, pr.v)
		}
	}
	for _, s := range p.Stragglers {
		if s.Node < 0 {
			return fmt.Errorf("chaos: straggler node %d negative", s.Node)
		}
		if s.Factor < 1 {
			return fmt.Errorf("chaos: straggler factor %g on node %d must be >= 1", s.Factor, s.Node)
		}
	}
	if p.Crash != nil {
		if p.Crash.Node < 0 {
			return fmt.Errorf("chaos: crash node %d negative", p.Crash.Node)
		}
		if p.Crash.At < 0 {
			return fmt.Errorf("chaos: crash time %v negative", p.Crash.At)
		}
	}
	return nil
}

// DefaultPlan returns a moderate all-faults-enabled plan suitable for CLI
// smoke runs: 5% transient task failures, 2% fetch failures, 1% block-read
// retries and one 4x straggler node. It schedules no crash — crashes need a
// virtual time chosen against the run's expected duration.
func DefaultPlan(seed int64) *Plan {
	return &Plan{
		Seed:              seed,
		TaskFailProb:      0.05,
		FetchFailProb:     0.02,
		BlockReadFailProb: 0.01,
		Stragglers:        []Straggler{{Node: 1, Factor: 4}},
	}
}

// Unit maps (seed, domain, keys...) to a deterministic uniform value in
// [0, 1). FNV-1a is stable across platforms and Go versions. It is the one
// randomness primitive shared by every seeded decision in the repository:
// the fault plan's injection choices here, and the distributed runtime's
// seeded network-fault transport (dist.ChaosTransport), which hashes its
// drop/delay/duplicate decisions through the same construction so a
// transport fault schedule is as reproducible as a sim fault plan.
func Unit(seed int64, domain string, keys ...int64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(domain))
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], uint64(k))
		h.Write(buf[:])
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// hash01 maps the decision identity to a deterministic uniform value in
// [0, 1) under the plan's seed.
func (p *Plan) hash01(domain string, keys ...int64) float64 {
	return Unit(p.Seed, domain, keys...)
}

// hashN maps the decision identity to a deterministic value in [0, n).
func (p *Plan) hashN(n int, domain string, keys ...int64) int {
	if n <= 0 {
		return 0
	}
	return int(p.hash01(domain, keys...) * float64(n))
}

// TaskFails reports whether the given attempt of the given task fails
// transiently. Engines must not consult it on a task's last permitted
// attempt, so injection can never exhaust the retry budget.
func (p *Plan) TaskFails(stage string, task, attempt int) bool {
	if p == nil || p.TaskFailProb <= 0 {
		return false
	}
	return p.hash01("task:"+stage, int64(task), int64(attempt)) < p.TaskFailProb
}

// FailureNode attributes a failed attempt to the node it ran on, for the
// per-node failure counting behind blacklisting. The attribution is part of
// the fault model (the schedule that placed the attempt is computed after
// all attempts finish), so it is drawn deterministically from the plan.
func (p *Plan) FailureNode(stage string, task, attempt, nodes int) int {
	if p == nil {
		return 0
	}
	return p.hashN(nodes, "failnode:"+stage, int64(task), int64(attempt))
}

// FetchFails reports whether the shuffle fetch feeding the given reduce
// partition of the given stage loses one map task's output.
func (p *Plan) FetchFails(stage string, part int) bool {
	if p == nil || p.FetchFailProb <= 0 {
		return false
	}
	return p.hash01("fetch:"+stage, int64(part)) < p.FetchFailProb
}

// FetchVictim picks which of the stage's maps map outputs the failed fetch
// lost.
func (p *Plan) FetchVictim(stage string, part, maps int) int {
	if p == nil {
		return 0
	}
	return p.hashN(maps, "fetchvictim:"+stage, int64(part))
}

// ReadFails reports whether a DFS read of path at the given offset fails on
// its first replica, forcing a retry from another replica.
func (p *Plan) ReadFails(path string, off int64) bool {
	if p == nil || p.BlockReadFailProb <= 0 {
		return false
	}
	return p.hash01("read:"+path, off) < p.BlockReadFailProb
}

// NodeFactors expands the straggler list into a per-node service-time
// multiplier table for a cluster of the given size, or nil when no straggler
// lands inside the cluster.
func (p *Plan) NodeFactors(nodes int) []float64 {
	if p == nil || len(p.Stragglers) == 0 {
		return nil
	}
	var out []float64
	for _, s := range p.Stragglers {
		if s.Node >= nodes || s.Factor <= 1 {
			continue
		}
		if out == nil {
			out = make([]float64, nodes)
			for i := range out {
				out[i] = 1
			}
		}
		out[s.Node] = s.Factor
	}
	return out
}

// InjectedError is the failure the engines surface for a plan-injected task
// failure; tests use the type to distinguish injected from genuine errors.
type InjectedError struct {
	Stage   string
	Task    int
	Attempt int
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected failure in stage %q task %d attempt %d",
		e.Stage, e.Task, e.Attempt)
}

// Resilience configures the engines' fault mitigation. The zero value
// disables everything (the pre-chaos behaviour); Defaults returns the
// Spark/Hadoop-flavoured configuration the chaos experiments run with.
type Resilience struct {
	// SpecThreshold launches a speculative backup copy of any task running
	// longer than SpecThreshold x the stage's median task time (0 disables
	// speculation; Spark's spark.speculation.multiplier defaults to 1.5).
	SpecThreshold float64
	// SpecMinTasks skips speculation in stages smaller than this (medians of
	// tiny stages are noise).
	SpecMinTasks int
	// BlacklistAfter blacklists a node after this many task failures are
	// attributed to it (0 disables blacklisting).
	BlacklistAfter int
	// BlacklistBase is the first blacklisting's duration in virtual time;
	// every further strike doubles it (exponential backoff).
	BlacklistBase time.Duration
	// ReReplicate restores the replication factor of DFS blocks that lost a
	// replica to a node crash.
	ReReplicate bool
}

// Defaults returns the standard mitigation configuration: 1.5x-median
// speculation over stages of at least 4 tasks, blacklisting after 3 failures
// with a 30-second virtual backoff base, and DFS re-replication on.
func Defaults() Resilience {
	return Resilience{
		SpecThreshold:  1.5,
		SpecMinTasks:   4,
		BlacklistAfter: 3,
		BlacklistBase:  30 * time.Second,
		ReReplicate:    true,
	}
}
