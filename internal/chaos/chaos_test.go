package chaos

import (
	"math"
	"testing"
	"time"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if p.TaskFails("map", 0, 0) || p.FetchFails("shuffle", 0) || p.ReadFails("/a", 0) {
		t.Fatal("nil plan injected a fault")
	}
	if p.NodeFactors(4) != nil {
		t.Fatal("nil plan produced straggler factors")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("nil plan failed validation: %v", err)
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, TaskFailProb: 0.5, FetchFailProb: 0.5, BlockReadFailProb: 0.5}
	q := &Plan{Seed: 7, TaskFailProb: 0.5, FetchFailProb: 0.5, BlockReadFailProb: 0.5}
	for task := 0; task < 50; task++ {
		for attempt := 0; attempt < 4; attempt++ {
			if p.TaskFails("stage", task, attempt) != q.TaskFails("stage", task, attempt) {
				t.Fatalf("TaskFails(%d,%d) differs across identical plans", task, attempt)
			}
		}
		if p.FetchVictim("s", task, 8) != q.FetchVictim("s", task, 8) {
			t.Fatalf("FetchVictim(%d) differs across identical plans", task)
		}
	}
}

func TestDecisionsIndependentOfCallOrder(t *testing.T) {
	p := &Plan{Seed: 3, TaskFailProb: 0.5}
	// Record forward, then compare against reverse-order calls.
	fwd := make([]bool, 100)
	for i := range fwd {
		fwd[i] = p.TaskFails("s", i, 0)
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		if p.TaskFails("s", i, 0) != fwd[i] {
			t.Fatalf("TaskFails(%d) depends on call order", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := &Plan{Seed: 1, TaskFailProb: 0.5}
	b := &Plan{Seed: 2, TaskFailProb: 0.5}
	same := true
	for i := 0; i < 64 && same; i++ {
		same = a.TaskFails("s", i, 0) == b.TaskFails("s", i, 0)
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault streams")
	}
}

func TestFailureRateTracksProbability(t *testing.T) {
	p := &Plan{Seed: 42, TaskFailProb: 0.2}
	n, fails := 20000, 0
	for i := 0; i < n; i++ {
		if p.TaskFails("s", i, 0) {
			fails++
		}
	}
	got := float64(fails) / float64(n)
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("empirical failure rate %.3f, want ~0.20", got)
	}
}

func TestFetchVictimInRange(t *testing.T) {
	p := &Plan{Seed: 9}
	for part := 0; part < 100; part++ {
		if v := p.FetchVictim("s", part, 7); v < 0 || v >= 7 {
			t.Fatalf("FetchVictim out of range: %d", v)
		}
		if v := p.FailureNode("s", part, 1, 12); v < 0 || v >= 12 {
			t.Fatalf("FailureNode out of range: %d", v)
		}
	}
}

func TestNodeFactors(t *testing.T) {
	p := &Plan{Seed: 1, Stragglers: []Straggler{{Node: 2, Factor: 4}, {Node: 99, Factor: 8}}}
	f := p.NodeFactors(4)
	want := []float64{1, 1, 4, 1}
	if len(f) != len(want) {
		t.Fatalf("NodeFactors len = %d, want %d", len(f), len(want))
	}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("NodeFactors[%d] = %g, want %g", i, f[i], want[i])
		}
	}
	// All stragglers outside the cluster: no table at all.
	if got := p.NodeFactors(2); got != nil {
		t.Fatalf("NodeFactors(2) = %v, want nil", got)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []*Plan{
		{TaskFailProb: -0.1},
		{FetchFailProb: 1.5},
		{BlockReadFailProb: 2},
		{Stragglers: []Straggler{{Node: -1, Factor: 2}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 0.5}}},
		{Crash: &NodeCrash{Node: -1}},
		{Crash: &NodeCrash{Node: 0, At: -time.Second}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d passed validation", i)
		}
	}
	if err := DefaultPlan(1).Validate(); err != nil {
		t.Fatalf("DefaultPlan failed validation: %v", err)
	}
}

func TestNodeHealthBlacklisting(t *testing.T) {
	res := Resilience{BlacklistAfter: 3, BlacklistBase: 10 * time.Second}
	h := NewNodeHealth(4, res)

	// Two strikes: not yet blacklisted.
	if h.RecordFailure(1, 0) || h.RecordFailure(1, time.Second) {
		t.Fatal("blacklisted before reaching the threshold")
	}
	if h.Excluded(2*time.Second) != nil {
		t.Fatal("node excluded before reaching the threshold")
	}

	// Third strike opens a BlacklistBase window.
	if !h.RecordFailure(1, 2*time.Second) {
		t.Fatal("third strike did not blacklist")
	}
	ex := h.Excluded(5 * time.Second)
	if ex == nil || !ex[1] {
		t.Fatalf("node 1 not excluded during window: %v", ex)
	}
	if h.Excluded(13*time.Second) != nil {
		t.Fatal("exclusion persisted past the window")
	}

	// Fourth strike doubles the window: 20s from now.
	if !h.RecordFailure(1, 20*time.Second) {
		t.Fatal("fourth strike did not blacklist")
	}
	if ex := h.Excluded(39 * time.Second); ex == nil || !ex[1] {
		t.Fatal("doubled window not in effect")
	}
	if h.Excluded(41*time.Second) != nil {
		t.Fatal("doubled window lasted too long")
	}
	if h.Blacklistings() != 2 {
		t.Fatalf("Blacklistings = %d, want 2", h.Blacklistings())
	}
}

func TestNodeHealthNeverExcludesEverything(t *testing.T) {
	res := Resilience{BlacklistAfter: 1, BlacklistBase: time.Hour}
	h := NewNodeHealth(2, res)
	h.RecordFailure(0, 0)
	h.RecordFailure(1, 0)
	if ex := h.Excluded(time.Second); ex != nil {
		t.Fatalf("all nodes excluded would deadlock the scheduler: %v", ex)
	}

	// With one node dead and the other blacklisted, only the dead node stays
	// excluded.
	h.MarkDead(0)
	ex := h.Excluded(time.Second)
	if ex == nil || !ex[0] || ex[1] {
		t.Fatalf("want only dead node excluded, got %v", ex)
	}
}

func TestNodeHealthNilSafe(t *testing.T) {
	var h *NodeHealth
	if h.RecordFailure(0, 0) {
		t.Fatal("nil health blacklisted")
	}
	h.MarkDead(0)
	if h.Excluded(0) != nil || h.Blacklistings() != 0 {
		t.Fatal("nil health excluded a node")
	}
}

func TestInjectedErrorMessage(t *testing.T) {
	e := &InjectedError{Stage: "map", Task: 3, Attempt: 1}
	want := `chaos: injected failure in stage "map" task 3 attempt 1`
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}
