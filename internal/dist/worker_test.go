package dist

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"yafim/internal/exec"
	"yafim/internal/obs"
)

// TestReduceFetchBudget checks the reduce fetch fan-in's wall-clock bound: a
// peer that accepts connections but never answers (a half-open partition, the
// failure heartbeats cannot see) must surface as FetchFailed within the
// budget, naming the starved map, instead of retrying forever.
func TestReduceFetchBudget(t *testing.T) {
	typ := wordCountType(t)

	// A black-hole peer: accepts TCP, never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() //nolint:errcheck
		}
	}()

	log := obs.NewEventLog(nil)
	w := &worker{
		opts: WorkerOptions{
			Fetch:        exec.Backoff{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond},
			FetchRetries: 1000, // per-target budget far beyond the wall clock
			FetchBudget:  250 * time.Millisecond,
		},
		client:  &http.Client{Timeout: 10 * time.Second},
		log:     log,
		outputs: map[outputKey][]partitionData{},
		caches:  map[cacheKey][]byte{},
	}

	task := &TaskSpec{
		Job: "j", Seq: 1, Type: typ, Phase: PhaseReduce, Index: 0,
		NumMaps: 1, NumReducers: 1, MapAddrs: []string{ln.Addr().String()},
	}
	start := time.Now()
	_, failed, rerr := w.runReduce(context.Background(), task)
	elapsed := time.Since(start)

	if rerr == nil {
		t.Fatal("runReduce succeeded against a black-hole peer")
	}
	if len(failed) != 1 || failed[0] != 0 {
		t.Fatalf("FailedMaps = %v, want [0]", failed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("budget of 250ms took %v to trip", elapsed)
	}
	exhausted := false
	for _, ev := range log.Events() {
		if ev.Event == "fetch_budget_exhausted" {
			exhausted = true
		}
	}
	if !exhausted {
		t.Fatal("no fetch_budget_exhausted event journaled")
	}
}

// TestReduceDrainBeatsBudget checks the disambiguation: when the worker
// itself is draining (outer context canceled), the fetch failure is NOT a
// verdict against the map output — no FailedMaps, so the master does not
// invalidate a healthy producer.
func TestReduceDrainBeatsBudget(t *testing.T) {
	typ := wordCountType(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() //nolint:errcheck
		}
	}()

	w := &worker{
		opts: WorkerOptions{
			Fetch:        exec.Backoff{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond},
			FetchRetries: 1000,
			FetchBudget:  time.Minute,
		},
		client:  &http.Client{Timeout: 10 * time.Second},
		outputs: map[outputKey][]partitionData{},
		caches:  map[cacheKey][]byte{},
	}
	task := &TaskSpec{
		Job: "j", Seq: 1, Type: typ, Phase: PhaseReduce, Index: 0,
		NumMaps: 1, NumReducers: 1, MapAddrs: []string{ln.Addr().String()},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, failed, rerr := w.runReduce(ctx, task)
	if rerr == nil {
		t.Fatal("runReduce succeeded while draining")
	}
	if len(failed) != 0 {
		t.Fatalf("drain blamed map outputs: FailedMaps = %v, want none", failed)
	}
}
