package dist_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/dist"
	"yafim/internal/mapreduce"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
)

// TestMasterKillResumeParity is the durable-recovery acceptance test: mine a
// database across two real worker processes, kill the MASTER mid-pass —
// abort semantics, dropping even the journal records buffered since the last
// fsync — then restart it on the same address from the journal. The worker
// processes (which never died, and still hold computed map outputs) must
// reconnect on their own, re-advertise those outputs, and carry the resumed
// run to frequent itemsets byte-identical to the in-memory sim oracle's.
func TestMasterKillResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	db := syntheticDB(1500)
	cfg := mrapriori.Config{MinSupport: 0.15, NumReducers: 3, NumMapTasks: 4}

	// Sim oracle.
	fs := dfs.New(4)
	if _, err := dataset.Stage(fs, "/data/synthetic.dat", db); err != nil {
		t.Fatal(err)
	}
	runner, err := mapreduce.NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mrapriori.MineContext(context.Background(), runner, fs,
		"/data/synthetic.dat", "/work", cfg)
	if err != nil {
		t.Fatal(err)
	}

	input := filepath.Join(t.TempDir(), "synthetic.dat")
	if err := dataset.SaveFile(db, input); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "master.wal")
	tuning := dist.Tuning{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		LeaseDeadline:     20 * time.Second,
	}

	log1 := obs.NewEventLog(nil)
	master, err := dist.StartMaster(dist.MasterOptions{
		Addr: "127.0.0.1:0", Tuning: tuning, Log: log1, Reg: obs.NewRegistry(),
		JournalPath: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := master.Addr() // the restarted master must come back here

	forkWorker(t, master.URL())
	forkWorker(t, master.URL())
	waitFor(t, 10*time.Second, "2 workers to register", func() bool {
		return master.LiveWorkers() == 2
	})

	// Assassin: at the first completed task, kill the master the way SIGKILL
	// would — connections slam shut, unsynced journal tail lost.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			for _, ev := range log1.Events() {
				if ev.Event == "task_complete" {
					master.Abort()
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// First driver attempt runs into the murder; unblock it by canceling.
	dctx, dcancel := context.WithCancel(context.Background())
	driverDone := make(chan error, 1)
	go func() {
		_, err := mrapriori.MineDistributed(dctx, master, input, cfg)
		driverDone <- err
	}()
	select {
	case <-killed:
	case <-time.After(60 * time.Second):
		t.Fatal("assassin never fired: no task completions observed")
	}
	dcancel()
	if err := <-driverDone; err == nil {
		// The whole run beat the assassin; parity still must hold below, but
		// note it so a flaky-fast environment is visible in the log.
		t.Log("driver finished before the master died; resume will be memo-only")
	}

	// Restart from the journal, on the same address the workers keep dialing.
	log2 := obs.NewEventLog(nil)
	master2, err := dist.StartMaster(dist.MasterOptions{
		Addr: addr, Tuning: tuning, Log: log2, Reg: obs.NewRegistry(),
		JournalPath: journal, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume from journal: %v", err)
	}
	defer master2.Close()

	// The surviving worker processes notice the restart (heartbeat/lease gets
	// Rejoin or connection errors) and re-register without any help.
	waitFor(t, 20*time.Second, "workers to rejoin the restarted master", func() bool {
		return master2.LiveWorkers() == 2
	})

	// The resumed driver re-runs the deterministic pass sequence: finished
	// passes return from the journal memo, the in-flight pass is adopted.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := mrapriori.MineDistributed(ctx, master2, input, cfg)
	if err != nil {
		t.Fatalf("resumed mining failed: %v", err)
	}

	if !got.Result.Equal(want.Result) {
		t.Errorf("resumed itemsets diverge from sim oracle:\n dist %v\n sim  %v",
			got.Result.All(), want.Result.All())
	}
	if got.Result.MinSupport != want.Result.MinSupport {
		t.Errorf("absolute min support: dist %d, sim %d",
			got.Result.MinSupport, want.Result.MinSupport)
	}

	// The second life must show the recovery machinery actually engaged.
	var resumes, rejoins, adoptsOrMemos int
	for _, ev := range log2.Events() {
		switch ev.Event {
		case "master_resume":
			resumes++
		case "worker_register":
			rejoins++
		case "job_adopt", "job_memoized":
			adoptsOrMemos++
		}
	}
	if resumes != 1 {
		t.Errorf("restarted master journaled %d master_resume events, want 1", resumes)
	}
	if rejoins < 2 {
		t.Errorf("restarted master saw %d registrations, want the 2 survivors back", rejoins)
	}
	if adoptsOrMemos == 0 {
		t.Error("no job_adopt or job_memoized event: the journal bought nothing")
	}
	t.Logf("second life: %d rejoins, %d adopt/memo events, %d events total",
		rejoins, adoptsOrMemos, len(log2.Events()))
}
