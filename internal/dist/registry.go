package dist

import (
	"fmt"
	"sync"

	"yafim/internal/mapreduce"
)

// JobType binds a job-type name to the factories that build its map/reduce
// closures from the job's parameter blob. Both executors instantiate tasks
// through the registry: the in-memory oracle feeds the factories into the
// sim engine, and every worker process resolves the leased task's Type the
// same way — which is how a master can describe work to another process
// without shipping code.
type JobType struct {
	// NewMapper builds a fresh mapper per map task.
	NewMapper func(params []byte) (mapreduce.Mapper, error)
	// NewCombiner builds the optional map-side combiner (nil disables).
	NewCombiner func(params []byte) (mapreduce.Reducer, error)
	// NewReducer builds a fresh reducer per reduce task.
	NewReducer func(params []byte) (mapreduce.Reducer, error)
}

var (
	regMu    sync.RWMutex
	jobTypes = map[string]JobType{}
)

// RegisterJobType makes a job type available to both executors under name.
// Registration typically happens from the algorithm package's Register
// function, called by drivers and worker mains alike. Re-registering a name
// panics: two meanings for one wire name would make results depend on
// process identity.
func RegisterJobType(name string, jt JobType) {
	if name == "" || jt.NewMapper == nil || jt.NewReducer == nil {
		panic("dist: RegisterJobType needs a name, a mapper and a reducer")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := jobTypes[name]; ok {
		panic(fmt.Sprintf("dist: job type %q registered twice", name))
	}
	jobTypes[name] = jt
}

// lookupJobType resolves a registered job type.
func lookupJobType(name string) (JobType, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	jt, ok := jobTypes[name]
	if !ok {
		return JobType{}, fmt.Errorf("dist: unknown job type %q (not registered in this process)", name)
	}
	return jt, nil
}
