package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// The master's write-ahead journal: one JSONL record per lease-table state
// transition, appended under the table lock and fsync'd in batches. The
// journal exists so a SIGKILLed master can be restarted with its state
// intact (see replay.go); it is distinct from the live obs.EventLog, which
// is an observability surface and makes no durability promises.
//
// Durability contract: losing any *suffix* of the journal is always safe.
// Every record describes work a worker can redo (an unjournaled completion
// is simply re-leased after replay; an unjournaled registration is repaired
// by the rejoin path), so fsync batching trades re-work, never correctness.
// Records that retire work (completions, job boundaries, invalidations) are
// synced before the master acknowledges them; chatter that is cheap to
// reconstruct (lease grants, strikes, registrations) rides along with the
// next synced batch.

// Journal record kinds.
const (
	recJobStart   = "job_start"
	recRegister   = "register"
	recWorkerDead = "worker_dead"
	recStrike     = "strike"
	recLease      = "lease"
	recMapDone    = "map_done"
	recMapLost    = "map_lost"
	recMapRebind  = "map_rebind"
	recReduceDone = "reduce_done"
	recJobDone    = "job_done"
	recJobFail    = "job_fail"
)

// walRecord is one journal line. One flat struct covers every record kind;
// unused fields stay zero and are omitted from the JSON. Task is the task
// index offset by one (the LiveEvent convention), so index 0 survives
// omitempty; readers subtract one.
type walRecord struct {
	Rec string `json:"rec"`

	// Job identity (job_start, job_done, job_fail).
	Job         string  `json:"job,omitempty"`
	Type        string  `json:"type,omitempty"`
	InputPath   string  `json:"input_path,omitempty"`
	Seq         int     `json:"seq,omitempty"`
	Splits      []Split `json:"splits,omitempty"`
	NumReducers int     `json:"num_reducers,omitempty"`

	// Worker identity (register, worker_dead, strike, lease, completions).
	Worker int    `json:"worker,omitempty"`
	Addr   string `json:"addr,omitempty"`

	// Task identity (lease, map_done, map_lost, map_rebind, reduce_done).
	Phase   string `json:"phase,omitempty"`
	Task    int    `json:"task,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// Completion payloads.
	InputRecords    int64  `json:"input_records,omitempty"`
	Output          []KV   `json:"output,omitempty"`
	MapInputRecords int64  `json:"map_input_records,omitempty"`
	DurationNS      int64  `json:"duration_ns,omitempty"`
	Error           string `json:"error,omitempty"`
}

// durationFromNS converts a journaled duration back to time.Duration.
func durationFromNS(ns int64) time.Duration { return time.Duration(ns) }

// wal is the append-only journal writer. A nil *wal ignores every call, so
// a journal-less master costs nothing. Appends buffer through bufio; sync
// flushes the buffer and fsyncs the file, covering every record appended
// since the previous sync — the "fsync'd batches" in the package contract.
type wal struct {
	mu    sync.Mutex
	f     *os.File
	bw    *bufio.Writer
	enc   *json.Encoder
	dead  bool  // abort() was called: drop everything silently
	syncs int64 // fsyncs issued, for tests
}

// openWAL opens (creating if needed) the journal for appending.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: journal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	return &wal{f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// append journals one record. With sync set, the buffered batch is flushed
// and fsync'd before returning — the caller may then acknowledge the state
// transition to a worker. Write errors are swallowed by design: a full disk
// must degrade durability, not kill a running job (the next resume simply
// replays less).
func (w *wal) append(rec walRecord, sync bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return
	}
	w.enc.Encode(rec) //nolint:errcheck // see doc comment
	if sync {
		w.bw.Flush() //nolint:errcheck
		w.f.Sync()   //nolint:errcheck
		w.syncs++
	}
}

// close flushes, fsyncs and closes the journal (graceful shutdown).
func (w *wal) close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return nil
	}
	w.dead = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close() //nolint:errcheck
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close() //nolint:errcheck
		return err
	}
	return w.f.Close()
}

// abort emulates the journal's fate under SIGKILL: the bufio buffer — every
// record since the last sync — is dropped, the descriptor closed, and all
// further appends ignored. Tests kill a master with Abort and must observe
// exactly the durability the real crash would leave behind.
func (w *wal) abort() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return
	}
	w.dead = true
	w.f.Close() //nolint:errcheck // buffered bytes deliberately dropped
}
