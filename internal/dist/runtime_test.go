package dist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"yafim/internal/mapreduce"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// wordMapper and wordSum form the test job type: classic word count, enough
// to exercise splits, partitioning, combining and the shuffle.
type wordMapper struct{}

func (wordMapper) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }
func (wordMapper) Cleanup(mapreduce.Emit, *sim.Ledger) error     { return nil }
func (wordMapper) Map(_ int64, line string, emit mapreduce.Emit, _ *sim.Ledger) error {
	for _, w := range strings.Fields(line) {
		emit(w, "1")
	}
	return nil
}

type wordSum struct{}

func (wordSum) Setup(mapreduce.CacheFiles, *sim.Ledger) error { return nil }
func (wordSum) Reduce(key string, values []string, emit mapreduce.Emit, _ *sim.Ledger) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
	return nil
}

var registerWordCount sync.Once

func wordCountType(t *testing.T) string {
	t.Helper()
	registerWordCount.Do(func() {
		RegisterJobType("test-wordcount", JobType{
			NewMapper:   func([]byte) (mapreduce.Mapper, error) { return wordMapper{}, nil },
			NewCombiner: func([]byte) (mapreduce.Reducer, error) { return wordSum{}, nil },
			NewReducer:  func([]byte) (mapreduce.Reducer, error) { return wordSum{}, nil },
		})
	})
	return "test-wordcount"
}

// writeCorpus writes a deterministic multi-line input file and returns its
// path. Repetitive but not uniform, so counts differ across words.
func writeCorpus(t *testing.T, lines int) string {
	t.Helper()
	var sb strings.Builder
	words := []string{"tea", "coffee", "water", "juice", "milk"}
	for i := 0; i < lines; i++ {
		for j := 0; j <= i%len(words); j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[(i+j)%len(words)])
		}
		sb.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "corpus.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fastTuning is a real-time protocol configuration quick enough for tests.
func fastTuning() Tuning {
	return Tuning{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		LeaseDeadline:     10 * time.Second,
		MaxWorkers:        8,
		MaxTaskAttempts:   8,
		BlacklistAfter:    3,
		BlacklistBase:     200 * time.Millisecond,
	}
}

// startWorkers runs n in-process workers against the master and returns a
// stop function that drains them.
func startWorkers(t *testing.T, masterURL string, n int) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, WorkerOptions{MasterURL: masterURL}); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return cancel
}

func TestMasterWorkersMatchLocalOracle(t *testing.T) {
	typ := wordCountType(t)
	input := writeCorpus(t, 200)
	spec := func() *JobSpec {
		return &JobSpec{
			Name: "wc", Type: typ, InputPath: input,
			NumMaps: 4, NumReducers: 3,
		}
	}

	oracle, err := (&Local{}).ExecJob(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}
	if oracle.MapInputRecords != 200 {
		t.Fatalf("oracle consumed %d records, want 200", oracle.MapInputRecords)
	}

	log := obs.NewEventLog(nil)
	master, err := NewMaster("127.0.0.1:0", fastTuning(), log, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	startWorkers(t, master.URL(), 2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := master.ExecJob(ctx, spec())
	if err != nil {
		t.Fatal(err)
	}

	if got.MapInputRecords != oracle.MapInputRecords {
		t.Errorf("input records: dist %d, oracle %d", got.MapInputRecords, oracle.MapInputRecords)
	}
	if !reflect.DeepEqual(got.KVs, oracle.KVs) {
		t.Errorf("output diverges from oracle:\n dist   %v\n oracle %v", got.KVs, oracle.KVs)
	}

	// The journal must show both workers registering and real task flow.
	events := log.Events()
	registers, completions := 0, 0
	for _, ev := range events {
		switch ev.Event {
		case "worker_register":
			registers++
		case "task_complete":
			completions++
		}
	}
	if registers != 2 {
		t.Errorf("journal shows %d registrations, want 2", registers)
	}
	if completions != 4+3 {
		t.Errorf("journal shows %d completions, want 7", completions)
	}
}

func TestMasterSequentialJobs(t *testing.T) {
	typ := wordCountType(t)
	input := writeCorpus(t, 50)
	master, err := NewMaster("127.0.0.1:0", fastTuning(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	startWorkers(t, master.URL(), 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var first *JobOutput
	for i := 0; i < 3; i++ {
		out, err := master.ExecJob(ctx, &JobSpec{
			Name: fmt.Sprintf("wc-%d", i), Type: typ, InputPath: input,
			NumMaps: 2, NumReducers: 2,
		})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		out.Duration = 0
		if first == nil {
			first = out
		} else if !reflect.DeepEqual(out, first) {
			t.Fatalf("job %d output differs from job 0", i)
		}
	}
}

func TestMasterExecJobCanceled(t *testing.T) {
	typ := wordCountType(t)
	input := writeCorpus(t, 50)
	master, err := NewMaster("127.0.0.1:0", fastTuning(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	// No workers: the job can never finish; cancellation must unblock.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = master.ExecJob(ctx, &JobSpec{
		Name: "wc", Type: typ, InputPath: input, NumMaps: 2, NumReducers: 2,
	})
	if err == nil {
		t.Fatal("canceled job returned no error")
	}
}

func TestSplitFileRoundTrip(t *testing.T) {
	input := writeCorpus(t, 100)
	data, err := os.ReadFile(input)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for _, n := range []int{1, 2, 3, 7, 16} {
		splits, err := splitFile(input, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(splits) < n {
			t.Fatalf("splitFile(%d) produced %d splits", n, len(splits))
		}
		var got []string
		var total int64
		for _, s := range splits {
			total += s.Length
			lines, err := readSplit(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range lines {
				if data[l.offset] != l.text[0] {
					t.Fatalf("split %v: line %q claims offset %d", s, l.text, l.offset)
				}
				got = append(got, l.text)
			}
		}
		if total != int64(len(data)) {
			t.Fatalf("splits cover %d bytes of %d", total, len(data))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: %d lines read, want %d, or order broken", n, len(got), len(want))
		}
	}
}

func TestReadSplitUnterminatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noeol.txt")
	if err := os.WriteFile(path, []byte("alpha\nbeta\ngamma"), 0o644); err != nil {
		t.Fatal(err)
	}
	splits, err := splitFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range splits {
		lines, err := readSplit(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			got = append(got, l.text)
		}
	}
	if !reflect.DeepEqual(got, []string{"alpha", "beta", "gamma"}) {
		t.Fatalf("got %v", got)
	}
}
