package dist

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
)

// blockSplits writes content and cuts it into n splits for cache tests.
func blockSplits(t *testing.T, content string, n int) []Split {
	t.Helper()
	path := writeInput(t, content)
	splits, err := splitFile(path, n)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

func TestBlockCacheHitOnSecondRead(t *testing.T) {
	splits := blockSplits(t, "a\nbb\nccc\ndddd\n", 2)
	c := newBlockCache(1 << 20)

	first, err := c.get(splits[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.get(splits[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached read diverges: %v vs %v", first, second)
	}
	st := c.snapshot()
	if st.Reads != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 read, 1 miss, 1 hit", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("resident bytes = %d after insert", st.Bytes)
	}
}

func TestBlockCacheInvalidatedWhenFileChanges(t *testing.T) {
	splits := blockSplits(t, "old-one\nold-two\n", 1)
	c := newBlockCache(1 << 20)
	if _, err := c.get(splits[0]); err != nil {
		t.Fatal(err)
	}
	// Rewrite the input in place with different bytes (and a different size,
	// so the identity check cannot be defeated by filesystem mtime
	// granularity). The same split range must now miss and serve the new
	// contents, never the stale block.
	if err := os.WriteFile(splits[0].Path, []byte("new-1\nnew-2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines, err := c.get(splits[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || lines[0].text != "new-1" {
		t.Fatalf("stale block served after rewrite: %v", lines)
	}
	st := c.snapshot()
	if st.Reads != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 reads and 2 misses after rewrite", st)
	}
}

func TestBlockCacheEvictsLRUUnderBudget(t *testing.T) {
	// Two separate one-line inputs, each decoding to a ~92-byte block
	// (60 text bytes + per-line overhead); a 150-byte budget holds exactly
	// one at a time.
	a := blockSplits(t, strings.Repeat("x", 59)+"\n", 1)[0]
	b := blockSplits(t, strings.Repeat("y", 59)+"\n", 1)[0]
	c := newBlockCache(150)

	if _, err := c.get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get(b); err != nil {
		t.Fatal(err)
	}
	st := c.snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (budget holds one block)", st.Evictions)
	}
	if st.Bytes > 150 {
		t.Fatalf("resident %d bytes exceeds 150-byte budget", st.Bytes)
	}
	// Block a was evicted: touching it again reads from disk.
	if _, err := c.get(a); err != nil {
		t.Fatal(err)
	}
	if st := c.snapshot(); st.Reads != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 reads and 0 hits after LRU eviction", st)
	}
}

func TestBlockCacheOversizedBlockServedUncached(t *testing.T) {
	splits := blockSplits(t, strings.Repeat("w", 500)+"\n", 1)
	c := newBlockCache(64) // smaller than the block's decoded cost

	for i := 0; i < 2; i++ {
		lines, err := c.get(splits[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != 1 {
			t.Fatalf("read %d: %d lines", i, len(lines))
		}
	}
	st := c.snapshot()
	if st.Reads != 2 || st.Hits != 0 || st.Bytes != 0 || st.Evictions != 0 {
		t.Fatalf("stats = %+v: an oversized block must bypass the cache "+
			"without evicting anything", st)
	}
	if len(c.ads()) != 0 {
		t.Fatalf("uncached block advertised: %v", c.ads())
	}
}

func TestBlockCacheSetBudgetShrinkEvicts(t *testing.T) {
	c := newBlockCache(1 << 20)
	var splits []Split
	for i := 0; i < 4; i++ {
		splits = append(splits, blockSplits(t, strings.Repeat("z", 10)+"\n", 1)[0])
	}
	for _, s := range splits {
		if _, err := c.get(s); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.ads()); n != 4 {
		t.Fatalf("%d blocks resident, want 4", n)
	}
	c.setBudget(1) // shrink below any block: everything must go
	st := c.snapshot()
	if st.Bytes != 0 || len(c.ads()) != 0 {
		t.Fatalf("resident %d bytes, ads %v after shrink to 1", st.Bytes, c.ads())
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
}

func TestBlockCacheAdsSortedDeterministically(t *testing.T) {
	splits := blockSplits(t, strings.Repeat("line\n", 20), 5)
	c := newBlockCache(1 << 20)
	// Touch in scrambled order; ads must come back path-then-offset sorted.
	for _, i := range []int{3, 0, 4, 2, 1} {
		if _, err := c.get(splits[i]); err != nil {
			t.Fatal(err)
		}
	}
	ads := c.ads()
	if !reflect.DeepEqual(ads, splits) {
		t.Fatalf("ads = %v, want sorted %v", ads, splits)
	}
}

func TestBlockCacheReportSeqMonotonic(t *testing.T) {
	c := newBlockCache(1 << 20)
	_, s1 := c.report()
	_, s2 := c.report()
	if s1.Seq == 0 || s2.Seq <= s1.Seq {
		t.Fatalf("report seqs %d, %d: must be nonzero and strictly increasing",
			s1.Seq, s2.Seq)
	}
	if st := c.snapshot(); st.Seq != s2.Seq {
		t.Fatalf("snapshot seq %d advanced past last report %d", st.Seq, s2.Seq)
	}
}

func TestNilBlockCacheFallsThrough(t *testing.T) {
	splits := blockSplits(t, "one\ntwo\n", 1)
	var c *blockCache
	lines, err := c.get(splits[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("nil cache read %d lines, want 2", len(lines))
	}
	if ads := c.ads(); ads != nil {
		t.Fatalf("nil cache ads = %v", ads)
	}
	if st := c.snapshot(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if a, st := c.report(); a != nil || st != (CacheStats{}) {
		t.Fatalf("nil cache report = %v, %+v", a, st)
	}
	c.setBudget(100) // must not panic
}

func TestTuningRejectsNegativeInputCacheBytes(t *testing.T) {
	cfg := DefaultTuning()
	cfg.InputCacheBytes = -1
	err := cfg.Validate()
	var ie *InputError
	if err == nil {
		t.Fatal("negative InputCacheBytes accepted")
	}
	if !errors.As(err, &ie) || ie.Field != "Tuning.InputCacheBytes" {
		t.Fatalf("error = %v, want InputError on Tuning.InputCacheBytes", err)
	}
}

func TestTuningDefaultsInputCacheBytes(t *testing.T) {
	var cfg Tuning
	got := cfg.withDefaults().InputCacheBytes
	if got != DefaultTuning().InputCacheBytes || got <= 0 {
		t.Fatalf("defaulted InputCacheBytes = %d", got)
	}
	keep := Tuning{InputCacheBytes: 12345}.withDefaults()
	if keep.InputCacheBytes != 12345 {
		t.Fatalf("explicit budget overwritten: %d", keep.InputCacheBytes)
	}
}
