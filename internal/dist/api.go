// Package dist is the distributed execution runtime behind the simulator:
// a transport/executor abstraction whose jobs — described in wire-neutral,
// serializable form — can run either through the deterministic in-memory
// engines (the test oracle, see Local) or across real operating-system
// processes (see Master and RunWorker).
//
// The real runtime follows the classic Hadoop/MIT-6.824 master/worker
// shape: workers register with the master over HTTP, send periodic
// heartbeats to a liveness monitor, and pull work as time-bounded task
// leases. A worker that misses its heartbeat window or overruns a lease is
// struck (reusing chaos.NodeHealth's blacklist semantics) and its in-flight
// tasks — plus any already-served map-output partitions — are reassigned
// and recomputed, exactly the map-recover/FetchFailed path the simulator's
// shuffle lifecycle plays out in virtual time. Map output is served by the
// worker that produced it over HTTP; reducers fetch with capped
// exponential-backoff retries (exec.Backoff) and report irrecoverable
// fetches back to the master so the lost map re-runs elsewhere.
//
// The package is algorithm-agnostic: mining code registers its map/reduce
// closures as named job types (see RegisterJobType) and drives jobs through
// the Executor interface; the same registered closures execute under both
// implementations, which is what makes byte-identical parity between a real
// multi-process run and the sim oracle a testable property rather than a
// hope.
package dist

import (
	"context"
	"encoding/json"
	"time"

	"yafim/internal/mapreduce"
)

// KV is one job output record, shared with the sim engine.
type KV = mapreduce.KV

// JobSpec describes one MapReduce job in engine-neutral form: everything an
// executor needs is a registered job type, its parameters, a real input
// file, task counts and the distributed-cache contents.
type JobSpec struct {
	// Name labels the job in logs and journals.
	Name string `json:"name"`
	// Type names a registered job type (see RegisterJobType).
	Type string `json:"type"`
	// Params is the job type's opaque parameter blob.
	Params json.RawMessage `json:"params,omitempty"`
	// InputPath is the transaction file on the real file system. Every
	// worker must see the same path (same machine or shared storage, the
	// Hadoop-on-NFS deployment shape).
	InputPath string `json:"input_path"`
	// NumMaps is the minimum map-task count; the input is cut into at
	// least this many line-aligned splits when it is large enough.
	NumMaps int `json:"num_maps"`
	// NumReducers is the reduce-task count.
	NumReducers int `json:"num_reducers"`
	// Cache holds the distributed-cache files by name (the candidate
	// batches, for the mining jobs). Workers fetch each name once per job
	// from the master.
	Cache map[string][]byte `json:"-"`
}

// JobOutput is a completed job's result.
type JobOutput struct {
	// KVs is the concatenated reducer output in reduce-partition order.
	KVs []KV
	// MapInputRecords counts the input records the map stage consumed
	// (each map task counted once, however many times it was attempted) —
	// the driver's Hadoop-counter substitute.
	MapInputRecords int64
	// Duration is how long the job took: virtual cluster time under the
	// sim executor, wall-clock time under the real runtime.
	Duration time.Duration
}

// Executor runs jobs. Implementations: Local (in-memory sim engine, the
// deterministic oracle) and Master.Executor (real multi-process runtime).
type Executor interface {
	// ExecJob runs one job to completion and returns its output. The
	// context cancels the job cooperatively at a task boundary.
	ExecJob(ctx context.Context, job *JobSpec) (*JobOutput, error)
}

// Split is one map task's byte range of the real input file. Line-boundary
// reconciliation follows the sim DFS reader's convention (see ReadSplit).
type Split struct {
	Path   string `json:"path"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
}

// TaskSpec is one leased task on the wire.
type TaskSpec struct {
	// Job and Seq identify the job this task belongs to; Seq increases
	// monotonically per master so stale completions are detectable.
	Job string `json:"job"`
	Seq int    `json:"seq"`
	// Type and Params name the registered job type to instantiate.
	Type   string          `json:"type"`
	Params json.RawMessage `json:"params,omitempty"`
	// Phase is "map" or "reduce"; Index the task index within the phase;
	// Attempt the 1-based attempt number of this lease.
	Phase   string `json:"phase"`
	Index   int    `json:"index"`
	Attempt int    `json:"attempt"`
	// NumMaps and NumReducers shape the job's partitioning.
	NumMaps     int `json:"num_maps"`
	NumReducers int `json:"num_reducers"`
	// Split is the map task's input range (map tasks only).
	Split Split `json:"split,omitempty"`
	// CacheNames lists the distributed-cache files to fetch from the
	// master before running.
	CacheNames []string `json:"cache_names,omitempty"`
	// MapAddrs, for reduce tasks, is the HTTP address serving each map
	// task's output, indexed by map task.
	MapAddrs []string `json:"map_addrs,omitempty"`
}

// PhaseMap and PhaseReduce are the TaskSpec.Phase values.
const (
	PhaseMap    = "map"
	PhaseReduce = "reduce"
)

// OutputAd re-advertises one map output the registering worker still serves
// from a previous registration. A worker that outlives a master restart (or
// its own declared death) carries its completed partitions in memory; the
// master rebinds each advertised output to the fresh worker id — provided
// its table agrees a dead worker at the same address produced it — instead
// of recomputing the map.
type OutputAd struct {
	Seq int `json:"seq"`
	Map int `json:"map"`
}

// CacheStats is a worker's cumulative input-block-cache counters, reported
// on every heartbeat and completion. Values are monotonic within one worker
// incarnation; the master folds the per-report deltas into its /metrics
// counters, so a fresh incarnation (which re-registers and re-baselines)
// never double-counts.
type CacheStats struct {
	// Seq orders reports from one incarnation: register, heartbeat and
	// complete all carry cache state, and HTTP gives no ordering across
	// them, so the master drops any report whose Seq is not newer than the
	// last one ingested — a heartbeat built before a map finished must not
	// clobber the completion's fresher inventory. Zero means "unordered"
	// (accepted unconditionally; the unit-test entry point).
	Seq int64 `json:"seq,omitempty"`
	// Reads counts splits parsed from disk (cache misses that hit the file).
	Reads int64 `json:"reads,omitempty"`
	// Hits and Misses count cache lookups.
	Hits   int64 `json:"hits,omitempty"`
	Misses int64 `json:"misses,omitempty"`
	// Evictions counts blocks dropped to stay under the byte budget.
	Evictions int64 `json:"evictions,omitempty"`
	// Bytes is the resident decoded-block footprint right now.
	Bytes int64 `json:"bytes,omitempty"`
}

// RegisterRequest announces a worker to the master. Addr is the worker's
// reachable HTTP address for map-output fetches. Outputs re-advertises map
// outputs still served from a previous incarnation, if any; Cached likewise
// re-advertises the input blocks already decoded in its cache, so a rejoining
// worker regains its placement preference immediately.
type RegisterRequest struct {
	Addr    string     `json:"addr"`
	Outputs []OutputAd `json:"outputs,omitempty"`
	Cached  []Split    `json:"cached,omitempty"`
	Cache   CacheStats `json:"cache,omitempty"`
}

// RegisterResponse assigns the worker its id, the heartbeat cadence the
// liveness monitor expects, and the input-block-cache byte budget
// (Tuning.InputCacheBytes — the master owns the knob so every worker runs
// the same policy).
type RegisterResponse struct {
	WorkerID        int   `json:"worker_id"`
	HeartbeatMs     int64 `json:"heartbeat_ms"`
	InputCacheBytes int64 `json:"input_cache_bytes,omitempty"`
}

// HeartbeatRequest is the worker's periodic liveness signal. Cached is the
// worker's current input-block inventory — each report replaces the master's
// view wholesale, so evictions propagate as silently as insertions — and
// Cache its cumulative cache counters.
type HeartbeatRequest struct {
	WorkerID int        `json:"worker_id"`
	Cached   []Split    `json:"cached,omitempty"`
	Cache    CacheStats `json:"cache,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. Rejoin tells a worker the
// master no longer knows it (declared dead, or a master restart): it must
// re-register before doing anything else.
type HeartbeatResponse struct {
	OK     bool `json:"ok"`
	Rejoin bool `json:"rejoin,omitempty"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	WorkerID int `json:"worker_id"`
}

// LeaseResponse carries at most one leased task. A nil Task with WaitMs set
// means "nothing runnable right now, ask again after the wait" (the job may
// be between phases, or the worker blacklisted). Rejoin as in heartbeats.
type LeaseResponse struct {
	Task   *TaskSpec `json:"task,omitempty"`
	WaitMs int64     `json:"wait_ms,omitempty"`
	Rejoin bool      `json:"rejoin,omitempty"`
}

// CompleteRequest reports one finished task attempt.
type CompleteRequest struct {
	WorkerID int    `json:"worker_id"`
	Seq      int    `json:"seq"`
	Phase    string `json:"phase"`
	Index    int    `json:"index"`
	Attempt  int    `json:"attempt"`
	// OK distinguishes success from failure; Error carries the failure
	// message.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// FailedMaps lists map tasks whose output could not be fetched after
	// the retry budget (reduce failures only): the master invalidates and
	// re-runs them, the real FetchFailed protocol.
	FailedMaps []int `json:"failed_maps,omitempty"`
	// InputRecords is the map task's input record count (map successes).
	InputRecords int64 `json:"input_records,omitempty"`
	// Output is the reduce task's full output (reduce successes). Small
	// by construction for the mining jobs — reducers emit aggregates.
	Output []KV `json:"output,omitempty"`
	// Cached and Cache piggyback the worker's input-block inventory and
	// cumulative cache counters on the completion, exactly as on a
	// heartbeat: a map task that just decoded a split advertises it before
	// the next pass's leases are cut, not one heartbeat later.
	Cached []Split    `json:"cached,omitempty"`
	Cache  CacheStats `json:"cache,omitempty"`
}

// CompleteResponse acknowledges a completion. Duplicate completions (a
// zombie worker finishing a task the master already re-ran) are accepted
// idempotently.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
	Rejoin   bool `json:"rejoin,omitempty"`
}
