package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"yafim/internal/exec"
	"yafim/internal/mapreduce"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// MasterURL is the master's base URL ("http://host:port").
	MasterURL string
	// Addr is the worker's own listen address for serving map output
	// ("127.0.0.1:0" by default — loopback, OS-assigned port).
	Addr string
	// Log receives the worker's live event journal (nil disables).
	Log *obs.EventLog
	// Fetch shapes the map-output and RPC retry loop; zero fields default
	// to 100ms base, 2s cap, factor 2, 10% deterministic jitter.
	Fetch exec.Backoff
	// FetchRetries is the per-target retry budget (default 5) before a map
	// output is reported unfetchable.
	FetchRetries int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.Fetch.Base <= 0 {
		o.Fetch = exec.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.1}
	}
	if o.FetchRetries <= 0 {
		o.FetchRetries = 5
	}
	return o
}

// partitionData is one map task's output for one reduce partition: the
// per-key value lists, preserving emit order within each key.
type partitionData map[string][]string

// outputKey identifies one map task's stored output.
type outputKey struct {
	seq, mapIndex int
}

// worker is one worker process's runtime state.
type worker struct {
	opts   WorkerOptions
	client *http.Client
	log    *obs.EventLog

	id   int
	addr string // own map-output serving address
	hbMs int64

	mu      sync.Mutex
	outputs map[outputKey][]partitionData // completed map outputs by task
	caches  map[string][]byte             // fetched cache blobs by seq\xffname
}

// RunWorker runs a worker until ctx is done: register with the master,
// heartbeat on the master's cadence, pull task leases, execute them with
// the registered job-type closures, serve map output to peers over HTTP.
// Cancellation (SIGTERM in cmd/yafim) drains gracefully: the in-flight task
// finishes and is reported before the worker exits.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{
		opts:    opts,
		client:  &http.Client{Timeout: 30 * time.Second},
		log:     opts.Log,
		outputs: map[outputKey][]partitionData{},
		caches:  map[string][]byte{},
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return fmt.Errorf("dist: worker listen: %w", err)
	}
	w.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/dist/output", w.handleOutput)
	mux.HandleFunc("/dist/events", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/x-ndjson")
		w.log.WriteTo(rw) //nolint:errcheck
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(sctx) //nolint:errcheck
	}()

	if err := w.register(ctx); err != nil {
		return err
	}
	w.log.Append(obs.LiveEvent{Event: "worker_start", Worker: w.id, Addr: w.addr})

	hbCtx, stopHb := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(hbCtx)
	}()
	defer func() {
		stopHb()
		<-hbDone
	}()

	return w.leaseLoop(ctx)
}

// postJSON posts req and decodes the response into resp, retrying transport
// errors on the worker's backoff (a master briefly unreachable during
// startup must not kill the worker).
func (w *worker) postJSON(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var last error
	for attempt := 0; attempt <= w.opts.FetchRetries; attempt++ {
		if attempt > 0 {
			if err := w.opts.Fetch.Sleep(ctx, attempt-1); err != nil {
				return err
			}
		}
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
			w.opts.MasterURL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hr.Header.Set("Content-Type", "application/json")
		res, err := w.client.Do(hr)
		if err != nil {
			last = err
			continue
		}
		if res.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
			res.Body.Close()
			last = fmt.Errorf("dist: %s: %s: %s", path, res.Status, bytes.TrimSpace(msg))
			continue
		}
		err = json.NewDecoder(res.Body).Decode(resp)
		res.Body.Close()
		if err != nil {
			last = err
			continue
		}
		return nil
	}
	return fmt.Errorf("dist: %s: retries exhausted: %w", path, last)
}

// register announces the worker and adopts the master's heartbeat cadence.
func (w *worker) register(ctx context.Context) error {
	var resp RegisterResponse
	if err := w.postJSON(ctx, "/dist/register", RegisterRequest{Addr: w.addr}, &resp); err != nil {
		return err
	}
	w.id = resp.WorkerID
	w.hbMs = resp.HeartbeatMs
	if w.hbMs <= 0 {
		w.hbMs = DefaultTuning().HeartbeatInterval.Milliseconds()
	}
	return nil
}

// heartbeatLoop beats on the master's cadence until canceled, re-registering
// when the master stops recognising the worker.
func (w *worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(time.Duration(w.hbMs) * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp HeartbeatResponse
			err := w.postJSON(ctx, "/dist/heartbeat", HeartbeatRequest{WorkerID: w.id}, &resp)
			if err == nil && resp.Rejoin {
				if err := w.register(ctx); err != nil {
					return
				}
				w.log.Append(obs.LiveEvent{Event: "worker_rejoin", Worker: w.id, Addr: w.addr})
			}
		}
	}
}

// leaseLoop pulls and executes tasks until the context is done. A task
// already running when cancellation arrives completes and is reported —
// the graceful SIGTERM drain.
func (w *worker) leaseLoop(ctx context.Context) error {
	for {
		if err := exec.ContextErr(ctx); err != nil {
			w.log.Append(obs.LiveEvent{Event: "worker_drain", Worker: w.id})
			return nil // drained: cancellation is the normal exit
		}
		var resp LeaseResponse
		if err := w.postJSON(ctx, "/dist/lease", LeaseRequest{WorkerID: w.id}, &resp); err != nil {
			if exec.IsCancellation(err) {
				return nil
			}
			return err
		}
		if resp.Rejoin {
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		}
		if resp.Task == nil {
			wait := time.Duration(resp.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
			continue
		}
		w.runTask(ctx, resp.Task)
	}
}

// runTask executes one leased task and reports its completion. Failures are
// reported, not returned: the master decides retry policy.
func (w *worker) runTask(ctx context.Context, task *TaskSpec) {
	w.log.Append(obs.LiveEvent{Event: "task_start", Worker: w.id, Job: task.Job,
		Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1, Attempt: task.Attempt})
	req := &CompleteRequest{
		WorkerID: w.id, Seq: task.Seq,
		Phase: task.Phase, Index: task.Index, Attempt: task.Attempt,
	}
	var err error
	switch task.Phase {
	case PhaseMap:
		req.InputRecords, err = w.runMap(ctx, task)
	case PhaseReduce:
		var failed []int
		req.Output, failed, err = w.runReduce(ctx, task)
		req.FailedMaps = failed
	default:
		err = fmt.Errorf("dist: unknown phase %q", task.Phase)
	}
	req.OK = err == nil
	if err != nil {
		req.Error = err.Error()
		w.log.Append(obs.LiveEvent{Event: "task_error", Worker: w.id, Job: task.Job,
			Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1,
			Attempt: task.Attempt, Detail: err.Error()})
	}
	var resp CompleteResponse
	// Completion reporting uses a context that survives the drain: a result
	// computed before SIGTERM still reaches the master.
	rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
	defer cancel()
	if err := w.postJSON(rctx, "/dist/complete", req, &resp); err != nil {
		w.log.Append(obs.LiveEvent{Event: "complete_lost", Worker: w.id, Job: task.Job,
			Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1, Detail: err.Error()})
		return
	}
	w.log.Append(obs.LiveEvent{Event: "task_reported", Worker: w.id, Job: task.Job,
		Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1, Attempt: task.Attempt})
}

// cacheFiles assembles the task's distributed cache, fetching each blob
// from the master once per job and memoizing it.
func (w *worker) cacheFiles(ctx context.Context, task *TaskSpec) (mapreduce.CacheFiles, error) {
	if len(task.CacheNames) == 0 {
		return nil, nil
	}
	cache := make(mapreduce.CacheFiles, len(task.CacheNames))
	for _, name := range task.CacheNames {
		key := strconv.Itoa(task.Seq) + "\xff" + name
		w.mu.Lock()
		data, ok := w.caches[key]
		w.mu.Unlock()
		if !ok {
			u := fmt.Sprintf("%s/dist/cache?seq=%d&name=%s", w.opts.MasterURL, task.Seq, name)
			var err error
			data, err = w.fetchURL(ctx, u)
			if err != nil {
				return nil, fmt.Errorf("cache %s: %w", name, err)
			}
			w.mu.Lock()
			w.caches[key] = data
			w.mu.Unlock()
		}
		cache[name] = data
	}
	return cache, nil
}

// fetchURL GETs a URL with the worker's retry backoff.
func (w *worker) fetchURL(ctx context.Context, url string) ([]byte, error) {
	var last error
	for attempt := 0; attempt <= w.opts.FetchRetries; attempt++ {
		if attempt > 0 {
			if err := w.opts.Fetch.Sleep(ctx, attempt-1); err != nil {
				return nil, err
			}
		}
		hr, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		res, err := w.client.Do(hr)
		if err != nil {
			last = err
			continue
		}
		if res.StatusCode != http.StatusOK {
			res.Body.Close()
			last = fmt.Errorf("%s: %s", url, res.Status)
			continue
		}
		data, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			last = err
			continue
		}
		return data, nil
	}
	return nil, fmt.Errorf("dist: fetch retries exhausted: %w", last)
}

// runMap executes one map task: read the split with the sim reader's
// line-boundary convention, run the registered mapper (and combiner),
// partition with the engine's exact hash, and store the partitions for
// serving. Returns the consumed record count (the driver's counter source).
func (w *worker) runMap(ctx context.Context, task *TaskSpec) (int64, error) {
	jt, err := lookupJobType(task.Type)
	if err != nil {
		return 0, err
	}
	cache, err := w.cacheFiles(ctx, task)
	if err != nil {
		return 0, err
	}
	mapper, err := jt.NewMapper(task.Params)
	if err != nil {
		return 0, err
	}
	led := new(sim.Ledger) // real runtime: costs are measured, not metered
	if err := mapper.Setup(cache, led); err != nil {
		return 0, fmt.Errorf("map %d setup: %w", task.Index, err)
	}
	lines, err := readSplit(task.Split)
	if err != nil {
		return 0, fmt.Errorf("map %d read: %w", task.Index, err)
	}
	buckets := make([]partitionData, task.NumReducers)
	for i := range buckets {
		buckets[i] = partitionData{}
	}
	emit := func(k, v string) {
		b := buckets[mapreduce.PartitionOf(k, task.NumReducers)]
		b[k] = append(b[k], v)
	}
	for _, line := range lines {
		if err := mapper.Map(line.offset, line.text, emit, led); err != nil {
			return 0, fmt.Errorf("map %d: %w", task.Index, err)
		}
	}
	if err := mapper.Cleanup(emit, led); err != nil {
		return 0, fmt.Errorf("map %d cleanup: %w", task.Index, err)
	}
	if jt.NewCombiner != nil {
		c, err := jt.NewCombiner(task.Params)
		if err != nil {
			return 0, err
		}
		if err := c.Setup(cache, led); err != nil {
			return 0, fmt.Errorf("map %d combiner setup: %w", task.Index, err)
		}
		for i, b := range buckets {
			nb := partitionData{}
			cemit := func(k, v string) { nb[k] = append(nb[k], v) }
			for k, vs := range b {
				if err := c.Reduce(k, vs, cemit, led); err != nil {
					return 0, fmt.Errorf("map %d combine: %w", task.Index, err)
				}
			}
			buckets[i] = nb
		}
	}
	w.mu.Lock()
	w.outputs[outputKey{task.Seq, task.Index}] = buckets
	w.mu.Unlock()
	return int64(len(lines)), nil
}

// runReduce executes one reduce task: fetch this partition from every map
// task's producer with capped-backoff retries, merge in map-index order,
// process keys sorted (the engine's order), and return the output records.
// Unfetchable map outputs are returned as FailedMaps for the master's
// FetchFailed recovery; the reduce itself then fails this attempt.
func (w *worker) runReduce(ctx context.Context, task *TaskSpec) ([]KV, []int, error) {
	jt, err := lookupJobType(task.Type)
	if err != nil {
		return nil, nil, err
	}
	cache, err := w.cacheFiles(ctx, task)
	if err != nil {
		return nil, nil, err
	}
	merged := map[string][]string{}
	var failed []int
	for mi, addr := range task.MapAddrs {
		u := fmt.Sprintf("http://%s/dist/output?seq=%d&map=%d&part=%d",
			addr, task.Seq, mi, task.Index)
		data, err := w.fetchURL(ctx, u)
		if err != nil {
			if exec.IsCancellation(err) {
				return nil, nil, err
			}
			w.log.Append(obs.LiveEvent{Event: "fetch_failed", Worker: w.id,
				Job: task.Job, Seq: task.Seq, Phase: PhaseReduce,
				Task: task.Index + 1, Detail: fmt.Sprintf("map %d at %s: %v", mi, addr, err)})
			failed = append(failed, mi)
			continue
		}
		var part partitionData
		if err := json.Unmarshal(data, &part); err != nil {
			failed = append(failed, mi)
			continue
		}
		for k, vs := range part {
			merged[k] = append(merged[k], vs...)
		}
	}
	if len(failed) > 0 {
		return nil, failed, fmt.Errorf("dist: reduce %d: %d map outputs unfetchable", task.Index, len(failed))
	}
	reducer, err := jt.NewReducer(task.Params)
	if err != nil {
		return nil, nil, err
	}
	led := new(sim.Ledger)
	if err := reducer.Setup(cache, led); err != nil {
		return nil, nil, fmt.Errorf("reduce %d setup: %w", task.Index, err)
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []KV
	emit := func(k, v string) { out = append(out, KV{Key: k, Value: v}) }
	for _, k := range keys {
		if err := reducer.Reduce(k, merged[k], emit, led); err != nil {
			return nil, nil, fmt.Errorf("reduce %d key %q: %w", task.Index, k, err)
		}
	}
	return out, nil, nil
}

// handleOutput serves one stored map-output partition as JSON.
func (w *worker) handleOutput(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seq, err1 := strconv.Atoi(q.Get("seq"))
	mi, err2 := strconv.Atoi(q.Get("map"))
	part, err3 := strconv.Atoi(q.Get("part"))
	if err1 != nil || err2 != nil || err3 != nil {
		http.Error(rw, "bad query", http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	buckets, ok := w.outputs[outputKey{seq, mi}]
	w.mu.Unlock()
	if !ok || part < 0 || part >= len(buckets) {
		http.Error(rw, "no such partition", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(buckets[part]) //nolint:errcheck
}
