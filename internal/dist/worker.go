package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"yafim/internal/exec"
	"yafim/internal/mapreduce"
	"yafim/internal/obs"
	"yafim/internal/sim"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// MasterURL is the master's base URL ("http://host:port").
	MasterURL string
	// Addr is the worker's own listen address for serving map output
	// ("127.0.0.1:0" by default — loopback, OS-assigned port).
	Addr string
	// Log receives the worker's live event journal (nil disables).
	Log *obs.EventLog
	// Fetch shapes the map-output and RPC retry loop; zero fields default
	// to 100ms base, 2s cap, factor 2, 10% deterministic jitter.
	Fetch exec.Backoff
	// FetchRetries is the per-target retry budget (default 5) before a map
	// output is reported unfetchable.
	FetchRetries int
	// FetchBudget bounds one reduce task's whole map-output fetch fan-in in
	// wall-clock time (default 30s): a partitioned peer must surface as
	// FetchFailed within bounded time, never as an indefinitely retrying
	// reduce. Layered as a context deadline over the per-target backoff.
	FetchBudget time.Duration
	// Transport, when non-nil, replaces the HTTP transport under every
	// client call — master RPC and map-output fetches alike. This is the
	// ChaosTransport injection point.
	Transport http.RoundTripper
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.Fetch.Base <= 0 {
		o.Fetch = exec.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.1}
	}
	if o.FetchRetries <= 0 {
		o.FetchRetries = 5
	}
	if o.FetchBudget <= 0 {
		o.FetchBudget = 30 * time.Second
	}
	return o
}

// partitionData is one map task's output for one reduce partition: the
// per-key value lists, preserving emit order within each key.
type partitionData map[string][]string

// outputKey identifies one map task's stored output.
type outputKey struct {
	seq, mapIndex int
}

// cacheKey identifies one fetched distributed-cache blob. Keying by job Seq
// lets a newer job's first task evict every older job's blobs (see
// dropStaleCaches) instead of leaking them for the worker's lifetime.
type cacheKey struct {
	seq  int
	name string
}

// worker is one worker process's runtime state.
type worker struct {
	opts   WorkerOptions
	client *http.Client
	log    *obs.EventLog
	blocks *blockCache // decoded input blocks, budget set by the master

	addr string // own map-output serving address

	mu      sync.Mutex
	id      int                           // current registration; changes on rejoin (see reregister)
	hbMs    int64                         // master-assigned heartbeat cadence
	outputs map[outputKey][]partitionData // completed map outputs by task
	caches  map[cacheKey][]byte           // fetched cache blobs by job seq and name
}

// workerID returns the current registration's id. Re-registration (after a
// master restart or a declared death) assigns a fresh one, and the
// heartbeat and lease loops can both trigger it, so reads go through the
// lock.
func (w *worker) workerID() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// RunWorker runs a worker until ctx is done: register with the master,
// heartbeat on the master's cadence, pull task leases, execute them with
// the registered job-type closures, serve map output to peers over HTTP.
// Cancellation (SIGTERM in cmd/yafim) drains gracefully: the in-flight task
// finishes and is reported before the worker exits.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{
		opts:    opts,
		client:  &http.Client{Timeout: 30 * time.Second, Transport: opts.Transport},
		log:     opts.Log,
		blocks:  newBlockCache(DefaultTuning().InputCacheBytes),
		outputs: map[outputKey][]partitionData{},
		caches:  map[cacheKey][]byte{},
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return fmt.Errorf("dist: worker listen: %w", err)
	}
	w.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/dist/output", w.handleOutput)
	mux.HandleFunc("/dist/events", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/x-ndjson")
		w.log.WriteTo(rw) //nolint:errcheck
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(sctx) //nolint:errcheck
	}()

	// The worker may start before the master, or while it is restarting
	// after a crash: keep trying to register until the context is canceled.
	// A master that is reachable and refuses (capacity exhausted) is fatal.
	for {
		err := w.register(ctx)
		if err == nil {
			break
		}
		if exec.IsCancellation(err) {
			return nil
		}
		var se *statusError
		if errors.As(err, &se) {
			return err
		}
		if err := w.opts.Fetch.Sleep(ctx, 3); err != nil {
			return nil
		}
	}
	w.log.Append(obs.LiveEvent{Event: "worker_start", Worker: w.workerID(), Addr: w.addr})

	hbCtx, stopHb := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(hbCtx)
	}()
	defer func() {
		stopHb()
		<-hbDone
	}()

	return w.leaseLoop(ctx)
}

// statusError is a non-200 master reply: the master was reachable and said
// no, as opposed to a transport failure worth retrying forever.
type statusError struct {
	path   string
	status string
	msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("dist: %s: %s: %s", e.path, e.status, e.msg)
}

// postJSON posts req and decodes the response into resp, retrying transport
// errors on the worker's backoff (a master briefly unreachable during
// startup must not kill the worker).
func (w *worker) postJSON(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	err = exec.Retry(ctx, w.opts.Fetch, w.opts.FetchRetries, func() error {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
			w.opts.MasterURL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hr.Header.Set("Content-Type", "application/json")
		res, err := w.client.Do(hr)
		if err != nil {
			return err
		}
		if res.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
			res.Body.Close()
			return &statusError{path: path, status: res.Status,
				msg: string(bytes.TrimSpace(msg))}
		}
		err = json.NewDecoder(res.Body).Decode(resp)
		res.Body.Close()
		return err
	})
	if err == nil || exec.IsCancellation(err) {
		return err
	}
	return fmt.Errorf("dist: %s: retries exhausted: %w", path, err)
}

// register announces the worker and adopts the master's heartbeat cadence
// and input-block-cache budget, re-advertising every map output it still
// serves and every input block it still caches: a worker that outlives a
// master restart (or its own declared death) hands the new master back the
// partitions it would otherwise recompute and the placement hints it would
// otherwise relearn one heartbeat later.
func (w *worker) register(ctx context.Context) error {
	cached, stats := w.blocks.report()
	req := RegisterRequest{Addr: w.addr, Outputs: w.outputAds(),
		Cached: cached, Cache: stats}
	var resp RegisterResponse
	if err := w.postJSON(ctx, "/dist/register", req, &resp); err != nil {
		return err
	}
	hbMs := resp.HeartbeatMs
	if hbMs <= 0 {
		hbMs = DefaultTuning().HeartbeatInterval.Milliseconds()
	}
	if resp.InputCacheBytes > 0 {
		w.blocks.setBudget(resp.InputCacheBytes)
	}
	w.mu.Lock()
	w.id = resp.WorkerID
	w.hbMs = hbMs
	w.mu.Unlock()
	return nil
}

// outputAds lists the map outputs this worker serves, in deterministic
// order, for (re-)registration.
func (w *worker) outputAds() []OutputAd {
	w.mu.Lock()
	defer w.mu.Unlock()
	ads := make([]OutputAd, 0, len(w.outputs))
	for k := range w.outputs {
		ads = append(ads, OutputAd{Seq: k.seq, Map: k.mapIndex})
	}
	sort.Slice(ads, func(i, j int) bool {
		if ads[i].Seq != ads[j].Seq {
			return ads[i].Seq < ads[j].Seq
		}
		return ads[i].Map < ads[j].Map
	})
	return ads
}

// reregister re-runs registration after the master answered Rejoin to the
// id seenID. The heartbeat loop, the lease loop and a completion report can
// all notice a master restart near-simultaneously; the generation check
// collapses their Rejoin signals into one re-registration instead of
// burning three worker ids.
func (w *worker) reregister(ctx context.Context, seenID int) error {
	if w.workerID() != seenID {
		return nil // another loop already re-registered
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	w.log.Append(obs.LiveEvent{Event: "worker_rejoin", Worker: w.workerID(), Addr: w.addr})
	return nil
}

// heartbeatLoop beats on the master's cadence until canceled, re-registering
// when the master stops recognising the worker. An unreachable master is
// not fatal here: the loop keeps beating, and the Rejoin it receives once
// the master is back (restarted masters know nobody) repairs registration.
func (w *worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	hbMs := w.hbMs
	w.mu.Unlock()
	t := time.NewTicker(time.Duration(hbMs) * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			id := w.workerID()
			cached, stats := w.blocks.report()
			var resp HeartbeatResponse
			err := w.postJSON(ctx, "/dist/heartbeat", HeartbeatRequest{WorkerID: id,
				Cached: cached, Cache: stats}, &resp)
			if err == nil && resp.Rejoin {
				w.reregister(ctx, id) //nolint:errcheck // retried next beat
			}
		}
	}
}

// leaseLoop pulls and executes tasks until the context is done. A task
// already running when cancellation arrives completes and is reported —
// the graceful SIGTERM drain.
//
// An unreachable master does not end the loop: the worker is the durable
// party during a master crash (it holds computed map outputs), so it keeps
// polling with backoff until the restarted master answers — with Rejoin,
// upon which the worker re-registers and re-advertises those outputs. Only
// cancellation or a master that refuses registration outright ends a worker.
func (w *worker) leaseLoop(ctx context.Context) error {
	for {
		if err := exec.ContextErr(ctx); err != nil {
			w.log.Append(obs.LiveEvent{Event: "worker_drain", Worker: w.workerID()})
			return nil // drained: cancellation is the normal exit
		}
		id := w.workerID()
		var resp LeaseResponse
		if err := w.postJSON(ctx, "/dist/lease", LeaseRequest{WorkerID: id}, &resp); err != nil {
			if exec.IsCancellation(err) {
				return nil
			}
			w.log.Append(obs.LiveEvent{Event: "master_unreachable", Worker: id,
				Detail: err.Error()})
			if err := w.opts.Fetch.Sleep(ctx, 3); err != nil {
				return nil
			}
			continue
		}
		if resp.Rejoin {
			if err := w.reregister(ctx, id); err != nil {
				if exec.IsCancellation(err) {
					return nil
				}
				var se *statusError
				if errors.As(err, &se) {
					return err // reachable master refused us: fatal
				}
			}
			continue
		}
		if resp.Task == nil {
			wait := time.Duration(resp.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
			continue
		}
		w.runTask(ctx, resp.Task)
	}
}

// runTask executes one leased task and reports its completion. Failures are
// reported, not returned: the master decides retry policy.
func (w *worker) runTask(ctx context.Context, task *TaskSpec) {
	w.dropStaleCaches(task.Seq)
	w.log.Append(obs.LiveEvent{Event: "task_start", Worker: w.workerID(), Job: task.Job,
		Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1, Attempt: task.Attempt})
	req := &CompleteRequest{
		WorkerID: w.workerID(), Seq: task.Seq,
		Phase: task.Phase, Index: task.Index, Attempt: task.Attempt,
	}
	var err error
	switch task.Phase {
	case PhaseMap:
		req.InputRecords, err = w.runMap(ctx, task)
	case PhaseReduce:
		var failed []int
		req.Output, failed, err = w.runReduce(ctx, task)
		req.FailedMaps = failed
	default:
		err = fmt.Errorf("dist: unknown phase %q", task.Phase)
	}
	req.OK = err == nil
	if err != nil {
		req.Error = err.Error()
		w.log.Append(obs.LiveEvent{Event: "task_error", Worker: req.WorkerID, Job: task.Job,
			Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1,
			Attempt: task.Attempt, Detail: err.Error()})
	}
	// Piggyback the block-cache inventory taken AFTER the task ran: a map
	// task that just decoded its split advertises it on this very report,
	// so the master prefers this worker for the split on the next pass.
	req.Cached, req.Cache = w.blocks.report()
	var resp CompleteResponse
	// Completion reporting uses a context that survives the drain: a result
	// computed before SIGTERM still reaches the master.
	rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 20*time.Second)
	defer cancel()
	for try := 0; try < 2; try++ {
		req.WorkerID = w.workerID()
		if err := w.postJSON(rctx, "/dist/complete", req, &resp); err != nil {
			w.log.Append(obs.LiveEvent{Event: "complete_lost", Worker: req.WorkerID,
				Job: task.Job, Seq: task.Seq, Phase: task.Phase,
				Task: task.Index + 1, Detail: err.Error()})
			return
		}
		if !resp.Rejoin {
			break
		}
		// The master no longer knows this id: it restarted, or declared the
		// worker dead while the task ran. Re-register (re-advertising the
		// outputs still served here) and resend once under the fresh id —
		// idempotent on the master, where the first valid result wins.
		if err := w.reregister(rctx, req.WorkerID); err != nil {
			w.log.Append(obs.LiveEvent{Event: "complete_lost", Worker: req.WorkerID,
				Job: task.Job, Seq: task.Seq, Phase: task.Phase,
				Task: task.Index + 1, Detail: err.Error()})
			return
		}
	}
	w.log.Append(obs.LiveEvent{Event: "task_reported", Worker: req.WorkerID, Job: task.Job,
		Seq: task.Seq, Phase: task.Phase, Task: task.Index + 1, Attempt: task.Attempt})
}

// dropStaleCaches evicts distributed-cache blobs of jobs older than seq.
// Seqs increase monotonically and one job runs at a time, so a task from a
// newer job proves every older job's blobs are dead weight; without this a
// long-lived worker leaked every finished job's candidate batches.
func (w *worker) dropStaleCaches(seq int) {
	w.mu.Lock()
	for k := range w.caches {
		if k.seq < seq {
			delete(w.caches, k)
		}
	}
	w.mu.Unlock()
}

// cacheFiles assembles the task's distributed cache, fetching each blob
// from the master once per job and memoizing it.
func (w *worker) cacheFiles(ctx context.Context, task *TaskSpec) (mapreduce.CacheFiles, error) {
	if len(task.CacheNames) == 0 {
		return nil, nil
	}
	cache := make(mapreduce.CacheFiles, len(task.CacheNames))
	for _, name := range task.CacheNames {
		key := cacheKey{seq: task.Seq, name: name}
		w.mu.Lock()
		data, ok := w.caches[key]
		w.mu.Unlock()
		if !ok {
			u := fmt.Sprintf("%s/dist/cache?seq=%d&name=%s", w.opts.MasterURL, task.Seq, name)
			var err error
			data, err = w.fetchURL(ctx, u)
			if err != nil {
				return nil, fmt.Errorf("cache %s: %w", name, err)
			}
			w.mu.Lock()
			w.caches[key] = data
			w.mu.Unlock()
		}
		cache[name] = data
	}
	return cache, nil
}

// fetchURL GETs a URL with the worker's retry backoff.
func (w *worker) fetchURL(ctx context.Context, url string) ([]byte, error) {
	var data []byte
	err := exec.Retry(ctx, w.opts.Fetch, w.opts.FetchRetries, func() error {
		hr, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		res, err := w.client.Do(hr)
		if err != nil {
			return err
		}
		if res.StatusCode != http.StatusOK {
			res.Body.Close()
			return fmt.Errorf("%s: %s", url, res.Status)
		}
		data, err = io.ReadAll(res.Body)
		res.Body.Close()
		return err
	})
	if err != nil {
		if exec.IsCancellation(err) {
			return nil, err
		}
		return nil, fmt.Errorf("dist: fetch retries exhausted: %w", err)
	}
	return data, nil
}

// runMap executes one map task: read the split with the sim reader's
// line-boundary convention, run the registered mapper (and combiner),
// partition with the engine's exact hash, and store the partitions for
// serving. Returns the consumed record count (the driver's counter source).
func (w *worker) runMap(ctx context.Context, task *TaskSpec) (int64, error) {
	jt, err := lookupJobType(task.Type)
	if err != nil {
		return 0, err
	}
	cache, err := w.cacheFiles(ctx, task)
	if err != nil {
		return 0, err
	}
	mapper, err := jt.NewMapper(task.Params)
	if err != nil {
		return 0, err
	}
	led := new(sim.Ledger) // real runtime: costs are measured, not metered
	if err := mapper.Setup(cache, led); err != nil {
		return 0, fmt.Errorf("map %d setup: %w", task.Index, err)
	}
	// The block cache is the fix for the paper's central Hadoop complaint:
	// the first pass parses the split from disk, every later pass of the
	// k-pass mining job replays the decoded records from memory.
	lines, err := w.blocks.get(task.Split)
	if err != nil {
		return 0, fmt.Errorf("map %d read: %w", task.Index, err)
	}
	buckets := make([]partitionData, task.NumReducers)
	for i := range buckets {
		buckets[i] = partitionData{}
	}
	emit := func(k, v string) {
		b := buckets[mapreduce.PartitionOf(k, task.NumReducers)]
		b[k] = append(b[k], v)
	}
	for _, line := range lines {
		if err := mapper.Map(line.offset, line.text, emit, led); err != nil {
			return 0, fmt.Errorf("map %d: %w", task.Index, err)
		}
	}
	if err := mapper.Cleanup(emit, led); err != nil {
		return 0, fmt.Errorf("map %d cleanup: %w", task.Index, err)
	}
	if jt.NewCombiner != nil {
		c, err := jt.NewCombiner(task.Params)
		if err != nil {
			return 0, err
		}
		if err := c.Setup(cache, led); err != nil {
			return 0, fmt.Errorf("map %d combiner setup: %w", task.Index, err)
		}
		for i, b := range buckets {
			nb := partitionData{}
			cemit := func(k, v string) { nb[k] = append(nb[k], v) }
			for k, vs := range b {
				if err := c.Reduce(k, vs, cemit, led); err != nil {
					return 0, fmt.Errorf("map %d combine: %w", task.Index, err)
				}
			}
			buckets[i] = nb
		}
	}
	w.mu.Lock()
	w.outputs[outputKey{task.Seq, task.Index}] = buckets
	w.mu.Unlock()
	return int64(len(lines)), nil
}

// runReduce executes one reduce task: fetch this partition from every map
// task's producer with capped-backoff retries, merge in map-index order,
// process keys sorted (the engine's order), and return the output records.
// Unfetchable map outputs are returned as FailedMaps for the master's
// FetchFailed recovery; the reduce itself then fails this attempt.
func (w *worker) runReduce(ctx context.Context, task *TaskSpec) ([]KV, []int, error) {
	jt, err := lookupJobType(task.Type)
	if err != nil {
		return nil, nil, err
	}
	cache, err := w.cacheFiles(ctx, task)
	if err != nil {
		return nil, nil, err
	}
	// The whole fetch fan-in runs under one wall-clock budget, layered over
	// the per-target backoff: a partitioned peer (reachable to TCP but never
	// answering, or a link the chaos transport cut indefinitely) must
	// surface as FetchFailed in bounded time, not as a reduce that retries
	// forever. Budget expiry is distinguished from a genuine drain by the
	// outer context: if ctx itself is live, the deadline was ours.
	fctx, cancelFetch := context.WithTimeout(ctx, w.opts.FetchBudget)
	defer cancelFetch()
	merged := map[string][]string{}
	var failed []int
	for mi, addr := range task.MapAddrs {
		u := fmt.Sprintf("http://%s/dist/output?seq=%d&map=%d&part=%d",
			addr, task.Seq, mi, task.Index)
		data, err := w.fetchURL(fctx, u)
		if err != nil {
			if exec.ContextErr(ctx) != nil {
				return nil, nil, err // worker draining, not a fetch verdict
			}
			if fctx.Err() != nil {
				// Budget spent. Report the map that starved as unfetchable
				// and fail the attempt; maps not yet tried are left alone
				// (they may be perfectly healthy) for the retried attempt.
				failed = append(failed, mi)
				w.log.Append(obs.LiveEvent{Event: "fetch_budget_exhausted",
					Worker: w.workerID(), Job: task.Job, Seq: task.Seq,
					Phase: PhaseReduce, Task: task.Index + 1,
					Detail: fmt.Sprintf("budget %v spent at map %d of %d (%s)",
						w.opts.FetchBudget, mi, len(task.MapAddrs), addr)})
				break
			}
			w.log.Append(obs.LiveEvent{Event: "fetch_failed", Worker: w.workerID(),
				Job: task.Job, Seq: task.Seq, Phase: PhaseReduce,
				Task: task.Index + 1, Detail: fmt.Sprintf("map %d at %s: %v", mi, addr, err)})
			failed = append(failed, mi)
			continue
		}
		var part partitionData
		if err := json.Unmarshal(data, &part); err != nil {
			failed = append(failed, mi)
			continue
		}
		for k, vs := range part {
			merged[k] = append(merged[k], vs...)
		}
	}
	if len(failed) > 0 {
		return nil, failed, fmt.Errorf("dist: reduce %d: %d map outputs unfetchable", task.Index, len(failed))
	}
	reducer, err := jt.NewReducer(task.Params)
	if err != nil {
		return nil, nil, err
	}
	led := new(sim.Ledger)
	if err := reducer.Setup(cache, led); err != nil {
		return nil, nil, fmt.Errorf("reduce %d setup: %w", task.Index, err)
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []KV
	emit := func(k, v string) { out = append(out, KV{Key: k, Value: v}) }
	for _, k := range keys {
		if err := reducer.Reduce(k, merged[k], emit, led); err != nil {
			return nil, nil, fmt.Errorf("reduce %d key %q: %w", task.Index, k, err)
		}
	}
	return out, nil, nil
}

// handleOutput serves one stored map-output partition as JSON.
func (w *worker) handleOutput(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seq, err1 := strconv.Atoi(q.Get("seq"))
	mi, err2 := strconv.Atoi(q.Get("map"))
	part, err3 := strconv.Atoi(q.Get("part"))
	if err1 != nil || err2 != nil || err3 != nil {
		http.Error(rw, "bad query", http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	buckets, ok := w.outputs[outputKey{seq, mi}]
	w.mu.Unlock()
	if !ok || part < 0 || part >= len(buckets) {
		http.Error(rw, "no such partition", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(buckets[part]) //nolint:errcheck
}
