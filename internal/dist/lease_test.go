package dist

import (
	"fmt"
	"testing"
	"time"
)

// testTuning is a small, fast protocol configuration for virtual-time unit
// tests; the table never reads a clock, so these values are just arithmetic.
func testTuning() Tuning {
	return Tuning{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		LeaseDeadline:     time.Second,
		MaxWorkers:        8,
		MaxTaskAttempts:   4,
		BlacklistAfter:    2,
		BlacklistBase:     time.Second,
	}
}

func testJob(t *testing.T, tb *leaseTable, maps, reduces int) *distJob {
	t.Helper()
	splits := make([]Split, maps)
	for i := range splits {
		splits[i] = Split{Path: "/in", Offset: int64(i * 100), Length: 100}
	}
	j, err := tb.startJob(&JobSpec{
		Name: "j", Type: "t", NumMaps: maps, NumReducers: reduces,
	}, splits)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func register(t *testing.T, tb *leaseTable, addr string, now time.Duration) int {
	t.Helper()
	id, err := tb.register(addr, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// completeOK reports a successful attempt for the given leased task.
func completeOK(tb *leaseTable, id int, task *TaskSpec, now time.Duration) (bool, bool) {
	req := &CompleteRequest{
		WorkerID: id, Seq: task.Seq, Phase: task.Phase,
		Index: task.Index, Attempt: task.Attempt, OK: true,
	}
	if task.Phase == PhaseMap {
		req.InputRecords = 1
	} else {
		req.Output = []KV{{Key: fmt.Sprintf("r%d", task.Index), Value: "1"}}
	}
	return tb.complete(req, now)
}

// drain runs the job to completion through worker id, asserting it finishes.
func drain(t *testing.T, tb *leaseTable, id int, now time.Duration) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		task, rejoin := tb.lease(id, now)
		if rejoin {
			t.Fatalf("drain: worker %d told to rejoin", id)
		}
		if task == nil {
			tb.mu.Lock()
			done := tb.job.finished()
			tb.mu.Unlock()
			if done {
				return
			}
			// Let time pass so stale leases held by other workers expire,
			// keeping the drain worker itself alive.
			now += 10 * time.Millisecond
			tb.heartbeat(id, now)
			tb.sweep(now)
			continue
		}
		if ok, _ := completeOK(tb, id, task, now); !ok {
			t.Fatalf("drain: completion rejected for %s %d", task.Phase, task.Index)
		}
	}
	t.Fatal("drain: job did not finish in 1000 rounds")
}

func TestLeaseMapBarrierThenReduce(t *testing.T) {
	tb := newLeaseTable(testTuning(), nil, nil)
	testJob(t, tb, 2, 2)
	// Concurrent leases need distinct workers: a repeat lease from a worker
	// already holding a task is a re-grant of that task, never a second one.
	w := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)
	w3 := register(t, tb, "c:3", 0)

	task1, _ := tb.lease(w, 0)
	if task1 == nil || task1.Phase != PhaseMap || task1.Attempt != 1 {
		t.Fatalf("first lease = %+v", task1)
	}
	task2, _ := tb.lease(w2, 0)
	if task2 == nil || task2.Phase != PhaseMap {
		t.Fatalf("second lease = %+v", task2)
	}
	// All maps leased, none complete: no reduce may start (its MapAddrs
	// would be incomplete).
	if task, _ := tb.lease(w3, 0); task != nil {
		t.Fatalf("got %s task before map barrier cleared", task.Phase)
	}
	completeOK(tb, w, task1, 0)
	completeOK(tb, w2, task2, 0)
	red, _ := tb.lease(w, 0)
	if red == nil || red.Phase != PhaseReduce {
		t.Fatalf("post-barrier lease = %+v", red)
	}
	if len(red.MapAddrs) != 2 || red.MapAddrs[task1.Index] != "a:1" ||
		red.MapAddrs[task2.Index] != "b:2" {
		t.Fatalf("reduce MapAddrs = %v", red.MapAddrs)
	}
	completeOK(tb, w, red, 0)
	drain(t, tb, w, 0)

	out, err := tb.result()
	if err != nil {
		t.Fatal(err)
	}
	if out.MapInputRecords != 2 {
		t.Errorf("MapInputRecords = %d, want 2", out.MapInputRecords)
	}
	if len(out.KVs) != 2 || out.KVs[0].Key != "r0" || out.KVs[1].Key != "r1" {
		t.Errorf("KVs = %v", out.KVs)
	}
}

func TestHeartbeatExactlyAtDeadlineSurvives(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	w := register(t, tb, "a:1", 0)

	// Beat at t=0; sweeping exactly at the timeout must keep the worker: the
	// contract is now-lastBeat strictly greater than the timeout kills.
	tb.sweep(cfg.HeartbeatTimeout)
	if !tb.heartbeat(w, cfg.HeartbeatTimeout) {
		t.Fatal("worker declared dead with heartbeat age == timeout")
	}
	// One nanosecond past the deadline kills.
	last := cfg.HeartbeatTimeout
	tb.sweep(last + cfg.HeartbeatTimeout + 1)
	if tb.heartbeat(w, last+cfg.HeartbeatTimeout+1) {
		t.Fatal("worker still alive past heartbeat deadline")
	}
	if n := tb.liveWorkerCount(); n != 0 {
		t.Fatalf("live workers = %d", n)
	}
}

func TestLeaseExpiryReassignsAndStrikes(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	testJob(t, tb, 1, 1)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)

	task, _ := tb.lease(w1, 0)
	if task == nil {
		t.Fatal("no lease")
	}
	// Keep both workers beating but let w1 sit on the task past its lease.
	now := cfg.LeaseDeadline + 1
	tb.heartbeat(w1, now)
	tb.heartbeat(w2, now)
	tb.sweep(now)

	re, _ := tb.lease(w2, now)
	if re == nil || re.Phase != PhaseMap || re.Index != task.Index {
		t.Fatalf("reassigned lease = %+v", re)
	}
	if re.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", re.Attempt)
	}
	// The overrun charged w1 a strike but one strike is under the blacklist
	// threshold; it can still lease once the task frees up again.
	tb.mu.Lock()
	strikes := tb.health.Blacklistings()
	tb.mu.Unlock()
	if strikes != 0 {
		t.Fatalf("blacklisted after one strike, threshold %d", cfg.BlacklistAfter)
	}
}

func TestWorkerRejoinsAfterBlacklistWindow(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	testJob(t, tb, 1, 1)
	w := register(t, tb, "a:1", 0)

	// Fail BlacklistAfter attempts: the worker is benched.
	var now time.Duration
	for i := 0; i < cfg.BlacklistAfter; i++ {
		task, _ := tb.lease(w, now)
		if task == nil {
			t.Fatalf("no lease on attempt %d", i)
		}
		tb.complete(&CompleteRequest{
			WorkerID: w, Seq: task.Seq, Phase: task.Phase, Index: task.Index,
			Attempt: task.Attempt, OK: false, Error: "boom",
		}, now)
	}
	if task, rejoin := tb.lease(w, now); task != nil || rejoin {
		t.Fatalf("blacklisted worker got lease=%v rejoin=%v", task, rejoin)
	}
	// After the blacklist window the same worker leases again — rejoining
	// needs no re-registration, only patience.
	now += cfg.BlacklistBase + 1
	task, rejoin := tb.lease(w, now)
	if task == nil || rejoin {
		t.Fatalf("post-window lease=%v rejoin=%v", task, rejoin)
	}
	completeOK(tb, w, task, now)
	drain(t, tb, w, now)
	if _, err := tb.result(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadWorkerRejoinsWithFreshID(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	testJob(t, tb, 1, 1)
	w1 := register(t, tb, "a:1", 0)

	now := cfg.HeartbeatTimeout + 1
	tb.sweep(now) // w1 missed its heartbeats: dead
	if ok := tb.heartbeat(w1, now); ok {
		t.Fatal("dead worker heartbeat accepted")
	}
	if task, rejoin := tb.lease(w1, now); task != nil || !rejoin {
		t.Fatalf("dead worker lease=%v rejoin=%v, want rejoin", task, rejoin)
	}
	// The restarted process re-registers: new id, old id stays dead.
	w2 := register(t, tb, "a:1", now)
	if w2 == w1 {
		t.Fatal("worker id reused")
	}
	task, rejoin := tb.lease(w2, now)
	if task == nil || rejoin {
		t.Fatalf("rejoined worker lease=%v rejoin=%v", task, rejoin)
	}
	completeOK(tb, w2, task, now)
	drain(t, tb, w2, now)
}

func TestDuplicateCompletionFromZombieIsIdempotent(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	testJob(t, tb, 1, 1)
	w1 := register(t, tb, "a:1", 0)

	task, _ := tb.lease(w1, 0)
	// w1 stalls; its lease expires and w2 re-runs the task.
	now := cfg.LeaseDeadline + 1
	tb.heartbeat(w1, now)
	tb.sweep(now)
	w2 := register(t, tb, "b:2", now)
	re, _ := tb.lease(w2, now)
	if re == nil {
		t.Fatal("no reassigned lease")
	}
	if ok, _ := completeOK(tb, w2, re, now); !ok {
		t.Fatal("w2 completion rejected")
	}
	// The zombie's late report for the stale attempt must be acknowledged
	// (so it stops retrying) and ignored (no double-count): first valid
	// completion won.
	accepted, rejoin := completeOK(tb, w1, task, now)
	if !accepted || rejoin {
		t.Fatalf("zombie completion accepted=%v rejoin=%v", accepted, rejoin)
	}
	tb.mu.Lock()
	mapsDone, producer := tb.job.mapsDone, tb.job.maps[0].worker
	tb.mu.Unlock()
	if mapsDone != 1 {
		t.Fatalf("mapsDone = %d after duplicate", mapsDone)
	}
	if producer != w2 {
		t.Fatalf("producer = %d, want winner %d", producer, w2)
	}
}

func TestWorkerDeathInvalidatesServedMapOutputs(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	testJob(t, tb, 2, 1)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)

	m0, _ := tb.lease(w1, 0)
	m1, _ := tb.lease(w2, 0)
	completeOK(tb, w1, m0, 0)
	completeOK(tb, w2, m1, 0)

	// w1 dies after serving its map output: the partitions died with it, so
	// the map must re-run even though it had completed.
	now := cfg.HeartbeatTimeout + 1
	tb.heartbeat(w2, now)
	tb.sweep(now)

	tb.mu.Lock()
	mapsDone := tb.job.mapsDone
	tb.mu.Unlock()
	if mapsDone != 1 {
		t.Fatalf("mapsDone = %d after producer death, want 1", mapsDone)
	}
	re, _ := tb.lease(w2, now)
	if re == nil || re.Phase != PhaseMap || re.Index != m0.Index {
		t.Fatalf("expected map %d recompute, got %+v", m0.Index, re)
	}
	completeOK(tb, w2, re, now)
	red, _ := tb.lease(w2, now)
	if red == nil || red.Phase != PhaseReduce {
		t.Fatalf("reduce not granted after recovery: %+v", red)
	}
	if red.MapAddrs[m0.Index] != "b:2" {
		t.Fatalf("recovered map served from %q, want b:2", red.MapAddrs[m0.Index])
	}
	completeOK(tb, w2, red, now)
	out, err := tb.result()
	if err != nil {
		t.Fatal(err)
	}
	// Each map contributes its input count exactly once despite the re-run.
	if out.MapInputRecords != 2 {
		t.Errorf("MapInputRecords = %d, want 2", out.MapInputRecords)
	}
}

func TestFetchFailedInvalidatesMapsBeforeReduceRetry(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	testJob(t, tb, 2, 1)
	w := register(t, tb, "a:1", 0)

	m0, _ := tb.lease(w, 0)
	completeOK(tb, w, m0, 0)
	m1, _ := tb.lease(w, 0)
	completeOK(tb, w, m1, 0)
	red, _ := tb.lease(w, 0)
	if red == nil || red.Phase != PhaseReduce {
		t.Fatalf("lease = %+v", red)
	}
	// The reducer reports map 1's output unfetchable.
	tb.complete(&CompleteRequest{
		WorkerID: w, Seq: red.Seq, Phase: red.Phase, Index: red.Index,
		Attempt: red.Attempt, OK: false, Error: "fetch", FailedMaps: []int{1},
	}, 0)

	// Map 1 must recompute before any reduce is granted again.
	re, _ := tb.lease(w, 0)
	if re == nil || re.Phase != PhaseMap || re.Index != 1 {
		t.Fatalf("expected map 1 recompute, got %+v", re)
	}
	completeOK(tb, w, re, 0)
	red2, _ := tb.lease(w, 0)
	if red2 == nil || red2.Phase != PhaseReduce || red2.Attempt != 2 {
		t.Fatalf("reduce retry = %+v", red2)
	}
	completeOK(tb, w, red2, 0)
	if _, err := tb.result(); err != nil {
		t.Fatal(err)
	}
}

func TestJobFailsAfterAttemptBudget(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, nil)
	j := testJob(t, tb, 1, 1)
	w := register(t, tb, "a:1", 0)

	var now time.Duration
	for i := 0; i < cfg.MaxTaskAttempts; i++ {
		// Space the failures out past each blacklist window so the lease is
		// always grantable again.
		now += 10 * cfg.BlacklistBase
		task, _ := tb.lease(w, now)
		if task == nil {
			t.Fatalf("no lease on attempt %d at %v", i, now)
		}
		tb.complete(&CompleteRequest{
			WorkerID: w, Seq: task.Seq, Phase: task.Phase, Index: task.Index,
			Attempt: task.Attempt, OK: false, Error: "persistent",
		}, now)
	}
	select {
	case <-j.doneCh:
	default:
		t.Fatal("job not finished after attempt budget burned")
	}
	if _, err := tb.result(); err == nil {
		t.Fatal("result succeeded for failed job")
	}
}

func TestStaleSeqCompletionDropped(t *testing.T) {
	tb := newLeaseTable(testTuning(), nil, nil)
	testJob(t, tb, 1, 1)
	w := register(t, tb, "a:1", 0)
	task, _ := tb.lease(w, 0)
	completeOK(tb, w, task, 0)
	drain(t, tb, w, 0)

	// Next job: a straggler completion carrying the previous seq must be
	// acknowledged without touching the new job's tasks.
	testJob(t, tb, 1, 1)
	accepted, _ := tb.complete(&CompleteRequest{
		WorkerID: w, Seq: task.Seq, Phase: PhaseMap, Index: 0, Attempt: 1,
		OK: true, InputRecords: 99,
	}, 0)
	if !accepted {
		t.Fatal("stale completion not acknowledged")
	}
	tb.mu.Lock()
	mapsDone := tb.job.mapsDone
	tb.mu.Unlock()
	if mapsDone != 0 {
		t.Fatalf("stale completion advanced new job: mapsDone=%d", mapsDone)
	}
}

// FuzzLeaseReassignment drives the lease table through arbitrary
// interleavings of worker crashes, rejoins, failures, expiries and duplicate
// completions, then checks the protocol's core invariants: the state machine
// never panics or deadlocks, a drainable job always finishes, every map's
// input count is tallied exactly once, and the assembled output holds
// exactly one record per reduce partition.
func FuzzLeaseReassignment(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x13, 0x37})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x20, 0x30, 0x40})
	f.Add([]byte("crash-rejoin-complete"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := testTuning()
		cfg.MaxTaskAttempts = 1 << 30 // adversarial schedules may burn many
		tb := newLeaseTable(cfg, nil, nil)
		j := testJob(t, tb, 3, 2)

		var now time.Duration
		ids := []int{}
		leased := map[int]*TaskSpec{} // live worker id -> last leased task
		addID := func() {
			if id, err := tb.register(fmt.Sprintf("w:%d", len(ids)), nil, now); err == nil {
				ids = append(ids, id)
			}
		}
		addID()
		for _, b := range data {
			if len(ids) == 0 {
				addID()
			}
			id := ids[int(b>>4)%len(ids)]
			switch b % 6 {
			case 0: // heartbeat
				tb.heartbeat(id, now)
			case 1: // lease
				if task, _ := tb.lease(id, now); task != nil {
					leased[id] = task
				}
			case 2: // complete OK (possibly duplicate or stale-lease)
				if task := leased[id]; task != nil {
					completeOK(tb, id, task, now)
				}
			case 3: // complete failed, sometimes with FailedMaps
				if task := leased[id]; task != nil {
					req := &CompleteRequest{
						WorkerID: id, Seq: task.Seq, Phase: task.Phase,
						Index: task.Index, Attempt: task.Attempt, OK: false,
						Error: "fuzz",
					}
					if task.Phase == PhaseReduce && b&0x08 != 0 {
						req.FailedMaps = []int{int(b>>4) % 3}
					}
					tb.complete(req, now)
				}
			case 4: // time passes: heartbeats age, leases may expire
				now += time.Duration(b) * 10 * time.Millisecond
				tb.sweep(now)
			case 5: // register another worker
				addID()
			}
		}

		tb.mu.Lock()
		finished := j.finished()
		failure := j.failure
		tb.mu.Unlock()
		if failure != nil {
			t.Fatalf("job failed under unbounded attempts: %v", failure)
		}
		if !finished {
			// Drain with one fresh, healthy worker far in the future: every
			// blacklist window has passed, so the job must complete.
			now += 100 * cfg.BlacklistBase
			id, err := tb.register("drain:1", nil, now)
			if err != nil {
				t.Skip("worker capacity exhausted by fuzz schedule")
			}
			drain(t, tb, id, now)
		}
		out, err := tb.result()
		if err != nil {
			t.Fatal(err)
		}
		if out.MapInputRecords != 3 {
			t.Fatalf("MapInputRecords = %d, want one count per map (3)", out.MapInputRecords)
		}
		if len(out.KVs) != 2 {
			t.Fatalf("output = %v, want one record per reduce", out.KVs)
		}
		for i, kv := range out.KVs {
			if kv.Key != fmt.Sprintf("r%d", i) {
				t.Fatalf("KVs[%d] = %+v, not in reduce order", i, kv)
			}
		}
	})
}
