package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/obs"
)

// Tuning parameterises the master's liveness and lease protocol. All
// durations are real time on a live master; the state machine itself only
// ever sees explicit "now" values, which is what lets the unit tests and
// the lease fuzzer drive it on a virtual clock, deterministically.
type Tuning struct {
	// HeartbeatInterval is the cadence workers are told to beat at.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a worker dead when now - lastBeat exceeds
	// it (a beat landing exactly on the deadline still counts).
	HeartbeatTimeout time.Duration
	// LeaseDeadline bounds one task attempt; an overrun lease returns the
	// task to the idle pool and strikes the worker.
	LeaseDeadline time.Duration
	// MaxWorkers caps registrations (worker ids are never reused).
	MaxWorkers int
	// MaxTaskAttempts fails the job when one task burns this many leases.
	MaxTaskAttempts int
	// BlacklistAfter and BlacklistBase configure the per-worker strike
	// blacklist, with chaos.NodeHealth's exact semantics: after
	// BlacklistAfter strikes a worker is benched for BlacklistBase,
	// doubling per further strike (exec.Backoff arithmetic).
	BlacklistAfter int
	// BlacklistBase is the first blacklist window.
	BlacklistBase time.Duration
	// InputCacheBytes is each worker's budget for its decoded input-block
	// cache (the runtime's RDD-persistence analogue: splits parsed once per
	// job, later passes served from memory). Delivered to workers at
	// registration; zero selects the default, negative is rejected.
	InputCacheBytes int64
}

// DefaultTuning returns the production-shaped defaults; tests shrink them.
func DefaultTuning() Tuning {
	return Tuning{
		HeartbeatInterval: 250 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		LeaseDeadline:     30 * time.Second,
		MaxWorkers:        64,
		MaxTaskAttempts:   8,
		BlacklistAfter:    3,
		BlacklistBase:     5 * time.Second,
		InputCacheBytes:   256 << 20,
	}
}

// InputError reports a Tuning field rejected at the API boundary, mirroring
// the facade's yafim.Options validation: the caller named a value that can
// never mean anything, as opposed to the zero values withDefaults fills in.
type InputError struct {
	Field  string
	Reason string
}

func (e *InputError) Error() string {
	return fmt.Sprintf("dist: invalid %s: %s", e.Field, e.Reason)
}

// Validate rejects nonsensical tunings with a typed *InputError. Zero fields
// stay legal — they select defaults — but negative durations and budgets,
// which withDefaults would otherwise silently replace, are refused, as is a
// heartbeat timeout shorter than the interval workers are told to beat at
// (every worker would be declared dead between two honest beats).
func (t Tuning) Validate() error {
	for _, f := range []struct {
		name string
		v    time.Duration
	}{
		{"HeartbeatInterval", t.HeartbeatInterval},
		{"HeartbeatTimeout", t.HeartbeatTimeout},
		{"LeaseDeadline", t.LeaseDeadline},
		{"BlacklistBase", t.BlacklistBase},
	} {
		if f.v < 0 {
			return &InputError{Field: "Tuning." + f.name, Reason: "must not be negative"}
		}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"MaxWorkers", t.MaxWorkers},
		{"MaxTaskAttempts", t.MaxTaskAttempts},
		{"BlacklistAfter", t.BlacklistAfter},
	} {
		if f.v < 0 {
			return &InputError{Field: "Tuning." + f.name, Reason: "must not be negative"}
		}
	}
	if t.InputCacheBytes < 0 {
		return &InputError{Field: "Tuning.InputCacheBytes", Reason: "must not be negative"}
	}
	if t.HeartbeatInterval > 0 && t.HeartbeatTimeout > 0 && t.HeartbeatTimeout < t.HeartbeatInterval {
		return &InputError{Field: "Tuning.HeartbeatTimeout",
			Reason: "shorter than HeartbeatInterval; every worker would be declared dead between beats"}
	}
	return nil
}

// withDefaults fills zero fields from DefaultTuning.
func (t Tuning) withDefaults() Tuning {
	d := DefaultTuning()
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = d.HeartbeatInterval
	}
	if t.HeartbeatTimeout <= 0 {
		t.HeartbeatTimeout = d.HeartbeatTimeout
	}
	if t.LeaseDeadline <= 0 {
		t.LeaseDeadline = d.LeaseDeadline
	}
	if t.MaxWorkers <= 0 {
		t.MaxWorkers = d.MaxWorkers
	}
	if t.MaxTaskAttempts <= 0 {
		t.MaxTaskAttempts = d.MaxTaskAttempts
	}
	if t.BlacklistAfter <= 0 {
		t.BlacklistAfter = d.BlacklistAfter
	}
	if t.BlacklistBase <= 0 {
		t.BlacklistBase = d.BlacklistBase
	}
	if t.InputCacheBytes <= 0 {
		t.InputCacheBytes = d.InputCacheBytes
	}
	return t
}

type taskState int

const (
	taskIdle taskState = iota
	taskRunning
	taskDone
)

// trackedTask is one task's scheduling state on the master.
type trackedTask struct {
	phase string
	index int
	split Split

	state       taskState
	worker      int           // lease owner while running; producer once done
	leaseExpiry time.Duration // valid while running
	attempts    int           // leases granted so far

	// deferUntil implements the locality grace window (maps only): the
	// first time a worker that does NOT cache this split asks for it while
	// some other live worker does, the grant is deferred until this
	// deadline so the caching worker — idle workers poll at heartbeat
	// cadence — can claim its own block. Past the deadline anyone gets it:
	// the preference can cost at most one bounded wait, never a stall.
	deferUntil time.Duration

	addr         string // map: producer's serving address once done
	inputRecords int64  // map: reported input record count
	output       []KV   // reduce: reported output
}

// workerState is one registered worker on the master.
type workerState struct {
	id       int
	addr     string
	lastBeat time.Duration
	dead     bool

	// cached is the worker's advertised input-block inventory, replaced
	// wholesale by each report; lastCache is its latest cumulative cache
	// counters, the baseline for folding per-report deltas into metrics.
	cached    map[Split]struct{}
	lastCache CacheStats
}

// distJob is the currently executing job's scheduling state.
type distJob struct {
	spec        *JobSpec
	seq         int
	maps        []*trackedTask
	reduces     []*trackedTask
	mapsDone    int
	reducesDone int
	failure     error
	doneCh      chan struct{} // closed once (all reduces done) or failure set

	// suspended marks a job restored from the journal that no driver has
	// re-attached to yet: its completed work is held, but no lease is
	// granted until the resumed driver re-submits it (supplying the parts
	// the journal never holds, notably the distributed-cache blobs).
	suspended bool
}

func (j *distJob) finished() bool {
	return j.failure != nil || j.reducesDone == len(j.reduces)
}

// metrics is the master's counter surface; all handles are nil-safe so a
// metrics-less table (unit tests) costs nothing.
type metrics struct {
	heartbeats    *obs.Counter
	leaseGrants   *obs.Counter
	leaseExpiries *obs.Counter
	workerDeaths  *obs.Counter
	blacklists    *obs.Counter
	mapsRecovered *obs.Counter
	fetchFailures *obs.Counter
	duplicates    *obs.Counter
	taskFailures  *obs.Counter
	liveWorkers   *obs.Gauge

	inputReads     *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheBytes     *obs.Gauge
	localGrants    *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		heartbeats:    reg.Counter("dist_heartbeats_total", "worker heartbeats received"),
		leaseGrants:   reg.Counter("dist_lease_grants_total", "task leases granted"),
		leaseExpiries: reg.Counter("dist_lease_expiries_total", "task leases that overran their deadline"),
		workerDeaths:  reg.Counter("dist_worker_deaths_total", "workers declared dead by the liveness monitor"),
		blacklists:    reg.Counter("dist_worker_blacklists_total", "blacklist windows opened on workers"),
		mapsRecovered: reg.Counter("dist_map_outputs_recovered_total", "completed map tasks invalidated and re-run after output loss"),
		fetchFailures: reg.Counter("dist_fetch_failures_total", "map outputs reported unfetchable by reducers"),
		duplicates:    reg.Counter("dist_duplicate_completions_total", "idempotently ignored duplicate task completions"),
		taskFailures:  reg.Counter("dist_task_failures_total", "task attempts reported failed by workers"),
		liveWorkers:   reg.Gauge("dist_live_workers", "registered workers not declared dead"),

		inputReads:     reg.Counter("dist_input_reads_total", "input splits parsed from disk across all workers"),
		cacheHits:      reg.Counter("dist_input_cache_hits_total", "input splits served from worker block caches"),
		cacheMisses:    reg.Counter("dist_input_cache_misses_total", "input block cache lookups that missed"),
		cacheEvictions: reg.Counter("dist_input_cache_evictions_total", "input blocks evicted to stay under the byte budget"),
		cacheBytes:     reg.Gauge("dist_input_cache_bytes", "decoded input bytes resident in live workers' block caches"),
		localGrants:    reg.Counter("dist_local_lease_grants_total", "map leases granted to a worker already caching the split"),
	}
}

// leaseTable is the master's scheduling core: worker registration and
// liveness, task leases with deadlines, completion bookkeeping, and the
// recovery actions (reassignment, map-output invalidation, blacklisting)
// that keep a job finishing while workers die around it. Every method takes
// the current time explicitly; the table never reads a clock.
type leaseTable struct {
	mu      sync.Mutex
	cfg     Tuning
	health  *chaos.NodeHealth // blacklist + dead bookkeeping, indexed by worker id-1
	workers []*workerState
	job     *distJob
	nextSeq int

	// finished memoizes the outputs of jobs completed before the last master
	// restart, keyed by name. Populated only by journal replay: within one
	// master lifetime a re-submitted name re-executes as it always did, but
	// the resumed deterministic driver re-requesting passes the old
	// incarnation already finished gets them back instantly.
	finished map[string]*JobOutput

	wal *wal          // write-ahead journal, nil-safe
	log *obs.EventLog // nil-safe
	m   metrics
}

func newLeaseTable(cfg Tuning, log *obs.EventLog, reg *obs.Registry) *leaseTable {
	cfg = cfg.withDefaults()
	return &leaseTable{
		cfg: cfg,
		health: chaos.NewNodeHealth(cfg.MaxWorkers, chaos.Resilience{
			BlacklistAfter: cfg.BlacklistAfter,
			BlacklistBase:  cfg.BlacklistBase,
		}),
		finished: map[string]*JobOutput{},
		log:      log,
		m:        newMetrics(reg),
	}
}

// errTooManyWorkers is returned when registration exceeds Tuning.MaxWorkers.
var errTooManyWorkers = fmt.Errorf("dist: worker capacity exhausted")

// register admits a worker and returns its 1-based id. A restarted process
// registers again and receives a fresh id; ids are never reused, so a
// zombie holding an old id can always be told apart.
//
// ads re-advertises map outputs the worker still serves from a previous
// registration. After a master restart every replayed worker is dead, yet
// the processes themselves may have survived with their output partitions
// intact; rebinding those outputs to the fresh id spares recomputing them.
// Each advertisement is honoured only if the done map is currently bound to
// a dead worker at the same address — the same process re-registering — so
// a confused or malicious worker cannot steal another's outputs.
func (t *leaseTable) register(addr string, ads []OutputAd, now time.Duration) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.workers) >= t.cfg.MaxWorkers {
		return 0, errTooManyWorkers
	}
	w := &workerState{id: len(t.workers) + 1, addr: addr, lastBeat: now}
	t.workers = append(t.workers, w)
	t.wal.append(walRecord{Rec: recRegister, Worker: w.id, Addr: addr}, false)
	t.m.liveWorkers.Add(1)
	t.log.Append(obs.LiveEvent{Event: "worker_register", Worker: w.id, Addr: addr})
	if t.job != nil && !t.job.finished() {
		for _, ad := range ads {
			if ad.Seq != t.job.seq || ad.Map < 0 || ad.Map >= len(t.job.maps) {
				continue
			}
			m := t.job.maps[ad.Map]
			if m.state != taskDone || m.addr != addr {
				continue
			}
			if old := t.workerLocked(m.worker); old == nil || !old.dead {
				continue
			}
			m.worker = w.id
			t.wal.append(walRecord{Rec: recMapRebind, Seq: t.job.seq, Phase: PhaseMap,
				Task: m.index + 1, Worker: w.id, Addr: addr}, false)
			t.log.Append(obs.LiveEvent{Event: "map_output_rebind", Worker: w.id,
				Job: t.job.spec.Name, Seq: t.job.seq, Phase: PhaseMap, Task: m.index + 1,
				Addr: addr})
		}
	}
	return w.id, nil
}

// worker resolves an id under the lock; nil when unknown.
func (t *leaseTable) workerLocked(id int) *workerState {
	if id < 1 || id > len(t.workers) {
		return nil
	}
	return t.workers[id-1]
}

// heartbeat refreshes a worker's liveness. The boolean reports whether the
// master still recognises the worker; false tells it to re-register.
func (t *leaseTable) heartbeat(id int, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return false
	}
	w.lastBeat = now
	t.m.heartbeats.Add(1)
	return true
}

// advertiseCache ingests one worker's input-block inventory and cumulative
// cache counters (register, heartbeat and complete all carry them). The
// inventory replaces the previous advertisement wholesale — evictions
// propagate exactly like insertions. Counter deltas against the worker's
// last report fold into the master metrics; baseline (registration) installs
// the report as the new delta floor WITHOUT counting it, because a rejoining
// incarnation already reported those values under its old id. Cache state is
// never journaled: a restarted master relearns placement from the first
// heartbeat of each surviving worker.
func (t *leaseTable) advertiseCache(id int, cached []Split, stats CacheStats, baseline bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return
	}
	// Reports race: a heartbeat built before a map finished can arrive
	// after that map's completion report. The worker stamps every report
	// with a monotonic Seq; anything not strictly newer than the last
	// ingested report is dropped whole, so a stale inventory can never
	// clobber a fresher one and counter deltas never regress.
	if stats.Seq != 0 && stats.Seq <= w.lastCache.Seq {
		return
	}
	w.cached = make(map[Split]struct{}, len(cached))
	for _, s := range cached {
		w.cached[s] = struct{}{}
	}
	if !baseline {
		t.m.inputReads.Add(float64(stats.Reads - w.lastCache.Reads))
		t.m.cacheHits.Add(float64(stats.Hits - w.lastCache.Hits))
		t.m.cacheMisses.Add(float64(stats.Misses - w.lastCache.Misses))
		t.m.cacheEvictions.Add(float64(stats.Evictions - w.lastCache.Evictions))
	}
	// The gauge tracks resident bytes across live workers, so it moves by
	// the delta on every report (from zero at registration) and is unwound
	// when the worker dies.
	t.m.cacheBytes.Add(float64(stats.Bytes - w.lastCache.Bytes))
	w.lastCache = stats
}

// sweep advances the liveness and lease clocks: workers whose last
// heartbeat is older than the timeout die (a beat exactly at the deadline
// survives), and running tasks whose lease expired return to the idle pool
// with a strike against the worker.
func (t *leaseTable) sweep(now time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.workers {
		if !w.dead && now-w.lastBeat > t.cfg.HeartbeatTimeout {
			t.markDeadLocked(w, "heartbeat_miss")
		}
	}
	if t.job == nil || t.job.finished() {
		return
	}
	for _, task := range append(append([]*trackedTask{}, t.job.maps...), t.job.reduces...) {
		if task.state != taskRunning || now <= task.leaseExpiry {
			continue
		}
		t.m.leaseExpiries.Add(1)
		t.log.Append(obs.LiveEvent{Event: "lease_expire", Worker: task.worker,
			Job: t.job.spec.Name, Seq: t.job.seq, Phase: task.phase,
			Task: task.index + 1, Attempt: task.attempts})
		t.strikeLocked(task.worker, now)
		task.state = taskIdle
		task.worker = 0
		t.failJobIfExhaustedLocked(task)
	}
}

// markDeadLocked declares a worker dead: its running tasks and its served
// map outputs for the current job are lost and return to the idle pool.
func (t *leaseTable) markDeadLocked(w *workerState, reason string) {
	if w.dead {
		return
	}
	w.dead = true
	t.health.MarkDead(w.id - 1)
	t.wal.append(walRecord{Rec: recWorkerDead, Worker: w.id}, false)
	t.m.workerDeaths.Add(1)
	t.m.liveWorkers.Add(-1)
	// The block cache died with the process: retract its placement ads so
	// no lease defers in favour of a ghost, and unwind the resident-bytes
	// gauge.
	w.cached = nil
	t.m.cacheBytes.Add(-float64(w.lastCache.Bytes))
	w.lastCache.Bytes = 0
	t.log.Append(obs.LiveEvent{Event: "worker_dead", Worker: w.id, Addr: w.addr, Detail: reason})
	if t.job == nil || t.job.finished() {
		return
	}
	for _, task := range append(append([]*trackedTask{}, t.job.maps...), t.job.reduces...) {
		switch {
		case task.state == taskRunning && task.worker == w.id:
			task.state = taskIdle
			task.worker = 0
			t.log.Append(obs.LiveEvent{Event: "task_reassign", Worker: w.id,
				Job: t.job.spec.Name, Seq: t.job.seq, Phase: task.phase,
				Task: task.index + 1, Detail: "owner died"})
		case task.state == taskDone && task.phase == PhaseMap && task.worker == w.id:
			// The dead worker was serving this map's output partitions;
			// they are gone with the process. Recompute — the distributed
			// twin of the sim's *:map-recover stage.
			task.state = taskIdle
			task.worker = 0
			task.addr = ""
			t.job.mapsDone--
			t.wal.append(walRecord{Rec: recMapLost, Seq: t.job.seq, Phase: PhaseMap,
				Task: task.index + 1}, true)
			t.m.mapsRecovered.Add(1)
			t.log.Append(obs.LiveEvent{Event: "map_output_lost", Worker: w.id,
				Job: t.job.spec.Name, Seq: t.job.seq, Phase: task.phase,
				Task: task.index + 1, Detail: reason})
		}
	}
}

// strikeLocked charges one failure to a worker, opening or extending its
// blacklist window when the strike budget is spent.
func (t *leaseTable) strikeLocked(id int, now time.Duration) {
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return
	}
	t.wal.append(walRecord{Rec: recStrike, Worker: id}, false)
	if t.health.RecordFailure(id-1, now) {
		t.m.blacklists.Add(1)
		t.log.Append(obs.LiveEvent{Event: "worker_blacklist", Worker: id, Addr: w.addr})
	}
}

// failJobIfExhaustedLocked fails the whole job once a task has burned its
// attempt budget — the Hadoop "task failed 4 times" terminal condition.
func (t *leaseTable) failJobIfExhaustedLocked(task *trackedTask) {
	if t.job == nil || t.job.failure != nil || task.attempts < t.cfg.MaxTaskAttempts {
		return
	}
	t.job.failure = fmt.Errorf("dist: %s task %d failed %d attempts",
		task.phase, task.index, task.attempts)
	t.wal.append(walRecord{Rec: recJobFail, Job: t.job.spec.Name,
		Error: t.job.failure.Error()}, true)
	close(t.job.doneCh)
}

// startJob installs the next job's tasks and returns its handle. Exactly
// one job runs at a time (the mining passes are sequential by nature).
//
// When the table holds a suspended job restored from the journal, a
// re-submission with the same shape adopts it — completed tasks, attempt
// counts and map-output locations included — instead of starting over; the
// fresh spec supplies what the journal never held (cache blobs, params). A
// re-submission with a different shape is a resume mismatch: the operator
// pointed the master at the wrong journal, and silently discarding the
// replayed work would hide that.
func (t *leaseTable) startJob(spec *JobSpec, splits []Split) (*distJob, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.job != nil && t.job.suspended {
		j, adopted, err := t.adoptLocked(spec, splits)
		if adopted || err != nil {
			return j, err
		}
	}
	if t.job != nil && !t.job.finished() {
		return nil, fmt.Errorf("dist: job %s still running", t.job.spec.Name)
	}
	t.nextSeq++
	j := &distJob{spec: spec, seq: t.nextSeq, doneCh: make(chan struct{})}
	for i, s := range splits {
		j.maps = append(j.maps, &trackedTask{phase: PhaseMap, index: i, split: s})
	}
	for i := 0; i < spec.NumReducers; i++ {
		j.reduces = append(j.reduces, &trackedTask{phase: PhaseReduce, index: i})
	}
	t.job = j
	t.wal.append(walRecord{Rec: recJobStart, Job: spec.Name, Type: spec.Type,
		InputPath: spec.InputPath, Seq: j.seq, Splits: splits,
		NumReducers: spec.NumReducers}, true)
	t.log.Append(obs.LiveEvent{Event: "job_start", Job: spec.Name, Seq: j.seq,
		Detail: fmt.Sprintf("%d maps, %d reduces", len(j.maps), len(j.reduces))})
	return j, nil
}

// adoptLocked matches a re-submitted job against the suspended replayed one.
// adopted reports whether the suspended job was taken over; on a shape
// mismatch against an unfinished job it returns the resume-mismatch error,
// and against a finished one it clears the leftover so startJob proceeds
// fresh (the finished job's output lives on in the memo table).
func (t *leaseTable) adoptLocked(spec *JobSpec, splits []Split) (j *distJob, adopted bool, err error) {
	j = t.job
	match := j.spec.Name == spec.Name && j.spec.Type == spec.Type &&
		len(j.maps) == len(splits) && len(j.reduces) == spec.NumReducers
	if match {
		for i, s := range splits {
			if j.maps[i].split != s {
				match = false
				break
			}
		}
	}
	if !match {
		if !j.finished() {
			return nil, false, fmt.Errorf(
				"dist: resume mismatch: journal holds job %s (%d maps, %d reduces), driver submitted %s (%d maps, %d reduces)",
				j.spec.Name, len(j.maps), len(j.reduces),
				spec.Name, len(splits), spec.NumReducers)
		}
		t.job = nil
		return nil, false, nil
	}
	j.spec = spec
	j.suspended = false
	t.log.Append(obs.LiveEvent{Event: "job_adopt", Job: spec.Name, Seq: j.seq,
		Detail: fmt.Sprintf("%d/%d maps, %d/%d reduces already done",
			j.mapsDone, len(j.maps), j.reducesDone, len(j.reduces))})
	return j, true, nil
}

// lease hands the worker its next task, if any is runnable: map tasks while
// any map is idle, then — once every map output is in place — reduce tasks,
// whose specs embed the map-output locations. The boolean "rejoin" tells a
// dead or unknown worker to re-register.
func (t *leaseTable) lease(id int, now time.Duration) (spec *TaskSpec, rejoin bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return nil, true
	}
	if t.job == nil || t.job.finished() || t.job.suspended {
		// A suspended job grants nothing: the resumed driver has not
		// re-attached yet, so its cache blobs are not servable.
		return nil, false
	}
	if ex := t.health.Excluded(now); ex != nil && ex[id-1] {
		return nil, false // benched: ask again after the window
	}
	j := t.job
	// A lease request proves this worker is idle — its task loop is serial,
	// so it only asks when it is executing nothing. A task still recorded as
	// running under its id is therefore a grant whose response was lost in
	// transit (the at-least-once edge a lossy network hits routinely): left
	// alone it would strand until the lease deadline expires. Re-grant it
	// immediately, same attempt, fresh deadline.
	for _, task := range append(append([]*trackedTask{}, j.maps...), j.reduces...) {
		if task.state == taskRunning && task.worker == id {
			task.leaseExpiry = now + t.cfg.LeaseDeadline
			t.wal.append(walRecord{Rec: recLease, Seq: j.seq, Phase: task.phase,
				Task: task.index + 1, Worker: id, Attempt: task.attempts}, false)
			t.log.Append(obs.LiveEvent{Event: "lease_regrant", Worker: id,
				Job: j.spec.Name, Seq: j.seq, Phase: task.phase,
				Task: task.index + 1, Attempt: task.attempts})
			return t.taskSpecLocked(j, task), false
		}
	}
	// Placement-aware map selection, replacing the shared-filesystem
	// assumption with real block placement. Three tiers, stall-free:
	//
	//  1. an idle map whose split this worker already caches — served from
	//     memory, zero disk reads;
	//  2. an idle map cached by no live worker — someone must read it from
	//     disk, so this worker might as well (and cache it for later passes);
	//  3. an idle map cached only on OTHER live workers — deferred for one
	//     bounded grace window (HeartbeatTimeout: within it the caching
	//     owner either polls or is declared dead, which clears its ads),
	//     then granted to anyone. The preference costs at most one wait,
	//     never progress.
	var task *trackedTask
	var local bool
	var uncached *trackedTask
	anyIdleMap := false
	for _, m := range j.maps {
		if m.state != taskIdle {
			continue
		}
		anyIdleMap = true
		if _, ok := w.cached[m.split]; ok {
			task = m
			local = true
			break
		}
		if uncached == nil && !t.splitCachedLocked(m.split, id) {
			uncached = m
		}
	}
	if task == nil {
		task = uncached
	}
	if task == nil && anyIdleMap {
		for _, m := range j.maps {
			if m.state != taskIdle {
				continue
			}
			if m.deferUntil == 0 {
				m.deferUntil = now + t.cfg.HeartbeatTimeout
				continue
			}
			if now >= m.deferUntil {
				task = m
				break
			}
		}
	}
	if task == nil && !anyIdleMap && j.mapsDone == len(j.maps) {
		for _, r := range j.reduces {
			if r.state == taskIdle {
				task = r
				break
			}
		}
	}
	if task == nil {
		return nil, false
	}
	task.state = taskRunning
	task.worker = id
	task.attempts++
	task.leaseExpiry = now + t.cfg.LeaseDeadline
	task.deferUntil = 0
	t.wal.append(walRecord{Rec: recLease, Seq: j.seq, Phase: task.phase,
		Task: task.index + 1, Worker: id, Attempt: task.attempts}, false)
	t.m.leaseGrants.Add(1)
	detail := ""
	if local {
		t.m.localGrants.Add(1)
		detail = "cached locally"
	}
	t.log.Append(obs.LiveEvent{Event: "lease_grant", Worker: id, Job: j.spec.Name,
		Seq: j.seq, Phase: task.phase, Task: task.index + 1, Attempt: task.attempts,
		Detail: detail})
	return t.taskSpecLocked(j, task), false
}

// splitCachedLocked reports whether any live worker other than exclude
// advertises the split as cached.
func (t *leaseTable) splitCachedLocked(s Split, exclude int) bool {
	for _, w := range t.workers {
		if w.dead || w.id == exclude {
			continue
		}
		if _, ok := w.cached[s]; ok {
			return true
		}
	}
	return false
}

// taskSpecLocked builds the wire spec for a leased task under the lock.
func (t *leaseTable) taskSpecLocked(j *distJob, task *trackedTask) *TaskSpec {
	spec := &TaskSpec{
		Job: j.spec.Name, Seq: j.seq, Type: j.spec.Type, Params: j.spec.Params,
		Phase: task.phase, Index: task.index, Attempt: task.attempts,
		NumMaps: len(j.maps), NumReducers: len(j.reduces),
	}
	for name := range j.spec.Cache {
		spec.CacheNames = append(spec.CacheNames, name)
	}
	sort.Strings(spec.CacheNames)
	if task.phase == PhaseMap {
		spec.Split = task.split
	} else {
		spec.MapAddrs = make([]string, len(j.maps))
		for i, m := range j.maps {
			spec.MapAddrs[i] = m.addr
		}
	}
	return spec
}

// complete ingests one task-attempt report. Every path is idempotent: a
// zombie worker re-reporting a task the master already completed (or
// already re-ran) is acknowledged and ignored.
func (t *leaseTable) complete(req *CompleteRequest, now time.Duration) (accepted, rejoin bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(req.WorkerID)
	if w == nil || w.dead {
		// A worker the liveness monitor declared dead cannot vouch for its
		// map outputs (its server may vanish any moment); reject and make
		// it re-register before it does more work.
		return false, true
	}
	j := t.job
	if j == nil || req.Seq != j.seq {
		return true, false // stale completion from an earlier job: drop
	}
	if j.failure != nil {
		return true, false // job already failed or canceled: drop
	}
	var task *trackedTask
	switch req.Phase {
	case PhaseMap:
		if req.Index >= 0 && req.Index < len(j.maps) {
			task = j.maps[req.Index]
		}
	case PhaseReduce:
		if req.Index >= 0 && req.Index < len(j.reduces) {
			task = j.reduces[req.Index]
		}
	}
	if task == nil {
		return false, false
	}
	if task.state == taskDone {
		t.m.duplicates.Add(1)
		t.log.Append(obs.LiveEvent{Event: "duplicate_completion", Worker: req.WorkerID,
			Job: j.spec.Name, Seq: j.seq, Phase: req.Phase, Task: req.Index + 1})
		return true, false
	}
	if !req.OK {
		t.m.taskFailures.Add(1)
		t.log.Append(obs.LiveEvent{Event: "task_failed", Worker: req.WorkerID,
			Job: j.spec.Name, Seq: j.seq, Phase: req.Phase, Task: req.Index + 1,
			Attempt: req.Attempt, Detail: req.Error})
		t.strikeLocked(req.WorkerID, now)
		// FetchFailed protocol: the reducer names the map outputs it could
		// not fetch; invalidate them so they recompute before the reduce
		// is retried.
		for _, mi := range req.FailedMaps {
			if mi < 0 || mi >= len(j.maps) {
				continue
			}
			m := j.maps[mi]
			if m.state != taskDone {
				continue // already being recomputed
			}
			m.state = taskIdle
			m.worker = 0
			m.addr = ""
			j.mapsDone--
			t.wal.append(walRecord{Rec: recMapLost, Seq: j.seq, Phase: PhaseMap,
				Task: mi + 1}, true)
			t.m.fetchFailures.Add(1)
			t.m.mapsRecovered.Add(1)
			t.log.Append(obs.LiveEvent{Event: "map_output_lost", Worker: req.WorkerID,
				Job: j.spec.Name, Seq: j.seq, Phase: PhaseMap, Task: mi + 1,
				Detail: "fetch failed"})
		}
		if task.state == taskRunning && task.worker == req.WorkerID {
			task.state = taskIdle
			task.worker = 0
		}
		t.failJobIfExhaustedLocked(task)
		return true, false
	}
	// Success. The reporter may no longer own the lease (it expired, or
	// another worker holds a newer one): first valid result wins, the
	// loser's report lands in the duplicate branch above.
	task.state = taskDone
	task.worker = req.WorkerID
	if req.Phase == PhaseMap {
		task.addr = w.addr
		task.inputRecords = req.InputRecords
		j.mapsDone++
		// Synced before the ack: once the worker hears "accepted" it may be
		// told to discard nothing — but the master must never re-lease work
		// it acknowledged as done across a crash, or a resumed run could
		// fetch the same map output from two generations.
		t.wal.append(walRecord{Rec: recMapDone, Seq: j.seq, Phase: PhaseMap,
			Task: req.Index + 1, Worker: req.WorkerID, Addr: w.addr,
			InputRecords: req.InputRecords}, true)
	} else {
		task.output = req.Output
		j.reducesDone++
		t.wal.append(walRecord{Rec: recReduceDone, Seq: j.seq, Phase: PhaseReduce,
			Task: req.Index + 1, Worker: req.WorkerID, Output: req.Output}, true)
		if j.reducesDone == len(j.reduces) && j.failure == nil {
			close(j.doneCh)
		}
	}
	t.log.Append(obs.LiveEvent{Event: "task_complete", Worker: req.WorkerID,
		Job: j.spec.Name, Seq: j.seq, Phase: req.Phase, Task: req.Index + 1,
		Attempt: req.Attempt})
	return true, false
}

// result assembles the finished job's output; an error if it failed.
func (t *leaseTable) result() (*JobOutput, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j := t.job
	if j == nil {
		return nil, fmt.Errorf("dist: no job")
	}
	if j.failure != nil {
		return nil, j.failure
	}
	if j.reducesDone != len(j.reduces) {
		return nil, fmt.Errorf("dist: job %s not finished", j.spec.Name)
	}
	out := &JobOutput{}
	for _, m := range j.maps {
		out.MapInputRecords += m.inputRecords
	}
	for _, r := range j.reduces {
		out.KVs = append(out.KVs, r.output...)
	}
	return out, nil
}

// cacheFile serves a distributed-cache blob of the current job.
func (t *leaseTable) cacheFile(seq int, name string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.job == nil || t.job.seq != seq {
		return nil, false
	}
	data, ok := t.job.spec.Cache[name]
	return data, ok
}

// finishedJob returns the memoized output of a job that completed before
// the last master restart, if the journal recorded one under this name.
func (t *leaseTable) finishedJob(name string) (*JobOutput, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out, ok := t.finished[name]
	return out, ok
}

// memoizeDone journals a job's completion so a later crash replays it as a
// memo. It deliberately does not touch the in-memory memo table: within one
// master lifetime a re-submitted job name re-executes as it always did.
func (t *leaseTable) memoizeDone(name string, out *JobOutput) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wal.append(walRecord{Rec: recJobDone, Job: name, Output: out.KVs,
		MapInputRecords: out.MapInputRecords, DurationNS: int64(out.Duration)}, true)
}

// liveWorkerCount reports workers not declared dead.
func (t *leaseTable) liveWorkerCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, w := range t.workers {
		if !w.dead {
			n++
		}
	}
	return n
}
