package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/obs"
)

// Tuning parameterises the master's liveness and lease protocol. All
// durations are real time on a live master; the state machine itself only
// ever sees explicit "now" values, which is what lets the unit tests and
// the lease fuzzer drive it on a virtual clock, deterministically.
type Tuning struct {
	// HeartbeatInterval is the cadence workers are told to beat at.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a worker dead when now - lastBeat exceeds
	// it (a beat landing exactly on the deadline still counts).
	HeartbeatTimeout time.Duration
	// LeaseDeadline bounds one task attempt; an overrun lease returns the
	// task to the idle pool and strikes the worker.
	LeaseDeadline time.Duration
	// MaxWorkers caps registrations (worker ids are never reused).
	MaxWorkers int
	// MaxTaskAttempts fails the job when one task burns this many leases.
	MaxTaskAttempts int
	// BlacklistAfter and BlacklistBase configure the per-worker strike
	// blacklist, with chaos.NodeHealth's exact semantics: after
	// BlacklistAfter strikes a worker is benched for BlacklistBase,
	// doubling per further strike (exec.Backoff arithmetic).
	BlacklistAfter int
	// BlacklistBase is the first blacklist window.
	BlacklistBase time.Duration
}

// DefaultTuning returns the production-shaped defaults; tests shrink them.
func DefaultTuning() Tuning {
	return Tuning{
		HeartbeatInterval: 250 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		LeaseDeadline:     30 * time.Second,
		MaxWorkers:        64,
		MaxTaskAttempts:   8,
		BlacklistAfter:    3,
		BlacklistBase:     5 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultTuning.
func (t Tuning) withDefaults() Tuning {
	d := DefaultTuning()
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = d.HeartbeatInterval
	}
	if t.HeartbeatTimeout <= 0 {
		t.HeartbeatTimeout = d.HeartbeatTimeout
	}
	if t.LeaseDeadline <= 0 {
		t.LeaseDeadline = d.LeaseDeadline
	}
	if t.MaxWorkers <= 0 {
		t.MaxWorkers = d.MaxWorkers
	}
	if t.MaxTaskAttempts <= 0 {
		t.MaxTaskAttempts = d.MaxTaskAttempts
	}
	if t.BlacklistAfter <= 0 {
		t.BlacklistAfter = d.BlacklistAfter
	}
	if t.BlacklistBase <= 0 {
		t.BlacklistBase = d.BlacklistBase
	}
	return t
}

type taskState int

const (
	taskIdle taskState = iota
	taskRunning
	taskDone
)

// trackedTask is one task's scheduling state on the master.
type trackedTask struct {
	phase string
	index int
	split Split

	state       taskState
	worker      int           // lease owner while running; producer once done
	leaseExpiry time.Duration // valid while running
	attempts    int           // leases granted so far

	addr         string // map: producer's serving address once done
	inputRecords int64  // map: reported input record count
	output       []KV   // reduce: reported output
}

// workerState is one registered worker on the master.
type workerState struct {
	id       int
	addr     string
	lastBeat time.Duration
	dead     bool
}

// distJob is the currently executing job's scheduling state.
type distJob struct {
	spec        *JobSpec
	seq         int
	maps        []*trackedTask
	reduces     []*trackedTask
	mapsDone    int
	reducesDone int
	failure     error
	doneCh      chan struct{} // closed once (all reduces done) or failure set
}

func (j *distJob) finished() bool {
	return j.failure != nil || j.reducesDone == len(j.reduces)
}

// metrics is the master's counter surface; all handles are nil-safe so a
// metrics-less table (unit tests) costs nothing.
type metrics struct {
	heartbeats    *obs.Counter
	leaseGrants   *obs.Counter
	leaseExpiries *obs.Counter
	workerDeaths  *obs.Counter
	blacklists    *obs.Counter
	mapsRecovered *obs.Counter
	fetchFailures *obs.Counter
	duplicates    *obs.Counter
	taskFailures  *obs.Counter
	liveWorkers   *obs.Gauge
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		heartbeats:    reg.Counter("dist_heartbeats_total", "worker heartbeats received"),
		leaseGrants:   reg.Counter("dist_lease_grants_total", "task leases granted"),
		leaseExpiries: reg.Counter("dist_lease_expiries_total", "task leases that overran their deadline"),
		workerDeaths:  reg.Counter("dist_worker_deaths_total", "workers declared dead by the liveness monitor"),
		blacklists:    reg.Counter("dist_worker_blacklists_total", "blacklist windows opened on workers"),
		mapsRecovered: reg.Counter("dist_map_outputs_recovered_total", "completed map tasks invalidated and re-run after output loss"),
		fetchFailures: reg.Counter("dist_fetch_failures_total", "map outputs reported unfetchable by reducers"),
		duplicates:    reg.Counter("dist_duplicate_completions_total", "idempotently ignored duplicate task completions"),
		taskFailures:  reg.Counter("dist_task_failures_total", "task attempts reported failed by workers"),
		liveWorkers:   reg.Gauge("dist_live_workers", "registered workers not declared dead"),
	}
}

// leaseTable is the master's scheduling core: worker registration and
// liveness, task leases with deadlines, completion bookkeeping, and the
// recovery actions (reassignment, map-output invalidation, blacklisting)
// that keep a job finishing while workers die around it. Every method takes
// the current time explicitly; the table never reads a clock.
type leaseTable struct {
	mu      sync.Mutex
	cfg     Tuning
	health  *chaos.NodeHealth // blacklist + dead bookkeeping, indexed by worker id-1
	workers []*workerState
	job     *distJob
	nextSeq int

	log *obs.EventLog // nil-safe
	m   metrics
}

func newLeaseTable(cfg Tuning, log *obs.EventLog, reg *obs.Registry) *leaseTable {
	cfg = cfg.withDefaults()
	return &leaseTable{
		cfg: cfg,
		health: chaos.NewNodeHealth(cfg.MaxWorkers, chaos.Resilience{
			BlacklistAfter: cfg.BlacklistAfter,
			BlacklistBase:  cfg.BlacklistBase,
		}),
		log: log,
		m:   newMetrics(reg),
	}
}

// errTooManyWorkers is returned when registration exceeds Tuning.MaxWorkers.
var errTooManyWorkers = fmt.Errorf("dist: worker capacity exhausted")

// register admits a worker and returns its 1-based id. A restarted process
// registers again and receives a fresh id; ids are never reused, so a
// zombie holding an old id can always be told apart.
func (t *leaseTable) register(addr string, now time.Duration) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.workers) >= t.cfg.MaxWorkers {
		return 0, errTooManyWorkers
	}
	w := &workerState{id: len(t.workers) + 1, addr: addr, lastBeat: now}
	t.workers = append(t.workers, w)
	t.m.liveWorkers.Add(1)
	t.log.Append(obs.LiveEvent{Event: "worker_register", Worker: w.id, Addr: addr})
	return w.id, nil
}

// worker resolves an id under the lock; nil when unknown.
func (t *leaseTable) workerLocked(id int) *workerState {
	if id < 1 || id > len(t.workers) {
		return nil
	}
	return t.workers[id-1]
}

// heartbeat refreshes a worker's liveness. The boolean reports whether the
// master still recognises the worker; false tells it to re-register.
func (t *leaseTable) heartbeat(id int, now time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return false
	}
	w.lastBeat = now
	t.m.heartbeats.Add(1)
	return true
}

// sweep advances the liveness and lease clocks: workers whose last
// heartbeat is older than the timeout die (a beat exactly at the deadline
// survives), and running tasks whose lease expired return to the idle pool
// with a strike against the worker.
func (t *leaseTable) sweep(now time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.workers {
		if !w.dead && now-w.lastBeat > t.cfg.HeartbeatTimeout {
			t.markDeadLocked(w, "heartbeat_miss")
		}
	}
	if t.job == nil || t.job.finished() {
		return
	}
	for _, task := range append(append([]*trackedTask{}, t.job.maps...), t.job.reduces...) {
		if task.state != taskRunning || now <= task.leaseExpiry {
			continue
		}
		t.m.leaseExpiries.Add(1)
		t.log.Append(obs.LiveEvent{Event: "lease_expire", Worker: task.worker,
			Job: t.job.spec.Name, Seq: t.job.seq, Phase: task.phase,
			Task: task.index + 1, Attempt: task.attempts})
		t.strikeLocked(task.worker, now)
		task.state = taskIdle
		task.worker = 0
		t.failJobIfExhaustedLocked(task)
	}
}

// markDeadLocked declares a worker dead: its running tasks and its served
// map outputs for the current job are lost and return to the idle pool.
func (t *leaseTable) markDeadLocked(w *workerState, reason string) {
	if w.dead {
		return
	}
	w.dead = true
	t.health.MarkDead(w.id - 1)
	t.m.workerDeaths.Add(1)
	t.m.liveWorkers.Add(-1)
	t.log.Append(obs.LiveEvent{Event: "worker_dead", Worker: w.id, Addr: w.addr, Detail: reason})
	if t.job == nil || t.job.finished() {
		return
	}
	for _, task := range append(append([]*trackedTask{}, t.job.maps...), t.job.reduces...) {
		switch {
		case task.state == taskRunning && task.worker == w.id:
			task.state = taskIdle
			task.worker = 0
			t.log.Append(obs.LiveEvent{Event: "task_reassign", Worker: w.id,
				Job: t.job.spec.Name, Seq: t.job.seq, Phase: task.phase,
				Task: task.index + 1, Detail: "owner died"})
		case task.state == taskDone && task.phase == PhaseMap && task.worker == w.id:
			// The dead worker was serving this map's output partitions;
			// they are gone with the process. Recompute — the distributed
			// twin of the sim's *:map-recover stage.
			task.state = taskIdle
			task.worker = 0
			task.addr = ""
			t.job.mapsDone--
			t.m.mapsRecovered.Add(1)
			t.log.Append(obs.LiveEvent{Event: "map_output_lost", Worker: w.id,
				Job: t.job.spec.Name, Seq: t.job.seq, Phase: task.phase,
				Task: task.index + 1, Detail: reason})
		}
	}
}

// strikeLocked charges one failure to a worker, opening or extending its
// blacklist window when the strike budget is spent.
func (t *leaseTable) strikeLocked(id int, now time.Duration) {
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return
	}
	if t.health.RecordFailure(id-1, now) {
		t.m.blacklists.Add(1)
		t.log.Append(obs.LiveEvent{Event: "worker_blacklist", Worker: id, Addr: w.addr})
	}
}

// failJobIfExhaustedLocked fails the whole job once a task has burned its
// attempt budget — the Hadoop "task failed 4 times" terminal condition.
func (t *leaseTable) failJobIfExhaustedLocked(task *trackedTask) {
	if t.job == nil || t.job.failure != nil || task.attempts < t.cfg.MaxTaskAttempts {
		return
	}
	t.job.failure = fmt.Errorf("dist: %s task %d failed %d attempts",
		task.phase, task.index, task.attempts)
	close(t.job.doneCh)
}

// startJob installs the next job's tasks and returns its handle. Exactly
// one job runs at a time (the mining passes are sequential by nature).
func (t *leaseTable) startJob(spec *JobSpec, splits []Split) (*distJob, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.job != nil && !t.job.finished() {
		return nil, fmt.Errorf("dist: job %s still running", t.job.spec.Name)
	}
	t.nextSeq++
	j := &distJob{spec: spec, seq: t.nextSeq, doneCh: make(chan struct{})}
	for i, s := range splits {
		j.maps = append(j.maps, &trackedTask{phase: PhaseMap, index: i, split: s})
	}
	for i := 0; i < spec.NumReducers; i++ {
		j.reduces = append(j.reduces, &trackedTask{phase: PhaseReduce, index: i})
	}
	t.job = j
	t.log.Append(obs.LiveEvent{Event: "job_start", Job: spec.Name, Seq: j.seq,
		Detail: fmt.Sprintf("%d maps, %d reduces", len(j.maps), len(j.reduces))})
	return j, nil
}

// lease hands the worker its next task, if any is runnable: map tasks while
// any map is idle, then — once every map output is in place — reduce tasks,
// whose specs embed the map-output locations. The boolean "rejoin" tells a
// dead or unknown worker to re-register.
func (t *leaseTable) lease(id int, now time.Duration) (spec *TaskSpec, rejoin bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(id)
	if w == nil || w.dead {
		return nil, true
	}
	if t.job == nil || t.job.finished() {
		return nil, false
	}
	if ex := t.health.Excluded(now); ex != nil && ex[id-1] {
		return nil, false // benched: ask again after the window
	}
	j := t.job
	var task *trackedTask
	for _, m := range j.maps {
		if m.state == taskIdle {
			task = m
			break
		}
	}
	if task == nil && j.mapsDone == len(j.maps) {
		for _, r := range j.reduces {
			if r.state == taskIdle {
				task = r
				break
			}
		}
	}
	if task == nil {
		return nil, false
	}
	task.state = taskRunning
	task.worker = id
	task.attempts++
	task.leaseExpiry = now + t.cfg.LeaseDeadline
	t.m.leaseGrants.Add(1)
	t.log.Append(obs.LiveEvent{Event: "lease_grant", Worker: id, Job: j.spec.Name,
		Seq: j.seq, Phase: task.phase, Task: task.index + 1, Attempt: task.attempts})

	spec = &TaskSpec{
		Job: j.spec.Name, Seq: j.seq, Type: j.spec.Type, Params: j.spec.Params,
		Phase: task.phase, Index: task.index, Attempt: task.attempts,
		NumMaps: len(j.maps), NumReducers: len(j.reduces),
	}
	for name := range j.spec.Cache {
		spec.CacheNames = append(spec.CacheNames, name)
	}
	sort.Strings(spec.CacheNames)
	if task.phase == PhaseMap {
		spec.Split = task.split
	} else {
		spec.MapAddrs = make([]string, len(j.maps))
		for i, m := range j.maps {
			spec.MapAddrs[i] = m.addr
		}
	}
	return spec, false
}

// complete ingests one task-attempt report. Every path is idempotent: a
// zombie worker re-reporting a task the master already completed (or
// already re-ran) is acknowledged and ignored.
func (t *leaseTable) complete(req *CompleteRequest, now time.Duration) (accepted, rejoin bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.workerLocked(req.WorkerID)
	if w == nil || w.dead {
		// A worker the liveness monitor declared dead cannot vouch for its
		// map outputs (its server may vanish any moment); reject and make
		// it re-register before it does more work.
		return false, true
	}
	j := t.job
	if j == nil || req.Seq != j.seq {
		return true, false // stale completion from an earlier job: drop
	}
	if j.failure != nil {
		return true, false // job already failed or canceled: drop
	}
	var task *trackedTask
	switch req.Phase {
	case PhaseMap:
		if req.Index >= 0 && req.Index < len(j.maps) {
			task = j.maps[req.Index]
		}
	case PhaseReduce:
		if req.Index >= 0 && req.Index < len(j.reduces) {
			task = j.reduces[req.Index]
		}
	}
	if task == nil {
		return false, false
	}
	if task.state == taskDone {
		t.m.duplicates.Add(1)
		t.log.Append(obs.LiveEvent{Event: "duplicate_completion", Worker: req.WorkerID,
			Job: j.spec.Name, Seq: j.seq, Phase: req.Phase, Task: req.Index + 1})
		return true, false
	}
	if !req.OK {
		t.m.taskFailures.Add(1)
		t.log.Append(obs.LiveEvent{Event: "task_failed", Worker: req.WorkerID,
			Job: j.spec.Name, Seq: j.seq, Phase: req.Phase, Task: req.Index + 1,
			Attempt: req.Attempt, Detail: req.Error})
		t.strikeLocked(req.WorkerID, now)
		// FetchFailed protocol: the reducer names the map outputs it could
		// not fetch; invalidate them so they recompute before the reduce
		// is retried.
		for _, mi := range req.FailedMaps {
			if mi < 0 || mi >= len(j.maps) {
				continue
			}
			m := j.maps[mi]
			if m.state != taskDone {
				continue // already being recomputed
			}
			m.state = taskIdle
			m.worker = 0
			m.addr = ""
			j.mapsDone--
			t.m.fetchFailures.Add(1)
			t.m.mapsRecovered.Add(1)
			t.log.Append(obs.LiveEvent{Event: "map_output_lost", Worker: req.WorkerID,
				Job: j.spec.Name, Seq: j.seq, Phase: PhaseMap, Task: mi + 1,
				Detail: "fetch failed"})
		}
		if task.state == taskRunning && task.worker == req.WorkerID {
			task.state = taskIdle
			task.worker = 0
		}
		t.failJobIfExhaustedLocked(task)
		return true, false
	}
	// Success. The reporter may no longer own the lease (it expired, or
	// another worker holds a newer one): first valid result wins, the
	// loser's report lands in the duplicate branch above.
	task.state = taskDone
	task.worker = req.WorkerID
	if req.Phase == PhaseMap {
		task.addr = w.addr
		task.inputRecords = req.InputRecords
		j.mapsDone++
	} else {
		task.output = req.Output
		j.reducesDone++
		if j.reducesDone == len(j.reduces) && j.failure == nil {
			close(j.doneCh)
		}
	}
	t.log.Append(obs.LiveEvent{Event: "task_complete", Worker: req.WorkerID,
		Job: j.spec.Name, Seq: j.seq, Phase: req.Phase, Task: req.Index + 1,
		Attempt: req.Attempt})
	return true, false
}

// result assembles the finished job's output; an error if it failed.
func (t *leaseTable) result() (*JobOutput, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j := t.job
	if j == nil {
		return nil, fmt.Errorf("dist: no job")
	}
	if j.failure != nil {
		return nil, j.failure
	}
	if j.reducesDone != len(j.reduces) {
		return nil, fmt.Errorf("dist: job %s not finished", j.spec.Name)
	}
	out := &JobOutput{}
	for _, m := range j.maps {
		out.MapInputRecords += m.inputRecords
	}
	for _, r := range j.reduces {
		out.KVs = append(out.KVs, r.output...)
	}
	return out, nil
}

// cacheFile serves a distributed-cache blob of the current job.
func (t *leaseTable) cacheFile(seq int, name string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.job == nil || t.job.seq != seq {
		return nil, false
	}
	data, ok := t.job.spec.Cache[name]
	return data, ok
}

// liveWorkerCount reports workers not declared dead.
func (t *leaseTable) liveWorkerCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, w := range t.workers {
		if !w.dead {
			n++
		}
	}
	return n
}
