package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"yafim/internal/obs"
)

// Master is the real runtime's driver-side endpoint: it owns the lease
// table, serves the worker protocol over HTTP, runs the liveness sweeper,
// and implements Executor so a driver can submit jobs to real worker
// processes exactly as it would to the in-memory oracle.
type Master struct {
	cfg   Tuning
	table *leaseTable
	log   *obs.EventLog
	reg   *obs.Registry

	srv   *http.Server
	ln    net.Listener
	start time.Time

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewMaster starts a master listening on addr ("host:port"; ":0" picks a
// free port). log and reg may be nil. Close releases the listener and the
// sweeper.
func NewMaster(addr string, cfg Tuning, log *obs.EventLog, reg *obs.Registry) (*Master, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: master listen: %w", err)
	}
	m := &Master{
		cfg:       cfg,
		table:     newLeaseTable(cfg, log, reg),
		log:       log,
		reg:       reg,
		ln:        ln,
		start:     time.Now(),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/dist/register", m.handleRegister)
	mux.HandleFunc("/dist/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("/dist/lease", m.handleLease)
	mux.HandleFunc("/dist/complete", m.handleComplete)
	mux.HandleFunc("/dist/cache", m.handleCache)
	mux.HandleFunc("/dist/events", m.handleEvents)
	mux.HandleFunc("/metrics", m.handleMetrics)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	go m.sweeper()
	return m, nil
}

// Addr returns the master's listen address (for workers to dial).
func (m *Master) Addr() string { return m.ln.Addr().String() }

// URL returns the master's base URL.
func (m *Master) URL() string { return "http://" + m.Addr() }

// now is the master's monotonic clock, the real-time source every lease
// table call is fed from.
func (m *Master) now() time.Duration { return time.Since(m.start) }

// Close shuts the protocol server and the liveness sweeper down.
func (m *Master) Close() error {
	close(m.stopSweep)
	<-m.sweepDone
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.srv.Shutdown(ctx)
}

// LiveWorkers reports registered workers not declared dead.
func (m *Master) LiveWorkers() int { return m.table.liveWorkerCount() }

// sweeper drives the liveness monitor and lease-deadline clock.
func (m *Master) sweeper() {
	defer close(m.sweepDone)
	t := time.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-t.C:
			m.table.sweep(m.now())
		}
	}
}

// ExecJob implements Executor: cut the input into splits, install the job
// in the lease table, and wait for workers to pull it to completion.
func (m *Master) ExecJob(ctx context.Context, job *JobSpec) (*JobOutput, error) {
	if _, err := lookupJobType(job.Type); err != nil {
		return nil, err
	}
	splits, err := splitFile(job.InputPath, job.NumMaps)
	if err != nil {
		return nil, fmt.Errorf("dist: %s: %w", job.Name, err)
	}
	started := time.Now()
	j, err := m.table.startJob(job, splits)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.doneCh:
	case <-ctx.Done():
		m.table.failJob(j, fmt.Errorf("dist: %s: %w", job.Name, ctx.Err()))
		<-j.doneCh
	}
	out, err := m.table.result()
	if err != nil {
		return nil, err
	}
	out.Duration = time.Since(started)
	return out, nil
}

// failJob aborts a job that has not already finished (driver cancellation).
func (t *leaseTable) failJob(j *distJob, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j.finished() {
		return
	}
	j.failure = err
	close(j.doneCh)
}

// decode parses a JSON request body, replying 400 on malformed input.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is its problem
}

func (m *Master) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := m.table.register(req.Addr, m.now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	reply(w, RegisterResponse{
		WorkerID:    id,
		HeartbeatMs: m.cfg.HeartbeatInterval.Milliseconds(),
	})
}

func (m *Master) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	ok := m.table.heartbeat(req.WorkerID, m.now())
	reply(w, HeartbeatResponse{OK: ok, Rejoin: !ok})
}

func (m *Master) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	task, rejoin := m.table.lease(req.WorkerID, m.now())
	resp := LeaseResponse{Task: task, Rejoin: rejoin}
	if task == nil {
		resp.WaitMs = m.cfg.HeartbeatInterval.Milliseconds()
	}
	reply(w, resp)
}

func (m *Master) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	accepted, rejoin := m.table.complete(&req, m.now())
	reply(w, CompleteResponse{Accepted: accepted, Rejoin: rejoin})
}

// handleCache serves one distributed-cache blob of the current job.
func (m *Master) handleCache(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.Atoi(r.URL.Query().Get("seq"))
	if err != nil {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	name := r.URL.Query().Get("name")
	data, ok := m.table.cacheFile(seq, name)
	if !ok {
		http.Error(w, "no such cache file", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck
}

// handleEvents dumps the live event journal as JSONL.
func (m *Master) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	m.log.WriteTo(w) //nolint:errcheck
}

// handleMetrics exposes the master's counters in Prometheus text format.
func (m *Master) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.reg.WritePrometheus(w) //nolint:errcheck
}
