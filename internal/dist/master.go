package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"yafim/internal/obs"
)

// Master is the real runtime's driver-side endpoint: it owns the lease
// table, serves the worker protocol over HTTP, runs the liveness sweeper,
// and implements Executor so a driver can submit jobs to real worker
// processes exactly as it would to the in-memory oracle.
type Master struct {
	cfg   Tuning
	table *leaseTable
	log   *obs.EventLog
	reg   *obs.Registry

	srv   *http.Server
	ln    net.Listener
	start time.Time

	stopOnce  sync.Once
	stopSweep chan struct{}
	sweepDone chan struct{}
}

// MasterOptions configures StartMaster. The zero value of every field is
// usable: listen on an ephemeral port, default tuning, no observability, no
// journal.
type MasterOptions struct {
	// Addr is the listen address ("host:port"; empty or ":0" picks a free
	// port).
	Addr string
	// Tuning parameterises the lease protocol; it is validated (typed
	// *InputError on nonsense) before zero fields select defaults.
	Tuning Tuning
	// Log and Reg are the optional observability surfaces.
	Log *obs.EventLog
	Reg *obs.Registry
	// JournalPath, when set, write-ahead journals every lease-table state
	// transition to this file (JSONL, fsync'd batches) so a crashed master
	// can be restarted with Resume.
	JournalPath string
	// Resume replays JournalPath before serving: the lease table is rebuilt
	// (workers dead pending re-registration, the in-flight job suspended
	// pending driver re-attachment, finished jobs memoized), a torn journal
	// tail is truncated away, and new records append to the same file.
	Resume bool
}

// NewMaster starts a master listening on addr ("host:port"; ":0" picks a
// free port). log and reg may be nil. Close releases the listener and the
// sweeper. Journal-less convenience wrapper around StartMaster.
func NewMaster(addr string, cfg Tuning, log *obs.EventLog, reg *obs.Registry) (*Master, error) {
	return StartMaster(MasterOptions{Addr: addr, Tuning: cfg, Log: log, Reg: reg})
}

// StartMaster starts a master. See MasterOptions for the journal and
// crash-recovery knobs.
func StartMaster(opts MasterOptions) (*Master, error) {
	if err := opts.Tuning.Validate(); err != nil {
		return nil, err
	}
	cfg := opts.Tuning.withDefaults()
	table := newLeaseTable(cfg, opts.Log, opts.Reg)
	if opts.Resume {
		if opts.JournalPath == "" {
			return nil, &InputError{Field: "MasterOptions.JournalPath",
				Reason: "required when Resume is set"}
		}
		st, off, err := replayWAL(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		// Drop the torn tail before appending: the next incarnation's
		// replay must never parse half a record from this one.
		if err := os.Truncate(opts.JournalPath, off); err != nil {
			return nil, fmt.Errorf("dist: resume: %w", err)
		}
		table.restore(st)
	}
	if opts.JournalPath != "" {
		w, err := openWAL(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		table.wal = w
	}
	addr := opts.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		table.wal.close() //nolint:errcheck
		return nil, fmt.Errorf("dist: master listen: %w", err)
	}
	m := &Master{
		cfg:       cfg,
		table:     table,
		log:       opts.Log,
		reg:       opts.Reg,
		ln:        ln,
		start:     time.Now(),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/dist/register", m.handleRegister)
	mux.HandleFunc("/dist/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("/dist/lease", m.handleLease)
	mux.HandleFunc("/dist/complete", m.handleComplete)
	mux.HandleFunc("/dist/cache", m.handleCache)
	mux.HandleFunc("/dist/events", m.handleEvents)
	mux.HandleFunc("/metrics", m.handleMetrics)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	go m.sweeper()
	return m, nil
}

// Addr returns the master's listen address (for workers to dial).
func (m *Master) Addr() string { return m.ln.Addr().String() }

// URL returns the master's base URL.
func (m *Master) URL() string { return "http://" + m.Addr() }

// now is the master's monotonic clock, the real-time source every lease
// table call is fed from.
func (m *Master) now() time.Duration { return time.Since(m.start) }

// Close shuts the protocol server, the liveness sweeper and the journal
// down gracefully (the journal is flushed and fsync'd).
func (m *Master) Close() error {
	m.stopOnce.Do(func() { close(m.stopSweep) })
	<-m.sweepDone
	m.table.wal.close() //nolint:errcheck // best-effort on shutdown
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.srv.Shutdown(ctx)
}

// Abort kills the master the way SIGKILL would, for crash-recovery tests:
// journal records buffered since the last fsync are dropped (not flushed),
// the listener and all connections slam shut, and nothing is drained. The
// process-internal goroutines are still reaped so tests stay leak-free —
// the externally observable state is exactly what a real kill leaves.
func (m *Master) Abort() {
	m.table.wal.abort()
	m.stopOnce.Do(func() { close(m.stopSweep) })
	<-m.sweepDone
	m.srv.Close() //nolint:errcheck
}

// LiveWorkers reports registered workers not declared dead.
func (m *Master) LiveWorkers() int { return m.table.liveWorkerCount() }

// sweeper drives the liveness monitor and lease-deadline clock.
func (m *Master) sweeper() {
	defer close(m.sweepDone)
	t := time.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-t.C:
			m.table.sweep(m.now())
		}
	}
}

// ExecJob implements Executor: cut the input into splits, install the job
// in the lease table, and wait for workers to pull it to completion.
func (m *Master) ExecJob(ctx context.Context, job *JobSpec) (*JobOutput, error) {
	if _, err := lookupJobType(job.Type); err != nil {
		return nil, err
	}
	if out, ok := m.table.finishedJob(job.Name); ok {
		// The job completed before the last master restart; the resumed
		// deterministic driver re-requesting it gets the journaled result
		// back without re-execution.
		m.log.Append(obs.LiveEvent{Event: "job_memoized", Job: job.Name})
		return out, nil
	}
	splits, err := splitFile(job.InputPath, job.NumMaps)
	if err != nil {
		return nil, fmt.Errorf("dist: %s: %w", job.Name, err)
	}
	started := time.Now()
	j, err := m.table.startJob(job, splits)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.doneCh:
	case <-ctx.Done():
		m.table.failJob(j, fmt.Errorf("dist: %s: %w", job.Name, ctx.Err()))
		<-j.doneCh
	}
	out, err := m.table.result()
	if err != nil {
		return nil, err
	}
	out.Duration = time.Since(started)
	m.table.memoizeDone(job.Name, out)
	return out, nil
}

// failJob aborts a job that has not already finished (driver cancellation).
func (t *leaseTable) failJob(j *distJob, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j.finished() {
		return
	}
	j.failure = err
	t.wal.append(walRecord{Rec: recJobFail, Job: j.spec.Name, Error: err.Error()}, true)
	close(j.doneCh)
}

// decode parses a JSON request body, replying 400 on malformed input.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is its problem
}

func (m *Master) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := m.table.register(req.Addr, req.Outputs, m.now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	// Baseline, not delta: a rejoining incarnation's cumulative counters
	// were already folded into the metrics under its previous id.
	m.table.advertiseCache(id, req.Cached, req.Cache, true)
	reply(w, RegisterResponse{
		WorkerID:        id,
		HeartbeatMs:     m.cfg.HeartbeatInterval.Milliseconds(),
		InputCacheBytes: m.cfg.InputCacheBytes,
	})
}

func (m *Master) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	ok := m.table.heartbeat(req.WorkerID, m.now())
	if ok {
		m.table.advertiseCache(req.WorkerID, req.Cached, req.Cache, false)
	}
	reply(w, HeartbeatResponse{OK: ok, Rejoin: !ok})
}

func (m *Master) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	task, rejoin := m.table.lease(req.WorkerID, m.now())
	resp := LeaseResponse{Task: task, Rejoin: rejoin}
	if task == nil {
		resp.WaitMs = m.cfg.HeartbeatInterval.Milliseconds()
	}
	reply(w, resp)
}

func (m *Master) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	// Ingest the piggybacked cache advertisement first: a map task that
	// just decoded a split must be preferred for it before the next pass's
	// leases are cut, not one heartbeat later. No-ops for unknown or dead
	// workers.
	m.table.advertiseCache(req.WorkerID, req.Cached, req.Cache, false)
	accepted, rejoin := m.table.complete(&req, m.now())
	reply(w, CompleteResponse{Accepted: accepted, Rejoin: rejoin})
}

// handleCache serves one distributed-cache blob of the current job.
func (m *Master) handleCache(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.Atoi(r.URL.Query().Get("seq"))
	if err != nil {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	name := r.URL.Query().Get("name")
	data, ok := m.table.cacheFile(seq, name)
	if !ok {
		http.Error(w, "no such cache file", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck
}

// handleEvents dumps the live event journal as JSONL.
func (m *Master) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	m.log.WriteTo(w) //nolint:errcheck
}

// handleMetrics exposes the master's counters in Prometheus text format.
func (m *Master) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.reg.WritePrometheus(w) //nolint:errcheck
}
