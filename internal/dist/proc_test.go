// Real multi-OS-process tests: TestMain re-execs this test binary as a
// worker process when the master-URL environment variable is set, the
// standard re-exec trick for process-level harnesses. The mining job types
// are registered by importing mrapriori, in the worker children exactly as
// in the driver.
package dist_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	osexec "os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/dist"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
)

// workerEnv carries the master URL into forked worker processes.
const workerEnv = "YAFIM_DIST_TEST_WORKER"

func TestMain(m *testing.M) {
	if master := os.Getenv(workerEnv); master != "" {
		// This process is a forked worker: serve until killed or drained.
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
		defer stop()
		if err := dist.RunWorker(ctx, dist.WorkerOptions{MasterURL: master}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// procWorker is one forked worker process.
type procWorker struct {
	cmd *osexec.Cmd
	out *bytes.Buffer
}

// forkWorker starts this test binary as a worker process for masterURL.
func forkWorker(t *testing.T, masterURL string) *procWorker {
	t.Helper()
	var out bytes.Buffer
	cmd := osexec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerEnv+"="+masterURL)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &procWorker{cmd: cmd, out: &out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
		if t.Failed() && out.Len() > 0 {
			t.Logf("worker %d output:\n%s", cmd.Process.Pid, out.String())
		}
	})
	return w
}

// syntheticDB builds a deterministic transaction database with planted
// frequent patterns several levels deep plus hash-spread noise items.
func syntheticDB(rows int) *itemset.DB {
	patterns := [][]itemset.Item{
		{1, 2, 3}, {1, 2, 3, 4}, {2, 3, 5}, {6, 7}, {1, 6},
	}
	data := make([][]itemset.Item, rows)
	for i := range data {
		row := append([]itemset.Item(nil), patterns[i%len(patterns)]...)
		// Two pseudo-random noise items per row, fixed arithmetic so every
		// run (and every process) builds the identical database.
		row = append(row, itemset.Item(10+(i*7)%23), itemset.Item(40+(i*13)%31))
		data[i] = row
	}
	return itemset.NewDB("synthetic", data)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestKillWorkerMidMiningParity is the tentpole acceptance test: mine a
// database across two real worker processes, SIGKILL one mid-pass, and
// require the surviving worker to carry the run to completion with frequent
// itemsets byte-identical to the in-memory sim oracle's.
func TestKillWorkerMidMiningParity(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	db := syntheticDB(1500)
	cfg := mrapriori.Config{MinSupport: 0.15, NumReducers: 3, NumMapTasks: 4}

	// Sim oracle.
	fs := dfs.New(4)
	if _, err := dataset.Stage(fs, "/data/synthetic.dat", db); err != nil {
		t.Fatal(err)
	}
	runner, err := mapreduce.NewRunner(fs, cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mrapriori.MineContext(context.Background(), runner, fs,
		"/data/synthetic.dat", "/work", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Result.Levels) < 3 {
		t.Fatalf("oracle found only %d levels; dataset too thin to exercise recovery", len(want.Result.Levels))
	}

	// Real input file for the worker processes.
	input := filepath.Join(t.TempDir(), "synthetic.dat")
	if err := dataset.SaveFile(db, input); err != nil {
		t.Fatal(err)
	}

	log := obs.NewEventLog(nil)
	master, err := dist.NewMaster("127.0.0.1:0", dist.Tuning{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		LeaseDeadline:     20 * time.Second,
	}, log, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	victim := forkWorker(t, master.URL())
	forkWorker(t, master.URL())
	waitFor(t, 10*time.Second, "2 workers to register", func() bool {
		return master.LiveWorkers() == 2
	})

	// Assassin: the moment real task flow is visible, SIGKILL one worker —
	// no drain, no goodbye, the process and its served map outputs vanish.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			for _, ev := range log.Events() {
				if ev.Event == "task_complete" {
					victim.cmd.Process.Kill() //nolint:errcheck
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := mrapriori.MineDistributed(ctx, master, input, cfg)
	if err != nil {
		t.Fatalf("distributed mining failed after worker kill: %v", err)
	}
	select {
	case <-killed:
	case <-time.After(time.Second):
		t.Fatal("assassin never fired: no task completions observed")
	}

	if !got.Result.Equal(want.Result) {
		t.Errorf("distributed itemsets diverge from sim oracle:\n dist %v\n sim  %v",
			got.Result.All(), want.Result.All())
	}
	if got.Result.MinSupport != want.Result.MinSupport {
		t.Errorf("absolute min support: dist %d, sim %d",
			got.Result.MinSupport, want.Result.MinSupport)
	}

	// The liveness monitor must have noticed the murder.
	waitFor(t, 5*time.Second, "master to declare the victim dead", func() bool {
		return master.LiveWorkers() == 1
	})
	var deaths, recovered int
	for _, ev := range log.Events() {
		switch ev.Event {
		case "worker_dead":
			deaths++
		case "map_output_lost", "task_reassign":
			recovered++
		}
	}
	if deaths == 0 {
		t.Error("journal shows no worker_dead event")
	}
	t.Logf("journal: %d deaths, %d recovery actions, %d events total",
		deaths, recovered, len(log.Events()))
}

// TestWorkerDrainsOnSIGTERM checks the graceful half of shutdown: a worker
// told to terminate finishes cleanly with exit status 0.
func TestWorkerDrainsOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	master, err := dist.NewMaster("127.0.0.1:0", dist.Tuning{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	w := forkWorker(t, master.URL())
	waitFor(t, 10*time.Second, "worker to register", func() bool {
		return master.LiveWorkers() == 1
	})
	if err := w.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exited uncleanly: %v\n%s", err, w.out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain within 10s of SIGTERM")
	}
}
