package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yafim/internal/obs"
)

func TestTransportPlanValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan TransportPlan
		ok   bool
	}{
		{"zero", TransportPlan{}, true},
		{"default", DefaultTransportPlan(1), true},
		{"prob over one", TransportPlan{DropRequestProb: 1.5}, false},
		{"negative prob", TransportPlan{DuplicateProb: -0.1}, false},
		{"negative delay", TransportPlan{MaxDelay: -time.Second}, false},
		{"delay prob without max", TransportPlan{DelayProb: 0.5}, false},
		{"empty partition target", TransportPlan{Partitions: []LinkPartition{{}}}, false},
		{"partition heals before start", TransportPlan{Partitions: []LinkPartition{
			{Target: "x", From: time.Second, Until: time.Millisecond}}}, false},
		{"forever partition", TransportPlan{Partitions: []LinkPartition{{Target: "x"}}}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
	if _, err := NewChaosTransport(TransportPlan{DelayProb: 2}, nil); err == nil {
		t.Fatal("NewChaosTransport accepted an invalid plan")
	}
}

// chaosClient returns a client over srv wrapped in the plan's faults.
func chaosClient(t *testing.T, plan TransportPlan, srv *httptest.Server) *http.Client {
	t.Helper()
	ct, err := NewChaosTransport(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Transport: ct, Timeout: 5 * time.Second}
}

// TestChaosTransportDeterministic checks the per-call fault verdicts are a
// pure function of (seed, path, call number): two transports with one seed
// agree call-for-call; a different seed diverges somewhere.
func TestChaosTransportDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	verdicts := func(seed int64) string {
		plan := TransportPlan{Seed: seed, DropRequestProb: 0.3, DropResponseProb: 0.3}
		client := chaosClient(t, plan, srv)
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL + "/dist/lease")
			var fe *FaultError
			switch {
			case err == nil:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()              //nolint:errcheck
				sb.WriteByte('.')
			case errors.As(err, &fe):
				sb.WriteByte(fe.Kind[7]) // 'q' for drop_request, 's' for drop_response
			default:
				t.Fatalf("call %d: unexpected error %v", i, err)
			}
		}
		return sb.String()
	}
	a, b, c := verdicts(7), verdicts(7), verdicts(8)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatalf("different seeds agreed: %s", a)
	}
	if !strings.ContainsAny(a, "qs") || !strings.Contains(a, ".") {
		t.Fatalf("seed 7 schedule not a mix of faults and successes: %s", a)
	}
}

// TestChaosTransportDuplicate checks duplicate delivery reaches the server
// twice per caller-visible request.
func TestChaosTransportDuplicate(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"x":1}` {
			t.Errorf("server saw body %q", body)
		}
		hits.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	client := chaosClient(t, TransportPlan{Seed: 1, DuplicateProb: 1}, srv)
	resp, err := client.Post(srv.URL+"/dist/complete", "application/json",
		strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if n := hits.Load(); n != 2 {
		t.Fatalf("server hits = %d, want 2 (original + duplicate)", n)
	}
}

// TestChaosTransportDropResponse checks the at-least-once edge: the server
// processes the request, the caller sees a failure.
func TestChaosTransportDropResponse(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	client := chaosClient(t, TransportPlan{Seed: 1, DropResponseProb: 1}, srv)
	_, err := client.Get(srv.URL + "/dist/heartbeat")
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != "drop_response" {
		t.Fatalf("err = %v, want drop_response FaultError", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1: a dropped response must still be processed", hits.Load())
	}
}

// TestChaosTransportDropRequest checks a dropped request never reaches the
// server.
func TestChaosTransportDropRequest(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	client := chaosClient(t, TransportPlan{Seed: 1, DropRequestProb: 1}, srv)
	_, err := client.Get(srv.URL + "/dist/lease")
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != "drop_request" {
		t.Fatalf("err = %v, want drop_request FaultError", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server hits = %d, want 0: a dropped request must never arrive", hits.Load())
	}
}

// TestChaosTransportPartition checks a partition window cuts matching links
// immediately (no dial) and leaves others untouched.
func TestChaosTransportPartition(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	client := chaosClient(t, TransportPlan{Seed: 1, Partitions: []LinkPartition{
		{Target: "/dist/lease"}, // forever
	}}, srv)
	_, err := client.Get(srv.URL + "/dist/lease")
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != "partition" {
		t.Fatalf("err = %v, want partition FaultError", err)
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the server")
	}
	resp, err := client.Get(srv.URL + "/dist/heartbeat")
	if err != nil {
		t.Fatalf("unpartitioned link failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if hits.Load() != 1 {
		t.Fatal("unpartitioned request did not reach the server")
	}
}

// TestChaosMiningParityWordCount is the transport's end-to-end protocol
// check: a full master/worker word-count run with every fault kind injected
// on every link must produce exactly the oracle's output — the protocol, not
// the schedule, is the invariant (see the ChaosTransport doc comment).
func TestChaosMiningParityWordCount(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	typ := wordCountType(t)
	corpus := writeCorpus(t, 400)

	oracle, err := (&Local{}).ExecJob(context.Background(), &JobSpec{
		Name: "wc-oracle", Type: typ, InputPath: corpus, NumMaps: 4, NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	log := obs.NewEventLog(nil)
	m, err := NewMaster("127.0.0.1:0", fastTuning(), log, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		ct, err := NewChaosTransport(DefaultTransportPlan(int64(1000+i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			_ = RunWorker(ctx, WorkerOptions{
				MasterURL: m.URL(),
				Addr:      "127.0.0.1:0",
				Transport: ct,
			})
		}()
	}

	got, err := m.ExecJob(ctx, &JobSpec{
		Name: "wc-chaos", Type: typ, InputPath: corpus, NumMaps: 4, NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.MapInputRecords != oracle.MapInputRecords {
		t.Fatalf("MapInputRecords = %d, want %d", got.MapInputRecords, oracle.MapInputRecords)
	}
	if !reflect.DeepEqual(got.KVs, oracle.KVs) {
		t.Fatalf("chaos run diverged from oracle:\nwant %v\ngot  %v", oracle.KVs, got.KVs)
	}
}
