package dist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// fileLine is one text record of a real input file: the byte offset of the
// line start (the conventional MapReduce key) and the text without its
// trailing newline.
type fileLine struct {
	offset int64
	text   string
}

// splitFile cuts a real file into at least minSplits byte ranges, mirroring
// dfs.SplitsN's FileInputFormat behaviour (minus block structure, which real
// local files do not have): even target-sized ranges covering the file,
// clamped so no split is empty. Record boundaries are reconciled by
// readSplit, not here.
func splitFile(path string, minSplits int) ([]Split, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, fmt.Errorf("dist: input %s is empty", path)
	}
	if minSplits < 1 {
		minSplits = 1
	}
	if int64(minSplits) > size {
		minSplits = int(size)
	}
	// Exactly minSplits non-empty ranges: even base size, the remainder
	// spread one byte at a time over the leading splits.
	base := size / int64(minSplits)
	rem := size % int64(minSplits)
	out := make([]Split, 0, minSplits)
	off := int64(0)
	for i := 0; i < minSplits; i++ {
		length := base
		if int64(i) < rem {
			length++
		}
		out = append(out, Split{Path: path, Offset: off, Length: length})
		off += length
	}
	return out, nil
}

// readSplit reads the records belonging to one split of a real file with
// Hadoop's LineRecordReader convention, exactly as the sim DFS reader
// (dfs.ReadLines) applies it: a split not starting at offset zero discards
// its first line — partial or whole, it belongs to the previous split — and
// every split keeps reading records whose first byte lies at or before the
// split's end, extending past the boundary to finish the last record.
// Together the splits of a file yield every line exactly once, which is what
// keeps the distributed map stage's record count (and with it the absolute
// min-support threshold) byte-identical to the sim oracle's.
func readSplit(split Split) ([]fileLine, error) {
	f, err := os.Open(split.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	start := split.Offset
	end := split.Offset + split.Length
	if end > size {
		end = size
	}
	if start >= size || start >= end {
		return nil, nil
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	pos := start
	if start > 0 {
		skipped, err := br.ReadString('\n')
		if err == io.EOF {
			// The split lies entirely inside one long unterminated line
			// started in an earlier split; it contributes no records.
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		pos += int64(len(skipped))
	}
	var lines []fileLine
	for {
		if pos > end || pos >= size {
			// Records starting strictly past the boundary belong to the
			// next split (which discards its leading line to compensate).
			break
		}
		text, err := br.ReadString('\n')
		if err == io.EOF {
			if len(text) > 0 {
				lines = append(lines, fileLine{offset: pos, text: text})
			}
			break
		}
		if err != nil {
			return nil, err
		}
		lines = append(lines, fileLine{offset: pos, text: strings.TrimSuffix(text, "\n")})
		pos += int64(len(text))
	}
	return lines, nil
}
