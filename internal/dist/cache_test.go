package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"yafim/internal/obs"
)

// TestDropStaleCachesEvictsOlderJobs is the regression test for the
// distributed-cache blob leak: blobs were keyed by job seq and name but never
// deleted, so a long-lived worker accumulated every finished job's candidate
// batches forever. A task from a newer job proves every older job's blobs are
// dead weight.
func TestDropStaleCachesEvictsOlderJobs(t *testing.T) {
	w := &worker{caches: map[cacheKey][]byte{
		{seq: 1, name: "cand"}:  []byte("old"),
		{seq: 1, name: "other"}: []byte("old2"),
		{seq: 2, name: "cand"}:  []byte("current"),
	}}
	w.dropStaleCaches(2)
	want := map[cacheKey][]byte{{seq: 2, name: "cand"}: []byte("current")}
	if !reflect.DeepEqual(w.caches, want) {
		t.Fatalf("caches after drop = %v, want %v", w.caches, want)
	}
	// Dropping for the same seq again is a no-op.
	w.dropStaleCaches(2)
	if !reflect.DeepEqual(w.caches, want) {
		t.Fatalf("idempotent drop changed caches: %v", w.caches)
	}
}

// TestRunTaskDropsOlderSeqBlobs drives the eviction through the real task
// path: executing any task of a newer job clears older jobs' blobs before
// the task runs.
func TestRunTaskDropsOlderSeqBlobs(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(CompleteResponse{Accepted: true}) //nolint:errcheck
	}))
	defer srv.Close()
	w := &worker{
		opts:   WorkerOptions{MasterURL: srv.URL}.withDefaults(),
		client: srv.Client(),
		blocks: newBlockCache(1 << 20),
		caches: map[cacheKey][]byte{
			{seq: 1, name: "cand"}: []byte("stale"),
			{seq: 3, name: "cand"}: []byte("live"),
		},
	}
	// An unknown phase fails the task, but the stale-cache sweep runs first
	// and the completion (reporting the failure) still posts — which is all
	// this test needs.
	w.runTask(context.Background(), &TaskSpec{
		Job: "j", Seq: 3, Phase: "bogus", Index: 0, Attempt: 1,
	})
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.caches[cacheKey{seq: 1, name: "cand"}]; ok {
		t.Fatal("older job's blob survived a newer job's task")
	}
	if _, ok := w.caches[cacheKey{seq: 3, name: "cand"}]; !ok {
		t.Fatal("current job's blob evicted")
	}
}

// TestSecondJobServedFromCache is the tentpole's end-to-end proof: a second
// job over the same input touches the disk zero times — every split is
// served from the workers' block caches, with placement-aware leasing
// steering each split's map back to the worker that caches it.
func TestSecondJobServedFromCache(t *testing.T) {
	typ := wordCountType(t)
	input := writeCorpus(t, 200)
	cfg := fastTuning()
	// A generous grace window: under -race scheduling stalls must never let
	// a non-caching worker steal a split before its owner polls again.
	cfg.HeartbeatTimeout = 5 * time.Second
	reg := obs.NewRegistry()
	master, err := NewMaster("127.0.0.1:0", cfg, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	startWorkers(t, master.URL(), 2)

	spec := func(name string) *JobSpec {
		return &JobSpec{Name: name, Type: typ, InputPath: input,
			NumMaps: 4, NumReducers: 3}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	outA, err := master.ExecJob(ctx, spec("wc-a"))
	if err != nil {
		t.Fatal(err)
	}
	readsAfterA := master.table.m.inputReads.Value()
	if readsAfterA != 4 {
		t.Fatalf("job A read %v splits from disk, want 4 (one per split)", readsAfterA)
	}

	outB, err := master.ExecJob(ctx, spec("wc-b"))
	if err != nil {
		t.Fatal(err)
	}
	if got := master.table.m.inputReads.Value(); got != readsAfterA {
		t.Fatalf("job B touched the disk: input reads %v -> %v, want no change",
			readsAfterA, got)
	}
	if hits := master.table.m.cacheHits.Value(); hits < 4 {
		t.Fatalf("cache hits = %v after job B, want >= 4", hits)
	}
	outA.Duration, outB.Duration = 0, 0
	if !reflect.DeepEqual(outA, outB) {
		t.Fatalf("cached job output diverges:\n a %v\n b %v", outA.KVs, outB.KVs)
	}
}

// TestCacheRebuildAfterWorkerRestartParity kills the only worker between two
// jobs: the replacement's cold cache re-reads every split — the cache is
// ephemeral by design — and the results stay byte-identical.
func TestCacheRebuildAfterWorkerRestartParity(t *testing.T) {
	typ := wordCountType(t)
	input := writeCorpus(t, 120)
	reg := obs.NewRegistry()
	master, err := NewMaster("127.0.0.1:0", fastTuning(), nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	stop := startWorkers(t, master.URL(), 1)

	spec := func(name string) *JobSpec {
		return &JobSpec{Name: name, Type: typ, InputPath: input,
			NumMaps: 4, NumReducers: 2}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	outA, err := master.ExecJob(ctx, spec("wc-a"))
	if err != nil {
		t.Fatal(err)
	}
	readsA := master.table.m.inputReads.Value()
	if readsA != 4 {
		t.Fatalf("job A read %v splits, want 4", readsA)
	}

	// Kill the worker and wait for the liveness monitor to notice, so its
	// cache advertisement is retracted before the next job's leases are cut.
	stop()
	deadline := time.Now().Add(10 * time.Second)
	for master.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never swept")
		}
		time.Sleep(20 * time.Millisecond)
	}
	startWorkers(t, master.URL(), 1)

	outB, err := master.ExecJob(ctx, spec("wc-b"))
	if err != nil {
		t.Fatal(err)
	}
	if got := master.table.m.inputReads.Value(); got != readsA+4 {
		t.Fatalf("input reads = %v after cold restart, want %v (full re-read)",
			got, readsA+4)
	}
	outA.Duration, outB.Duration = 0, 0
	if !reflect.DeepEqual(outA, outB) {
		t.Fatalf("post-restart output diverges:\n a %v\n b %v", outA.KVs, outB.KVs)
	}
}
