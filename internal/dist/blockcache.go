package dist

import (
	"container/list"
	"os"
	"sort"
	"sync"
)

// The worker-side input block cache. The paper's central complaint about
// Hadoop Apriori is that every pass re-scans the transaction DB from disk;
// YAFIM's answer is to load it into an RDD once and iterate in memory
// (§IV-B). The real runtime had re-grown exactly the Hadoop defect — runMap
// called readSplit on every map task of every pass — so this cache is the
// runtime's RDD-persistence analogue: each split is parsed once, the decoded
// records are retained under a byte budget, and every later pass of the
// mining job is served from memory.
//
// Keys bind the split range to the file's identity at parse time (size +
// mtime): an input rewritten between jobs silently misses instead of serving
// stale records. The cache is deliberately ephemeral — it lives and dies
// with the worker process, is never journaled by the master, and a worker
// rebuilt after a crash simply re-reads on first touch — so it can never
// affect what is computed, only how often the disk is touched.

// blockKey identifies one decoded input block: the file's identity when it
// was parsed plus the split's byte range.
type blockKey struct {
	path    string
	size    int64
	mtimeNS int64
	offset  int64
	length  int64
}

// blockLineOverhead approximates the per-record bookkeeping cost (offset,
// string header, allocator slack) charged on top of the text bytes.
const blockLineOverhead = 32

// blockEntry is one resident decoded block.
type blockEntry struct {
	key   blockKey
	lines []fileLine
	bytes int64
	elem  *list.Element
}

// blockCache is an LRU cache of decoded input blocks under a byte budget.
// A nil *blockCache is valid and caches nothing — every get falls through
// to readSplit — mirroring the nil-Registry convention.
type blockCache struct {
	mu      sync.Mutex
	budget  int64
	entries map[blockKey]*blockEntry
	lru     *list.List // front = most recently used

	resident                       int64
	reads, hits, misses, evictions int64
	reportSeq                      int64
}

func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget:  budget,
		entries: map[blockKey]*blockEntry{},
		lru:     list.New(),
	}
}

// setBudget replaces the byte budget, evicting as needed. The master owns
// the knob (Tuning.InputCacheBytes) and delivers it at registration.
func (c *blockCache) setBudget(budget int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budget
	c.evictOverLocked()
}

// get returns the split's records, from memory when the block is resident
// and from disk otherwise. A block whose decoded cost alone exceeds the
// whole budget is served uncached rather than evicting everything else.
func (c *blockCache) get(split Split) ([]fileLine, error) {
	if c == nil {
		return readSplit(split)
	}
	fi, err := os.Stat(split.Path)
	if err != nil {
		return nil, err
	}
	key := blockKey{
		path: split.Path, size: fi.Size(), mtimeNS: fi.ModTime().UnixNano(),
		offset: split.Offset, length: split.Length,
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		lines := e.lines
		c.mu.Unlock()
		return lines, nil
	}
	c.mu.Unlock()

	lines, err := readSplit(split)
	if err != nil {
		return nil, err
	}
	cost := int64(0)
	for _, l := range lines {
		cost += int64(len(l.text)) + blockLineOverhead
	}
	c.mu.Lock()
	c.reads++
	c.misses++
	if _, ok := c.entries[key]; !ok && cost <= c.budget {
		e := &blockEntry{key: key, lines: lines, bytes: cost}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.resident += cost
		c.evictOverLocked()
	}
	c.mu.Unlock()
	return lines, nil
}

// evictOverLocked drops least-recently-used blocks until resident <= budget.
func (c *blockCache) evictOverLocked() {
	for c.resident > c.budget {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*blockEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.resident -= e.bytes
		c.evictions++
	}
}

// ads lists the resident blocks as wire Splits in deterministic order — the
// inventory advertised to the master on register/heartbeat/complete. Two
// generations of the same range (the file changed under us) collapse into
// one ad: the advertisement is a placement hint, never a correctness input.
func (c *blockCache) ads() []Split {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	set := make(map[Split]struct{}, len(c.entries))
	for k := range c.entries {
		set[Split{Path: k.path, Offset: k.offset, Length: k.length}] = struct{}{}
	}
	c.mu.Unlock()
	return sortedSplits(set)
}

// sortedSplits flattens a split set into deterministic wire order.
func sortedSplits(set map[Split]struct{}) []Split {
	out := make([]Split, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}

// snapshot returns the cumulative counters without advancing the report
// sequence (test and inspection entry point).
func (c *blockCache) snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

func (c *blockCache) statsLocked() CacheStats {
	return CacheStats{
		Seq:   c.reportSeq,
		Reads: c.reads, Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Bytes: c.resident,
	}
}

// report atomically takes the inventory and counters for one wire report,
// stamped with the next report sequence. Register, heartbeat and complete
// all go through here, so the master can totally order a worker's reports
// however the HTTP requests interleave.
func (c *blockCache) report() ([]Split, CacheStats) {
	if c == nil {
		return nil, CacheStats{}
	}
	c.mu.Lock()
	c.reportSeq++
	stats := c.statsLocked()
	set := make(map[Split]struct{}, len(c.entries))
	for k := range c.entries {
		set[Split{Path: k.path, Offset: k.offset, Length: k.length}] = struct{}{}
	}
	c.mu.Unlock()
	return sortedSplits(set), stats
}
