package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"yafim/internal/obs"
)

// Journal replay: rebuilding a master's lease table from its write-ahead
// journal after a crash. Replay applies the journal's records in order and
// stops at the first unparseable or unterminated line — a SIGKILL can leave
// a torn tail, and everything after the tear is treated as never having
// happened (which the protocol tolerates by construction: see journal.go).
//
// The recovered table deliberately distrusts the old world:
//
//   - Every replayed worker is marked dead. The master cannot know which
//     processes survived the outage, so each must re-register through the
//     rejoin path — re-advertising the map outputs it still serves so they
//     need not be recomputed (see register).
//   - The in-flight job, if any, is restored with its completed tasks,
//     attempt counts and map-output locations, but *suspended*: no lease is
//     granted until the resumed driver re-submits the job (restoring the
//     parts the journal never holds, like the distributed-cache blobs).
//     Tasks that were running when the master died return to idle; their
//     zombie completions are absorbed by the normal idempotency rules.
//   - Jobs with a job_done record become memoized results: the resumed
//     driver's deterministic re-run gets them back instantly instead of
//     re-executing finished passes.

// resumeState is the journal's reconstruction, ready to install into a
// fresh lease table.
type resumeState struct {
	workers  []*workerState
	strikes  map[int]int // worker id -> journaled strikes
	nextSeq  int
	finished map[string]*JobOutput // completed jobs by name
	job      *distJob              // in-flight job (suspended), or nil
	records  int                   // records applied, for the resume event
}

// replayWAL reads the journal at path and returns the reconstructed state
// plus the byte offset just past the last fully applied record. Callers
// resuming into the same file truncate it to that offset before appending,
// so a torn tail cannot corrupt the next incarnation's records.
func replayWAL(path string) (*resumeState, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: resume: %w", err)
	}
	defer f.Close()
	st := &resumeState{
		strikes:  map[int]int{},
		finished: map[string]*JobOutput{},
	}
	br := bufio.NewReaderSize(f, 256<<10)
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the final record was torn mid-write.
			// Everything before it already applied; stop here.
			return st, off, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("dist: resume: %w", err)
		}
		var rec walRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Rec == "" {
			// A torn write that still got its newline (interleaved crash
			// timing) parses as garbage; treat it and everything after as
			// lost, exactly like a missing suffix.
			return st, off, nil
		}
		if aerr := st.apply(&rec); aerr != nil {
			return nil, 0, fmt.Errorf("dist: resume: offset %d: %w", off, aerr)
		}
		off += int64(len(line))
		st.records++
	}
}

// apply folds one journal record into the state. Errors here mean the
// journal is internally inconsistent (not merely truncated) — a different
// master's file, or corruption mid-stream — and abort the resume.
func (st *resumeState) apply(rec *walRecord) error {
	switch rec.Rec {
	case recRegister:
		if rec.Worker != len(st.workers)+1 {
			return fmt.Errorf("register out of order: worker %d after %d registrations",
				rec.Worker, len(st.workers))
		}
		st.workers = append(st.workers, &workerState{
			id: rec.Worker, addr: rec.Addr, dead: true,
		})
	case recWorkerDead:
		if w := st.worker(rec.Worker); w != nil {
			w.dead = true
		}
	case recStrike:
		st.strikes[rec.Worker]++
	case recJobStart:
		if st.job != nil {
			return fmt.Errorf("job %q started while %q in flight", rec.Job, st.job.spec.Name)
		}
		j := &distJob{
			spec: &JobSpec{
				Name: rec.Job, Type: rec.Type, InputPath: rec.InputPath,
				NumMaps: len(rec.Splits), NumReducers: rec.NumReducers,
			},
			seq:       rec.Seq,
			suspended: true,
			doneCh:    make(chan struct{}),
		}
		for i, s := range rec.Splits {
			j.maps = append(j.maps, &trackedTask{phase: PhaseMap, index: i, split: s})
		}
		for i := 0; i < rec.NumReducers; i++ {
			j.reduces = append(j.reduces, &trackedTask{phase: PhaseReduce, index: i})
		}
		st.job = j
		if rec.Seq > st.nextSeq {
			st.nextSeq = rec.Seq
		}
	case recLease:
		task := st.task(rec)
		if task == nil {
			return nil // stale lease record for a finished job: ignore
		}
		// Attempts are a budget, and replay restores the budget spent; the
		// running state itself is NOT restored — the lease's worker is dead
		// to the new master, so the task returns to the idle pool.
		if rec.Attempt > task.attempts {
			task.attempts = rec.Attempt
		}
	case recMapDone:
		task := st.task(rec)
		if task == nil {
			return nil
		}
		if task.state != taskDone {
			task.state = taskDone
			st.job.mapsDone++
		}
		task.worker = rec.Worker
		task.addr = rec.Addr
		task.inputRecords = rec.InputRecords
	case recMapRebind:
		task := st.task(rec)
		if task == nil || task.state != taskDone {
			return nil
		}
		task.worker = rec.Worker
		task.addr = rec.Addr
	case recMapLost:
		task := st.task(rec)
		if task == nil || task.state != taskDone {
			return nil
		}
		task.state = taskIdle
		task.worker = 0
		task.addr = ""
		st.job.mapsDone--
	case recReduceDone:
		task := st.task(rec)
		if task == nil {
			return nil
		}
		if task.state != taskDone {
			task.state = taskDone
			st.job.reducesDone++
		}
		task.worker = rec.Worker
		task.output = rec.Output
	case recJobDone:
		st.finished[rec.Job] = &JobOutput{
			KVs:             rec.Output,
			MapInputRecords: rec.MapInputRecords,
			Duration:        durationFromNS(rec.DurationNS),
		}
		st.job = nil
	case recJobFail:
		// A failed (or driver-canceled) job holds nothing worth restoring;
		// the resumed driver re-submits it from scratch.
		st.job = nil
	default:
		return fmt.Errorf("unknown record kind %q", rec.Rec)
	}
	return nil
}

// worker resolves a replayed worker id, nil when out of range.
func (st *resumeState) worker(id int) *workerState {
	if id < 1 || id > len(st.workers) {
		return nil
	}
	return st.workers[id-1]
}

// task resolves a task record against the in-flight job, nil when the
// record is stale (no job, wrong seq, bad index).
func (st *resumeState) task(rec *walRecord) *trackedTask {
	if st.job == nil || rec.Seq != st.job.seq {
		return nil
	}
	idx := rec.Task - 1
	switch rec.Phase {
	case PhaseMap:
		if idx >= 0 && idx < len(st.job.maps) {
			return st.job.maps[idx]
		}
	case PhaseReduce:
		if idx >= 0 && idx < len(st.job.reduces) {
			return st.job.reduces[idx]
		}
	}
	return nil
}

// restore installs a replayed journal's reconstruction into the table. It
// runs once, before the master serves its first request. All replayed
// workers arrive dead (apply marks them so) and are additionally marked in
// the health bookkeeping; their journaled strikes are re-charged so a flaky
// worker's blacklist history survives the restart with its id.
func (t *leaseTable) restore(st *resumeState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workers = st.workers
	for _, w := range t.workers {
		t.health.MarkDead(w.id - 1)
	}
	for id, n := range st.strikes {
		for i := 0; i < n; i++ {
			t.health.RecordFailure(id-1, 0)
		}
	}
	t.nextSeq = st.nextSeq
	t.finished = st.finished
	t.job = st.job
	if t.job != nil && t.job.finished() {
		// Every reduce completed but the job_done record was lost with the
		// crash: the job is whole, just unclaimed. Close the done channel so
		// the adopting driver returns immediately with the replayed outputs.
		close(t.job.doneCh)
	}
	detail := fmt.Sprintf("%d records, %d workers, %d finished jobs",
		st.records, len(st.workers), len(st.finished))
	if t.job != nil {
		detail += fmt.Sprintf(", job %s suspended (%d/%d maps, %d/%d reduces done)",
			t.job.spec.Name, t.job.mapsDone, len(t.job.maps),
			t.job.reducesDone, len(t.job.reduces))
	}
	t.log.Append(obs.LiveEvent{Event: "master_resume", Detail: detail})
}

// checkInvariants verifies the structural invariants the lease table must
// hold after any replay (the fuzz target drives this over journals torn at
// arbitrary byte offsets). It is also safe on a live table under the lock.
func (t *leaseTable) checkInvariants() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, w := range t.workers {
		if w.id != i+1 {
			return fmt.Errorf("worker slot %d holds id %d", i, w.id)
		}
	}
	j := t.job
	if j == nil {
		return nil
	}
	if j.seq > t.nextSeq {
		return fmt.Errorf("job seq %d exceeds nextSeq %d", j.seq, t.nextSeq)
	}
	mapsDone, reducesDone := 0, 0
	for _, task := range append(append([]*trackedTask{}, j.maps...), j.reduces...) {
		if task.attempts > t.cfg.MaxTaskAttempts {
			return fmt.Errorf("%s task %d holds %d attempts, budget %d",
				task.phase, task.index, task.attempts, t.cfg.MaxTaskAttempts)
		}
		switch task.state {
		case taskDone:
			if task.phase == PhaseMap {
				mapsDone++
				if task.addr == "" {
					return fmt.Errorf("done map %d has no serving address", task.index)
				}
			} else {
				reducesDone++
			}
			if task.worker < 1 || task.worker > len(t.workers) {
				return fmt.Errorf("done %s task %d attributed to unknown worker %d",
					task.phase, task.index, task.worker)
			}
		case taskRunning:
			if j.suspended {
				return fmt.Errorf("%s task %d running in a suspended job", task.phase, task.index)
			}
			if w := t.workerLocked(task.worker); w == nil || w.dead {
				return fmt.Errorf("%s task %d leased to dead or unknown worker %d",
					task.phase, task.index, task.worker)
			}
		case taskIdle:
			if task.worker != 0 {
				return fmt.Errorf("idle %s task %d still owned by worker %d",
					task.phase, task.index, task.worker)
			}
		}
	}
	if mapsDone != j.mapsDone {
		return fmt.Errorf("mapsDone %d, but %d maps are done", j.mapsDone, mapsDone)
	}
	if reducesDone != j.reducesDone {
		return fmt.Errorf("reducesDone %d, but %d reduces are done", j.reducesDone, reducesDone)
	}
	doneClosed := false
	select {
	case <-j.doneCh:
		doneClosed = true
	default:
	}
	if finished := j.failure != nil || j.reducesDone == len(j.reduces); finished != doneClosed {
		return fmt.Errorf("job finished=%v but doneCh closed=%v", finished, doneClosed)
	}
	return nil
}
