package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeInput writes content to a temp file and returns its path.
func writeInput(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "input.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSplitFileEmptyInputRejected(t *testing.T) {
	path := writeInput(t, "")
	if _, err := splitFile(path, 2); err == nil {
		t.Fatal("splitFile accepted an empty file")
	}
}

func TestSplitFileMissingInputRejected(t *testing.T) {
	if _, err := splitFile(filepath.Join(t.TempDir(), "nope"), 2); err == nil {
		t.Fatal("splitFile accepted a missing file")
	}
}

// TestSplitReadExactlyOnce is the core line-boundary contract: for any input
// shape and any split count — including more splits than lines or bytes —
// the splits cover the file exactly, and reading them all back yields every
// record exactly once, in order. This is what keeps the distributed record
// count (and the absolute min-support threshold derived from it)
// byte-identical to the sim oracle.
func TestSplitReadExactlyOnce(t *testing.T) {
	cases := []struct {
		name    string
		content string
		want    []string
	}{
		{"single line terminated", "only\n", []string{"only"}},
		{"single line unterminated", "only", []string{"only"}},
		{"no trailing newline", "a\nbb\nccc", []string{"a", "bb", "ccc"}},
		{"blank lines", "\n\nx\n\n", []string{"", "", "x", ""}},
		{"record spans split boundary",
			"short\n" + strings.Repeat("w", 64) + "\ntail\n",
			[]string{"short", strings.Repeat("w", 64), "tail"}},
		{"one long line dwarfs every split",
			strings.Repeat("z", 256) + "\n",
			[]string{strings.Repeat("z", 256)}},
		{"uniform records", strings.Repeat("item\n", 40),
			append([]string(nil), splitRepeat("item", 40)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeInput(t, tc.content)
			for _, minSplits := range []int{1, 2, 3, 5, 8, 1000} {
				splits, err := splitFile(path, minSplits)
				if err != nil {
					t.Fatalf("minSplits=%d: %v", minSplits, err)
				}
				// Splits tile the file: contiguous, non-empty, full coverage.
				var off int64
				for _, s := range splits {
					if s.Offset != off || s.Length <= 0 {
						t.Fatalf("minSplits=%d: split %+v breaks tiling at offset %d",
							minSplits, s, off)
					}
					off += s.Length
				}
				if off != int64(len(tc.content)) {
					t.Fatalf("minSplits=%d: splits cover %d of %d bytes",
						minSplits, off, len(tc.content))
				}
				// Reading every split back yields each record exactly once.
				var got []string
				for _, s := range splits {
					lines, err := readSplit(s)
					if err != nil {
						t.Fatalf("minSplits=%d: readSplit(%+v): %v", minSplits, s, err)
					}
					for _, l := range lines {
						got = append(got, l.text)
					}
				}
				if len(got) != len(tc.want) {
					t.Fatalf("minSplits=%d: %d records, want %d: %q",
						minSplits, len(got), len(tc.want), got)
				}
				for i := range got {
					if got[i] != tc.want[i] {
						t.Fatalf("minSplits=%d: record %d = %q, want %q",
							minSplits, i, got[i], tc.want[i])
					}
				}
			}
		})
	}
}

func splitRepeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func TestReadSplitInsideLongLineYieldsNothing(t *testing.T) {
	// A split lying entirely inside a line started in an earlier split
	// contributes no records: the line belongs to the split holding its
	// first byte.
	content := strings.Repeat("x", 100) + "\nend\n"
	path := writeInput(t, content)
	lines, err := readSplit(Split{Path: path, Offset: 10, Length: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 0 {
		t.Fatalf("mid-line split produced records: %v", lines)
	}
}

func TestReadSplitPastEOFYieldsNothing(t *testing.T) {
	path := writeInput(t, "a\nb\n")
	lines, err := readSplit(Split{Path: path, Offset: 100, Length: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 0 {
		t.Fatalf("past-EOF split produced records: %v", lines)
	}
}
