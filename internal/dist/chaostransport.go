package dist

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"yafim/internal/chaos"
)

// ChaosTransport is a seeded network-fault http.RoundTripper: it drops,
// delays and duplicates requests, loses responses after delivery, and
// partitions specific links, all driven by a TransportPlan the way the sim
// engines are driven by a chaos.Plan. Wrapped around the worker's master
// client and map-output fetch client, it exercises every protocol edge —
// stale-seq drops, zombie completions, double-delivered completions, fetch
// budgets surfacing as FetchFailed — with real fault schedules instead of
// hand-written unit cases.
//
// Determinism is per decision, not per schedule: each fault is a pure
// chaos.Unit hash of (seed, fault kind, request path, per-link call number),
// so a given call sees the same verdict every run, but concurrent goroutines
// interleave calls differently and the observed fault *sequence* varies.
// The invariant the chaos tests assert is therefore the protocol's, not the
// transport's: whatever the schedule, the mined itemsets are byte-identical
// to the fault-free oracle, because every endpoint tolerates duplicated,
// delayed and lost delivery (see DESIGN §9 for the per-endpoint argument).
//
// Reordering needs no dedicated knob: delays are per-request, so two
// in-flight requests on one link routinely complete out of order, and a
// duplicate always lands after its original.
type ChaosTransport struct {
	plan  TransportPlan
	base  http.RoundTripper
	start time.Time

	mu    sync.Mutex
	calls map[string]int64 // per-(host, path) call counter feeding the hash
}

// TransportPlan is a complete network-fault schedule for one ChaosTransport.
// The zero value injects nothing.
type TransportPlan struct {
	// Seed drives every decision, like chaos.Plan.Seed.
	Seed int64
	// DropRequestProb is the probability a request vanishes before reaching
	// the server — the server never sees it (a lost packet on the way out).
	DropRequestProb float64
	// DropResponseProb is the probability a request is delivered and
	// processed but its response is lost — the dangerous half of
	// at-least-once delivery: the caller retries an operation the server
	// already performed.
	DropResponseProb float64
	// DuplicateProb is the probability a request is delivered twice (the
	// duplicate first, its response discarded), exercising idempotency even
	// when the caller never retries.
	DuplicateProb float64
	// DelayProb and MaxDelay inject latency: with DelayProb, a request is
	// held for a hash-chosen duration in (0, MaxDelay] before delivery.
	DelayProb float64
	MaxDelay  time.Duration
	// Partitions cuts specific links for real-time windows.
	Partitions []LinkPartition
}

// LinkPartition makes every request whose target host:port or path contains
// Target fail during [From, Until) — measured in real time since the
// transport was created, the transport-layer analogue of chaos.NodeCrash's
// virtual crash time. A zero Until means "forever" (a partition that never
// heals; the fetch budget must surface it as FetchFailed).
type LinkPartition struct {
	Target string        `json:"target"`
	From   time.Duration `json:"from"`
	Until  time.Duration `json:"until"`
}

// Validate reports a descriptive error if the plan is unusable.
func (p *TransportPlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"DropRequestProb", p.DropRequestProb},
		{"DropResponseProb", p.DropResponseProb},
		{"DuplicateProb", p.DuplicateProb},
		{"DelayProb", p.DelayProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("dist: transport plan: %s %g out of [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("dist: transport plan: MaxDelay %v negative", p.MaxDelay)
	}
	if p.DelayProb > 0 && p.MaxDelay == 0 {
		return fmt.Errorf("dist: transport plan: DelayProb %g with zero MaxDelay", p.DelayProb)
	}
	for _, lp := range p.Partitions {
		if lp.Target == "" {
			return fmt.Errorf("dist: transport plan: partition with empty target")
		}
		if lp.Until != 0 && lp.Until <= lp.From {
			return fmt.Errorf("dist: transport plan: partition of %q heals at %v before it starts at %v",
				lp.Target, lp.Until, lp.From)
		}
	}
	return nil
}

// DefaultTransportPlan returns a moderate all-faults plan for smoke runs:
// 5% dropped requests, 3% lost responses, 5% duplicates and 10% delays up
// to 50ms, on every link. It schedules no partition — partitions need
// windows chosen against the run's expected duration.
func DefaultTransportPlan(seed int64) TransportPlan {
	return TransportPlan{
		Seed:             seed,
		DropRequestProb:  0.05,
		DropResponseProb: 0.03,
		DuplicateProb:    0.05,
		DelayProb:        0.10,
		MaxDelay:         50 * time.Millisecond,
	}
}

// FaultError is the error a ChaosTransport surfaces for an injected network
// fault; tests use the type to tell injected faults from genuine ones.
type FaultError struct {
	Kind   string // "partition", "drop_request", "drop_response"
	Target string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("dist: chaos transport: %s on %s", e.Kind, e.Target)
}

// NewChaosTransport wraps base (nil means http.DefaultTransport) with the
// plan's fault schedule.
func NewChaosTransport(plan TransportPlan, base http.RoundTripper) (*ChaosTransport, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &ChaosTransport{
		plan:  plan,
		base:  base,
		start: time.Now(),
		calls: map[string]int64{},
	}, nil
}

// RoundTrip implements http.RoundTripper with the plan's faults.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host + req.URL.Path
	c.mu.Lock()
	n := c.calls[target]
	c.calls[target] = n + 1
	c.mu.Unlock()
	p := &c.plan
	unit := func(kind string) float64 { return chaos.Unit(p.Seed, kind+":"+target, n) }

	if cut := c.partitioned(target); cut != "" {
		return nil, &FaultError{Kind: "partition", Target: cut}
	}
	if p.DelayProb > 0 && unit("delay") < p.DelayProb {
		d := time.Duration(chaos.Unit(p.Seed, "delaylen:"+target, n) * float64(p.MaxDelay))
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	if p.DropRequestProb > 0 && unit("dropreq") < p.DropRequestProb {
		return nil, &FaultError{Kind: "drop_request", Target: target}
	}
	if p.DuplicateProb > 0 && unit("dup") < p.DuplicateProb {
		// Deliver a full copy first and discard its response: the server
		// processes the operation twice even though the caller sent it once.
		// Bodyless requests clone trivially; bodied ones need GetBody (set
		// for the byte-buffer bodies every client in this package sends).
		if dup := cloneRequest(req); dup != nil {
			if resp, err := c.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()              //nolint:errcheck
			}
		}
	}
	resp, err := c.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.DropResponseProb > 0 && unit("dropresp") < p.DropResponseProb {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		return nil, &FaultError{Kind: "drop_response", Target: target}
	}
	return resp, nil
}

// partitioned reports the target of the partition currently cutting this
// link, or "" when the link is up.
func (c *ChaosTransport) partitioned(target string) string {
	if len(c.plan.Partitions) == 0 {
		return ""
	}
	now := time.Since(c.start)
	for _, lp := range c.plan.Partitions {
		if !strings.Contains(target, lp.Target) {
			continue
		}
		if now >= lp.From && (lp.Until == 0 || now < lp.Until) {
			return lp.Target
		}
	}
	return ""
}

// cloneRequest copies a request for duplicate delivery, nil when the body
// cannot be replayed.
func cloneRequest(req *http.Request) *http.Request {
	dup := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return dup
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	dup.Body = body
	return dup
}
