package dist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// walTable returns a lease table journaling to a fresh file, plus the path.
func walTable(t testing.TB) (*leaseTable, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "master.wal")
	tb := newLeaseTable(testTuning(), nil, nil)
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	tb.wal = w
	t.Cleanup(func() { w.close() }) //nolint:errcheck
	return tb, path
}

// replayInto replays the journal at path into a fresh table, failing the
// test on replay errors or invariant violations.
func replayInto(t testing.TB, path string) *leaseTable {
	t.Helper()
	st, _, err := replayWAL(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	tb := newLeaseTable(testTuning(), nil, nil)
	tb.restore(st)
	if err := tb.checkInvariants(); err != nil {
		t.Fatalf("invariants after replay: %v", err)
	}
	return tb
}

func TestTuningValidate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tun   Tuning
		field string // "" means valid
	}{
		{"zero is valid", Tuning{}, ""},
		{"defaults are valid", DefaultTuning(), ""},
		{"negative heartbeat", Tuning{HeartbeatInterval: -time.Second}, "Tuning.HeartbeatInterval"},
		{"negative timeout", Tuning{HeartbeatTimeout: -1}, "Tuning.HeartbeatTimeout"},
		{"negative lease deadline", Tuning{LeaseDeadline: -time.Minute}, "Tuning.LeaseDeadline"},
		{"negative blacklist base", Tuning{BlacklistBase: -1}, "Tuning.BlacklistBase"},
		{"negative workers", Tuning{MaxWorkers: -1}, "Tuning.MaxWorkers"},
		{"negative attempts", Tuning{MaxTaskAttempts: -4}, "Tuning.MaxTaskAttempts"},
		{"negative blacklist budget", Tuning{BlacklistAfter: -2}, "Tuning.BlacklistAfter"},
		{"timeout under interval", Tuning{HeartbeatInterval: time.Second, HeartbeatTimeout: time.Millisecond}, "Tuning.HeartbeatTimeout"},
		{"timeout only is valid", Tuning{HeartbeatTimeout: time.Millisecond}, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tun.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ie *InputError
			if !errors.As(err, &ie) {
				t.Fatalf("Validate() = %v, want *InputError", err)
			}
			if ie.Field != tc.field {
				t.Fatalf("InputError.Field = %q, want %q", ie.Field, tc.field)
			}
		})
	}
}

func TestStartMasterRejectsBadTuning(t *testing.T) {
	_, err := StartMaster(MasterOptions{Tuning: Tuning{HeartbeatInterval: -time.Second}})
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("StartMaster = %v, want *InputError", err)
	}
	if _, err := StartMaster(MasterOptions{Resume: true}); err == nil {
		t.Fatal("StartMaster(Resume without JournalPath) succeeded")
	}
}

// TestJournalReplayMidJob crashes (closes) the journal with a job mid-flight
// and checks the replayed table: completed work held, running work re-queued,
// the job suspended until a driver re-submits it.
func TestJournalReplayMidJob(t *testing.T) {
	tb, path := walTable(t)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)
	testJob(t, tb, 2, 2)

	m1, _ := tb.lease(w1, 0)
	m2, _ := tb.lease(w2, 0)
	completeOK(tb, w1, m1, 0)
	completeOK(tb, w2, m2, 0)
	r1, _ := tb.lease(w1, 0)
	completeOK(tb, w1, r1, 0)
	r2, _ := tb.lease(w2, 0) // leased, never completed: the crash window
	if r2 == nil || r2.Phase != PhaseReduce {
		t.Fatalf("lease = %+v, want reduce", r2)
	}
	tb.wal.close() //nolint:errcheck

	rt := replayInto(t, path)
	if len(rt.workers) != 2 || !rt.workers[0].dead || !rt.workers[1].dead {
		t.Fatalf("replayed workers = %+v, want 2, all dead", rt.workers)
	}
	j := rt.job
	if j == nil || !j.suspended {
		t.Fatal("in-flight job not restored as suspended")
	}
	if j.mapsDone != 2 || j.reducesDone != 1 {
		t.Fatalf("restored progress = %d maps, %d reduces; want 2, 1", j.mapsDone, j.reducesDone)
	}
	run := j.reduces[r2.Index]
	if run.state != taskIdle || run.attempts != 1 {
		t.Fatalf("crashed-lease reduce = state %v attempts %d; want idle with 1 attempt",
			run.state, run.attempts)
	}
	if j.maps[m1.Index].addr != "a:1" || j.maps[m2.Index].addr != "b:2" {
		t.Fatalf("map addrs not restored: %q, %q", j.maps[m1.Index].addr, j.maps[m2.Index].addr)
	}

	// Suspended: no leases, even for a freshly registered worker.
	w3, err := rt.register("c:3", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if task, _ := rt.lease(w3, 0); task != nil {
		t.Fatalf("suspended job leaked a lease: %+v", task)
	}

	// Adoption: the same spec re-submitted resumes the job in place.
	splits := make([]Split, 2)
	for i := range splits {
		splits[i] = Split{Path: "/in", Offset: int64(i * 100), Length: 100}
	}
	j2, err := rt.startJob(&JobSpec{Name: "j", Type: "t", NumMaps: 2, NumReducers: 2}, splits)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j || j2.suspended {
		t.Fatal("re-submitted job was not adopted in place")
	}
	if j2.seq != j.seq {
		t.Fatalf("adopted job changed seq: %d -> %d", j.seq, j2.seq)
	}

	// The one idle reduce is all that remains; a worker drains it. Map
	// outputs stay bound to dead workers' addrs — serving them is the
	// re-registration rebind's job, FetchFailed the fallback.
	task, _ := rt.lease(w3, 0)
	if task == nil || task.Phase != PhaseReduce || task.Index != r2.Index {
		t.Fatalf("post-adoption lease = %+v, want reduce %d", task, r2.Index)
	}
	if task.MapAddrs[0] != "a:1" || task.MapAddrs[1] != "b:2" {
		t.Fatalf("adopted reduce MapAddrs = %v", task.MapAddrs)
	}
	completeOK(rt, w3, task, 0)
	out, err := rt.result()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.KVs) != 2 || out.MapInputRecords != 2 {
		t.Fatalf("resumed result = %+v", out)
	}
}

// TestLeaseRegrantAfterLostResponse covers the at-least-once edge on the
// grant itself: the master leased a task but the response never reached the
// worker. The worker's next lease request (its loop is serial, so asking
// proves it is idle) must get the stranded task back immediately — same
// attempt, no budget burned — rather than waiting out the lease deadline.
func TestLeaseRegrantAfterLostResponse(t *testing.T) {
	tb, path := walTable(t)
	w := register(t, tb, "a:1", 0)
	testJob(t, tb, 2, 1)

	first, _ := tb.lease(w, 0) // granted, but the response is "lost"
	if first == nil {
		t.Fatal("no initial grant")
	}
	again, rejoin := tb.lease(w, 10*time.Millisecond)
	if rejoin || again == nil {
		t.Fatalf("re-request = %+v rejoin=%v, want the stranded task back", again, rejoin)
	}
	if again.Phase != first.Phase || again.Index != first.Index || again.Attempt != first.Attempt {
		t.Fatalf("re-grant = %s %d attempt %d, want %s %d attempt %d",
			again.Phase, again.Index, again.Attempt, first.Phase, first.Index, first.Attempt)
	}
	// The re-grant refreshed the deadline: a sweep just past the original
	// expiry must not expire it.
	tb.heartbeat(w, time.Second+5*time.Millisecond)
	tb.sweep(time.Second + 5*time.Millisecond)
	tb.mu.Lock()
	state := tb.job.maps[first.Index].state
	attempts := tb.job.maps[first.Index].attempts
	tb.mu.Unlock()
	if state != taskRunning || attempts != 1 {
		t.Fatalf("after sweep: state %v attempts %d, want still running with 1 attempt", state, attempts)
	}
	completeOK(tb, w, again, 0)
	tb.wal.close() //nolint:errcheck

	// Replay: the duplicate lease record restores the same single attempt.
	rt := replayInto(t, path)
	if got := rt.job.maps[first.Index].attempts; got != 1 {
		t.Fatalf("replayed attempts = %d, want 1 (re-grant burns no budget)", got)
	}
}

func TestJournalResumeMismatch(t *testing.T) {
	tb, path := walTable(t)
	register(t, tb, "a:1", 0)
	testJob(t, tb, 2, 2)
	tb.wal.close() //nolint:errcheck

	rt := replayInto(t, path)
	_, err := rt.startJob(&JobSpec{Name: "other", Type: "t", NumMaps: 2, NumReducers: 5},
		[]Split{{Path: "/in", Length: 100}, {Path: "/in", Offset: 100, Length: 100}})
	if err == nil || !strings.Contains(err.Error(), "resume mismatch") {
		t.Fatalf("mismatched re-submission: err = %v, want resume mismatch", err)
	}
}

// TestJournalMemoizedJob drives a job to completion, journals its result,
// and checks a replayed master hands the memo back without re-execution.
func TestJournalMemoizedJob(t *testing.T) {
	tb, path := walTable(t)
	w := register(t, tb, "a:1", 0)
	testJob(t, tb, 2, 2)
	drain(t, tb, w, 0)
	out, err := tb.result()
	if err != nil {
		t.Fatal(err)
	}
	out.Duration = 7 * time.Second
	tb.memoizeDone("j", out)
	tb.wal.close() //nolint:errcheck

	rt := replayInto(t, path)
	if rt.job != nil {
		t.Fatalf("finished job resurrected as in-flight: %+v", rt.job)
	}
	memo, ok := rt.finishedJob("j")
	if !ok {
		t.Fatal("finished job not memoized after replay")
	}
	if len(memo.KVs) != len(out.KVs) || memo.MapInputRecords != out.MapInputRecords {
		t.Fatalf("memo = %+v, want %+v", memo, out)
	}
	if memo.Duration != 7*time.Second {
		t.Fatalf("memo duration = %v, want 7s", memo.Duration)
	}
	// Within one lifetime, memoization never short-circuits: only replay
	// populates the memo table.
	if _, ok := tb.finishedJob("j"); ok {
		t.Fatal("live table memoized its own job")
	}
}

// TestJournalAllReducesDoneButJobDoneLost exercises the crash window between
// the last reduce completion and the job_done record: the replayed job is
// finished, its done channel closed at restore, and a matching re-submission
// returns its output immediately.
func TestJournalAllReducesDoneButJobDoneLost(t *testing.T) {
	tb, path := walTable(t)
	w := register(t, tb, "a:1", 0)
	testJob(t, tb, 2, 2)
	drain(t, tb, w, 0)
	tb.wal.close() //nolint:errcheck // no memoizeDone: the crash beat the driver to it

	rt := replayInto(t, path)
	j := rt.job
	if j == nil || !j.finished() {
		t.Fatal("fully reduced job not restored as finished")
	}
	select {
	case <-j.doneCh:
	default:
		t.Fatal("restored finished job's done channel not closed")
	}
	splits := []Split{{Path: "/in", Length: 100}, {Path: "/in", Offset: 100, Length: 100}}
	j2, err := rt.startJob(&JobSpec{Name: "j", Type: "t", NumMaps: 2, NumReducers: 2}, splits)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j {
		t.Fatal("finished suspended job not adopted")
	}
	out, err := rt.result()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.KVs) != 2 {
		t.Fatalf("result KVs = %v", out.KVs)
	}
}

// TestJournalRebindOnRegister replays a mid-job crash and re-registers a
// worker at its old address with output advertisements: the done map must
// rebind to the fresh id instead of being recomputed.
func TestJournalRebindOnRegister(t *testing.T) {
	tb, path := walTable(t)
	w1 := register(t, tb, "a:1", 0)
	testJob(t, tb, 2, 1)
	m1, _ := tb.lease(w1, 0)
	completeOK(tb, w1, m1, 0)
	tb.wal.close() //nolint:errcheck

	rt := replayInto(t, path)
	seq := rt.job.seq

	// Same address, correct ad: rebinds.
	id, err := rt.register("a:1", []OutputAd{{Seq: seq, Map: m1.Index}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.job.maps[m1.Index].worker; got != id {
		t.Fatalf("done map bound to worker %d, want rebound to %d", got, id)
	}
	if rt.job.mapsDone != 1 {
		t.Fatalf("mapsDone = %d after rebind, want 1", rt.job.mapsDone)
	}

	// Wrong address: a different process cannot claim the output.
	before := rt.job.maps[m1.Index].worker
	if _, err := rt.register("evil:9", []OutputAd{{Seq: seq, Map: m1.Index}}, 0); err != nil {
		t.Fatal(err)
	}
	if rt.job.maps[m1.Index].worker != before {
		t.Fatal("output stolen by a worker at a different address")
	}
}

// TestJournalTornTail appends garbage (with and without a newline) to a
// valid journal and checks replay stops cleanly at the tear, reporting the
// offset of the last whole record.
func TestJournalTornTail(t *testing.T) {
	tb, path := walTable(t)
	register(t, tb, "a:1", 0)
	testJob(t, tb, 1, 1)
	tb.wal.close() //nolint:errcheck

	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tail := range []string{
		`{"rec":"map_do`,          // torn mid-record, no newline
		"\x00\x17garbage\n",       // torn with a newline: parses as garbage
		`{"notarec":true}` + "\n", // valid JSON, no rec field
		`{"rec":"map_done","seq"`, // torn JSON
	} {
		if err := os.WriteFile(path, append(append([]byte{}, whole...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		st, off, err := replayWAL(path)
		if err != nil {
			t.Fatalf("tail %q: replay error %v", tail, err)
		}
		if off != int64(len(whole)) {
			t.Fatalf("tail %q: valid offset = %d, want %d", tail, off, len(whole))
		}
		if st.job == nil || len(st.workers) != 1 {
			t.Fatalf("tail %q: replayed state lost records: %+v", tail, st)
		}
	}
}

// buildFuzzJournal drives a lease table through a seed-determined scenario —
// registrations, leases, completions, failures, heartbeat-miss deaths — and
// returns the journal bytes. Everything is virtual-time and deterministic in
// seed, so the fuzzer explores scenarios by mutating one integer.
func buildFuzzJournal(t *testing.T, seed uint64) []byte {
	t.Helper()
	tb, path := walTable(t)
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	now := time.Duration(0)
	var ids []int
	for i := 0; i < 2+int(next(3)); i++ {
		ids = append(ids, register(t, tb, "w:"+string(rune('a'+i)), now))
	}
	maps, reduces := 1+int(next(4)), 1+int(next(3))
	testJob(t, tb, maps, reduces)
	leased := map[int]*TaskSpec{}
	for step := 0; step < 60; step++ {
		id := ids[next(uint64(len(ids)))]
		switch next(5) {
		case 0, 1: // lease
			if task, _ := tb.lease(id, now); task != nil {
				leased[id] = task
			}
		case 2: // complete ok
			if task := leased[id]; task != nil {
				completeOK(tb, id, task, now)
				delete(leased, id)
			}
		case 3: // complete failed
			if task := leased[id]; task != nil {
				tb.complete(&CompleteRequest{WorkerID: id, Seq: task.Seq,
					Phase: task.Phase, Index: task.Index, Attempt: task.Attempt,
					OK: false, Error: "fuzz"}, now)
				delete(leased, id)
			}
		case 4: // time passes; sometimes a worker dies of heartbeat miss
			now += 30 * time.Millisecond
			for _, beat := range ids {
				if beat != id || next(4) != 0 {
					tb.heartbeat(beat, now)
				}
			}
			tb.sweep(now)
		}
		tb.mu.Lock()
		done := tb.job.finished()
		tb.mu.Unlock()
		if done {
			break
		}
	}
	tb.wal.close() //nolint:errcheck
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzMasterRecovery is the satellite acceptance fuzz: any prefix of a valid
// journal — a crash can tear it at an arbitrary byte — must replay without
// error into a table that passes the structural invariant checker.
func FuzzMasterRecovery(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(2), uint64(37))
	f.Add(uint64(3), uint64(1<<20))
	f.Add(uint64(42), uint64(511))
	f.Fuzz(func(t *testing.T, seed, cut uint64) {
		data := buildFuzzJournal(t, seed)
		cut %= uint64(len(data) + 1)
		path := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, off, err := replayWAL(path)
		if err != nil {
			t.Fatalf("seed %d cut %d: replay error: %v", seed, cut, err)
		}
		if off > int64(cut) {
			t.Fatalf("seed %d cut %d: valid offset %d past end of file", seed, cut, off)
		}
		tb := newLeaseTable(testTuning(), nil, nil)
		tb.restore(st)
		if err := tb.checkInvariants(); err != nil {
			t.Fatalf("seed %d cut %d: invariants violated: %v", seed, cut, err)
		}
		// The torn journal must also be resumable end-to-end: a master
		// started on it truncates the tear and serves.
		m, err := StartMaster(MasterOptions{Tuning: testTuning(), JournalPath: path, Resume: true})
		if err != nil {
			t.Fatalf("seed %d cut %d: StartMaster: %v", seed, cut, err)
		}
		m.Abort()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != off {
			t.Fatalf("seed %d cut %d: tear not truncated: size %d, want %d", seed, cut, fi.Size(), off)
		}
	})
}
