package dist

import (
	"context"
	"fmt"
	"os"
	"sort"

	"yafim/internal/cluster"
	"yafim/internal/dfs"
	"yafim/internal/mapreduce"
)

// Local is the deterministic in-memory Executor: it stages each job's real
// input file and cache blobs into a fresh simulated DFS and runs the job
// through the existing virtual-time MapReduce engine. It instantiates tasks
// through the same job-type registry as the worker runtime, so the exact
// closures a real worker process would run are what the oracle runs — any
// divergence between a distributed run and a Local run is a runtime bug,
// not an algorithm difference.
type Local struct {
	// Nodes is the simulated cluster size (defaults to 4).
	Nodes int
	// Config is the simulated cluster configuration (defaults to
	// cluster.Defaults()).
	Config *cluster.Config
}

// ExecJob runs one job on the sim engine.
func (l *Local) ExecJob(ctx context.Context, job *JobSpec) (*JobOutput, error) {
	jt, err := lookupJobType(job.Type)
	if err != nil {
		return nil, err
	}
	// Validate the parameter blob once up front so the per-task factories
	// below cannot fail.
	if _, err := jt.NewMapper(job.Params); err != nil {
		return nil, fmt.Errorf("dist: %s: mapper params: %w", job.Name, err)
	}
	if _, err := jt.NewReducer(job.Params); err != nil {
		return nil, fmt.Errorf("dist: %s: reducer params: %w", job.Name, err)
	}

	nodes := l.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	cfg := cluster.Local()
	if l.Config != nil {
		cfg = *l.Config
	}
	fs := dfs.New(nodes)
	data, err := os.ReadFile(job.InputPath)
	if err != nil {
		return nil, fmt.Errorf("dist: %s: input: %w", job.Name, err)
	}
	const inputPath = "/dist/input"
	if err := fs.WriteFile(inputPath, data, nil); err != nil {
		return nil, err
	}
	cacheNames := make([]string, 0, len(job.Cache))
	for name := range job.Cache {
		cacheNames = append(cacheNames, name)
	}
	sort.Strings(cacheNames)
	for _, name := range cacheNames {
		if err := fs.WriteFile(name, job.Cache[name], nil); err != nil {
			return nil, fmt.Errorf("dist: %s: cache %s: %w", job.Name, name, err)
		}
	}
	runner, err := mapreduce.NewRunner(fs, cfg)
	if err != nil {
		return nil, err
	}

	mj := mapreduce.Job{
		Name:      job.Name,
		Input:     []string{inputPath},
		OutputDir: "/dist/out",
		NewMapper: func() mapreduce.Mapper {
			m, _ := jt.NewMapper(job.Params)
			return m
		},
		NewReducer: func() mapreduce.Reducer {
			r, _ := jt.NewReducer(job.Params)
			return r
		},
		NumReducers: job.NumReducers,
		MapTasks:    job.NumMaps,
		CacheFiles:  cacheNames,
	}
	if jt.NewCombiner != nil {
		if _, err := jt.NewCombiner(job.Params); err != nil {
			return nil, fmt.Errorf("dist: %s: combiner params: %w", job.Name, err)
		}
		mj.NewCombiner = func() mapreduce.Reducer {
			c, _ := jt.NewCombiner(job.Params)
			return c
		}
	}
	report, counters, err := runner.RunContext(ctx, mj)
	if err != nil {
		return nil, err
	}
	kvs, err := mapreduce.ReadOutput(fs, mj.OutputDir, nil)
	if err != nil {
		return nil, err
	}
	return &JobOutput{
		KVs:             kvs,
		MapInputRecords: counters.MapInputRecords,
		Duration:        report.Duration(),
	}, nil
}
