package dist

import (
	"testing"
	"time"

	"yafim/internal/obs"
)

// testSplit returns the split testJob assigns to map i.
func testSplit(i int) Split {
	return Split{Path: "/in", Offset: int64(i * 100), Length: 100}
}

func TestLeasePrefersWorkerCachingTheSplit(t *testing.T) {
	reg := obs.NewRegistry()
	tb := newLeaseTable(testTuning(), nil, reg)
	testJob(t, tb, 2, 1)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)
	_ = w1

	// w2 advertises map 1's split as cached; asking for work it must be
	// handed map 1 even though map 0 is idle and listed first.
	tb.advertiseCache(w2, []Split{testSplit(1)}, CacheStats{}, false)
	task, _ := tb.lease(w2, 0)
	if task == nil || task.Phase != PhaseMap || task.Index != 1 {
		t.Fatalf("lease = %+v, want map 1 (cached on w2)", task)
	}
	if got := tb.m.localGrants.Value(); got != 1 {
		t.Fatalf("local grants = %v, want 1", got)
	}
}

func TestLeaseDefersCachedSplitThenFallsBack(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, obs.NewRegistry())
	testJob(t, tb, 1, 1)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)

	// w1 caches the only split. w2 asking must be deferred — the grace
	// window gives w1 (idle workers poll at heartbeat cadence) the chance
	// to claim its own block.
	tb.advertiseCache(w1, []Split{testSplit(0)}, CacheStats{}, false)
	if task, _ := tb.lease(w2, 0); task != nil {
		t.Fatalf("deferred split granted immediately: %+v", task)
	}
	// Still inside the window: still deferred.
	tb.heartbeat(w1, cfg.HeartbeatTimeout/2)
	tb.heartbeat(w2, cfg.HeartbeatTimeout/2)
	if task, _ := tb.lease(w2, cfg.HeartbeatTimeout-1); task != nil {
		t.Fatalf("granted inside grace window: %+v", task)
	}
	// Past the window the preference yields: anyone gets the task — the
	// locality hint may cost one bounded wait, never progress.
	tb.heartbeat(w1, cfg.HeartbeatTimeout)
	tb.heartbeat(w2, cfg.HeartbeatTimeout)
	task, _ := tb.lease(w2, cfg.HeartbeatTimeout)
	if task == nil || task.Index != 0 {
		t.Fatalf("post-window lease = %+v, want map 0", task)
	}
	if got := tb.m.localGrants.Value(); got != 0 {
		t.Fatalf("fallback grant counted as local: %v", got)
	}
}

func TestLeaseOwnerClaimsDuringGraceWindow(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, obs.NewRegistry())
	testJob(t, tb, 1, 1)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)

	tb.advertiseCache(w1, []Split{testSplit(0)}, CacheStats{}, false)
	if task, _ := tb.lease(w2, 0); task != nil {
		t.Fatalf("deferred split granted to non-owner: %+v", task)
	}
	// The caching owner shows up mid-window and wins its own block.
	task, _ := tb.lease(w1, cfg.HeartbeatTimeout/2)
	if task == nil || task.Index != 0 {
		t.Fatalf("owner lease = %+v, want map 0", task)
	}
	if got := tb.m.localGrants.Value(); got != 1 {
		t.Fatalf("local grants = %v, want 1", got)
	}
}

func TestLeaseDeadOwnerAdsClearedImmediately(t *testing.T) {
	cfg := testTuning()
	reg := obs.NewRegistry()
	tb := newLeaseTable(cfg, nil, reg)
	testJob(t, tb, 1, 1)
	w1 := register(t, tb, "a:1", 0)
	w2 := register(t, tb, "b:2", 0)

	tb.advertiseCache(w1, []Split{testSplit(0)}, CacheStats{Bytes: 4096}, false)
	if got := tb.m.cacheBytes.Value(); got != 4096 {
		t.Fatalf("cache bytes gauge = %v, want 4096", got)
	}
	// w1 dies without ever beating again; its cache died with the process,
	// so w2 must be granted the split with no deferral at all and the
	// resident-bytes gauge must unwind.
	now := cfg.HeartbeatTimeout + 1
	tb.heartbeat(w2, now)
	tb.sweep(now)
	task, _ := tb.lease(w2, now)
	if task == nil || task.Index != 0 {
		t.Fatalf("lease after owner death = %+v, want map 0", task)
	}
	if got := tb.m.cacheBytes.Value(); got != 0 {
		t.Fatalf("cache bytes gauge = %v after owner death, want 0", got)
	}
	_ = w1
}

func TestAdvertiseCacheFoldsDeltasOnce(t *testing.T) {
	tb := newLeaseTable(testTuning(), nil, obs.NewRegistry())
	w := register(t, tb, "a:1", 0)

	// Registration installs the baseline without counting: a rejoining
	// incarnation's cumulative counters were already folded under its old id.
	tb.advertiseCache(w, nil, CacheStats{Seq: 1, Reads: 10, Hits: 5, Bytes: 100}, true)
	if got := tb.m.inputReads.Value(); got != 0 {
		t.Fatalf("baseline counted: input reads = %v", got)
	}
	if got := tb.m.cacheBytes.Value(); got != 100 {
		t.Fatalf("cache bytes gauge = %v, want 100", got)
	}
	// The next report folds only the delta.
	tb.advertiseCache(w, nil, CacheStats{Seq: 2, Reads: 13, Hits: 9, Bytes: 60}, false)
	if got := tb.m.inputReads.Value(); got != 3 {
		t.Fatalf("input reads = %v, want delta 3", got)
	}
	if got := tb.m.cacheHits.Value(); got != 4 {
		t.Fatalf("cache hits = %v, want delta 4", got)
	}
	if got := tb.m.cacheBytes.Value(); got != 60 {
		t.Fatalf("cache bytes gauge = %v, want 60", got)
	}
}

func TestAdvertiseCacheDropsStaleSeqReport(t *testing.T) {
	tb := newLeaseTable(testTuning(), nil, obs.NewRegistry())
	testJob(t, tb, 1, 1)
	w := register(t, tb, "a:1", 0)

	// The completion report (Seq 5) lands first; a heartbeat built earlier
	// (Seq 4) arrives late. The stale report must change nothing: neither
	// the counters nor — critically — the cached-split inventory, which the
	// late heartbeat does not yet contain.
	tb.advertiseCache(w, []Split{testSplit(0)}, CacheStats{Seq: 5, Reads: 2, Bytes: 50}, false)
	tb.advertiseCache(w, nil, CacheStats{Seq: 4, Reads: 1, Bytes: 30}, false)

	if got := tb.m.inputReads.Value(); got != 2 {
		t.Fatalf("input reads = %v after stale report, want 2", got)
	}
	if got := tb.m.cacheBytes.Value(); got != 50 {
		t.Fatalf("cache bytes gauge = %v after stale report, want 50", got)
	}
	task, _ := tb.lease(w, 0)
	if task == nil || task.Index != 0 {
		t.Fatalf("lease = %+v: stale report clobbered the fresh inventory", task)
	}
	if got := tb.m.localGrants.Value(); got != 1 {
		t.Fatalf("local grants = %v, want 1", got)
	}
}

func TestAdvertiseCacheIgnoresUnknownAndDeadWorkers(t *testing.T) {
	cfg := testTuning()
	tb := newLeaseTable(cfg, nil, obs.NewRegistry())
	w := register(t, tb, "a:1", 0)

	tb.advertiseCache(99, []Split{testSplit(0)}, CacheStats{Bytes: 10}, false)
	if got := tb.m.cacheBytes.Value(); got != 0 {
		t.Fatalf("unknown worker moved the gauge: %v", got)
	}
	var now time.Duration = cfg.HeartbeatTimeout + 1
	tb.sweep(now) // w dies
	tb.advertiseCache(w, []Split{testSplit(0)}, CacheStats{Bytes: 10}, false)
	if got := tb.m.cacheBytes.Value(); got != 0 {
		t.Fatalf("dead worker moved the gauge: %v", got)
	}
}
