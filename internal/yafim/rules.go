package yafim

import (
	"fmt"

	"yafim/internal/apriori"
	"yafim/internal/rdd"
	"yafim/internal/rules"
	"yafim/internal/sim"
)

// ParallelRules derives association rules from a mining result on the RDD
// engine: the frequent itemsets of size >= 2 are distributed across the
// cluster, the full result (needed for subset supports) is broadcast once,
// and each task enumerates its itemsets' antecedents independently — the
// same broadcast-and-partition pattern Phase II uses for counting.
//
// The output is identical to rules.Generate (same ordering); only the
// execution strategy and its simulated cost differ.
func ParallelRules(ctx *rdd.Context, res *apriori.Result, minConfidence float64,
	numTransactions int) ([]rules.Rule, error) {
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("yafim: minConfidence %v out of [0,1]", minConfidence)
	}
	if numTransactions <= 0 {
		return nil, fmt.Errorf("yafim: numTransactions must be positive, got %d", numTransactions)
	}
	var work []apriori.SetCount
	for k := 2; k <= res.MaxK(); k++ {
		work = append(work, res.Frequent(k)...)
	}
	if len(work) == 0 {
		return nil, nil
	}

	// Broadcast the result: every task needs subset supports. Size estimate
	// mirrors the hash tree's (4 bytes/item + framing per itemset).
	var bytes int64
	for _, level := range res.Levels {
		for _, sc := range level.Sets {
			bytes += int64(4*sc.Set.Len() + 8)
		}
	}
	bc := rdd.NewBroadcast(ctx, res, bytes)

	dist := rdd.Parallelize(ctx, "frequentItemsets", work, ctx.Config().TotalCores())
	perTask := rdd.MapPartitions(dist, "deriveRules",
		func(_ int, sets []apriori.SetCount, led *sim.Ledger) ([]rules.Rule, error) {
			shared := bc.Acquire(led)
			var out []rules.Rule
			for _, sc := range sets {
				partial := &apriori.Result{MinSupport: shared.MinSupport, Levels: shared.Levels}
				rs, err := rules.FromItemset(partial, sc, minConfidence, numTransactions)
				if err != nil {
					return nil, err
				}
				// One op per enumerated antecedent (2^k - 2 subsets).
				led.AddCPU(float64(int(1) << sc.Set.Len()))
				out = append(out, rs...)
			}
			return out, nil
		})
	collected, err := rdd.Collect(perTask)
	if err != nil {
		return nil, fmt.Errorf("yafim: parallel rules: %w", err)
	}
	rules.Sort(collected)
	return collected, nil
}
