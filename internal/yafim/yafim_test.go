package yafim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/rdd"
	"yafim/internal/rules"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

// stage writes db into a fresh DFS with small blocks (several partitions)
// and returns a ready context.
func stage(t *testing.T, db *itemset.DB, opts ...rdd.Option) (*rdd.Context, *dfs.FileSystem, string) {
	t.Helper()
	fs := dfs.New(4, dfs.WithBlockSize(32), dfs.WithReplication(2))
	path := "/data/" + db.Name + ".dat"
	if _, err := dataset.Stage(fs, path, db); err != nil {
		t.Fatal(err)
	}
	ctx, err := rdd.NewContext(cluster.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, fs, path
}

func TestMineMatchesSequentialOracle(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want) {
		t.Fatalf("YAFIM disagrees with oracle:\n got %v\nwant %v", got.Result.All(), want.All())
	}
}

func TestMinePassStats(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Passes) < 3 {
		t.Fatalf("passes = %+v", got.Passes)
	}
	for i, p := range got.Passes {
		if p.K != i+1 {
			t.Errorf("pass %d has K=%d", i, p.K)
		}
		if p.Duration <= 0 {
			t.Errorf("pass %d has non-positive duration %v", i, p.Duration)
		}
	}
	if got.TotalDuration() <= 0 {
		t.Fatal("total duration not positive")
	}
	// Pass 2 counts candidates C2 = C(5,2) = 10 in the classic example.
	if got.Passes[1].Candidates != 10 {
		t.Errorf("pass 2 candidates = %d, want 10", got.Passes[1].Candidates)
	}
}

func TestMineMaxK(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.MaxK() != 2 {
		t.Fatalf("MaxK = %d", got.Result.MaxK())
	}
}

func TestMineAblationsStillExact(t *testing.T) {
	want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"no-cache":    {MinSupport: 2.0 / 9.0, DisableCache: true},
		"brute-force": {MinSupport: 2.0 / 9.0, BruteForceMatching: true},
	} {
		ctx, fs, path := stage(t, classicDB())
		got, err := Mine(ctx, fs, path, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Result.Equal(want) {
			t.Errorf("%s: results differ from oracle", name)
		}
	}
	// The naive-shipping ablation changes time, never results.
	ctx, fs, path := stage(t, classicDB(), rdd.WithoutBroadcast())
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want) {
		t.Error("naive shipping changed the mining result")
	}
}

func TestCacheAblationCostsDiskReads(t *testing.T) {
	run := func(disable bool) int64 {
		ctx, fs, path := stage(t, classicDB())
		_, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0, DisableCache: disable})
		if err != nil {
			t.Fatal(err)
		}
		var disk int64
		for _, r := range ctx.Reports() {
			disk += r.TotalCost().DiskRead
		}
		return disk
	}
	cached, uncached := run(false), run(true)
	if uncached <= cached {
		t.Fatalf("disabling the cache should re-read input every pass: %d vs %d", uncached, cached)
	}
}

func TestMineInvalidInputs(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	if _, err := Mine(ctx, fs, path, Config{MinSupport: 0}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := Mine(ctx, fs, path, Config{MinSupport: 1.5}); err == nil {
		t.Error("support > 1 accepted")
	}
	if _, err := Mine(ctx, fs, "/missing", Config{MinSupport: 0.5}); err == nil {
		t.Error("missing input accepted")
	}
	bad := dfs.New(2)
	if err := bad.WriteFile("/bad.dat", []byte("1 2 x\n"), nil); err != nil {
		t.Fatal(err)
	}
	ctxB, err := rdd.NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(ctxB, bad, "/bad.dat", Config{MinSupport: 0.5}); err == nil {
		t.Error("malformed transaction accepted")
	}
}

func TestMineEmptyFile(t *testing.T) {
	fs := dfs.New(2)
	if err := fs.WriteFile("/empty.dat", nil, nil); err != nil {
		t.Fatal(err)
	}
	ctx, err := rdd.NewContext(cluster.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mine(ctx, fs, "/empty.dat", Config{MinSupport: 0.5}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseTransaction(t *testing.T) {
	cases := []struct {
		in   string
		want itemset.Itemset
		ok   bool
	}{
		{"1 2 3", itemset.New(1, 2, 3), true},
		{"  7   5 ", itemset.New(5, 7), true},
		{"42", itemset.New(42), true},
		{"", itemset.New(), true},
		{"3 3 3", itemset.New(3), true},
		{"1 -2", nil, false},
		{"a b", nil, false},
	}
	for _, c := range cases {
		got, err := parseTransaction(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parse(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && !got.Equal(c.want) {
			t.Errorf("parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSurvivesInjectedTaskFailure(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	// Fail an early RDD id (the textFile or transactions RDD) a few times;
	// the scheduler must retry and the result must stay exact.
	ctx.FailTaskOnce(1, 0, 2)
	got, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if !got.Result.Equal(want) {
		t.Fatal("result corrupted by injected failure")
	}
}

// Property: YAFIM equals the sequential oracle on random databases and
// supports — the paper's correctness claim, continuously fuzzed.
func TestMineMatchesOracleProperty(t *testing.T) {
	f := func(seed int64, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.15 + float64(sup8%7)/10.0
		rows := make([][]itemset.Item, rng.Intn(20)+5)
		for i := range rows {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(8)))
			}
		}
		db := itemset.NewDB("rand", rows)
		fs := dfs.New(3, dfs.WithBlockSize(16))
		if _, err := dataset.Stage(fs, "/r.dat", db); err != nil {
			return false
		}
		ctx, err := rdd.NewContext(cluster.Local())
		if err != nil {
			return false
		}
		got, err := Mine(ctx, fs, "/r.dat", Config{MinSupport: sup})
		if err != nil {
			return false
		}
		want, err := apriori.Mine(db, sup, apriori.Options{})
		if err != nil {
			return false
		}
		return got.Result.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRulesMatchSequential(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	trace, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelRules(ctx, trace.Result, 0.5, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	want, err := rules.Generate(trace.Result, 0.5, classicDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel rules = %d, sequential = %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Antecedent.Equal(want[i].Antecedent) ||
			!got[i].Consequent.Equal(want[i].Consequent) ||
			got[i].Confidence != want[i].Confidence {
			t.Fatalf("rule %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	// Rule derivation must appear as jobs on the context.
	reps := ctx.Reports()
	if reps[len(reps)-1].TotalCost().CPUOps <= 0 {
		t.Fatal("parallel rule derivation charged no work")
	}
}

func TestParallelRulesInvalid(t *testing.T) {
	ctx, fs, path := stage(t, classicDB())
	trace, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelRules(ctx, trace.Result, -1, 9); err == nil {
		t.Error("negative confidence accepted")
	}
	if _, err := ParallelRules(ctx, trace.Result, 0.5, 0); err == nil {
		t.Error("zero transactions accepted")
	}
	empty := &apriori.Result{}
	if got, err := ParallelRules(ctx, empty, 0.5, 9); err != nil || got != nil {
		t.Errorf("empty result: %v, %v", got, err)
	}
}
