// Package yafim implements YAFIM (Yet Another Frequent Itemset Mining),
// the paper's parallel Apriori on the Spark-substitute RDD engine.
//
// The algorithm follows §IV exactly:
//
//   - Phase I loads the transaction dataset from the DFS into an RDD, caches
//     it in cluster memory, and computes the frequent 1-itemsets with a
//     flatMap → map → reduceByKey pipeline (Fig. 1, Algorithm 2).
//   - Phase II iterates: candidate (k+1)-itemsets are generated from the
//     frequent k-itemsets (ap_gen), stored in a hash tree, broadcast to all
//     workers, matched against the cached transactions RDD with flatMap, and
//     counted with reduceByKey (Fig. 2, Algorithm 3).
//
// The transactions RDD is read from the DFS once and reused in memory for
// every pass — the property that gives YAFIM its advantage over the per-job
// re-scanning MapReduce implementation.
package yafim

import (
	"fmt"
	"sync"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/dfs"
	"yafim/internal/hashtree"
	"yafim/internal/itemset"
	"yafim/internal/rdd"
	"yafim/internal/sim"
)

// Config parameterises a mining run.
type Config struct {
	// MinSupport is the relative minimum support threshold in (0,1].
	MinSupport float64
	// NumPartitions sets reduce-side parallelism (0 = cluster core count).
	NumPartitions int
	// MaxK stops after frequent itemsets of this size (0 = unbounded).
	MaxK int
	// DisableCache skips caching the transactions RDD, forcing every pass to
	// re-read the input from the DFS (the §IV-B ablation).
	DisableCache bool
	// BruteForceMatching replaces the Phase II hash tree with a linear scan
	// of all candidates per transaction (the §IV-A ablation).
	BruteForceMatching bool
}

// Mine runs YAFIM over the transaction file at path in the DFS.
func Mine(ctx *rdd.Context, fs *dfs.FileSystem, path string, cfg Config) (*apriori.Trace, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("yafim: MinSupport %v out of (0,1]", cfg.MinSupport)
	}
	parts := cfg.NumPartitions
	if parts <= 0 {
		parts = ctx.Config().TotalCores()
	}

	// Phase I — load transactions into a cached RDD.
	lines, err := rdd.TextFile(ctx, fs, path, parts)
	if err != nil {
		return nil, fmt.Errorf("yafim: %w", err)
	}
	trans := rdd.MapPartitions(lines, "transactions",
		func(_ int, rows []string, led *sim.Ledger) ([]itemset.Itemset, error) {
			out := make([]itemset.Itemset, 0, len(rows))
			parsedBytes := 0
			for i, row := range rows {
				if i%cancelCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				t, err := parseTransaction(row)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
				parsedBytes += len(row)
			}
			// Text parsing costs one op per byte; caching the RDD is what
			// saves re-paying it on every pass.
			led.AddCPU(float64(parsedBytes))
			return out, nil
		})
	if !cfg.DisableCache {
		trans.Cache()
	}

	rec := ctx.Recorder()
	rec.SetPass(1)
	passStart := markJobs(ctx)
	passMark := rec.Counters()
	n, err := rdd.Count(trans)
	if err != nil {
		return nil, fmt.Errorf("yafim: counting transactions: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("yafim: %s holds no transactions", path)
	}
	minCount := minSupportCount(cfg.MinSupport, n)
	rec.ObservePass("rdd", 1, int(n))
	res := &apriori.Result{MinSupport: minCount}
	out := &apriori.Trace{Result: res}

	// Phase I counting: flatMap items, map to pairs, reduceByKey, prune.
	items := rdd.FlatMap(trans, "items", func(t itemset.Itemset) []itemset.Item { return t })
	pairs := rdd.Map(items, "itemPairs", func(it itemset.Item) rdd.Pair[int32, int] {
		return rdd.Pair[int32, int]{Key: int32(it), Value: 1}
	})
	counts := rdd.ReduceByKey(pairs, "itemCounts", func(a, b int) int { return a + b }, parts)
	frequent := rdd.Filter(counts, "frequentItems", func(kv rdd.Pair[int32, int]) bool {
		return kv.Value >= minCount
	})
	l1Pairs, err := rdd.Collect(frequent)
	if err != nil {
		return nil, fmt.Errorf("yafim: phase I: %w", err)
	}
	l1 := make([]apriori.SetCount, len(l1Pairs))
	for i, kv := range l1Pairs {
		l1[i] = apriori.SetCount{Set: itemset.New(itemset.Item(kv.Key)), Count: kv.Value}
	}
	// Pass boundary: the Phase I shuffle output (itemCounts) has been
	// reduced and collected; release its resident map-side buckets so pass 2
	// starts with zero shuffle bytes held. The per-pass RDDs are never
	// reused, so this adds no recomputation and no virtual time. Freeing
	// before the PassStat snapshot attributes the reclamation to this pass.
	ctx.FreeShuffles()
	out.Passes = append(out.Passes, apriori.PassStat{
		K: 1, Candidates: int(n), Frequent: len(l1), Duration: jobsSince(ctx, passStart),
		Counters: rec.Counters().Sub(passMark),
	})
	if len(l1) == 0 {
		return out, nil
	}
	res.Levels = append(res.Levels, apriori.NewLevel(1, l1))

	// Phase II — iterate L_k -> C_{k+1} -> L_{k+1}.
	prev := sets(l1)
	for k := 2; cfg.MaxK == 0 || k <= cfg.MaxK; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("yafim: pass %d: %w", k, err)
		}
		rec.SetPass(k)
		passStart = markJobs(ctx)
		passMark = rec.Counters()
		cands, err := apriori.Gen(prev)
		if err != nil {
			return nil, fmt.Errorf("yafim: pass %d: %w", k, err)
		}
		if len(cands) == 0 {
			break
		}
		rec.ObservePass("rdd", k, len(cands))
		lk, err := countPass(ctx, trans, cands, minCount, parts, k, cfg.BruteForceMatching)
		if err != nil {
			return nil, fmt.Errorf("yafim: pass %d: %w", k, err)
		}
		// Pass boundary: free pass k's shuffle output before generating
		// C_{k+1}, the iteration-scoped unpersist discipline.
		ctx.FreeShuffles()
		out.Passes = append(out.Passes, apriori.PassStat{
			K: k, Candidates: len(cands), Frequent: len(lk), Duration: jobsSince(ctx, passStart),
			Counters: rec.Counters().Sub(passMark),
		})
		if len(lk) == 0 {
			break
		}
		res.Levels = append(res.Levels, apriori.NewLevel(k, lk))
		prev = sets(lk)
	}
	return out, nil
}

// cancelCheckRows is how many rows a partition closure processes between
// cooperative cancellation checks: frequent enough that a runaway pass (e.g.
// a candidate explosion) stops promptly, rare enough to cost nothing.
const cancelCheckRows = 512

// countBufs pools the dense per-partition count buffers of countPass so
// that passes and partitions reuse them instead of allocating one per task.
var countBufs sync.Pool

// takeCounts returns a zeroed count buffer of length n.
func takeCounts(n int) []int {
	if p, ok := countBufs.Get().(*[]int); ok && cap(*p) >= n {
		buf := (*p)[:n]
		clear(buf)
		return buf
	}
	return make([]int, n)
}

func putCounts(buf []int) {
	countBufs.Put(&buf)
}

// countPass runs one Phase II support-counting job: broadcast the candidate
// hash tree, scan the cached transactions accumulating matches into a dense
// per-partition count array indexed by candidate id, flush one
// <candidate, count> pair per locally occurring candidate, reduceByKey, and
// keep those meeting the minimum support. The dense accumulation is the
// map-side combining step: shuffle volume is bounded by the candidate count
// per partition, not the match count, and the scan itself allocates only
// the flushed pairs (the counter buffer is pooled, the hash-tree matcher
// reuses its scratch across rows, and CPU charges are batched per
// cancel-check block instead of per candidate).
func countPass(ctx *rdd.Context, trans *rdd.RDD[itemset.Itemset],
	cands []itemset.Itemset, minCount, parts, k int, brute bool) ([]apriori.SetCount, error) {

	tree := hashtree.Build(cands)
	bc := rdd.NewBroadcast(ctx, tree, tree.SerializedBytes())

	name := fmt.Sprintf("matchC%d", k)
	found := rdd.MapPartitions(trans, name,
		func(_ int, rows []itemset.Itemset, led *sim.Ledger) ([]rdd.Pair[int, int], error) {
			t := bc.Acquire(led)
			counts := takeCounts(t.Len())
			defer putCounts(counts)
			var ops int64
			if brute {
				for r, tr := range rows {
					if r%cancelCheckRows == 0 {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						led.AddCPU(float64(ops))
						ops = 0
					}
					for i, c := range t.Candidates() {
						ops += int64(c.Len())
						if tr.ContainsAll(c) {
							counts[i]++
						}
					}
				}
			} else {
				m := t.NewMatcher()
				for r, tr := range rows {
					if r%cancelCheckRows == 0 {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						led.AddCPU(float64(ops))
						ops = 0
					}
					ops += m.Subset(tr, func(i int) { counts[i]++ })
				}
			}
			led.AddCPU(float64(ops))
			nonzero := 0
			for _, c := range counts {
				if c != 0 {
					nonzero++
				}
			}
			out := make([]rdd.Pair[int, int], 0, nonzero)
			for i, c := range counts {
				if c != 0 {
					out = append(out, rdd.Pair[int, int]{Key: i, Value: c})
				}
			}
			return out, nil
		})
	counted := rdd.ReduceByKey(found, fmt.Sprintf("countC%d", k),
		func(a, b int) int { return a + b }, parts)
	frequent := rdd.Filter(counted, fmt.Sprintf("L%d", k), func(kv rdd.Pair[int, int]) bool {
		return kv.Value >= minCount
	})
	pairs, err := rdd.Collect(frequent)
	if err != nil {
		return nil, err
	}
	lk := make([]apriori.SetCount, len(pairs))
	for i, kv := range pairs {
		lk[i] = apriori.SetCount{Set: tree.Candidate(kv.Key), Count: kv.Value}
	}
	return lk, nil
}

func sets(scs []apriori.SetCount) []itemset.Itemset {
	out := make([]itemset.Itemset, len(scs))
	for i, sc := range scs {
		out[i] = sc.Set
	}
	return out
}

func parseTransaction(line string) (itemset.Itemset, error) {
	var items []itemset.Item
	v, inNum := 0, false
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] >= '0' && line[i] <= '9' {
			v = v*10 + int(line[i]-'0')
			inNum = true
			continue
		}
		if i < len(line) && line[i] != ' ' && line[i] != '\t' {
			return nil, fmt.Errorf("yafim: bad transaction line %q", line)
		}
		if inNum {
			items = append(items, itemset.Item(v))
			v, inNum = 0, false
		}
	}
	return itemset.New(items...), nil
}

// minSupportCount converts a relative support into an absolute count over n
// transactions, rounding up (same contract as itemset.DB.MinSupportCount).
func minSupportCount(rel float64, n int64) int {
	c := int(rel * float64(n))
	if float64(c) < rel*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// markJobs and jobsSince bracket a pass to attribute job durations to it.
func markJobs(ctx *rdd.Context) int { return len(ctx.Reports()) }

func jobsSince(ctx *rdd.Context, mark int) time.Duration {
	var d time.Duration
	for _, r := range ctx.Reports()[mark:] {
		d += r.Duration()
	}
	return d
}
