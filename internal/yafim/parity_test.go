package yafim

import (
	"math/rand"
	"reflect"
	"testing"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

// randomParityDB builds a deterministic random database dense enough for
// several Phase II passes.
func randomParityDB(seed int64) *itemset.DB {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]itemset.Item, rng.Intn(60)+40)
	universe := rng.Intn(12) + 8
	for i := range rows {
		row := make([]itemset.Item, rng.Intn(6)+2)
		for j := range row {
			row[j] = itemset.Item(rng.Intn(universe) + 1)
		}
		rows[i] = row
	}
	return itemset.NewDB("parity", rows)
}

// TestCountKernelParityAcrossSeeds locks the allocation-lean counting path
// to its two references: the hash-tree and brute-force Phase II kernels
// must produce byte-identical frequent-itemset levels — same sets, same
// counts, same order — and both must agree with the sequential oracle.
// This is the exactness contract of the dense-count rewrite: map-side
// accumulation plus ReduceByKey summation may change how counts travel,
// never what they are.
func TestCountKernelParityAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		db := randomParityDB(seed)
		support := 0.15

		ctxTree, fs, path := stage(t, db)
		tree, err := Mine(ctxTree, fs, path, Config{MinSupport: support})
		if err != nil {
			t.Fatalf("seed %d: tree path: %v", seed, err)
		}
		ctxBrute, fs, path := stage(t, db)
		brute, err := Mine(ctxBrute, fs, path, Config{MinSupport: support, BruteForceMatching: true})
		if err != nil {
			t.Fatalf("seed %d: brute path: %v", seed, err)
		}

		if !reflect.DeepEqual(tree.Result.Levels, brute.Result.Levels) {
			t.Fatalf("seed %d: hash-tree and brute-force kernels disagree:\n tree %v\nbrute %v",
				seed, tree.Result.All(), brute.Result.All())
		}
		oracle, err := apriori.Mine(db, support, apriori.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Result.Equal(oracle) {
			t.Fatalf("seed %d: YAFIM disagrees with sequential oracle:\n got %v\nwant %v",
				seed, tree.Result.All(), oracle.All())
		}
	}
}

// TestCountKernelParityWithoutCache re-runs the parity check with the
// transactions RDD uncached, exercising the pooled count buffers across
// recomputed partitions.
func TestCountKernelParityWithoutCache(t *testing.T) {
	db := randomParityDB(7)
	ctxA, fs, path := stage(t, db)
	cached, err := Mine(ctxA, fs, path, Config{MinSupport: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	ctxB, fs, path := stage(t, db)
	uncached, err := Mine(ctxB, fs, path, Config{MinSupport: 0.15, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Result.Levels, uncached.Result.Levels) {
		t.Fatalf("caching changed mined results:\n cached %v\nuncached %v",
			cached.Result.All(), uncached.Result.All())
	}
}
