package yafim

import (
	"bytes"
	"testing"

	"yafim/internal/apriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
)

// mineObserved runs Mine on a fresh classic database with a fresh recorder
// attached to both the RDD context and the DFS.
func mineObserved(t *testing.T, cfg Config, opts ...rdd.Option) (*obs.Recorder, *apriori.Trace) {
	t.Helper()
	rec := obs.New()
	ctx, fs, path := stage(t, classicDB(), append(opts, rdd.WithRecorder(rec))...)
	fs.SetRecorder(rec)
	cfg.MinSupport = 2.0 / 9.0
	trace, err := Mine(ctx, fs, path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec, trace
}

func TestRecorderCacheCountersPerPass(t *testing.T) {
	rec, trace := mineObserved(t, Config{})
	c := rec.Counters()
	if c.CacheHits == 0 {
		t.Fatalf("cached run recorded no cache hits: %+v", c)
	}
	if c.DFSReadBytes == 0 {
		t.Fatalf("run recorded no DFS reads: %+v", c)
	}
	if len(trace.Passes) < 2 {
		t.Fatalf("classic db mined in %d passes", len(trace.Passes))
	}
	// Pass 1 computes the transactions RDD (all misses); every later pass
	// reuses the cached partitions.
	if trace.Passes[0].Counters.CacheMisses == 0 {
		t.Fatalf("pass 1 counters = %+v, want cache misses", trace.Passes[0].Counters)
	}
	for _, p := range trace.Passes[1:] {
		if p.Counters.CacheHits == 0 {
			t.Fatalf("pass %d counters = %+v, want cache hits", p.K, p.Counters)
		}
		if p.Counters.LineageRecomputes != 0 {
			t.Fatalf("pass %d recomputed despite cache: %+v", p.K, p.Counters)
		}
	}
	// Per-pass deltas must sum to the run totals.
	var sum obs.Counters
	for _, p := range trace.Passes {
		sum.CacheHits += p.Counters.CacheHits
		sum.CacheMisses += p.Counters.CacheMisses
	}
	if sum.CacheHits != c.CacheHits || sum.CacheMisses != c.CacheMisses {
		t.Fatalf("per-pass deltas (%+v) do not sum to totals (%+v)", sum, c)
	}
}

func TestRecorderDisableCacheRecomputes(t *testing.T) {
	rec, trace := mineObserved(t, Config{DisableCache: true})
	c := rec.Counters()
	if c.CacheHits != 0 || c.CacheMisses != 0 {
		t.Fatalf("cache counters active with caching disabled: %+v", c)
	}
	if len(trace.Passes) < 2 {
		t.Fatalf("classic db mined in %d passes", len(trace.Passes))
	}
	if c.LineageRecomputes == 0 {
		t.Fatal("uncached multi-pass run recorded no lineage recomputes")
	}
}

func TestRecorderBroadcastVsNaiveShipping(t *testing.T) {
	rec, _ := mineObserved(t, Config{})
	c := rec.Counters()
	if c.BroadcastBytes == 0 {
		t.Fatalf("broadcast mode recorded no broadcast bytes: %+v", c)
	}
	if c.NaiveShipBytes != 0 {
		t.Fatalf("broadcast mode shipped naively: %+v", c)
	}

	recN, _ := mineObserved(t, Config{}, rdd.WithoutBroadcast())
	cN := recN.Counters()
	if cN.NaiveShipBytes == 0 {
		t.Fatalf("naive mode recorded no shipped bytes: %+v", cN)
	}
	if cN.BroadcastBytes != 0 {
		t.Fatalf("naive mode recorded broadcast bytes: %+v", cN)
	}
}

// TestRecorderSpansCoverPasses checks the span tree the engine emits: jobs
// tagged with the mining pass, rdd as the engine, stages with tasks.
func TestRecorderSpansCoverPasses(t *testing.T) {
	rec, trace := mineObserved(t, Config{})
	jobs := rec.Jobs()
	if len(jobs) == 0 {
		t.Fatal("no job spans recorded")
	}
	maxPass := 0
	for _, j := range jobs {
		if j.Engine != "rdd" {
			t.Fatalf("job engine = %q", j.Engine)
		}
		if j.Pass < 1 || j.Pass > len(trace.Passes) {
			t.Fatalf("job pass %d outside [1,%d]", j.Pass, len(trace.Passes))
		}
		if j.Pass > maxPass {
			maxPass = j.Pass
		}
		for _, st := range j.Stages {
			if len(st.Tasks) == 0 {
				t.Fatalf("stage %q recorded no tasks", st.Name)
			}
		}
	}
	if maxPass != len(trace.Passes) {
		t.Fatalf("spans cover passes up to %d, trace has %d", maxPass, len(trace.Passes))
	}
}

// TestChromeTraceByteDeterministic is the export promise end to end: two
// identical engine runs serialise to byte-identical Chrome traces.
func TestChromeTraceByteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	recA, _ := mineObserved(t, Config{})
	if err := obs.WriteChromeTrace(&a, recA); err != nil {
		t.Fatal(err)
	}
	recB, _ := mineObserved(t, Config{})
	if err := obs.WriteChromeTrace(&b, recB); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical runs exported different trace bytes")
	}
}

// TestPassBoundaryFreesShuffle asserts the facade's iteration-scoped
// unpersist discipline: every pass's shuffle output is reclaimed at its pass
// boundary, so nothing is resident after Mine returns, every pass records
// frees, and the per-pass resident-byte delta is ~zero (spilled within the
// pass, freed at its end) while the run's cumulative spill is not.
func TestPassBoundaryFreesShuffle(t *testing.T) {
	rec := obs.New()
	ctx, fs, path := stage(t, classicDB(), rdd.WithRecorder(rec))
	trace, err := Mine(ctx, fs, path, Config{MinSupport: 2.0 / 9.0})
	if err != nil {
		t.Fatal(err)
	}
	if n := ctx.ShuffleResidentBytes(); n != 0 {
		t.Fatalf("shuffle_resident_bytes = %d after Mine, want 0", n)
	}
	if peak, spilled := ctx.ShufflePeakBytes(), ctx.ShuffleSpilledBytes(); peak <= 0 || spilled < peak {
		t.Fatalf("peak %d / spilled %d: want 0 < peak <= spilled", peak, spilled)
	}
	if got := rec.Counters().ShuffleResidentBytes; got != 0 {
		t.Fatalf("telemetry gauge = %d after Mine, want 0", got)
	}
	for _, p := range trace.Passes {
		if p.Counters.ShuffleFrees == 0 {
			t.Fatalf("pass %d freed no shuffle output: %+v", p.K, p.Counters)
		}
		if p.Counters.ShuffleResidentBytes != 0 {
			t.Fatalf("pass %d leaked %d resident shuffle bytes", p.K, p.Counters.ShuffleResidentBytes)
		}
	}
}
