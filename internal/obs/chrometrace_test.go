package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceFile mirrors the Trace Event Format JSON-object flavour for decoding
// in tests.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceStructure(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}

	var jobs, stages, tasks int
	processes := map[int]string{} // pid -> metadata name
	for _, e := range tf.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			processes[e.Pid] = e.Args["name"].(string)
		case e.Ph == "X" && e.Cat == "job":
			jobs++
			if e.Pid != 0 || e.Tid != 0 {
				t.Fatalf("job event off the driver job lane: %+v", e)
			}
		case e.Ph == "X" && e.Cat == "stage":
			stages++
			if e.Pid != 0 || e.Tid != 1 {
				t.Fatalf("stage event off the driver stage lane: %+v", e)
			}
		case e.Ph == "X" && e.Cat == "task":
			tasks++
			if e.Pid < 1 {
				t.Fatalf("task event on the driver process: %+v", e)
			}
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("task event with negative time: %+v", e)
			}
		}
	}
	// sampleRecorder: 2 jobs, 3 stages, 3 tasks on nodes 0, 1 and 2.
	if jobs != 2 || stages != 3 || tasks != 3 {
		t.Fatalf("events: %d jobs, %d stages, %d tasks", jobs, stages, tasks)
	}
	if processes[0] != "driver" {
		t.Fatalf("driver process not named: %v", processes)
	}
	for _, node := range []int{0, 1, 2} {
		if name := processes[node+1]; name == "" {
			t.Fatalf("node %d has no process metadata: %v", node, processes)
		}
	}

	// The retried remote task must carry its attempt count and remote marker.
	found := false
	for _, e := range tf.TraceEvents {
		if e.Cat == "task" && e.Args["attempts"] == float64(2) {
			found = true
			if e.Args["remote_read"] != true {
				t.Fatalf("remote task lacks remote_read arg: %+v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("retried task's attempts arg missing from trace")
	}
}

// TestChromeTraceDeterministic checks the export promise: the same recorded
// run serialises to byte-identical output.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders exported different trace bytes")
	}
}

func TestChromeTraceEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, New()); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	// Only the driver metadata lanes, no span events.
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" {
			t.Fatalf("empty recorder produced span event %+v", e)
		}
	}
}

// TestChromeTracePartialFlush is the interrupted-run regression: a job still
// open when the trace is written must export as a well-formed open-ended
// begin event, and the whole file must stay valid JSON.
func TestChromeTracePartialFlush(t *testing.T) {
	r := sampleRecorder()
	r.BeginJob("rdd", "collect(L3)")
	r.AddStage(StageSpan{
		Name:     "inflight",
		Makespan: 2e6,
		Tasks:    []TaskSpan{{Index: 0, Node: 0, End: 2e6, Attempts: 1}},
	})
	// No EndJob: the run was interrupted here.

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("partial trace is not valid JSON: %v", err)
	}

	var open, closed int
	for _, e := range tf.TraceEvents {
		if e.Cat != "job" {
			continue
		}
		switch e.Ph {
		case "B":
			open++
			if e.Name != "collect(L3)" {
				t.Fatalf("wrong job exported open: %+v", e)
			}
			if e.Dur != 0 || e.Args["open"] != true {
				t.Fatalf("open job event malformed: %+v", e)
			}
		case "X":
			closed++
		default:
			t.Fatalf("unexpected job event phase %q", e.Ph)
		}
	}
	if open != 1 || closed != 2 {
		t.Fatalf("jobs: %d open, %d closed; want 1 and 2", open, closed)
	}

	// The in-flight job's recorded stage still exports normally.
	found := false
	for _, e := range tf.TraceEvents {
		if e.Cat == "stage" && e.Name == "inflight" {
			found = true
		}
	}
	if !found {
		t.Fatal("open job's recorded stage missing from trace")
	}

	// Snapshotting must not perturb the recorder: the job is still open and
	// a second export is byte-identical.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-exporting the same partial run changed bytes")
	}
	if jobs := r.Jobs(); len(jobs) != 3 || !jobs[2].Open {
		t.Fatalf("export perturbed recorder: %+v", jobs)
	}
}
