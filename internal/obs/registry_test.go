package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestHistogramExactQuantiles(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("q", "h", CountBuckets)
	for _, v := range []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		h.Observe(v)
	}
	// All observations retained -> nearest-rank quantiles are exact sample
	// values, never interpolated bucket positions.
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.9, 90}, {0.95, 100}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Count() != 10 || h.Sum() != 550 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramOverflowInterpolation(t *testing.T) {
	g := NewRegistry()
	bounds := []float64{10, 20, 30}
	h := g.Histogram("big", "h", bounds)
	// 2x the sample cap, uniformly over (0, 30]: the raw buffer overflows and
	// quantiles fall back to bucket interpolation, which must stay inside the
	// bucket that holds the rank.
	n := 2 * histogramSampleCap
	for i := 0; i < n; i++ {
		h.Observe(float64(i%30) + 1)
	}
	if got := h.Count(); got != uint64(n) {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if q := h.Quantile(0.5); q < 10 || q > 20 {
		t.Errorf("median %v outside its bucket (10, 20]", q)
	}
	if q := h.Quantile(0.99); q < 20 || q > 30 {
		t.Errorf("p99 %v outside its bucket (20, 30]", q)
	}
	if q := h.Quantile(0.01); q < 0 || q > 10 {
		t.Errorf("p1 %v outside its bucket [0, 10]", q)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// checkPrometheusText validates every line of a text-format export: comment
// lines are HELP/TYPE, sample lines parse, histogram buckets are cumulative
// and end with a +Inf bucket matching _count.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	var lastBucket float64
	var lastBucketName string
	infCount := map[string]float64{}
	countVal := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name, rest, _ := strings.Cut(line, " ")
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels := name[i:]
			name = name[:i]
			if strings.Contains(name, "_bucket") {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("bucket value %q: %v", rest, err)
				}
				series := name + labelsWithoutLe(labels)
				if series != lastBucketName {
					lastBucketName, lastBucket = series, 0
				}
				if v < lastBucket {
					t.Fatalf("bucket counts not cumulative at %q: %v < %v", line, v, lastBucket)
				}
				lastBucket = v
				if strings.Contains(labels, `le="+Inf"`) {
					infCount[series] = v
				}
			}
		}
		if strings.HasSuffix(name, "_count") {
			v, _ := strconv.ParseFloat(rest, 64)
			countVal[strings.TrimSuffix(name, "_count")+"_bucket"+labelsOf(line)] = v
		}
	}
	for series, inf := range infCount {
		want, ok := countVal[series]
		if !ok {
			t.Fatalf("histogram %q has buckets but no _count", series)
		}
		if inf != want {
			t.Fatalf("histogram %q +Inf bucket %v != count %v", series, inf, want)
		}
	}
}

// labelsWithoutLe strips the le pair from a label set, keying a bucket series
// to its parent histogram series.
func labelsWithoutLe(labels string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range strings.Split(inner, ",") {
		if !strings.HasPrefix(pair, `le="`) {
			kept = append(kept, pair)
		}
	}
	return "{" + strings.Join(kept, ",") + "}"
}

func labelsOf(line string) string {
	name, _, _ := strings.Cut(line, " ")
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return "{}"
}

func TestRegistryPrometheusFormat(t *testing.T) {
	g := NewRegistry()
	g.Counter("yafim_tasks_total", "Tasks.", "engine", "rdd").Add(7)
	g.Counter("yafim_tasks_total", "Tasks.", "engine", "mapreduce").Add(3)
	g.Gauge("yafim_pass_depth", "Depth.", "engine", "rdd").Set(4)
	h := g.Histogram("yafim_task_duration_seconds", "Durations.", DurationBuckets, "engine", "rdd")
	for _, v := range []float64{0.0004, 0.003, 0.2, 4, 400} {
		h.Observe(v)
	}
	g.Histogram("plain_hist", "No labels.", []float64{1, 2}).Observe(1.5)

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkPrometheusText(t, out)
	for _, want := range []string{
		"# TYPE yafim_tasks_total counter",
		"# TYPE yafim_pass_depth gauge",
		"# TYPE yafim_task_duration_seconds histogram",
		`yafim_tasks_total{engine="mapreduce"} 3`,
		`yafim_tasks_total{engine="rdd"} 7`,
		`yafim_task_duration_seconds_bucket{engine="rdd",le="+Inf"} 5`,
		`yafim_task_duration_seconds_count{engine="rdd"} 5`,
		`plain_hist_bucket{le="1"} 0`,
		`plain_hist_bucket{le="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// Series within a family must be sorted (mapreduce before rdd).
	if strings.Index(out, `engine="mapreduce"} 3`) > strings.Index(out, `engine="rdd"} 7`) {
		t.Error("series not sorted by labels")
	}
}

func TestRegistryDeterministicExport(t *testing.T) {
	build := func() *Registry {
		g := NewRegistry()
		// Insertion order differs run to run via map iteration only if export
		// ever depended on it; build in two different orders to prove it
		// doesn't.
		for _, e := range []string{"rdd", "mapreduce", "a", "z"} {
			g.Counter("c_total", "c", "engine", e).Add(1)
			g.Histogram("h", "h", CountBuckets, "engine", e).Observe(5)
			g.Gauge("g", "g", "engine", e).Set(2)
		}
		return g
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical registries exported different bytes")
	}
}

func TestRegistrySchemaRedeclarationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(g *Registry)
	}{
		{"type", func(g *Registry) {
			g.Counter("m", "h")
			g.Gauge("m", "h")
		}},
		{"labels", func(g *Registry) {
			g.Counter("m", "h", "engine", "rdd")
			g.Counter("m", "h", "node", "0")
		}},
		{"bounds", func(g *Registry) {
			g.Histogram("m", "h", []float64{1, 2})
			g.Histogram("m", "h", []float64{1, 3})
		}},
		{"odd-labels", func(g *Registry) {
			g.Counter("m", "h", "engine")
		}},
		{"unsorted-bounds", func(g *Registry) {
			g.Histogram("m", "h", []float64{2, 1})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("schema violation did not panic")
				}
			}()
			c.fn(NewRegistry())
		})
	}
}

// TestRegistryObserveAllocFree is the hot-path guarantee: once handles exist,
// Observe / Add / Set allocate nothing, so attaching the metrics layer cannot
// change the engines' allocation behaviour.
func TestRegistryObserveAllocFree(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("h", "h", DurationBuckets, "engine", "rdd")
	c := g.Counter("c_total", "c", "engine", "rdd")
	gauge := g.Gauge("g", "g")
	// Fill the sample buffer first so the append path is steady-state too.
	for i := 0; i < histogramSampleCap+1; i++ {
		h.Observe(0.01)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.25)
		c.Add(1)
		gauge.Set(42)
		gauge.Add(-1)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %.1f per run, want 0", allocs)
	}
}

// TestRegistryObserveAllocFreeWhileFilling checks the pre-overflow append
// path as well: the sample buffer is preallocated to its cap, so growing into
// it must not allocate either.
func TestRegistryObserveAllocFreeWhileFilling(t *testing.T) {
	g := NewRegistry()
	h := g.Histogram("h", "h", DurationBuckets)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(float64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("filling observe allocated %.1f per run, want 0", allocs)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var g *Registry
	c := g.Counter("c", "h")
	gauge := g.Gauge("g", "h")
	h := g.Histogram("h", "h", CountBuckets)
	c.Add(1)
	gauge.Set(1)
	gauge.Add(1)
	h.Observe(1)
	if gauge.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil registry handles returned non-zero reads")
	}
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
}

func TestGaugeValue(t *testing.T) {
	g := NewRegistry()
	gauge := g.Gauge("g", "h")
	gauge.Set(10)
	gauge.Add(-3)
	if got := gauge.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	g := NewRegistry()
	c := g.Counter("c_total", "h")
	c.Add(5)
	c.Add(-3)
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "c_total 5") {
		t.Fatalf("negative add not ignored:\n%s", buf.String())
	}
}

func TestHistogramLabelSeriesIndependent(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < 4; i++ {
		g.Histogram("h", "h", CountBuckets, "engine", fmt.Sprint(i%2)).Observe(float64(i + 1))
	}
	a := g.Histogram("h", "h", CountBuckets, "engine", "0")
	b := g.Histogram("h", "h", CountBuckets, "engine", "1")
	if a.Count() != 2 || b.Count() != 2 {
		t.Fatalf("series counts %d/%d, want 2/2", a.Count(), b.Count())
	}
	if a.Sum() != 4 || b.Sum() != 6 {
		t.Fatalf("series sums %v/%v", a.Sum(), b.Sum())
	}
}
