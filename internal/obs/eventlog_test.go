package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEventLogStreamsAndBuffers(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Append(LiveEvent{Event: "worker_register", Worker: 1, Addr: "127.0.0.1:999"})
	l.Append(LiveEvent{Event: "lease_grant", Worker: 1, Phase: "map", Task: 1})

	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("buffered %d events, want 2", len(events))
	}
	if events[0].Event != "worker_register" || events[1].Phase != "map" {
		t.Fatalf("unexpected events %+v", events)
	}
	if events[0].TsMs < 0 {
		t.Errorf("timestamp not stamped: %+v", events[0])
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2", len(lines))
	}
	var ev LiveEvent
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if ev.Event != "lease_grant" || ev.Worker != 1 {
		t.Errorf("decoded %+v", ev)
	}

	var dump bytes.Buffer
	if _, err := l.WriteTo(&dump); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if dump.String() != buf.String() {
		t.Errorf("WriteTo dump differs from stream:\n%s\nvs\n%s", dump.String(), buf.String())
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Append(LiveEvent{Event: "x"}) // must not panic
	if evs := l.Events(); evs != nil {
		t.Errorf("nil log Events = %v", evs)
	}
	if n, err := l.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Errorf("nil log WriteTo = (%d, %v)", n, err)
	}
}

func TestEventLogBounded(t *testing.T) {
	l := NewEventLog(nil)
	for i := 0; i < eventLogCap+10; i++ {
		l.Append(LiveEvent{Event: "hb"})
	}
	if got := len(l.Events()); got != eventLogCap {
		t.Errorf("buffer grew to %d, want cap %d", got, eventLogCap)
	}
	l.mu.Lock()
	dropped := l.dropped
	l.mu.Unlock()
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
}
