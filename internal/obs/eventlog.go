package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// LiveEvent is one line of a live (wall-clock) event journal. The virtual
// journal in journal.go replays a recorded sim run; LiveEvent covers the
// real distributed runtime, where heartbeats, lease grants and worker
// deaths happen in real time and are worth journaling as they occur —
// especially from a worker that is about to be SIGKILLed.
type LiveEvent struct {
	// TsMs is milliseconds since the log was created; stamped by Append
	// when left zero.
	TsMs float64 `json:"ts_ms"`
	// Event names the event kind ("worker_register", "lease_grant",
	// "heartbeat_miss", "task_reassign", ...).
	Event string `json:"event"`
	// Worker is the runtime-assigned worker id (0 when not worker-scoped;
	// worker ids start at 1 so zero always means "none").
	Worker int    `json:"worker,omitempty"`
	Addr   string `json:"addr,omitempty"`
	Job    string `json:"job,omitempty"`
	// Seq is the job sequence number the event belongs to.
	Seq   int    `json:"seq,omitempty"`
	Phase string `json:"phase,omitempty"`
	// Task is the task index within its phase, offset by one so index 0
	// survives omitempty; readers subtract one.
	Task    int    `json:"task,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// EventLog is a bounded, thread-safe, append-only event journal. Events are
// buffered in memory (so a live HTTP endpoint can dump them at any moment)
// and, when the log was created with a writer, streamed to it as JSONL
// line by line — a crash loses at most the line being written. A nil
// *EventLog ignores every call.
type EventLog struct {
	mu      sync.Mutex
	start   time.Time
	w       io.Writer
	enc     *json.Encoder
	events  []LiveEvent
	dropped int64
}

// eventLogCap bounds the in-memory buffer; beyond it events still stream to
// the writer but only a drop counter remains in memory.
const eventLogCap = 1 << 16

// NewEventLog creates an event log starting its clock now. w may be nil to
// keep events in memory only.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{start: time.Now(), w: w}
	if w != nil {
		l.enc = json.NewEncoder(w)
	}
	return l
}

// Append records one event, stamping its timestamp if unset.
func (l *EventLog) Append(ev LiveEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ev.TsMs == 0 {
		ev.TsMs = float64(time.Since(l.start)) / float64(time.Millisecond)
	}
	if len(l.events) < eventLogCap {
		l.events = append(l.events, ev)
	} else {
		l.dropped++
	}
	if l.enc != nil {
		l.enc.Encode(ev) //nolint:errcheck // journaling must never fail the run
	}
}

// Events returns a snapshot of the buffered events.
func (l *EventLog) Events() []LiveEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LiveEvent, len(l.events))
	copy(out, l.events)
	return out
}

// WriteTo dumps the buffered events as JSONL.
func (l *EventLog) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
