package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"yafim/internal/sim"
)

// The drift tests pin every Counters consumer to the struct definition by
// reflection: adding a field without teaching Sub, IsZero, WriteCounters and
// the Prometheus export about it fails here, not in production silence.

// fillCounters returns a Counters value with every field set to a distinct
// non-zero value derived from seed, built by reflection so new fields are
// covered automatically.
func fillCounters(t *testing.T, seed int64) Counters {
	t.Helper()
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(seed + int64(i)*7)
		case reflect.Struct:
			for j := 0; j < f.NumField(); j++ {
				sub := f.Field(j)
				switch sub.Kind() {
				case reflect.Int64:
					sub.SetInt(seed + int64(i)*7 + int64(j))
				case reflect.Float64:
					sub.SetFloat(float64(seed) + float64(i)*7 + float64(j))
				default:
					t.Fatalf("unsupported nested field kind %s in Counters.%s",
						sub.Kind(), v.Type().Field(i).Name)
				}
			}
		default:
			t.Fatalf("unsupported field kind %s for Counters.%s",
				f.Kind(), v.Type().Field(i).Name)
		}
	}
	return c
}

// TestCountersSubCoversEveryField checks, field by field, that Sub subtracts
// every component: a field Sub forgot would come back zero instead of a-b.
func TestCountersSubCoversEveryField(t *testing.T) {
	a := fillCounters(t, 1000)
	b := fillCounters(t, 1)
	d := a.Sub(b)

	va, vb, vd := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(d)
	for i := 0; i < va.NumField(); i++ {
		name := va.Type().Field(i).Name
		switch va.Field(i).Kind() {
		case reflect.Int64:
			want := va.Field(i).Int() - vb.Field(i).Int()
			if got := vd.Field(i).Int(); got != want {
				t.Errorf("Sub dropped Counters.%s: got %d, want %d", name, got, want)
			}
		case reflect.Struct:
			fa, fb, fd := va.Field(i), vb.Field(i), vd.Field(i)
			for j := 0; j < fa.NumField(); j++ {
				sub := fa.Type().Field(j).Name
				switch fa.Field(j).Kind() {
				case reflect.Int64:
					want := fa.Field(j).Int() - fb.Field(j).Int()
					if got := fd.Field(j).Int(); got != want {
						t.Errorf("Sub dropped Counters.%s.%s: got %d, want %d", name, sub, got, want)
					}
				case reflect.Float64:
					want := fa.Field(j).Float() - fb.Field(j).Float()
					if got := fd.Field(j).Float(); got != want {
						t.Errorf("Sub dropped Counters.%s.%s: got %v, want %v", name, sub, got, want)
					}
				}
			}
		}
	}
}

// TestCountersIsZeroSeesEveryField sets one field at a time and checks
// IsZero notices.
func TestCountersIsZeroSeesEveryField(t *testing.T) {
	typ := reflect.TypeOf(Counters{})
	for i := 0; i < typ.NumField(); i++ {
		var c Counters
		f := reflect.ValueOf(&c).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(1)
		case reflect.Struct:
			sub := f.Field(0)
			if sub.Kind() == reflect.Float64 {
				sub.SetFloat(1)
			} else {
				sub.SetInt(1)
			}
		}
		if c.IsZero() {
			t.Errorf("IsZero blind to Counters.%s", typ.Field(i).Name)
		}
	}
	if !(Counters{}).IsZero() {
		t.Error("zero value not zero")
	}
}

// TestWriteCountersCoversEveryField checks the rendered table has exactly one
// row per struct field, keyed by the field's json tag.
func TestWriteCountersCoversEveryField(t *testing.T) {
	c := fillCounters(t, 500)
	var buf bytes.Buffer
	if err := WriteCounters(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	tags := counterTags()
	for _, tag := range tags {
		if !strings.Contains(out, tag) {
			t.Errorf("WriteCounters missing a row for %q", tag)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(tags) {
		t.Errorf("WriteCounters rendered %d rows for %d Counters fields:\n%s",
			len(lines), len(tags), out)
	}
}

// TestCounterMetricsCoversEveryField checks the Prometheus flattening emits
// at least one metric per field (Cost fields expand to one per component),
// with every value carried through.
func TestCounterMetricsCoversEveryField(t *testing.T) {
	c := fillCounters(t, 300)
	metrics := counterMetrics(c)
	byName := map[string]float64{}
	for _, m := range metrics {
		if _, dup := byName[m.name]; dup {
			t.Errorf("duplicate metric name %q", m.name)
		}
		byName[m.name] = m.value
	}

	for _, tag := range counterTags() {
		found := false
		for name := range byName {
			if name == tag || strings.HasPrefix(name, tag+"_") {
				found = true
			}
		}
		if !found {
			t.Errorf("counterMetrics missing field %q", tag)
		}
	}

	// Cost components expand: the wasted_cost field must contribute one
	// metric per sim.Cost field.
	costFields := reflect.TypeOf(sim.Cost{}).NumField()
	expanded := 0
	for name := range byName {
		if strings.HasPrefix(name, "wasted_cost_") {
			expanded++
		}
	}
	if expanded != costFields {
		t.Errorf("wasted_cost expanded to %d metrics, want %d", expanded, costFields)
	}

	// No value may be silently dropped: a filled struct exports no zeros.
	for name, v := range byName {
		if v == 0 {
			t.Errorf("metric %q exported 0 from a fully filled Counters", name)
		}
	}
}

// TestCounterTagsMatchFieldCount pins counterTags to the struct definition.
func TestCounterTagsMatchFieldCount(t *testing.T) {
	tags := counterTags()
	if got, want := len(tags), reflect.TypeOf(Counters{}).NumField(); got != want {
		t.Fatalf("counterTags has %d entries for %d fields", got, want)
	}
	seen := map[string]bool{}
	for _, tag := range tags {
		if seen[tag] {
			t.Errorf("duplicate json tag %q", tag)
		}
		seen[tag] = true
	}
}
