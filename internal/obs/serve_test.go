package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches path from the test server and returns the response and body.
func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, string(body)
}

// TestHandlerEndpoints exercises the serving surface over a real TCP
// listener, the way an operator would scrape it during a run.
func TestHandlerEndpoints(t *testing.T) {
	rec := sampleRecorder()
	rec.ObservePass("rdd", 2, 130)
	srv := httptest.NewServer(Handler(rec, AnalyzeOptions{}))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		resp, body := get(t, srv, "/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
			t.Fatalf("content type = %q", ct)
		}
		checkPrometheusText(t, body)
		for _, want := range []string{
			"yafim_cache_hits 1",
			"yafim_task_duration_seconds_count",
			`yafim_pass_depth{engine="rdd"} 2`,
			"yafim_candidate_set_size_bucket",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	})

	t.Run("diag", func(t *testing.T) {
		resp, body := get(t, srv, "/diag")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		for _, want := range []string{"makespan", "critical path", "stage count"} {
			if !strings.Contains(body, want) {
				t.Errorf("/diag missing %q:\n%s", want, body)
			}
		}
	})

	t.Run("diag.json", func(t *testing.T) {
		resp, body := get(t, srv, "/diag.json")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		var d Diagnosis
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			t.Fatalf("/diag.json is not a Diagnosis: %v", err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("served diagnosis invalid: %v", err)
		}
		if len(d.Stages) != 3 {
			t.Fatalf("served diagnosis has %d stages, want 3", len(d.Stages))
		}
	})

	t.Run("journal", func(t *testing.T) {
		resp, body := get(t, srv, "/journal")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type = %q", ct)
		}
		entries := decodeJournal(t, body)
		if entries[0].Event != "job_start" {
			t.Fatalf("journal starts with %+v", entries[0])
		}
	})

	t.Run("pprof", func(t *testing.T) {
		resp, body := get(t, srv, "/debug/pprof/")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if !strings.Contains(body, "goroutine") {
			t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", body)
		}
	})

	t.Run("index", func(t *testing.T) {
		resp, body := get(t, srv, "/")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		for _, want := range []string{"/metrics", "/diag", "/journal", "/debug/pprof"} {
			if !strings.Contains(body, want) {
				t.Errorf("index missing %q", want)
			}
		}
	})

	t.Run("unknown", func(t *testing.T) {
		resp, _ := get(t, srv, "/no-such-page")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
	})
}

// TestHandlerLiveScrape checks that scraping mid-run observes the open job
// without perturbing the recorder.
func TestHandlerLiveScrape(t *testing.T) {
	rec := New()
	rec.BeginJob("rdd", "collect(L1)")
	rec.AddStage(StageSpan{Name: "count", Makespan: 1e6})
	// Job still open: this is a scrape during the run.
	srv := httptest.NewServer(Handler(rec, AnalyzeOptions{}))
	defer srv.Close()

	_, body := get(t, srv, "/journal")
	entries := decodeJournal(t, body)
	if !entries[0].Open {
		t.Fatalf("live scrape did not mark the in-flight job open: %+v", entries[0])
	}

	_, body = get(t, srv, "/diag")
	if !strings.Contains(body, "count") {
		t.Fatalf("live diagnosis missing in-flight stage:\n%s", body)
	}

	// The scrape must not have closed or mutated the job.
	jobs := rec.Jobs()
	if len(jobs) != 1 || !jobs[0].Open {
		t.Fatalf("scrape perturbed recorder state: %+v", jobs)
	}
}

// TestHandlerFuncSwapsAndNil checks the experiment-runner contract: the
// source is consulted per request, and a nil recorder serves empty documents
// rather than errors.
func TestHandlerFuncSwapsAndNil(t *testing.T) {
	var current *Recorder
	srv := httptest.NewServer(HandlerFunc(func() (*Recorder, AnalyzeOptions) {
		return current, AnalyzeOptions{}
	}))
	defer srv.Close()

	// Before any run: clean empty responses.
	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Fatalf("nil-recorder /metrics = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, srv, "/journal")
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Fatalf("nil-recorder /journal = %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, srv, "/diag")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-recorder /diag = %d", resp.StatusCode)
	}

	// A run starts: the same listener now serves it.
	current = sampleRecorder()
	_, body = get(t, srv, "/metrics")
	if !strings.Contains(body, "yafim_cache_hits 1") {
		t.Fatal("swapped-in recorder not served")
	}
}
