package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace-event export. The output follows the Trace Event Format's
// "JSON object" flavour ({"traceEvents": [...]}) using complete events
// ("ph":"X"), which chrome://tracing and Perfetto load directly.
//
// Layout: one trace "process" per simulated worker node (plus process 0 for
// the driver), one "thread" per core within a node. The driver process shows
// the job and stage spans on two lanes; each node process shows its tasks.
// Timestamps are virtual microseconds from the start of the run; because the
// sim schedule is deterministic, identical runs export identical bytes.

const (
	driverPid   = 0 // trace process id for the driver lanes
	jobLaneTid  = 0 // driver thread for job spans
	stageLane   = 1 // driver thread for stage spans
	nodePidBase = 1 // node n maps to trace process n + nodePidBase
)

// traceEvent is one Trace Event Format record.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace exports every recorded job as Chrome trace-event JSON.
// The virtual timeline is reconstructed by walking jobs in execution order:
// each job occupies [t, t+duration), pays its overhead first, then runs its
// stages back to back; tasks sit inside their stage at the offsets the
// scheduler assigned.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	jobs := r.Jobs()
	var events []traceEvent

	maxNode := -1
	var t time.Duration
	for _, job := range jobs {
		jobStart := t
		jobEvent := traceEvent{
			Name: job.Name, Cat: "job", Ph: "X",
			Ts: micros(jobStart), Dur: micros(job.Duration()),
			Pid: driverPid, Tid: jobLaneTid,
			Args: map[string]any{"engine": job.Engine, "pass": job.Pass},
		}
		if job.Open {
			// A job interrupted mid-flight has no end: emit a begin event
			// with no duration instead of a zero-length complete event, so
			// the trace stays well-formed and viewers render it open-ended.
			jobEvent.Ph = "B"
			jobEvent.Dur = 0
			jobEvent.Args["open"] = true
		}
		events = append(events, jobEvent)
		t += job.Overhead
		for _, st := range job.Stages {
			events = append(events, traceEvent{
				Name: st.Name, Cat: "stage", Ph: "X",
				Ts: micros(t), Dur: micros(st.Makespan),
				Pid: driverPid, Tid: stageLane,
				Args: map[string]any{
					"engine": job.Engine, "pass": job.Pass,
					"tasks": len(st.Tasks), "total_cost": st.Total.String(),
				},
			})
			body := t + st.Overhead
			for _, task := range st.Tasks {
				if task.Node > maxNode {
					maxNode = task.Node
				}
				args := map[string]any{
					"stage": st.Name, "pass": job.Pass,
					"cpu_ops":    task.Cost.CPUOps,
					"disk_read":  task.Cost.DiskRead,
					"disk_write": task.Cost.DiskWrite,
					"net":        task.Cost.Net,
				}
				if task.Attempts > 1 {
					args["attempts"] = task.Attempts
				}
				if task.Remote {
					args["remote_read"] = true
				}
				events = append(events, traceEvent{
					Name: fmt.Sprintf("%s[%d]", st.Name, task.Index), Cat: "task", Ph: "X",
					Ts: micros(body + task.Start), Dur: micros(task.Duration()),
					Pid: task.Node + nodePidBase, Tid: task.Core,
					Args: args,
				})
			}
			t += st.Makespan
		}
	}

	// Metadata names the driver and node processes so Perfetto groups lanes
	// meaningfully. Emitted after scanning so the node count is known.
	meta := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: driverPid, Tid: 0,
			Args: map[string]any{"name": "driver"}},
		{Name: "thread_name", Ph: "M", Pid: driverPid, Tid: jobLaneTid,
			Args: map[string]any{"name": "jobs"}},
		{Name: "thread_name", Ph: "M", Pid: driverPid, Tid: stageLane,
			Args: map[string]any{"name": "stages"}},
	}
	for n := 0; n <= maxNode; n++ {
		meta = append(meta, traceEvent{Name: "process_name", Ph: "M",
			Pid: n + nodePidBase, Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("node-%d", n)}})
	}
	events = append(meta, events...)

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
