package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The metrics registry: typed counter, gauge, and histogram families with
// deterministic fixed bucket bounds, rendered in the Prometheus text
// exposition format. It complements the flat Counters snapshot with
// *distributions* — per-task durations, per-partition output sizes,
// candidate-set sizes per pass — which is what the skew and critical-path
// analysis needs and a single total cannot provide.
//
// Design constraints, in order:
//
//   - Deterministic: bucket bounds are fixed at construction, never adaptive,
//     so two identical runs export byte-identical metric text.
//   - Exact where it matters: each histogram retains raw samples up to a
//     fixed cap, so quantiles over small populations (every stage table in
//     this repo) are exact; beyond the cap it degrades to standard
//     bucket-boundary interpolation.
//   - Allocation-free observation: once a family and series exist, Observe /
//     Add / Set take a mutex and touch preallocated memory only, so metrics
//     never perturb the allocation behaviour of the Pass 2 hot path.
//
// A nil *Registry (and nil metric handles) is valid and records nothing,
// mirroring the nil-Recorder convention.

// Fixed deterministic bucket bounds shared by the standard instruments.
var (
	// DurationBuckets covers virtual task/stage durations in seconds, from
	// sub-millisecond Spark-style tasks to multi-minute Hadoop stages.
	DurationBuckets = []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120, 300,
	}
	// SizeBuckets covers byte volumes (partition outputs, shuffle payloads).
	SizeBuckets = []float64{
		256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
	}
	// CountBuckets covers item counts (rows per partition, candidates per
	// pass).
	CountBuckets = []float64{
		1, 2, 5, 10, 25, 50, 100, 250, 500,
		1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	}
)

// histogramSampleCap bounds the raw samples a histogram series retains for
// exact quantiles. Small enough to be cheap (32 KiB per series), large
// enough that every per-stage and per-pass distribution in this repo stays
// exact.
const histogramSampleCap = 4096

// Registry holds metric families keyed by name. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed type, label schema, and (for
// histograms) bucket bounds. Series are the per-label-value instances.
type family struct {
	name       string
	help       string
	typ        string // "counter", "gauge", or "histogram"
	labelNames []string
	bounds     []float64
	series     map[string]*series
}

// series is one (family, label values) instance.
type series struct {
	labels  []string  // values aligned with family.labelNames
	value   float64   // counter / gauge
	counts  []uint64  // histogram: per-bucket (non-cumulative), +1 overflow
	sum     float64   // histogram
	count   uint64    // histogram
	samples []float64 // histogram: raw observations up to histogramSampleCap
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// get returns the series for (name, labels...), creating family and series
// as needed. labels alternate key, value. Inconsistent reuse of a family
// name (different type, label schema, or bounds) panics: it is a programmer
// error that would silently corrupt the export.
func (g *Registry) get(name, help, typ string, bounds []float64, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %q", name, labels))
	}
	names := make([]string, 0, len(labels)/2)
	values := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		names = append(names, labels[i])
		values = append(values, labels[i+1])
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	f := g.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, typ: typ,
			labelNames: names, bounds: bounds,
			series: map[string]*series{},
		}
		g.families[name] = f
	} else if f.typ != typ || !equalStrings(f.labelNames, names) || !equalFloats(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: metric %s redeclared with a different schema", name))
	}
	key := strings.Join(values, "\xff")
	s := f.series[key]
	if s == nil {
		s = &series{labels: values}
		if typ == "histogram" {
			s.counts = make([]uint64, len(bounds)+1)
			s.samples = make([]float64, 0, histogramSampleCap)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name and the given label pairs,
// creating it at zero if absent.
func (g *Registry) Counter(name, help string, labels ...string) *Counter {
	if g == nil {
		return nil
	}
	return &Counter{g: g, s: g.get(name, help, "counter", nil, labels)}
}

// Gauge returns the gauge series for name and the given label pairs.
func (g *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if g == nil {
		return nil
	}
	return &Gauge{g: g, s: g.get(name, help, "gauge", nil, labels)}
}

// Histogram returns the histogram series for name with the given fixed
// bucket bounds (ascending) and label pairs.
func (g *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if g == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %s: bucket bounds not ascending", name))
		}
	}
	s := g.get(name, help, "histogram", bounds, labels)
	g.mu.Lock()
	f := g.families[name]
	g.mu.Unlock()
	return &Histogram{g: g, f: f, s: s}
}

// Counter is a monotonically increasing series.
type Counter struct {
	g *Registry
	s *series
}

// Add increases the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.g.mu.Lock()
	c.s.value += v
	c.g.mu.Unlock()
}

// Value returns the current counter value.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.g.mu.Lock()
	defer c.g.mu.Unlock()
	return c.s.value
}

// Gauge is a series that can move in both directions.
type Gauge struct {
	g *Registry
	s *series
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.g.mu.Lock()
	g.s.value = v
	g.g.mu.Unlock()
}

// Add adjusts the gauge by the signed delta v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.g.mu.Lock()
	g.s.value += v
	g.g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.g.mu.Lock()
	defer g.g.mu.Unlock()
	return g.s.value
}

// Histogram is a distribution series with fixed buckets and exact small-n
// quantiles.
type Histogram struct {
	g *Registry
	f *family
	s *series
}

// Observe records one sample. Allocation-free: the bucket array and the
// sample buffer are preallocated at construction.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.g.mu.Lock()
	s := h.s
	i := sort.SearchFloat64s(h.f.bounds, v) // first bound >= v
	s.counts[i]++
	s.sum += v
	s.count++
	if len(s.samples) < cap(s.samples) {
		s.samples = append(s.samples, v)
	}
	h.g.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.g.mu.Lock()
	defer h.g.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.g.mu.Lock()
	defer h.g.mu.Unlock()
	return h.s.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution. While every observation is still retained in the sample
// buffer the estimate is exact (nearest-rank); once the buffer has
// overflowed it falls back to linear interpolation within the bucket that
// holds the rank.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.g.mu.Lock()
	defer h.g.mu.Unlock()
	s := h.s
	if s.count == 0 {
		return 0
	}
	if uint64(len(s.samples)) == s.count {
		sorted := append([]float64(nil), s.samples...)
		sort.Float64s(sorted)
		rank := int(math.Ceil(q*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return sorted[rank]
	}
	f := h.f
	rank := q * float64(s.count)
	var cum float64
	for i, c := range s.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo, hi := float64(0), f.bounds[len(f.bounds)-1]
		if i > 0 {
			lo = f.bounds[i-1]
		}
		if i < len(f.bounds) {
			hi = f.bounds[i]
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return f.bounds[len(f.bounds)-1]
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), sorted by family name and series labels so that
// identical registries export identical bytes.
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.families))
	for name := range g.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := g.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	if f.typ != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labelNames, s.labels, "", ""), formatFloat(s.value))
		return err
	}
	var cum uint64
	for i, bound := range f.bounds {
		cum += s.counts[i]
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labelNames, s.labels, "le", le), cum); err != nil {
			return err
		}
	}
	cum += s.counts[len(f.bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labelNames, s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(f.labelNames, s.labels, "", ""), formatFloat(s.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.name, labelString(f.labelNames, s.labels, "", ""), s.count)
	return err
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le label); empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
