package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// stragglerFactor flags a stage as skewed when its slowest task ran longer
// than this multiple of the mean task time — the usual first question a
// Spark Web UI stage table answers.
const stragglerFactor = 2.0

// StageStats summarises one stage's task-time distribution.
type StageStats struct {
	Job       string
	Engine    string
	Pass      int
	Stage     string
	Tasks     int
	Retries   int // failed attempts across the stage's tasks
	Makespan  time.Duration
	MinTask   time.Duration
	MaxTask   time.Duration
	MeanTask  time.Duration
	Straggler bool // MaxTask > stragglerFactor * MeanTask
}

// StageTable flattens the recorded jobs into per-stage skew statistics, in
// execution order.
func StageTable(r *Recorder) []StageStats {
	var out []StageStats
	for _, job := range r.Jobs() {
		for _, st := range job.Stages {
			row := StageStats{
				Job: job.Name, Engine: job.Engine, Pass: job.Pass,
				Stage: st.Name, Tasks: len(st.Tasks), Makespan: st.Makespan,
			}
			var sum time.Duration
			for i, task := range st.Tasks {
				d := task.Duration()
				sum += d
				if i == 0 || d < row.MinTask {
					row.MinTask = d
				}
				if d > row.MaxTask {
					row.MaxTask = d
				}
				if task.Attempts > 1 {
					row.Retries += task.Attempts - 1
				}
			}
			if len(st.Tasks) > 0 {
				row.MeanTask = sum / time.Duration(len(st.Tasks))
				row.Straggler = float64(row.MaxTask) > stragglerFactor*float64(row.MeanTask)
			}
			out = append(out, row)
		}
	}
	return out
}

// maxNameWidth caps the job and stage name columns so one generated name
// (e.g. a deep lineage string) cannot blow the whole table's alignment.
const maxNameWidth = 40

// truncName shortens s to maxNameWidth runes, marking the cut with an
// ellipsis.
func truncName(s string) string {
	runes := []rune(s)
	if len(runes) <= maxNameWidth {
		return s
	}
	return string(runes[:maxNameWidth-1]) + "…"
}

// WriteStageTable renders the Spark-Web-UI-style stage table: one row per
// executed stage with task count, makespan, and the min/mean/max task-time
// spread, flagging straggler-skewed stages.
func WriteStageTable(w io.Writer, r *Recorder) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\tpass\tstage\ttasks\tretries\tmakespan\tmin\tmean\tmax\tskew")
	for _, row := range StageTable(r) {
		skew := ""
		if row.Straggler {
			skew = "STRAGGLER"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%v\t%v\t%v\t%v\t%s\n",
			truncName(row.Job), row.Pass, truncName(row.Stage), row.Tasks, row.Retries,
			row.Makespan.Round(time.Microsecond),
			row.MinTask.Round(time.Microsecond),
			row.MeanTask.Round(time.Microsecond),
			row.MaxTask.Round(time.Microsecond),
			skew)
	}
	return tw.Flush()
}

// WriteCounters renders the counter snapshot as an aligned key/value table.
func WriteCounters(w io.Writer, c Counters) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rows := []struct {
		name  string
		value any
	}{
		{"cache_hits", c.CacheHits},
		{"cache_misses", c.CacheMisses},
		{"cache_evictions", c.CacheEvictions},
		{"lineage_recomputes", c.LineageRecomputes},
		{"broadcast_bytes", c.BroadcastBytes},
		{"naive_ship_bytes", c.NaiveShipBytes},
		{"shuffle_bytes", c.ShuffleBytes},
		{"dfs_read_bytes", c.DFSReadBytes},
		{"dfs_write_bytes", c.DFSWriteBytes},
		{"shuffle_resident_bytes", c.ShuffleResidentBytes},
		{"shuffle_frees", c.ShuffleFrees},
		{"map_reruns", c.MapReruns},
		{"task_retries", c.TaskRetries},
		{"wasted_cost", c.WastedCost},
		{"cancellations", c.Cancellations},
		{"task_panics", c.TaskPanics},
		{"speculative_launches", c.SpeculativeLaunches},
		{"speculative_wins", c.SpeculativeWins},
		{"nodes_blacklisted", c.NodesBlacklisted},
		{"fetch_failures", c.FetchFailures},
		{"stages_rerun", c.StagesRerun},
		{"re_replicated_blocks", c.ReReplicatedBlocks},
		{"block_read_retries", c.BlockReadRetries},
		{"locality_local", c.LocalityLocal},
		{"locality_remote", c.LocalityRemote},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\n", r.name, r.value)
	}
	return tw.Flush()
}
