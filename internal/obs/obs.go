// Package obs is the engine-wide telemetry subsystem: a Recorder that both
// execution engines (the RDD engine and the MapReduce engine) emit into
// while they run.
//
// A Recorder collects two kinds of data:
//
//   - Spans — every job, stage and individual task, with its position on the
//     *virtual* timeline derived from the sim makespan schedule. Because the
//     schedule is deterministic, two identical runs produce byte-identical
//     traces.
//   - Counters — runtime totals the performance analysis needs: cache
//     hits/misses/evictions, lineage recomputations, broadcast versus naive
//     shipping bytes, shuffle bytes, DFS I/O bytes, task retries with their
//     wasted cost, and locality-preference outcomes.
//
// A nil *Recorder is valid everywhere and records nothing: every method is
// nil-safe, so the engines carry a recorder pointer unconditionally and the
// un-instrumented path stays allocation-free.
package obs

import (
	"sync"
	"time"

	"yafim/internal/sim"
)

// Counters is a snapshot of every runtime counter. The zero value is a valid
// empty snapshot; Sub produces per-interval deltas (e.g. per mining pass).
type Counters struct {
	// RDD cache behaviour (§IV-B: "held in the memory as much as possible").
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheEvictions    int64 `json:"cache_evictions"`
	LineageRecomputes int64 `json:"lineage_recomputes"`

	// Data distribution (§IV-C: broadcast variables vs naive shipping).
	BroadcastBytes int64 `json:"broadcast_bytes"`
	NaiveShipBytes int64 `json:"naive_ship_bytes"`

	// Data movement.
	ShuffleBytes  int64 `json:"shuffle_bytes"`
	DFSReadBytes  int64 `json:"dfs_read_bytes"`
	DFSWriteBytes int64 `json:"dfs_write_bytes"`

	// Shuffle lifecycle: map-output bytes currently resident in executor
	// memory (a gauge — commits add, frees/node losses subtract), map-output
	// slices reclaimed by Unpersist/FreeShuffles/node loss, and map tasks
	// re-executed to regenerate output a node loss destroyed.
	ShuffleResidentBytes int64 `json:"shuffle_resident_bytes"`
	ShuffleFrees         int64 `json:"shuffle_frees"`
	MapReruns            int64 `json:"map_reruns"`

	// Fault tolerance: failed task attempts and the virtual work they wasted.
	TaskRetries int64    `json:"task_retries"`
	WastedCost  sim.Cost `json:"wasted_cost"`

	// Execution hardening: stages aborted by cooperative cancellation (a
	// context cancel, a deadline, or a signal) and user-closure panics
	// recovered into typed task errors instead of killing the process.
	Cancellations int64 `json:"cancellations"`
	TaskPanics    int64 `json:"task_panics"`

	// Chaos mitigation: speculative execution, node blacklisting, shuffle
	// fetch recovery, and DFS block repair.
	SpeculativeLaunches int64 `json:"speculative_launches"`
	SpeculativeWins     int64 `json:"speculative_wins"`
	NodesBlacklisted    int64 `json:"nodes_blacklisted"`
	FetchFailures       int64 `json:"fetch_failures"`
	StagesRerun         int64 `json:"stages_rerun"`
	ReReplicatedBlocks  int64 `json:"re_replicated_blocks"`
	BlockReadRetries    int64 `json:"block_read_retries"`

	// Locality-aware scheduling: tasks with a preference that ran on a
	// preferred node versus tasks that had to read their input remotely.
	LocalityLocal  int64 `json:"locality_local"`
	LocalityRemote int64 `json:"locality_remote"`
}

// Sub returns the component-wise difference c - d, used to attribute counter
// activity to an interval bracketed by two snapshots.
func (c Counters) Sub(d Counters) Counters {
	return Counters{
		CacheHits:         c.CacheHits - d.CacheHits,
		CacheMisses:       c.CacheMisses - d.CacheMisses,
		CacheEvictions:    c.CacheEvictions - d.CacheEvictions,
		LineageRecomputes: c.LineageRecomputes - d.LineageRecomputes,
		BroadcastBytes:    c.BroadcastBytes - d.BroadcastBytes,
		NaiveShipBytes:    c.NaiveShipBytes - d.NaiveShipBytes,
		ShuffleBytes:      c.ShuffleBytes - d.ShuffleBytes,
		DFSReadBytes:      c.DFSReadBytes - d.DFSReadBytes,
		DFSWriteBytes:     c.DFSWriteBytes - d.DFSWriteBytes,

		ShuffleResidentBytes: c.ShuffleResidentBytes - d.ShuffleResidentBytes,
		ShuffleFrees:         c.ShuffleFrees - d.ShuffleFrees,
		MapReruns:            c.MapReruns - d.MapReruns,

		TaskRetries:   c.TaskRetries - d.TaskRetries,
		WastedCost:    c.WastedCost.Sub(d.WastedCost),
		Cancellations: c.Cancellations - d.Cancellations,
		TaskPanics:    c.TaskPanics - d.TaskPanics,

		SpeculativeLaunches: c.SpeculativeLaunches - d.SpeculativeLaunches,
		SpeculativeWins:     c.SpeculativeWins - d.SpeculativeWins,
		NodesBlacklisted:    c.NodesBlacklisted - d.NodesBlacklisted,
		FetchFailures:       c.FetchFailures - d.FetchFailures,
		StagesRerun:         c.StagesRerun - d.StagesRerun,
		ReReplicatedBlocks:  c.ReReplicatedBlocks - d.ReReplicatedBlocks,
		BlockReadRetries:    c.BlockReadRetries - d.BlockReadRetries,

		LocalityLocal:  c.LocalityLocal - d.LocalityLocal,
		LocalityRemote: c.LocalityRemote - d.LocalityRemote,
	}
}

// IsZero reports whether no counter recorded any activity.
func (c Counters) IsZero() bool { return c == (Counters{}) }

// TaskSpan is one executed task inside a stage: where the deterministic
// scheduler placed it and when it ran, relative to the start of the stage
// body (i.e. after the stage's fixed scheduling overhead).
type TaskSpan struct {
	Index    int           `json:"index"`    // task index within the stage
	Node     int           `json:"node"`     // simulated node the task ran on
	Core     int           `json:"core"`     // core within that node
	Start    time.Duration `json:"start"`    // offset from stage-body start
	End      time.Duration `json:"end"`      // offset from stage-body start
	Attempts int           `json:"attempts"` // 1 = first attempt succeeded
	Remote   bool          `json:"remote"`   // input read over the network
	Cost     sim.Cost      `json:"cost"`     // metered resource demand
}

// Duration returns the task's virtual service time.
func (t TaskSpan) Duration() time.Duration { return t.End - t.Start }

// StageSpan is one executed stage with its task schedule.
type StageSpan struct {
	Name     string        `json:"name"`
	Overhead time.Duration `json:"overhead"` // fixed scheduling cost
	Makespan time.Duration `json:"makespan"` // overhead + schedule length
	Total    sim.Cost      `json:"total"`    // summed task cost
	Tasks    []TaskSpan    `json:"tasks"`
}

// SpanFromSchedule converts one scheduled stage — the report plus the
// per-task placements the deterministic scheduler produced — into a
// StageSpan. costs and attempts are indexed like the stage's tasks; missing
// entries default to a zero cost and a single attempt.
func SpanFromSchedule(rep sim.StageReport, overhead time.Duration,
	placements []sim.TaskPlacement, costs []sim.Cost, attempts []int) StageSpan {
	span := StageSpan{
		Name:     rep.Name,
		Overhead: overhead,
		Makespan: rep.Makespan,
		Total:    rep.Total,
		Tasks:    make([]TaskSpan, len(placements)),
	}
	for i, pl := range placements {
		t := TaskSpan{
			Index: pl.Task, Node: pl.Node, Core: pl.Core,
			Start: pl.Start, End: pl.End, Attempts: 1, Remote: pl.Remote,
		}
		if i < len(costs) {
			t.Cost = costs[i]
		}
		if i < len(attempts) && attempts[i] > 0 {
			t.Attempts = attempts[i]
		}
		span.Tasks[i] = t
	}
	return span
}

// JobSpan is one executed job: an RDD action or one MapReduce job.
type JobSpan struct {
	Engine   string        `json:"engine"` // "rdd" or "mapreduce"
	Name     string        `json:"name"`
	Pass     int           `json:"pass"`     // mining pass k (0 = outside any pass)
	Overhead time.Duration `json:"overhead"` // startup time before the first stage
	Stages   []StageSpan   `json:"stages"`
	// Open marks a job snapshot taken while the job was still running (a
	// live scrape, or a partial flush after an interrupt): its Overhead is
	// unknown and more stages may follow.
	Open bool `json:"open,omitempty"`
}

// Duration returns the job's total virtual time, matching sim.JobReport:
// overhead plus the sum of sequential stage makespans.
func (j *JobSpan) Duration() time.Duration {
	d := j.Overhead
	for _, s := range j.Stages {
		d += s.Makespan
	}
	return d
}

// Recorder accumulates spans and counters from one run. It is safe for
// concurrent use: tasks on worker goroutines increment counters while the
// driver opens and closes jobs. All methods are nil-safe; a nil *Recorder
// is the disabled, zero-overhead configuration.
type Recorder struct {
	mu       sync.Mutex
	counters Counters
	jobs     []JobSpan
	cur      *JobSpan
	pass     int
	reg      *Registry
	events   []Event
}

// Event is one discrete lifecycle occurrence outside the span tree — shuffle
// state reclaimed at a pass boundary, or map output dropped with a lost node.
// Job anchors the event on the virtual timeline: it is the number of jobs
// already closed when the event fired, so replay tools order events between
// job i-1 finishing and job i starting.
type Event struct {
	Job    int    `json:"job"`
	Kind   string `json:"kind"` // "shuffle_free" or "shuffle_drop"
	Name   string `json:"name"` // shuffle (stage) name
	Slices int64  `json:"slices"`
	Bytes  int64  `json:"bytes"`
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether telemetry is being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// SetPass tags subsequently recorded jobs with mining pass k, attributing
// them to one level of the candidate lattice.
func (r *Recorder) SetPass(k int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.pass = k
	r.mu.Unlock()
}

// BeginJob opens a job span. Drivers run jobs sequentially, so at most one
// job is open per recorder at a time; an unterminated previous job is closed
// implicitly.
func (r *Recorder) BeginJob(engine, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.jobs = append(r.jobs, *r.cur)
	}
	r.cur = &JobSpan{Engine: engine, Name: name, Pass: r.pass}
}

// AddStage appends a completed stage to the open job. A stage recorded
// outside any job is attached to a synthetic job of the same name. Each
// task's scheduled duration also feeds the per-engine duration histogram.
func (r *Recorder) AddStage(s StageSpan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.cur = &JobSpan{Engine: "unknown", Name: s.Name, Pass: r.pass}
	}
	r.cur.Stages = append(r.cur.Stages, s)
	if len(s.Tasks) > 0 {
		reg := r.metricsLocked()
		engine := r.cur.Engine
		h := reg.Histogram("yafim_task_duration_seconds",
			"Virtual duration of each scheduled task attempt interval.",
			DurationBuckets, "engine", engine)
		for _, t := range s.Tasks {
			h.Observe(t.Duration().Seconds())
		}
		reg.Counter("yafim_tasks_total",
			"Tasks scheduled, by engine.", "engine", engine).
			Add(float64(len(s.Tasks)))
	}
}

// EndJob closes the open job span, recording its final startup/driver
// overhead (known only at job end, e.g. naive-shipping uplink time).
func (r *Recorder) EndJob(overhead time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return
	}
	r.cur.Overhead = overhead
	r.jobs = append(r.jobs, *r.cur)
	r.cur = nil
}

// Jobs returns a copy of every recorded job span, in execution order. A job
// still running is included as a trailing snapshot with Open set, so partial
// flushes (an interrupt mid-job) and live scrapes see the stages recorded so
// far instead of silently losing the in-flight job.
func (r *Recorder) Jobs() []JobSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobSpan, len(r.jobs), len(r.jobs)+1)
	copy(out, r.jobs)
	if r.cur != nil {
		open := *r.cur
		open.Open = true
		open.Stages = append([]StageSpan(nil), r.cur.Stages...)
		out = append(out, open)
	}
	return out
}

// Metrics returns the recorder's metrics registry, creating it on first use.
// Nil recorders return a nil registry, on which every operation is a no-op.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metricsLocked()
}

// metricsLocked lazily creates the registry; callers hold r.mu. Lock order
// is always Recorder.mu before Registry.mu, never the reverse.
func (r *Recorder) metricsLocked() *Registry {
	if r.reg == nil {
		r.reg = NewRegistry()
	}
	return r.reg
}

// AddEvent records one lifecycle event, anchored after the most recently
// closed job.
func (r *Recorder) AddEvent(kind, name string, slices, bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{
		Job: len(r.jobs), Kind: kind, Name: name, Slices: slices, Bytes: bytes,
	})
	r.mu.Unlock()
}

// Events returns a copy of the recorded lifecycle events, in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ObservePass records the shape of one mining pass: the lattice depth k the
// engine has reached and the candidate-set size it is about to count. This
// is the per-pass workload signal the data-structure study (which kernel
// wins depends on candidate count and depth) needs from production runs.
func (r *Recorder) ObservePass(engine string, k, candidates int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	reg := r.metricsLocked()
	reg.Gauge("yafim_pass_depth",
		"Deepest mining pass the engine has started.", "engine", engine).
		Set(float64(k))
	reg.Histogram("yafim_candidate_set_size",
		"Candidate itemsets generated per mining pass.",
		CountBuckets, "engine", engine).
		Observe(float64(candidates))
	reg.Counter("yafim_candidates_total",
		"Candidate itemsets generated across all passes.", "engine", engine).
		Add(float64(candidates))
}

// ObservePartitionOutput records the output volume of one task's partition
// (rows emitted and their serialized bytes) — the raw material of the
// per-stage skew analysis.
func (r *Recorder) ObservePartitionOutput(engine, stage string, rows int, bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	reg := r.metricsLocked()
	reg.Histogram("yafim_partition_output_rows",
		"Rows emitted per task partition.", CountBuckets, "engine", engine).
		Observe(float64(rows))
	reg.Histogram("yafim_partition_output_bytes",
		"Bytes emitted per task partition.", SizeBuckets, "engine", engine).
		Observe(float64(bytes))
	// Stage names are low-cardinality here (one per pass and phase), so a
	// per-stage total is affordable and locates skew without the span tree.
	reg.Counter("yafim_stage_output_rows_total",
		"Rows emitted per stage across all its partitions.",
		"engine", engine, "stage", stage).
		Add(float64(rows))
}

// Counters returns a snapshot of the counter totals.
func (r *Recorder) Counters() Counters {
	if r == nil {
		return Counters{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// Counter mutators. Each is nil-safe and cheap enough for task hot paths.

// AddCacheHit records one cached-partition reuse.
func (r *Recorder) AddCacheHit() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.CacheHits++
	r.mu.Unlock()
}

// AddCacheMiss records one lookup of a cache-enabled partition that was not
// resident.
func (r *Recorder) AddCacheMiss() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.CacheMisses++
	r.mu.Unlock()
}

// AddEvictions records n partitions dropped from executor memory (LRU
// pressure, node loss, or explicit cache drops).
func (r *Recorder) AddEvictions(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.CacheEvictions += n
	r.mu.Unlock()
}

// AddRecomputes records n partition computations that repeated work already
// done earlier in the run — the cost of a missing or evicted cache entry.
func (r *Recorder) AddRecomputes(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.LineageRecomputes += n
	r.mu.Unlock()
}

// AddBroadcastBytes records payload distributed via broadcast variables.
func (r *Recorder) AddBroadcastBytes(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.BroadcastBytes += n
	r.mu.Unlock()
}

// AddNaiveShipBytes records payload shipped per-task through the driver
// under the naive (no-broadcast) configuration.
func (r *Recorder) AddNaiveShipBytes(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.NaiveShipBytes += n
	r.mu.Unlock()
}

// AddShuffleBytes records bytes fetched across the network by reduce-side
// shuffle reads.
func (r *Recorder) AddShuffleBytes(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.ShuffleBytes += n
	r.mu.Unlock()
}

// AddShuffleResident adjusts the shuffle-resident-bytes gauge by the signed
// delta n: positive when a map task's output is committed to executor
// memory, negative when it is freed, invalidated, or lost with a node. The
// running level also feeds the registry: a live gauge plus a histogram of
// the levels seen after each change, i.e. resident bytes over time.
func (r *Recorder) AddShuffleResident(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.ShuffleResidentBytes += n
	level := r.counters.ShuffleResidentBytes
	reg := r.metricsLocked()
	r.mu.Unlock()
	reg.Gauge("yafim_shuffle_resident_bytes_live",
		"Map-output bytes currently resident in executor memory.").
		Set(float64(level))
	reg.Histogram("yafim_shuffle_resident_bytes_levels",
		"Resident shuffle byte levels observed after each commit or free.",
		SizeBuckets).
		Observe(float64(level))
}

// AddShuffleFrees records n map-output slices reclaimed (Unpersist, the
// facade's pass-boundary free, Context.Close, or a node loss).
func (r *Recorder) AddShuffleFrees(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.ShuffleFrees += n
	r.mu.Unlock()
}

// AddMapReruns records n map tasks re-executed from lineage to regenerate
// shuffle output destroyed by a node loss.
func (r *Recorder) AddMapReruns(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.MapReruns += n
	r.mu.Unlock()
}

// AddDFSRead records bytes served by the distributed file system.
func (r *Recorder) AddDFSRead(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.DFSReadBytes += n
	r.mu.Unlock()
}

// AddDFSWrite records bytes ingested by the distributed file system,
// including replication.
func (r *Recorder) AddDFSWrite(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.DFSWriteBytes += n
	r.mu.Unlock()
}

// AddRetries records n failed task attempts and the virtual cost their
// discarded work burned.
func (r *Recorder) AddRetries(n int64, wasted sim.Cost) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.TaskRetries += n
	r.counters.WastedCost = r.counters.WastedCost.Add(wasted)
	r.mu.Unlock()
}

// AddCancellations records n stages aborted by cooperative cancellation.
func (r *Recorder) AddCancellations(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.Cancellations += n
	r.mu.Unlock()
}

// AddTaskPanics records n task attempts that panicked in a user closure and
// were recovered into typed task errors by the worker.
func (r *Recorder) AddTaskPanics(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.TaskPanics += n
	r.mu.Unlock()
}

// AddLocality records the placement outcome of tasks that carried a
// locality preference: local ran on a preferred node, remote paid a network
// read instead.
func (r *Recorder) AddLocality(local, remote int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.LocalityLocal += local
	r.counters.LocalityRemote += remote
	r.mu.Unlock()
}

// AddSpeculation records one stage's speculative-execution outcome: backup
// copies launched and backups that beat their original attempt.
func (r *Recorder) AddSpeculation(launched, won int64) {
	if r == nil || (launched == 0 && won == 0) {
		return
	}
	r.mu.Lock()
	r.counters.SpeculativeLaunches += launched
	r.counters.SpeculativeWins += won
	r.mu.Unlock()
}

// AddBlacklistings records n nodes entering a blacklist window after
// repeated task failures.
func (r *Recorder) AddBlacklistings(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.NodesBlacklisted += n
	r.mu.Unlock()
}

// AddFetchFailure records one shuffle fetch that found a map output missing
// and triggered parent re-execution.
func (r *Recorder) AddFetchFailure() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.FetchFailures++
	r.mu.Unlock()
}

// AddStageRerun records one stage (or stage fragment) re-executed to
// regenerate lost intermediate data.
func (r *Recorder) AddStageRerun() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.StagesRerun++
	r.mu.Unlock()
}

// AddReReplicatedBlocks records n DFS blocks whose replication factor was
// restored after a node loss.
func (r *Recorder) AddReReplicatedBlocks(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.counters.ReReplicatedBlocks += n
	r.mu.Unlock()
}

// AddBlockReadRetry records one DFS block read that failed on its first
// replica and was served by another.
func (r *Recorder) AddBlockReadRetry() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.BlockReadRetries++
	r.mu.Unlock()
}
