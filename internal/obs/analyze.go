package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"yafim/internal/cluster"
	"yafim/internal/sim"
)

// The analyzer turns a recorded run into a diagnosis: which spans the total
// virtual time is actually waiting on (the critical path), which stages are
// skewed and why (hot partitions versus injected stragglers), and where the
// hot partitions live. It consumes only the span tree — it never touches the
// ledger or the schedule — so analysis can run during or after a run without
// perturbing a single metered byte.

// AnalyzeOptions tunes a diagnosis.
type AnalyzeOptions struct {
	// Cluster, when set, lets the straggler analysis compare each task's
	// scheduled duration against the duration its metered cost predicts,
	// separating environment-slowed tasks from genuinely heavy ones. Without
	// it the analysis falls back to comparing cost shares.
	Cluster *cluster.Config
	// TopK bounds the hot-partition list per stage (default 3).
	TopK int
	// StragglerFactor flags a task as a straggler when it ran longer than
	// this multiple of the stage's median task time (default 2).
	StragglerFactor float64
	// SlowdownFactor attributes a straggler to its environment when its
	// duration exceeds this multiple of its cost-predicted duration
	// (default 1.5).
	SlowdownFactor float64
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = stragglerFactor
	}
	if o.SlowdownFactor <= 0 {
		o.SlowdownFactor = 1.5
	}
	return o
}

// Straggler causes.
const (
	// CauseEnvironment: the task ran far longer than its metered cost
	// predicts — a slowed node (chaos-injected straggler), not heavy data.
	CauseEnvironment = "environment"
	// CauseRetries: the task's duration includes failed attempts relaunching.
	CauseRetries = "retries"
	// CauseDataSkew: the task really did carry more work — a hot partition.
	CauseDataSkew = "data-skew"
)

// CriticalStep is one segment of the run's critical path. Because jobs are
// sequential and stages within a job are synchronous barriers, the critical
// path is the chain job-overhead -> per-stage slowest chain, and the sum of
// step durations equals the run's makespan exactly.
type CriticalStep struct {
	Job      string        `json:"job"`
	Engine   string        `json:"engine"`
	Pass     int           `json:"pass"`
	Kind     string        `json:"kind"` // "job-overhead" or "stage"
	Stage    string        `json:"stage,omitempty"`
	Duration time.Duration `json:"duration"`
	// Task identifies the last-finishing task that held the stage barrier
	// open (-1 for overhead steps or stages with no recorded tasks).
	Task int `json:"task"`
	Node int `json:"node"`
}

// HotPartition is one of a stage's heaviest tasks.
type HotPartition struct {
	Task     int           `json:"task"`
	Node     int           `json:"node"`
	Duration time.Duration `json:"duration"`
	// Share is the fraction of the stage's summed task time this task used.
	Share float64 `json:"share"`
}

// StragglerDiag is one flagged straggler task with its attributed cause.
type StragglerDiag struct {
	Task     int           `json:"task"`
	Node     int           `json:"node"`
	Duration time.Duration `json:"duration"`
	// Expected is the cost-predicted duration (0 when no cluster config was
	// supplied).
	Expected time.Duration `json:"expected,omitempty"`
	// Slowdown is Duration / Expected when Expected is known.
	Slowdown float64 `json:"slowdown,omitempty"`
	Attempts int     `json:"attempts"`
	Cause    string  `json:"cause"`
}

// StageDiagnosis is the skew report for one executed stage.
type StageDiagnosis struct {
	Job        string        `json:"job"`
	Engine     string        `json:"engine"`
	Pass       int           `json:"pass"`
	Stage      string        `json:"stage"`
	Tasks      int           `json:"tasks"`
	Makespan   time.Duration `json:"makespan"`
	MaxTask    time.Duration `json:"max_task"`
	MedianTask time.Duration `json:"median_task"`
	// Gini measures partition-size inequality over the stage's tasks
	// (0 = perfectly even, 1 = one task carries everything), computed over
	// metered task costs when available, else task durations.
	Gini       float64         `json:"gini"`
	Hot        []HotPartition  `json:"hot,omitempty"`
	Stragglers []StragglerDiag `json:"stragglers,omitempty"`
}

// Diagnosis is the complete machine-readable analysis of one recorded run.
type Diagnosis struct {
	Makespan          time.Duration    `json:"makespan"`
	CriticalPath      []CriticalStep   `json:"critical_path"`
	CriticalPathTotal time.Duration    `json:"critical_path_total"`
	Stages            []StageDiagnosis `json:"stages"`
	Counters          Counters         `json:"counters"`
}

// Analyze builds the diagnosis of everything r has recorded so far.
func Analyze(r *Recorder, opts AnalyzeOptions) *Diagnosis {
	opts = opts.withDefaults()
	d := &Diagnosis{Counters: r.Counters()}
	for _, job := range r.Jobs() {
		d.Makespan += job.Duration()
		if job.Overhead > 0 {
			d.CriticalPath = append(d.CriticalPath, CriticalStep{
				Job: job.Name, Engine: job.Engine, Pass: job.Pass,
				Kind: "job-overhead", Duration: job.Overhead,
				Task: -1, Node: -1,
			})
		}
		for _, st := range job.Stages {
			step := CriticalStep{
				Job: job.Name, Engine: job.Engine, Pass: job.Pass,
				Kind: "stage", Stage: st.Name, Duration: st.Makespan,
				Task: -1, Node: -1,
			}
			// The stage barrier opens when its last task finishes; that
			// task (ties broken on the lowest index by the deterministic
			// scheduler walk) is the stage's critical task.
			var lastEnd time.Duration
			for _, t := range st.Tasks {
				if t.End > lastEnd {
					lastEnd = t.End
					step.Task = t.Index
					step.Node = t.Node
				}
			}
			d.CriticalPath = append(d.CriticalPath, step)
			d.Stages = append(d.Stages, diagnoseStage(job, st, opts))
		}
	}
	for _, s := range d.CriticalPath {
		d.CriticalPathTotal += s.Duration
	}
	return d
}

// diagnoseStage computes one stage's skew report.
func diagnoseStage(job JobSpan, st StageSpan, opts AnalyzeOptions) StageDiagnosis {
	out := StageDiagnosis{
		Job: job.Name, Engine: job.Engine, Pass: job.Pass,
		Stage: st.Name, Tasks: len(st.Tasks), Makespan: st.Makespan,
	}
	if len(st.Tasks) == 0 {
		return out
	}

	durs := make([]time.Duration, len(st.Tasks))
	var sumDur time.Duration
	for i, t := range st.Tasks {
		durs[i] = t.Duration()
		sumDur += durs[i]
		if durs[i] > out.MaxTask {
			out.MaxTask = durs[i]
		}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	out.MedianTask = sorted[len(sorted)/2]

	// Partition-size inequality: prefer metered costs (pure data volume),
	// fall back to durations when the stage carried no cost metering.
	sizes := make([]float64, len(st.Tasks))
	anyCost := false
	for i, t := range st.Tasks {
		sizes[i] = t.Cost.Norm()
		if sizes[i] > 0 {
			anyCost = true
		}
	}
	if !anyCost {
		for i, dur := range durs {
			sizes[i] = float64(dur)
		}
	}
	out.Gini = gini(sizes)

	// Top-k hot partitions by duration.
	order := make([]int, len(st.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return durs[order[a]] > durs[order[b]] })
	k := opts.TopK
	if k > len(order) {
		k = len(order)
	}
	for _, i := range order[:k] {
		share := 0.0
		if sumDur > 0 {
			share = float64(durs[i]) / float64(sumDur)
		}
		out.Hot = append(out.Hot, HotPartition{
			Task: st.Tasks[i].Index, Node: st.Tasks[i].Node,
			Duration: durs[i], Share: share,
		})
	}

	// Straggler attribution over tasks exceeding factor x median.
	cutoff := time.Duration(float64(out.MedianTask) * opts.StragglerFactor)
	medianNorm := medianOf(sizes)
	for i, t := range st.Tasks {
		if out.MedianTask <= 0 || durs[i] <= cutoff {
			continue
		}
		sd := StragglerDiag{
			Task: t.Index, Node: t.Node,
			Duration: durs[i], Attempts: t.Attempts,
		}
		sd.Cause = attributeStraggler(&sd, t, durs[i], medianNorm, opts)
		out.Stragglers = append(out.Stragglers, sd)
	}
	return out
}

// attributeStraggler decides why one straggler ran long. With a cluster
// config the test is direct: the performance model predicts the duration the
// task's metered cost should have taken on a healthy node; a large excess
// means the node was slowed (chaos), because data volume is already priced
// in. Retry-inflated tasks are attributed to retries, and tasks whose
// duration the cost fully explains carried genuinely heavy partitions.
func attributeStraggler(sd *StragglerDiag, t TaskSpan, dur time.Duration,
	medianNorm float64, opts AnalyzeOptions) string {
	if opts.Cluster != nil {
		expected := sim.ExpectedTaskTime(*opts.Cluster, t.Cost, t.Attempts-1, t.Remote)
		sd.Expected = expected
		if expected > 0 {
			sd.Slowdown = float64(dur) / float64(expected)
			if sd.Slowdown > opts.SlowdownFactor {
				return CauseEnvironment
			}
		}
		if t.Attempts > 1 {
			return CauseRetries
		}
		return CauseDataSkew
	}
	if t.Attempts > 1 {
		return CauseRetries
	}
	// No cluster config: a straggler whose metered cost is also far above
	// the stage median carried a hot partition; otherwise something outside
	// its data slowed it.
	if medianNorm > 0 && t.Cost.Norm() > opts.StragglerFactor*medianNorm {
		return CauseDataSkew
	}
	return CauseEnvironment
}

// gini computes the Gini coefficient of the non-negative values
// (0 = perfectly even, approaching 1 = maximally concentrated).
func gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}

func medianOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// Validate checks the diagnosis' structural invariants — above all that the
// critical path accounts for the entire makespan, which is what makes it a
// critical path rather than a sample of slow spans.
func (d *Diagnosis) Validate() error {
	if d == nil {
		return fmt.Errorf("obs: nil diagnosis")
	}
	if d.CriticalPathTotal != d.Makespan {
		return fmt.Errorf("obs: critical path sums to %v but makespan is %v",
			d.CriticalPathTotal, d.Makespan)
	}
	var sum time.Duration
	for _, s := range d.CriticalPath {
		if s.Duration < 0 {
			return fmt.Errorf("obs: critical step %s/%s has negative duration %v",
				s.Job, s.Stage, s.Duration)
		}
		sum += s.Duration
	}
	if sum != d.CriticalPathTotal {
		return fmt.Errorf("obs: critical path steps sum to %v, recorded total %v",
			sum, d.CriticalPathTotal)
	}
	for _, st := range d.Stages {
		if st.Gini < 0 || st.Gini > 1 {
			return fmt.Errorf("obs: stage %s gini %v out of [0,1]", st.Stage, st.Gini)
		}
		for _, h := range st.Hot {
			if h.Share < 0 || h.Share > 1 {
				return fmt.Errorf("obs: stage %s hot partition share %v out of [0,1]",
					st.Stage, h.Share)
			}
		}
		for _, s := range st.Stragglers {
			switch s.Cause {
			case CauseEnvironment, CauseRetries, CauseDataSkew:
			default:
				return fmt.Errorf("obs: stage %s straggler cause %q unknown",
					st.Stage, s.Cause)
			}
		}
	}
	return nil
}

// WriteDiagnosis renders the diagnosis for humans: the critical path ranked
// by contribution, then the skewed stages with their hot partitions and
// attributed stragglers.
func WriteDiagnosis(w io.Writer, d *Diagnosis) error {
	if _, err := fmt.Fprintf(w, "makespan %v, critical path %d steps (sum %v)\n",
		d.Makespan.Round(time.Microsecond), len(d.CriticalPath),
		d.CriticalPathTotal.Round(time.Microsecond)); err != nil {
		return err
	}

	// Top critical-path contributors.
	steps := append([]CriticalStep(nil), d.CriticalPath...)
	sort.SliceStable(steps, func(a, b int) bool { return steps[a].Duration > steps[b].Duration })
	top := steps
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Fprintf(w, "\ncritical path (top %d by contribution):\n", len(top))
	for _, s := range top {
		share := 0.0
		if d.Makespan > 0 {
			share = 100 * float64(s.Duration) / float64(d.Makespan)
		}
		switch s.Kind {
		case "job-overhead":
			fmt.Fprintf(w, "  %8v %5.1f%%  %s/%s pass %d: job overhead\n",
				s.Duration.Round(time.Microsecond), share, s.Engine, s.Job, s.Pass)
		default:
			where := ""
			if s.Task >= 0 {
				where = fmt.Sprintf(" (held by task %d on node %d)", s.Task, s.Node)
			}
			fmt.Fprintf(w, "  %8v %5.1f%%  %s/%s pass %d: stage %s%s\n",
				s.Duration.Round(time.Microsecond), share, s.Engine, s.Job, s.Pass,
				s.Stage, where)
		}
	}

	// Stages worth a second look: skewed or straggling.
	var flagged []StageDiagnosis
	for _, st := range d.Stages {
		if len(st.Stragglers) > 0 || st.Gini > 0.4 {
			flagged = append(flagged, st)
		}
	}
	fmt.Fprintf(w, "\nskewed stages: %d of %d\n", len(flagged), len(d.Stages))
	for _, st := range flagged {
		fmt.Fprintf(w, "  %s/%s pass %d stage %s: %d tasks, median %v, max %v, gini %.2f\n",
			st.Engine, st.Job, st.Pass, st.Stage, st.Tasks,
			st.MedianTask.Round(time.Microsecond), st.MaxTask.Round(time.Microsecond),
			st.Gini)
		for _, h := range st.Hot {
			fmt.Fprintf(w, "    hot: task %d on node %d ran %v (%.1f%% of stage task time)\n",
				h.Task, h.Node, h.Duration.Round(time.Microsecond), 100*h.Share)
		}
		for _, s := range st.Stragglers {
			detail := ""
			if s.Expected > 0 {
				detail = fmt.Sprintf(", %.1fx its cost-predicted %v",
					s.Slowdown, s.Expected.Round(time.Microsecond))
			}
			fmt.Fprintf(w, "    straggler: task %d on node %d ran %v%s, %d attempt(s) -> %s\n",
				s.Task, s.Node, s.Duration.Round(time.Microsecond), detail,
				s.Attempts, s.Cause)
		}
	}
	return nil
}
