package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"yafim/internal/cluster"
	"yafim/internal/sim"
)

// analyzeRecorder builds a run whose skew story is fully known: a two-job
// run where one stage has a straggler of each attributable kind.
func analyzeRecorder(cfg cluster.Config) *Recorder {
	r := New()
	base := sim.Cost{CPUOps: 1_000}
	heavy := sim.Cost{CPUOps: 20_000}
	baseDur := sim.ExpectedTaskTime(cfg, base, 0, false)
	heavyDur := sim.ExpectedTaskTime(cfg, heavy, 0, false)
	// Three relaunches push the retry task past the straggler cutoff
	// (2x the 8ms median on the paper's Spark profile) while the model
	// still fully explains its duration.
	retryDur := sim.ExpectedTaskTime(cfg, base, 3, false)

	r.SetPass(1)
	r.BeginJob("rdd", "collect(L1)")
	r.AddStage(StageSpan{
		Name:     "mixed",
		Overhead: cfg.StageOverhead,
		Makespan: cfg.StageOverhead + 4*baseDur,
		Tasks: []TaskSpan{
			// Four healthy baseline tasks pin the median at baseDur.
			{Index: 0, Node: 0, End: baseDur, Attempts: 1, Cost: base},
			{Index: 1, Node: 2, End: baseDur, Attempts: 1, Cost: base},
			{Index: 2, Node: 3, End: baseDur, Attempts: 1, Cost: base},
			{Index: 3, Node: 4, End: baseDur, Attempts: 1, Cost: base},
			// Environment: same metered cost, ran 4x its prediction — a
			// chaos-stretched node.
			{Index: 4, Node: 1, End: 4 * baseDur, Attempts: 1, Cost: base},
			// Data skew: 20x the cost, and the duration matches the model's
			// prediction exactly — a genuinely hot partition.
			{Index: 5, Node: 5, End: heavyDur, Attempts: 1, Cost: heavy},
			// Retries: duration equals the model's prediction including the
			// relaunches, so the excess over median is attempt overhead.
			{Index: 6, Node: 6, End: retryDur, Attempts: 4, Cost: base},
		},
	})
	r.EndJob(cfg.JobStartup)

	r.SetPass(2)
	r.BeginJob("rdd", "collect(L2)")
	r.AddStage(StageSpan{
		Name:     "even",
		Makespan: 2 * baseDur,
		Tasks: []TaskSpan{
			{Index: 0, Node: 0, End: baseDur, Attempts: 1, Cost: base},
			{Index: 1, Node: 1, End: baseDur, Attempts: 1, Cost: base},
		},
	})
	r.EndJob(cfg.JobStartup)
	return r
}

func TestAnalyzeCriticalPathSumsToMakespan(t *testing.T) {
	cfg := cluster.PaperSpark()
	r := analyzeRecorder(cfg)
	d := Analyze(r, AnalyzeOptions{Cluster: &cfg})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	var want time.Duration
	for _, job := range r.Jobs() {
		want += job.Duration()
	}
	if d.Makespan != want {
		t.Fatalf("makespan %v, want %v", d.Makespan, want)
	}
	if d.CriticalPathTotal != want {
		t.Fatalf("critical path total %v != makespan %v", d.CriticalPathTotal, want)
	}
	// 2 job-overhead steps + 2 stage steps.
	if len(d.CriticalPath) != 4 {
		t.Fatalf("critical path has %d steps: %+v", len(d.CriticalPath), d.CriticalPath)
	}
	overheads, stages := 0, 0
	for _, s := range d.CriticalPath {
		switch s.Kind {
		case "job-overhead":
			overheads++
		case "stage":
			stages++
			if s.Task < 0 {
				t.Errorf("stage step %q lost its critical task", s.Stage)
			}
		default:
			t.Errorf("unknown step kind %q", s.Kind)
		}
	}
	if overheads != 2 || stages != 2 {
		t.Fatalf("steps: %d overheads, %d stages", overheads, stages)
	}
	// The mixed stage's barrier is held by its slowest task (the data-skew
	// one — 20x cost dwarfs the 4x environment stretch here).
	if step := d.CriticalPath[1]; step.Stage != "mixed" || step.Task != 5 {
		t.Fatalf("mixed stage critical task = %+v", step)
	}
}

func TestAnalyzeStragglerAttributionWithCluster(t *testing.T) {
	cfg := cluster.PaperSpark()
	d := Analyze(analyzeRecorder(cfg), AnalyzeOptions{Cluster: &cfg})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	mixed := d.Stages[0]
	if mixed.Stage != "mixed" || mixed.Tasks != 7 {
		t.Fatalf("stage = %+v", mixed)
	}
	causes := map[int]string{}
	for _, s := range mixed.Stragglers {
		causes[s.Task] = s.Cause
		if s.Expected <= 0 || s.Slowdown <= 0 {
			t.Errorf("straggler %d missing model prediction: %+v", s.Task, s)
		}
	}
	want := map[int]string{
		4: CauseEnvironment,
		5: CauseDataSkew,
		6: CauseRetries,
	}
	for task, cause := range want {
		if causes[task] != cause {
			t.Errorf("task %d attributed %q, want %q (all: %v)", task, causes[task], cause, causes)
		}
	}
	if len(mixed.Stragglers) != len(want) {
		t.Errorf("stragglers = %+v, want exactly tasks 4, 5, 6", mixed.Stragglers)
	}
	if len(d.Stages[1].Stragglers) != 0 {
		t.Errorf("even stage grew stragglers: %+v", d.Stages[1].Stragglers)
	}
}

func TestAnalyzeStragglerAttributionWithoutCluster(t *testing.T) {
	cfg := cluster.PaperSpark()
	d := Analyze(analyzeRecorder(cfg), AnalyzeOptions{})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	causes := map[int]string{}
	for _, s := range d.Stages[0].Stragglers {
		causes[s.Task] = s.Cause
	}
	// Without a performance model: retries are still identifiable from the
	// attempt count, heavy cost still reads as data skew, and a slow task
	// whose cost is ordinary must be the environment.
	want := map[int]string{
		4: CauseEnvironment,
		5: CauseDataSkew,
		6: CauseRetries,
	}
	for task, cause := range want {
		if causes[task] != cause {
			t.Errorf("task %d attributed %q, want %q", task, causes[task], cause)
		}
	}
}

func TestAnalyzeHotPartitions(t *testing.T) {
	cfg := cluster.PaperSpark()
	d := Analyze(analyzeRecorder(cfg), AnalyzeOptions{Cluster: &cfg, TopK: 2})
	mixed := d.Stages[0]
	if len(mixed.Hot) != 2 {
		t.Fatalf("hot = %+v, want 2 entries", mixed.Hot)
	}
	// Hottest first: the heavy partition, then the environment straggler.
	if mixed.Hot[0].Task != 5 || mixed.Hot[1].Task != 4 {
		t.Fatalf("hot order = %+v", mixed.Hot)
	}
	var shares float64
	for _, h := range mixed.Hot {
		if h.Share <= 0 || h.Share > 1 {
			t.Errorf("share %v out of (0,1]", h.Share)
		}
		shares += h.Share
	}
	if shares > 1 {
		t.Errorf("top-2 shares sum to %v > 1", shares)
	}
}

func TestGini(t *testing.T) {
	if g := gini([]float64{5, 5, 5, 5}); g != 0 {
		t.Errorf("uniform gini = %v, want 0", g)
	}
	// One task carries everything: G = (n-1)/n.
	if g, want := gini([]float64{0, 0, 0, 12}), 0.75; math.Abs(g-want) > 1e-12 {
		t.Errorf("one-hot gini = %v, want %v", g, want)
	}
	if g := gini(nil); g != 0 {
		t.Errorf("empty gini = %v", g)
	}
	if g := gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero gini = %v", g)
	}
	mild := gini([]float64{4, 5, 6})
	harsh := gini([]float64{1, 1, 13})
	if !(mild > 0 && mild < harsh && harsh < 1) {
		t.Errorf("gini not ordered: mild %v, harsh %v", mild, harsh)
	}
}

func TestAnalyzeEmptyAndNil(t *testing.T) {
	for _, r := range []*Recorder{nil, New()} {
		d := Analyze(r, AnalyzeOptions{})
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Makespan != 0 || len(d.CriticalPath) != 0 || len(d.Stages) != 0 {
			t.Fatalf("empty analysis = %+v", d)
		}
	}
	if err := (*Diagnosis)(nil).Validate(); err == nil {
		t.Fatal("nil diagnosis validated")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cfg := cluster.PaperSpark()
	fresh := func() *Diagnosis { return Analyze(analyzeRecorder(cfg), AnalyzeOptions{Cluster: &cfg}) }

	d := fresh()
	d.Makespan += time.Second
	if err := d.Validate(); err == nil {
		t.Error("makespan mismatch not caught")
	}
	d = fresh()
	d.CriticalPath = d.CriticalPath[1:]
	if err := d.Validate(); err == nil {
		t.Error("dropped step not caught")
	}
	d = fresh()
	d.Stages[0].Gini = 1.5
	if err := d.Validate(); err == nil {
		t.Error("out-of-range gini not caught")
	}
	d = fresh()
	d.Stages[0].Stragglers[0].Cause = "gremlins"
	if err := d.Validate(); err == nil {
		t.Error("unknown cause not caught")
	}
}

func TestWriteDiagnosisRendersAttribution(t *testing.T) {
	cfg := cluster.PaperSpark()
	d := Analyze(analyzeRecorder(cfg), AnalyzeOptions{Cluster: &cfg})
	var buf bytes.Buffer
	if err := WriteDiagnosis(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"makespan", "critical path", "job overhead", "stage mixed",
		"hot:", "straggler:", CauseEnvironment, CauseDataSkew, CauseRetries,
		"cost-predicted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnosis text missing %q:\n%s", want, out)
		}
	}
}

func TestDiagnosisJSONRoundTrip(t *testing.T) {
	cfg := cluster.PaperSpark()
	d := Analyze(analyzeRecorder(cfg), AnalyzeOptions{Cluster: &cfg})
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Diagnosis
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped diagnosis invalid: %v", err)
	}
	if back.Makespan != d.Makespan || len(back.Stages) != len(d.Stages) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
