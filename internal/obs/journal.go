package obs

import (
	"encoding/json"
	"io"
	"time"
)

// The event journal is the replayable flat view of a run: one JSON object
// per line, each stamped with its virtual timestamp in microseconds,
// covering job and stage boundaries, task retries, and shuffle lifecycle
// events. Two identical runs journal identical bytes, so runs can be diffed
// line by line; the journal is also cheap to stream, unlike the nested span
// tree.

// journalEntry is one journal line. Fields are pointers-free and
// omitempty-heavy so each event kind prints only what it carries.
type journalEntry struct {
	TsUs       float64 `json:"ts_us"`
	Event      string  `json:"event"`
	Engine     string  `json:"engine,omitempty"`
	Job        string  `json:"job,omitempty"`
	Pass       int     `json:"pass,omitempty"`
	Stage      string  `json:"stage,omitempty"`
	Task       int     `json:"task,omitempty"`
	Node       int     `json:"node,omitempty"`
	Attempts   int     `json:"attempts,omitempty"`
	Tasks      int     `json:"tasks,omitempty"`
	Name       string  `json:"name,omitempty"`
	Slices     int64   `json:"slices,omitempty"`
	Bytes      int64   `json:"bytes,omitempty"`
	DurationUs float64 `json:"duration_us,omitempty"`
	Open       bool    `json:"open,omitempty"`
}

// WriteJournal exports the recorded run as a JSONL event journal. The
// virtual timeline is reconstructed the same way the Chrome trace walks it:
// jobs run back to back, each paying its overhead before its stages; shuffle
// lifecycle events recorded between jobs appear between the corresponding
// job_finish and job_start lines. A job still open when the journal is
// written emits job_start (and its stages) but no job_finish.
func WriteJournal(w io.Writer, r *Recorder) error {
	enc := json.NewEncoder(w)
	jobs := r.Jobs()
	events := r.Events()

	// flush emits every lifecycle event anchored after `closed` jobs.
	var t time.Duration
	flush := func(closed int) error {
		for _, ev := range events {
			if ev.Job != closed {
				continue
			}
			if err := enc.Encode(journalEntry{
				TsUs: micros(t), Event: ev.Kind, Name: ev.Name,
				Slices: ev.Slices, Bytes: ev.Bytes,
			}); err != nil {
				return err
			}
		}
		return nil
	}

	for i, job := range jobs {
		if err := flush(i); err != nil {
			return err
		}
		if err := enc.Encode(journalEntry{
			TsUs: micros(t), Event: "job_start",
			Engine: job.Engine, Job: job.Name, Pass: job.Pass, Open: job.Open,
		}); err != nil {
			return err
		}
		t += job.Overhead
		for _, st := range job.Stages {
			if err := enc.Encode(journalEntry{
				TsUs: micros(t), Event: "stage_start",
				Engine: job.Engine, Job: job.Name, Pass: job.Pass,
				Stage: st.Name, Tasks: len(st.Tasks),
			}); err != nil {
				return err
			}
			body := t + st.Overhead
			for _, task := range st.Tasks {
				if task.Attempts <= 1 {
					continue
				}
				if err := enc.Encode(journalEntry{
					TsUs: micros(body + task.Start), Event: "task_retry",
					Engine: job.Engine, Job: job.Name, Pass: job.Pass,
					Stage: st.Name, Task: task.Index, Node: task.Node,
					Attempts: task.Attempts,
				}); err != nil {
					return err
				}
			}
			t += st.Makespan
			if err := enc.Encode(journalEntry{
				TsUs: micros(t), Event: "stage_finish",
				Engine: job.Engine, Job: job.Name, Pass: job.Pass,
				Stage: st.Name, Tasks: len(st.Tasks),
				DurationUs: micros(st.Makespan),
			}); err != nil {
				return err
			}
		}
		if job.Open {
			continue
		}
		if err := enc.Encode(journalEntry{
			TsUs: micros(t), Event: "job_finish",
			Engine: job.Engine, Job: job.Name, Pass: job.Pass,
			DurationUs: micros(job.Duration()),
		}); err != nil {
			return err
		}
	}
	return flush(len(jobs))
}
