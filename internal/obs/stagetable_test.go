package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStageTableStats(t *testing.T) {
	r := New()
	r.SetPass(2)
	r.BeginJob("rdd", "collect(L2)")
	r.AddStage(StageSpan{
		Name:     "skewed",
		Makespan: 10 * time.Millisecond,
		Tasks: []TaskSpan{
			{End: 1 * time.Millisecond, Attempts: 1},
			{End: 2 * time.Millisecond, Attempts: 3},
			{End: 9 * time.Millisecond, Attempts: 1}, // 9ms > 2 * 4ms mean
		},
	})
	r.AddStage(StageSpan{
		Name:     "even",
		Makespan: 4 * time.Millisecond,
		Tasks: []TaskSpan{
			{End: 3 * time.Millisecond, Attempts: 1},
			{End: 4 * time.Millisecond, Attempts: 1},
		},
	})
	r.EndJob(0)

	rows := StageTable(r)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	skewed := rows[0]
	if skewed.Job != "collect(L2)" || skewed.Pass != 2 || skewed.Stage != "skewed" {
		t.Fatalf("row = %+v", skewed)
	}
	if skewed.MinTask != time.Millisecond || skewed.MaxTask != 9*time.Millisecond ||
		skewed.MeanTask != 4*time.Millisecond {
		t.Fatalf("task spread = min %v mean %v max %v",
			skewed.MinTask, skewed.MeanTask, skewed.MaxTask)
	}
	if skewed.Retries != 2 {
		t.Fatalf("retries = %d, want 2", skewed.Retries)
	}
	if !skewed.Straggler {
		t.Fatal("9ms max over 4ms mean not flagged as straggler")
	}
	if rows[1].Straggler {
		t.Fatalf("even stage flagged as straggler: %+v", rows[1])
	}

	var buf bytes.Buffer
	if err := WriteStageTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "STRAGGLER"); got != 1 {
		t.Fatalf("rendered table flags %d stragglers, want 1:\n%s", got, buf.String())
	}
}

func TestWriteStageTableAndCounters(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := WriteStageTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job", "stage", "makespan", "collect(L1)", "countC2:map"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stage table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := WriteCounters(&buf, r.Counters()); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{
		"cache_hits", "lineage_recomputes", "broadcast_bytes", "shuffle_bytes",
		"task_retries", "wasted_cost", "locality_local",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("counter table missing %q:\n%s", want, out)
		}
	}
}
