package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStageTableStats(t *testing.T) {
	r := New()
	r.SetPass(2)
	r.BeginJob("rdd", "collect(L2)")
	r.AddStage(StageSpan{
		Name:     "skewed",
		Makespan: 10 * time.Millisecond,
		Tasks: []TaskSpan{
			{End: 1 * time.Millisecond, Attempts: 1},
			{End: 2 * time.Millisecond, Attempts: 3},
			{End: 9 * time.Millisecond, Attempts: 1}, // 9ms > 2 * 4ms mean
		},
	})
	r.AddStage(StageSpan{
		Name:     "even",
		Makespan: 4 * time.Millisecond,
		Tasks: []TaskSpan{
			{End: 3 * time.Millisecond, Attempts: 1},
			{End: 4 * time.Millisecond, Attempts: 1},
		},
	})
	r.EndJob(0)

	rows := StageTable(r)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	skewed := rows[0]
	if skewed.Job != "collect(L2)" || skewed.Pass != 2 || skewed.Stage != "skewed" {
		t.Fatalf("row = %+v", skewed)
	}
	if skewed.MinTask != time.Millisecond || skewed.MaxTask != 9*time.Millisecond ||
		skewed.MeanTask != 4*time.Millisecond {
		t.Fatalf("task spread = min %v mean %v max %v",
			skewed.MinTask, skewed.MeanTask, skewed.MaxTask)
	}
	if skewed.Retries != 2 {
		t.Fatalf("retries = %d, want 2", skewed.Retries)
	}
	if !skewed.Straggler {
		t.Fatal("9ms max over 4ms mean not flagged as straggler")
	}
	if rows[1].Straggler {
		t.Fatalf("even stage flagged as straggler: %+v", rows[1])
	}

	var buf bytes.Buffer
	if err := WriteStageTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "STRAGGLER"); got != 1 {
		t.Fatalf("rendered table flags %d stragglers, want 1:\n%s", got, buf.String())
	}
}

func TestWriteStageTableAndCounters(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := WriteStageTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job", "stage", "makespan", "collect(L1)", "countC2:map"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stage table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := WriteCounters(&buf, r.Counters()); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{
		"cache_hits", "lineage_recomputes", "broadcast_bytes", "shuffle_bytes",
		"task_retries", "wasted_cost", "locality_local",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("counter table missing %q:\n%s", want, out)
		}
	}
}

// TestStageTableTruncatesLongNames checks the table caps pathological job and
// stage names (deep lineage strings) rune-safely.
func TestStageTableTruncatesLongNames(t *testing.T) {
	longJob := strings.Repeat("collectWithDependencies.", 5) // 120 runes
	longStage := strings.Repeat("ü", maxNameWidth+20)        // multi-byte runes
	r := New()
	r.BeginJob("rdd", longJob)
	r.AddStage(StageSpan{
		Name:     longStage,
		Makespan: time.Millisecond,
		Tasks:    []TaskSpan{{End: time.Millisecond, Attempts: 1}},
	})
	r.EndJob(0)

	var buf bytes.Buffer
	if err := WriteStageTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, longJob) || strings.Contains(out, longStage) {
		t.Fatalf("full-length name leaked into the table:\n%s", out)
	}
	if !strings.Contains(out, "…") {
		t.Fatalf("truncation not marked:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if n := len([]rune(line)); n > 200 {
			t.Fatalf("table row blew up to %d runes:\n%s", n, line)
		}
	}

	// StageTable itself reports the untruncated names; only rendering caps.
	rows := StageTable(r)
	if rows[0].Job != longJob || rows[0].Stage != longStage {
		t.Fatalf("stats rows lost the full names: %+v", rows[0])
	}
}

// TestStageTableManyTasks checks wide stages (>999 tasks) keep correct stats
// and render without column breakage.
func TestStageTableManyTasks(t *testing.T) {
	const n = 1200
	tasks := make([]TaskSpan, n)
	for i := range tasks {
		tasks[i] = TaskSpan{
			Index:    i,
			Node:     i % 8,
			End:      time.Duration(i+1) * time.Microsecond,
			Attempts: 1,
		}
	}
	r := New()
	r.BeginJob("rdd", "wide")
	r.AddStage(StageSpan{Name: "fanout", Makespan: n * time.Microsecond, Tasks: tasks})
	r.EndJob(0)

	rows := StageTable(r)
	row := rows[0]
	if row.Tasks != n {
		t.Fatalf("tasks = %d, want %d", row.Tasks, n)
	}
	if row.MinTask != time.Microsecond || row.MaxTask != n*time.Microsecond {
		t.Fatalf("spread = min %v max %v", row.MinTask, row.MaxTask)
	}
	if row.MeanTask != (n+1)*time.Microsecond/2 {
		t.Fatalf("mean = %v", row.MeanTask)
	}

	var buf bytes.Buffer
	if err := WriteStageTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("table rendered %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "1200") {
		t.Fatalf("task count missing from row:\n%s", lines[1])
	}
}
