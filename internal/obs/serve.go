package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// The live serving surface: an opt-in net/http handler that exposes the
// recorder while a run is in flight. Endpoints:
//
//	/metrics    Prometheus text exposition (flat counters + registry)
//	/diag       the human-readable diagnosis of everything recorded so far
//	/diag.json  the machine-readable Diagnosis
//	/journal    the JSONL event journal so far
//	/debug/pprof/...  the standard Go profiling endpoints
//
// Every request re-reads the recorder, so scraping during a run observes the
// in-flight job via the Open snapshot — and observes nothing into the run:
// all reads copy under the recorder mutex and never touch the ledger.

// Handler serves the fixed recorder with the given analysis options.
func Handler(rec *Recorder, opts AnalyzeOptions) http.Handler {
	return HandlerFunc(func() (*Recorder, AnalyzeOptions) { return rec, opts })
}

// HandlerFunc serves whatever recorder source returns at request time,
// letting callers swap recorders between experiment runs without restarting
// the listener. A nil recorder serves empty documents, not errors, so
// scrapes before the first run are clean.
func HandlerFunc(source func() (*Recorder, AnalyzeOptions)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		rec, _ := source()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, rec); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/diag", func(w http.ResponseWriter, req *http.Request) {
		rec, opts := source()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := WriteDiagnosis(w, Analyze(rec, opts)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/diag.json", func(w http.ResponseWriter, req *http.Request) {
		rec, opts := source()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Analyze(rec, opts)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, req *http.Request) {
		rec, _ := source()
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := WriteJournal(w, rec); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("yafim diagnosis endpoints:\n" +
			"  /metrics     Prometheus text format\n" +
			"  /diag        human-readable diagnosis\n" +
			"  /diag.json   machine-readable diagnosis\n" +
			"  /journal     JSONL event journal\n" +
			"  /debug/pprof profiling\n"))
	})
	return mux
}
