package obs

import (
	"testing"
	"time"

	"yafim/internal/sim"
)

// sampleRecorder builds a recorder with two jobs: one two-stage RDD job on
// pass 1 and one single-stage MapReduce job on pass 2.
func sampleRecorder() *Recorder {
	r := New()
	r.SetPass(1)
	r.BeginJob("rdd", "collect(L1)")
	r.AddStage(StageSpan{
		Name:     "count",
		Overhead: time.Millisecond,
		Makespan: 5 * time.Millisecond,
		Total:    sim.Cost{CPUOps: 100, DiskRead: 2048},
		Tasks: []TaskSpan{
			{Index: 0, Node: 0, Core: 0, Start: 0, End: 2 * time.Millisecond, Attempts: 1},
			{Index: 1, Node: 1, Core: 1, Start: 0, End: 4 * time.Millisecond, Attempts: 2, Remote: true},
		},
	})
	r.AddStage(StageSpan{Name: "reduce", Makespan: 3 * time.Millisecond})
	r.EndJob(2 * time.Millisecond)

	r.SetPass(2)
	r.BeginJob("mapreduce", "countC2")
	r.AddStage(StageSpan{
		Name:     "countC2:map",
		Makespan: 7 * time.Millisecond,
		Tasks:    []TaskSpan{{Index: 0, Node: 2, Core: 0, End: 7 * time.Millisecond, Attempts: 1}},
	})
	r.EndJob(time.Millisecond)

	r.AddCacheHit()
	r.AddCacheMiss()
	r.AddEvictions(3)
	r.AddRecomputes(2)
	r.AddBroadcastBytes(1024)
	r.AddNaiveShipBytes(4096)
	r.AddShuffleBytes(512)
	r.AddDFSRead(100)
	r.AddDFSWrite(200)
	r.AddRetries(1, sim.Cost{CPUOps: 50})
	r.AddLocality(5, 1)
	return r
}

func TestRecorderSpanTree(t *testing.T) {
	r := sampleRecorder()
	jobs := r.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	first := jobs[0]
	if first.Engine != "rdd" || first.Name != "collect(L1)" || first.Pass != 1 {
		t.Fatalf("first job = %+v", first)
	}
	if len(first.Stages) != 2 {
		t.Fatalf("first job stages = %d, want 2", len(first.Stages))
	}
	// Duration = overhead + sum of stage makespans.
	if got, want := first.Duration(), 10*time.Millisecond; got != want {
		t.Fatalf("job duration = %v, want %v", got, want)
	}
	if got := first.Stages[0].Tasks[1].Duration(); got != 4*time.Millisecond {
		t.Fatalf("task duration = %v", got)
	}
	second := jobs[1]
	if second.Engine != "mapreduce" || second.Pass != 2 {
		t.Fatalf("second job = %+v", second)
	}
}

func TestRecorderImplicitJobHandling(t *testing.T) {
	r := New()
	// A stage recorded before any job opens a synthetic one.
	r.AddStage(StageSpan{Name: "orphan", Makespan: time.Millisecond})
	r.EndJob(0)
	// An unterminated job is closed implicitly by the next BeginJob.
	r.BeginJob("rdd", "left-open")
	r.BeginJob("rdd", "next")
	r.EndJob(0)

	jobs := r.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	if jobs[0].Engine != "unknown" || jobs[0].Name != "orphan" {
		t.Fatalf("synthetic job = %+v", jobs[0])
	}
	if jobs[1].Name != "left-open" || jobs[2].Name != "next" {
		t.Fatalf("implicit close order wrong: %q, %q", jobs[1].Name, jobs[2].Name)
	}
	// EndJob with nothing open is a no-op.
	r.EndJob(time.Second)
	if got := len(r.Jobs()); got != 3 {
		t.Fatalf("jobs after stray EndJob = %d", got)
	}
}

func TestRecorderCounters(t *testing.T) {
	r := sampleRecorder()
	c := r.Counters()
	want := Counters{
		CacheHits: 1, CacheMisses: 1, CacheEvictions: 3, LineageRecomputes: 2,
		BroadcastBytes: 1024, NaiveShipBytes: 4096, ShuffleBytes: 512,
		DFSReadBytes: 100, DFSWriteBytes: 200,
		TaskRetries: 1, WastedCost: sim.Cost{CPUOps: 50},
		LocalityLocal: 5, LocalityRemote: 1,
	}
	if c != want {
		t.Fatalf("counters = %+v, want %+v", c, want)
	}
}

func TestCountersSubIsZero(t *testing.T) {
	a := Counters{CacheHits: 5, ShuffleBytes: 100, WastedCost: sim.Cost{CPUOps: 10}}
	b := Counters{CacheHits: 2, ShuffleBytes: 40, WastedCost: sim.Cost{CPUOps: 4}}
	d := a.Sub(b)
	if d.CacheHits != 3 || d.ShuffleBytes != 60 || d.WastedCost.CPUOps != 6 {
		t.Fatalf("Sub = %+v", d)
	}
	if !a.Sub(a).IsZero() {
		t.Fatal("a - a not zero")
	}
	if a.IsZero() {
		t.Fatal("non-empty counters reported zero")
	}
	if !(Counters{}).IsZero() {
		t.Fatal("zero value not zero")
	}
}

func TestSpanFromSchedule(t *testing.T) {
	rep := sim.StageReport{
		Name:     "stage",
		Tasks:    2,
		Total:    sim.Cost{CPUOps: 30},
		Makespan: 9 * time.Millisecond,
	}
	placements := []sim.TaskPlacement{
		{Task: 0, Node: 0, Core: 1, Start: 0, End: 4 * time.Millisecond},
		{Task: 1, Node: 1, Core: 0, Start: time.Millisecond, End: 9 * time.Millisecond, Remote: true},
	}
	costs := []sim.Cost{{CPUOps: 10}, {CPUOps: 20}}
	attempts := []int{1, 3}
	span := SpanFromSchedule(rep, time.Millisecond, placements, costs, attempts)
	if span.Name != "stage" || span.Overhead != time.Millisecond || span.Makespan != rep.Makespan {
		t.Fatalf("span = %+v", span)
	}
	if len(span.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(span.Tasks))
	}
	if got := span.Tasks[1]; got.Attempts != 3 || !got.Remote || got.Cost.CPUOps != 20 ||
		got.Node != 1 || got.Start != time.Millisecond {
		t.Fatalf("task[1] = %+v", got)
	}

	// Missing costs/attempts default to zero cost and one attempt.
	bare := SpanFromSchedule(rep, 0, placements, nil, nil)
	if got := bare.Tasks[0]; got.Attempts != 1 || !got.Cost.IsZero() {
		t.Fatalf("bare task = %+v", got)
	}
}

// TestNilRecorderSafe exercises every method on a nil recorder: none may
// panic, and the read paths must return empty values.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetPass(3)
	r.BeginJob("rdd", "x")
	r.AddStage(StageSpan{Name: "s"})
	r.EndJob(time.Second)
	r.AddCacheHit()
	r.AddCacheMiss()
	r.AddEvictions(1)
	r.AddRecomputes(1)
	r.AddBroadcastBytes(1)
	r.AddNaiveShipBytes(1)
	r.AddShuffleBytes(1)
	r.AddDFSRead(1)
	r.AddDFSWrite(1)
	r.AddRetries(1, sim.Cost{CPUOps: 1})
	r.AddLocality(1, 1)
	if jobs := r.Jobs(); jobs != nil {
		t.Fatalf("nil recorder jobs = %v", jobs)
	}
	if c := r.Counters(); !c.IsZero() {
		t.Fatalf("nil recorder counters = %+v", c)
	}
}

// TestNilRecorderAllocFree guards the un-instrumented hot path: counter
// mutators on a nil recorder must not allocate.
func TestNilRecorderAllocFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.AddCacheHit()
		r.AddShuffleBytes(64)
		r.AddRetries(1, sim.Cost{})
		r.AddLocality(1, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per run, want 0", allocs)
	}
}

// BenchmarkNilRecorderHotPath measures the disabled-telemetry overhead the
// engines pay per task.
func BenchmarkNilRecorderHotPath(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AddCacheHit()
		r.AddShuffleBytes(int64(i))
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := New()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				r.AddCacheHit()
				r.AddShuffleBytes(1)
			}
		}()
	}
	r.BeginJob("rdd", "job")
	r.AddStage(StageSpan{Name: "s"})
	r.EndJob(0)
	for g := 0; g < 4; g++ {
		<-done
	}
	c := r.Counters()
	if c.CacheHits != 4000 || c.ShuffleBytes != 4000 {
		t.Fatalf("counters = %+v", c)
	}
}
