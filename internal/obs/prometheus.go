package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"

	"yafim/internal/sim"
)

// Prometheus export of the flat Counters snapshot. Every field is exported
// as yafim_<json tag>; sim.Cost-valued fields expand into one metric per
// cost component (yafim_<tag>_<component>). The field list is discovered by
// reflection over the struct's json tags, so a newly added counter appears
// in /metrics without touching this file — and the drift test leans on the
// same discovery to prove Sub, IsZero, and WriteCounters kept up.

// counterGauges names the Counters fields that are levels rather than
// monotone totals and must be typed as Prometheus gauges.
var counterGauges = map[string]bool{
	"shuffle_resident_bytes": true,
}

// counterMetric is one exported counter: its Prometheus-ready name (without
// the yafim_ prefix) and current value.
type counterMetric struct {
	name  string
	value float64
}

// counterTags returns the json tag of every Counters field, in declaration
// order. Cost-valued fields contribute their own tag (the drift test checks
// table rows against this list).
func counterTags() []string {
	t := reflect.TypeOf(Counters{})
	tags := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tags = append(tags, jsonTag(t.Field(i)))
	}
	return tags
}

// counterMetrics flattens a Counters snapshot into exportable name/value
// pairs, expanding sim.Cost fields component-wise.
func counterMetrics(c Counters) []counterMetric {
	v := reflect.ValueOf(c)
	t := v.Type()
	var out []counterMetric
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := jsonTag(f)
		switch f.Type.Kind() {
		case reflect.Int64:
			out = append(out, counterMetric{tag, float64(v.Field(i).Int())})
		case reflect.Struct:
			cost, ok := v.Field(i).Interface().(sim.Cost)
			if !ok {
				panic(fmt.Sprintf("obs: unsupported Counters field type %s for %q", f.Type, tag))
			}
			ct := reflect.TypeOf(cost)
			cv := reflect.ValueOf(cost)
			for j := 0; j < ct.NumField(); j++ {
				sub := tag + "_" + jsonTag(ct.Field(j))
				switch ct.Field(j).Type.Kind() {
				case reflect.Float64:
					out = append(out, counterMetric{sub, cv.Field(j).Float()})
				case reflect.Int64:
					out = append(out, counterMetric{sub, float64(cv.Field(j).Int())})
				default:
					panic(fmt.Sprintf("obs: unsupported Cost field type %s", ct.Field(j).Type))
				}
			}
		default:
			panic(fmt.Sprintf("obs: unsupported Counters field type %s for %q", f.Type, tag))
		}
	}
	return out
}

func jsonTag(f reflect.StructField) string {
	tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
	if tag == "" || tag == "-" {
		panic(fmt.Sprintf("obs: field %s lacks a json tag", f.Name))
	}
	return tag
}

// WritePrometheus renders the recorder's full metric surface — the flat
// counters followed by the registry families — in the Prometheus text
// exposition format. A nil recorder writes nothing.
func WritePrometheus(w io.Writer, r *Recorder) error {
	if r == nil {
		return nil
	}
	metrics := counterMetrics(r.Counters())
	sort.Slice(metrics, func(a, b int) bool { return metrics[a].name < metrics[b].name })
	for _, m := range metrics {
		typ := "counter"
		if counterGauges[m.name] {
			typ = "gauge"
		}
		name := "yafim_" + m.name
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
			name, typ, name, formatFloat(m.value)); err != nil {
			return err
		}
	}
	return r.Metrics().WritePrometheus(w)
}
