package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// journalRecorder is sampleRecorder plus lifecycle events between and after
// the jobs, so anchoring is observable.
func journalRecorder() *Recorder {
	r := New()
	r.SetPass(1)
	r.BeginJob("rdd", "collect(L1)")
	r.AddStage(StageSpan{
		Name:     "count",
		Overhead: time.Millisecond,
		Makespan: 5 * time.Millisecond,
		Tasks: []TaskSpan{
			{Index: 0, Node: 0, End: 2 * time.Millisecond, Attempts: 1},
			{Index: 1, Node: 1, End: 4 * time.Millisecond, Attempts: 2},
		},
	})
	r.EndJob(2 * time.Millisecond)

	// Fired after job 0 closed: must land between job 0's finish and job 1's
	// start on the reconstructed timeline.
	r.AddEvent("shuffle_free", "count", 4, 4096)

	r.SetPass(2)
	r.BeginJob("mapreduce", "countC2")
	r.AddStage(StageSpan{
		Name:     "countC2:map",
		Makespan: 7 * time.Millisecond,
		Tasks:    []TaskSpan{{Index: 0, Node: 2, End: 7 * time.Millisecond, Attempts: 1}},
	})
	r.EndJob(time.Millisecond)

	// Fired after everything: must be the journal's last line.
	r.AddEvent("shuffle_drop", "countC2:map", 1, 512)
	return r
}

// decodeJournal parses a JSONL journal, failing the test on any malformed
// line.
func decodeJournal(t *testing.T, out string) []journalEntry {
	t.Helper()
	var entries []journalEntry
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("journal line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		entries = append(entries, e)
	}
	return entries
}

func TestJournalEventSequence(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, journalRecorder()); err != nil {
		t.Fatal(err)
	}
	entries := decodeJournal(t, buf.String())

	var kinds []string
	for _, e := range entries {
		kinds = append(kinds, e.Event)
	}
	want := []string{
		"job_start", "stage_start", "task_retry", "stage_finish", "job_finish",
		"shuffle_free",
		"job_start", "stage_start", "stage_finish", "job_finish",
		"shuffle_drop",
	}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("event sequence:\n got %v\nwant %v", kinds, want)
	}

	// Virtual timestamps never go backwards.
	for i := 1; i < len(entries); i++ {
		if entries[i].TsUs < entries[i-1].TsUs {
			t.Fatalf("timestamp regressed at line %d: %v after %v",
				i+1, entries[i].TsUs, entries[i-1].TsUs)
		}
	}

	// The between-jobs event is stamped at job 0's finish time and before
	// job 1 starts.
	free := entries[5]
	if free.Event != "shuffle_free" || free.Name != "count" ||
		free.Slices != 4 || free.Bytes != 4096 {
		t.Fatalf("shuffle_free entry = %+v", free)
	}
	if free.TsUs != entries[4].TsUs || free.TsUs != entries[6].TsUs {
		t.Fatalf("shuffle_free not anchored between jobs: %v (finish %v, next start %v)",
			free.TsUs, entries[4].TsUs, entries[6].TsUs)
	}

	// The retry line carries task coordinates; the stage_finish line carries
	// the stage makespan.
	retry := entries[2]
	if retry.Task != 1 || retry.Node != 1 || retry.Attempts != 2 || retry.Stage != "count" {
		t.Fatalf("task_retry entry = %+v", retry)
	}
	if fin := entries[3]; fin.DurationUs != micros(5*time.Millisecond) || fin.Tasks != 2 {
		t.Fatalf("stage_finish entry = %+v", fin)
	}

	// job_finish duration is overhead + makespan; the second job starts
	// exactly when the first job's duration elapsed.
	if fin := entries[4]; fin.DurationUs != micros(7*time.Millisecond) {
		t.Fatalf("job_finish duration = %v", fin.DurationUs)
	}
	if entries[6].TsUs != micros(7*time.Millisecond) || entries[6].Pass != 2 {
		t.Fatalf("second job_start = %+v", entries[6])
	}
}

// TestJournalOpenJob checks the partial-flush contract: a job still running
// journals its start and recorded stages but no finish line.
func TestJournalOpenJob(t *testing.T) {
	r := journalRecorder()
	r.BeginJob("rdd", "collect(L3)")
	r.AddStage(StageSpan{Name: "inflight", Makespan: time.Millisecond})
	// No EndJob: the run was interrupted here.

	var buf bytes.Buffer
	if err := WriteJournal(&buf, r); err != nil {
		t.Fatal(err)
	}
	entries := decodeJournal(t, buf.String())

	var open *journalEntry
	finishes := 0
	for i, e := range entries {
		if e.Event == "job_start" && e.Job == "collect(L3)" {
			open = &entries[i]
		}
		if e.Event == "job_finish" {
			finishes++
		}
	}
	if open == nil || !open.Open {
		t.Fatalf("open job's start line missing or not marked open: %+v", open)
	}
	if finishes != 2 {
		t.Fatalf("journal has %d job_finish lines, want 2 (open job must not finish)", finishes)
	}
	last := entries[len(entries)-1]
	if last.Event != "stage_finish" || last.Stage != "inflight" {
		t.Fatalf("journal should end with the in-flight stage, got %+v", last)
	}
}

// TestJournalDeterministic checks the diffability promise: identical runs
// journal identical bytes.
func TestJournalDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJournal(&a, journalRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJournal(&b, journalRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders journaled different bytes")
	}
}

func TestJournalEmptyAndNil(t *testing.T) {
	for _, r := range []*Recorder{nil, New()} {
		var buf bytes.Buffer
		if err := WriteJournal(&buf, r); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != 0 {
			t.Fatalf("empty recorder journaled %q", buf.String())
		}
	}
}
