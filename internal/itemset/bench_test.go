package itemset

import (
	"math/rand"
	"testing"
)

func benchSets() (Itemset, []Itemset) {
	rng := rand.New(rand.NewSource(1))
	big := make([]Item, 40)
	for i := range big {
		big[i] = Item(rng.Intn(500))
	}
	tx := New(big...)
	subs := make([]Itemset, 64)
	for i := range subs {
		s := make([]Item, 4)
		for j := range s {
			s[j] = Item(rng.Intn(500))
		}
		subs[i] = New(s...)
	}
	return tx, subs
}

func BenchmarkContainsAll(b *testing.B) {
	tx, subs := benchSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.ContainsAll(subs[i%len(subs)])
	}
}

func BenchmarkKey(b *testing.B) {
	tx, _ := benchSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tx.Key()
	}
}

func BenchmarkCanonical(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	raw := make([]Item, 64)
	for i := range raw {
		raw[i] = Item(rng.Intn(100))
	}
	buf := make(Itemset, len(raw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, raw)
		Canonical(buf)
	}
}
