// Package itemset provides the fundamental data types of frequent itemset
// mining: items, itemsets, transactions and transaction databases.
//
// The representation follows the conventions of the Apriori literature:
// items are small dense integer identifiers, itemsets are sorted slices of
// items, and a transaction database is a bag of transactions each holding a
// sorted, duplicate-free item slice. Keeping itemsets sorted makes prefix
// joins (candidate generation), subset tests and canonical map keys cheap.
package itemset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Item identifies a single item. Items are small non-negative integers;
// datasets name their items densely starting at 0 or 1.
type Item int32

// Itemset is a sorted, duplicate-free set of items. The zero value is the
// empty itemset. Functions in this package and its dependents assume (and
// preserve) sortedness; use Canonical to normalise untrusted input.
type Itemset []Item

// New returns a canonical itemset built from the given items: sorted with
// duplicates removed. The input slice is not modified.
func New(items ...Item) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	return Canonical(s)
}

// Canonical sorts s in place, removes duplicates and returns the (possibly
// shortened) slice.
func Canonical(s Itemset) Itemset {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Len returns the number of items in s (the "k" of a k-itemset).
func (s Itemset) Len() int { return len(s) }

// Contains reports whether s contains item it. s must be sorted.
func (s Itemset) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// ContainsAll reports whether every item of sub occurs in s. Both itemsets
// must be sorted. It runs in O(len(s)+len(sub)).
func (s Itemset) ContainsAll(sub Itemset) bool {
	i := 0
	for _, want := range sub {
		for i < len(s) && s[i] < want {
			i++
		}
		if i >= len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically, shorter prefixes first.
// It returns -1, 0 or +1.
func (s Itemset) Compare(t Itemset) int {
	n := min(len(s), len(t))
	for i := 0; i < n; i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Clone returns a copy of s that shares no storage with it.
func (s Itemset) Clone() Itemset {
	t := make(Itemset, len(s))
	copy(t, s)
	return t
}

// Extend returns a new itemset equal to s with it appended. It requires
// it to be greater than every element of s, which is the shape produced by
// prefix-join candidate generation; it panics otherwise because silently
// producing an unsorted itemset corrupts every downstream structure.
func (s Itemset) Extend(it Item) Itemset {
	if len(s) > 0 && s[len(s)-1] >= it {
		panic(fmt.Sprintf("itemset: Extend(%d) would unsort %v", it, s))
	}
	t := make(Itemset, len(s)+1)
	copy(t, s)
	t[len(s)] = it
	return t
}

// Without returns a new itemset equal to s with the item at index i removed.
func (s Itemset) Without(i int) Itemset {
	t := make(Itemset, 0, len(s)-1)
	t = append(t, s[:i]...)
	t = append(t, s[i+1:]...)
	return t
}

// Key returns a compact string encoding of s usable as a map key. Two
// itemsets have equal keys iff they are Equal. The encoding is 4 bytes per
// item (big endian) so keys also sort in itemset order.
func (s Itemset) Key() string {
	var b strings.Builder
	b.Grow(4 * len(s))
	var buf [4]byte
	for _, it := range s {
		binary.BigEndian.PutUint32(buf[:], uint32(it))
		b.Write(buf[:])
	}
	return b.String()
}

// FromKey decodes an itemset previously encoded with Key. It returns an
// error if the key length is not a multiple of 4.
func FromKey(key string) (Itemset, error) {
	if len(key)%4 != 0 {
		return nil, fmt.Errorf("itemset: malformed key of length %d", len(key))
	}
	s := make(Itemset, len(key)/4)
	for i := range s {
		s[i] = Item(binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return s, nil
}

// String renders the itemset as "{1 5 9}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte('}')
	return b.String()
}

// SortSets orders a slice of itemsets lexicographically in place, which
// gives deterministic output ordering across parallel runs.
func SortSets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Compare(sets[j]) < 0 })
}
