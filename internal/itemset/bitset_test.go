package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // spans three words
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	for _, i := range []int{1, 62, 65, 128} {
		if b.Get(i) {
			t.Errorf("bit %d unexpectedly set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.Get(-1) || b.Get(130) {
		t.Error("out-of-range Get returned true")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	b.Set(130)
}

func TestBitsetAndOperations(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	and := a.And(b)
	want := 0
	for i := 0; i < 100; i += 6 {
		want++
		if !and.Get(i) {
			t.Errorf("AND missing bit %d", i)
		}
	}
	if and.Count() != want {
		t.Fatalf("AND count = %d, want %d", and.Count(), want)
	}
	if got := a.AndCount(b); got != want {
		t.Fatalf("AndCount = %d, want %d", got, want)
	}
	fused := NewBitset(100)
	if got := fused.AndCountInto(a, b); got != want {
		t.Fatalf("AndCountInto = %d, want %d", got, want)
	}
	for i := 0; i < 100; i++ {
		if fused.Get(i) != and.Get(i) {
			t.Fatalf("AndCountInto bit %d = %v, And bit = %v", i, fused.Get(i), and.Get(i))
		}
	}
	if a.Words() != 2 || NewBitset(0).Words() != 0 {
		t.Fatalf("Words = %d (want 2 for 100 bits)", a.Words())
	}
	c := a.Clone()
	c.Set(1)
	if a.Get(1) {
		t.Fatal("Clone shares storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	a.AndCount(NewBitset(50))
}

func TestVerticalSupport(t *testing.T) {
	db := NewDB("v", [][]Item{
		{1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {4},
	})
	v := db.Vertical()
	cases := []struct {
		set  Itemset
		want int
	}{
		{New(), 5},
		{New(1), 3},
		{New(2), 3},
		{New(1, 2), 2},
		{New(1, 2, 3), 1},
		{New(4), 1},
		{New(1, 4), 0},
		{New(99), 0}, // out of universe
	}
	for _, c := range cases {
		if got := v.Support(c.set); got != c.want {
			t.Errorf("Support(%v) = %d, want %d", c.set, got, c.want)
		}
	}
}

// Property: bitmap support equals direct subset counting on random data.
func TestVerticalSupportMatchesScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]Item, rng.Intn(40)+5)
		for i := range rows {
			n := rng.Intn(6) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], Item(rng.Intn(10)))
			}
		}
		db := NewDB("rand", rows)
		v := db.Vertical()
		for trial := 0; trial < 10; trial++ {
			var items []Item
			for j := rng.Intn(4); j >= 0; j-- {
				items = append(items, Item(rng.Intn(10)))
			}
			s := New(items...)
			direct := 0
			for _, tr := range db.Transactions {
				if tr.Items.ContainsAll(s) {
					direct++
				}
			}
			if v.Support(s) != direct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
