package itemset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Transaction is one record of a transactional database: a transaction
// identifier and the itemset bought/observed together.
type Transaction struct {
	TID   int64
	Items Itemset
}

// DB is a horizontal-layout transactional database, the input format of the
// Apriori family. It is immutable once built; all mining engines share it
// read-only across goroutines.
type DB struct {
	Name         string
	Transactions []Transaction
	numItems     int // 1 + max item id, computed lazily at build time
}

// NewDB builds a database from raw item slices. Each transaction is
// canonicalised (sorted, deduplicated); TIDs are assigned sequentially.
func NewDB(name string, rows [][]Item) *DB {
	db := &DB{Name: name, Transactions: make([]Transaction, len(rows))}
	maxItem := Item(-1)
	for i, row := range rows {
		s := New(row...)
		db.Transactions[i] = Transaction{TID: int64(i), Items: s}
		if n := len(s); n > 0 && s[n-1] > maxItem {
			maxItem = s[n-1]
		}
	}
	db.numItems = int(maxItem) + 1
	return db
}

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.Transactions) }

// NumItems returns one plus the largest item identifier present, i.e. the
// size of a dense array indexed by item.
func (db *DB) NumItems() int { return db.numItems }

// MinSupportCount converts a relative minimum support (e.g. 0.35 for 35%)
// into an absolute transaction count, rounding up so that an itemset is
// frequent iff its count >= the returned value.
func (db *DB) MinSupportCount(relative float64) int {
	if relative < 0 || relative > 1 {
		panic(fmt.Sprintf("itemset: relative support %v out of [0,1]", relative))
	}
	n := int(relative * float64(db.Len()))
	if float64(n) < relative*float64(db.Len()) {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Replicate returns a database whose transaction list is db's repeated
// times times, the construction the paper uses for its sizeup experiments
// (§V-C): relative supports are unchanged while the data volume grows.
func (db *DB) Replicate(times int) *DB {
	if times < 1 {
		panic("itemset: Replicate requires times >= 1")
	}
	out := &DB{
		Name:         fmt.Sprintf("%s(x%d)", db.Name, times),
		Transactions: make([]Transaction, 0, times*db.Len()),
		numItems:     db.numItems,
	}
	tid := int64(0)
	for r := 0; r < times; r++ {
		for _, t := range db.Transactions {
			out.Transactions = append(out.Transactions, Transaction{TID: tid, Items: t.Items})
			tid++
		}
	}
	return out
}

// Stats summarises a database the way the paper's Table I does, plus the
// density figures useful for calibrating generators.
type Stats struct {
	Name            string
	NumItems        int // distinct items actually occurring
	NumTransactions int
	AvgLength       float64 // mean items per transaction
	MaxLength       int
	Density         float64 // AvgLength / NumItems
}

// ComputeStats scans the database once and returns its summary.
func (db *DB) ComputeStats() Stats {
	seen := make(map[Item]struct{})
	total, maxLen := 0, 0
	for _, t := range db.Transactions {
		total += len(t.Items)
		if len(t.Items) > maxLen {
			maxLen = len(t.Items)
		}
		for _, it := range t.Items {
			seen[it] = struct{}{}
		}
	}
	st := Stats{
		Name:            db.Name,
		NumItems:        len(seen),
		NumTransactions: db.Len(),
		MaxLength:       maxLen,
	}
	if db.Len() > 0 {
		st.AvgLength = float64(total) / float64(db.Len())
	}
	if st.NumItems > 0 {
		st.Density = st.AvgLength / float64(st.NumItems)
	}
	return st
}

// TotalBytes estimates the on-disk size of the database in the whitespace
// separated text format, which the DFS and I/O cost models use.
func (db *DB) TotalBytes() int64 {
	var n int64
	for _, t := range db.Transactions {
		for _, it := range t.Items {
			n += int64(decimalWidth(int64(it))) + 1 // item + separator/newline
		}
	}
	return n
}

func decimalWidth(v int64) int {
	if v == 0 {
		return 1
	}
	w := 0
	if v < 0 {
		w++
		v = -v
	}
	for ; v > 0; v /= 10 {
		w++
	}
	return w
}

// WriteTo writes the database in the conventional .dat format: one
// transaction per line, items space separated. It reports the number of
// bytes written.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, t := range db.Transactions {
		for i, it := range t.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return n, err
				}
				n++
			}
			s := strconv.FormatInt(int64(it), 10)
			m, err := bw.WriteString(s)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadDB parses the .dat format produced by WriteTo (and used by the FIMI
// dataset repository): one transaction per line, whitespace-separated
// non-negative integers. Blank lines are skipped.
func ReadDB(name string, r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var rows [][]Item
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		row := make([]Item, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("itemset: %s:%d: bad item %q: %w", name, line, f, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("itemset: %s:%d: bad item %q: negative item id", name, line, f)
			}
			row = append(row, Item(v))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("itemset: reading %s: %w", name, err)
	}
	return NewDB(name, rows), nil
}
