package itemset

import "math/bits"

// Bitset is a fixed-capacity bit vector over transaction indices, the
// building block of vertical bitmap mining: one Bitset per item marks the
// transactions containing it, and support counting becomes AND + popcount.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset creates a bitset able to hold n bits, all clear.
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitset's capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Words returns the number of 64-bit words backing the bitset — the unit
// the vertical mining kernels charge to the cost model, since every
// intersection touches each word exactly once.
func (b *Bitset) Words() int { return len(b.words) }

// Set sets bit i. It panics when i is out of range, matching slice
// semantics.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("itemset: bitset index out of range")
	}
	b.words[i/64] |= 1 << (i % 64)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// AndInto stores a AND other into b (which must have the same capacity) and
// returns b, allowing allocation-free chained intersections.
func (b *Bitset) AndInto(a, other *Bitset) *Bitset {
	if a.n != other.n || b.n != a.n {
		panic("itemset: bitset size mismatch")
	}
	for i := range b.words {
		b.words[i] = a.words[i] & other.words[i]
	}
	return b
}

// And returns a new bitset holding b AND other.
func (b *Bitset) And(other *Bitset) *Bitset {
	out := NewBitset(b.n)
	return out.AndInto(b, other)
}

// AndCountInto stores a AND other into b (which must have the same
// capacity) and returns the popcount of the result — the fused
// intersect-and-support kernel of vertical bitset mining: one pass over the
// words yields both the child tidset and its support count.
func (b *Bitset) AndCountInto(a, other *Bitset) int {
	if a.n != other.n || b.n != a.n {
		panic("itemset: bitset size mismatch")
	}
	total := 0
	for i := range b.words {
		w := a.words[i] & other.words[i]
		b.words[i] = w
		total += bits.OnesCount64(w)
	}
	return total
}

// AndCount returns the popcount of b AND other without allocating.
func (b *Bitset) AndCount(other *Bitset) int {
	if b.n != other.n {
		panic("itemset: bitset size mismatch")
	}
	total := 0
	for i := range b.words {
		total += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return total
}

// ClearAll zeroes every bit, letting one bitset be reused across
// transactions instead of allocating per row.
func (b *Bitset) ClearAll() {
	clear(b.words)
}

// Clone returns a copy sharing no storage.
func (b *Bitset) Clone() *Bitset {
	out := NewBitset(b.n)
	copy(out.words, b.words)
	return out
}

// VerticalBitmap is the vertical bitmap layout of a database: for every
// item, the bitset of transactions containing it.
type VerticalBitmap struct {
	Items        []*Bitset // indexed by Item
	Transactions int
}

// Vertical builds the vertical bitmap layout of db.
func (db *DB) Vertical() *VerticalBitmap {
	v := &VerticalBitmap{
		Items:        make([]*Bitset, db.NumItems()),
		Transactions: db.Len(),
	}
	for i := range v.Items {
		v.Items[i] = NewBitset(db.Len())
	}
	for ti, tr := range db.Transactions {
		for _, it := range tr.Items {
			v.Items[it].Set(ti)
		}
	}
	return v
}

// Support returns the number of transactions containing every item of s,
// by intersecting the item bitmaps. The empty itemset is contained in all
// transactions.
func (v *VerticalBitmap) Support(s Itemset) int {
	if len(s) == 0 {
		return v.Transactions
	}
	if int(s[len(s)-1]) >= len(v.Items) {
		return 0
	}
	if len(s) == 1 {
		return v.Items[s[0]].Count()
	}
	acc := v.Items[s[0]].Clone()
	for _, it := range s[1 : len(s)-1] {
		acc.AndInto(acc, v.Items[it])
	}
	return acc.AndCount(v.Items[s[len(s)-1]])
}
