package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCanonicalises(t *testing.T) {
	s := New(5, 1, 3, 1, 5)
	want := Itemset{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New(5,1,3,1,5) = %v, want %v", s, want)
	}
}

func TestNewEmpty(t *testing.T) {
	if s := New(); s.Len() != 0 {
		t.Fatalf("New() = %v, want empty", s)
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, it := range []Item{2, 4, 6, 8} {
		if !s.Contains(it) {
			t.Errorf("Contains(%d) = false, want true", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7, 9, 0} {
		if s.Contains(it) {
			t.Errorf("Contains(%d) = true, want false", it)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := New(1, 2, 3, 5, 8, 13)
	cases := []struct {
		sub  Itemset
		want bool
	}{
		{New(), true},
		{New(1), true},
		{New(13), true},
		{New(2, 8), true},
		{New(1, 2, 3, 5, 8, 13), true},
		{New(4), false},
		{New(1, 4), false},
		{New(13, 14), false},
		{New(0, 1), false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.sub); got != c.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{New(), New(), 0},
		{New(), New(1), -1},
		{New(1), New(), 1},
		{New(1, 2), New(1, 2), 0},
		{New(1, 2), New(1, 3), -1},
		{New(2), New(1, 9), 1},
		{New(1, 2), New(1, 2, 3), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtend(t *testing.T) {
	s := New(1, 3)
	got := s.Extend(7)
	if !got.Equal(New(1, 3, 7)) {
		t.Fatalf("Extend = %v", got)
	}
	if !s.Equal(New(1, 3)) {
		t.Fatalf("Extend mutated receiver: %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extend with out-of-order item did not panic")
		}
	}()
	s.Extend(2)
}

func TestWithout(t *testing.T) {
	s := New(1, 3, 7)
	if got := s.Without(1); !got.Equal(New(1, 7)) {
		t.Fatalf("Without(1) = %v", got)
	}
	if got := s.Without(0); !got.Equal(New(3, 7)) {
		t.Fatalf("Without(0) = %v", got)
	}
	if !s.Equal(New(1, 3, 7)) {
		t.Fatalf("Without mutated receiver: %v", s)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Itemset{New(), New(0), New(1, 2, 3), New(1 << 20)}
	for _, s := range sets {
		got, err := FromKey(s.Key())
		if err != nil {
			t.Fatalf("FromKey(%v): %v", s, err)
		}
		if !got.Equal(s) {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := FromKey("abc"); err == nil {
		t.Error("FromKey on malformed key succeeded")
	}
}

func TestKeyOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randomSet(rng)
		b := randomSet(rng)
		cmp := a.Compare(b)
		kcmp := strings.Compare(a.Key(), b.Key())
		if (cmp < 0) != (kcmp < 0) || (cmp == 0) != (kcmp == 0) {
			t.Fatalf("Compare(%v,%v)=%d but key compare=%d", a, b, cmp, kcmp)
		}
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1, 2).String(); got != "{1 2 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestSortSets(t *testing.T) {
	sets := []Itemset{New(2, 3), New(1), New(1, 5), New(1, 2)}
	SortSets(sets)
	want := []Itemset{New(1), New(1, 2), New(1, 5), New(2, 3)}
	for i := range want {
		if !sets[i].Equal(want[i]) {
			t.Fatalf("SortSets[%d] = %v, want %v", i, sets[i], want[i])
		}
	}
}

func randomSet(rng *rand.Rand) Itemset {
	n := rng.Intn(6)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(rng.Intn(50))
	}
	return New(items...)
}

// Property: Canonical output is always sorted and duplicate free, and
// contains exactly the distinct input items.
func TestCanonicalProperty(t *testing.T) {
	f := func(raw []int16) bool {
		items := make([]Item, len(raw))
		for i, v := range raw {
			if v < 0 {
				v = -v
			}
			items[i] = Item(v)
		}
		s := New(items...)
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			return false
		}
		distinct := make(map[Item]struct{})
		for _, it := range items {
			distinct[it] = struct{}{}
		}
		if len(s) != len(distinct) {
			return false
		}
		for _, it := range s {
			if _, ok := distinct[it]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ContainsAll agrees with a naive map-based subset check.
func TestContainsAllProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		as := make([]Item, len(a))
		for i, v := range a {
			as[i] = Item(v)
		}
		bs := make([]Item, len(b))
		for i, v := range b {
			bs[i] = Item(v)
		}
		s, sub := New(as...), New(bs...)
		naive := true
		m := make(map[Item]struct{}, len(s))
		for _, it := range s {
			m[it] = struct{}{}
		}
		for _, it := range sub {
			if _, ok := m[it]; !ok {
				naive = false
				break
			}
		}
		return s.ContainsAll(sub) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on canonical itemsets.
func TestKeyInjectiveProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		as := make([]Item, len(a))
		for i, v := range a {
			as[i] = Item(v)
		}
		bs := make([]Item, len(b))
		for i, v := range b {
			bs[i] = Item(v)
		}
		sa, sb := New(as...), New(bs...)
		return (sa.Key() == sb.Key()) == sa.Equal(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB("toy", [][]Item{{3, 1, 3}, {2}, {}, {5, 4}})
	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.NumItems() != 6 {
		t.Fatalf("NumItems = %d, want 6", db.NumItems())
	}
	if got := db.Transactions[0].Items; !got.Equal(New(1, 3)) {
		t.Fatalf("transaction 0 = %v", got)
	}
	for i, tr := range db.Transactions {
		if tr.TID != int64(i) {
			t.Fatalf("TID[%d] = %d", i, tr.TID)
		}
	}
}

func TestMinSupportCount(t *testing.T) {
	db := NewDB("toy", make([][]Item, 10))
	cases := []struct {
		rel  float64
		want int
	}{
		{0, 1},
		{0.1, 1},
		{0.15, 2},
		{0.5, 5},
		{1, 10},
		{0.33, 4},
	}
	for _, c := range cases {
		if got := db.MinSupportCount(c.rel); got != c.want {
			t.Errorf("MinSupportCount(%v) = %d, want %d", c.rel, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinSupportCount(1.5) did not panic")
		}
	}()
	db.MinSupportCount(1.5)
}

func TestReplicate(t *testing.T) {
	db := NewDB("toy", [][]Item{{1}, {2, 3}})
	r := db.Replicate(3)
	if r.Len() != 6 {
		t.Fatalf("replicated Len = %d", r.Len())
	}
	for i, tr := range r.Transactions {
		if tr.TID != int64(i) {
			t.Fatalf("TID[%d] = %d", i, tr.TID)
		}
		if want := db.Transactions[i%2].Items; !tr.Items.Equal(want) {
			t.Fatalf("transaction %d = %v, want %v", i, tr.Items, want)
		}
	}
	if r.NumItems() != db.NumItems() {
		t.Fatalf("NumItems changed: %d vs %d", r.NumItems(), db.NumItems())
	}
}

func TestComputeStats(t *testing.T) {
	db := NewDB("toy", [][]Item{{1, 2, 3}, {1}, {2, 3}})
	st := db.ComputeStats()
	if st.NumItems != 3 || st.NumTransactions != 3 || st.MaxLength != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if got, want := st.AvgLength, 2.0; got != want {
		t.Fatalf("AvgLength = %v", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db := NewDB("toy", [][]Item{{10, 2}, {7}, {100, 200, 300}})
	var sb strings.Builder
	n, err := db.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(sb.String())) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, len(sb.String()))
	}
	if n != db.TotalBytes() {
		t.Fatalf("TotalBytes = %d, actual %d", db.TotalBytes(), n)
	}
	back, err := ReadDB("toy", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectItems(back), collectItems(db)) {
		t.Fatalf("round trip mismatch: %v vs %v", collectItems(back), collectItems(db))
	}
}

func TestReadDBErrors(t *testing.T) {
	if _, err := ReadDB("bad", strings.NewReader("1 2 x\n")); err == nil {
		t.Error("non-numeric item accepted")
	}
	if _, err := ReadDB("bad", strings.NewReader("1 -2\n")); err == nil {
		t.Error("negative item accepted")
	}
	db, err := ReadDB("blank", strings.NewReader("\n\n1 2\n\n"))
	if err != nil || db.Len() != 1 {
		t.Errorf("blank lines: db=%v err=%v", db, err)
	}
}

func collectItems(db *DB) [][]Item {
	out := make([][]Item, db.Len())
	for i, t := range db.Transactions {
		out[i] = t.Items
	}
	return out
}
