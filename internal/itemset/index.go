package itemset

// ItemIndex is a dense int32 remapping of the distinct items occurring in a
// candidate family: dense id i is the i-th smallest item. The counting
// kernels use it to turn sparse item identifiers into indexes of flat
// arrays and bitsets, so per-item lookups during subset enumeration are one
// bounds-checked load instead of a map probe or merge scan.
type ItemIndex struct {
	items Itemset // sorted distinct items; dense id = position
	// dense is the inverse table indexed by raw item id (-1 = absent). It is
	// only materialised while the raw id space stays small enough that the
	// table is cheap; otherwise lookups binary-search items.
	dense []int32
}

// denseTableLimit caps the raw-id-indexed inverse table. Items are small
// dense integers in every dataset this repo models, so the limit exists only
// to keep a pathological sparse id space from allocating gigabytes.
const denseTableLimit = 1 << 22

// NewItemIndex builds the dense remapping of every item occurring in sets.
func NewItemIndex(sets []Itemset) *ItemIndex {
	var all Itemset
	for _, s := range sets {
		all = append(all, s...)
	}
	ix := &ItemIndex{items: New(all...)}
	if n := len(ix.items); n > 0 {
		if max := int(ix.items[n-1]); max < denseTableLimit {
			ix.dense = make([]int32, max+1)
			for i := range ix.dense {
				ix.dense[i] = -1
			}
			for i, it := range ix.items {
				ix.dense[it] = int32(i)
			}
		}
	}
	return ix
}

// Len returns the number of distinct items indexed.
func (ix *ItemIndex) Len() int { return len(ix.items) }

// Item returns the raw item with dense id i.
func (ix *ItemIndex) Item(i int32) Item { return ix.items[i] }

// DenseOf returns the dense id of it, or -1 when it is not indexed.
func (ix *ItemIndex) DenseOf(it Item) int32 {
	if ix.dense != nil {
		if it < 0 || int(it) >= len(ix.dense) {
			return -1
		}
		return ix.dense[it]
	}
	lo, hi := 0, len(ix.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.items[mid] < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.items) && ix.items[lo] == it {
		return int32(lo)
	}
	return -1
}

// Remap appends the dense ids of s's indexed items to dst and returns it.
// Unindexed items are dropped: they cannot occur in any candidate, so subset
// tests never need them.
func (ix *ItemIndex) Remap(s Itemset, dst []int32) []int32 {
	for _, it := range s {
		if d := ix.DenseOf(it); d >= 0 {
			dst = append(dst, d)
		}
	}
	return dst
}

// Encode sets, in bits (which must have capacity >= ix.Len()), the bit of
// every indexed item of s. Callers reuse one scratch bitset per worker:
// ClearAll + Encode replaces a per-transaction allocation, and containment
// of a remapped candidate becomes one Get per item.
func (ix *ItemIndex) Encode(s Itemset, bits *Bitset) {
	for _, it := range s {
		if d := ix.DenseOf(it); d >= 0 {
			bits.Set(int(d))
		}
	}
}
