package experiments

import (
	"strings"
	"testing"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

func sampleComparison() *Comparison {
	mk := func(durs ...time.Duration) *apriori.Trace {
		tr := &apriori.Trace{Result: &apriori.Result{}}
		for i, d := range durs {
			tr.Passes = append(tr.Passes, apriori.PassStat{
				K: i + 1, Candidates: 10 * (i + 1), Frequent: 5, Duration: d,
			})
		}
		return tr
	}
	return &Comparison{
		Dataset: "Sample", Support: 0.3,
		DB:        itemset.Stats{NumTransactions: 100, NumItems: 10},
		YAFIM:     mk(time.Second, 800*time.Millisecond),
		MRApriori: mk(20*time.Second, 19*time.Second),
	}
}

func TestRenderChartBasics(t *testing.T) {
	var sb strings.Builder
	RenderChart(&sb, "title", "xs", "ys", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{9, 4, 1}},
	}, 40, 10)
	out := sb.String()
	for _, want := range []string{"title", "x: xs, y: ys", "* = a", "o = b", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart has no plotted points")
	}
}

func TestRenderChartEmptyAndDegenerate(t *testing.T) {
	var sb strings.Builder
	RenderChart(&sb, "empty", "x", "y", nil, 40, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart not flagged")
	}
	sb.Reset()
	// Single point, zero Y: must not divide by zero or panic.
	RenderChart(&sb, "one", "x", "y", []Series{{Name: "a", X: []float64{5}, Y: []float64{0}}}, 1, 1)
	if !strings.Contains(sb.String(), "* = a") {
		t.Error("degenerate chart lost its legend")
	}
}

func TestFigureCharts(t *testing.T) {
	c := sampleComparison()
	var sb strings.Builder
	ComparisonChart(&sb, c)
	if !strings.Contains(sb.String(), "per-pass execution time") {
		t.Error("comparison chart missing title")
	}

	sb.Reset()
	SizeupChart(&sb, &Sizeup{
		Dataset:      "Sample",
		Replications: []int{1, 2},
		YAFIM:        []time.Duration{time.Second, 2 * time.Second},
		MRApriori:    []time.Duration{10 * time.Second, 20 * time.Second},
	})
	if !strings.Contains(sb.String(), "sizeup") {
		t.Error("sizeup chart missing title")
	}

	sb.Reset()
	SpeedupChart(&sb, &Speedup{
		Dataset: "Sample", Nodes: []int{4, 8}, Cores: []int{32, 64},
		Durations: []time.Duration{8 * time.Second, 4 * time.Second},
	})
	if !strings.Contains(sb.String(), "node scalability") {
		t.Error("speedup chart missing title")
	}
}

func TestCSVExports(t *testing.T) {
	c := sampleComparison()
	var sb strings.Builder
	if err := ComparisonCSV(&sb, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 { // header + 2 passes
		t.Fatalf("comparison csv = %q", sb.String())
	}
	if !strings.HasPrefix(lines[1], "Sample,0.3,1,10,5,1.000000,20.000000") {
		t.Errorf("row 1 = %q", lines[1])
	}

	sb.Reset()
	if err := SizeupCSV(&sb, &Sizeup{
		Dataset: "S", Replications: []int{1}, YAFIM: []time.Duration{time.Second},
		MRApriori: []time.Duration{2 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "S,1,1.000000,2.000000") {
		t.Errorf("sizeup csv = %q", sb.String())
	}

	sb.Reset()
	if err := SpeedupCSV(&sb, &Speedup{
		Dataset: "S", Nodes: []int{4}, Cores: []int{32},
		Durations: []time.Duration{3 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "S,4,32,3.000000,1.0000") {
		t.Errorf("speedup csv = %q", sb.String())
	}

	sb.Reset()
	if err := SummaryCSV(&sb, &Summary{Comparisons: []*Comparison{c}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Sample,0.3,1.800000,39.000000") {
		t.Errorf("summary csv = %q", sb.String())
	}
}
