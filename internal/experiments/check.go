package experiments

import (
	"context"
	"fmt"
	"io"
	"time"
)

// ClaimCheck is the outcome of verifying one of the paper's claims against
// a reproduction run.
type ClaimCheck struct {
	Claim  string
	Pass   bool
	Detail string
}

// RunShapeChecks executes the full evaluation and asserts every qualitative
// claim of the paper — the same properties the test suite enforces, but as
// a user-facing report. It returns one check per claim; an error means an
// experiment could not run at all.
func RunShapeChecks(ctx context.Context, env Env) ([]ClaimCheck, error) {
	var checks []ClaimCheck
	add := func(claim string, pass bool, detail string, args ...any) {
		checks = append(checks, ClaimCheck{Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	// Fig. 3 + summary: YAFIM wins every pass, order-of-magnitude totals.
	summary, err := RunSummary(ctx, env)
	if err != nil {
		return nil, err
	}
	for _, c := range summary.Comparisons {
		everyPass := true
		n := min(len(c.YAFIM.Passes), len(c.MRApriori.Passes))
		for i := 0; i < n; i++ {
			if c.MRApriori.Passes[i].Duration == 0 {
				continue
			}
			if c.YAFIM.Passes[i].Duration >= c.MRApriori.Passes[i].Duration {
				everyPass = false
			}
		}
		add(fmt.Sprintf("Fig.3 %s: YAFIM faster on every pass", c.Dataset),
			everyPass, "%d passes compared", n)
		add(fmt.Sprintf("Fig.3 %s: order-of-magnitude total speedup", c.Dataset),
			c.Speedup() >= 5, "%.1fx (YAFIM %v vs MRApriori %v)",
			c.Speedup(), c.YAFIM.TotalDuration().Round(time.Millisecond),
			c.MRApriori.TotalDuration().Round(time.Millisecond))
		last := c.YAFIM.Passes[len(c.YAFIM.Passes)-1].Duration
		add(fmt.Sprintf("Fig.3 %s: late YAFIM pass under the MapReduce job floor", c.Dataset),
			last < env.Hadoop.JobStartup, "last pass %v vs %v job startup",
			last.Round(time.Millisecond), env.Hadoop.JobStartup)
	}
	avg := summary.AverageSpeedup()
	add("Abstract: ~18x average speedup", avg >= 10 && avg <= 40, "measured %.1fx", avg)

	// Fig. 4: MRApriori's slope much steeper than YAFIM's.
	for _, b := range PaperBenchmarks() {
		s, err := RunSizeup(ctx, b, env, []int{1, 3, 6})
		if err != nil {
			return nil, err
		}
		yIncr := s.YAFIM[2] - s.YAFIM[0]
		mIncr := s.MRApriori[2] - s.MRApriori[0]
		add(fmt.Sprintf("Fig.4 %s: MRApriori grows much faster with data", b.Name),
			mIncr > 3*yIncr, "slopes +%v vs +%v over 1x..6x",
			mIncr.Round(time.Millisecond), yIncr.Round(time.Millisecond))
	}

	// Fig. 5: YAFIM speeds up monotonically with nodes.
	for _, b := range PaperBenchmarks() {
		s, err := RunSpeedup(ctx, b, env, []int{4, 8, 12}, 6)
		if err != nil {
			return nil, err
		}
		monotone := true
		for i := 1; i < len(s.Durations); i++ {
			if s.Durations[i] > s.Durations[i-1] {
				monotone = false
			}
		}
		rel := s.Relative()
		add(fmt.Sprintf("Fig.5 %s: more nodes never slow YAFIM", b.Name),
			monotone, "4n %v -> 12n %v (%.2fx)",
			s.Durations[0].Round(time.Millisecond),
			s.Durations[len(s.Durations)-1].Round(time.Millisecond), rel[len(rel)-1])
	}

	// Fig. 6: medical application.
	med, err := RunComparison(ctx, MedicalBenchmark(), env)
	if err != nil {
		return nil, err
	}
	add("Fig.6 medical: order-of-magnitude speedup at Sup=3%",
		med.Speedup() >= 5, "measured %.1fx", med.Speedup())
	p := med.YAFIM.Passes
	shrinks := len(p) >= 3 && p[len(p)-1].Duration < p[1].Duration
	add("Fig.6 medical: YAFIM iterations get cheaper as candidates thin out",
		shrinks, "pass2 %v -> last %v",
		p[1].Duration.Round(time.Millisecond), p[len(p)-1].Duration.Round(time.Millisecond))

	return checks, nil
}

// WriteChecks renders the claim report and returns how many checks failed.
func WriteChecks(w io.Writer, checks []ClaimCheck) int {
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "[%s] %s (%s)\n", status, c.Claim, c.Detail)
	}
	fmt.Fprintf(w, "%d/%d claims reproduced\n", len(checks)-failed, len(checks))
	return failed
}
