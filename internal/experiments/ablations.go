package experiments

import (
	"context"
	"fmt"
	"time"

	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

// Ablation is one design-choice experiment: the same benchmark mined with a
// §IV feature on and off, results verified identical.
type Ablation struct {
	Name    string
	Dataset string
	With    time.Duration // feature enabled (the YAFIM design)
	Without time.Duration // feature disabled
}

// Benefit returns Without/With — how much the feature buys.
func (a *Ablation) Benefit() float64 {
	if a.With <= 0 {
		return 0
	}
	return float64(a.Without) / float64(a.With)
}

// RunBroadcastAblation compares broadcast variables (§IV-C) against naive
// per-task shipping of the candidate hash tree.
func RunBroadcastAblation(ctx context.Context, b Benchmark, env Env) (*Ablation, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	withBC, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: broadcast ablation: %w", err)
	}
	withoutBC, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark),
		yafim.Config{}, rdd.WithoutBroadcast())
	if err != nil {
		return nil, fmt.Errorf("experiments: broadcast ablation: %w", err)
	}
	if !withBC.Result.Equal(withoutBC.Result) {
		return nil, fmt.Errorf("experiments: broadcast ablation changed results on %s", b.Name)
	}
	return &Ablation{
		Name: "broadcast", Dataset: b.Name,
		With: withBC.TotalDuration(), Without: withoutBC.TotalDuration(),
	}, nil
}

// RunCacheAblation compares the cached transactions RDD (§IV-B) against
// re-reading the input from the DFS on every pass.
func RunCacheAblation(ctx context.Context, b Benchmark, env Env) (*Ablation, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	cached, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: cache ablation: %w", err)
	}
	uncached, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark),
		yafim.Config{DisableCache: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: cache ablation: %w", err)
	}
	if !cached.Result.Equal(uncached.Result) {
		return nil, fmt.Errorf("experiments: cache ablation changed results on %s", b.Name)
	}
	return &Ablation{
		Name: "rdd-cache", Dataset: b.Name,
		With: cached.TotalDuration(), Without: uncached.TotalDuration(),
	}, nil
}

// RunHashTreeAblation compares hash-tree candidate matching (§IV-A) against
// a brute-force scan of every candidate per transaction.
func RunHashTreeAblation(ctx context.Context, b Benchmark, env Env) (*Ablation, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	tree, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: hash-tree ablation: %w", err)
	}
	brute, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark),
		yafim.Config{BruteForceMatching: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: hash-tree ablation: %w", err)
	}
	if !tree.Result.Equal(brute.Result) {
		return nil, fmt.Errorf("experiments: hash-tree ablation changed results on %s", b.Name)
	}
	return &Ablation{
		Name: "hash-tree", Dataset: b.Name,
		With: tree.TotalDuration(), Without: brute.TotalDuration(),
	}, nil
}
